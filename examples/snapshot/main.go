// Snapshot: Chandy-Lamport consistent snapshots over Chord (§3.3).
//
// A ring converges; the snapshot machinery is installed on-line on all
// nodes; one node initiates a snapshot whose markers flood the ping
// topology. Once every node reports "Done", the example (a) shows the
// globally consistent ring image the snapshot captured, (b) lists the
// in-flight messages recorded on channels, and (c) runs Chord lookups
// over the frozen snapshot (rules l1s-l3s) — the "Routing Consistency
// Revisited" technique — verifying they agree with the live ring.
//
// Run with: go run ./examples/snapshot
package main

import (
	"fmt"
	"log"
	"math/rand"

	"p2go"
)

func main() {
	var snapLookups []p2go.Tuple
	ring, err := p2go.NewChordRing(p2go.ChordRingConfig{
		N:    10,
		Seed: 2026,
		// Slow links stretch the marker propagation so channel
		// recording is visible.
		MinDelay: 0.2, MaxDelay: 1.0,
		ExtraPrograms: []*p2go.Program{p2go.MonitorSnapshotLookups()},
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			if t.Name == "sLookupResults" {
				snapLookups = append(snapLookups, t)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converging 10-node ring...")
	ring.Run(400)
	if bad := ring.CheckRing(ring.Addrs); len(bad) > 0 {
		log.Fatalf("ring failed to converge: %v", bad)
	}

	// Deploy the snapshot machinery on-line; no initiator timer — we
	// trigger one snapshot by hand.
	for _, a := range ring.Addrs {
		if err := p2go.InstallSnapshot(ring.Node(a), 0); err != nil {
			log.Fatal(err)
		}
	}
	if err := ring.Node("n1").InstallProgram(p2go.WatchProgram("sLookupResults")); err != nil {
		log.Fatal(err)
	}
	ring.Run(30) // let backPointer tables warm up

	fmt.Println("initiating snapshot 1 at n1...")
	err = ring.Net.Inject("n1", p2go.NewTuple("snap",
		p2go.Str("n1"), p2go.Int(1), p2go.Str("-")))
	if err != nil {
		log.Fatal(err)
	}
	ring.Run(60)

	fmt.Println("\nsnapshot state per node:")
	for _, a := range ring.Addrs {
		id, phase := p2go.SnapState(ring.Node(a))
		fmt.Printf("  %-4s snapshot %d %-9s snapped bestSucc=%s (live %s)\n",
			a, id, phase, p2go.SnappedBestSucc(ring.Node(a), 1), ring.BestSucc(a))
	}

	recorded := 0
	byType := map[string]int{}
	for _, a := range ring.Addrs {
		ring.Node(a).Store().Get("chanRec").Scan(ring.Sim.Now(), func(t p2go.Tuple) {
			recorded++
			byType[t.Field(3).AsStr()]++
		})
	}
	fmt.Printf("\nin-flight messages recorded on channels: %d %v\n", recorded, byType)

	// Lookups over the frozen snapshot.
	fmt.Println("\nlookups over snapshot 1 (from n1):")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		key := rng.Uint64()
		err := ring.Net.Inject("n1", p2go.NewTuple("sLookup",
			p2go.Str("n1"), p2go.Int(1), p2go.ID(key), p2go.Str("n1"),
			p2go.ID(uint64(9000+i))))
		if err != nil {
			log.Fatal(err)
		}
	}
	ring.Run(30)
	for _, t := range snapLookups {
		fmt.Printf("  key %v -> owner %s (responder %s)\n",
			t.Field(2), t.Field(4).AsStr(), t.Field(6).AsStr())
	}
	if len(snapLookups) == 0 {
		log.Fatal("no snapshot lookup responses")
	}
	fmt.Println("\nsnapshot lookups observe one frozen global state: no false")
	fmt.Println("inconsistencies from in-flight updates, as §3.3 argues.")
}
