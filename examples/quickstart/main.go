// Quickstart: the paper's introductory declarative-networking example.
//
// A three-node network runs a two-rule OverLog program that maintains
// all-pairs paths as a continuous distributed query over link state: the
// rule bodies join each node's local tables, and derived path tuples are
// shipped to the node named by their location specifier.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2go"
)

const program = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).

p0 path@A(B, [A, B], W) :- link@A(B, W).
p1 path@B(C, [B, A] + P, W1 + W2) :- link@A(B, W1), path@A(C, P, W2).
`

func main() {
	sim := p2go.NewSim()
	net := p2go.NewNetwork(sim, p2go.NetworkConfig{Seed: 1})

	prog := p2go.MustParse(program)
	for _, addr := range []string{"n1", "n2", "n3"} {
		n, err := net.AddNode(addr)
		if err != nil {
			log.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			log.Fatal(err)
		}
	}

	// Seed the link state: n1 -> n2 (weight 1), n2 -> n3 (weight 2).
	links := []struct {
		from, to string
		w        int64
	}{
		{"n1", "n2", 1},
		{"n2", "n3", 2},
	}
	for _, l := range links {
		err := net.Inject(l.from, p2go.NewTuple("link",
			p2go.Str(l.from), p2go.Str(l.to), p2go.Int(l.w)))
		if err != nil {
			log.Fatal(err)
		}
	}

	// Let the continuous query run: link deltas trigger rule strands,
	// derived paths ship across the (simulated) network.
	net.Run(5)

	for _, addr := range net.Addrs() {
		fmt.Printf("paths known at %s:\n", addr)
		tb := net.Node(addr).Store().Get("path")
		tb.Scan(sim.Now(), func(t p2go.Tuple) {
			fmt.Printf("  -> %s via %v (weight %v)\n",
				t.Field(1).AsStr(), t.Field(2), t.Field(3).AsInt())
		})
	}
}
