// Profiling: the §3.2 forensic scenario end to end.
//
// A Chord ring runs with execution logging enabled (the tracer records
// every rule execution into ruleExec and memoizes tuples in tupleTable).
// The consistency probe of §3.1.4 issues lookups; afterwards, an operator
// picks traced lookup responses and — entirely with OverLog rules ep1-ep6
// — walks each response's execution graph backwards across the network,
// decomposing its end-to-end latency into time spent inside rules, on the
// wire, and between rules in the local dataflow.
//
// Run with: go run ./examples/profiling
package main

import (
	"fmt"
	"log"

	"p2go"
)

func main() {
	tcfg := p2go.DefaultTraceConfig()
	tcfg.RuleExecTTL = 300
	tcfg.RuleExecMax = 20000

	var reports []p2go.ProfileReport
	var edges []p2go.LineageEdge
	ring, err := p2go.NewChordRing(p2go.ChordRingConfig{
		N:       8,
		Seed:    77,
		Tracing: &tcfg,
		ExtraPrograms: []*p2go.Program{
			p2go.MonitorProfiler("cs2"), // traversals stop at the probe-launch rule
			p2go.MonitorLineage(12),     // full causal-DAG traversal (§3.4)
		},
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			switch t.Name {
			case "report":
				if rep, err := p2go.ParseProfileReport(t); err == nil {
					reports = append(reports, rep)
				}
			case "lineage":
				if e, err := p2go.ParseLineageEdge(t); err == nil {
					edges = append(edges, e)
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("converging 8-node traced ring...")
	ring.Run(300)
	if bad := ring.CheckRing(ring.Addrs); len(bad) > 0 {
		log.Fatalf("ring failed to converge: %v", bad)
	}

	prober := ring.Node("n8")
	if err := prober.InstallProgram(p2go.MonitorConsistency(15)); err != nil {
		log.Fatal(err)
	}
	ring.Run(40)

	// Forensics: find the lookup responses the probe consumed (rule cs5
	// inputs in the ruleExec log) and trace each backwards.
	var ids []uint64
	for _, row := range p2go.RuleExecRows(prober) {
		if row.Rule == "cs5" && row.IsEvent {
			ids = append(ids, row.In)
		}
	}
	fmt.Printf("found %d traced consistency responses; profiling each\n", len(ids))
	for _, id := range ids {
		at, ok := p2go.TupleArrivalTime(prober, id)
		if !ok {
			continue
		}
		if err := ring.Net.Inject("n8", p2go.TraceRespEvent("n8", id, at)); err != nil {
			log.Fatal(err)
		}
		ring.Run(5)
	}

	fmt.Printf("\n%-8s %12s %12s %12s %12s\n",
		"tuple", "rule ms", "network ms", "local ms", "total ms")
	var sumRule, sumNet, sumLocal float64
	for _, r := range reports {
		fmt.Printf("%-8d %12.3f %12.3f %12.3f %12.3f\n",
			r.TupleID, 1e3*r.RuleT, 1e3*r.NetT, 1e3*r.LocalT, 1e3*r.Total())
		sumRule += r.RuleT
		sumNet += r.NetT
		sumLocal += r.LocalT
	}
	if len(reports) == 0 {
		log.Fatal("no profiler reports produced")
	}
	n := float64(len(reports))
	fmt.Printf("\naverage lookup latency decomposition over %d lookups:\n", len(reports))
	fmt.Printf("  rules   %8.3f ms\n  network %8.3f ms\n  local   %8.3f ms\n",
		1e3*sumRule/n, 1e3*sumNet/n, 1e3*sumLocal/n)
	fmt.Println("\n(network time dominates, as expected for multi-hop lookups)")

	// Full causal lineage of the last response: every event AND
	// precondition edge, across nodes (the §3.4 extension beyond the
	// event-path profiler).
	last := ids[len(ids)-1]
	if err := ring.Net.Inject("n8", p2go.TraceLineageEvent("n8", last)); err != nil {
		log.Fatal(err)
	}
	ring.Run(10)
	var mine []p2go.LineageEdge
	for _, e := range edges {
		if e.Root == last {
			mine = append(mine, e)
		}
	}
	fmt.Printf("\ncausal lineage of response %d (%d edges: rules, events and preconditions):\n",
		last, len(mine))
	fmt.Print(p2go.FormatLineage(prober, mine))
}
