// Chordmon: a Chord ring with the paper's §3.1 monitoring add-ons
// deployed on-line — active ring probes (rp1-rp3), the passive check
// (rp4), the wrap-around ordering traversal (ri2-ri7), the oscillation
// detectors (os1-os9), and the proactive consistency probe (cs1-cs12).
//
// The scenario: a 12-node ring converges and is verified healthy; then
// two nodes crash, and the detectors report what they see while the ring
// heals itself.
//
// Run with: go run ./examples/chordmon
package main

import (
	"fmt"
	"log"

	"p2go"
)

func main() {
	alarms := map[string]int{}
	ring, err := p2go.NewChordRing(p2go.ChordRingConfig{
		N:    12,
		Seed: 2006,
		ExtraPrograms: []*p2go.Program{
			p2go.MonitorRingProbes(10),
			p2go.MonitorRingPassive(),
			p2go.MonitorOrderingTraversal(),
			p2go.MonitorOscillation(),
		},
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			switch t.Name {
			case "inconsistentPred", "inconsistentSucc", "orderingProblem",
				"oscill", "repeatOscill", "chaotic", "consAlarm":
				alarms[t.Name]++
				fmt.Printf("[%7.2fs] %-8s ALARM %v\n", now, node, t)
			case "orderingOK":
				fmt.Printf("[%7.2fs] %-8s ring traversal OK (1 wrap-around)\n", now, node)
			case "consistency":
				fmt.Printf("[%7.2fs] %-8s consistency metric = %v\n",
					now, node, t.Field(2))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== phase 1: convergence (300 virtual seconds) ===")
	ring.Run(300)
	if bad := ring.CheckRing(ring.Addrs); len(bad) > 0 {
		log.Fatalf("ring failed to converge: %v", bad)
	}
	fmt.Println("ring converged: every bestSucc/pred matches the ID-order oracle")

	// Deploy the consistency probe on one node, on-line (no restart).
	if err := ring.Node("n12").InstallProgram(p2go.MonitorConsistency(20)); err != nil {
		log.Fatal(err)
	}

	// Start a full-ring ordering traversal from n1.
	inject(ring, "n1", p2go.NewTuple("orderingEvent", p2go.Str("n1"), p2go.ID(1)))
	ring.Run(60)

	fmt.Println("\n=== phase 2: crash n4 and n7 ===")
	ring.Net.Crash("n4")
	ring.Net.Crash("n7")
	ring.Run(120)

	members := ring.Alive(map[string]bool{"n4": true, "n7": true})
	if bad := ring.CheckRing(members); len(bad) > 0 {
		fmt.Printf("ring still healing: %v\n", bad)
	} else {
		fmt.Println("ring healed around the failed nodes")
	}
	// Another traversal on the healed ring.
	inject(ring, "n1", p2go.NewTuple("orderingEvent", p2go.Str("n1"), p2go.ID(2)))
	ring.Run(30)

	fmt.Println("\n=== summary ===")
	if len(alarms) == 0 {
		fmt.Println("no alarms (healthy run)")
	}
	for name, n := range alarms {
		fmt.Printf("%-18s %d\n", name, n)
	}
}

func inject(r *p2go.ChordRing, addr string, t p2go.Tuple) {
	if err := r.Net.Inject(addr, t); err != nil {
		log.Fatal(err)
	}
}
