// Chainrep: the §3.4 generality demonstration — the same declarative
// monitoring techniques used on Chord's ring applied to a different
// distributed algorithm, chain replication.
//
// A five-replica chain accepts writes at the head and serves reads at
// the tail. Two OverLog monitors run on-line: a chain-length traversal
// (the analog of the paper's ring traversal ri2-ri6) and a per-hop
// replica-divergence audit. The scenario corrupts one replica and lets
// the audit find it.
//
// Run with: go run ./examples/chainrep
package main

import (
	"fmt"
	"log"

	"p2go"
	"p2go/internal/chainrep"
)

func main() {
	sim := p2go.NewSim()
	var events []p2go.Tuple
	net := p2go.NewNetwork(sim, p2go.NetworkConfig{
		Seed: 7,
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			events = append(events, t)
			switch t.Name {
			case "chainLen":
				fmt.Printf("[%6.2fs] traversal: chain length %v\n", now, t.Field(2))
			case "divergence":
				fmt.Printf("[%6.2fs] AUDIT ALARM: key %v head=%v replica %v has %v\n",
					now, t.Field(2), t.Field(3), t.Field(5), t.Field(4))
			case "auditDone":
				fmt.Printf("[%6.2fs] audit reached the tail (%v hops)\n", now, t.Field(3))
			}
		},
	})

	replicas := []string{"c1", "c2", "c3", "c4", "c5"}
	for i, addr := range replicas {
		n, err := net.AddNode(addr)
		if err != nil {
			log.Fatal(err)
		}
		next := "-"
		if i+1 < len(replicas) {
			next = replicas[i+1]
		}
		if err := chainrep.Install(n, next); err != nil {
			log.Fatal(err)
		}
	}

	head, tail := replicas[0], replicas[len(replicas)-1]
	// Observe client-facing responses at the tail.
	if err := net.Node(tail).InstallProgram(p2go.WatchProgram("getResult", "putAck")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("writing 3 keys through the head...")
	for i, kv := range [][2]string{{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}} {
		err := net.Inject(head, chainrep.Put(head, kv[0], kv[1], uint64(i), head))
		if err != nil {
			log.Fatal(err)
		}
	}
	net.RunFor(3)

	fmt.Println("auditing chain structure and replica agreement...")
	net.Inject(head, chainrep.LenEvent(head, 1))           //nolint:errcheck
	net.Inject(head, chainrep.AuditEvent(head, "beta", 2)) //nolint:errcheck
	net.RunFor(3)

	fmt.Println("\ncorrupting replica c3's copy of beta...")
	net.Node("c3").HandleLocal(p2go.NewTuple("store",
		p2go.Str("c3"), p2go.Str("beta"), p2go.Str("0xDEAD")))
	net.Inject(head, chainrep.AuditEvent(head, "beta", 3)) //nolint:errcheck
	net.RunFor(3)

	fmt.Println("\nreads are served at the tail:")
	net.Inject(tail, chainrep.Get(tail, "gamma", 9, tail)) //nolint:errcheck
	net.RunFor(2)
	for _, t := range events {
		if t.Name == "getResult" {
			fmt.Printf("  get %v -> %v\n", t.Field(1), t.Field(2))
		}
	}
}
