# Convenience targets; everything is plain `go` underneath.

.PHONY: build test check cover bench bench-smoke bench-churn bench-lifecycle bench-trace bench-profiler bench-agg bench-intranode bench-forensics bench-scale bench-aggtree bench-realtime fuzz examples tidy

build:
	go build ./...
	go vet ./...

test:
	go test ./...

# Full gate: build + vet + tests with the race detector (the parallel
# simnet driver is exercised under -race by its determinism tests).
check:
	go build ./...
	go vet ./...
	go test -race ./...

cover:
	go test -cover ./internal/...

# The full §4 evaluation: tens of minutes (Figures 6-7 average three
# seeds per point, like the paper).
bench:
	go test -timeout 0 -bench=. -benchmem ./...

# One Figure 6 point under both simnet drivers: prints wall-clock
# speedup and cross-checks that results are bit-identical.
bench-smoke:
	go run ./cmd/p2bench -exp smoke

# The churn experiment: crash/rejoin a 21-node ring with the §3.1
# detectors deployed; prints the repair/detection table and writes
# BENCH_churn.json.
bench-churn:
	go run ./cmd/p2bench -exp churn -json

# The query-lifecycle experiment: install, meter and uninstall each §3.1
# detector on a converged 21-node ring; prints the marginal-cost table
# and writes BENCH_lifecycle.json.
bench-lifecycle:
	go run ./cmd/p2bench -exp lifecycle -json

# Causal trace export: runs a traced 21-node ring with lookups from the
# measured node, writes TRACE_chrome.json (load into chrome://tracing or
# Perfetto) and TRACE_metrics.prom, plus BENCH_trace.json.
bench-trace:
	go run ./cmd/p2bench -exp trace -json

# Stats-publication overhead: the churn run with the nodeStats/queryStats
# publication off vs on; writes BENCH_profiler.json.
bench-profiler:
	go run ./cmd/p2bench -exp profiler -json

# Incremental aggregate maintenance: per-delta rescans vs O(delta)
# accumulators over a churning table, plus the 4-way determinism matrix;
# writes BENCH_agg.json.
bench-agg:
	go run ./cmd/p2bench -exp agg -json

# Intra-node strand scheduling: ExecSingle vs ExecMulti over a worker
# sweep on one wide fan-out node, fingerprint-checked against the
# sequential run and composed with both simnet drivers; writes
# BENCH_intranode.json.
bench-intranode:
	go run ./cmd/p2bench -exp intranode -json

# Durable trace store forensics: traced churn with the store off vs on
# (write overhead, bytes/record, restart markers), ancestor-query latency
# at 1/10/100-window horizons, and the (store)x(driver) determinism
# matrix; writes BENCH_forensics.json.
bench-forensics:
	go run ./cmd/p2bench -exp forensics -json

# The scale wall: 100/1k/10k-host Chord sweep with bytes-per-host and
# events/sec curves, the shared-vs-private plan memory gate, and the
# (shared|private)x(seq|par) fingerprint check; writes BENCH_scale.json.
bench-scale:
	go run ./cmd/p2bench -exp scale -json

# Cluster queries over in-network aggregation trees: 1000-host tree vs
# flat deployment with the exactness, fan-in (>=10x reduction), billing
# and determinism gates; writes BENCH_aggtree.json.
bench-aggtree:
	go run ./cmd/p2bench -exp aggtree -json

# Wall-clock UDP ingest: a paced open-loop generator against one UDP
# node over loopback, gated at >=100k events/sec sustained with exact
# overload accounting and a <=1 alloc/datagram reader hot path; writes
# BENCH_realtime.json. (-rate/-payload/-conns override the load shape.)
bench-realtime:
	go run ./cmd/p2bench -exp realtime -json

fuzz:
	go test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 30s ./internal/tuple/
	go test -run '^$$' -fuzz FuzzValueCodec -fuzztime 30s ./internal/tuple/
	go test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/overlog/
	go test -run '^$$' -fuzz FuzzSegmentRoundTrip -fuzztime 30s ./internal/tracestore/

examples:
	go run ./examples/quickstart
	go run ./examples/chainrep
	go run ./examples/chordmon
	go run ./examples/profiling
	go run ./examples/snapshot

tidy:
	gofmt -w .
	go mod tidy
