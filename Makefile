# Convenience targets; everything is plain `go` underneath.

.PHONY: build test cover bench fuzz examples tidy

build:
	go build ./...
	go vet ./...

test:
	go test ./...

cover:
	go test -cover ./internal/...

# The full §4 evaluation: tens of minutes (Figures 6-7 average three
# seeds per point, like the paper).
bench:
	go test -timeout 0 -bench=. -benchmem ./...

fuzz:
	go test -run '^$$' -fuzz FuzzUnmarshal -fuzztime 30s ./internal/tuple/
	go test -run '^$$' -fuzz FuzzValueCodec -fuzztime 30s ./internal/tuple/
	go test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/overlog/

examples:
	go run ./examples/quickstart
	go run ./examples/chainrep
	go run ./examples/chordmon
	go run ./examples/profiling
	go run ./examples/snapshot

tidy:
	gofmt -w .
	go mod tidy
