// Package p2go is a Go reproduction of the system described in "Using
// Queries for Distributed Monitoring and Forensics" (Singh, Roscoe,
// Maniatis, Druschel — EuroSys 2006): the P2 declarative overlay engine
// extended with an introspection model, an execution-tracing facility,
// and a distributed continuous query processor, plus the Chord overlay
// and the paper's complete set of monitoring and forensics applications.
//
// Distributed algorithms are written in OverLog — a Datalog variant —
// compiled into per-node dataflow graphs, and executed by single-threaded
// node runtimes connected by a deterministic discrete-event network
// simulator. Monitoring queries (invariant checkers, oscillation
// detectors, consistency probes, execution profilers, Chandy-Lamport
// snapshots) are ordinary OverLog programs installable on-line on a
// running system.
//
// # Quick start
//
//	sim := p2go.NewSim()
//	net := p2go.NewNetwork(sim, p2go.NetworkConfig{Seed: 1})
//	n, _ := net.AddNode("n1")
//	prog := p2go.MustParse(`
//	    materialize(link, infinity, infinity, keys(1,2)).
//	    materialize(path, infinity, infinity, keys(1,2,3)).
//	    p0 path@A(B, [A, B], W) :- link@A(B, W).
//	    p1 path@B(C, [B, A] + P, W1 + W2) :- link@A(B, W1), path@A(C, P, W2).
//	`)
//	_ = n.InstallProgram(prog)
//	net.Inject("n1", p2go.NewTuple("link", p2go.Str("n1"), p2go.Str("n2"), p2go.Int(1)))
//	net.Run(10)
//
// See the examples directory for runnable end-to-end scenarios: the
// quickstart above, the Chord ring with on-line monitors, forensic
// profiling of lookups, and consistent snapshots.
//
// This facade re-exports the library's layers:
//
//   - the OverLog language (Parse, MustParse, Program);
//   - the tuple model (Tuple, Value and constructors);
//   - the node runtime (Node) and simulated network (Sim, Network);
//   - Chord (InstallChord, NewChordRing) and every §3 monitoring
//     application (the Monitor* constructors);
//   - execution tracing (TraceConfig) and the §4 benchmark harness
//     (bench_test.go at the module root).
package p2go

import (
	"p2go/internal/chainrep"
	"p2go/internal/chord"
	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/monitor"
	"p2go/internal/overlog"
	"p2go/internal/simnet"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// ---- Tuple model ----

// Tuple is an immutable named record; field 0 is its location specifier.
type Tuple = tuple.Tuple

// Value is a dynamically typed OverLog value.
type Value = tuple.Value

// NewTuple constructs a tuple (first field is the location).
func NewTuple(name string, fields ...Value) Tuple { return tuple.New(name, fields...) }

// Int, ID, Float, Str, Bool, List construct Values.
func Int(v int64) Value      { return tuple.Int(v) }
func ID(v uint64) Value      { return tuple.ID(v) }
func Float(v float64) Value  { return tuple.Float(v) }
func Str(v string) Value     { return tuple.Str(v) }
func Bool(v bool) Value      { return tuple.Bool(v) }
func List(vs ...Value) Value { return tuple.List(vs...) }

// ---- OverLog ----

// Program is a parsed OverLog program.
type Program = overlog.Program

// Parse parses OverLog source.
func Parse(src string) (*Program, error) { return overlog.Parse(src) }

// MustParse parses OverLog source and panics on error.
func MustParse(src string) *Program { return overlog.MustParse(src) }

// ---- Runtime ----

// Node is a P2 node: tables, compiled rule strands, timers, tracer.
type Node = engine.Node

// NodeMetrics holds a node's performance counters.
type NodeMetrics = metrics.Node

// TraceConfig tunes the execution tracer (§2.1).
type TraceConfig = trace.Config

// DefaultTraceConfig returns the prototype's tracing bounds.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// TraceStoreConfig tunes the durable trace store: the append-only,
// window-partitioned log the tracer writes through, so causal lineage
// survives table eviction and node restarts (set it on
// NetworkConfig/ChordRingConfig; tracing must be enabled too). The
// P2GO_DISABLE_TRACESTORE environment variable force-disables it.
type TraceStoreConfig = tracestore.Config

// DefaultTraceStoreConfig returns the store's default rotation and
// retention budget.
func DefaultTraceStoreConfig() TraceStoreConfig { return tracestore.DefaultConfig() }

// TraceStore is one node's durable trace log (Node.TraceStore; nil when
// not configured).
type TraceStore = tracestore.Store

// TraceView is a read-only investigation session over a set of node
// stores: Ancestors, Descendants, FlowChain, Execs, Events.
type TraceView = tracestore.View

// NewTraceView opens an investigation over per-node stores; records
// before since are invisible and older windows are never decoded.
func NewTraceView(stores map[string]*TraceStore, since float64) *TraceView {
	return tracestore.NewView(stores, since)
}

// Lineage is a causal walk's answer: exec edges plus cross-node hops.
type Lineage = tracestore.Lineage

// Investigate parses and runs one textual forensic query (e.g.
// "ancestors of 41 at n3 depth 4") against a view.
func Investigate(query string, v *TraceView) (*tracestore.Result, error) {
	return tracestore.Investigate(query, v)
}

// Sim is the discrete-event scheduler.
type Sim = simnet.Sim

// NewSim creates a simulator at virtual time zero.
func NewSim() *Sim { return simnet.NewSim() }

// Network connects nodes over simulated FIFO links.
type Network = simnet.Network

// NetworkConfig configures delays, loss, tracing, and hooks.
type NetworkConfig = simnet.Config

// SimMode selects the simulation driver: Sequential (single-threaded,
// the default) or Parallel (windowed-lookahead PDES on a worker pool;
// bit-identical virtual-time results for the same seed).
type SimMode = simnet.Mode

const (
	Sequential SimMode = simnet.Sequential
	Parallel   SimMode = simnet.Parallel
)

// NewNetwork creates a network on the simulator.
func NewNetwork(s *Sim, cfg NetworkConfig) *Network { return simnet.NewNetwork(s, cfg) }

// ---- Chord ----

// InstallChord loads the Chord program and seed state onto a node.
func InstallChord(n *Node, landmark string) error { return chord.Install(n, landmark) }

// ChordNodeID is the ring identifier of an address.
func ChordNodeID(addr string) uint64 { return chord.NodeID(addr) }

// ChordRing is a ready-made simulated Chord deployment.
type ChordRing = chord.Ring

// ChordRingConfig configures NewChordRing.
type ChordRingConfig = chord.RingConfig

// NewChordRing builds an N-node Chord network (addresses n1..nN).
func NewChordRing(cfg ChordRingConfig) (*ChordRing, error) { return chord.NewRing(cfg) }

// ChordLookupEvent builds a lookup event tuple for injection.
func ChordLookupEvent(addr string, k uint64, reqAddr string, e uint64) Tuple {
	return chord.LookupEvent(addr, k, reqAddr, e)
}

// WatchProgram returns a program watching the given predicates.
func WatchProgram(names ...string) *Program { return chord.WatchProgram(names...) }

// ---- Monitoring applications (§3) ----

// MonitorRingProbes returns the active ring well-formedness checker
// (rp1-rp3 plus the symmetric successor check), probing every tProbe
// seconds.
func MonitorRingProbes(tProbe float64) *Program { return monitor.RingProbeProgram(tProbe) }

// MonitorRingPassive returns the passive ring checker (rp4).
func MonitorRingPassive() *Program { return monitor.RingPassiveProgram() }

// MonitorOrderingOpportunistic returns the opportunistic ID-ordering
// check (ri1).
func MonitorOrderingOpportunistic() *Program { return monitor.OrderingOpportunisticProgram() }

// MonitorOrderingTraversal returns the token-passing wrap-around
// traversal (ri2-ri7); inject an orderingEvent to start a traversal.
func MonitorOrderingTraversal() *Program { return monitor.OrderingTraversalProgram() }

// MonitorOscillation returns the state-oscillation detectors (os1-os9).
func MonitorOscillation() *Program { return monitor.OscillationProgram() }

// MonitorConsistency returns the proactive routing-consistency probe
// (cs1-cs12) with the given probe period in seconds.
func MonitorConsistency(period float64) *Program { return monitor.ConsistencyProgram(period) }

// MonitorProfiler returns the execution profiler (ep1-ep6) stopping at
// the named rule; requires tracing enabled.
func MonitorProfiler(stopRule string) *Program {
	return overlog.MustParse(monitor.ProfilerRules(stopRule))
}

// InstallSnapshot installs the Chandy-Lamport snapshot machinery
// (bp1-bp2, sr-rules) on a node; tSnapFreq > 0 makes it a periodic
// initiator.
func InstallSnapshot(n *Node, tSnapFreq float64) error {
	return monitor.InstallSnapshot(n, tSnapFreq)
}

// MonitorSnapshotLookups returns the snapshot-lookup rules (l1s-l3s).
func MonitorSnapshotLookups() *Program { return monitor.SnapshotLookupProgram() }

// MonitorSnapshotConsistency returns the consistency probe running over
// consistent snapshots (cs4s/cs5s variant).
func MonitorSnapshotConsistency(period float64) *Program {
	return monitor.SnapshotConsistencyProgram(period)
}

// ProfileReport decodes profiler report tuples.
type ProfileReport = monitor.ProfileReport

// ParseProfileReport decodes a report@N(ID, RuleT, NetT, LocalT) tuple.
func ParseProfileReport(t Tuple) (ProfileReport, error) { return monitor.ParseReport(t) }

// RuleExecRow is a decoded ruleExec reflection row (§2.1).
type RuleExecRow = monitor.RuleExecRow

// RuleExecRows reads a node's ruleExec table (empty when tracing is off).
func RuleExecRows(n *Node) []RuleExecRow { return monitor.RuleExecRows(n) }

// FindTracedTuples returns the local IDs of memoized tuples with the
// given predicate name on a traced node — the forensic entry point for
// the profiler.
func FindTracedTuples(n *Node, name string) []uint64 {
	return monitor.FindTracedTuples(n, name)
}

// TupleArrivalTime finds when the identified tuple was consumed as a
// rule input on the node.
func TupleArrivalTime(n *Node, tupleID uint64) (float64, bool) {
	return monitor.ArrivalTime(n, tupleID)
}

// TraceRespEvent builds the traceResp event starting a backward profiler
// traversal for the identified tuple.
func TraceRespEvent(addr string, tupleID uint64, at float64) Tuple {
	return monitor.TraceRespEvent(addr, tupleID, at)
}

// SnapState reads a node's current (snapshot ID, phase).
func SnapState(n *Node) (int64, string) { return monitor.SnapState(n) }

// SnappedBestSucc reads the successor recorded in a snapshot at a node.
func SnappedBestSucc(n *Node, snapID int64) string {
	return monitor.SnappedBestSucc(n, snapID)
}

// ---- Chain replication (§3.4 generality substrate) ----

// InstallChainRep loads the chain-replication protocol and its monitors
// onto a node; next is the downstream replica ("-" for the tail).
func InstallChainRep(n *Node, next string) error { return chainrep.Install(n, next) }

// ChainPut / ChainGet build client requests for the chain.
func ChainPut(head, key, val string, reqID uint64, client string) Tuple {
	return chainrep.Put(head, key, val, reqID, client)
}

// ChainGet builds a read request for the chain's tail.
func ChainGet(tail, key string, reqID uint64, client string) Tuple {
	return chainrep.Get(tail, key, reqID, client)
}

// ChainLenEvent starts a chain-length traversal; ChainAuditEvent starts
// a replica-divergence audit for one key.
func ChainLenEvent(head string, e uint64) Tuple { return chainrep.LenEvent(head, e) }

// ChainAuditEvent starts a replica-divergence audit for one key.
func ChainAuditEvent(head, key string, e uint64) Tuple {
	return chainrep.AuditEvent(head, key, e)
}

// ---- Causal lineage (§3.4 extension) ----

// MonitorLineage returns the full causal-DAG traversal rules: inject
// TraceLineageEvent and collect lineage edges at the origin. maxDepth
// bounds the branching recursion.
func MonitorLineage(maxDepth int) *Program {
	return overlog.MustParse(monitor.LineageRules(maxDepth))
}

// LineageEdge is one decoded causal edge.
type LineageEdge = monitor.LineageEdge

// ParseLineageEdge decodes a lineage tuple.
func ParseLineageEdge(t Tuple) (LineageEdge, error) { return monitor.ParseLineage(t) }

// TraceLineageEvent starts a lineage traversal for a traced tuple.
func TraceLineageEvent(addr string, tupleID uint64) Tuple {
	return monitor.TraceLineageEvent(addr, tupleID)
}

// FormatLineage renders collected edges as an indented causal tree.
func FormatLineage(origin *Node, edges []LineageEdge) string {
	return monitor.LineageSummary(origin, edges)
}
