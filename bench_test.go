// Benchmarks regenerating the paper's evaluation (§4): one benchmark per
// reported experiment — the execution-logging overhead (E0, reported in
// the text) and Figures 4 through 7. Each sub-benchmark is one point of
// the corresponding figure; custom metrics carry the figure's axes
// (cpu_pct, mem_MB, live_tuples, tx_msgs).
//
// Run with:
//
//	go test -timeout 0 -bench=. -benchmem
//
// (the full evaluation takes tens of minutes: Figures 6 and 7 average
// three seeds per point, like the paper)
//
// Absolute values come from the engine's calibrated cost model (see
// DESIGN.md §4); the reproduction target is the shape of each series.
// EXPERIMENTS.md records paper-vs-measured for every row.
package p2go

import (
	"fmt"
	"testing"

	"p2go/internal/bench"
)

const benchSeed = 42

func report(b *testing.B, s bench.Sample) {
	b.ReportMetric(s.CPUPercent, "cpu_pct")
	b.ReportMetric(s.MemoryMB, "mem_MB")
	b.ReportMetric(float64(s.LiveTuples), "live_tuples")
	b.ReportMetric(float64(s.TxMessages), "tx_msgs")
}

// BenchmarkExecutionLoggingOverhead is E0: the cost of making execution
// traceable (paper: CPU 0.98% -> 1.38%, i.e. +40%; memory 8 -> 13 MB,
// i.e. +66%).
func BenchmarkExecutionLoggingOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run("tracing="+mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				off, on, err := bench.LoggingOverhead(benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "off" {
					report(b, off)
				} else {
					report(b, on)
				}
			}
		})
	}
}

// BenchmarkPeriodicRules is Figure 4: an increasing number of 1 s
// periodic rules on the measured node (paper: CPU grows roughly linearly
// from ~1% to ~4.5% at 250 rules; memory plateaus ~70% above baseline).
func BenchmarkPeriodicRules(b *testing.B) {
	for _, c := range []int{0, 50, 100, 150, 200, 250} {
		b.Run(fmt.Sprintf("rules=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.PeriodicRules(benchSeed, []int{c})
				if err != nil {
					b.Fatal(err)
				}
				report(b, s[0])
			}
		})
	}
}

// BenchmarkPiggybackRules is Figure 5: rules sharing one 1 s timer, each
// with a single state lookup (paper: CPU grows linearly to ~6% at 250 —
// steeper than Figure 4, because state lookups cost more than private
// timers).
func BenchmarkPiggybackRules(b *testing.B) {
	for _, c := range []int{0, 50, 100, 150, 200, 250} {
		b.Run(fmt.Sprintf("rules=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.PiggybackRules(benchSeed, []int{c})
				if err != nil {
					b.Fatal(err)
				}
				report(b, s[0])
			}
		})
	}
}

// BenchmarkConsistencyProbes is Figure 6: the proactive inconsistency
// detector at rates from 1/32 to 1 per second (paper: memory and
// messages grow linearly with rate; CPU superlinearly).
func BenchmarkConsistencyProbes(b *testing.B) {
	runRateFigure(b, bench.ConsistencyProbes)
}

// BenchmarkSnapshots is Figure 7: consistent snapshots at the same rates
// (paper: same shapes as Figure 6 but much cheaper than the probes at
// every rate).
func BenchmarkSnapshots(b *testing.B) {
	runRateFigure(b, bench.Snapshots)
}

func runRateFigure(b *testing.B, figure func(int64) ([]bench.Sample, error)) {
	// Compute the series once per b.N iteration and report each rate as
	// a sub-benchmark; the harness builds one fresh network per rate.
	var series []bench.Sample
	for _, rl := range bench.RateLabels {
		rl := rl
		b.Run("rate="+rl.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if series == nil {
					s, err := figure(benchSeed)
					if err != nil {
						b.Fatal(err)
					}
					series = s
				}
				for _, s := range series {
					if s.Label == rl.Label {
						report(b, s)
					}
				}
			}
		})
	}
}

// BenchmarkAblationIndexedJoins quantifies a design choice DESIGN.md
// calls out: P2-style planner-created join indices versus full scans,
// on the snapshot workload whose termination rules join a large
// channelState table.
func BenchmarkAblationIndexedJoins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		indexed, scanned, err := bench.AblationIndexedJoins(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(indexed.CPUPercent, "cpu_pct_indexed")
		b.ReportMetric(scanned.CPUPercent, "cpu_pct_scan")
	}
}

// BenchmarkAblationDeadGuard quantifies §3.1.3's fix: the ring with the
// dead-neighbor guard heals after crashes, the guard-free (buggy)
// variant oscillates. Metrics: 1 = healed; oscillation-event counts.
func BenchmarkAblationDeadGuard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guard, buggy, err := bench.AblationDeadGuard(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(guard.HealTime, "guard_heal_s")
		b.ReportMetric(buggy.HealTime, "buggy_heal_s")
		b.ReportMetric(guard.StaleSeconds, "guard_stale_entry_s")
		b.ReportMetric(buggy.StaleSeconds, "buggy_stale_entry_s")
		b.ReportMetric(float64(guard.Oscillations), "guard_oscill")
		b.ReportMetric(float64(buggy.Oscillations), "buggy_oscill")
	}
}
