// Command p2node runs an OverLog program on a small simulated network:
// the program is installed on every node, optional seed tuples are
// injected, and watched tuples are printed as they occur.
//
// Usage:
//
//	p2node -program prog.olg [-nodes 3] [-run 60] [-seed seeds.tuples]
//
// The seeds file holds one tuple per line in OverLog literal syntax:
//
//	link@n1("n2", 1).
//
// Tables can be dumped at exit with -dump table1,table2.
//
// Under -realtime, -metrics-addr serves every node's counters and
// latency histograms as a Prometheus /metrics endpoint while the
// network runs (see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"p2go"
	"p2go/internal/overlog"
	"p2go/internal/realtime"
	"p2go/internal/tuple"
)

func main() {
	var (
		programPath = flag.String("program", "", "OverLog program file (required)")
		nodes       = flag.Int("nodes", 1, "number of nodes n1..nN")
		runFor      = flag.Float64("run", 60, "virtual seconds to run")
		seedPath    = flag.String("seed", "", "file of seed tuples, one per line")
		dump        = flag.String("dump", "", "comma-separated tables to dump at exit")
		seed        = flag.Int64("rngseed", 1, "simulation random seed")
		tracing     = flag.Bool("trace", false, "enable execution logging")
		realTime    = flag.Bool("realtime", false, "run on wall-clock time (goroutine per node) instead of the simulator")
		metricsAddr = flag.String("metrics-addr", "", "with -realtime: serve Prometheus metrics for every node on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()
	if *programPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *metricsAddr != "" && !*realTime {
		log.Fatal("-metrics-addr needs -realtime (the simulator has no wall clock to scrape against)")
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := p2go.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	if *realTime {
		runRealtime(prog, *nodes, *runFor, *seedPath, *seed, *tracing, *dump, *metricsAddr)
		return
	}
	sim := p2go.NewSim()
	cfg := p2go.NetworkConfig{
		Seed: *seed,
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			fmt.Printf("[%10.3f] %-6s %v\n", now, node, t)
		},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			fmt.Fprintf(os.Stderr, "[%10.3f] %-6s rule %s: %v\n", now, node, ruleID, err)
		},
	}
	if *tracing {
		tc := p2go.DefaultTraceConfig()
		cfg.Tracing = &tc
	}
	net := p2go.NewNetwork(sim, cfg)
	for i := 1; i <= *nodes; i++ {
		n, err := net.AddNode(fmt.Sprintf("n%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			log.Fatal(err)
		}
	}

	if *seedPath != "" {
		if err := injectSeeds(net, *seedPath); err != nil {
			log.Fatal(err)
		}
	}
	net.Run(*runFor)

	if *dump != "" {
		for _, name := range strings.Split(*dump, ",") {
			name = strings.TrimSpace(name)
			for _, addr := range net.Addrs() {
				tb := net.Node(addr).Store().Get(name)
				if tb == nil {
					continue
				}
				tb.Scan(sim.Now(), func(t p2go.Tuple) {
					fmt.Printf("%s\n", t)
				})
			}
		}
	}
}

// runRealtime executes the program under the goroutine-per-node driver.
func runRealtime(prog *p2go.Program, nodes int, runFor float64, seedPath string, seed int64, tracing bool, dump, metricsAddr string) {
	net := realtime.NewNetwork(realtime.Config{
		Seed:     seed,
		MinDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			fmt.Printf("[%10.3f] %-6s %v\n", now, node, t)
		},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			fmt.Fprintf(os.Stderr, "[%10.3f] %-6s rule %s: %v\n", now, node, ruleID, err)
		},
	})
	for i := 1; i <= nodes; i++ {
		n, err := net.AddNode(fmt.Sprintf("n%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if tracing {
			if err := n.EnableTracing(p2go.DefaultTraceConfig()); err != nil {
				log.Fatal(err)
			}
		}
		if err := n.InstallProgram(prog); err != nil {
			log.Fatal(err)
		}
	}
	if metricsAddr != "" {
		bound, err := net.ServeMetrics(metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", bound)
	}
	net.Start()
	if seedPath != "" {
		src, err := os.ReadFile(seedPath)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			t, err := parseSeed(line)
			if err != nil {
				log.Fatal(err)
			}
			if err := net.Inject(t.Loc(), t); err != nil {
				log.Fatal(err)
			}
		}
	}
	time.Sleep(time.Duration(runFor * float64(time.Second)))
	net.Stop() // nodes are quiescent: safe to inspect their tables
	if dump != "" {
		for _, name := range strings.Split(dump, ",") {
			name = strings.TrimSpace(name)
			for i := 1; i <= nodes; i++ {
				tb := net.Node(fmt.Sprintf("n%d", i)).Store().Get(name)
				if tb == nil {
					continue
				}
				tb.Scan(runFor+1, func(t p2go.Tuple) { fmt.Printf("%s\n", t) })
			}
		}
	}
}

// injectSeeds parses "name@loc(args)." lines and injects each tuple at
// its location node.
func injectSeeds(net *p2go.Network, path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		t, err := parseSeed(line)
		if err != nil {
			return fmt.Errorf("seed %q: %w", line, err)
		}
		if err := net.Inject(t.Loc(), t); err != nil {
			return err
		}
	}
	return nil
}

// parseSeed reuses the OverLog parser: the line is parsed as a rule
// HEAD (which admits list literals and arithmetic) and evaluated with no
// bindings.
func parseSeed(line string) (p2go.Tuple, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	prog, err := overlog.Parse(line + ` :- seedDummy@"x"().`)
	if err != nil {
		return p2go.Tuple{}, err
	}
	rules := prog.Rules()
	if len(rules) != 1 {
		return p2go.Tuple{}, fmt.Errorf("expected exactly one tuple")
	}
	f := &rules[0].Head
	args := f.AllArgs()
	fields := make([]tuple.Value, len(args))
	for i, a := range args {
		v, err := overlog.Eval(a, func(string) (tuple.Value, bool) {
			return tuple.Nil, false
		}, constCtx{})
		if err != nil {
			return p2go.Tuple{}, err
		}
		fields[i] = v
	}
	return tuple.New(f.Name, fields...), nil
}

type constCtx struct{}

func (constCtx) Now() float64      { return 0 }
func (constCtx) Rand64() uint64    { return 0 }
func (constCtx) LocalAddr() string { return "" }
