package main

import (
	"os"
	"path/filepath"
	"testing"

	"p2go"
)

func TestParseSeed(t *testing.T) {
	good := []struct {
		src  string
		name string
		loc  string
	}{
		{`link@n1("n2", 1).`, "link", "n1"},
		{`peer@n3("n1").`, "peer", "n3"},
		{`node@a(0xff).`, "node", "a"},
		{`conf@host(3.5, true, [1, 2]).`, "conf", "host"},
	}
	for _, c := range good {
		tp, err := parseSeed(c.src)
		if err != nil {
			t.Errorf("parseSeed(%q): %v", c.src, err)
			continue
		}
		if tp.Name != c.name || tp.Loc() != c.loc {
			t.Errorf("parseSeed(%q) = %v", c.src, tp)
		}
	}
	bad := []string{
		`not a tuple`,
		`x@n1(Unbound).`,
		`a@n1(1), b@n1(2).`,
	}
	for _, src := range bad {
		if _, err := parseSeed(src); err == nil {
			t.Errorf("parseSeed(%q) must fail", src)
		}
	}
}

func TestInjectSeedsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seeds")
	err := os.WriteFile(path, []byte(`
// comment
link@n1("n2", 1).

link@n2("n1", 1).
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	sim := p2go.NewSim()
	net := p2go.NewNetwork(sim, p2go.NetworkConfig{Seed: 1})
	prog := p2go.MustParse(`materialize(link, infinity, infinity, keys(1,2)).`)
	for _, a := range []string{"n1", "n2"} {
		n, _ := net.AddNode(a)
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	if err := injectSeeds(net, path); err != nil {
		t.Fatal(err)
	}
	net.Run(1)
	for _, a := range []string{"n1", "n2"} {
		if got := net.Node(a).Store().Get("link").Count(); got != 1 {
			t.Errorf("%s link rows = %d", a, got)
		}
	}
	if err := injectSeeds(net, filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file must fail")
	}
}
