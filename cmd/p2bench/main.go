// Command p2bench regenerates the evaluation of §4 of the paper: the
// execution-logging overhead and Figures 4-7, printed as the series the
// paper plots. See EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	p2bench -exp all            # everything (several minutes)
//	p2bench -exp logging        # E0: cost of execution logging
//	p2bench -exp fig4           # periodic rules
//	p2bench -exp fig5           # piggybacked rules
//	p2bench -exp fig6           # proactive consistency probes
//	p2bench -exp fig7           # consistent snapshots
//	p2bench -exp smoke          # one fig6 point in both drivers + speedup
//	p2bench -exp churn          # crash/rejoin churn with §3.1 detectors
//	p2bench -exp lifecycle      # install/measure/uninstall each §3.1 detector
//	p2bench -exp scenario -scenario f.txt   # replay a fault scenario file
//	p2bench -exp trace          # export a causal Chrome trace + Prometheus scrape
//	p2bench -exp profiler       # stats-publication overhead on the churn run
//	p2bench -exp intranode      # intra-node strand scheduler speedup sweep
//	p2bench -exp forensics      # durable trace store: overhead + lineage queries
//	p2bench -exp scale          # 100/1k/10k-host sweep: bytes/host + events/sec
//	p2bench -exp aggtree        # in-network aggregation trees vs flat collection
//	p2bench -exp realtime       # wall-clock UDP ingest: 100k+ events/sec over loopback
//
// -parallel runs every ring on simnet's conservative parallel driver
// (same virtual-time results, different wall clock); -workers bounds its
// worker pool (0 = GOMAXPROCS). -json additionally writes each
// experiment's result to BENCH_<exp>.json. -cpuprofile/-memprofile write
// pprof profiles covering the selected experiment(s) (see EXPERIMENTS.md
// for the workflow).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"p2go/internal/bench"
	"p2go/internal/faults"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: logging, fig4, fig5, fig6, fig7, smoke, ablation, churn, lifecycle, scenario, trace, profiler, intranode, forensics, scale, aggtree, realtime, all")
		seed     = flag.Int64("seed", 42, "random seed")
		parallel = flag.Bool("parallel", false, "run rings on the conservative parallel simnet driver")
		workers  = flag.Int("workers", 0, "parallel worker pool size (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "also write each experiment's result to BENCH_<exp>.json")
		scenario = flag.String("scenario", "", "fault scenario file for -exp scenario (see internal/faults.Parse)")
		quick    = flag.Bool("quick", false, "shrink -exp lifecycle/trace/intranode/forensics/scale/aggtree to a smoke-sized run (CI)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		rtRate   = flag.Int("rate", 0, "-exp realtime: offered events/sec (0 = experiment default)")
		rtPay    = flag.Int("payload", 0, "-exp realtime: payload bytes per event (0 = default 16)")
		rtConns  = flag.Int("conns", 0, "-exp realtime: generator connections (0 = default 2)")
	)
	flag.Parse()
	bench.Parallel = *parallel
	bench.Workers = *workers

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	counts := []int{0, 50, 100, 150, 200, 250}
	run := func(name string) {
		var payload any
		switch name {
		case "logging":
			off, on, err := bench.LoggingOverhead(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("E0: execution logging overhead (paper: CPU 0.98% -> 1.38%, memory 8 MB -> 13 MB)")
			fmt.Printf("  tracing off: %v\n", off)
			fmt.Printf("  tracing on : %v\n", on)
			fmt.Printf("  increase: CPU %+.0f%%, memory %+.0f%%\n",
				100*(on.CPUPercent-off.CPUPercent)/off.CPUPercent,
				100*(on.MemoryMB-off.MemoryMB)/off.MemoryMB)
			payload = map[string]bench.Sample{"off": off, "on": on}
		case "fig4":
			s, err := bench.PeriodicRules(*seed, counts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTable(
				"Figure 4: CPU and memory vs number of 1s periodic rules", s))
			payload = s
		case "fig5":
			s, err := bench.PiggybackRules(*seed, counts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTable(
				"Figure 5: CPU and memory vs number of piggybacked rules (one shared 1s timer, one state lookup each)", s))
			payload = s
		case "fig6":
			s, err := bench.ConsistencyProbes(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTable(
				"Figure 6: proactive inconsistency detector at increasing rates (1/s)", s))
			payload = s
		case "fig7":
			s, err := bench.Snapshots(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTable(
				"Figure 7: consistent snapshots at increasing rates (1/s)", s))
			payload = s
		case "smoke":
			res, err := bench.SpeedupSmoke(*seed, *workers)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Smoke: Figure 6 point (consistency probes at 1/4 Hz), sequential vs parallel driver")
			fmt.Printf("  sequential: wall=%8.2fs  %v\n", res.SeqWall.Seconds(), res.Seq)
			fmt.Printf("  parallel  : wall=%8.2fs  %v\n", res.ParWall.Seconds(), res.Par)
			fmt.Printf("  speedup: %.2fx on %d CPU(s); results identical: %v\n",
				res.Speedup(), runtime.NumCPU(), res.Match)
			fmt.Printf("  windows: %d, mean runnable hosts/window: %.1f (available concurrency)\n",
				res.Stats.Windows, res.Occupancy())
			if !res.Match {
				log.Fatal("determinism contract violated: drivers disagree")
			}
			payload = res
		case "ablation":
			idx, scan, err := bench.AblationIndexedJoins(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: indexed joins vs full scans (snapshot workload at 1/4 Hz)")
			fmt.Printf("  indexed: %v\n  scans  : %v\n", idx, scan)
			guard, buggy, err := bench.AblationDeadGuard(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Ablation: dead-neighbor guard (§3.1.3) after crashing 2 of 12 nodes")
			fmt.Printf("  with guard:    healed at %+.0fs, stale-entry exposure %6.0f entry-seconds, %d oscillation events\n",
				guard.HealTime, guard.StaleSeconds, guard.Oscillations)
			fmt.Printf("  without guard: healed at %+.0fs, stale-entry exposure %6.0f entry-seconds, %d oscillation events\n",
				buggy.HealTime, buggy.StaleSeconds, buggy.Oscillations)
			payload = map[string]any{
				"indexedJoins": map[string]bench.Sample{"indexed": idx, "scans": scan},
				"deadGuard":    map[string]bench.DeadGuardResult{"guard": guard, "buggy": buggy},
			}
		case "churn":
			res, err := bench.Churn(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatChurn(res))
			payload = res
		case "lifecycle":
			res, err := bench.Lifecycle(*seed, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatLifecycle(res))
			if res.AccountingErr != "" {
				log.Fatal("per-query accounting invariant violated")
			}
			for _, s := range res.Samples {
				if !s.Restored {
					log.Fatalf("lifecycle contract violated: %s did not restore the dataflow shape", s.Detector)
				}
			}
			payload = res
		case "trace":
			res, err := bench.TraceExport(*seed, *quick, ".")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatTrace(res))
			if len(res.Stats.FlowNodes) < 3 {
				log.Fatalf("trace contract violated: flows span only %d nodes", len(res.Stats.FlowNodes))
			}
			payload = res
		case "profiler":
			res, err := bench.StatsOverhead(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatStatsOverhead(res))
			if res.AccountingErr != "" {
				log.Fatal("per-query accounting invariant violated")
			}
			payload = res
		case "agg":
			res, err := bench.AggMaintenance(*seed, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatAgg(res))
			if !res.EmissionsIdentical {
				log.Fatalf("agg contract violated: %s", res.Divergence)
			}
			if res.Speedup < 2 {
				log.Fatalf("agg contract violated: incremental maintenance only %.2fx faster than rescans, want >=2x", res.Speedup)
			}
			if res.AccountingErr != "" {
				log.Fatal("per-query accounting invariant violated")
			}
			payload = res
		case "intranode":
			res, err := bench.Intranode(*seed, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Intra-node: conflict-free strand scheduling, one wide fan-out per tick")
			fmt.Println(res)
			if !res.FingerprintOK {
				log.Fatal("determinism contract violated: ExecMulti diverged from ExecSingle")
			}
			if !res.RingMatch {
				log.Fatal("determinism contract violated: (ExecMode x simnet driver) rings disagree")
			}
			payload = res
		case "forensics":
			res, err := bench.Forensics(*seed, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatForensics(res))
			if res.OverheadPercent > 10 {
				log.Fatalf("forensics contract violated: store write overhead %.2f%% BusySeconds, want <= 10%%", res.OverheadPercent)
			}
			if !res.FingerprintOK {
				log.Fatal("determinism contract violated: attaching the trace store perturbed emissions")
			}
			if res.RestartMarks < res.Victims {
				log.Fatalf("forensics contract violated: %d restart markers for %d victims", res.RestartMarks, res.Victims)
			}
			if res.AccountingErr != "" {
				log.Fatal("per-query accounting invariant violated")
			}
			payload = res
		case "scale":
			res, err := bench.Scale(*seed, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatScale(res))
			if !res.FingerprintOK {
				log.Fatal("determinism contract violated: (shared|private plans) x (seq|par driver) rings disagree")
			}
			if !res.ReductionOK {
				log.Fatalf("scale contract violated: shared plans reduce install bytes/host only %.2fx, want >= %.0fx",
					res.PlanReduction, bench.ScaleMinPlanReduction)
			}
			if !res.InstallBudgetOK {
				log.Fatalf("scale contract violated: install bytes/host %d exceeds the %d-byte budget",
					res.SharedInstallBytesPerHost, res.InstallBudgetBytes)
			}
			if !res.BudgetOK {
				log.Fatalf("scale contract violated: steady-state bytes/host exceeds the %d-byte budget", res.BudgetBytes)
			}
			payload = res
		case "aggtree":
			res, err := bench.AggTree(*seed, *quick)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatAggTree(res))
			if !res.ValuesOK {
				log.Fatal("aggtree contract violated: tree/flat results do not match the oracle exactly")
			}
			if !res.FanInOK {
				log.Fatalf("aggtree contract violated: tree fan-in %d (bound %d), reduction %.1fx (want >= %.0fx)",
					res.Tree.MaxFanIn, res.FanInBound, res.FanInReduction, bench.AggTreeMinFanInReduction)
			}
			if !res.TreeFPIdentical || !res.FlatFPIdentical || !res.ResultFPEqual {
				log.Fatal("determinism contract violated: (tree|flat) x (seq|par) cells disagree")
			}
			if res.Tree.BilledBusy <= 0 {
				log.Fatal("aggtree contract violated: no busy-time billed to the monitoring query")
			}
			if res.AccountingErr != "" {
				log.Fatal("per-query accounting invariant violated")
			}
			payload = res
		case "realtime":
			res, err := bench.Realtime(*seed, *quick, *rtRate, *rtPay, *rtConns)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatRealtime(res))
			if !res.SustainedOK {
				log.Fatalf("realtime contract violated: sustained %.0f events/sec, want >= %.0f",
					res.Drop.EventsPerSec, res.MinEventsPerSec)
			}
			if !res.Drop.InvariantOK || !res.Block.InvariantOK {
				log.Fatal("realtime contract violated: drop accounting does not balance (received != processed + dropDecode + dropOverload + dropShutdown)")
			}
			if !res.ReaderAllocsOK {
				log.Fatalf("realtime contract violated: reader hot path %.2f allocs/datagram, want <= %.1f",
					res.ReaderAllocsPerEvent, float64(bench.RealtimeMaxReaderAllocs))
			}
			if !res.BlockNoDrops {
				log.Fatalf("realtime contract violated: backpressure mode shed %d events", res.Block.Transport.DropOverload)
			}
			payload = res
		case "scenario":
			if *scenario == "" {
				log.Fatal("-exp scenario needs -scenario <file>")
			}
			text, err := os.ReadFile(*scenario)
			if err != nil {
				log.Fatal(err)
			}
			sc, err := faults.Parse(string(text))
			if err != nil {
				log.Fatal(err)
			}
			res, err := bench.RunScenario(*seed, sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(bench.FormatScenario(res))
			payload = res
		default:
			log.Fatalf("unknown experiment %q", name)
		}
		fmt.Println()
		if *jsonOut && payload != nil {
			path := fmt.Sprintf("BENCH_%s.json", name)
			if err := bench.WriteJSON(path, name, *seed, payload); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"logging", "fig4", "fig5", "fig6", "fig7", "ablation", "churn", "lifecycle"} {
			run(name)
		}
		return
	}
	run(*exp)
}
