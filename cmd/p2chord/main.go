// Command p2chord runs a simulated Chord ring with optional on-line
// monitors (§3 of the paper) and failure injection, reporting alarms and
// a final correctness audit against the ID-order oracle.
//
// Usage:
//
//	p2chord -n 21 -run 300 [-monitors ring,passive,ordering,oscill,consistency]
//	        [-crash n4,n7 -crashat 200] [-buggy] [-seed 42] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"p2go"
)

// runLookupWorkload issues random lookups from random live nodes and
// verifies every answer against the ID-order oracle.
func runLookupWorkload(ring *p2go.ChordRing, n int, dead map[string]bool) {
	members := ring.Alive(dead)
	rng := rand.New(rand.NewSource(99))
	type want struct {
		key   uint64
		owner string
	}
	wants := map[uint64]want{}
	got := map[uint64]string{}
	if err := ring.Node(members[0]).InstallProgram(p2go.WatchProgram("lookupResults")); err != nil {
		log.Fatal(err)
	}
	// Results land on the requester; watch everywhere via extra hook is
	// already wired into ring.Watched.
	for i := 0; i < n; i++ {
		key := rng.Uint64()
		reqID := uint64(1<<32) + uint64(i)
		from := members[rng.Intn(len(members))]
		if err := ring.Node(from).InstallProgram(p2go.WatchProgram("lookupResults")); err != nil {
			log.Fatal(err)
		}
		if err := ring.Lookup(from, key, reqID); err != nil {
			log.Fatal(err)
		}
		wants[reqID] = want{key: key, owner: chordTrueOwner(key, members)}
	}
	ring.Run(30)
	for _, w := range ring.Watched {
		if w.T.Name == "lookupResults" {
			got[w.T.Field(4).AsID()] = w.T.Field(3).AsStr()
		}
	}
	correct, answered := 0, 0
	for reqID, w := range wants {
		owner, ok := got[reqID]
		if !ok {
			continue
		}
		answered++
		if owner == w.owner {
			correct++
		}
	}
	fmt.Printf("\nlookup workload: %d issued, %d answered, %d correct\n",
		n, answered, correct)
}

func main() {
	var (
		n        = flag.Int("n", 21, "ring size (addresses n1..nN; n1 is the landmark)")
		runFor   = flag.Float64("run", 300, "virtual seconds to run")
		monitors = flag.String("monitors", "", "comma list: ring,passive,ordering,oscill,consistency,snapshot")
		crash    = flag.String("crash", "", "comma list of nodes to fail-stop")
		crashAt  = flag.Float64("crashat", 0, "virtual time of the crashes (0 = halfway)")
		buggy    = flag.Bool("buggy", false, "omit the dead-neighbor guard (recycled dead neighbor bug)")
		seed     = flag.Int64("seed", 42, "random seed")
		verbose  = flag.Bool("v", false, "print every watched tuple")
		lookups  = flag.Int("lookups", 0, "random lookups to issue after convergence, verified against the ID-order oracle")
	)
	flag.Parse()

	var extras []*p2go.Program
	snapshots := false
	for _, m := range strings.Split(*monitors, ",") {
		switch strings.TrimSpace(m) {
		case "":
		case "snapshot":
			snapshots = true
		case "ring":
			extras = append(extras, p2go.MonitorRingProbes(10))
		case "passive":
			extras = append(extras, p2go.MonitorRingPassive())
		case "ordering":
			extras = append(extras, p2go.MonitorOrderingOpportunistic(),
				p2go.MonitorOrderingTraversal())
		case "oscill":
			extras = append(extras, p2go.MonitorOscillation())
		case "consistency":
			extras = append(extras, p2go.MonitorConsistency(20))
		default:
			log.Fatalf("unknown monitor %q", m)
		}
	}

	alarms := map[string]int{}
	ring, err := p2go.NewChordRing(p2go.ChordRingConfig{
		N: *n, Seed: *seed, Buggy: *buggy, ExtraPrograms: extras,
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			alarms[t.Name]++
			if *verbose {
				fmt.Printf("[%9.2f] %-6s %v\n", now, node, t)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if snapshots {
		for i, a := range ring.Addrs {
			freq := 0.0
			if i == len(ring.Addrs)-1 {
				freq = 30 // the measured node initiates every 30 s
			}
			if err := p2go.InstallSnapshot(ring.Node(a), freq); err != nil {
				log.Fatal(err)
			}
		}
	}

	at := *crashAt
	if at == 0 {
		at = *runFor / 2
	}
	dead := map[string]bool{}
	if *crash != "" {
		ring.Run(at)
		for _, a := range strings.Split(*crash, ",") {
			a = strings.TrimSpace(a)
			fmt.Printf("crashing %s at t=%.1f\n", a, at)
			ring.Net.Crash(a)
			dead[a] = true
		}
		ring.Run(*runFor - at)
	} else {
		ring.Run(*runFor)
	}

	if *lookups > 0 {
		runLookupWorkload(ring, *lookups, dead)
	}

	members := ring.Alive(dead)
	bad := ring.CheckRing(members)
	fmt.Printf("\n=== audit at t=%.1f (%d members) ===\n", ring.Sim.Now(), len(members))
	if len(bad) == 0 {
		fmt.Println("ring invariant holds: every bestSucc/pred matches the oracle")
	} else {
		for _, b := range bad {
			fmt.Println("VIOLATION:", b)
		}
	}
	if len(ring.Errors) > 0 {
		fmt.Printf("%d rule errors (first: %s)\n", len(ring.Errors), ring.Errors[0])
	}
	if len(alarms) > 0 {
		fmt.Println("\nwatched-tuple counts:")
		for name, c := range alarms {
			fmt.Printf("  %-20s %d\n", name, c)
		}
	}
	if snapshots {
		id, phase := p2go.SnapState(ring.Node(fmt.Sprintf("n%d", *n)))
		fmt.Printf("\nsnapshots: initiator at snapshot %d (%s)\n", id, phase)
	}
	m := ring.Node(fmt.Sprintf("n%d", *n)).Metrics()
	fmt.Printf("\nmeasured node n%d: cpu=%.3f%% msgs=%d/%d rules=%d live=%d tuples\n",
		*n, 100*m.BusySeconds/ring.Sim.Now(), m.MsgsSent, m.MsgsRecv,
		m.RuleFires, ring.Node(fmt.Sprintf("n%d", *n)).Store().LiveTuples())
}

// chordTrueOwner is the ID-order oracle for a key.
func chordTrueOwner(key uint64, members []string) string {
	best := ""
	var bestID uint64
	var minID uint64
	minAddr := ""
	for _, m := range members {
		id := p2go.ChordNodeID(m)
		if minAddr == "" || id < minID {
			minID, minAddr = id, m
		}
		if id >= key && (best == "" || id < bestID) {
			best, bestID = m, id
		}
	}
	if best == "" {
		return minAddr
	}
	return best
}
