package realtime

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// TestInjectOverloadDrop: with the default OverloadDrop policy a full
// queue sheds the injected event, returns ErrOverload and counts the
// drop — deterministically, on an unstarted node whose queue nothing
// drains.
func TestInjectOverloadDrop(t *testing.T) {
	u, err := NewUDPNode(UDPNodeConfig{Addr: "a", Listen: "127.0.0.1:0", Seed: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	ev := tuple.New("ev", tuple.Str("a"), tuple.Int(1))
	for i := 0; i < 2; i++ {
		if err := u.Inject(ev); err != nil {
			t.Fatalf("inject %d into empty queue: %v", i, err)
		}
	}
	if err := u.Inject(ev); !errors.Is(err, ErrOverload) {
		t.Fatalf("inject into full queue = %v, want ErrOverload", err)
	}
	if s := u.TransportStats(); s.DropInject != 1 {
		t.Errorf("DropInject = %d, want 1", s.DropInject)
	}
}

// TestInjectOverloadBlock: under OverloadBlock a full queue makes
// Inject wait — and complete as soon as the executor drains.
func TestInjectOverloadBlock(t *testing.T) {
	u, err := NewUDPNode(UDPNodeConfig{
		Addr: "a", Listen: "127.0.0.1:0", Seed: 1, QueueDepth: 1, Overload: OverloadBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	ev := tuple.New("ev", tuple.Str("a"), tuple.Int(1))
	if err := u.Inject(ev); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- u.Inject(ev) }()
	select {
	case err := <-unblocked:
		t.Fatalf("Inject returned %v while the queue was full; want blocked", err)
	case <-time.After(100 * time.Millisecond):
	}
	u.Start() // executor drains the queue, releasing the blocked call
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("blocked Inject = %v after drain, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Inject still blocked after the executor started")
	}
	if s := u.TransportStats(); s.DropInject != 0 {
		t.Errorf("DropInject = %d under backpressure, want 0", s.DropInject)
	}
}

// TestNetworkInjectOverload: the channel-transport Network honors the
// same policy surface — with the executor wedged and the queue full,
// Inject sheds with ErrOverload and the drop is counted.
func TestNetworkInjectOverload(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, QueueDepth: 2})
	if _, err := n.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	release := make(chan struct{})
	defer close(release)
	n.hosts["a"].tasks <- task{at: time.Now(), kind: taskFunc, fn: func() { <-release }}
	ev := tuple.New("ev", tuple.Str("a"), tuple.Int(1))
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := n.Inject("a", ev)
		if errors.Is(err, ErrOverload) {
			break
		}
		if err != nil {
			t.Fatalf("Inject = %v, want nil or ErrOverload", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled behind the wedged executor")
		}
	}
	s, err := n.TransportStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if s.DropInject == 0 {
		t.Error("DropInject = 0 after a shed Inject")
	}
}

// TestDropAccountingUnderOverload hammers a tiny queue with real UDP
// traffic while the executor is wedged, then releases it and checks the
// conservation law: every received datagram is processed or accounted
// to exactly one drop reason. Run under -race in CI (the reader,
// executor, generator and this goroutine all touch the counters).
func TestDropAccountingUnderOverload(t *testing.T) {
	u, err := NewUDPNode(UDPNodeConfig{
		Addr: "rt", Listen: "127.0.0.1:0", Seed: 1, QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	prog := overlog.MustParse("r1 seen@N(S) :- ev@N(S, P).\n")
	if err := u.Node().InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	u.Start()
	release := make(chan struct{})
	u.tasks <- task{at: time.Now(), kind: taskFunc, fn: func() { <-release }}

	gs, err := GenerateTraffic(GenConfig{
		Target: u.LocalAddr(), Dst: "rt", Rate: 20000, Conns: 2, Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	deadline := time.Now().Add(5 * time.Second)
	var s TransportStats
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		prev := s
		s = u.TransportStats()
		if s == prev && s.DatagramsRecv == s.DatagramsProcessed+s.DropDecode+s.DropOverload+s.DropShutdown {
			break
		}
	}
	if s.DatagramsRecv != s.DatagramsProcessed+s.DropDecode+s.DropOverload+s.DropShutdown {
		t.Fatalf("accounting does not balance: %+v", s)
	}
	if s.DropOverload == 0 {
		t.Errorf("no overload drops despite queue depth 8 against %d offered datagrams", gs.Sent)
	}
	if s.DatagramsRecv == 0 {
		t.Error("no datagrams received")
	}
}

// TestReaderAllocsPerDatagram gates the reader hot path at the ISSUE-10
// budget of <=1 alloc per datagram (steady state measures 0: pooled
// buffer, interned source, closure-free task).
func TestReaderAllocsPerDatagram(t *testing.T) {
	allocs, err := MeasureReaderAllocs(5000)
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 1 {
		t.Errorf("reader hot path = %.3f allocs/datagram, want <= 1", allocs)
	}
}

// BenchmarkReaderHotPath measures the dispatch path (decode, account,
// enqueue, recycle) in isolation; run with -benchmem to see the
// allocation rate the test above gates.
func BenchmarkReaderHotPath(b *testing.B) {
	u, err := NewUDPNode(UDPNodeConfig{
		Addr: "benchrt", Listen: "127.0.0.1:0", Seed: 1, QueueDepth: 16, MaxDatagram: 2048,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer u.conn.Close()
	raw := tuple.Marshal(nil, tuple.New("ev", tuple.Str("benchrt"), tuple.ID(7), tuple.Str("xxxxxxxxxxxxxxxx")))
	frame := appendDatagram(nil, engine.Envelope{Src: "gen", SrcTupleID: 1, Raw: raw}, 1)
	at := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := u.pool.get()
		copy(*buf, frame)
		u.dispatch(buf, len(frame), at)
		select {
		case tk := <-u.tasks:
			if tk.buf != nil {
				u.pool.put(tk.buf)
			}
		default:
		}
	}
}

// TestUDPPeriodicCadence: UDP-node periodics on the single resettable
// timer fire at roughly wall-clock rate (regression for the re-arm
// rewrite; the Network equivalent is TestRealtimePeriodic).
func TestUDPPeriodicCadence(t *testing.T) {
	wl := &watchLog{}
	u, err := NewUDPNode(UDPNodeConfig{
		Addr: "a", Listen: "127.0.0.1:0", Seed: 5,
		OnWatch: func(_ float64, tp tuple.Tuple) { wl.add(tp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	err = u.Node().InstallProgram(overlog.MustParse(`
watch(tick).
t1 tick@N(E) :- periodic@N(E, 0.05).
`))
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	time.Sleep(500 * time.Millisecond)
	u.Stop()
	got := wl.count("tick")
	if got < 4 || got > 15 {
		t.Errorf("ticks in 0.5s at 20 Hz = %d, want roughly 10", got)
	}
}

// TestTransportStatsPublished: the transport counters flow into the
// observability surfaces — ObsCounters/MetricsSnapshot extras, the
// queryable nodeStats table (§3.2 profiler), and the Prometheus
// exposition.
func TestTransportStatsPublished(t *testing.T) {
	u, err := NewUDPNode(UDPNodeConfig{Addr: "a", Listen: "127.0.0.1:0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	if err := u.Node().EnableStatsPublication(0.05); err != nil {
		t.Fatal(err)
	}
	metricsAddr, err := u.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	u.Start()

	// Extras carry the transport counters.
	s := u.MetricsSnapshot()
	found := false
	for _, c := range s.Extras {
		if c.Name == "TransportDatagramsRecv" {
			found = true
		}
	}
	if !found {
		t.Fatalf("TransportDatagramsRecv missing from ObsCounters extras: %v", s.Extras)
	}

	// The nodeStats table gains the transport rows after a publication
	// firing.
	deadline := time.Now().Add(3 * time.Second)
	published := false
	for !published && time.Now().Before(deadline) {
		time.Sleep(30 * time.Millisecond)
		res := make(chan bool, 1)
		select {
		case u.tasks <- task{at: time.Now(), kind: taskFunc, fn: func() {
			ok := false
			if tbl := u.node.Store().Get("nodeStats"); tbl != nil {
				tbl.Scan(1e12, func(row tuple.Tuple) {
					if row.Arity() >= 3 && row.Field(2).AsStr() == "TransportDatagramsRecv" {
						ok = true
					}
				})
			}
			res <- ok
		}}:
			published = <-res
		case <-u.stopped:
			t.Fatal("node stopped")
		}
	}
	if !published {
		t.Error("TransportDatagramsRecv row never appeared in nodeStats")
	}

	// The Prometheus exposition includes the transport series.
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "transport_datagrams_recv") {
		t.Errorf("scrape lacks transport_datagrams_recv:\n%s", body)
	}
}
