package realtime

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// chatterProgram generates steady load: a periodic rule pings the peer,
// which materializes what it heard.
const chatterProgram = `
materialize(heard, 10, 1000, keys(2)).
c1 ping@Peer(NAddr, E) :- periodic@NAddr(E, 0.01), peer@NAddr(Peer).
c2 heard@NAddr(Src) :- ping@NAddr(Src, E).
materialize(peer, infinity, 1, keys(2)).
`

// TestMetricsSnapshotUnderLoad hammers a running realtime network with
// messages and timers while concurrent readers take MetricsSnapshots.
// Under -race (the make check gate) this locks in the single-writer
// discipline: snapshots ride the node's own task queue instead of
// touching node state from foreign goroutines.
func TestMetricsSnapshotUnderLoad(t *testing.T) {
	net := NewNetwork(Config{Seed: 7})
	prog := overlog.MustParse(chatterProgram)
	for _, a := range []string{"ra", "rb"} {
		n, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	net.Node("ra").SeedLocal(tuple.New("peer", tuple.Str("ra"), tuple.Str("rb")))
	net.Node("rb").SeedLocal(tuple.New("peer", tuple.Str("rb"), tuple.Str("ra")))
	net.Start()
	defer net.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Injector goroutine adds extra foreign-goroutine traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			net.Inject("ra", tuple.New("ping", tuple.Str("ra"), tuple.Str("inj"), tuple.ID(uint64(i)))) //nolint:errcheck
			time.Sleep(time.Millisecond)
		}
	}()
	// Concurrent snapshot readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, a := range []string{"ra", "rb"} {
					if _, err := net.MetricsSnapshot(a); err != nil {
						t.Errorf("snapshot %s: %v", a, err)
						return
					}
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	s, err := net.MetricsSnapshot("rb")
	if err != nil {
		t.Fatal(err)
	}
	if s.Node.TuplesProcessed == 0 || s.Node.TimerFires == 0 {
		t.Errorf("node did no work under load: %+v", s.Node)
	}
	if s.Hists.QueueWait.Count() == 0 {
		t.Error("queue-wait histogram empty despite task traffic")
	}
	if s.Hists.HopLatency.Count() == 0 {
		t.Error("hop-latency histogram empty despite cross-node pings")
	}
	if len(s.Queries) == 0 {
		t.Error("no per-query bills in snapshot")
	}
	// Snapshot after Stop (direct-read path).
	net.Stop()
	if _, err := net.MetricsSnapshot("ra"); err != nil {
		t.Errorf("stopped snapshot: %v", err)
	}
}

// TestNetworkServeMetrics scrapes the in-process network's aggregated
// /metrics endpoint (the cmd/p2node -metrics-addr path): one exposition
// covering every node, served safely while the network runs.
func TestNetworkServeMetrics(t *testing.T) {
	net := NewNetwork(Config{Seed: 3})
	prog := overlog.MustParse(chatterProgram)
	for _, a := range []string{"ma", "mb"} {
		n, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	net.Node("ma").SeedLocal(tuple.New("peer", tuple.Str("ma"), tuple.Str("mb")))
	net.Node("mb").SeedLocal(tuple.New("peer", tuple.Str("mb"), tuple.Str("ma")))
	addr, err := net.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body := string(raw)
		if strings.Contains(body, `p2_timer_fires_total{node="ma"}`) &&
			strings.Contains(body, `p2_timer_fires_total{node="mb"}`) &&
			strings.Contains(body, "# TYPE p2_queue_wait_seconds histogram") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("aggregated scrape incomplete before deadline:\n%s", body)
		}
	}
	net.Stop()
	// The listener dies with the network (drop the kept-alive connection
	// first so the client has to dial again).
	http.DefaultClient.CloseIdleConnections()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("metrics endpoint still up after Stop")
	}
}

// TestUDPServeMetrics starts two UDP nodes, lets them chatter, and
// scrapes the Prometheus endpoint while the node is live: the scrape
// must parse as text exposition with this node's counters, and the
// snapshot path must be race-free (exercised under -race).
func TestUDPServeMetrics(t *testing.T) {
	a, err := NewUDPNode(UDPNodeConfig{Addr: "ua", Listen: "127.0.0.1:0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := NewUDPNode(UDPNodeConfig{Addr: "ub", Listen: "127.0.0.1:0", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if err := a.AddPeer("ub", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("ua", a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	prog := overlog.MustParse(chatterProgram)
	if err := a.Node().InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := b.Node().InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	a.Node().SeedLocal(tuple.New("peer", tuple.Str("ua"), tuple.Str("ub")))
	b.Node().SeedLocal(tuple.New("peer", tuple.Str("ub"), tuple.Str("ua")))

	addr, err := b.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()

	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		time.Sleep(100 * time.Millisecond)
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		if strings.Contains(body, `p2_msgs_recv_total{node="ub"}`) &&
			!strings.Contains(body, `p2_msgs_recv_total{node="ub"} 0`) {
			break // node has processed cross-node traffic
		}
		if time.Now().After(deadline) {
			t.Fatalf("no traffic visible in scrape before deadline:\n%s", body)
		}
	}
	for _, want := range []string{
		"# TYPE p2_busy_seconds_total counter",
		`p2_timer_fires_total{node="ub"}`,
		"# TYPE p2_queue_wait_seconds histogram",
		`p2_queue_wait_seconds_count{node="ub"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// A direct concurrent snapshot agrees with the idea that counters
	// only grow.
	s1 := b.MetricsSnapshot()
	s2 := b.MetricsSnapshot()
	if s2.Node.TuplesProcessed < s1.Node.TuplesProcessed {
		t.Errorf("TuplesProcessed went backwards: %d then %d",
			s1.Node.TuplesProcessed, s2.Node.TuplesProcessed)
	}
}
