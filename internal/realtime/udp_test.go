package realtime

import (
	"testing"
	"time"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

func TestDatagramRoundTrip(t *testing.T) {
	raw := tuple.Marshal(nil, tuple.New("x", tuple.Str("n1"), tuple.Int(7)))
	env := engine.Envelope{Src: "n2", SrcTupleID: 42, Raw: raw}
	const stamp = int64(1234567890123456789)
	got, sent, err := decodeDatagram(appendDatagram(nil, env, stamp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != "n2" || got.SrcTupleID != 42 || len(got.Raw) != len(raw) || sent != stamp {
		t.Errorf("round trip = %+v sent=%d", got, sent)
	}
	// Truncations anywhere in the frame fail cleanly (the tuple payload
	// itself is validated by the engine's decode, not here).
	enc := appendDatagram(nil, env, stamp)
	header := 1 + len(env.Src) + sentNanosLen + 1 // srcLen varint + src + stamp + id varint
	for cut := 0; cut < header; cut++ {
		if _, _, err := decodeDatagram(enc[:cut]); err == nil {
			t.Errorf("truncation to %d must fail", cut)
		}
	}
}

// TestUDPPairPing: two nodes on real loopback UDP sockets exchange
// tuples driven by the same OverLog that runs under the simulator.
func TestUDPPairPing(t *testing.T) {
	prog := overlog.MustParse(`
materialize(heard, infinity, infinity, keys(1,2)).
g1 hello@Peer(N, X) :- say@N(Peer, X).
g2 heard@N(From, X) :- hello@N(From, X).
`)
	mk := func(addr string) *UDPNode {
		u, err := NewUDPNode(UDPNodeConfig{
			Addr: addr, Listen: "127.0.0.1:0", Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := u.Node().InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk("a"), mk("b")
	defer a.Stop()
	defer b.Stop()
	if err := a.AddPeer("b", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()
	if err := a.Inject(tuple.New("say", tuple.Str("a"), tuple.Str("b"), tuple.Int(99))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		// Reading the node concurrently is not allowed; ask via a probe
		// tuple instead: stop-the-world check after a grace period.
		time.Sleep(50 * time.Millisecond)
		if heardOnB(b) {
			return
		}
	}
	t.Fatal("b never heard a's message over UDP")
}

// heardOnB stops b's executor briefly by piggybacking a read task.
func heardOnB(b *UDPNode) bool {
	res := make(chan bool, 1)
	err := b.Inject(tuple.New("nopQuery", tuple.Str("b")))
	if err != nil {
		return false
	}
	// The injection above serializes behind any pending work; now read
	// through another task to stay on the executor goroutine.
	select {
	case b.tasks <- task{at: time.Now(), kind: taskFunc, fn: func() {
		n := 0
		tb := b.node.Store().Get("heard")
		tb.Scan(1e12, func(tuple.Tuple) { n++ })
		res <- n > 0
	}}:
	case <-b.done:
		return false
	}
	select {
	case v := <-res:
		return v
	case <-time.After(time.Second):
		return false
	}
}
