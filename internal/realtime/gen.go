package realtime

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"p2go/internal/engine"
	"p2go/internal/tuple"
)

// Paced open-loop UDP traffic generator: the load source for
// `p2bench -exp realtime`. Open-loop means the send schedule is fixed
// by the target rate, not by receiver progress — the receiver being
// slow does not slow the generator down, which is what makes measured
// overload (and the drop accounting) meaningful. The pacing loop is
// deficit-based: each wake-up sends however many events the schedule
// says are due, with the catch-up burst capped so a scheduler stall
// turns into a bounded burst rather than a megaburst.
//
// The hot path sends pre-framed datagrams: the wire frame is built once
// per connection and each send patches only the two fixed-width fields
// that change — the sender wall-clock stamp (at a fixed frame offset)
// and the event's sequence ID (located once via a sentinel value). With
// sendmmsg (batch_linux.go) a whole burst goes to the kernel in one
// syscall.

// GenConfig configures the traffic generator.
type GenConfig struct {
	// Target is the receiver's UDP address.
	Target string
	// Dst is the receiver's P2 address: the location field of every
	// generated event.
	Dst string
	// Src is the envelope source address (default "gen").
	Src string
	// Event is the event predicate name (default "ev"). Generated
	// events have the shape Event(Dst, Seq, Payload).
	Event string
	// Rate is the target aggregate events/sec across all connections.
	Rate int
	// Conns is the number of sender sockets, each with its own pacing
	// goroutine (default 1).
	Conns int
	// Payload is the opaque payload string length per event (default 16).
	Payload int
	// Duration is how long to generate.
	Duration time.Duration
}

// GenStats reports what the generator offered to the kernel.
type GenStats struct {
	// Sent counts datagrams handed to the kernel; Bytes their framed
	// bytes; Errors datagrams lost to send errors (not counted in Sent).
	Sent, Bytes, Errors int64
	// Elapsed is the generator's wall-clock run in seconds, and
	// OfferedRate is Sent/Elapsed.
	Elapsed     float64
	OfferedRate float64
}

// seqSentinel marks the sequence field in the frame template so the
// generator can locate its fixed-width encoding once per connection.
const seqSentinel = uint64(0x5eedfeedbeefcafe)

// genBatch is the number of frames patched and sent per burst (matches
// the sendmmsg batch on linux).
const genBatch = 32

// maxCatchup caps the pacing deficit one wake-up may repay, bounding
// the burst after a scheduler stall.
const maxCatchup = 4 * genBatch

// GenerateTraffic runs the generator to completion and reports what was
// offered. It returns an error only for setup problems; send errors
// during the run are counted, not fatal.
func GenerateTraffic(cfg GenConfig) (GenStats, error) {
	if cfg.Src == "" {
		cfg.Src = "gen"
	}
	if cfg.Event == "" {
		cfg.Event = "ev"
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Payload <= 0 {
		cfg.Payload = 16
	}
	if cfg.Rate <= 0 {
		return GenStats{}, fmt.Errorf("realtime: generator rate must be positive")
	}

	// Build the frame template and locate the two patch points.
	payload := bytes.Repeat([]byte{'x'}, cfg.Payload)
	raw := tuple.Marshal(nil, tuple.New(cfg.Event,
		tuple.Str(cfg.Dst), tuple.ID(seqSentinel), tuple.Str(string(payload))))
	tmpl := appendDatagram(nil, engine.Envelope{Src: cfg.Src, SrcTupleID: 1, Raw: raw}, 0)
	sentOff := len(binary.AppendUvarint(nil, uint64(len(cfg.Src)))) + len(cfg.Src)
	var sentinel [8]byte
	binary.LittleEndian.PutUint64(sentinel[:], seqSentinel)
	seqOff := bytes.Index(tmpl, sentinel[:])
	if seqOff < 0 {
		return GenStats{}, fmt.Errorf("realtime: generator could not locate seq field")
	}
	if _, _, err := decodeDatagram(tmpl); err != nil {
		return GenStats{}, fmt.Errorf("realtime: generator template does not decode: %w", err)
	}

	var sent, sentBytes, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		// Spread the aggregate rate over connections, remainder to the
		// first.
		target := cfg.Rate / cfg.Conns
		if ci == 0 {
			target += cfg.Rate % cfg.Conns
		}
		conn, err := net.Dial("udp", cfg.Target)
		if err != nil {
			return GenStats{}, fmt.Errorf("realtime: generator dial: %w", err)
		}
		uconn := conn.(*net.UDPConn)
		wg.Add(1)
		go func(ci, target int) {
			defer wg.Done()
			defer uconn.Close()
			bs := newBatchSender(uconn)
			frames := make([][]byte, genBatch)
			for i := range frames {
				frames[i] = append([]byte(nil), tmpl...)
			}
			seq := uint64(ci+1) << 48 // per-connection sequence space
			var paced int64           // events the schedule has consumed
			begin := time.Now()
			for {
				el := time.Since(begin)
				if el >= cfg.Duration {
					return
				}
				due := int64(float64(target) * el.Seconds())
				if due <= paced {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				burst := min(due-paced, maxCatchup)
				for burst > 0 {
					k := int(min(burst, genBatch))
					nowN := time.Now().UnixNano()
					for i := 0; i < k; i++ {
						f := frames[i]
						binary.LittleEndian.PutUint64(f[sentOff:], uint64(nowN))
						binary.LittleEndian.PutUint64(f[seqOff:], seq)
						seq++
					}
					ok := 0
					if bs != nil {
						ok, _ = bs.send(frames[:k])
					} else {
						for i := 0; i < k; i++ {
							if _, err := uconn.Write(frames[i]); err == nil {
								ok++
							}
						}
					}
					sent.Add(int64(ok))
					sentBytes.Add(int64(ok * len(tmpl)))
					errs.Add(int64(k - ok))
					paced += int64(k)
					burst -= int64(k)
				}
			}
		}(ci, target)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	s := GenStats{
		Sent:    sent.Load(),
		Bytes:   sentBytes.Load(),
		Errors:  errs.Load(),
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		s.OfferedRate = float64(s.Sent) / elapsed
	}
	return s, nil
}

// MeasureReaderAllocs reports the average heap allocations per datagram
// on the reader hot path (decode + accounting + enqueue, i.e.
// UDPNode.dispatch) by pushing n pre-framed datagrams through an
// unstarted node and recycling each task inline, exactly as the
// executor would. The ISSUE-10 budget is ≤1 alloc/datagram; in steady
// state (interned source, warm buffer pool) the path measures 0.
func MeasureReaderAllocs(n int) (float64, error) {
	u, err := NewUDPNode(UDPNodeConfig{
		Addr: "allocprobe", Listen: "127.0.0.1:0", QueueDepth: 16, MaxDatagram: 2048,
	})
	if err != nil {
		return 0, err
	}
	defer u.conn.Close()
	raw := tuple.Marshal(nil, tuple.New("ev",
		tuple.Str("allocprobe"), tuple.ID(1), tuple.Str("xxxxxxxxxxxxxxxx")))
	frame := appendDatagram(nil, engine.Envelope{Src: "gen", SrcTupleID: 1, Raw: raw}, 1)
	at := time.Now()
	push := func() {
		b := u.pool.get()
		copy(*b, frame)
		u.dispatch(b, len(frame), at)
		select {
		case t := <-u.tasks:
			if t.buf != nil {
				u.pool.put(t.buf)
			}
		default:
		}
	}
	// Warm the intern pool and the buffer pool before measuring.
	for i := 0; i < 64; i++ {
		push()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		push()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n), nil
}
