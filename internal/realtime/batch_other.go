//go:build !linux || !(amd64 || arm64)

package realtime

import (
	"net"
	"syscall"
)

// Portable stubs: platforms without recvmmsg/sendmmsg (or whose Msghdr
// layout the linux build file does not cover) return nil constructors,
// and the callers fall back to per-datagram ReadFromUDP/Write paths —
// slower per event, but with identical semantics and accounting.
// UDPNodeConfig.Readers > 1 recovers some of the lost throughput by
// letting several readers share the socket.

type batchReader struct{}

func newBatchReader(conn *net.UDPConn, pool *bufPool) *batchReader { return nil }

func (br *batchReader) read() (int, bool) { return 0, false }

func (br *batchReader) take(i int) (*[]byte, int, bool) { return nil, 0, false }

type batchSender struct{}

func newBatchSender(conn *net.UDPConn) *batchSender { return nil }

func (bs *batchSender) send(frames [][]byte) (int, error) { return 0, syscall.ENOSYS }
