package realtime

import (
	"net"
	"testing"
	"time"

	"p2go/internal/metrics"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// engineMetrics reads a node's engine counters on its own executor
// goroutine (the node is not safe for concurrent access).
func engineMetrics(t *testing.T, u *UDPNode) metrics.Node {
	t.Helper()
	res := make(chan metrics.Node, 1)
	select {
	case u.tasks <- task{at: time.Now(), kind: taskFunc, fn: func() { res <- u.node.Metrics() }}:
	case <-time.After(time.Second):
		t.Fatal("executor not accepting tasks")
	}
	select {
	case m := <-res:
		return m
	case <-time.After(time.Second):
		t.Fatal("metrics read timed out")
		return metrics.Node{}
	}
}

// TestUDPTransportCounters: traffic over the real UDP transport is
// counted twice, consistently — payload-level by the engine's standard
// metrics.Node counters (as under the simulator) and datagram-level
// (with framing bytes and drop reasons) by the transport itself.
func TestUDPTransportCounters(t *testing.T) {
	prog := overlog.MustParse(`
materialize(heard, infinity, infinity, keys(1,2)).
g1 hello@Peer(N, X) :- say@N(Peer, X).
g2 heard@N(From, X) :- hello@N(From, X).
`)
	mk := func(addr string) *UDPNode {
		u, err := NewUDPNode(UDPNodeConfig{Addr: addr, Listen: "127.0.0.1:0", Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := u.Node().InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk("a"), mk("b")
	defer a.Stop()
	defer b.Stop()
	if err := a.AddPeer("b", b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	a.Start()
	b.Start()

	const sent = 5
	for i := int64(0); i < sent; i++ {
		if err := a.Inject(tuple.New("say", tuple.Str("a"), tuple.Str("b"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	// One message to a peer a has no mapping for: engine bills the
	// send, the transport counts the drop.
	if err := a.Inject(tuple.New("say", tuple.Str("a"), tuple.Str("zzz"), tuple.Int(9))); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	var bm metrics.Node
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if bm = engineMetrics(t, b); bm.MsgsRecv >= sent {
			break
		}
	}
	if bm.MsgsRecv != sent || bm.BytesRecv == 0 {
		t.Fatalf("engine recv counters on b = %+v, want %d msgs", bm, sent)
	}

	am := engineMetrics(t, a)
	if am.MsgsSent != sent+1 || am.BytesSent == 0 {
		t.Errorf("engine send counters on a = %+v, want %d msgs", am, sent+1)
	}
	as := a.TransportStats()
	if as.DatagramsSent != sent || as.DropUnknownPeer != 1 || as.BytesSent == 0 {
		t.Errorf("transport stats on a = %+v", as)
	}
	bs := b.TransportStats()
	if bs.DatagramsRecv != sent || bs.BytesRecv != as.BytesSent || bs.DropDecode != 0 {
		t.Errorf("transport stats on b = %+v (a sent %d bytes)", bs, as.BytesSent)
	}

	// Undecodable noise is dropped and counted, without reaching the
	// engine.
	noise, err := net.Dial("udp", b.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer noise.Close()
	if _, err := noise.Write([]byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if b.TransportStats().DropDecode == 1 {
			break
		}
	}
	bs = b.TransportStats()
	if bs.DropDecode != 1 {
		t.Errorf("decode drop not counted: %+v", bs)
	}
	if m := engineMetrics(t, b); m.MsgsRecv != sent {
		t.Errorf("noise reached the engine: %+v", m)
	}
}
