// Package realtime drives P2 nodes with goroutines and wall-clock time
// instead of the discrete-event simulator: one goroutine per node
// serializes that node's tasks, links are buffered channels with optional
// delay, and periodic rules fire off time.Timer. The engine is identical
// — only the driver differs — so any program developed against simnet
// runs unmodified in real time.
//
// The simulator remains the right tool for benchmarks and reproducible
// tests; this driver exists for interactive use (cmd/p2node -realtime)
// and as the deployment shape a real P2 system would have. The hot path
// (task.go, udp.go, batch_linux.go) is engineered for sustained 100k+
// events/sec; docs/REALTIME.md describes the pipeline and its knobs,
// and internal/bench/realtime.go measures it.
//
// Concurrency invariant: every engine.Node has exactly one writer — the
// goroutine serializing its tasks. The node's counters and histograms
// (metrics.Node, metrics.NodeHists) are therefore plain non-atomic
// values; reading them from any other goroutine while the node runs is
// a data race. Concurrent inspection goes through MetricsSnapshot
// (Network) or UDPNode.MetricsSnapshot, which run the read as a task on
// the owning goroutine. Transport-level counters, which producer
// goroutines update, are atomics (see transportCounters).
package realtime

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// Config configures a real-time network.
type Config struct {
	// Seed seeds per-node RNGs and delay sampling.
	Seed int64
	// MinDelay/MaxDelay bound the artificial one-way link delay.
	MinDelay, MaxDelay time.Duration
	// QueueDepth is the per-node task channel capacity (default 1024).
	QueueDepth int
	// Overload selects the full-queue policy for message delivery and
	// Inject: OverloadDrop (default, shed and count) or OverloadBlock
	// (backpressure — senders and injectors wait for queue space).
	Overload OverloadPolicy
	// OnWatch and OnRuleError mirror the simnet hooks. They are called
	// from node goroutines; implementations must be safe for concurrent
	// use.
	OnWatch     func(now float64, node string, t tuple.Tuple)
	OnRuleError func(now float64, node, ruleID string, err error)
}

type host struct {
	node  *engine.Node
	tasks chan task
	done  chan struct{}
	// stopped is closed by the node goroutine as it exits, making
	// "goroutine no longer touching the node" an observable event —
	// after it, direct reads of the node are safe.
	stopped chan struct{}
	// stats counts transport-level outcomes for this host's inbound
	// queue. The channel transport has no wire, so only the receive-side
	// counters are populated (DatagramsRecv counts messages offered to
	// the host, bytes are payload bytes); send-side traffic is already
	// counted by the engine's own MsgsSent/BytesSent.
	stats transportCounters
}

// Network runs nodes in real time. Create it, AddNode + InstallProgram
// while stopped, then Start; Stop shuts every node goroutine down.
type Network struct {
	cfg   Config
	start time.Time
	rng   *rand.Rand
	rngMu sync.Mutex

	mu      sync.Mutex
	hosts   map[string]*host
	started bool
	wg      sync.WaitGroup
	metrics net.Listener
}

// NewNetwork creates a stopped real-time network.
func NewNetwork(cfg Config) *Network {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		hosts: make(map[string]*host),
	}
}

// now returns seconds since Start (0 before).
func (n *Network) now() float64 {
	if n.start.IsZero() {
		return 0
	}
	return time.Since(n.start).Seconds()
}

func (n *Network) randDelay() time.Duration {
	if n.cfg.MaxDelay <= 0 {
		return 0
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay-n.cfg.MinDelay)+1))
}

// AddNode creates a node; must be called before Start.
func (n *Network) AddNode(addr string) (*engine.Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return nil, fmt.Errorf("realtime: AddNode after Start")
	}
	if _, ok := n.hosts[addr]; ok {
		return nil, fmt.Errorf("realtime: node %s already exists", addr)
	}
	h := &host{
		tasks:   make(chan task, n.cfg.QueueDepth),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	n.rngMu.Lock()
	seed := n.rng.Int63()
	n.rngMu.Unlock()
	cfg := engine.Config{
		Addr:  addr,
		Seed:  seed,
		Clock: n.now,
		Send: func(dst string, env engine.Envelope, _ float64) {
			n.deliver(dst, env)
		},
		OnNewPeriodic: func(p *engine.Periodic) { n.armTimer(h, p) },
		ExtraObs:      h.stats.obs,
	}
	if n.cfg.OnWatch != nil {
		cfg.OnWatch = func(now float64, t tuple.Tuple) { n.cfg.OnWatch(now, addr, t) }
	}
	if n.cfg.OnRuleError != nil {
		cfg.OnRuleError = func(now float64, ruleID string, err error) {
			n.cfg.OnRuleError(now, addr, ruleID, err)
		}
	}
	h.node = engine.NewNode(cfg)
	n.hosts[addr] = h
	return h.node, nil
}

// deliver enqueues a message task on the destination's goroutine after
// the sampled link delay, applying the network's overload policy.
// Messages to unknown nodes are dropped silently (as on a real datagram
// network); messages shed on a full queue are counted in the
// destination's DropOverload.
func (n *Network) deliver(dst string, env engine.Envelope) {
	n.mu.Lock()
	h, ok := n.hosts[dst]
	n.mu.Unlock()
	if !ok {
		return
	}
	sentNanos := time.Now().UnixNano()
	send := func() {
		h.stats.datagramsRecv.Add(1)
		h.stats.bytesRecv.Add(int64(len(env.Raw)))
		dropped, stopped := enqueue(h.tasks, h.done, n.cfg.Overload,
			task{at: time.Now(), sent: sentNanos, kind: taskMsg, env: env})
		if dropped {
			h.stats.dropOverload.Add(1)
		} else if stopped {
			h.stats.dropShutdown.Add(1)
		}
	}
	if d := n.randDelay(); d > 0 {
		time.AfterFunc(d, send)
	} else {
		send()
	}
}

// armTimer schedules a periodic trigger with jittered phase on a single
// resettable timer (see armPeriodic).
func (n *Network) armTimer(h *host, p *engine.Periodic) {
	period := time.Duration(p.Period() * float64(time.Second))
	n.rngMu.Lock()
	first := time.Duration(float64(period) * (0.05 + 0.95*n.rng.Float64()))
	n.rngMu.Unlock()
	armPeriodic(h.tasks, h.done, p, first)
}

// Inject hands a tuple to a node as a local event, honoring the
// network's overload policy: under OverloadDrop a full queue sheds the
// event (counted in the node's DropInject) and returns ErrOverload;
// under OverloadBlock the call waits for queue space.
func (n *Network) Inject(addr string, t tuple.Tuple) error {
	n.mu.Lock()
	h, ok := n.hosts[addr]
	running := n.started
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("realtime: no node %s", addr)
	}
	if !running {
		return fmt.Errorf("realtime: network not running")
	}
	dropped, stopped := enqueue(h.tasks, h.done, n.cfg.Overload,
		task{at: time.Now(), kind: taskLocal, tup: t})
	if stopped {
		return fmt.Errorf("realtime: node %s: %w", addr, ErrStopped)
	}
	if dropped {
		h.stats.dropInject.Add(1)
		return fmt.Errorf("realtime: node %s: %w", addr, ErrOverload)
	}
	return nil
}

// TransportStats snapshots a node's queue-level counters (message
// deliveries, overload drops, inject drops); safe against a running
// network.
func (n *Network) TransportStats(addr string) (TransportStats, error) {
	n.mu.Lock()
	h, ok := n.hosts[addr]
	n.mu.Unlock()
	if !ok {
		return TransportStats{}, fmt.Errorf("realtime: no node %s", addr)
	}
	return h.stats.snapshot(), nil
}

// Stats is one consistent snapshot of a node's counters, per-query
// bills, histograms and observability extras (engine.Node.ObsCounters),
// taken on the node's own goroutine.
type Stats struct {
	Node    metrics.Node
	Queries map[string]metrics.Query
	Hists   metrics.NodeHists
	Extras  []metrics.Counter
}

// MetricsSnapshot returns a consistent stats snapshot for a node, safe
// to call concurrently with a running network. The engine's counters
// have a single writer — the node goroutine — so the snapshot is taken
// as a task on that goroutine and handed back over a channel; while the
// network is stopped (no goroutine touching the node) it reads
// directly. This is the supported way to inspect a live realtime node;
// Network.Node remains stopped-only.
func (n *Network) MetricsSnapshot(addr string) (Stats, error) {
	n.mu.Lock()
	h, ok := n.hosts[addr]
	running := n.started
	n.mu.Unlock()
	if !ok {
		return Stats{}, fmt.Errorf("realtime: no node %s", addr)
	}
	read := func() Stats {
		return Stats{
			Node:    h.node.Metrics(),
			Queries: h.node.QueryMetrics(),
			Hists:   h.node.Hists(),
			Extras:  h.node.ObsCounters(),
		}
	}
	if !running {
		return read(), nil
	}
	ch := make(chan Stats, 1)
	select {
	case h.tasks <- task{at: time.Now(), kind: taskFunc, fn: func() { ch <- read() }}:
	case <-h.stopped:
		return read(), nil // goroutine gone: direct read is safe
	}
	select {
	case s := <-ch:
		return s, nil
	case <-h.stopped:
		// Stopped before the snapshot task ran; the goroutine has fully
		// exited, so a direct read is safe now.
		return read(), nil
	}
}

// ServeMetrics exposes every node's counters, per-query bills and
// histograms as Prometheus text exposition on http://<addr>/metrics
// (cmd/p2node -realtime -metrics-addr). Each scrape takes one
// MetricsSnapshot per node, so it is safe against a running network.
// The returned address is the bound listen address (useful with port
// 0); the listener is closed by Stop.
func (n *Network) ServeMetrics(listen string) (string, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", fmt.Errorf("realtime: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		n.mu.Lock()
		addrs := make([]string, 0, len(n.hosts))
		for a := range n.hosts {
			addrs = append(addrs, a)
		}
		n.mu.Unlock()
		sort.Strings(addrs)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, a := range addrs {
			s, err := n.MetricsSnapshot(a)
			if err != nil {
				continue
			}
			if err := metrics.WritePrometheus(w, a, s.Node, s.Queries, &s.Hists, s.Extras...); err != nil {
				return
			}
		}
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed listener on Stop ends Serve
	n.mu.Lock()
	n.metrics = ln
	n.mu.Unlock()
	return ln.Addr().String(), nil
}

// Node returns a node by address. The returned node must only be
// inspected while the network is stopped (nodes are not thread-safe).
func (n *Network) Node(addr string) *engine.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hosts[addr]; ok {
		return h.node
	}
	return nil
}

// Start launches every node goroutine and begins wall-clock time.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	n.start = time.Now()
	for _, h := range n.hosts {
		h := h
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer close(h.stopped)
			// Sweep soft state about once per second.
			sweep := time.NewTicker(time.Second)
			defer sweep.Stop()
			processed := func(t *task) { h.stats.datagramsProcessed.Add(1) }
			for {
				select {
				case <-h.done:
					return
				case t := <-h.tasks:
					drainBatch(h.node, h.tasks, t, processed)
				case <-sweep.C:
					h.node.Sweep()
				}
			}
		}()
	}
}

// Stop shuts all node goroutines down, waits for them, then accounts
// any message tasks still queued (DropShutdown) so the conservation law
// over TransportStats holds exactly even for an abrupt stop.
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	for _, h := range n.hosts {
		close(h.done)
	}
	ln := n.metrics
	n.metrics = nil
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	n.wg.Wait()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, h := range n.hosts {
	drain:
		for {
			select {
			case t := <-h.tasks:
				if t.kind == taskMsg {
					h.stats.dropShutdown.Add(1)
				}
			default:
				break drain
			}
		}
	}
}

// InstallAll installs a program on every node (before Start).
func (n *Network) InstallAll(prog *overlog.Program) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("realtime: InstallAll after Start")
	}
	for _, h := range n.hosts {
		if err := h.node.InstallProgram(prog); err != nil {
			return err
		}
	}
	return nil
}
