package realtime

import (
	"sync"
	"testing"
	"time"

	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// watchLog is a concurrency-safe watched-tuple collector.
type watchLog struct {
	mu   sync.Mutex
	seen []tuple.Tuple
}

func (w *watchLog) add(t tuple.Tuple) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seen = append(w.seen, t)
}

func (w *watchLog) count(name string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, t := range w.seen {
		if t.Name == name {
			n++
		}
	}
	return n
}

// TestRealtimePathProgram runs the quickstart program on wall-clock time:
// the same OverLog that runs under simnet works unchanged under
// goroutines and channels.
func TestRealtimePathProgram(t *testing.T) {
	wl := &watchLog{}
	net := NewNetwork(Config{
		Seed:     3,
		MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		OnWatch: func(_ float64, _ string, tp tuple.Tuple) { wl.add(tp) },
	})
	prog := overlog.MustParse(`
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
watch(path).
p0 path@A(B, [A, B], W) :- link@A(B, W).
p1 path@B(C, [B, A] + P, W1 + W2) :- link@A(B, W1), path@A(C, P, W2).
`)
	for _, a := range []string{"n1", "n2", "n3"} {
		n, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	net.Start()
	if err := net.Inject("n1", tuple.New("link", tuple.Str("n1"), tuple.Str("n2"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := net.Inject("n2", tuple.New("link", tuple.Str("n2"), tuple.Str("n3"), tuple.Int(2))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for wl.count("path") < 5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	net.Stop()
	// Same derivation as the simnet test: 5 paths total across nodes.
	if got := wl.count("path"); got != 5 {
		t.Fatalf("derived %d paths, want 5", got)
	}
	var n3paths int
	tb := net.Node("n3").Store().Get("path")
	tb.Scan(1e12, func(tuple.Tuple) { n3paths++ })
	if n3paths != 2 {
		t.Errorf("n3 holds %d paths, want 2", n3paths)
	}
}

// TestRealtimePeriodic: timers fire at roughly wall-clock rate.
func TestRealtimePeriodic(t *testing.T) {
	wl := &watchLog{}
	net := NewNetwork(Config{
		Seed:    5,
		OnWatch: func(_ float64, _ string, tp tuple.Tuple) { wl.add(tp) },
	})
	n, err := net.AddNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	err = n.InstallProgram(overlog.MustParse(`
watch(tick).
t1 tick@N(E) :- periodic@N(E, 0.05).
`))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	time.Sleep(500 * time.Millisecond)
	net.Stop()
	got := wl.count("tick")
	if got < 4 || got > 15 {
		t.Errorf("ticks in 0.5s at 20 Hz = %d, want roughly 10", got)
	}
}

// TestRealtimeStopIsIdempotent and lifecycle errors.
func TestRealtimeLifecycle(t *testing.T) {
	net := NewNetwork(Config{Seed: 1})
	if _, err := net.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode("a"); err == nil {
		t.Error("duplicate AddNode must fail")
	}
	net.Start()
	if _, err := net.AddNode("b"); err == nil {
		t.Error("AddNode after Start must fail")
	}
	net.Stop()
	net.Stop() // idempotent
	if err := net.Inject("a", tuple.New("x", tuple.Str("a"))); err == nil {
		t.Error("Inject after Stop must fail")
	}
}
