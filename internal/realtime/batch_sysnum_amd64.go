//go:build linux

package realtime

// The stdlib syscall package predates sendmmsg and never regenerated
// the amd64 table, so the number is pinned here (arm64's table has it).
const sysSendmmsg uintptr = 307
