package realtime

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/tuple"
)

// UDP transport: one P2 node per OS process, exchanging envelope
// datagrams — the deployment shape of the original P2 prototype (the
// paper's testbed ran 21 processes over UDP).
//
// Datagram format:
//
//	srcLen(uvarint) src sentNanos(8B LE) srcTupleID(uvarint) tupleBytes
//
// where tupleBytes is the standard tuple wire encoding and sentNanos is
// the sender's wall clock (unix nanoseconds) at transmission, letting
// the receiver observe end-to-end ingest latency in its hop histogram
// (exact on one host; across hosts it inherits clock skew like any
// one-way delay measure). Datagrams that fail to decode are dropped and
// counted, as UDP noise should be.
//
// The receive path is built for sustained 100k+ datagrams/sec: pooled
// receive buffers, batched socket reads (recvmmsg where the platform
// has it, with a portable multi-reader fallback), allocation-free task
// dispatch, and a batched executor dequeue. See task.go and
// docs/REALTIME.md.

// UDPNodeConfig configures a single-process UDP node.
type UDPNodeConfig struct {
	// Addr is the node's P2 address (its location-specifier value).
	Addr string
	// Listen is the UDP address to bind, e.g. "127.0.0.1:7001".
	Listen string
	// Peers maps P2 addresses to UDP addresses. Tuples routed to an
	// unknown peer are dropped.
	Peers map[string]string
	// Seed seeds the node RNG.
	Seed int64
	// QueueDepth is the executor task-queue capacity (default 1024).
	QueueDepth int
	// MaxDatagram is the receive-buffer size handed to the socket per
	// datagram (default 64 KiB, the UDP maximum). Smaller values shrink
	// the buffer pool's footprint under overload; datagrams longer than
	// this are truncated by the kernel, fail to decode, and count in
	// DropDecode.
	MaxDatagram int
	// Readers is the number of socket-reader goroutines (default 1).
	// More readers help on multi-core hosts, and are the batching
	// fallback on platforms without recvmmsg.
	Readers int
	// SocketBuf, when positive, requests this SO_RCVBUF size so the
	// kernel absorbs bursts the executor has not yet drained.
	SocketBuf int
	// Overload selects the full-queue policy: OverloadDrop (default,
	// UDP-style shed with exact accounting) or OverloadBlock
	// (backpressure). Inject honors the same policy as the socket
	// reader.
	Overload OverloadPolicy
	// OnWatch and OnRuleError mirror the other drivers' hooks (called
	// from the node goroutine).
	OnWatch     func(now float64, t tuple.Tuple)
	OnRuleError func(now float64, ruleID string, err error)
}

// UDPNode runs one engine node on a UDP socket with a dedicated
// goroutine serializing its tasks.
type UDPNode struct {
	node     *engine.Node
	conn     *net.UDPConn
	peers    map[string]*net.UDPAddr
	tasks    chan task
	done     chan struct{}
	overload OverloadPolicy
	readers  int
	pool     *bufPool
	sendBuf  []byte // marshal scratch, touched only by the executor goroutine
	// stopped is closed by the executor goroutine as it exits; after it,
	// direct reads of the node are safe (see the package doc's
	// single-writer invariant).
	stopped chan struct{}
	wg      sync.WaitGroup
	start   time.Time
	mu      sync.Mutex
	stats   transportCounters
	metrics net.Listener // optional /metrics HTTP listener
}

// TransportStats are the datagram-level counters of one UDP node: what
// actually crossed (or failed to cross) the socket, including framing
// bytes. The engine's own metrics.Node counters (MsgsSent, BytesSent,
// MsgsRecv, BytesRecv) keep counting payload traffic on this transport
// exactly as they do under the simulator; these add the wire view plus
// the drop reasons the simulator doesn't have.
//
// The counters satisfy an exact conservation law:
//
//	DatagramsRecv = DatagramsProcessed + DropDecode + DropOverload
//	              + DropShutdown + (still queued)
//
// so once the queue drains (quiescence, or after Stop) every received
// datagram is accounted for by exactly one of the four outcomes.
type TransportStats struct {
	// DatagramsSent/BytesSent count framed datagrams written to peers.
	DatagramsSent, BytesSent int64
	// DatagramsRecv/BytesRecv count datagrams read off the socket
	// (before decode).
	DatagramsRecv, BytesRecv int64
	// DatagramsProcessed counts datagrams whose task the executor ran
	// through the engine.
	DatagramsProcessed int64
	// DropUnknownPeer counts sends to P2 addresses with no peer
	// mapping; DropDecode counts undecodable (or kernel-truncated)
	// datagrams; DropOverload counts datagrams shed under OverloadDrop
	// because the task queue was full; DropShutdown counts datagrams
	// discarded while stopping (enqueue raced Stop, or still queued
	// when the executor exited).
	DropUnknownPeer, DropDecode, DropOverload, DropShutdown int64
	// DropInject counts Inject calls shed under OverloadDrop. Injected
	// events are local, not datagrams, so this is deliberately outside
	// the conservation law above.
	DropInject int64
}

type transportCounters struct {
	datagramsSent, bytesSent                  atomic.Int64
	datagramsRecv, bytesRecv                  atomic.Int64
	datagramsProcessed                        atomic.Int64
	dropUnknownPeer, dropDecode, dropOverload atomic.Int64
	dropShutdown, dropInject                  atomic.Int64
}

func (c *transportCounters) snapshot() TransportStats {
	return TransportStats{
		DatagramsSent:      c.datagramsSent.Load(),
		BytesSent:          c.bytesSent.Load(),
		DatagramsRecv:      c.datagramsRecv.Load(),
		BytesRecv:          c.bytesRecv.Load(),
		DatagramsProcessed: c.datagramsProcessed.Load(),
		DropUnknownPeer:    c.dropUnknownPeer.Load(),
		DropDecode:         c.dropDecode.Load(),
		DropOverload:       c.dropOverload.Load(),
		DropShutdown:       c.dropShutdown.Load(),
		DropInject:         c.dropInject.Load(),
	}
}

// obs renders the counters as observability extras for ObsCounters /
// the Prometheus exposition / the queryable nodeStats table.
func (c *transportCounters) obs() []metrics.Counter {
	s := c.snapshot()
	return []metrics.Counter{
		{Name: "TransportDatagramsSent", Prom: "transport_datagrams_sent", I: s.DatagramsSent},
		{Name: "TransportBytesSent", Prom: "transport_bytes_sent", I: s.BytesSent},
		{Name: "TransportDatagramsRecv", Prom: "transport_datagrams_recv", I: s.DatagramsRecv},
		{Name: "TransportBytesRecv", Prom: "transport_bytes_recv", I: s.BytesRecv},
		{Name: "TransportDatagramsProcessed", Prom: "transport_datagrams_processed", I: s.DatagramsProcessed},
		{Name: "TransportDropUnknownPeer", Prom: "transport_drop_unknown_peer", I: s.DropUnknownPeer},
		{Name: "TransportDropDecode", Prom: "transport_drop_decode", I: s.DropDecode},
		{Name: "TransportDropOverload", Prom: "transport_drop_overload", I: s.DropOverload},
		{Name: "TransportDropShutdown", Prom: "transport_drop_shutdown", I: s.DropShutdown},
		{Name: "TransportDropInject", Prom: "transport_drop_inject", I: s.DropInject},
	}
}

// TransportStats snapshots the datagram-level counters; safe to call
// concurrently with a running node.
func (u *UDPNode) TransportStats() TransportStats { return u.stats.snapshot() }

// sentNanosLen is the fixed width of the wall-clock send stamp in the
// datagram frame. Fixed-width (not varint) so traffic generators can
// patch it into a prebuilt frame at a constant offset.
const sentNanosLen = 8

// appendDatagram frames an envelope for the wire, appending to dst.
func appendDatagram(dst []byte, env engine.Envelope, sentNanos int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(env.Src)))
	dst = append(dst, env.Src...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sentNanos))
	dst = binary.AppendUvarint(dst, env.SrcTupleID)
	return append(dst, env.Raw...)
}

// decodeDatagram parses a wire frame back into an envelope plus the
// sender's send stamp. The returned envelope aliases b only through
// Raw: Src is interned (allocation-free for repeated senders), and the
// engine copies or interns everything it keeps out of Raw, so the
// backing buffer is recyclable as soon as HandleMessage returns.
func decodeDatagram(b []byte) (engine.Envelope, int64, error) {
	srcLen, n := binary.Uvarint(b)
	if n <= 0 || int(srcLen) > len(b)-n {
		return engine.Envelope{}, 0, fmt.Errorf("realtime: bad datagram src")
	}
	src := tuple.InternBytes(b[n : n+int(srcLen)])
	rest := b[n+int(srcLen):]
	if len(rest) < sentNanosLen {
		return engine.Envelope{}, 0, fmt.Errorf("realtime: bad datagram stamp")
	}
	sent := int64(binary.LittleEndian.Uint64(rest))
	rest = rest[sentNanosLen:]
	id, n2 := binary.Uvarint(rest)
	if n2 <= 0 {
		return engine.Envelope{}, 0, fmt.Errorf("realtime: bad datagram id")
	}
	return engine.Envelope{Src: src, SrcTupleID: id, Raw: rest[n2:]}, sent, nil
}

// NewUDPNode binds the socket and builds the node (stopped; call Start).
func NewUDPNode(cfg UDPNodeConfig) (*UDPNode, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64 << 10
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 1
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("realtime: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("realtime: %w", err)
	}
	if cfg.SocketBuf > 0 {
		conn.SetReadBuffer(cfg.SocketBuf) //nolint:errcheck // kernel caps silently; best effort
	}
	u := &UDPNode{
		conn:     conn,
		peers:    make(map[string]*net.UDPAddr),
		tasks:    make(chan task, cfg.QueueDepth),
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
		overload: cfg.Overload,
		readers:  cfg.Readers,
		pool:     newBufPool(cfg.MaxDatagram),
	}
	for p2addr, udpAddr := range cfg.Peers {
		ra, err := net.ResolveUDPAddr("udp", udpAddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("realtime: peer %s: %w", p2addr, err)
		}
		u.peers[p2addr] = ra
	}
	u.start = time.Now()
	u.node = engine.NewNode(engine.Config{
		Addr:  cfg.Addr,
		Seed:  cfg.Seed,
		Clock: func() float64 { return time.Since(u.start).Seconds() },
		Send: func(dst string, env engine.Envelope, _ float64) {
			ra, ok := u.peers[dst]
			if !ok {
				u.stats.dropUnknownPeer.Add(1)
				return
			}
			// Send runs on the executor goroutine (the node's single
			// writer), so the marshal scratch is reused send to send.
			u.sendBuf = appendDatagram(u.sendBuf[:0], env, time.Now().UnixNano())
			u.stats.datagramsSent.Add(1)
			u.stats.bytesSent.Add(int64(len(u.sendBuf)))
			u.conn.WriteToUDP(u.sendBuf, ra) //nolint:errcheck // datagram loss is expected
		},
		OnWatch:       cfg.OnWatch,
		OnRuleError:   cfg.OnRuleError,
		OnNewPeriodic: func(p *engine.Periodic) { u.armTimer(p) },
		ExtraObs:      u.stats.obs,
	})
	return u, nil
}

// Node returns the engine node for program installation before Start.
func (u *UDPNode) Node() *engine.Node { return u.node }

// LocalAddr returns the bound UDP address (useful with port 0).
func (u *UDPNode) LocalAddr() string { return u.conn.LocalAddr().String() }

// AddPeer registers (or updates) a peer mapping; safe before Start.
func (u *UDPNode) AddPeer(p2addr, udpAddr string) error {
	ra, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.peers[p2addr] = ra
	u.mu.Unlock()
	return nil
}

// armTimer schedules a periodic on a single resettable timer.
func (u *UDPNode) armTimer(p *engine.Periodic) {
	armPeriodic(u.tasks, u.done, p, time.Duration(p.Period()*float64(time.Second)))
}

// Inject hands a tuple to the node as a local event. It honors the
// node's overload policy exactly like the socket reader: under
// OverloadDrop a full queue sheds the event (counted in DropInject) and
// returns ErrOverload; under OverloadBlock the call waits for space.
func (u *UDPNode) Inject(t tuple.Tuple) error {
	dropped, stopped := enqueue(u.tasks, u.done, u.overload,
		task{at: time.Now(), kind: taskLocal, tup: t})
	if stopped {
		return ErrStopped
	}
	if dropped {
		u.stats.dropInject.Add(1)
		return ErrOverload
	}
	return nil
}

// dispatch accounts one received datagram and routes it toward the
// executor; buf is the pooled buffer backing the datagram bytes, whose
// ownership transfers to the task on enqueue (and back to the pool on
// any drop). at is the batch receive timestamp. This is the reader hot
// path: at most one allocation per datagram (an interning miss on a
// brand-new source address), verified by TestReaderAllocsPerDatagram.
func (u *UDPNode) dispatch(buf *[]byte, n int, at time.Time) {
	u.stats.datagramsRecv.Add(1)
	u.stats.bytesRecv.Add(int64(n))
	env, sent, err := decodeDatagram((*buf)[:n])
	if err != nil {
		u.stats.dropDecode.Add(1)
		u.pool.put(buf)
		return
	}
	dropped, stopped := enqueue(u.tasks, u.done, u.overload,
		task{at: at, sent: sent, kind: taskMsg, env: env, buf: buf})
	if dropped {
		u.stats.dropOverload.Add(1)
		u.pool.put(buf)
	} else if stopped {
		u.stats.dropShutdown.Add(1)
		u.pool.put(buf)
	}
}

// readBatched drains the socket via recvmmsg: one syscall and one clock
// read cover up to a whole batch of datagrams.
func (u *UDPNode) readBatched(br *batchReader) {
	for {
		cnt, ok := br.read()
		if !ok {
			return // socket closed by Stop
		}
		at := time.Now()
		for i := 0; i < cnt; i++ {
			buf, n, trunc := br.take(i)
			if trunc {
				u.stats.datagramsRecv.Add(1)
				u.stats.bytesRecv.Add(int64(n))
				u.stats.dropDecode.Add(1)
				u.pool.put(buf)
				continue
			}
			u.dispatch(buf, n, at)
		}
	}
}

// readPortable is the per-datagram fallback; running several of these
// readers concurrently (UDPNodeConfig.Readers) recovers most of the
// batching win on platforms without recvmmsg.
func (u *UDPNode) readPortable() {
	for {
		buf := u.pool.get()
		n, _, err := u.conn.ReadFromUDP(*buf)
		if err != nil {
			u.pool.put(buf)
			return // socket closed by Stop
		}
		u.dispatch(buf, n, time.Now())
	}
}

// Start launches the reader and executor goroutines.
func (u *UDPNode) Start() {
	u.start = time.Now()
	for i := 0; i < u.readers; i++ {
		u.wg.Add(1)
		go func() {
			defer u.wg.Done()
			if br := newBatchReader(u.conn, u.pool); br != nil {
				u.readBatched(br)
				return
			}
			u.readPortable()
		}()
	}
	// Executor: drains tasks in batches (one channel wake-up and one
	// clock read cover up to taskBatch tasks).
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		defer close(u.stopped)
		sweep := time.NewTicker(time.Second)
		defer sweep.Stop()
		recycle := func(t *task) {
			u.stats.datagramsProcessed.Add(1)
			if t.buf != nil {
				u.pool.put(t.buf)
			}
		}
		for {
			select {
			case <-u.done:
				return
			case t := <-u.tasks:
				drainBatch(u.node, u.tasks, t, recycle)
			case <-sweep.C:
				u.node.Sweep()
			}
		}
	}()
}

// MetricsSnapshot returns a consistent snapshot of the node's counters,
// per-query bills and histograms; safe to call concurrently with a
// running node (the read runs as a task on the executor goroutine,
// mirroring Network.MetricsSnapshot).
func (u *UDPNode) MetricsSnapshot() Stats {
	read := func() Stats {
		return Stats{
			Node:    u.node.Metrics(),
			Queries: u.node.QueryMetrics(),
			Hists:   u.node.Hists(),
			Extras:  u.node.ObsCounters(),
		}
	}
	ch := make(chan Stats, 1)
	select {
	case u.tasks <- task{at: time.Now(), kind: taskFunc, fn: func() { ch <- read() }}:
	case <-u.stopped:
		return read()
	}
	select {
	case s := <-ch:
		return s
	case <-u.stopped:
		return read()
	}
}

// ServeMetrics starts an HTTP listener exposing the node's counters in
// Prometheus text format at /metrics (cmd/p2node -metrics-addr). Each
// scrape takes a MetricsSnapshot, so scraping a live node is safe. The
// returned address is the bound listen address (useful with port 0);
// Stop closes the listener.
func (u *UDPNode) ServeMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("realtime: metrics listener: %w", err)
	}
	u.mu.Lock()
	u.metrics = ln
	u.mu.Unlock()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := u.MetricsSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheus(w, u.node.Addr(), s.Node, s.Queries, &s.Hists, s.Extras...) //nolint:errcheck // client gone
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed by Stop
	return ln.Addr().String(), nil
}

// Stop closes the socket and waits for the goroutines, then accounts
// any tasks still queued (DropShutdown), so the conservation law over
// TransportStats holds exactly even for an abrupt stop.
func (u *UDPNode) Stop() {
	select {
	case <-u.done:
		return
	default:
	}
	close(u.done)
	u.conn.Close()
	u.mu.Lock()
	if u.metrics != nil {
		u.metrics.Close()
	}
	u.mu.Unlock()
	u.wg.Wait()
	for {
		select {
		case t := <-u.tasks:
			if t.kind == taskMsg {
				u.stats.dropShutdown.Add(1)
				if t.buf != nil {
					u.pool.put(t.buf)
				}
			}
		default:
			return
		}
	}
}
