package realtime

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/tuple"
)

// UDP transport: one P2 node per OS process, exchanging envelope
// datagrams — the deployment shape of the original P2 prototype (the
// paper's testbed ran 21 processes over UDP).
//
// Datagram format:
//
//	srcLen(uvarint) src srcTupleID(uvarint) tupleBytes
//
// where tupleBytes is the standard tuple wire encoding. Datagrams that
// fail to decode are dropped, as UDP noise should be.

// UDPNodeConfig configures a single-process UDP node.
type UDPNodeConfig struct {
	// Addr is the node's P2 address (its location-specifier value).
	Addr string
	// Listen is the UDP address to bind, e.g. "127.0.0.1:7001".
	Listen string
	// Peers maps P2 addresses to UDP addresses. Tuples routed to an
	// unknown peer are dropped.
	Peers map[string]string
	// Seed seeds the node RNG.
	Seed int64
	// OnWatch and OnRuleError mirror the other drivers' hooks (called
	// from the node goroutine).
	OnWatch     func(now float64, t tuple.Tuple)
	OnRuleError func(now float64, ruleID string, err error)
}

// UDPNode runs one engine node on a UDP socket with a dedicated
// goroutine serializing its tasks.
type UDPNode struct {
	node  *engine.Node
	conn  *net.UDPConn
	peers map[string]*net.UDPAddr
	tasks chan task
	done  chan struct{}
	// stopped is closed by the executor goroutine as it exits; after it,
	// direct reads of the node are safe (see the package doc's
	// single-writer invariant).
	stopped chan struct{}
	wg      sync.WaitGroup
	start   time.Time
	mu      sync.Mutex
	stats   transportCounters
	metrics net.Listener // optional /metrics HTTP listener
}

// TransportStats are the datagram-level counters of one UDP node: what
// actually crossed (or failed to cross) the socket, including framing
// bytes. The engine's own metrics.Node counters (MsgsSent, BytesSent,
// MsgsRecv, BytesRecv) keep counting payload traffic on this transport
// exactly as they do under the simulator; these add the wire view plus
// the drop reasons the simulator doesn't have.
type TransportStats struct {
	// DatagramsSent/BytesSent count framed datagrams written to peers.
	DatagramsSent, BytesSent int64
	// DatagramsRecv/BytesRecv count datagrams read off the socket
	// (before decode).
	DatagramsRecv, BytesRecv int64
	// DropUnknownPeer counts sends to P2 addresses with no peer
	// mapping; DropDecode counts undecodable datagrams; DropOverload
	// counts datagrams shed because the task queue was full.
	DropUnknownPeer, DropDecode, DropOverload int64
}

type transportCounters struct {
	datagramsSent, bytesSent                  atomic.Int64
	datagramsRecv, bytesRecv                  atomic.Int64
	dropUnknownPeer, dropDecode, dropOverload atomic.Int64
}

// TransportStats snapshots the datagram-level counters; safe to call
// concurrently with a running node.
func (u *UDPNode) TransportStats() TransportStats {
	return TransportStats{
		DatagramsSent:   u.stats.datagramsSent.Load(),
		BytesSent:       u.stats.bytesSent.Load(),
		DatagramsRecv:   u.stats.datagramsRecv.Load(),
		BytesRecv:       u.stats.bytesRecv.Load(),
		DropUnknownPeer: u.stats.dropUnknownPeer.Load(),
		DropDecode:      u.stats.dropDecode.Load(),
		DropOverload:    u.stats.dropOverload.Load(),
	}
}

// encodeDatagram frames an envelope for the wire.
func encodeDatagram(env engine.Envelope) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(env.Src)))
	buf = append(buf, env.Src...)
	buf = binary.AppendUvarint(buf, env.SrcTupleID)
	return append(buf, env.Raw...)
}

// decodeDatagram parses a wire frame back into an envelope.
func decodeDatagram(b []byte) (engine.Envelope, error) {
	srcLen, n := binary.Uvarint(b)
	if n <= 0 || int(srcLen) > len(b)-n {
		return engine.Envelope{}, fmt.Errorf("realtime: bad datagram src")
	}
	src := string(b[n : n+int(srcLen)])
	rest := b[n+int(srcLen):]
	id, n2 := binary.Uvarint(rest)
	if n2 <= 0 {
		return engine.Envelope{}, fmt.Errorf("realtime: bad datagram id")
	}
	return engine.Envelope{Src: src, SrcTupleID: id, Raw: rest[n2:]}, nil
}

// NewUDPNode binds the socket and builds the node (stopped; call Start).
func NewUDPNode(cfg UDPNodeConfig) (*UDPNode, error) {
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("realtime: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("realtime: %w", err)
	}
	u := &UDPNode{
		conn:    conn,
		peers:   make(map[string]*net.UDPAddr),
		tasks:   make(chan task, 1024),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for p2addr, udpAddr := range cfg.Peers {
		ra, err := net.ResolveUDPAddr("udp", udpAddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("realtime: peer %s: %w", p2addr, err)
		}
		u.peers[p2addr] = ra
	}
	u.start = time.Now()
	u.node = engine.NewNode(engine.Config{
		Addr:  cfg.Addr,
		Seed:  cfg.Seed,
		Clock: func() float64 { return time.Since(u.start).Seconds() },
		Send: func(dst string, env engine.Envelope, _ float64) {
			ra, ok := u.peers[dst]
			if !ok {
				u.stats.dropUnknownPeer.Add(1)
				return
			}
			frame := encodeDatagram(env)
			u.stats.datagramsSent.Add(1)
			u.stats.bytesSent.Add(int64(len(frame)))
			u.conn.WriteToUDP(frame, ra) //nolint:errcheck // datagram loss is expected
		},
		OnWatch:       cfg.OnWatch,
		OnRuleError:   cfg.OnRuleError,
		OnNewPeriodic: func(p *engine.Periodic) { u.armTimer(p) },
	})
	return u, nil
}

// Node returns the engine node for program installation before Start.
func (u *UDPNode) Node() *engine.Node { return u.node }

// LocalAddr returns the bound UDP address (useful with port 0).
func (u *UDPNode) LocalAddr() string { return u.conn.LocalAddr().String() }

// AddPeer registers (or updates) a peer mapping; safe before Start.
func (u *UDPNode) AddPeer(p2addr, udpAddr string) error {
	ra, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	u.peers[p2addr] = ra
	u.mu.Unlock()
	return nil
}

func (u *UDPNode) armTimer(p *engine.Periodic) {
	period := time.Duration(p.Period() * float64(time.Second))
	var fire func()
	fire = func() {
		select {
		case <-u.done:
			return
		default:
		}
		select {
		case u.tasks <- task{at: time.Now(), run: func() { u.node.HandleTimer(p) }}:
		case <-u.done:
			return
		}
		if !p.Done() {
			time.AfterFunc(period, fire)
		}
	}
	time.AfterFunc(period, fire)
}

// Inject hands a tuple to the node as a local event.
func (u *UDPNode) Inject(t tuple.Tuple) error {
	select {
	case u.tasks <- task{at: time.Now(), run: func() { u.node.HandleLocal(t) }}:
		return nil
	case <-u.done:
		return fmt.Errorf("realtime: node stopped")
	}
}

// Start launches the reader and executor goroutines.
func (u *UDPNode) Start() {
	u.start = time.Now()
	u.wg.Add(2)
	// Socket reader.
	go func() {
		defer u.wg.Done()
		buf := make([]byte, 64<<10)
		for {
			n, _, err := u.conn.ReadFromUDP(buf)
			if err != nil {
				return // socket closed by Stop
			}
			u.stats.datagramsRecv.Add(1)
			u.stats.bytesRecv.Add(int64(n))
			env, err := decodeDatagram(append([]byte(nil), buf[:n]...))
			if err != nil {
				u.stats.dropDecode.Add(1)
				continue
			}
			select {
			case u.tasks <- task{at: time.Now(), run: func() { u.node.HandleMessage(env) }}:
			case <-u.done:
				return
			default: // overload: drop, UDP-style
				u.stats.dropOverload.Add(1)
			}
		}
	}()
	// Executor.
	go func() {
		defer u.wg.Done()
		defer close(u.stopped)
		sweep := time.NewTicker(time.Second)
		defer sweep.Stop()
		for {
			select {
			case <-u.done:
				return
			case t := <-u.tasks:
				observeTaskStart(u.node, t, len(u.tasks))
				t.run()
			case <-sweep.C:
				u.node.Sweep()
			}
		}
	}()
}

// MetricsSnapshot returns a consistent snapshot of the node's counters,
// per-query bills and histograms; safe to call concurrently with a
// running node (the read runs as a task on the executor goroutine,
// mirroring Network.MetricsSnapshot).
func (u *UDPNode) MetricsSnapshot() Stats {
	read := func() Stats {
		return Stats{
			Node:    u.node.Metrics(),
			Queries: u.node.QueryMetrics(),
			Hists:   u.node.Hists(),
			Extras:  u.node.ObsCounters(),
		}
	}
	ch := make(chan Stats, 1)
	select {
	case u.tasks <- task{at: time.Now(), run: func() { ch <- read() }}:
	case <-u.stopped:
		return read()
	}
	select {
	case s := <-ch:
		return s
	case <-u.stopped:
		return read()
	}
}

// ServeMetrics starts an HTTP listener exposing the node's counters in
// Prometheus text format at /metrics (cmd/p2node -metrics-addr). Each
// scrape takes a MetricsSnapshot, so scraping a live node is safe. The
// returned address is the bound listen address (useful with port 0);
// Stop closes the listener.
func (u *UDPNode) ServeMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("realtime: metrics listener: %w", err)
	}
	u.mu.Lock()
	u.metrics = ln
	u.mu.Unlock()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := u.MetricsSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheus(w, u.node.Addr(), s.Node, s.Queries, &s.Hists, s.Extras...) //nolint:errcheck // client gone
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // closed by Stop
	return ln.Addr().String(), nil
}

// Stop closes the socket and waits for the goroutines.
func (u *UDPNode) Stop() {
	select {
	case <-u.done:
		return
	default:
	}
	close(u.done)
	u.conn.Close()
	u.mu.Lock()
	if u.metrics != nil {
		u.metrics.Close()
	}
	u.mu.Unlock()
	u.wg.Wait()
}
