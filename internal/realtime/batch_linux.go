//go:build linux && (amd64 || arm64)

package realtime

import (
	"net"
	"syscall"
	"unsafe"
)

// Batched UDP I/O via recvmmsg/sendmmsg, driven through the runtime
// poller (RawConn.Read/Write keep the goroutine parked until the socket
// is ready, so this composes with net.UDPConn deadlines and Close).
// One syscall moves up to ioBatch datagrams in either direction, which
// is the difference between ~100k syscalls/sec and ~3k at the bench's
// target rate. The stdlib syscall package has Msghdr and Iovec but not
// the mmsghdr wrapper, so that one struct is defined here; the build
// tag pins the architectures whose Msghdr field types match the
// assignments below. Other platforms fall back to per-datagram reads
// (udp.go readPortable, gen.go single sends).

// ioBatch is the number of datagrams moved per recvmmsg/sendmmsg call.
const ioBatch = 32

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

func recvmmsg(fd uintptr, hdrs []mmsghdr, flags uintptr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), flags, 0, 0)
	return int(n), e
}

func sendmmsg(fd uintptr, hdrs []mmsghdr, flags uintptr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), flags, 0, 0)
	return int(n), e
}

// batchReader reads up to ioBatch datagrams per syscall into pooled
// buffers. Not goroutine-safe; each reader goroutine owns one.
type batchReader struct {
	rc   syscall.RawConn
	pool *bufPool
	bufs [ioBatch]*[]byte
	iovs [ioBatch]syscall.Iovec
	hdrs [ioBatch]mmsghdr
}

func newBatchReader(conn *net.UDPConn, pool *bufPool) *batchReader {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	return &batchReader{rc: rc, pool: pool}
}

// read blocks until at least one datagram arrives (or the socket
// closes: ok=false) and returns how many slots were filled.
func (br *batchReader) read() (cnt int, ok bool) {
	for i := 0; i < ioBatch; i++ {
		if br.bufs[i] == nil {
			br.bufs[i] = br.pool.get()
		}
		b := *br.bufs[i]
		br.iovs[i].Base = &b[0]
		br.iovs[i].SetLen(len(b))
		br.hdrs[i].hdr = syscall.Msghdr{Iov: &br.iovs[i], Iovlen: 1}
		br.hdrs[i].len = 0
	}
	var errno syscall.Errno
	err := br.rc.Read(func(fd uintptr) bool {
		for {
			n, e := recvmmsg(fd, br.hdrs[:], uintptr(syscall.MSG_DONTWAIT))
			switch e {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park on the poller until readable
			default:
				cnt, errno = n, e
				return true
			}
		}
	})
	if err != nil || errno != 0 {
		return 0, false
	}
	return cnt, true
}

// take transfers slot i's buffer to the caller, reporting the datagram
// length and whether the kernel truncated it to fit the buffer.
func (br *batchReader) take(i int) (buf *[]byte, n int, trunc bool) {
	buf = br.bufs[i]
	br.bufs[i] = nil
	return buf, int(br.hdrs[i].len), br.hdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0
}

// batchSender writes multiple frames per sendmmsg call on a connected
// UDP socket (the traffic generator's send path). Not goroutine-safe.
type batchSender struct {
	rc   syscall.RawConn
	iovs [ioBatch]syscall.Iovec
	hdrs [ioBatch]mmsghdr
}

func newBatchSender(conn *net.UDPConn) *batchSender {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	return &batchSender{rc: rc}
}

// send writes all frames (in ioBatch-sized syscalls), returning the
// number fully handed to the kernel and the first hard error.
func (bs *batchSender) send(frames [][]byte) (int, error) {
	sent := 0
	for sent < len(frames) {
		k := len(frames) - sent
		if k > ioBatch {
			k = ioBatch
		}
		for i := 0; i < k; i++ {
			f := frames[sent+i]
			bs.iovs[i].Base = &f[0]
			bs.iovs[i].SetLen(len(f))
			bs.hdrs[i].hdr = syscall.Msghdr{Iov: &bs.iovs[i], Iovlen: 1}
			bs.hdrs[i].len = 0
		}
		var n int
		var errno syscall.Errno
		err := bs.rc.Write(func(fd uintptr) bool {
			for {
				c, e := sendmmsg(fd, bs.hdrs[:k], uintptr(syscall.MSG_DONTWAIT))
				switch e {
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					return false // wait for writability
				default:
					n, errno = c, e
					return true
				}
			}
		})
		if err != nil {
			return sent, err
		}
		if errno != 0 {
			return sent, errno
		}
		if n <= 0 {
			return sent, syscall.EIO
		}
		sent += n
	}
	return sent, nil
}
