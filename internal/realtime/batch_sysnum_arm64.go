//go:build linux

package realtime

import "syscall"

const sysSendmmsg uintptr = syscall.SYS_SENDMMSG
