package realtime

import (
	"errors"
	"sync"
	"time"

	"p2go/internal/engine"
	"p2go/internal/tuple"
)

// The ingestion hot path. At 100k+ events/sec every per-datagram
// allocation and syscall shows up, so the pipeline is built from three
// pieces:
//
//   - tasks are plain values dispatched on a kind tag — no closure, no
//     per-task heap allocation (the old task{run: func(){...}} cost one
//     closure per datagram);
//   - receive buffers are pooled (*[]byte in a sync.Pool) and recycled
//     by the executor after the engine has decoded the tuple out of
//     them (tuple.Unmarshal copies/interns every byte it keeps, so the
//     buffer is dead the moment HandleMessage returns);
//   - the executor drains up to taskBatch tasks per channel operation,
//     reading the wall clock once per batch instead of once per task.
//
// Overload is a first-class policy rather than an accident of channel
// semantics: OverloadDrop (the default) sheds load exactly like UDP and
// accounts for every shed datagram, OverloadBlock applies backpressure
// to the producer. Control-plane tasks (timers, snapshots) always use
// blocking sends — dropping them would corrupt cadence or deadlock a
// caller, and they are orders of magnitude rarer than data.

// OverloadPolicy selects what a full task queue does to producers.
type OverloadPolicy uint8

const (
	// OverloadDrop sheds the task and counts it (TransportStats
	// DropOverload for socket datagrams, DropInject for Inject calls) —
	// UDP semantics, the default.
	OverloadDrop OverloadPolicy = iota
	// OverloadBlock makes the producer wait for queue space:
	// backpressure. For the socket reader this moves overflow into the
	// kernel socket buffer (and past it, to kernel-level drops this
	// process cannot count); for Inject and the channel-transport
	// Network it is true end-to-end backpressure.
	OverloadBlock
)

// ErrOverload is returned by Inject under OverloadDrop when the node's
// task queue is full. The event was not enqueued; callers may retry.
var ErrOverload = errors.New("realtime: task queue full (overload drop)")

// ErrStopped is returned by Inject on a stopped node or network.
var ErrStopped = errors.New("realtime: node stopped")

type taskKind uint8

const (
	taskMsg   taskKind = iota // env (+ optional buf): incoming network message
	taskLocal                 // tup: locally injected tuple
	taskTimer                 // p: periodic firing
	taskFunc                  // fn: control task (snapshots, probes)
)

// task is one unit of node work. It is a plain value moved through the
// task channel; the executor dispatches on kind, so enqueuing a task
// allocates nothing.
type task struct {
	at   time.Time // enqueue time, for queue-wait observation
	sent int64     // sender wall clock (unix nanos) for hop latency; 0 = unknown
	env  engine.Envelope
	tup  tuple.Tuple
	fn   func()
	p    *engine.Periodic
	buf  *[]byte // pooled receive buffer backing env; recycled after run
	kind taskKind
}

// taskBatch bounds how many tasks one executor wake-up drains: enough to
// amortize the channel operation and the clock read, small enough that
// sweeps and control tasks never starve.
const taskBatch = 64

// bufPool recycles fixed-size receive buffers. Pointers (not slices) go
// through the sync.Pool so Put does not allocate an interface box.
type bufPool struct {
	pool sync.Pool
	size int
}

func newBufPool(size int) *bufPool {
	p := &bufPool{size: size}
	p.pool.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return p
}

func (p *bufPool) get() *[]byte { return p.pool.Get().(*[]byte) }

func (p *bufPool) put(b *[]byte) {
	if b == nil || cap(*b) < p.size {
		return
	}
	*b = (*b)[:p.size]
	p.pool.Put(b)
}

// runOne executes a single task against its node. now/nowNanos are the
// batch timestamp: queue wait and hop latency are measured against one
// clock read per batch, not one per task (the amortization is worth
// ~2x time.Now() per datagram at 100k/sec; the skew within a batch is
// bounded by the batch's own service time). depth is the observed queue
// depth for this task. done, when non-nil, is invoked after a taskMsg
// completes so the owner can recycle the buffer and count the datagram
// as processed.
func runOne(n *engine.Node, t *task, now time.Time, nowNanos int64, depth int, done func(*task)) {
	n.ObserveQueueWait(now.Sub(t.at).Seconds(), depth)
	switch t.kind {
	case taskMsg:
		if t.sent != 0 {
			// End-to-end ingest latency: sender stamp to execution start,
			// wall clock (same-host loopback in the bench; across real
			// hosts this inherits clock skew, like any one-way measure).
			d := float64(nowNanos-t.sent) / 1e9
			if d < 0 {
				d = 0
			}
			n.ObserveHop(d)
		}
		n.HandleMessage(t.env)
		if done != nil {
			done(t)
		}
	case taskLocal:
		n.HandleLocal(t.tup)
	case taskTimer:
		n.HandleTimer(t.p)
	case taskFunc:
		t.fn()
	}
}

// drainBatch runs first plus up to taskBatch-1 already-queued tasks,
// with one wall-clock read for the whole batch. pending is measured
// once at batch start; later tasks report a slightly stale depth, which
// is the price of not re-reading channel length per task.
func drainBatch(n *engine.Node, tasks chan task, first task, done func(*task)) {
	now := time.Now()
	nowNanos := now.UnixNano()
	pending := len(tasks)
	runOne(n, &first, now, nowNanos, pending+1, done)
	k := pending
	if k > taskBatch-1 {
		k = taskBatch - 1
	}
	for i := 0; i < k; i++ {
		select {
		case t := <-tasks:
			runOne(n, &t, now, nowNanos, pending-i, done)
		default:
			return
		}
	}
}

// enqueue applies the overload policy to a data-plane task. It returns
// dropped=true when the policy shed the task and stopped=true when the
// node is shutting down (the task was not enqueued).
func enqueue(tasks chan task, done <-chan struct{}, policy OverloadPolicy, t task) (dropped, stopped bool) {
	if policy == OverloadBlock {
		select {
		case tasks <- t:
			return false, false
		case <-done:
			return false, true
		}
	}
	select {
	case tasks <- t:
		return false, false
	case <-done:
		return false, true
	default:
		return true, false
	}
}

// enqueueControl is a blocking send for control-plane tasks (timers,
// metric snapshots): they are never shed by the overload policy.
func enqueueControl(tasks chan task, done <-chan struct{}, t task) (stopped bool) {
	select {
	case tasks <- t:
		return false
	case <-done:
		return true
	}
}

// armPeriodic schedules a periodic trigger on a single resettable
// time.Timer: the firing callback re-arms the same timer instead of
// allocating a fresh one per firing (the old time.AfterFunc re-arm
// cascade cost one runtime timer allocation per firing). first is the
// initial delay; subsequent firings use the periodic's own period. The
// armed channel closes after tm is assigned, so the first firing cannot
// race the assignment.
func armPeriodic(tasks chan task, done <-chan struct{}, p *engine.Periodic, first time.Duration) {
	period := time.Duration(p.Period() * float64(time.Second))
	armed := make(chan struct{})
	var tm *time.Timer
	fire := func() {
		<-armed
		select {
		case <-done:
			return
		default:
		}
		if enqueueControl(tasks, done, task{at: time.Now(), kind: taskTimer, p: p}) {
			return
		}
		if !p.Done() {
			tm.Reset(period)
		}
	}
	tm = time.AfterFunc(first, fire)
	close(armed)
}
