package chainrep

import (
	"fmt"
	"testing"

	"p2go/internal/overlog"
	"p2go/internal/simnet"
	"p2go/internal/tuple"
)

// chain builds an N-node chain c1 -> c2 -> ... -> cN plus a client node.
type chain struct {
	t       *testing.T
	sim     *simnet.Sim
	net     *simnet.Network
	nodes   []string
	watched []tuple.Tuple
}

func newChain(t *testing.T, n int) *chain {
	t.Helper()
	c := &chain{t: t, sim: simnet.NewSim()}
	c.net = simnet.NewNetwork(c.sim, simnet.Config{
		Seed: 5,
		OnWatch: func(now float64, node string, tp tuple.Tuple) {
			c.watched = append(c.watched, tp)
		},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			t.Errorf("rule error %s/%s: %v", node, ruleID, err)
		},
	})
	for i := 1; i <= n; i++ {
		c.nodes = append(c.nodes, fmt.Sprintf("c%d", i))
	}
	for i, addr := range c.nodes {
		nd, err := c.net.AddNode(addr)
		if err != nil {
			t.Fatal(err)
		}
		next := "-"
		if i+1 < n {
			next = c.nodes[i+1]
		}
		if err := Install(nd, next); err != nil {
			t.Fatal(err)
		}
	}
	// The client observes acks and results via watches.
	cl, err := c.net.AddNode("client")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"putAck", "getResult", "getMiss"} {
		prog := fmt.Sprintf("watch(%s).\n", w)
		if err := cl.InstallProgram(mustParse(t, prog)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func mustParse(t *testing.T, src string) *overlog.Program {
	t.Helper()
	p, err := overlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (c *chain) head() string { return c.nodes[0] }
func (c *chain) tail() string { return c.nodes[len(c.nodes)-1] }

func (c *chain) inject(addr string, tp tuple.Tuple) {
	c.t.Helper()
	if err := c.net.Inject(addr, tp); err != nil {
		c.t.Fatal(err)
	}
}

func (c *chain) count(name string) int {
	n := 0
	for _, w := range c.watched {
		if w.Name == name {
			n++
		}
	}
	return n
}

func TestWriteReplicatesAndAcks(t *testing.T) {
	c := newChain(t, 4)
	c.inject(c.head(), Put(c.head(), "k", "v1", 1, "client"))
	c.net.RunFor(2)
	for _, addr := range c.nodes {
		if got := StoreValue(c.net.Node(addr), "k"); got != "v1" {
			t.Errorf("%s store[k] = %q, want v1", addr, got)
		}
	}
	if c.count("putAck") != 1 {
		t.Errorf("putAck count = %d, want 1 (from the tail only)", c.count("putAck"))
	}
}

func TestReadAtTail(t *testing.T) {
	c := newChain(t, 3)
	c.inject(c.head(), Put(c.head(), "k", "v2", 1, "client"))
	c.net.RunFor(2)
	c.inject(c.tail(), Get(c.tail(), "k", 2, "client"))
	c.inject(c.tail(), Get(c.tail(), "nope", 3, "client"))
	c.net.RunFor(2)
	var hitVal string
	misses := 0
	for _, w := range c.watched {
		switch w.Name {
		case "getResult":
			hitVal = w.Field(2).AsStr()
		case "getMiss":
			misses++
		}
	}
	if hitVal != "v2" {
		t.Errorf("getResult value = %q, want v2", hitVal)
	}
	if misses != 1 {
		t.Errorf("getMiss count = %d, want 1", misses)
	}
}

func TestChainLengthTraversal(t *testing.T) {
	c := newChain(t, 5)
	c.inject(c.head(), LenEvent(c.head(), 9))
	c.net.RunFor(2)
	var got int64 = -1
	for _, w := range c.watched {
		if w.Name == "chainLen" {
			got = w.Field(2).AsInt()
		}
	}
	if got != 5 {
		t.Errorf("chainLen = %d, want 5", got)
	}
	// Break the chain: crash a middle node; the traversal stalls and no
	// chainLen report returns (the detectable symptom).
	before := c.count("chainLen")
	c.net.Crash(c.nodes[2])
	c.inject(c.head(), LenEvent(c.head(), 10))
	c.net.RunFor(2)
	if c.count("chainLen") != before {
		t.Error("broken chain must not report a length")
	}
}

func TestDivergenceAudit(t *testing.T) {
	c := newChain(t, 4)
	c.inject(c.head(), Put(c.head(), "k", "v1", 1, "client"))
	c.net.RunFor(2)
	// Clean audit first.
	c.inject(c.head(), AuditEvent(c.head(), "k", 1))
	c.net.RunFor(2)
	if c.count("divergence") != 0 {
		t.Fatalf("healthy chain flagged divergence")
	}
	if c.count("auditDone") != 1 {
		t.Fatalf("audit did not reach the tail")
	}
	// Corrupt replica 3 (bit-rot / buggy apply) and audit again.
	c.inject(c.nodes[2], tuple.New("store",
		tuple.Str(c.nodes[2]), tuple.Str("k"), tuple.Str("CORRUPT")))
	c.net.RunFor(1)
	c.inject(c.head(), AuditEvent(c.head(), "k", 2))
	c.net.RunFor(2)
	if c.count("divergence") != 1 {
		t.Errorf("divergence count = %d, want 1", c.count("divergence"))
	}
	for _, w := range c.watched {
		if w.Name == "divergence" {
			if w.Field(4).AsStr() != "CORRUPT" || w.Field(5).AsStr() != c.nodes[2] {
				t.Errorf("divergence report = %v", w)
			}
		}
	}
}

func TestWriteStallsAcrossCrashedNode(t *testing.T) {
	c := newChain(t, 4)
	c.net.Crash(c.nodes[1])
	c.inject(c.head(), Put(c.head(), "k", "v1", 1, "client"))
	c.net.RunFor(2)
	// The head applied the write; nodes past the crash did not, and no
	// ack is produced — the failure is visible, as static chains are.
	if got := StoreValue(c.net.Node(c.head()), "k"); got != "v1" {
		t.Errorf("head store = %q", got)
	}
	if got := StoreValue(c.net.Node(c.nodes[2]), "k"); got != "" {
		t.Errorf("node past crash has %q, want empty", got)
	}
	if c.count("putAck") != 0 {
		t.Error("no ack must be produced across a crashed replica")
	}
}

// TestChainProgramsParse pins the rule sets.
func TestChainProgramsParse(t *testing.T) {
	if got := len(Program().Rules()); got != 7 {
		t.Errorf("protocol rules = %d", got)
	}
	if got := len(MonitorProgram().Rules()); got != 8 {
		t.Errorf("monitor rules = %d", got)
	}
}

// TestOverwriteFlowsDownChain: a second put for the same key replaces
// the value on every replica (keyed store semantics down the chain).
func TestOverwriteFlowsDownChain(t *testing.T) {
	c := newChain(t, 3)
	c.inject(c.head(), Put(c.head(), "k", "v1", 1, "client"))
	c.net.RunFor(2)
	c.inject(c.head(), Put(c.head(), "k", "v2", 2, "client"))
	c.net.RunFor(2)
	for _, addr := range c.nodes {
		if got := StoreValue(c.net.Node(addr), "k"); got != "v2" {
			t.Errorf("%s store[k] = %q, want v2", addr, got)
		}
	}
	if c.count("putAck") != 2 {
		t.Errorf("acks = %d, want 2", c.count("putAck"))
	}
}
