// Package chainrep implements chain replication as a second OverLog
// application, demonstrating the paper's §3.4 claim that its monitoring
// techniques "apply equally well to other algorithms with distributed
// state and control": the same traversal-plus-per-hop-check pattern used
// for Chord's ring (ri2-ri6) audits a replication chain, and the same
// watchpoint style flags replica divergence on-line.
//
// The protocol is the classic head-to-tail chain (van Renesse &
// Schneider, OSDI 2004, simplified): writes enter at the head, propagate
// down chainNext links, and are acknowledged by the tail; reads are
// served by the tail. The chain topology is static configuration.
package chainrep

import (
	"fmt"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// Rules is the chain-replication OverLog program.
//
// Schema:
//
//	chainNext(NAddr, Next)       static chain link; "-" marks the tail
//	store(NAddr, Key, Val)       the replicated key-value state
//
// Client events:
//
//	put(Head, Key, Val, ReqID, Client)  -> putAck(Client, Key, ReqID)
//	get(Tail, Key, ReqID, Client)       -> getResult(Client, Key, Val, ReqID, Tail)
//	                                     | getMiss(Client, Key, ReqID, Tail)
const Rules = `
materialize(chainNext, infinity, 1, keys(1)).
materialize(store, infinity, infinity, keys(1,2)).

/* ---- writes: apply locally, forward down the chain, ack at the tail */
w1 storeWrite@N(K, V, R, C) :- put@N(K, V, R, C).
w2 store@N(K, V) :- storeWrite@N(K, V, R, C).
w3 put@Next(K, V, R, C) :- storeWrite@N(K, V, R, C), chainNext@N(Next), Next != "-".
w4 putAck@C(K, R) :- storeWrite@N(K, V, R, C), chainNext@N(Next), Next == "-".

/* ---- reads: served from local state (clients address the tail) */
g1 hit@N(K, R, C, count<*>) :- get@N(K, R, C), store@N(K, V).
g2 getResult@C(K, V, R, N) :- get@N(K, R, C), store@N(K, V).
g3 getMiss@C(K, R, N) :- hit@N(K, R, C, Cnt), Cnt == 0.
`

// MonitorRules are the §3.4-style add-ons for the chain, installable
// on-line like every other monitor in this repository:
//
//   - chain-length traversal (the analog of the ring traversal ri2-ri6):
//     inject chainLenEvent at the head; chainLen(Head, E, Hops) reports
//     the walked length so a broken or shortened chain is detectable
//     against the expected length;
//   - replica-divergence audit (per-hop soundness check): inject
//     chainAudit(Head, E, Key); the token carries the head's value down
//     the chain and every disagreeing replica reports divergence to the
//     head. auditDone confirms the audit reached the tail.
const MonitorRules = `
cl1 lenTok@Next(E, NAddr, 1) :- chainLenEvent@NAddr(E), chainNext@NAddr(Next), Next != "-".
cl2 chainLen@NAddr(E, 1) :- chainLenEvent@NAddr(E), chainNext@NAddr(Next), Next == "-".
cl3 lenTok@Next(E, Src, D + 1) :- lenTok@NAddr(E, Src, D), chainNext@NAddr(Next), Next != "-".
cl4 chainLen@Src(E, D + 1) :- lenTok@NAddr(E, Src, D), chainNext@NAddr(Next), Next == "-".

a1 auditTok@Next(E, K, V, NAddr, 1) :- chainAudit@NAddr(E, K), store@NAddr(K, V), chainNext@NAddr(Next), Next != "-".
a2 divergence@Src(E, K, V, V2, NAddr) :- auditTok@NAddr(E, K, V, Src, D), store@NAddr(K, V2), V2 != V.
a3 auditTok@Next(E, K, V, Src, D + 1) :- auditTok@NAddr(E, K, V, Src, D), chainNext@NAddr(Next), Next != "-".
a4 auditDone@Src(E, K, D + 1) :- auditTok@NAddr(E, K, V, Src, D), chainNext@NAddr(Next), Next == "-".

watch(chainLen).
watch(divergence).
watch(auditDone).
`

// Program parses the chain-replication rules.
func Program() *overlog.Program { return overlog.MustParse(Rules) }

// MonitorProgram parses the traversal/audit monitors.
func MonitorProgram() *overlog.Program { return overlog.MustParse(MonitorRules) }

// Install loads the protocol (and monitors) onto a node and seeds its
// chainNext link; next is "-" for the tail.
func Install(n *engine.Node, next string) error {
	if err := n.InstallProgram(Program()); err != nil {
		return fmt.Errorf("chainrep: %w", err)
	}
	if err := n.InstallProgram(MonitorProgram()); err != nil {
		return fmt.Errorf("chainrep: %w", err)
	}
	n.HandleLocal(tuple.New("chainNext", tuple.Str(n.Addr()), tuple.Str(next)))
	return nil
}

// Put builds a write request for injection at the head.
func Put(head, key, val string, reqID uint64, client string) tuple.Tuple {
	return tuple.New("put", tuple.Str(head), tuple.Str(key), tuple.Str(val),
		tuple.ID(reqID), tuple.Str(client))
}

// Get builds a read request for injection at the tail.
func Get(tail, key string, reqID uint64, client string) tuple.Tuple {
	return tuple.New("get", tuple.Str(tail), tuple.Str(key),
		tuple.ID(reqID), tuple.Str(client))
}

// LenEvent starts a chain-length traversal at the head.
func LenEvent(head string, e uint64) tuple.Tuple {
	return tuple.New("chainLenEvent", tuple.Str(head), tuple.ID(e))
}

// AuditEvent starts a replica-divergence audit for key at the head.
func AuditEvent(head, key string, e uint64) tuple.Tuple {
	return tuple.New("chainAudit", tuple.Str(head), tuple.ID(e), tuple.Str(key))
}

// StoreValue reads a replica's current value for key ("" if absent).
func StoreValue(n *engine.Node, key string) string {
	tb := n.Store().Get("store")
	if tb == nil {
		return ""
	}
	out := ""
	tb.Scan(n.Now(), func(t tuple.Tuple) {
		if t.Field(1).AsStr() == key {
			out = t.Field(2).AsStr()
		}
	})
	return out
}
