// Package table implements P2's soft-state tables: bounded, TTL-expiring
// collections of tuples declared by OverLog materialize() statements.
//
// Each table has a primary key (a list of 1-based field positions).
// Inserting a tuple whose key matches an existing row replaces that row;
// inserting a tuple identical to an existing row only refreshes its TTL
// (and does not fire listeners), which keeps recursive delta-triggered
// rules from looping on their own output.
//
// Tables expire rows lazily against a caller-supplied virtual clock and
// evict the oldest row (FIFO) when the size bound is exceeded, matching
// P2's behaviour.
package table

import (
	"fmt"
	"math"
	"sort"

	"p2go/internal/tuple"
)

// Infinity marks an unbounded lifetime or size in a Spec.
const Infinity = -1

// Spec describes a materialized table, mirroring the arguments of the
// OverLog construct materialize(name, lifetime, size, keys(...)).
type Spec struct {
	// Name is the predicate name stored in this table.
	Name string
	// Lifetime is the row TTL in seconds; Infinity (-1) means rows never
	// expire.
	Lifetime float64
	// MaxSize bounds the number of rows; Infinity (-1) means unbounded.
	// When an insert would exceed the bound, the oldest row is evicted.
	MaxSize int
	// Keys lists the 1-based field positions forming the primary key
	// (position 1 is the location specifier). Empty means the whole
	// tuple is the key.
	Keys []int
}

// Op identifies the kind of change reported to listeners.
type Op uint8

const (
	// OpInsert reports a new or replacing row.
	OpInsert Op = iota
	// OpDelete reports a removed row (explicit delete, replacement of a
	// same-key row, expiry, or eviction).
	OpDelete
	// OpClear reports a bulk Clear: every row vanished at once without
	// individual delete events (crash amnesia). The reported tuple
	// carries only the table name. Subscribers holding derived state
	// (e.g. incremental aggregate accumulators) must invalidate it.
	OpClear
)

// Listener observes table changes. Listeners run synchronously inside the
// mutation; they must not mutate the table reentrantly.
type Listener func(op Op, t tuple.Tuple)

type listenerEnt struct {
	id int
	fn Listener
}

type row struct {
	t      tuple.Tuple
	expiry float64 // virtual seconds; +Inf = never
	seq    uint64  // insertion order, for FIFO eviction
}

// Table is a single soft-state table. Tables are not safe for concurrent
// use; the engine serializes all access within a node's event loop.
type Table struct {
	spec       Spec
	rows       map[uint64][]row // key hash -> rows with that hash
	count      int
	seq        uint64
	listeners  []listenerEnt
	listenerID int
	// fifo tracks insertion order for O(1) amortized eviction: seq ->
	// key hash, lazily invalidated via seqs.
	fifo []fifoRef
	seqs map[uint64]uint64 // live row seq -> key hash
	// soonest lower-bounds the earliest row expiry, letting expiry
	// sweeps exit without touching any bucket.
	soonest float64
	// indexes holds secondary join indexes (see EnsureIndex).
	indexes map[uint64][]*index
	// scanScratch is the reusable row-snapshot buffer for Scan (tables
	// are single-threaded like their node); scanBusy falls back to
	// allocation for nested scans from inside a Scan callback.
	scanScratch bySeq
	scanBusy    bool
}

// bySeq sorts a row snapshot into insertion order. It implements
// sort.Interface on the pointer so Scan's sort of the pooled snapshot
// converts to the interface without allocating.
type bySeq []row

func (r *bySeq) Len() int           { return len(*r) }
func (r *bySeq) Less(i, j int) bool { return (*r)[i].seq < (*r)[j].seq }
func (r *bySeq) Swap(i, j int)      { (*r)[i], (*r)[j] = (*r)[j], (*r)[i] }

type fifoRef struct {
	seq  uint64
	hash uint64
}

// New creates an empty table from the given spec.
func New(spec Spec) *Table {
	return &Table{
		spec:    spec,
		rows:    make(map[uint64][]row),
		seqs:    make(map[uint64]uint64),
		soonest: math.Inf(1),
	}
}

// Spec returns the table's declaration.
func (tb *Table) Spec() Spec { return tb.spec }

// Name returns the predicate name stored in the table.
func (tb *Table) Name() string { return tb.spec.Name }

// Count returns the number of live rows. Callers should Expire first if
// they need the count at a particular instant.
func (tb *Table) Count() int { return tb.count }

// Subscribe registers a listener for subsequent changes and returns a
// handle for Unsubscribe. Listeners fire in subscription order.
func (tb *Table) Subscribe(l Listener) int {
	tb.listenerID++
	tb.listeners = append(tb.listeners, listenerEnt{id: tb.listenerID, fn: l})
	return tb.listenerID
}

// Unsubscribe removes the listener registered under the given handle
// (a no-op for unknown handles). Query teardown uses it to detach
// incremental-aggregate accumulators from tables that outlive the query.
func (tb *Table) Unsubscribe(id int) {
	for i, ent := range tb.listeners {
		if ent.id == id {
			tb.listeners = append(tb.listeners[:i:i], tb.listeners[i+1:]...)
			return
		}
	}
}

// NumListeners returns the number of registered listeners (tests use it
// to verify teardown).
func (tb *Table) NumListeners() int { return len(tb.listeners) }

func (tb *Table) notify(op Op, t tuple.Tuple) {
	for _, ent := range tb.listeners {
		ent.fn(op, t)
	}
}

func (tb *Table) keyOf(t tuple.Tuple) uint64 {
	if len(tb.spec.Keys) == 0 {
		return t.Hash()
	}
	return t.KeyHash(tb.spec.Keys)
}

func (tb *Table) sameKey(a, b tuple.Tuple) bool {
	if len(tb.spec.Keys) == 0 {
		return a.Equal(b)
	}
	return a.KeyEqual(b, tb.spec.Keys)
}

// Insert adds t at virtual time now (seconds). It returns true if the
// table changed (new row or replacement), false if an identical row merely
// had its TTL refreshed. Name mismatches are rejected with an error.
func (tb *Table) Insert(t tuple.Tuple, now float64) (bool, error) {
	if t.Name != tb.spec.Name {
		return false, fmt.Errorf("table %s: cannot insert %s tuple", tb.spec.Name, t.Name)
	}
	tb.expireLocked(now)
	expiry := math.Inf(1)
	if tb.spec.Lifetime >= 0 {
		expiry = now + tb.spec.Lifetime
		if expiry < tb.soonest {
			tb.soonest = expiry
		}
	}
	h := tb.keyOf(t)
	bucket := tb.rows[h]
	for i := range bucket {
		if !tb.sameKey(bucket[i].t, t) {
			continue
		}
		if bucket[i].t.Equal(t) {
			// Identical content: refresh TTL only.
			bucket[i].expiry = expiry
			return false, nil
		}
		old := bucket[i].t
		delete(tb.seqs, bucket[i].seq)
		tb.seq++
		bucket[i] = row{t: t, expiry: expiry, seq: tb.seq}
		tb.trackSeq(tb.seq, h)
		tb.indexInsert(t, tb.seq)
		tb.notify(OpDelete, old)
		tb.notify(OpInsert, t)
		return true, nil
	}
	tb.seq++
	tb.rows[h] = append(bucket, row{t: t, expiry: expiry, seq: tb.seq})
	tb.trackSeq(tb.seq, h)
	tb.indexInsert(t, tb.seq)
	tb.count++
	if tb.spec.MaxSize >= 0 && tb.count > tb.spec.MaxSize {
		tb.evictOldest(t)
	}
	tb.notify(OpInsert, t)
	return true, nil
}

// trackSeq records insertion order and occasionally compacts the lazily
// invalidated FIFO index.
func (tb *Table) trackSeq(seq, hash uint64) {
	tb.seqs[seq] = hash
	tb.fifo = append(tb.fifo, fifoRef{seq: seq, hash: hash})
	if len(tb.fifo) > 64 && len(tb.fifo) > 4*len(tb.seqs) {
		live := tb.fifo[:0]
		for _, ref := range tb.fifo {
			if _, ok := tb.seqs[ref.seq]; ok {
				live = append(live, ref)
			}
		}
		tb.fifo = live
	}
}

// evictOldest removes the FIFO-oldest row, never the just-inserted keep.
func (tb *Table) evictOldest(keep tuple.Tuple) {
	for len(tb.fifo) > 0 {
		ref := tb.fifo[0]
		if _, live := tb.seqs[ref.seq]; !live {
			tb.fifo = tb.fifo[1:]
			continue
		}
		bucket := tb.rows[ref.hash]
		for i := range bucket {
			if bucket[i].seq != ref.seq {
				continue
			}
			if bucket[i].t.Equal(keep) {
				// The just-inserted row can only be the FIFO head
				// when it is the sole live row (MaxSize 0); never
				// evict it.
				return
			}
			victim := bucket[i].t
			tb.removeAt(ref.hash, i)
			tb.notify(OpDelete, victim)
			return
		}
		// Stale ref (row replaced); drop it.
		tb.fifo = tb.fifo[1:]
	}
}

func (tb *Table) removeAt(h uint64, i int) {
	bucket := tb.rows[h]
	delete(tb.seqs, bucket[i].seq)
	bucket[i] = bucket[len(bucket)-1]
	bucket = bucket[:len(bucket)-1]
	if len(bucket) == 0 {
		delete(tb.rows, h)
	} else {
		tb.rows[h] = bucket
	}
	tb.count--
}

// DeleteKey removes every row whose primary key equals sample's, without
// scanning the table (used by the tracer's reference-counted flushes).
func (tb *Table) DeleteKey(sample tuple.Tuple) []tuple.Tuple {
	h := tb.keyOf(sample)
	bucket := tb.rows[h]
	var removed []tuple.Tuple
	for i := 0; i < len(bucket); {
		if tb.sameKey(bucket[i].t, sample) {
			removed = append(removed, bucket[i].t)
			delete(tb.seqs, bucket[i].seq)
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			tb.count--
		} else {
			i++
		}
	}
	if len(bucket) == 0 {
		delete(tb.rows, h)
	} else {
		tb.rows[h] = bucket
	}
	for _, t := range removed {
		tb.notify(OpDelete, t)
	}
	return removed
}

// Delete removes every row unifiable with the pattern: fields in pattern
// that are non-nil must Equal the row's corresponding field; nil fields
// are wildcards. It returns the removed tuples.
func (tb *Table) Delete(pattern tuple.Tuple, now float64) []tuple.Tuple {
	tb.expireLocked(now)
	var removed []tuple.Tuple
	for h, bucket := range tb.rows {
		for i := 0; i < len(bucket); {
			if matchPattern(bucket[i].t, pattern) {
				removed = append(removed, bucket[i].t)
				delete(tb.seqs, bucket[i].seq)
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				tb.count--
			} else {
				i++
			}
		}
		if len(bucket) == 0 {
			delete(tb.rows, h)
		} else {
			tb.rows[h] = bucket
		}
	}
	for _, t := range removed {
		tb.notify(OpDelete, t)
	}
	return removed
}

func matchPattern(t, pattern tuple.Tuple) bool {
	if t.Name != pattern.Name || len(t.Fields) != len(pattern.Fields) {
		return false
	}
	for i, p := range pattern.Fields {
		if p.IsNil() {
			continue
		}
		if !t.Fields[i].Equal(p) {
			return false
		}
	}
	return true
}

// Scan calls fn for every live row at time now. Iteration order is
// deterministic (insertion order). fn must not mutate the table.
func (tb *Table) Scan(now float64, fn func(tuple.Tuple)) {
	tb.expireLocked(now)
	var rows bySeq
	pooled := !tb.scanBusy
	if pooled {
		tb.scanBusy = true
		if cap(tb.scanScratch) < tb.count {
			tb.scanScratch = make(bySeq, 0, tb.count)
		}
		rows = tb.scanScratch[:0]
	} else {
		rows = make(bySeq, 0, tb.count)
	}
	for _, bucket := range tb.rows {
		rows = append(rows, bucket...)
	}
	if pooled {
		// Sorting through the table-owned field keeps the
		// sort.Interface conversion allocation-free.
		tb.scanScratch = rows
		sort.Sort(&tb.scanScratch)
		rows = tb.scanScratch
	} else {
		sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	}
	for _, r := range rows {
		fn(r.t)
	}
	if pooled {
		tb.scanScratch = rows[:0] // keep any growth
		tb.scanBusy = false
	}
}

// Match calls fn for every live row whose fields at the given 0-based
// positions Equal the corresponding values. It is the lookup primitive
// used by join elements.
func (tb *Table) Match(now float64, positions []int, values []tuple.Value, fn func(tuple.Tuple)) {
	tb.Scan(now, func(t tuple.Tuple) {
		for i, p := range positions {
			if p >= len(t.Fields) || !t.Fields[p].Equal(values[i]) {
				return
			}
		}
		fn(t)
	})
}

// Expire removes rows whose TTL elapsed by now, firing delete listeners.
func (tb *Table) Expire(now float64) { tb.expireLocked(now) }

func (tb *Table) expireLocked(now float64) {
	if tb.spec.Lifetime < 0 || now < tb.soonest {
		return
	}
	next := math.Inf(1)
	var expired []tuple.Tuple
	for h, bucket := range tb.rows {
		for i := 0; i < len(bucket); {
			if bucket[i].expiry <= now {
				expired = append(expired, bucket[i].t)
				delete(tb.seqs, bucket[i].seq)
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				tb.count--
			} else {
				if bucket[i].expiry < next {
					next = bucket[i].expiry
				}
				i++
			}
		}
		if len(bucket) == 0 {
			delete(tb.rows, h)
		} else {
			tb.rows[h] = bucket
		}
	}
	tb.soonest = next
	for _, t := range expired {
		tb.notify(OpDelete, t)
	}
}

// Clear drops every row WITHOUT firing per-row delete listeners: it
// models the soft-state loss of a process death (a crashed node emits no
// delete events — its state simply vanishes), which is what the fault
// injector's restart-with-amnesia needs. Secondary indexes keep their
// definitions but lose their rows. A single OpClear notification fires
// after the wipe so subscribers holding derived state (incremental
// aggregate accumulators) can invalidate it.
func (tb *Table) Clear() {
	tb.rows = make(map[uint64][]row)
	tb.seqs = make(map[uint64]uint64)
	tb.fifo = tb.fifo[:0]
	tb.count = 0
	tb.soonest = math.Inf(1)
	for _, chain := range tb.indexes {
		for _, ix := range chain {
			ix.buckets = make(map[uint64][]uint64)
		}
	}
	tb.notify(OpClear, tuple.Tuple{Name: tb.spec.Name})
}

// SoonestExpiry returns the table's conservative lower bound on the
// earliest row expiry, or +Inf when nothing can expire. Probing the
// table at any time strictly before this bound is guaranteed not to
// evict rows or fire delete listeners (the early return in
// expireLocked) — the invariant the engine's speculative intra-node
// scheduler relies on. Unlike NextExpiry it is O(1): the bound is
// maintained incrementally and may be stale low (never high) after
// TTL-refreshing re-inserts.
func (tb *Table) SoonestExpiry() float64 {
	if tb.spec.Lifetime < 0 {
		return math.Inf(1)
	}
	return tb.soonest
}

// NextExpiry returns the earliest row expiry time, or +Inf when nothing
// expires. The engine uses it to schedule expiry sweeps.
func (tb *Table) NextExpiry() float64 {
	next := math.Inf(1)
	for _, bucket := range tb.rows {
		for _, r := range bucket {
			if r.expiry < next {
				next = r.expiry
			}
		}
	}
	return next
}

// SizeBytes estimates the memory footprint of all live rows.
func (tb *Table) SizeBytes() int {
	n := 0
	for _, bucket := range tb.rows {
		for _, r := range bucket {
			n += r.t.SizeBytes()
		}
	}
	return n
}

// Store is the per-node collection of tables.
type Store struct {
	tables map[string]*Table
	// order lists tables in materialization order. Whole-store sweeps
	// (ExpireAll) iterate it instead of the map: expiry fires delete
	// listeners, whose cross-table firing order must not depend on Go's
	// randomized map iteration or runs would not be reproducible.
	order []*Table
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Conflicts reports whether two specs for the same predicate disagree on
// shape (lifetime, size bound, or primary key). A nil error means other
// is a compatible re-declaration of s.
func (s Spec) Conflicts(other Spec) error {
	if s.Lifetime != other.Lifetime || s.MaxSize != other.MaxSize ||
		len(s.Keys) != len(other.Keys) {
		return fmt.Errorf("table %s already materialized with different spec", s.Name)
	}
	for i := range s.Keys {
		if s.Keys[i] != other.Keys[i] {
			return fmt.Errorf("table %s already materialized with different keys", s.Name)
		}
	}
	return nil
}

// Check validates spec against the store without creating anything: it
// returns the conflict error Materialize would, or nil. Install paths use
// it to validate a whole program before mutating any state.
func (s *Store) Check(spec Spec) error {
	if tb, ok := s.tables[spec.Name]; ok {
		return tb.spec.Conflicts(spec)
	}
	return nil
}

// Materialize creates (or returns the existing) table for the spec. A
// respecification with a different shape is an error: OverLog programs
// may be composed on-line, but a predicate's storage is declared once.
func (s *Store) Materialize(spec Spec) (*Table, error) {
	if tb, ok := s.tables[spec.Name]; ok {
		if err := tb.spec.Conflicts(spec); err != nil {
			return nil, err
		}
		return tb, nil
	}
	tb := New(spec)
	s.tables[spec.Name] = tb
	s.order = append(s.order, tb)
	return tb, nil
}

// Drop removes a table from the store, discarding its rows, listeners and
// indexes without firing delete events: a dropped query's state simply
// vanishes, like the soft state of a dead process. Dropping an unknown
// name is a no-op.
func (s *Store) Drop(name string) {
	tb, ok := s.tables[name]
	if !ok {
		return
	}
	delete(s.tables, name)
	for i, t := range s.order {
		if t == tb {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Get returns the table for a predicate, or nil if the predicate is not
// materialized (i.e. it is an event).
func (s *Store) Get(name string) *Table { return s.tables[name] }

// Names returns the materialized predicate names in sorted order.
func (s *Store) Names() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LiveTuples returns the total number of live rows across all tables.
func (s *Store) LiveTuples() int {
	n := 0
	for _, tb := range s.order {
		n += tb.count
	}
	return n
}

// SizeBytes estimates total memory held by all tables.
func (s *Store) SizeBytes() int {
	n := 0
	for _, tb := range s.order {
		n += tb.SizeBytes()
	}
	return n
}

// ExpireAll sweeps every table at time now, in materialization order so
// cross-table delete-listener firing is deterministic.
func (s *Store) ExpireAll(now float64) {
	for _, tb := range s.order {
		tb.Expire(now)
	}
}

// NextExpiry returns the earliest expiry across all tables, or +Inf.
func (s *Store) NextExpiry() float64 {
	next := math.Inf(1)
	for _, tb := range s.order {
		if e := tb.NextExpiry(); e < next {
			next = e
		}
	}
	return next
}

// index is a secondary hash index over a set of 0-based field positions.
// Buckets hold row seqs and are compacted lazily: dead seqs are skipped
// and dropped during lookups.
type index struct {
	positions []int
	buckets   map[uint64][]uint64
}

// indexKey hashes a positions slice for the index-map lookup. Lookups
// verify the positions slice exactly, so a hash collision only costs a
// chain walk, never a wrong index. A uint64 key (rather than a built
// string) keeps the per-probe MatchIndexed path allocation-free.
func indexKey(positions []int) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range positions {
		h = (h ^ uint64(p)) * 1099511628211
	}
	return h
}

func samePositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ix *index) keyOfRow(t tuple.Tuple) uint64 {
	vals := make([]tuple.Value, len(ix.positions))
	for i, p := range ix.positions {
		if p < len(t.Fields) {
			vals[i] = t.Fields[p]
		}
	}
	return tuple.HashValues(vals)
}

// EnsureIndex creates (or returns) a secondary index over the given
// 0-based field positions, backfilling it from live rows. The engine
// calls it once per distinct join access path; joins then probe buckets
// instead of scanning the table (P2's planner-created join indices).
func (tb *Table) EnsureIndex(positions []int) {
	tb.ensureIndex(positions)
}

func (tb *Table) ensureIndex(positions []int) *index {
	key := indexKey(positions)
	if tb.indexes == nil {
		tb.indexes = make(map[uint64][]*index)
	}
	for _, ix := range tb.indexes[key] {
		if samePositions(ix.positions, positions) {
			return ix
		}
	}
	ix := &index{positions: positions, buckets: make(map[uint64][]uint64)}
	// Backfill in seq (insertion) order so bucket enumeration order is
	// deterministic and identical to Scan order — fresh inserts append
	// monotonically increasing seqs, keeping that invariant.
	backfill := make([]row, 0, tb.count)
	for _, bucket := range tb.rows {
		backfill = append(backfill, bucket...)
	}
	sort.Slice(backfill, func(i, j int) bool { return backfill[i].seq < backfill[j].seq })
	for i := range backfill {
		k := ix.keyOfRow(backfill[i].t)
		ix.buckets[k] = append(ix.buckets[k], backfill[i].seq)
	}
	tb.indexes[key] = append(tb.indexes[key], ix)
	return ix
}

// indexInsert registers a fresh row in every secondary index.
func (tb *Table) indexInsert(t tuple.Tuple, seq uint64) {
	for _, chain := range tb.indexes {
		for _, ix := range chain {
			k := ix.keyOfRow(t)
			ix.buckets[k] = append(ix.buckets[k], seq)
		}
	}
}

// MatchIndexed calls fn for every live row whose fields at the 0-based
// positions Equal values, probing the secondary index for those
// positions (created on first use). The number of candidate rows visited
// is returned so callers can bill per-probe costs. Hash collisions are
// filtered by the Equal checks.
func (tb *Table) MatchIndexed(now float64, positions []int, values []tuple.Value, fn func(tuple.Tuple)) int {
	tb.expireLocked(now)
	ix := tb.ensureIndex(positions)
	k := tuple.HashValues(values)
	bucket := ix.buckets[k]
	if len(bucket) == 0 {
		return 0
	}
	visited := 0
	// Compaction writes into a FRESH slice, never in place: fn may
	// re-enter this table (a rule self-join probing the same bucket),
	// and in-place filtering would alias the array being iterated.
	var live []uint64
	for i, seq := range bucket {
		h, ok := tb.seqs[seq]
		if !ok {
			if live == nil {
				live = append(make([]uint64, 0, len(bucket)-1), bucket[:i]...)
			}
			continue // dead row: compact away
		}
		if live != nil {
			live = append(live, seq)
		}
		var row *tuple.Tuple
		for j := range tb.rows[h] {
			if tb.rows[h][j].seq == seq {
				row = &tb.rows[h][j].t
				break
			}
		}
		if row == nil {
			continue
		}
		visited++
		match := true
		for j, p := range positions {
			if p >= len(row.Fields) || !row.Fields[p].Equal(values[j]) {
				match = false
				break
			}
		}
		if match {
			fn(*row)
		}
	}
	if live != nil {
		if len(live) == 0 {
			delete(ix.buckets, k)
		} else {
			ix.buckets[k] = live
		}
	}
	return visited
}
