package table

import (
	"fmt"
	"testing"

	"p2go/internal/tuple"
)

// TestExpireAllDeterministicOrder locks the cross-table sweep order.
// ExpireAll fires delete listeners, and listener side effects observable
// outside the store (tracer event seqs, bounded-log evictions) depend on
// the order tables are swept — so that order must be materialization
// order, never Go's randomized map iteration. Twelve tables expiring in
// the same sweep make a map-order traversal overwhelmingly likely to
// betray itself within a few repetitions.
func TestExpireAllDeterministicOrder(t *testing.T) {
	// Deliberately not sorted by name: the contract is materialization
	// order, not name order.
	names := []string{"t07", "t03", "t11", "t00", "t09", "t05",
		"t01", "t10", "t04", "t08", "t02", "t06"}
	runOnce := func() []string {
		s := NewStore()
		var fired []string
		for _, name := range names {
			tb, err := s.Materialize(Spec{Name: name, Lifetime: 1, MaxSize: Infinity})
			if err != nil {
				t.Fatal(err)
			}
			tb.Subscribe(func(op Op, tu tuple.Tuple) {
				if op == OpDelete {
					fired = append(fired, tu.Name)
				}
			})
			if _, err := tb.Insert(tuple.New(name, tuple.Str("n1")), 0); err != nil {
				t.Fatal(err)
			}
		}
		s.ExpireAll(5)
		return fired
	}
	for rep := 0; rep < 20; rep++ {
		fired := runOnce()
		if len(fired) != len(names) {
			t.Fatalf("rep %d: %d deletions fired, want %d", rep, len(fired), len(names))
		}
		for i, name := range names {
			if fired[i] != name {
				t.Fatalf("rep %d: sweep order %v, want materialization order %v", rep, fired, names)
			}
		}
	}
}

// TestStoreDropKeepsSweepOrder checks Drop removes a table from the
// sweep while preserving the relative order of the rest.
func TestStoreDropKeepsSweepOrder(t *testing.T) {
	s := NewStore()
	var fired []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("d%d", i)
		tb, err := s.Materialize(Spec{Name: name, Lifetime: 1, MaxSize: Infinity})
		if err != nil {
			t.Fatal(err)
		}
		tb.Subscribe(func(op Op, tu tuple.Tuple) {
			if op == OpDelete {
				fired = append(fired, tu.Name)
			}
		})
		if _, err := tb.Insert(tuple.New(name, tuple.Str("n1")), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Drop("d1")
	if s.Get("d1") != nil {
		t.Fatal("d1 still present after Drop")
	}
	s.ExpireAll(5)
	want := []string{"d0", "d2", "d3"}
	if len(fired) != len(want) {
		t.Fatalf("sweep fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("sweep fired %v, want %v", fired, want)
		}
	}
	if s.LiveTuples() != 0 {
		t.Fatalf("LiveTuples=%d after full expiry", s.LiveTuples())
	}
}
