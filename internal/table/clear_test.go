package table

import (
	"math"
	"testing"

	"p2go/internal/tuple"
)

// TestClearDropsStateKeepsDefinition: Clear models process death — all
// rows, sequence state, and index contents vanish silently (no delete
// notifications; a dead process emits no events), but the table's spec
// and index definitions survive and the table keeps working.
func TestClearDropsStateKeepsDefinition(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: 30, MaxSize: Infinity, Keys: []int{2}})
	tb.EnsureIndex([]int{2})
	notified, cleared := 0, 0
	tb.Subscribe(func(op Op, _ tuple.Tuple) {
		if op == OpClear {
			cleared++
			return
		}
		notified++
	})
	for i := uint64(1); i <= 5; i++ {
		if _, err := tb.Insert(succ("n1", i*10, "n2"), 0); err != nil {
			t.Fatal(err)
		}
	}
	notifiedBefore := notified

	tb.Clear()
	if tb.Count() != 0 {
		t.Errorf("count after Clear = %d", tb.Count())
	}
	got := 0
	tb.Scan(1, func(tuple.Tuple) { got++ })
	if got != 0 {
		t.Errorf("Scan found %d rows after Clear", got)
	}
	if n := tb.MatchIndexed(1, []int{2}, []tuple.Value{tuple.Str("n2")},
		func(tuple.Tuple) {}); n != 0 {
		t.Errorf("index found %d rows after Clear", n)
	}
	if !math.IsInf(tb.NextExpiry(), 1) {
		t.Errorf("NextExpiry after Clear = %v, want +Inf", tb.NextExpiry())
	}
	if notified != notifiedBefore {
		t.Errorf("Clear fired %d per-row listener events; process death must be silent",
			notified-notifiedBefore)
	}
	// Silent per row, but subscribers holding derived state (incremental
	// aggregate accumulators) get exactly one bulk invalidation marker.
	if cleared != 1 {
		t.Errorf("Clear fired %d OpClear markers, want 1", cleared)
	}

	// The definition survives: inserts, index maintenance and expiry
	// still work.
	if _, err := tb.Insert(succ("n1", 99, "n3"), 100); err != nil {
		t.Fatal(err)
	}
	if tb.Count() != 1 {
		t.Errorf("count after post-Clear insert = %d", tb.Count())
	}
	if n := tb.MatchIndexed(100, []int{2}, []tuple.Value{tuple.Str("n3")},
		func(tuple.Tuple) {}); n != 1 {
		t.Errorf("index found %d rows after post-Clear insert", n)
	}
	if e := tb.NextExpiry(); e != 130 {
		t.Errorf("NextExpiry after post-Clear insert = %v, want 130", e)
	}
}
