package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p2go/internal/tuple"
)

func TestMatchIndexedBasics(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: Infinity, Keys: []int{2}})
	tb.Insert(succ("n1", 1, "a"), 0) //nolint:errcheck
	tb.Insert(succ("n1", 2, "b"), 0) //nolint:errcheck
	tb.Insert(succ("n2", 3, "b"), 0) //nolint:errcheck

	var got []uint64
	visited := tb.MatchIndexed(0, []int{0, 2},
		[]tuple.Value{tuple.Str("n1"), tuple.Str("b")},
		func(tp tuple.Tuple) { got = append(got, tp.Field(1).AsID()) })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("matched = %v, want [2]", got)
	}
	if visited < 1 {
		t.Errorf("visited = %d", visited)
	}
	// Empty-bucket probes visit nothing.
	if v := tb.MatchIndexed(0, []int{0, 2},
		[]tuple.Value{tuple.Str("zz"), tuple.Str("b")}, func(tuple.Tuple) {
			t.Error("unexpected match")
		}); v != 0 {
		t.Errorf("visited empty bucket = %d", v)
	}
}

func TestIndexTracksMutations(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: 10, MaxSize: 3, Keys: []int{2}})
	probe := func(addr string) int {
		n := 0
		tb.MatchIndexed(0, []int{2}, []tuple.Value{tuple.Str(addr)},
			func(tuple.Tuple) { n++ })
		return n
	}
	tb.Insert(succ("n1", 1, "a"), 0) //nolint:errcheck
	if probe("a") != 1 {
		t.Fatal("index missed insert")
	}
	// Replacement by primary key: old row leaves the index view.
	tb.Insert(succ("n1", 1, "b"), 0) //nolint:errcheck
	if probe("a") != 0 || probe("b") != 1 {
		t.Error("index stale after replacement")
	}
	// Eviction (MaxSize 3).
	for i := uint64(2); i <= 5; i++ {
		tb.Insert(succ("n1", i, "b"), 0) //nolint:errcheck
	}
	if got := probe("b"); got != 3 {
		t.Errorf("indexed rows after eviction = %d, want 3", got)
	}
	// Expiry.
	tb.Expire(11)
	if probe("b") != 0 {
		t.Error("index returned expired rows")
	}
	// DeleteKey.
	tb.Insert(succ("n1", 9, "c"), 20) //nolint:errcheck
	tb.DeleteKey(succ("n1", 9, "zzz"))
	if probe("c") != 0 {
		t.Error("index returned key-deleted rows")
	}
}

// Property: for random insert/delete/expire sequences, MatchIndexed
// returns exactly the rows a filtered Scan returns.
func TestIndexEquivalentToScanProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(Spec{Name: "succ", Lifetime: 20, MaxSize: 12, Keys: []int{2}})
		r := rand.New(rand.NewSource(7))
		now := 0.0
		for _, op := range ops {
			now += float64(op%7) * 0.5
			id := uint64(op % 17)
			addr := string(rune('a' + int(op%3)))
			switch op % 5 {
			case 0, 1, 2:
				tb.Insert(succ("n1", id, addr), now) //nolint:errcheck
			case 3:
				tb.DeleteKey(succ("n1", id, "x"))
			case 4:
				tb.Expire(now)
			}
			// Compare index vs scan for a random probe.
			want := map[uint64]int{}
			probeAddr := string(rune('a' + r.Intn(3)))
			tb.Scan(now, func(tp tuple.Tuple) {
				if tp.Field(2).AsStr() == probeAddr {
					want[tp.Field(1).AsID()]++
				}
			})
			got := map[uint64]int{}
			tb.MatchIndexed(now, []int{0, 2},
				[]tuple.Value{tuple.Str("n1"), tuple.Str(probeAddr)},
				func(tp tuple.Tuple) { got[tp.Field(1).AsID()]++ })
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
