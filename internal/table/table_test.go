package table

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2go/internal/tuple"
)

func succ(loc string, id uint64, addr string) tuple.Tuple {
	return tuple.New("succ", tuple.Str(loc), tuple.ID(id), tuple.Str(addr))
}

func TestInsertAndCount(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: Infinity, Keys: []int{2}})
	changed, err := tb.Insert(succ("n1", 10, "n2"), 0)
	if err != nil || !changed {
		t.Fatalf("insert: changed=%v err=%v", changed, err)
	}
	if tb.Count() != 1 {
		t.Fatalf("count = %d", tb.Count())
	}
	if _, err := tb.Insert(tuple.New("other", tuple.Str("n1")), 0); err == nil {
		t.Error("wrong-name insert must fail")
	}
}

func TestPrimaryKeyReplacement(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: Infinity, Keys: []int{2}})
	var events []string
	tb.Subscribe(func(op Op, tp tuple.Tuple) {
		if op == OpInsert {
			events = append(events, "ins:"+tp.Field(2).AsStr())
		} else {
			events = append(events, "del:"+tp.Field(2).AsStr())
		}
	})
	tb.Insert(succ("n1", 10, "n2"), 0)
	// Same key (ID 10), different addr: replaces.
	tb.Insert(succ("n1", 10, "n3"), 0)
	if tb.Count() != 1 {
		t.Fatalf("count = %d, want 1 after replacement", tb.Count())
	}
	want := []string{"ins:n2", "del:n2", "ins:n3"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestIdenticalInsertRefreshesWithoutNotify(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: 10, MaxSize: Infinity, Keys: []int{2}})
	fired := 0
	tb.Subscribe(func(Op, tuple.Tuple) { fired++ })
	tb.Insert(succ("n1", 10, "n2"), 0)
	changed, _ := tb.Insert(succ("n1", 10, "n2"), 8)
	if changed {
		t.Error("identical insert must report unchanged")
	}
	if fired != 1 {
		t.Errorf("listeners fired %d times, want 1", fired)
	}
	// TTL was refreshed at t=8, so the row survives t=12 ...
	tb.Expire(12)
	if tb.Count() != 1 {
		t.Error("row must survive after refresh")
	}
	// ... but not t=19.
	tb.Expire(19)
	if tb.Count() != 0 {
		t.Error("row must expire 10s after refresh")
	}
}

func TestExpiryFiresDeleteListeners(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: 5, MaxSize: Infinity, Keys: []int{2}})
	deletes := 0
	tb.Subscribe(func(op Op, tp tuple.Tuple) {
		if op == OpDelete {
			deletes++
		}
	})
	tb.Insert(succ("n1", 1, "a"), 0)
	tb.Insert(succ("n1", 2, "b"), 3)
	tb.Expire(5.5)
	if tb.Count() != 1 || deletes != 1 {
		t.Errorf("count=%d deletes=%d, want 1/1", tb.Count(), deletes)
	}
	if e := tb.NextExpiry(); e != 8 {
		t.Errorf("NextExpiry = %v, want 8", e)
	}
}

func TestFIFOEviction(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: 3, Keys: []int{2}})
	for i := uint64(1); i <= 5; i++ {
		tb.Insert(succ("n1", i, "a"), 0)
	}
	if tb.Count() != 3 {
		t.Fatalf("count = %d, want 3", tb.Count())
	}
	// Oldest rows (IDs 1, 2) must have been evicted.
	var ids []uint64
	tb.Scan(0, func(tp tuple.Tuple) { ids = append(ids, tp.Field(1).AsID()) })
	want := []uint64{3, 4, 5}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("surviving ids = %v, want %v", ids, want)
		}
	}
}

func TestDeleteWithPattern(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: Infinity, Keys: []int{2, 3}})
	tb.Insert(succ("n1", 1, "a"), 0)
	tb.Insert(succ("n1", 2, "a"), 0)
	tb.Insert(succ("n1", 3, "b"), 0)
	// Delete all rows with addr "a" (ID wildcard).
	pattern := tuple.New("succ", tuple.Str("n1"), tuple.Nil, tuple.Str("a"))
	removed := tb.Delete(pattern, 0)
	if len(removed) != 2 || tb.Count() != 1 {
		t.Errorf("removed %d rows, count %d; want 2, 1", len(removed), tb.Count())
	}
}

func TestMatch(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: Infinity, Keys: []int{2}})
	tb.Insert(succ("n1", 1, "a"), 0)
	tb.Insert(succ("n1", 2, "b"), 0)
	tb.Insert(succ("n2", 3, "b"), 0)
	n := 0
	tb.Match(0, []int{0, 2}, []tuple.Value{tuple.Str("n1"), tuple.Str("b")}, func(tuple.Tuple) { n++ })
	if n != 1 {
		t.Errorf("matched %d rows, want 1", n)
	}
}

func TestScanDeterministicOrder(t *testing.T) {
	tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: Infinity, Keys: []int{2}})
	for i := uint64(0); i < 20; i++ {
		tb.Insert(succ("n1", i*7919%97, "a"), 0)
	}
	var first []uint64
	tb.Scan(0, func(tp tuple.Tuple) { first = append(first, tp.Field(1).AsID()) })
	var second []uint64
	tb.Scan(0, func(tp tuple.Tuple) { second = append(second, tp.Field(1).AsID()) })
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("scan order not deterministic")
		}
	}
}

func TestStoreMaterializeIdempotent(t *testing.T) {
	s := NewStore()
	spec := Spec{Name: "succ", Lifetime: 30, MaxSize: 16, Keys: []int{2}}
	a, err := s.Materialize(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Materialize(spec)
	if err != nil || a != b {
		t.Error("re-materialize with same spec must return same table")
	}
	if _, err := s.Materialize(Spec{Name: "succ", Lifetime: 60, MaxSize: 16, Keys: []int{2}}); err == nil {
		t.Error("conflicting respecification must fail")
	}
	if s.Get("nope") != nil {
		t.Error("Get of unmaterialized name must be nil")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "succ" {
		t.Errorf("Names = %v", names)
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore()
	tb, _ := s.Materialize(Spec{Name: "succ", Lifetime: 5, MaxSize: Infinity, Keys: []int{2}})
	tb.Insert(succ("n1", 1, "a"), 0)
	tb.Insert(succ("n1", 2, "b"), 1)
	if s.LiveTuples() != 2 {
		t.Errorf("LiveTuples = %d", s.LiveTuples())
	}
	if s.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	if e := s.NextExpiry(); e != 5 {
		t.Errorf("NextExpiry = %v", e)
	}
	s.ExpireAll(7)
	if s.LiveTuples() != 0 {
		t.Errorf("LiveTuples after expire = %d", s.LiveTuples())
	}
	if e := s.NextExpiry(); !math.IsInf(e, 1) {
		t.Errorf("NextExpiry of empty store = %v", e)
	}
}

// Property: a table keyed on field 2 never holds two rows with equal
// field 2, and never exceeds MaxSize, under arbitrary insert sequences.
func TestKeyUniquenessProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		tb := New(Spec{Name: "succ", Lifetime: Infinity, MaxSize: 8, Keys: []int{2}})
		r := rand.New(rand.NewSource(1))
		for _, id := range ids {
			tb.Insert(succ("n1", uint64(id), string(rune('a'+r.Intn(3)))), 0)
		}
		if tb.Count() > 8 {
			return false
		}
		seen := map[uint64]bool{}
		ok := true
		tb.Scan(0, func(tp tuple.Tuple) {
			id := tp.Field(1).AsID()
			if seen[id] {
				ok = false
			}
			seen[id] = true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
