package faults_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/faults"
	"p2go/internal/tuple"
)

// fingerprint captures per-node metrics, full table contents, and the
// network/fault totals — everything the determinism contract covers.
func fingerprint(r *chord.Ring) string {
	var b strings.Builder
	now := r.Sim.Now()
	for _, a := range r.Addrs {
		n := r.Node(a)
		fmt.Fprintf(&b, "%s metrics=%+v\n", a, n.Metrics())
		st := n.Store()
		names := st.Names()
		sort.Strings(names)
		for _, name := range names {
			var rows []string
			st.Get(name).Scan(now, func(t tuple.Tuple) {
				rows = append(rows, fmt.Sprintf("%v#%d", t, t.ID))
			})
			sort.Strings(rows)
			fmt.Fprintf(&b, "%s/%s(%d): %s\n", a, name, len(rows), strings.Join(rows, " "))
		}
	}
	fmt.Fprintf(&b, "total=%+v dropped=%d faults=%+v now=%v\n",
		r.Net.TotalMetrics(), r.Net.Dropped(), r.Net.FaultTotals(), now)
	return b.String()
}

// kitchenSink exercises every fault kind against a live Chord ring.
// Times are relative to the end of the convergence phase.
const kitchenSink = `
scenario kitchen-sink
at 5 delay n2->n3 0.2 dur 60
at 5 dup n4->* p 0.5 dur 60
at 5 reorder *->n5 p 0.5 dur 60
at 5 drop n3->n4 p 0.3 dur 60
at 10 partition n6-n7 dur 30
at 20 crash n2
at 50 rejoin n2
`

// TestScenarioDeterminism: an injured run is bit-identical under the
// sequential and parallel drivers — fault events act as window barriers
// and all fault randomness comes from the seeded link streams.
func TestScenarioDeterminism(t *testing.T) {
	sc := faults.MustParse(kitchenSink)
	build := func(parallel bool) string {
		r, err := chord.NewRing(chord.RingConfig{
			N: 7, Seed: 17, LossProb: 0.01, Parallel: parallel, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Run(120)
		inj, err := faults.Arm(r.Net, sc.Shift(r.Sim.Now()))
		if err != nil {
			t.Fatal(err)
		}
		r.Run(240)
		stats := inj.Stats()
		if stats.Injected != 12 { // 7 events + 5 auto-reversions
			t.Errorf("injected = %d, want 12 (parallel=%v)", stats.Injected, parallel)
		}
		if stats.Crashes != 1 || stats.Rejoins != 1 ||
			stats.Partitions != 1 || stats.Heals != 1 {
			t.Errorf("stats = %+v (parallel=%v)", stats, parallel)
		}
		var log []string
		for _, e := range inj.Log() {
			log = append(log, fmt.Sprintf("t=%.2f %s", e.At, e.What))
		}
		return strings.Join(log, "\n") + "\n" + fingerprint(r)
	}
	seq := build(false)
	par := build(true)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := max(0, i-200)
		t.Fatalf("sequential and parallel faulty runs diverged at byte %d:\n...seq: %q\n...par: %q",
			i, seq[lo:min(len(seq), i+200)], par[lo:min(len(par), i+200)])
	}
}

// TestArmRejectsBadScenario: Arm validates before scheduling anything.
func TestArmRejectsBadScenario(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := faults.Scenario{Events: []faults.Event{{At: 1, Kind: faults.Crash}}}
	if _, err := faults.Arm(r.Net, bad); err == nil {
		t.Error("Arm accepted a crash event without targets")
	}
}

// TestAutoReversion: a Duration'd fault reverts on schedule — the link
// works again after the window closes.
func TestAutoReversion(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := faults.MustParse("at 10 drop n1->n2 p 1 dur 20\nat 10 partition n1-n3 dur 20")
	if _, err := faults.Arm(r.Net, sc); err != nil {
		t.Fatal(err)
	}
	r.Run(15)
	if f := r.Net.GetLinkFault("n1", "n2"); f.DropProb != 1 {
		t.Errorf("fault not active at t=15: %+v", f)
	}
	r.Run(35)
	if f := r.Net.GetLinkFault("n1", "n2"); !f.IsZero() {
		t.Errorf("fault not reverted at t=35: %+v", f)
	}
	ft := r.Net.FaultTotals()
	if ft.Partitions != 1 || ft.Heals != 1 {
		t.Errorf("partition not auto-healed: %+v", ft)
	}
}
