package faults

import (
	"strings"
	"testing"
)

const sampleScenario = `
# three-node churn with background link trouble
scenario churn-demo
at 60 crash n3 n7 n11
at 120 rejoin n3 n7 n11
at 30 partition n1-n2 n1-n4 dur 30
at 90 heal n1-n2
at 10 delay n1->n2 0.05 dur 20
at 10 drop n2->* p 0.3 dur 20
at 10 dup *->* p 0.1
at 10 reorder n2->n3 p 0.5 dur 60
`

func TestParseScenario(t *testing.T) {
	sc, err := Parse(sampleScenario)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "churn-demo" {
		t.Errorf("name = %q", sc.Name)
	}
	if len(sc.Events) != 8 {
		t.Fatalf("parsed %d events, want 8", len(sc.Events))
	}
	ev := sc.Events[0]
	if ev.At != 60 || ev.Kind != Crash || len(ev.Nodes) != 3 || ev.Nodes[2] != "n11" {
		t.Errorf("crash event = %+v", ev)
	}
	ev = sc.Events[2]
	if ev.Kind != Partition || ev.Duration != 30 ||
		len(ev.Links) != 2 || ev.Links[1] != [2]string{"n1", "n4"} {
		t.Errorf("partition event = %+v", ev)
	}
	ev = sc.Events[4]
	if ev.Kind != Delay || ev.Delay != 0.05 || ev.Links[0] != [2]string{"n1", "n2"} {
		t.Errorf("delay event = %+v", ev)
	}
	ev = sc.Events[5]
	if ev.Kind != Drop || ev.Prob != 0.3 || ev.Links[0] != [2]string{"n2", "*"} {
		t.Errorf("drop event = %+v", ev)
	}
	ev = sc.Events[6]
	if ev.Kind != Duplicate || ev.Links[0] != [2]string{"*", "*"} {
		t.Errorf("dup event = %+v", ev)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ text, want string }{
		{"at x crash n1", "bad time"},
		{"at 5 frobnicate n1", "unknown"},
		{"at 5 crash", "needs target nodes"},
		{"at 5 partition n1", "form a-b"},
		{"at 5 drop n1:n2 p 0.5", "form src->dst"},
		{"at 5 drop n1->n2 p", "wants a probability"},
		{"at 5 drop n1->n2 p 1.5", "outside (0, 1]"},
		{"at 5 drop n1->n2", "probability"},
		{"at 5 delay n1->n2", "positive delay"},
		{"at -5 crash n1", "negative time"},
		{"at 5 crash n1 dur -2", "negative duration"},
		{"scenario a b", "one name"},
		{"crash n1", "at <seconds>"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("Parse(%q) accepted", c.text)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want mention of %q", c.text, err, c.want)
		}
	}
}

func TestShift(t *testing.T) {
	sc := MustParse("at 10 crash n1\nat 20 rejoin n1")
	sh := sc.Shift(300)
	if sh.Events[0].At != 310 || sh.Events[1].At != 320 {
		t.Errorf("shifted = %+v", sh.Events)
	}
	// The original is untouched.
	if sc.Events[0].At != 10 {
		t.Errorf("Shift mutated the receiver: %+v", sc.Events)
	}
}
