package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the tiny scenario text format:
//
//	# comment; blank lines ignored
//	scenario churn                     (optional; names the scenario)
//	at 60 crash n3 n7 n11
//	at 120 rejoin n3 n7 n11
//	at 30 partition n1-n2 n1-n4 dur 30
//	at 90 heal n1-n2
//	at 10 delay n1->n2 0.05 dur 20
//	at 10 drop n2->* p 0.3 dur 20
//	at 10 dup *->* p 0.1
//	at 10 reorder n2->n3 p 0.5 dur 60
//
// Each fault line is `at <seconds> <kind> <targets...> [<magnitude>]
// [p <prob>] [dur <seconds>]`. Node faults (crash/restart/rejoin) list
// node addresses; partition/heal list undirected pairs `a-b`; the
// message-level faults list directed links `src->dst` where either side
// may be `*`. `delay` takes its jitter bound in seconds as a bare
// number. Times are absolute virtual seconds (callers usually
// Scenario.Shift them past a convergence phase).
func Parse(text string) (Scenario, error) {
	var sc Scenario
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "scenario" {
			if len(fields) != 2 {
				return sc, fmt.Errorf("faults: line %d: scenario wants one name", lineNo+1)
			}
			sc.Name = fields[1]
			continue
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return sc, fmt.Errorf("faults: line %d: %w", lineNo+1, err)
		}
		sc.Events = append(sc.Events, ev)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// MustParse is Parse for compile-time-constant scenarios; it panics on
// error.
func MustParse(text string) Scenario {
	sc, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return sc
}

func parseEvent(fields []string) (Event, error) {
	var ev Event
	if len(fields) < 3 || fields[0] != "at" {
		return ev, fmt.Errorf("want `at <seconds> <kind> ...`, got %q", strings.Join(fields, " "))
	}
	at, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return ev, fmt.Errorf("bad time %q", fields[1])
	}
	ev.At = at
	ev.Kind = Kind(fields[2])
	args := fields[3:]
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; arg {
		case "p":
			if i+1 >= len(args) {
				return ev, fmt.Errorf("p wants a probability")
			}
			if ev.Prob, err = strconv.ParseFloat(args[i+1], 64); err != nil {
				return ev, fmt.Errorf("bad probability %q", args[i+1])
			}
			i++
		case "dur":
			if i+1 >= len(args) {
				return ev, fmt.Errorf("dur wants seconds")
			}
			if ev.Duration, err = strconv.ParseFloat(args[i+1], 64); err != nil {
				return ev, fmt.Errorf("bad duration %q", args[i+1])
			}
			i++
		default:
			if v, err := strconv.ParseFloat(arg, 64); err == nil {
				// A bare number is the magnitude (delay bound).
				ev.Delay = v
				continue
			}
			switch ev.Kind {
			case Crash, Restart, Rejoin:
				ev.Nodes = append(ev.Nodes, arg)
			case Partition, Heal:
				a, b, ok := strings.Cut(arg, "-")
				if !ok || a == "" || b == "" {
					return ev, fmt.Errorf("partition target %q wants the form a-b", arg)
				}
				ev.Links = append(ev.Links, [2]string{a, b})
			case Delay, Duplicate, Reorder, Drop:
				src, dst, ok := strings.Cut(arg, "->")
				if !ok || src == "" || dst == "" {
					return ev, fmt.Errorf("link target %q wants the form src->dst", arg)
				}
				ev.Links = append(ev.Links, [2]string{src, dst})
			default:
				return ev, fmt.Errorf("unknown fault kind %q", ev.Kind)
			}
		}
	}
	return ev, nil
}
