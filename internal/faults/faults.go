// Package faults is the deterministic fault-injection and churn
// subsystem: declarative scenarios of node crashes and restarts (with
// soft-state loss), network partitions, per-link delay jitter, message
// duplication, reordering, and targeted drops, scheduled as first-class
// virtual-time events on the simnet scheduler.
//
// The paper's monitors (§3.1) exist to catch a misbehaving overlay;
// this package is what makes the overlay misbehave, on purpose and
// reproducibly. Every fault event is armed as an UNATTRIBUTED scheduler
// event, which the parallel driver treats as a window barrier: the
// fault mutates shared network state (down flags, partition table, link
// faults) only while no worker is running, and the per-message fault
// randomness comes from the sender-owned link RNG streams. A faulty run
// is therefore bit-identical under the Sequential and Parallel drivers
// for the same seed — the determinism contract of the healthy network
// extends to injured ones (enforced by TestScenarioDeterminism here and
// chord.TestChurnDeterminism21).
//
// Scenarios are plain Go values (Scenario/Event) or a tiny text format
// (see Parse) loadable by cmd/p2bench.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"p2go/internal/metrics"
	"p2go/internal/simnet"
)

// Kind identifies a fault event type.
type Kind string

const (
	// Crash fail-stops the target nodes.
	Crash Kind = "crash"
	// Restart revives crashed nodes with their state intact
	// (restart-with-disk).
	Restart Kind = "restart"
	// Rejoin revives crashed nodes as fresh processes: soft state is
	// lost and the engine preamble replays (restart-with-amnesia).
	Rejoin Kind = "rejoin"
	// Partition severs both directions between each link's endpoints;
	// Heal restores them. Duration > 0 heals automatically.
	Partition Kind = "partition"
	// Heal removes a partition.
	Heal Kind = "heal"
	// Delay adds uniform [0, Event.Delay) seconds of jitter to every
	// message on the target links.
	Delay Kind = "delay"
	// Duplicate duplicates each message with probability Event.Prob.
	Duplicate Kind = "dup"
	// Reorder exempts each message from the per-link FIFO clamp with
	// probability Event.Prob, so it may overtake or be overtaken.
	Reorder Kind = "reorder"
	// Drop kills each message with probability Event.Prob (on top of
	// the network's base loss).
	Drop Kind = "drop"
)

// Event is one scheduled fault.
type Event struct {
	// At is the absolute virtual time (seconds) the fault applies.
	At float64
	// Kind selects the fault type.
	Kind Kind
	// Nodes are the targets of node-lifecycle faults (Crash, Restart,
	// Rejoin).
	Nodes []string
	// Links are the targets of link faults and partitions. For
	// Partition/Heal each pair is bidirectional; for the message-level
	// faults it is the directed link src->dst, and either endpoint may
	// be the wildcard "*".
	Links [][2]string
	// Prob is the per-message probability for Drop, Duplicate, Reorder.
	Prob float64
	// Delay is the jitter bound in seconds for Kind Delay.
	Delay float64
	// Duration, when > 0, automatically reverts the fault at
	// At+Duration: partitions heal, link faults clear. Ignored for
	// node-lifecycle faults (schedule an explicit Restart/Rejoin).
	Duration float64
}

// Scenario is a named, ordered set of fault events.
type Scenario struct {
	Name   string
	Events []Event
}

// Validate checks a scenario for malformed events.
func (s Scenario) Validate() error {
	for i, ev := range s.Events {
		where := fmt.Sprintf("faults: event %d (%s at t=%g)", i, ev.Kind, ev.At)
		if ev.At < 0 {
			return fmt.Errorf("%s: negative time", where)
		}
		switch ev.Kind {
		case Crash, Restart, Rejoin:
			if len(ev.Nodes) == 0 {
				return fmt.Errorf("%s: needs target nodes", where)
			}
		case Partition, Heal:
			if len(ev.Links) == 0 {
				return fmt.Errorf("%s: needs target links", where)
			}
		case Drop, Duplicate, Reorder:
			if len(ev.Links) == 0 {
				return fmt.Errorf("%s: needs target links", where)
			}
			if ev.Prob <= 0 || ev.Prob > 1 {
				return fmt.Errorf("%s: probability %g outside (0, 1]", where, ev.Prob)
			}
		case Delay:
			if len(ev.Links) == 0 {
				return fmt.Errorf("%s: needs target links", where)
			}
			if ev.Delay <= 0 {
				return fmt.Errorf("%s: needs a positive delay bound", where)
			}
		default:
			return fmt.Errorf("%s: unknown kind", where)
		}
		if ev.Duration < 0 {
			return fmt.Errorf("%s: negative duration", where)
		}
	}
	return nil
}

// Shift returns a copy of the scenario with every event time (and
// nothing else) offset by d seconds — scenarios are usually authored
// relative to a "start churn" instant and shifted past a convergence
// phase.
func (s Scenario) Shift(d float64) Scenario {
	out := Scenario{Name: s.Name, Events: make([]Event, len(s.Events))}
	copy(out.Events, s.Events)
	for i := range out.Events {
		out.Events[i].At += d
	}
	return out
}

// Applied is one log entry of the injector: what was done and when.
type Applied struct {
	At   float64
	What string
}

// Injector owns an armed scenario: it counts the events it applies and
// keeps a virtual-time log of them (the forensic record a post-mortem
// query would start from).
type Injector struct {
	net     *simnet.Network
	applied int64
	log     []Applied
}

// Arm validates the scenario and schedules every event (plus the
// automatic reversion of events with a Duration) on the network's
// scheduler as unattributed events — window barriers under the parallel
// driver. Call before Run; events in the past are clamped to now by the
// scheduler.
func Arm(net *simnet.Network, sc Scenario) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{net: net}
	sim := net.Sim()
	for _, ev := range sc.Events {
		ev := ev
		sim.At(ev.At, func() { inj.apply(ev) })
		if ev.Duration > 0 {
			switch ev.Kind {
			case Partition:
				rev := Event{At: ev.At + ev.Duration, Kind: Heal, Links: ev.Links}
				sim.At(rev.At, func() { inj.apply(rev) })
			case Delay, Duplicate, Reorder, Drop:
				rev := ev // same kind/links/magnitude: apply() subtracts it
				rev.At = ev.At + ev.Duration
				rev.Duration = -1 // marks the reversion pass
				sim.At(rev.At, func() { inj.apply(rev) })
			}
		}
	}
	return inj, nil
}

// apply executes one fault event. It runs as an unattributed scheduler
// event, i.e. in driver context with no worker running.
func (inj *Injector) apply(ev Event) {
	inj.applied++
	now := inj.net.Sim().Now()
	revert := ev.Duration < 0
	switch ev.Kind {
	case Crash:
		for _, a := range ev.Nodes {
			inj.net.Crash(a)
		}
	case Restart:
		for _, a := range ev.Nodes {
			inj.net.Revive(a)
		}
	case Rejoin:
		for _, a := range ev.Nodes {
			inj.net.Rejoin(a)
		}
	case Partition:
		for _, l := range ev.Links {
			inj.net.Partition(l[0], l[1])
		}
	case Heal:
		for _, l := range ev.Links {
			inj.net.Heal(l[0], l[1])
		}
	case Delay, Duplicate, Reorder, Drop:
		for _, l := range ev.Links {
			f := inj.net.GetLinkFault(l[0], l[1])
			switch ev.Kind {
			case Delay:
				if revert {
					f.ExtraDelay = 0
				} else {
					f.ExtraDelay = ev.Delay
				}
			case Duplicate:
				if revert {
					f.DupProb = 0
				} else {
					f.DupProb = ev.Prob
				}
			case Reorder:
				if revert {
					f.ReorderProb = 0
				} else {
					f.ReorderProb = ev.Prob
				}
			case Drop:
				if revert {
					f.DropProb = 0
				} else {
					f.DropProb = ev.Prob
				}
			}
			inj.net.SetLinkFault(l[0], l[1], f)
		}
	}
	inj.log = append(inj.log, Applied{At: now, What: describe(ev, revert)})
}

func describe(ev Event, revert bool) string {
	var b strings.Builder
	if revert {
		b.WriteString("clear ")
	}
	b.WriteString(string(ev.Kind))
	if len(ev.Nodes) > 0 {
		b.WriteString(" " + strings.Join(ev.Nodes, ","))
	}
	for _, l := range ev.Links {
		fmt.Fprintf(&b, " %s->%s", l[0], l[1])
	}
	if ev.Prob > 0 {
		fmt.Fprintf(&b, " p=%g", ev.Prob)
	}
	if ev.Delay > 0 {
		fmt.Fprintf(&b, " delay=%gs", ev.Delay)
	}
	return b.String()
}

// Log returns the applied-event log in virtual-time order.
func (inj *Injector) Log() []Applied {
	out := make([]Applied, len(inj.log))
	copy(out, inj.log)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Stats merges the network's fault counters with the injector's applied
// count.
func (inj *Injector) Stats() metrics.Faults {
	total := inj.net.FaultTotals()
	total.Injected = inj.applied
	return total
}
