package overlog

import (
	"fmt"

	"p2go/internal/tuple"
)

// Context supplies the environment builtin functions read: the node's
// clock, random source, and identity. The engine's node implements it.
type Context interface {
	// Now returns the node-local virtual time in seconds (f_now).
	Now() float64
	// Rand64 returns a uniformly random uint64 (f_rand, f_randID).
	Rand64() uint64
	// LocalAddr returns this node's address string (f_localAddr).
	LocalAddr() string
}

// Lookup resolves a variable name to its bound value; the second result
// is false for unbound variables.
type Lookup func(name string) (tuple.Value, bool)

// Eval evaluates an expression under the given variable bindings and
// builtin context. Unbound variables and type mismatches are errors; the
// planner guarantees rule expressions are evaluated only once their
// variables are bound.
func Eval(e Expr, lookup Lookup, ctx Context) (tuple.Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *Var:
		v, ok := lookup(x.Name)
		if !ok {
			return tuple.Nil, fmt.Errorf("unbound variable %s", x.Name)
		}
		return v, nil
	case *Wildcard:
		return tuple.Nil, fmt.Errorf("wildcard in expression context")
	case *Unary:
		v, err := Eval(x.X, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		return tuple.Sub(tuple.Int(0), v)
	case *Binary:
		return evalBinary(x, lookup, ctx)
	case *Call:
		return evalCall(x, lookup, ctx)
	case *ListExpr:
		elems := make([]tuple.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := Eval(el, lookup, ctx)
			if err != nil {
				return tuple.Nil, err
			}
			elems[i] = v
		}
		return tuple.List(elems...), nil
	case *RangeExpr:
		k, err := Eval(x.X, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		lo, err := Eval(x.Lo, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		hi, err := Eval(x.Hi, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		return tuple.Bool(tuple.InInterval(k, lo, hi, x.LoOpen, x.HiOpen)), nil
	case *Agg:
		return tuple.Nil, fmt.Errorf("aggregate %s evaluated outside head", x.String())
	}
	return tuple.Nil, fmt.Errorf("unknown expression %T", e)
}

func evalBinary(x *Binary, lookup Lookup, ctx Context) (tuple.Value, error) {
	// Short-circuit boolean operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := Eval(x.L, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		if x.Op == "&&" && !l.Truth() {
			return tuple.Bool(false), nil
		}
		if x.Op == "||" && l.Truth() {
			return tuple.Bool(true), nil
		}
		r, err := Eval(x.R, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		return tuple.Bool(r.Truth()), nil
	}
	l, err := Eval(x.L, lookup, ctx)
	if err != nil {
		return tuple.Nil, err
	}
	r, err := Eval(x.R, lookup, ctx)
	if err != nil {
		return tuple.Nil, err
	}
	switch x.Op {
	case "+":
		return tuple.Add(l, r)
	case "-":
		return tuple.Sub(l, r)
	case "*":
		return tuple.Mul(l, r)
	case "/":
		return tuple.Div(l, r)
	case "%":
		return tuple.Mod(l, r)
	case "<<":
		return tuple.Shl(l, r)
	case "==":
		return tuple.Bool(l.Equal(r)), nil
	case "!=":
		return tuple.Bool(!l.Equal(r)), nil
	case "<":
		return tuple.Bool(l.Compare(r) < 0), nil
	case "<=":
		return tuple.Bool(l.Compare(r) <= 0), nil
	case ">":
		return tuple.Bool(l.Compare(r) > 0), nil
	case ">=":
		return tuple.Bool(l.Compare(r) >= 0), nil
	}
	return tuple.Nil, fmt.Errorf("unknown operator %q", x.Op)
}

// Builtin function table. All builtins are pure given the Context.
func evalCall(c *Call, lookup Lookup, ctx Context) (tuple.Value, error) {
	args := make([]tuple.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := Eval(a, lookup, ctx)
		if err != nil {
			return tuple.Nil, err
		}
		args[i] = v
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d argument(s), got %d", c.Name, n, len(args))
		}
		return nil
	}
	switch c.Name {
	case "f_now":
		if err := arity(0); err != nil {
			return tuple.Nil, err
		}
		return tuple.Float(ctx.Now()), nil
	case "f_rand", "f_randID":
		if err := arity(0); err != nil {
			return tuple.Nil, err
		}
		return tuple.ID(ctx.Rand64()), nil
	case "f_localAddr":
		if err := arity(0); err != nil {
			return tuple.Nil, err
		}
		return tuple.Str(ctx.LocalAddr()), nil
	case "f_hash":
		if err := arity(1); err != nil {
			return tuple.Nil, err
		}
		return tuple.ID(args[0].Hash()), nil
	case "f_size":
		if err := arity(1); err != nil {
			return tuple.Nil, err
		}
		if args[0].Kind() == tuple.KindList {
			return tuple.Int(int64(len(args[0].AsList()))), nil
		}
		if args[0].Kind() == tuple.KindStr {
			return tuple.Int(int64(len(args[0].AsStr()))), nil
		}
		return tuple.Nil, fmt.Errorf("f_size wants a list or string, got %s", args[0].Kind())
	case "f_first":
		if err := arity(1); err != nil {
			return tuple.Nil, err
		}
		l := args[0].AsList()
		if args[0].Kind() != tuple.KindList || len(l) == 0 {
			return tuple.Nil, fmt.Errorf("f_first of empty or non-list")
		}
		return l[0], nil
	case "f_last":
		if err := arity(1); err != nil {
			return tuple.Nil, err
		}
		l := args[0].AsList()
		if args[0].Kind() != tuple.KindList || len(l) == 0 {
			return tuple.Nil, fmt.Errorf("f_last of empty or non-list")
		}
		return l[len(l)-1], nil
	case "f_member":
		if err := arity(2); err != nil {
			return tuple.Nil, err
		}
		if args[0].Kind() != tuple.KindList {
			return tuple.Nil, fmt.Errorf("f_member wants a list")
		}
		for _, e := range args[0].AsList() {
			if e.Equal(args[1]) {
				return tuple.Bool(true), nil
			}
		}
		return tuple.Bool(false), nil
	case "f_tostr":
		if err := arity(1); err != nil {
			return tuple.Nil, err
		}
		return tuple.Str(args[0].String()), nil
	}
	return tuple.Nil, fmt.Errorf("unknown builtin %s", c.Name)
}
