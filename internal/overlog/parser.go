package overlog

import (
	"fmt"
	"strconv"
	"strings"

	"p2go/internal/tuple"
)

// Parse parses an OverLog program.
//
// Conventions, following P2:
//   - Upper-case identifiers are variables, lower-case are constants
//     (symbols, rendered as strings) or predicate names.
//   - Identifiers beginning with "f_" are builtin function calls, never
//     predicates.
//   - The location specifier pred@Loc(...) is stored as tuple field 0;
//     a functor without @ uses its first argument as the location.
//   - Aggregates (count<*>, min<X>, max<X>, sum<X>, avg<X>) may appear
//     only in rule heads.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Source: src}
	for !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Statements = append(prog.Statements, s)
	}
	return prog, nil
}

// MustParse parses src and panics on error; for statically known programs
// (the Chord and monitor rules compiled into this repository).
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) advance() token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) *Error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %v, found %v %q", k, p.cur().kind, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) statement() (Stmt, error) {
	if p.at(tokIdent) {
		switch p.cur().text {
		case "materialize":
			if p.peek().kind == tokLParen {
				return p.materialize()
			}
		case "watch":
			if p.peek().kind == tokLParen {
				return p.watch()
			}
		}
	}
	return p.rule()
}

func (p *parser) materialize() (Stmt, error) {
	p.advance() // materialize
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	life, err := p.lifeOrSize()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	size, err := p.lifeOrSize()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	kw, err := p.expect(tokIdent)
	if err != nil || kw.text != "keys" {
		return nil, p.errf("expected keys(...)")
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var keys []int
	for {
		num, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(num.text)
		if err != nil || k < 1 {
			return nil, p.errf("key positions must be positive integers")
		}
		keys = append(keys, k)
		if !p.at(tokComma) {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	m := &Materialize{Name: name.text, Keys: keys}
	m.Lifetime = life
	if size < 0 {
		m.MaxSize = -1
	} else {
		m.MaxSize = int(size)
	}
	return m, nil
}

// lifeOrSize parses a number or the keyword infinity, returning -1 for
// infinity.
func (p *parser) lifeOrSize() (float64, error) {
	if p.at(tokIdent) && p.cur().text == "infinity" {
		p.advance()
		return -1, nil
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", num.text)
	}
	return v, nil
}

func (p *parser) watch() (Stmt, error) {
	p.advance() // watch
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return &Watch{Name: name.text}, nil
}

func (p *parser) rule() (Stmt, error) {
	r := &Rule{}
	// Optional label: an identifier directly followed by another
	// identifier or by the delete keyword. "delete" itself is never a
	// label, so unlabeled delete rules parse correctly.
	if p.at(tokIdent) && p.cur().text != "delete" && p.peek().kind == tokIdent {
		r.Label = p.advance().text
	}
	if p.at(tokIdent) && p.cur().text == "delete" && p.peek().kind == tokIdent {
		r.Delete = true
		p.advance()
	}
	head, err := p.functor(true)
	if err != nil {
		return nil, err
	}
	r.Head = *head
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	for {
		bt, err := p.bodyTerm()
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, bt)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	if err := validateRule(r); err != nil {
		return nil, err
	}
	return r, nil
}

// validateRule applies static checks: aggregates only in heads, at most
// one aggregate per head, assignments bind fresh variables.
func validateRule(r *Rule) error {
	aggs := 0
	for _, a := range r.Head.Args {
		if _, ok := a.(*Agg); ok {
			aggs++
		}
	}
	if aggs > 1 {
		return fmt.Errorf("overlog: rule %s: at most one aggregate per head", r.Label)
	}
	if r.Delete && aggs > 0 {
		return fmt.Errorf("overlog: rule %s: delete rules cannot aggregate", r.Label)
	}
	return nil
}

func (p *parser) bodyTerm() (BodyTerm, error) {
	// Assignment: VAR := expr
	if p.at(tokVar) && p.peek().kind == tokAssign {
		v := p.advance().text
		p.advance() // :=
		e, err := p.expr(false)
		if err != nil {
			return nil, err
		}
		return &Assign{Var: v, Expr: e}, nil
	}
	// Predicate: IDENT not beginning with f_, followed by @ or (.
	if p.at(tokIdent) && !strings.HasPrefix(p.cur().text, "f_") &&
		(p.peek().kind == tokAt || p.peek().kind == tokLParen) {
		f, err := p.functor(false)
		if err != nil {
			return nil, err
		}
		return &Pred{Functor: *f}, nil
	}
	e, err := p.expr(false)
	if err != nil {
		return nil, err
	}
	return &Cond{Expr: e}, nil
}

func (p *parser) functor(isHead bool) (*Functor, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	f := &Functor{Name: name.text}
	if p.at(tokAt) {
		p.advance()
		// The location is a simple term (variable, symbol, or string);
		// parsing it as a general primary would swallow the functor's
		// opening parenthesis after a constant location like pred@n1(...).
		switch p.cur().kind {
		case tokVar:
			f.Loc = &Var{Name: p.advance().text}
		case tokIdent:
			f.Loc = &Lit{Val: tuple.Str(p.advance().text)}
		case tokString:
			f.Loc = &Lit{Val: tuple.Str(p.advance().text)}
		default:
			return nil, p.errf("expected a variable or constant after @")
		}
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if !p.at(tokRParen) {
		for {
			a, err := p.expr(isHead)
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if p.at(tokComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if f.Loc == nil && len(f.Args) == 0 {
		return nil, p.errf("predicate %s needs a location specifier", f.Name)
	}
	if !isHead {
		for _, a := range f.Args {
			switch a.(type) {
			case *Var, *Lit, *Wildcard, *Unary:
			default:
				return nil, p.errf("body predicate %s: arguments must be variables or constants, found %s", f.Name, a.String())
			}
		}
	}
	return f, nil
}

// Operator precedence, loosest first:
//
//	||  &&  (== != < <= > >= in)  <<  (+ -)  (* / %)  unary-  primary
func (p *parser) expr(allowAgg bool) (Expr, error) { return p.orExpr(allowAgg) }

func (p *parser) orExpr(allowAgg bool) (Expr, error) {
	l, err := p.andExpr(allowAgg)
	if err != nil {
		return nil, err
	}
	for p.at(tokOrOr) {
		p.advance()
		r, err := p.andExpr(allowAgg)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr(allowAgg bool) (Expr, error) {
	l, err := p.cmpExpr(allowAgg)
	if err != nil {
		return nil, err
	}
	for p.at(tokAndAnd) {
		p.advance()
		r, err := p.cmpExpr(allowAgg)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr(allowAgg bool) (Expr, error) {
	l, err := p.shiftExpr(allowAgg)
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := p.advance().text
		r, err := p.shiftExpr(allowAgg)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	case tokIdent:
		if p.cur().text == "in" {
			p.advance()
			return p.rangeTail(l)
		}
	}
	return l, nil
}

// rangeTail parses the interval after "X in": (Lo, Hi] etc.
func (p *parser) rangeTail(x Expr) (Expr, error) {
	r := &RangeExpr{X: x}
	switch p.cur().kind {
	case tokLParen:
		r.LoOpen = true
	case tokLBracket:
		r.LoOpen = false
	default:
		return nil, p.errf("expected '(' or '[' after in")
	}
	p.advance()
	lo, err := p.shiftExpr(false)
	if err != nil {
		return nil, err
	}
	r.Lo = lo
	if _, err := p.expect(tokComma); err != nil {
		return nil, err
	}
	hi, err := p.shiftExpr(false)
	if err != nil {
		return nil, err
	}
	r.Hi = hi
	switch p.cur().kind {
	case tokRParen:
		r.HiOpen = true
	case tokRBracket:
		r.HiOpen = false
	default:
		return nil, p.errf("expected ')' or ']' closing interval")
	}
	p.advance()
	return r, nil
}

func (p *parser) shiftExpr(allowAgg bool) (Expr, error) {
	l, err := p.addExpr(allowAgg)
	if err != nil {
		return nil, err
	}
	for p.at(tokShl) {
		p.advance()
		r, err := p.addExpr(allowAgg)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "<<", L: l, R: r}
	}
	return l, nil
}

func (p *parser) addExpr(allowAgg bool) (Expr, error) {
	l, err := p.mulExpr(allowAgg)
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		op := p.advance().text
		r, err := p.mulExpr(allowAgg)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr(allowAgg bool) (Expr, error) {
	l, err := p.unary(allowAgg)
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) || p.at(tokPercent) {
		op := p.advance().text
		r, err := p.unary(allowAgg)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary(allowAgg bool) (Expr, error) {
	if p.at(tokMinus) {
		p.advance()
		x, err := p.unary(allowAgg)
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Lit); ok && lit.Val.Kind() == tuple.KindInt {
			return &Lit{Val: tuple.Int(-lit.Val.AsInt())}, nil
		}
		if lit, ok := x.(*Lit); ok && lit.Val.Kind() == tuple.KindFloat {
			return &Lit{Val: tuple.Float(-lit.Val.AsFloat())}, nil
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary(allowAgg)
}

var aggOps = map[string]bool{"count": true, "min": true, "max": true, "sum": true, "avg": true}

func (p *parser) primary(allowAgg bool) (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return numberLit(t)
	case tokString:
		p.advance()
		return &Lit{Val: tuple.Str(t.text)}, nil
	case tokVar:
		p.advance()
		return &Var{Name: t.text}, nil
	case tokWildcard:
		p.advance()
		return &Wildcard{}, nil
	case tokLParen:
		p.advance()
		e, err := p.expr(false)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBracket:
		p.advance()
		l := &ListExpr{}
		if !p.at(tokRBracket) {
			for {
				e, err := p.expr(false)
				if err != nil {
					return nil, err
				}
				l.Elems = append(l.Elems, e)
				if p.at(tokComma) {
					p.advance()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return l, nil
	case tokIdent:
		// Aggregate in head position: count<*>, min<D>, ...
		if allowAgg && aggOps[t.text] && p.peek().kind == tokLt {
			p.advance() // op
			p.advance() // <
			a := &Agg{Op: t.text}
			switch p.cur().kind {
			case tokStar:
				p.advance()
			case tokVar:
				a.Var = p.advance().text
			default:
				return nil, p.errf("expected * or variable inside aggregate")
			}
			if _, err := p.expect(tokGt); err != nil {
				return nil, err
			}
			return a, nil
		}
		p.advance()
		switch t.text {
		case "true":
			return &Lit{Val: tuple.Bool(true)}, nil
		case "false":
			return &Lit{Val: tuple.Bool(false)}, nil
		case "null", "nil":
			return &Lit{Val: tuple.Nil}, nil
		}
		// Builtin call: f_name(args).
		if p.at(tokLParen) {
			if !strings.HasPrefix(t.text, "f_") {
				return nil, &Error{Line: t.line, Col: t.col,
					Msg: fmt.Sprintf("unexpected predicate %q in expression (builtins start with f_)", t.text)}
			}
			p.advance()
			c := &Call{Name: t.text}
			if !p.at(tokRParen) {
				for {
					a, err := p.expr(false)
					if err != nil {
						return nil, err
					}
					c.Args = append(c.Args, a)
					if p.at(tokComma) {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return c, nil
		}
		// Bare lower-case identifier: a symbol constant.
		return &Lit{Val: tuple.Str(t.text)}, nil
	}
	return nil, p.errf("unexpected %v %q in expression", t.kind, t.text)
}

func numberLit(t token) (Expr, error) {
	if strings.HasPrefix(t.text, "0x") || strings.HasPrefix(t.text, "0X") {
		u, err := strconv.ParseUint(t.text[2:], 16, 64)
		if err != nil {
			return nil, &Error{Line: t.line, Col: t.col, Msg: "bad hex literal " + t.text}
		}
		return &Lit{Val: tuple.ID(u)}, nil
	}
	if strings.Contains(t.text, ".") {
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, &Error{Line: t.line, Col: t.col, Msg: "bad float literal " + t.text}
		}
		return &Lit{Val: tuple.Float(f)}, nil
	}
	i, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		u, uerr := strconv.ParseUint(t.text, 10, 64)
		if uerr != nil {
			return nil, &Error{Line: t.line, Col: t.col, Msg: "bad integer literal " + t.text}
		}
		return &Lit{Val: tuple.ID(u)}, nil
	}
	return &Lit{Val: tuple.Int(i)}, nil
}
