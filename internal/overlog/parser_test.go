package overlog

import (
	"strings"
	"testing"

	"p2go/internal/tuple"
)

func parseOne(t *testing.T, src string) Stmt {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(prog.Statements) != 1 {
		t.Fatalf("Parse(%q): %d statements", src, len(prog.Statements))
	}
	return prog.Statements[0]
}

func TestParseMaterialize(t *testing.T) {
	m := parseOne(t, `materialize(path, 100, 5, keys(1,2)).`).(*Materialize)
	if m.Name != "path" || m.Lifetime != 100 || m.MaxSize != 5 {
		t.Errorf("got %+v", m)
	}
	if len(m.Keys) != 2 || m.Keys[0] != 1 || m.Keys[1] != 2 {
		t.Errorf("keys = %v", m.Keys)
	}
	m = parseOne(t, `materialize(oscill, 120, infinity, keys(2,3)).`).(*Materialize)
	if m.MaxSize != -1 {
		t.Errorf("infinity size = %d", m.MaxSize)
	}
	m = parseOne(t, `materialize(node, infinity, 1, keys(1)).`).(*Materialize)
	if m.Lifetime != -1 {
		t.Errorf("infinity lifetime = %v", m.Lifetime)
	}
}

func TestParseWatch(t *testing.T) {
	w := parseOne(t, `watch(lookupResults).`).(*Watch)
	if w.Name != "lookupResults" {
		t.Errorf("watch name = %q", w.Name)
	}
}

func TestParseSimpleRule(t *testing.T) {
	r := parseOne(t, `path(B,C,P,W) :- link(A,B,W2), path(A,C,P,W3).`).(*Rule)
	if r.Label != "" || r.Delete {
		t.Errorf("label/delete: %+v", r)
	}
	if r.Head.Name != "path" || len(r.Head.AllArgs()) != 4 {
		t.Errorf("head = %v", r.Head)
	}
	if len(r.Predicates()) != 2 {
		t.Errorf("predicates = %d", len(r.Predicates()))
	}
}

func TestParseLabeledRuleWithLocSpec(t *testing.T) {
	r := parseOne(t, `rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr), bestSucc@NAddr(SID, SAddr).`).(*Rule)
	if r.Label != "rp2" {
		t.Errorf("label = %q", r.Label)
	}
	if r.Head.Loc == nil {
		t.Fatal("head must have explicit location")
	}
	if v, ok := r.Head.Loc.(*Var); !ok || v.Name != "ReqAddr" {
		t.Errorf("head loc = %v", r.Head.Loc)
	}
	all := r.Head.AllArgs()
	if len(all) != 3 {
		t.Errorf("head AllArgs = %d", len(all))
	}
}

func TestParseDeleteRule(t *testing.T) {
	r := parseOne(t, `cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- consistency@NAddr(ProbeID, Consistency).`).(*Rule)
	if !r.Delete || r.Label != "cs10" {
		t.Errorf("got %+v", r)
	}
}

func TestParseAggregates(t *testing.T) {
	r := parseOne(t, `os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, 60), oscill@NAddr(OscillAddr, Time).`).(*Rule)
	if !r.HasAggregate() {
		t.Fatal("rule must have aggregate")
	}
	agg := r.Head.Args[1].(*Agg)
	if agg.Op != "count" || agg.Var != "" {
		t.Errorf("agg = %+v", agg)
	}
	r = parseOne(t, `l2 bestLookupDist@NAddr(K, R, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, R, E), finger@NAddr(FPos, FID, FAddr), D := K - FID - 1, FID in (NID, K).`).(*Rule)
	agg = r.Head.Args[3].(*Agg)
	if agg.Op != "min" || agg.Var != "D" {
		t.Errorf("agg = %+v", agg)
	}
	if _, err := Parse(`bad@N(count<*>, max<X>) :- t@N(X).`); err == nil {
		t.Error("two aggregates must be rejected")
	}
}

func TestParseConditionsAndAssignments(t *testing.T) {
	r := parseOne(t, `os1 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1), sendPred@NAddr(SID, SAddr), T := f_now().`).(*Rule)
	if len(r.Body) != 3 {
		t.Fatalf("body len = %d", len(r.Body))
	}
	a, ok := r.Body[2].(*Assign)
	if !ok || a.Var != "T" {
		t.Fatalf("assign = %v", r.Body[2])
	}
	if _, ok := a.Expr.(*Call); !ok {
		t.Errorf("assign expr = %v", a.Expr)
	}

	r = parseOne(t, `sr11 channelState@NAddr(Src, E, "Done") :- haveSnap@NAddr(Src, E, C), backPointer@NAddr(Remote), (C > 0) || (Src == Remote).`).(*Rule)
	c, ok := r.Body[2].(*Cond)
	if !ok {
		t.Fatalf("cond = %v", r.Body[2])
	}
	b, ok := c.Expr.(*Binary)
	if !ok || b.Op != "||" {
		t.Errorf("cond expr = %v", c.Expr)
	}
}

func TestParseRangeExpr(t *testing.T) {
	r := parseOne(t, `l1 lookupResults@R(K, SID, SAddr, E, RespAddr) :- node@NAddr(NID), lookup@NAddr(K, R, E), bestSucc@NAddr(SID, SAddr), K in (NID, SID].`).(*Rule)
	c := r.Body[3].(*Cond)
	rng, ok := c.Expr.(*RangeExpr)
	if !ok {
		t.Fatalf("expected range, got %v", c.Expr)
	}
	if !rng.LoOpen || rng.HiOpen {
		t.Errorf("interval openness: %+v", rng)
	}
	// Closed-low open-high form.
	r = parseOne(t, `x@N(K) :- y@N(K, A, B), K in [A, B).`).(*Rule)
	rng = r.Body[1].(*Cond).Expr.(*RangeExpr)
	if rng.LoOpen || !rng.HiOpen {
		t.Errorf("interval openness: %+v", rng)
	}
}

func TestParseArithHeadAndPrecedence(t *testing.T) {
	r := parseOne(t, `ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SAddr, SID), MyID >= SID.`).(*Rule)
	b, ok := r.Head.Args[4].(*Binary)
	if !ok || b.Op != "+" {
		t.Fatalf("head arith = %v", r.Head.Args[4])
	}
	// Precedence: 1 + 2 * 3 == 7.
	r = parseOne(t, `x@N(V) :- y@N(A), V := 1 + 2 * 3.`).(*Rule)
	v, err := Eval(r.Body[1].(*Assign).Expr, func(string) (tuple.Value, bool) { return tuple.Nil, false }, testCtx{})
	if err != nil || v.AsInt() != 7 {
		t.Errorf("1+2*3 = %v (%v)", v, err)
	}
	// Shift binds tighter than comparison: K := NID + (1 << I).
	r = parseOne(t, `ff@N(K) :- node@N(NID, I), K := NID + (1 << I).`).(*Rule)
	if _, ok := r.Body[1].(*Assign); !ok {
		t.Error("expected assignment")
	}
}

func TestParseListLiteral(t *testing.T) {
	r := parseOne(t, `path(B, C, P2, W) :- link(A, B, W1), path(A, C, P, W2), P2 := [B, A] + P, W := W1 + W2.`).(*Rule)
	a := r.Body[2].(*Assign)
	add := a.Expr.(*Binary)
	if _, ok := add.L.(*ListExpr); !ok {
		t.Errorf("list literal = %v", add.L)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`x@N(A) :- y@N(A)`,                        // missing dot
		`x@N(A) :- .`,                             // empty body term
		`materialize(x, 10, 5).`,                  // missing keys
		`x@N(A) :- y@N(A + 1).`,                   // expr in body predicate arg
		`x@N(count<*>) :- y@N(A), delete z@N(A).`, // delete misplaced
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestParserRoundTripStrings(t *testing.T) {
	srcs := []string{
		`rp4 inconsistentPred@NAddr() :- stabilizeRequest@NAddr(SomeID, SomeAddr), pred@NAddr(PID, PAddr), SomeAddr != PAddr.`,
		`materialize(succ, 30, 16, keys(2)).`,
		`watch(lookup).`,
	}
	for _, src := range srcs {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out := prog.Statements[0].String()
		// The printed form must itself parse and print identically.
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q: %v", out, err)
		}
		if prog2.Statements[0].String() != out {
			t.Errorf("unstable print: %q vs %q", out, prog2.Statements[0].String())
		}
	}
}

// testCtx is a trivial Context for expression tests.
type testCtx struct{}

func (testCtx) Now() float64      { return 42.5 }
func (testCtx) Rand64() uint64    { return 7 }
func (testCtx) LocalAddr() string { return "n1" }

func TestEval(t *testing.T) {
	lookup := func(name string) (tuple.Value, bool) {
		switch name {
		case "A":
			return tuple.Int(10), true
		case "S":
			return tuple.Str("x"), true
		case "K":
			return tuple.ID(5), true
		}
		return tuple.Nil, false
	}
	cases := []struct {
		src  string
		want tuple.Value
	}{
		{`A + 5`, tuple.Int(15)},
		{`A - 3 * 2`, tuple.Int(4)},
		{`S + "y"`, tuple.Str("xy")},
		{`A == 10`, tuple.Bool(true)},
		{`A != 10`, tuple.Bool(false)},
		{`(A > 5) && (S == "x")`, tuple.Bool(true)},
		{`(A < 5) || (S == "x")`, tuple.Bool(true)},
		{`f_now()`, tuple.Float(42.5)},
		{`f_rand()`, tuple.ID(7)},
		{`f_localAddr()`, tuple.Str("n1")},
		{`K in (3, 8]`, tuple.Bool(true)},
		{`K in (5, 8]`, tuple.Bool(false)},
		{`f_size([1, 2, 3])`, tuple.Int(3)},
		{`f_first([9, 2])`, tuple.Int(9)},
		{`f_last([9, 2])`, tuple.Int(2)},
		{`f_member([9, 2], 2)`, tuple.Bool(true)},
		{`-A`, tuple.Int(-10)},
		{`1 << 4`, tuple.ID(16)},
	}
	for _, c := range cases {
		// Wrap in a rule so the expression parser is exercised as used.
		prog, err := Parse(`x@N(V) :- y@N(A), V := ` + c.src + `.`)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		e := prog.Statements[0].(*Rule).Body[1].(*Assign).Expr
		got, err := Eval(e, lookup, testCtx{})
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		`Unbound + 1`,
		`f_nope()`,
		`f_now(1)`,
		`f_first([])`,
		`1 / 0`,
	}
	lookup := func(string) (tuple.Value, bool) { return tuple.Nil, false }
	for _, src := range bad {
		prog, err := Parse(`x@N(V) :- y@N(A), V := ` + src + `.`)
		if err != nil {
			continue // parse error also acceptable for f_nope-style cases
		}
		e := prog.Statements[0].(*Rule).Body[1].(*Assign).Expr
		if _, err := Eval(e, lookup, testCtx{}); err == nil {
			t.Errorf("Eval(%q) must fail", src)
		}
	}
}

// TestParsePaperCorpus parses every OverLog snippet quoted in the paper
// (adapted only for variable hygiene) to pin the grammar down.
func TestParsePaperCorpus(t *testing.T) {
	corpus := `
materialize(link, 100, 5, keys(1)).
materialize(path, 100, 5, keys(1,2)).

rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, 10), pred@NAddr(PID, PAddr), PAddr != "-".
rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr), bestSucc@NAddr(SID, SAddr).
rp3 inconsistentPred@NAddr() :- respBestSucc@NAddr(PAddr, Successor), pred@NAddr(PID, PAddr), Successor != NAddr.
rp4 inconsistentPred@NAddr() :- stabilizeRequest@NAddr(SomeID, SomeAddr), pred@NAddr(PID, PAddr), SomeAddr != PAddr.

ri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :- lookupResults@NAddr(Key, ResltNodeID, ResltNodeAddr, ReqNo, RespAddr), pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr), ResltNodeID in (PID, SID).
ri2 ordering@NAddr(E, NAddr, NID, 0) :- orderingEvent@NAddr(E), node@NAddr(NID).
ri3 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr), MyID < SID.
ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr), MyID >= SID.
ri5 ordering@SAddr(E, SrcAddr, SID, Wraps) :- countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr != SrcAddr.
ri6 orderingProblem@SAddr(E, SrcAddr, SID, Wraps) :- countWraps@NAddr(SAddr, E, SAddr, SID, Wraps), Wraps != 1.

sb4 succ@NAddr(SID, SAddr) :- sendPred@NAddr(SID, SAddr).
sb7 succ@NAddr(SID, SAddr) :- returnSucc@NAddr(SID, SAddr).

os1 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1), sendPred@NAddr(SID, SAddr), T := f_now().
os2 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1), returnSucc@NAddr(SID, SAddr), T := f_now().

materialize(oscill, 120, infinity, keys(2,3)).
os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, 60), oscill@NAddr(OscillAddr, Time).
os4 repeatOscill@NAddr(OscillAddr) :- countOscill@NAddr(OscillAddr, Count), Count >= 3.

materialize(nbrOscill, 120, infinity, keys(2,3)).
os5 nbrOscill@NAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr).
os6 nbrOscill@SAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr), succ@NAddr(SID, SAddr).
os7 nbrOscill@PAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr), pred@NAddr(PID, PAddr).
os8 nbrOscillCount@NAddr(OscillAddr, count<*>) :- nbrOscill@NAddr(OscillAddr, ReporterAddr).
os9 chaotic@NAddr(OscillAddr) :- nbrOscillCount@NAddr(OscillAddr, Count), Count > 3.

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, 40), K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- conProbe@NAddr(ProbeID, K, T), uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :- conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs4 lookup@SrcAddr(K, NAddr, ReqID) :- conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs5 conRespTable@NAddr(ProbeID, ReqID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, ReqID, Responder), conLookupTable@NAddr(ProbeID, ReqID, T).
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :- respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :- conLookupTable@NAddr(ProbeID, ReqID, T).
cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :- periodic@NAddr(E, 20), lookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - 20, maxCluster@NAddr(ProbeID, RespCount).
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- consistency@NAddr(ProbeID, Consistency).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :- consistency@NAddr(ProbeID, Consistency), conLookupTable@NAddr(ProbeID, ReqID, T).
cs12 consAlarm@NAddr(PrID) :- consistency@NAddr(PrID, Cons), Cons < 0.5.

ep1 trav@NAddr(TupleID, TupleID, TupleTime, 0, 0, 0) :- traceResp@NAddr(TupleID, TupleTime).
ep2 ruleBack@SrcAddr(ID, Curr, LastT, RuleT, NetT, LocalT, Local) :- trav@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT), tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec), Local := (LocSpec == SrcAddr).
ep5 trav@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT) :- forward@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, Rule), Rule != "cs2".
ep6 report@NAddr(ID, RuleT, NetT, LocalT) :- forward@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, "cs2").

bp1 backPointer@NAddr(RemoteAddr) :- pingReq@NAddr(RemoteAddr).
bp2 numBackPointers@NAddr(count<*>) :- backPointer@NAddr(RemoteAddr).

sr1 snap@NAddr(I + 1) :- periodic@NAddr(E, 30), snapState@NAddr(I, State).
sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I).
sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State), marker@NAddr(SrcAddr, I).
sr9 snap@NAddr(I) :- haveSnap@NAddr(Src, I, 0).
sr10 channelState@NAddr(Remote + E, Remote, E, "Start") :- haveSnap@NAddr(Src, E, 0), backPointer@NAddr(Remote), Remote != Src.
sr11 channelState@NAddr(Src, E, "Done") :- haveSnap@NAddr(Src, E, C), backPointer@NAddr(Remote), (C > 0) || (Src == Remote).
sr13 snapState@NAddr(E, "Done") :- snapState@NAddr(E, "Snapping"), doneChannels@NAddr(E, C), numBackPointers@NAddr(C).

l1 lookupResults@ReqAddr(K, SID, SAddr, E, RespAddr) :- node@NAddr(NID), lookup@NAddr(K, ReqAddr, E), bestSucc@NAddr(SAddr, SID), K in (NID, SID].
l2 bestLookupDist@NAddr(K, ReqAddr, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, ReqAddr, E), finger@NAddr(FPos, FID, FAddr), D := K - FID - 1, FID in (NID, K).
l3 lookup@FAddr(K, ReqAddr, E) :- node@NAddr(NID), bestLookupDist@NAddr(K, ReqAddr, E, D), finger@NAddr(FPos, FID, FAddr), D == K - FID - 1, FID in (NID, K).
`
	prog, err := Parse(corpus)
	if err != nil {
		t.Fatalf("paper corpus must parse: %v", err)
	}
	rules := prog.Rules()
	if len(rules) < 40 {
		t.Errorf("parsed only %d rules", len(rules))
	}
	if len(prog.Materializations()) != 4 {
		t.Errorf("materializations = %d", len(prog.Materializations()))
	}
	// Every rule re-prints to parseable OverLog.
	var b strings.Builder
	for _, r := range rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	if _, err := Parse(b.String()); err != nil {
		t.Errorf("printed corpus must reparse: %v", err)
	}
}

func TestEvalMoreBuiltinsAndErrors(t *testing.T) {
	lookup := func(name string) (tuple.Value, bool) {
		if name == "L" {
			return tuple.List(tuple.Int(1), tuple.Int(2)), true
		}
		return tuple.Nil, false
	}
	good := []struct {
		src  string
		want tuple.Value
	}{
		{`f_tostr(7)`, tuple.Str("7")},
		{`f_size("abc")`, tuple.Int(3)},
		{`f_member(L, 3)`, tuple.Bool(false)},
		{`f_hash("x") == f_hash("x")`, tuple.Bool(true)},
		{`7 % 3`, tuple.Int(1)},
		{`2 <= 2`, tuple.Bool(true)},
		{`3 >= 4`, tuple.Bool(false)},
		{`(1 < 2) && (2 < 1)`, tuple.Bool(false)},
		{`(1 < 2) || (2 < 1)`, tuple.Bool(true)},
	}
	for _, c := range good {
		prog, err := Parse(`x@N(V) :- y@N(A), V := ` + c.src + `.`)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		e := prog.Statements[0].(*Rule).Body[1].(*Assign).Expr
		got, err := Eval(e, lookup, testCtx{})
		if err != nil || !got.Equal(c.want) {
			t.Errorf("Eval(%q) = %v (%v), want %v", c.src, got, err, c.want)
		}
	}
	bad := []string{
		`7 % 0`,
		`1 << "x"`,
		`f_size(3)`,
		`f_member(3, 3)`,
		`f_last([])`,
		`true - 1`,
		`true * 2`,
		`"a" / 2`,
		`-"a"`,
	}
	for _, src := range bad {
		prog, err := Parse(`x@N(V) :- y@N(A), V := ` + src + `.`)
		if err != nil {
			continue
		}
		e := prog.Statements[0].(*Rule).Body[1].(*Assign).Expr
		if _, err := Eval(e, lookup, testCtx{}); err == nil {
			t.Errorf("Eval(%q) must fail", src)
		}
	}
}

func TestProgramAccessors(t *testing.T) {
	prog := MustParse(`
materialize(t, 10, 5, keys(1)).
watch(x).
r1 a@N(B) :- t@N(B).
`)
	if len(prog.Rules()) != 1 || len(prog.Materializations()) != 1 {
		t.Errorf("accessors: %d rules, %d materializations",
			len(prog.Rules()), len(prog.Materializations()))
	}
	r := prog.Rules()[0]
	if r.HasAggregate() {
		t.Error("HasAggregate false positive")
	}
	if got := prog.Statements[1].String(); got != "watch(x)." {
		t.Errorf("watch print = %q", got)
	}
	if got := prog.Statements[0].String(); got != "materialize(t, 10, 5, keys(1))." {
		t.Errorf("materialize print = %q", got)
	}
}
