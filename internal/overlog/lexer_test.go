package overlog

import "testing"

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lexAll(`rp1 reqBestSucc@PAddr(NAddr) :- periodic@Naddr(E, tProbe), PAddr != "-".`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tokIdent, tokIdent, tokAt, tokVar, tokLParen, tokVar, tokRParen,
		tokImplies, tokIdent, tokAt, tokVar, tokLParen, tokVar, tokComma,
		tokIdent, tokRParen, tokComma, tokVar, tokNeq, tokString, tokDot, tokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (toks %v)", i, got[i], want[i], toks)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lexAll(`:= :- == != <= >= << && || < > + - * / %`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tokAssign, tokImplies, tokEq, tokNeq, tokLe, tokGe, tokShl,
		tokAndAnd, tokOrOr, tokLt, tokGt, tokPlus, tokMinus, tokStar,
		tokSlash, tokPercent, tokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbersAndTerminators(t *testing.T) {
	toks, err := lexAll(`materialize(link, 100.5, 5, keys(1)).`)
	if err != nil {
		t.Fatal(err)
	}
	// 100.5 must lex as a single number, and the final "." as a dot.
	var nums []string
	for _, tok := range toks {
		if tok.kind == tokNumber {
			nums = append(nums, tok.text)
		}
	}
	if len(nums) != 3 || nums[0] != "100.5" {
		t.Fatalf("numbers = %v", nums)
	}
	if toks[len(toks)-2].kind != tokDot {
		t.Fatal("statement must end with dot token")
	}
	// "100." is NUMBER then DOT, not a float.
	toks, err = lexAll(`x(A) :- y(A), A < 100.`)
	if err != nil {
		t.Fatal(err)
	}
	last := toks[len(toks)-3]
	if last.kind != tokNumber || last.text != "100" {
		t.Fatalf("expected trailing integer 100, got %v %q", last.kind, last.text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll(`a(B) /* block
comment */ :- c(B). // line comment`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 10 { // a ( B ) :- c ( B ) . EOF -> 11? count: ident lparen var rparen implies ident lparen var rparen dot eof = 11
		// recount below in failure message
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.text)
	}
	if len(toks) != 11 {
		t.Fatalf("token count = %d (%v)", len(toks), texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lexAll(`"unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := lexAll(`/* unterminated`); err == nil {
		t.Error("unterminated comment must fail")
	}
	if _, err := lexAll("a(B) :- c(B) ; d(B)."); err == nil {
		t.Error("stray character must fail")
	}
}

func TestLexHex(t *testing.T) {
	toks, err := lexAll(`0xdeadbeef`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "0xdeadbeef" {
		t.Fatalf("hex literal lexed as %v %q", toks[0].kind, toks[0].text)
	}
}
