package overlog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary byte soup must produce an error or a
// program, never a panic (property-based robustness).
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseTokenSoup: random sequences of valid tokens must not panic
// either (they exercise deeper parser paths than byte soup).
func TestParseTokenSoup(t *testing.T) {
	tokens := []string{
		"foo", "Bar", "_", "42", "3.5", `"str"`, "(", ")", "[", "]",
		",", ".", "@", ":-", ":=", "+", "-", "*", "/", "%", "==", "!=",
		"<", ">", "<=", ">=", "<<", "&&", "||", "in", "count", "min",
		"materialize", "watch", "delete", "keys", "infinity", "periodic",
		"f_now",
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		n := 1 + r.Intn(20)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on token soup %q: %v", src, rec)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestRoundTripStability: every statement that parses prints to a form
// that reparses to the same print (idempotent pretty-printing), checked
// over generated rules.
func TestRoundTripStability(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	heads := []string{"a@N(X)", "b@N(X, Y)", "c@M(count<*>)", "d@N(X, min<Y>)"}
	bodies := []string{
		"e@N(X)", "f@N(X, Y)", "g@M(Y)", "X != 3", `Y := f_now()`,
		"X in (1, 5]", "periodic@N(E, 5)",
	}
	for i := 0; i < 500; i++ {
		var parts []string
		parts = append(parts, bodies[r.Intn(2)]) // ensure a binding predicate
		for j := 0; j < r.Intn(3); j++ {
			parts = append(parts, bodies[r.Intn(len(bodies))])
		}
		src := heads[r.Intn(len(heads))] + " :- " + strings.Join(parts, ", ") + "."
		prog, err := Parse(src)
		if err != nil {
			continue // some combinations are legitimately invalid
		}
		out1 := prog.Statements[0].String()
		prog2, err := Parse(out1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", out1, src, err)
		}
		if out2 := prog2.Statements[0].String(); out2 != out1 {
			t.Fatalf("unstable print: %q -> %q", out1, out2)
		}
	}
}

// FuzzParse: native fuzzing entry — arbitrary source must never panic,
// and any program that parses must pretty-print to a reparsable form.
func FuzzParse(f *testing.F) {
	f.Add(`materialize(link, 100, 5, keys(1)).`)
	f.Add(`p1 path@B(C, [B, A] + P, W1 + W2) :- link@A(B, W1), path@A(C, P, W2).`)
	f.Add(`cs9 consistency@N(P, C) :- periodic@N(E, 20), t@N(P, T, L), T < f_now() - 20, m@N(P, R), C := (R * 1.0) / L.`)
	f.Add(`d delete x@N(K, V) :- drop@N(K).`)
	f.Add(`a out@N(K, count<*>) :- ev@N(K), tab@N(K, D).`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		for _, st := range prog.Statements {
			out := st.String()
			if _, err := Parse(out); err != nil {
				t.Fatalf("printed form %q does not reparse: %v", out, err)
			}
		}
	})
}
