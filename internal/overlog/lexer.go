package overlog

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer scans OverLog source into tokens. It supports // line comments
// and /* ... */ block comments.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(msg string) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: msg}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peekByte2() == '*':
			start := *l
			l.advance(2)
			for {
				if l.pos >= len(l.src) {
					return start.errf("unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentCont(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	c := l.peekByte()
	switch {
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '"':
		return l.lexString()
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if isIdentStart(r) {
		return l.lexIdent()
	}

	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case ":-":
		tok.kind, tok.text = tokImplies, two
	case ":=":
		tok.kind, tok.text = tokAssign, two
	case "==":
		tok.kind, tok.text = tokEq, two
	case "!=":
		tok.kind, tok.text = tokNeq, two
	case "<=":
		tok.kind, tok.text = tokLe, two
	case ">=":
		tok.kind, tok.text = tokGe, two
	case "<<":
		tok.kind, tok.text = tokShl, two
	case "&&":
		tok.kind, tok.text = tokAndAnd, two
	case "||":
		tok.kind, tok.text = tokOrOr, two
	}
	if tok.kind != tokEOF {
		l.advance(2)
		return tok, nil
	}

	switch c {
	case '(':
		tok.kind = tokLParen
	case ')':
		tok.kind = tokRParen
	case '[':
		tok.kind = tokLBracket
	case ']':
		tok.kind = tokRBracket
	case ',':
		tok.kind = tokComma
	case '.':
		tok.kind = tokDot
	case '@':
		tok.kind = tokAt
	case '+':
		tok.kind = tokPlus
	case '-':
		tok.kind = tokMinus
	case '*':
		tok.kind = tokStar
	case '/':
		tok.kind = tokSlash
	case '%':
		tok.kind = tokPercent
	case '<':
		tok.kind = tokLt
	case '>':
		tok.kind = tokGt
	default:
		return token{}, l.errf("unexpected character " + string(r))
	}
	tok.text = string(c)
	l.advance(1)
	return tok, nil
}

func (l *lexer) lexNumber() (token, error) {
	tok := token{kind: tokNumber, line: l.line, col: l.col}
	start := l.pos
	for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
		l.advance(1)
	}
	// Hex literal 0x...
	if l.pos-start == 1 && l.src[start] == '0' &&
		(l.peekByte() == 'x' || l.peekByte() == 'X') {
		l.advance(1)
		for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
			l.advance(1)
		}
	} else if l.peekByte() == '.' && l.peekByte2() >= '0' && l.peekByte2() <= '9' {
		// Fractional part: only when a digit follows the dot, so that
		// the statement terminator "100." lexes as NUMBER DOT.
		l.advance(1)
		for l.pos < len(l.src) && l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.advance(1)
		}
	}
	tok.text = l.src[start:l.pos]
	return tok, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *lexer) lexString() (token, error) {
	tok := token{kind: tokString, line: l.line, col: l.col}
	l.advance(1) // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		c := l.peekByte()
		if c == '"' {
			l.advance(1)
			break
		}
		if c == '\\' {
			l.advance(1)
			esc := l.peekByte()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(esc)
			default:
				return token{}, l.errf("unknown escape \\" + string(esc))
			}
			l.advance(1)
			continue
		}
		b.WriteByte(c)
		l.advance(1)
	}
	tok.text = b.String()
	return tok, nil
}

func (l *lexer) lexIdent() (token, error) {
	tok := token{line: l.line, col: l.col}
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentCont(r) {
			break
		}
		l.advance(size)
	}
	tok.text = l.src[start:l.pos]
	if tok.text == "_" {
		tok.kind = tokWildcard
		return tok, nil
	}
	first, _ := utf8.DecodeRuneInString(tok.text)
	if unicode.IsUpper(first) {
		tok.kind = tokVar
	} else {
		tok.kind = tokIdent
	}
	return tok, nil
}

// lexAll tokenizes the entire input (testing helper and parser driver).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
