// Package overlog implements the OverLog language: the Datalog variant in
// which P2 programs — overlay algorithms and the monitoring queries that
// watch them — are written. It provides a lexer, a recursive-descent
// parser producing an AST, and the builtin function table (f_now, f_rand,
// ...). Compilation of rules into dataflow strands lives in
// internal/planner.
package overlog

import "fmt"

// tokKind enumerates lexical token types.
type tokKind uint8

const (
	tokEOF      tokKind = iota
	tokIdent            // lower-case identifier: predicate names, symbols, keywords
	tokVar              // upper-case identifier: variable
	tokWildcard         // _
	tokNumber           // integer or float literal
	tokString           // double-quoted string
	tokLParen           // (
	tokRParen           // )
	tokLBracket         // [
	tokRBracket         // ]
	tokComma            // ,
	tokDot              // .
	tokAt               // @
	tokImplies          // :-
	tokAssign           // :=
	tokPlus             // +
	tokMinus            // -
	tokStar             // *
	tokSlash            // /
	tokPercent          // %
	tokEq               // ==
	tokNeq              // !=
	tokLt               // <
	tokGt               // >
	tokLe               // <=
	tokGe               // >=
	tokShl              // <<
	tokAndAnd           // &&
	tokOrOr             // ||
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokWildcard:
		return "_"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokAt:
		return "'@'"
	case tokImplies:
		return "':-'"
	case tokAssign:
		return "':='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokGt:
		return "'>'"
	case tokLe:
		return "'<='"
	case tokGe:
		return "'>='"
	case tokShl:
		return "'<<'"
	case tokAndAnd:
		return "'&&'"
	case tokOrOr:
		return "'||'"
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// token is one lexical unit with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// Error is a parse or lex error carrying a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("overlog: line %d:%d: %s", e.Line, e.Col, e.Msg)
}
