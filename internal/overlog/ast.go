package overlog

import (
	"fmt"
	"strings"

	"p2go/internal/tuple"
)

// Program is a parsed OverLog program: an ordered list of statements.
// Programs may be installed incrementally on a running node; statement
// order matters only in that tables must be materialized before rules
// referencing them are planned.
type Program struct {
	Statements []Stmt
	// Source is the original OverLog text the program was parsed from
	// (empty for programs assembled directly from AST nodes). The engine
	// retains it per installed query so queryTable can surface it and
	// higher-order re-installation round-trips.
	Source string
}

// Rules returns only the rule statements.
func (p *Program) Rules() []*Rule {
	var rs []*Rule
	for _, s := range p.Statements {
		if r, ok := s.(*Rule); ok {
			rs = append(rs, r)
		}
	}
	return rs
}

// Materializations returns only the materialize statements.
func (p *Program) Materializations() []*Materialize {
	var ms []*Materialize
	for _, s := range p.Statements {
		if m, ok := s.(*Materialize); ok {
			ms = append(ms, m)
		}
	}
	return ms
}

// Stmt is a top-level OverLog statement.
type Stmt interface {
	stmt()
	String() string
}

// Materialize declares a soft-state table:
// materialize(name, lifetime, size, keys(1,2)).
type Materialize struct {
	Name     string
	Lifetime float64 // seconds; -1 = infinity
	MaxSize  int     // -1 = infinity
	Keys     []int   // 1-based field positions
}

func (*Materialize) stmt() {}

func (m *Materialize) String() string {
	life := "infinity"
	if m.Lifetime >= 0 {
		life = trimFloat(m.Lifetime)
	}
	size := "infinity"
	if m.MaxSize >= 0 {
		size = fmt.Sprintf("%d", m.MaxSize)
	}
	keys := make([]string, len(m.Keys))
	for i, k := range m.Keys {
		keys[i] = fmt.Sprintf("%d", k)
	}
	return fmt.Sprintf("materialize(%s, %s, %s, keys(%s)).",
		m.Name, life, size, strings.Join(keys, ","))
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Watch requests tracing of every tuple with the given name:
// watch(lookupResults).
type Watch struct {
	Name string
}

func (*Watch) stmt() {}

func (w *Watch) String() string { return fmt.Sprintf("watch(%s).", w.Name) }

// Rule is a deductive rule: [label] [delete] head :- body.
type Rule struct {
	// Label is the optional rule identifier (e.g. "rp1"); planner
	// generates one if empty. Labels appear in ruleExec trace tuples.
	Label string
	// Delete marks a delete-rule: matching head tuples are removed from
	// the head table instead of inserted.
	Delete bool
	// Head is the rule head.
	Head Functor
	// Body holds predicates, conditions and assignments in source order.
	Body []BodyTerm
}

func (*Rule) stmt() {}

func (r *Rule) String() string {
	var b strings.Builder
	if r.Label != "" {
		b.WriteString(r.Label)
		b.WriteByte(' ')
	}
	if r.Delete {
		b.WriteString("delete ")
	}
	b.WriteString(r.Head.String())
	b.WriteString(" :- ")
	for i, t := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Predicates returns the body predicates in source order.
func (r *Rule) Predicates() []*Functor {
	var fs []*Functor
	for _, t := range r.Body {
		if p, ok := t.(*Pred); ok {
			fs = append(fs, &p.Functor)
		}
	}
	return fs
}

// HasAggregate reports whether the head contains an aggregate argument.
func (r *Rule) HasAggregate() bool {
	for _, a := range r.Head.Args {
		if _, ok := a.(*Agg); ok {
			return true
		}
	}
	return false
}

// Functor is a predicate occurrence: name@Loc(args...). The location term
// is by convention the first tuple field; Args here EXCLUDES it, Loc holds
// it. Functors without an explicit @Loc use their first argument as the
// location (Loc == nil).
type Functor struct {
	Name string
	Loc  Expr   // nil when the first positional arg is the location
	Args []Expr // remaining arguments
}

// AllArgs returns the full argument list including the location term as
// field 0. When Loc is nil the args already start with the location.
func (f *Functor) AllArgs() []Expr {
	if f.Loc == nil {
		return f.Args
	}
	out := make([]Expr, 0, 1+len(f.Args))
	out = append(out, f.Loc)
	return append(out, f.Args...)
}

func (f *Functor) String() string {
	var b strings.Builder
	b.WriteString(f.Name)
	if f.Loc != nil {
		b.WriteByte('@')
		b.WriteString(f.Loc.String())
	}
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// BodyTerm is one element of a rule body.
type BodyTerm interface {
	bodyTerm()
	String() string
}

// Pred is a body predicate (an event or a table lookup).
type Pred struct{ Functor }

func (*Pred) bodyTerm() {}

// Cond is a boolean condition, e.g. PAddr != "-" or K in (NID, SID].
type Cond struct{ Expr Expr }

func (*Cond) bodyTerm() {}

func (c *Cond) String() string { return c.Expr.String() }

// Assign binds a fresh variable: T := f_now().
type Assign struct {
	Var  string
	Expr Expr
}

func (*Assign) bodyTerm() {}

func (a *Assign) String() string { return a.Var + " := " + a.Expr.String() }

// Expr is an OverLog expression node.
type Expr interface {
	expr()
	String() string
}

// Var references a variable (upper-case identifier).
type Var struct{ Name string }

func (*Var) expr() {}

func (v *Var) String() string { return v.Name }

// Wildcard is the don't-care pattern "_" in body predicate arguments.
type Wildcard struct{}

func (*Wildcard) expr() {}

func (*Wildcard) String() string { return "_" }

// Lit is a literal constant value.
type Lit struct{ Val tuple.Value }

func (*Lit) expr() {}

func (l *Lit) String() string { return l.Val.String() }

// Unary is a unary operation; Op is "-".
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) expr() {}

func (u *Unary) String() string { return u.Op + u.X.String() }

// Binary is a binary operation; Op is one of
// + - * / % << == != < <= > >= && ||.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) expr() {}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Call is a builtin function application, e.g. f_now().
type Call struct {
	Name string
	Args []Expr
}

func (*Call) expr() {}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ListExpr is a list constructor [A, B].
type ListExpr struct{ Elems []Expr }

func (*ListExpr) expr() {}

func (l *ListExpr) String() string {
	parts := make([]string, len(l.Elems))
	for i, e := range l.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// RangeExpr is ring-interval membership: X in (Lo, Hi].
type RangeExpr struct {
	X, Lo, Hi      Expr
	LoOpen, HiOpen bool
}

func (*RangeExpr) expr() {}

func (r *RangeExpr) String() string {
	lo, hi := "[", "]"
	if r.LoOpen {
		lo = "("
	}
	if r.HiOpen {
		hi = ")"
	}
	return fmt.Sprintf("%s in %s%s, %s%s", r.X.String(), lo, r.Lo.String(), r.Hi.String(), hi)
}

// Agg is an aggregate head argument: count<*>, min<D>, max<Count>.
type Agg struct {
	Op  string // "count", "min", "max", "sum", "avg"
	Var string // aggregated variable; "" for count<*>
}

func (*Agg) expr() {}

func (a *Agg) String() string {
	v := a.Var
	if v == "" {
		v = "*"
	}
	return a.Op + "<" + v + ">"
}

// Vars returns the set of variable names appearing in an expression.
func Vars(e Expr) map[string]bool {
	out := map[string]bool{}
	collectVars(e, out)
	return out
}

func collectVars(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case *Var:
		out[x.Name] = true
	case *Unary:
		collectVars(x.X, out)
	case *Binary:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case *Call:
		for _, a := range x.Args {
			collectVars(a, out)
		}
	case *ListExpr:
		for _, el := range x.Elems {
			collectVars(el, out)
		}
	case *RangeExpr:
		collectVars(x.X, out)
		collectVars(x.Lo, out)
		collectVars(x.Hi, out)
	case *Agg:
		if x.Var != "" {
			out[x.Var] = true
		}
	}
}
