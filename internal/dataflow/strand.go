// Package dataflow implements the executable form of OverLog rules: rule
// strands, the element pipelines the planner produces (Figure 1 of the
// paper). A strand is triggered by one tuple — an incoming event, a timer
// firing, or a delta on a materialized table — and runs a sequence of
// elements (joins against tables, selections, assignments) ending in head
// construction and routing.
//
// Every stateful element (join) defines a tracing "stage"; strands invoke
// the taps of a Context so the execution tracer (internal/trace) can
// reconstruct rule executions exactly as described in §2.1 of the paper.
package dataflow

import (
	"fmt"

	"p2go/internal/overlog"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// Context is the node-side environment a strand executes in. The engine's
// Node implements it; tests provide lightweight fakes.
type Context interface {
	overlog.Context

	// Table returns the materialized table for a predicate, or nil.
	Table(name string) *table.Table

	// EmitHead routes a head tuple produced by a strand: local insert or
	// event, remote send, or (for delete rules) table deletion. The
	// pattern form of delete heads uses nil values as wildcards.
	EmitHead(s *Strand, t tuple.Tuple, isDelete bool)

	// Bill charges cost seconds of simulated CPU work to the node.
	Bill(seconds float64)

	// AggState returns the persistent incremental accumulator for a
	// strand the planner marked maintainable (s.AggPlan != nil), or nil
	// to force the per-activation rescan path. The engine owns the
	// accumulator's lifecycle: it wires the table listeners that keep it
	// current and tears it down on UninstallQuery. Contexts without
	// accumulator support (tests, tracing-enabled nodes that need full
	// precondition provenance) simply return nil.
	AggState(s *Strand) *AggMaint

	// Tracer taps (no-ops when execution logging is off). The output
	// tap lives inside EmitHead: the node assigns the head tuple its
	// node-unique ID there, which the tracer needs.
	TraceInput(s *Strand, t tuple.Tuple)
	TracePrecond(s *Strand, stage int, t tuple.Tuple)
	TraceStageDone(s *Strand, stage int)

	// RuleError reports a runtime error during rule evaluation (type
	// mismatch, unbound variable); execution of the activation continues
	// with the offending binding dropped, as in P2.
	RuleError(ruleID string, err error)
}

// TriggerKind says what fires a strand.
type TriggerKind uint8

const (
	// TriggerEvent fires on arrival of an event tuple (a predicate that
	// is not materialized).
	TriggerEvent TriggerKind = iota
	// TriggerDelta fires on insertion into a materialized table.
	TriggerDelta
	// TriggerPeriodic fires on a node-local timer (the built-in
	// periodic@N(E, T) event).
	TriggerPeriodic
)

// Trigger describes a strand's triggering predicate.
type Trigger struct {
	Kind TriggerKind
	// Name is the predicate (or table) name that fires the strand.
	Name string
	// Period and Count apply to periodic triggers: the firing interval
	// in seconds and the number of firings (0 = forever).
	Period float64
	Count  int
	// FieldSlots maps each trigger tuple field to a variable slot
	// (-1 = don't bind). For aggregate delta strands only group-by
	// variables are bound; the table is rescanned by a JoinOp instead.
	FieldSlots []int
	// FieldConsts holds per-field constants the trigger tuple must
	// match (nil value = no constraint).
	FieldConsts []tuple.Value
}

// Op is one pipeline element following the trigger.
type Op interface {
	opNode()
}

// JoinOp probes a table: for each row matching the already-bound fields
// and constants it binds the free fields and continues the pipeline. Each
// JoinOp is one tracing stage.
type JoinOp struct {
	// Table is the probed table's name.
	Table string
	// Stage is the 1-based tracing stage index.
	Stage int
	// FieldSlots maps row fields to variable slots (-1 = ignore). A
	// slot already bound acts as an equality constraint; an unbound
	// slot is bound by the row (and unbound again on backtrack).
	FieldSlots []int
	// FieldConsts holds per-field constant constraints (nil = none).
	FieldConsts []tuple.Value
	// IndexPositions lists the 0-based field positions statically known
	// to be bound when the join runs (constants plus variables bound by
	// the trigger or earlier ops). Non-empty means the join probes a
	// secondary index over these positions instead of scanning — the
	// planner-created join indices of P2.
	IndexPositions []int
}

func (*JoinOp) opNode() {}

// CondOp filters bindings by a boolean expression (a selection element).
type CondOp struct{ Expr overlog.Expr }

func (*CondOp) opNode() {}

// AssignOp binds a fresh variable slot to the value of an expression.
type AssignOp struct {
	Slot int
	Expr overlog.Expr
}

func (*AssignOp) opNode() {}

// AggSpec describes the head aggregate of an aggregate rule.
type AggSpec struct {
	// Op is count, min, max, sum, or avg.
	Op string
	// Slot is the aggregated variable's slot; -1 for count<*>.
	Slot int
	// ArgIndex is the head-argument position holding the aggregate
	// (index into Head args including the location at 0).
	ArgIndex int
	// EmitZero: when true and the aggregate is count, an activation
	// producing no matches emits a single head with count 0 (possible
	// only when all group-by variables are bound by the trigger; the
	// snapshot rule sr9 depends on observing count 0).
	EmitZero bool
}

// Plan is the immutable, shareable compilation of one rule strand: the
// element pipeline, trigger shape, head template, and static analyses.
// A Plan carries no execution state, is never written after the planner
// returns it, and may therefore be shared by every node running the same
// program ("plan once, instantiate N times") — including nodes running
// concurrently under the parallel drivers, since concurrent readers of
// immutable data race with nobody.
type Plan struct {
	// RuleID is the rule label (possibly planner-generated).
	RuleID string
	// Source is the original rule text, exposed through the ruleTable
	// reflection table.
	Source string
	// Trigger fires the strand.
	Trigger Trigger
	// NumVars is the size of the binding frame.
	NumVars int
	// VarNames maps slots to variable names (diagnostics).
	VarNames []string
	// Ops is the element pipeline.
	Ops []Op
	// HeadName, HeadArgs build the head tuple; HeadArgs includes the
	// location expression at index 0.
	HeadName string
	HeadArgs []overlog.Expr
	// IsDelete marks delete rules.
	IsDelete bool
	// Agg is non-nil for aggregate rules.
	Agg *AggSpec
	// AggPlan is non-nil when the planner proved the aggregate eligible
	// for incremental maintenance (see planner's analyzeAggMaint).
	AggPlan *AggPlan
	// Footprint is the static read/write table footprint (see
	// footprint.go); the engine's intra-node scheduler consults it to
	// run non-conflicting strands of one fan-out concurrently.
	Footprint Footprint
	// Stages is the number of stateful (join) stages.
	Stages int
}

// Instantiate wraps the plan in a fresh per-node executable strand. The
// strand starts with empty scratch state; every per-node structure (the
// binding frame, probe/undo buffers, the cached lookup closure) is
// allocated lazily on first activation.
func (p *Plan) Instantiate(queryID string) *Strand {
	return &Strand{Plan: p, QueryID: queryID}
}

// Strand is one node's executable instance of a compiled rule strand:
// the shared immutable Plan plus the node-local mutable state (query
// tag and activation scratch). The embedded plan keeps every read of a
// compiled field (s.Ops, s.Trigger, …) on the strand itself.
type Strand struct {
	*Plan

	// QueryID names the installed query (program) this strand belongs
	// to. Every resource a query creates — strands, timers, taps — is
	// tagged with its QueryID so the engine can uninstall the query as a
	// unit and attribute CPU per query.
	QueryID string

	// Per-strand scratch buffers. Strands are node-local and each node
	// is single-threaded, so a buffer can be reused across activations;
	// the busy flags fall back to allocation on re-entrant activations
	// (a strand re-entered through a table-listener cascade).
	bindScratch  Binding
	bindBusy     bool
	bindLookup   overlog.Lookup
	probeScratch [][]tuple.Value
	probeBusy    []bool
	undoScratch  [][]int
	undoBusy     []bool
}

// AggPlan is the planner's incremental-maintenance analysis for an
// eligible aggregate strand: the aggregate over the full body product is
// trigger-independent, so a persistent per-group accumulator fed by the
// primary table's change listeners replaces the per-activation rescan.
type AggPlan struct {
	// Primary is the table joined by Ops[0]; its insert/delete/expiry
	// notifications maintain the accumulator in O(delta).
	Primary string
	// Secondaries are the other joined tables (deduplicated). Any
	// change to one invalidates the accumulator, which is rebuilt by a
	// single rescan on the next trigger.
	Secondaries []string
	// Filter lists (group index, trigger slot) pairs: at emission time
	// only groups whose group value at GroupIdx equals the trigger
	// binding's value at Slot are emitted — the maintained equivalent
	// of the rescan's trigger-bound join constraints.
	Filter []AggFilterPos
}

// AggFilterPos is one emission-time group filter position.
type AggFilterPos struct {
	// GroupIdx indexes the group values (head args minus the aggregate
	// position, in order).
	GroupIdx int
	// Slot is the trigger-bound variable slot the group value must
	// equal.
	Slot int
}

// String identifies the strand.
func (s *Strand) String() string {
	return fmt.Sprintf("strand(%s<-%s)", s.RuleID, s.Trigger.Name)
}

// Binding is a variable frame; tuple.Nil marks unbound slots. (OverLog
// values inside tuples are never nil: the parser has no nil literal in
// predicate arguments, so nil-as-unbound is unambiguous.)
type Binding []tuple.Value

// DisableIndexedJoins forces every join back to a full table scan. It
// exists solely for the ablation benchmark quantifying what P2's
// planner-created join indices buy (see bench.AblationIndexedJoins);
// production code never sets it. Not safe to flip while nodes run.
var DisableIndexedJoins bool

// Cost model constants, in seconds of simulated CPU per operation. These
// are the knobs DESIGN.md §4 describes: they stand in for the paper's
// OS-measured CPU utilization. Calibrated so a 21-node Chord network
// idles around 1% CPU per node, matching the paper's baseline.
const (
	CostTupleHandoff = 75e-6   // demux + queue + strand entry per tuple
	CostTimerFire    = 15e-6   // scheduler overhead of a private timer
	CostJoinSetup    = 40e-6   // per join invocation: index/iterator setup
	CostJoinProbe    = 17.5e-6 // per candidate row visited in a join
	CostEval         = 10e-6   // per condition/assignment evaluation
	CostHead         = 50e-6   // head construction + routing
	CostTableOp      = 62.5e-6 // table insert/delete
	CostWatch        = 62.5e-6 // delivering one watched tuple to the observer (calibrated like a table op)
	CostMarshal      = 50e-6   // marshal or unmarshal one tuple
	CostTraceTap     = 25e-6   // tracer tap + log-table bookkeeping (when tracing on)
	CostStatsPublish = 30e-6   // snapshotting the counters for one stats publication
	CostAggApply     = 20e-6   // incremental accumulator update for one table delta
	CostAggEmit      = 25e-6   // accumulator lookup + group filter per trigger
	CostStoreAppend  = 2e-6    // one record into the trace store's active segment
	CostStoreSeal    = 1e-6    // per record encoded when a segment seals (amortized)
)

// completion receives each fully bound pipeline result: nil means emit a
// head per binding; aggState folds bindings into per-activation groups;
// aggCollector (aggmaint.go) records contributions into the persistent
// accumulator.
type completion interface {
	complete(s *Strand, ctx Context, b Binding)
}

func (a *aggState) complete(s *Strand, ctx Context, b Binding) { s.accumulate(ctx, b, a) }

// acquireBinding returns a zeroed binding frame, reusing the strand's
// scratch frame when it is free. pooled reports whether the scratch was
// taken (the caller must clear bindBusy when done).
func (s *Strand) acquireBinding() (b Binding, pooled bool) {
	if s.bindBusy {
		return make(Binding, s.NumVars), false
	}
	if cap(s.bindScratch) < s.NumVars {
		s.bindScratch = make(Binding, s.NumVars)
		scratch := s.bindScratch
		s.bindLookup = scratch.lookup(s)
	}
	b = s.bindScratch[:s.NumVars]
	for i := range b {
		b[i] = tuple.Nil
	}
	s.bindBusy = true
	return b, true
}

// Run executes one activation of the strand for the triggering tuple.
// The caller (engine.Node) has already matched trig.Name.
func (s *Strand) Run(ctx Context, trig tuple.Tuple) {
	ctx.Bill(CostTupleHandoff)
	b, pooled := s.acquireBinding()
	s.run(ctx, trig, b)
	if pooled {
		s.bindBusy = false
	}
}

func (s *Strand) run(ctx Context, trig tuple.Tuple, b Binding) {
	if !bindFields(b, trig, s.Trigger.FieldSlots, s.Trigger.FieldConsts, nil) {
		return // trigger constants or self-unification failed
	}
	ctx.TraceInput(s, trig)

	var agg *aggState
	var am *AggMaint
	var zero []tuple.Value
	if s.Agg != nil {
		if s.AggPlan != nil && !DisableIncrementalAggs {
			am = ctx.AggState(s)
		}
		if am == nil {
			agg = newAggState(s)
		}
		if s.Agg.EmitZero {
			// Pre-evaluate the group-by values from the trigger
			// binding so an empty activation can emit count 0.
			lookup := s.lookupFor(b)
			zero = make([]tuple.Value, 0, len(s.HeadArgs)-1)
			for i, e := range s.HeadArgs {
				if i == s.Agg.ArgIndex {
					continue
				}
				v, err := overlog.Eval(e, lookup, ctx)
				if err != nil {
					ctx.RuleError(s.RuleID, err)
					return
				}
				zero = append(zero, v)
			}
			if agg != nil {
				agg.zeroGroup = zero
			}
		}
	}
	if am != nil {
		// Incremental path: no rescan; emit from the maintained
		// accumulator (O(groups), not O(rows)).
		am.runTrigger(ctx, b, zero)
	} else {
		var done completion
		if agg != nil {
			done = agg
		}
		s.exec(ctx, b, 0, done)
		// Aggregates emit before the completion signals: the output tap
		// must observe them while the tracer record is still associated.
		if agg != nil {
			s.flushAgg(ctx, agg)
		}
	}
	// Signal stage completions in pull order: the first stateful
	// element seeks a new input first, then each later stage drains and
	// seeks its own (§2.1.2). Ascending order advances the tracer
	// record's associated interval forward until it retires.
	for st := 1; st <= s.Stages; st++ {
		ctx.TraceStageDone(s, st)
	}
}

// acquireProbe returns the index-probe value buffer for op i, reusing
// per-op scratch when free (pooled reports scratch use; the caller must
// clear probeBusy[i] when done). Per-op buffers are required: a nested
// activation of the same strand from inside a probe callback must not
// clobber the slice MatchIndexed is still reading.
func (s *Strand) acquireProbe(i, n int) (vals []tuple.Value, pooled bool) {
	if s.probeScratch == nil {
		s.probeScratch = make([][]tuple.Value, len(s.Ops))
		s.probeBusy = make([]bool, len(s.Ops))
	}
	if s.probeBusy[i] {
		return make([]tuple.Value, n), false
	}
	if cap(s.probeScratch[i]) < n {
		s.probeScratch[i] = make([]tuple.Value, n)
	}
	s.probeBusy[i] = true
	return s.probeScratch[i][:n], true
}

// acquireUndo returns the backtracking undo buffer for op i (same
// pooling discipline as acquireProbe; pooled=false falls back to append
// allocation on re-entrant activations).
func (s *Strand) acquireUndo(i int) (undo []int, pooled bool) {
	if s.undoScratch == nil {
		s.undoScratch = make([][]int, len(s.Ops))
		s.undoBusy = make([]bool, len(s.Ops))
	}
	if s.undoBusy[i] {
		return nil, false
	}
	s.undoBusy[i] = true
	return s.undoScratch[i][:0], true
}

// exec runs ops[i:] under binding b, passing each completed binding to
// done (or emitting a head when done is nil).
func (s *Strand) exec(ctx Context, b Binding, i int, done completion) {
	if i == len(s.Ops) {
		if done != nil {
			done.complete(s, ctx, b)
			return
		}
		s.emit(ctx, b)
		return
	}
	switch op := s.Ops[i].(type) {
	case *JoinOp:
		tb := ctx.Table(op.Table)
		if tb == nil {
			ctx.RuleError(s.RuleID, fmt.Errorf("join against unmaterialized table %s", op.Table))
			return
		}
		ctx.Bill(CostJoinSetup)
		undo, undoPooled := s.acquireUndo(i)
		probe := func(row tuple.Tuple) {
			undo = undo[:0]
			if !bindFields(b, row, op.FieldSlots, op.FieldConsts, &undo) {
				unbind(b, undo)
				return
			}
			ctx.TracePrecond(s, op.Stage, row)
			s.exec(ctx, b, i+1, done)
			unbind(b, undo)
		}
		defer func() {
			if undoPooled {
				s.undoScratch[i] = undo[:0] // keep any growth
				s.undoBusy[i] = false
			}
		}()
		if len(op.IndexPositions) > 0 && !DisableIndexedJoins {
			values, pooled := s.acquireProbe(i, len(op.IndexPositions))
			ok := true
			for k, p := range op.IndexPositions {
				if c := op.FieldConsts[p]; !c.IsNil() {
					values[k] = c
					continue
				}
				v := b[op.FieldSlots[p]]
				if v.IsNil() {
					// A statically bound slot can be unbound at run
					// time when the pipeline runs without its trigger
					// binding (accumulator rebuilds); fall back to the
					// scan path below.
					ok = false
					break
				}
				values[k] = v
			}
			if ok {
				visited := tb.MatchIndexed(ctx.Now(), op.IndexPositions, values, probe)
				ctx.Bill(float64(visited) * CostJoinProbe)
				if pooled {
					s.probeBusy[i] = false
				}
				return
			}
			if pooled {
				s.probeBusy[i] = false
			}
		}
		// Unindexed fallback: bill per-probe cost the same way the
		// indexed path does — once for the visited count, after the
		// scan.
		visited := 0
		tb.Scan(ctx.Now(), func(row tuple.Tuple) {
			visited++
			probe(row)
		})
		ctx.Bill(float64(visited) * CostJoinProbe)
	case *CondOp:
		ctx.Bill(CostEval)
		v, err := overlog.Eval(op.Expr, s.lookupFor(b), ctx)
		if err != nil {
			ctx.RuleError(s.RuleID, err)
			return
		}
		if v.Truth() {
			s.exec(ctx, b, i+1, done)
		}
	case *AssignOp:
		ctx.Bill(CostEval)
		v, err := overlog.Eval(op.Expr, s.lookupFor(b), ctx)
		if err != nil {
			ctx.RuleError(s.RuleID, err)
			return
		}
		old := b[op.Slot]
		b[op.Slot] = v
		s.exec(ctx, b, i+1, done)
		b[op.Slot] = old
	}
}

// lookupFor returns the expression-evaluator view of b, reusing the
// closure cached alongside the pooled scratch frame (per-evaluation
// closure allocation is measurable on the join hot path).
func (s *Strand) lookupFor(b Binding) overlog.Lookup {
	if len(b) > 0 && len(s.bindScratch) > 0 && &b[0] == &s.bindScratch[0] {
		return s.bindLookup
	}
	return b.lookup(s)
}

// lookup adapts a binding to the expression evaluator.
func (b Binding) lookup(s *Strand) overlog.Lookup {
	return func(name string) (tuple.Value, bool) {
		for i, n := range s.VarNames {
			if n == name {
				v := b[i]
				return v, !v.IsNil()
			}
		}
		return tuple.Nil, false
	}
}

// bindFields unifies a tuple against per-field slots and constants. When
// undo is non-nil, newly bound slots are appended for backtracking. It
// returns false on a constant mismatch or disagreement with an existing
// binding.
func bindFields(b Binding, t tuple.Tuple, slots []int, consts []tuple.Value, undo *[]int) bool {
	n := len(slots)
	if len(t.Fields) != n {
		return false
	}
	for i := 0; i < n; i++ {
		if c := consts[i]; !c.IsNil() {
			if !t.Fields[i].Equal(c) {
				return false
			}
			continue
		}
		slot := slots[i]
		if slot < 0 {
			continue
		}
		if b[slot].IsNil() {
			b[slot] = t.Fields[i]
			if undo != nil {
				*undo = append(*undo, slot)
			}
			continue
		}
		if !b[slot].Equal(t.Fields[i]) {
			return false
		}
	}
	return true
}

func unbind(b Binding, undo []int) {
	for _, slot := range undo {
		b[slot] = tuple.Nil
	}
}

// emit builds and routes the head tuple for a completed binding.
func (s *Strand) emit(ctx Context, b Binding) {
	ctx.Bill(CostHead)
	fields := make([]tuple.Value, len(s.HeadArgs))
	lookup := s.lookupFor(b)
	for i, e := range s.HeadArgs {
		if s.IsDelete {
			// Delete heads allow unbound variables as wildcards.
			if v, ok := e.(*overlog.Var); ok {
				if val, bound := lookup(v.Name); bound {
					fields[i] = val
				} else {
					fields[i] = tuple.Nil
				}
				continue
			}
		}
		v, err := overlog.Eval(e, lookup, ctx)
		if err != nil {
			ctx.RuleError(s.RuleID, err)
			return
		}
		fields[i] = v
	}
	t := tuple.New(s.HeadName, fields...)
	ctx.EmitHead(s, t, s.IsDelete)
}

// aggState accumulates per-group aggregate values for one activation.
type aggState struct {
	groups    map[uint64]*aggGroup
	order     []uint64
	zeroGroup []tuple.Value // group values for the count-0 emission
}

type aggGroup struct {
	groupVals []tuple.Value // head args except the aggregate position
	count     int64
	minV      tuple.Value
	maxV      tuple.Value
	sum       float64
}

func newAggState(*Strand) *aggState {
	return &aggState{groups: make(map[uint64]*aggGroup)}
}

// evalGroup evaluates the group-by values (head args minus the aggregate
// position) for a completed binding, with their grouping key. ok=false
// means an evaluation error was reported and the binding is dropped.
func (s *Strand) evalGroup(ctx Context, b Binding) (groupVals []tuple.Value, key uint64, ok bool) {
	lookup := s.lookupFor(b)
	groupVals = make([]tuple.Value, 0, len(s.HeadArgs)-1)
	for i, e := range s.HeadArgs {
		if i == s.Agg.ArgIndex {
			continue
		}
		v, err := overlog.Eval(e, lookup, ctx)
		if err != nil {
			ctx.RuleError(s.RuleID, err)
			return nil, 0, false
		}
		groupVals = append(groupVals, v)
	}
	return groupVals, tuple.New("", groupVals...).Hash(), true
}

// accumulate folds one completed binding into its group.
func (s *Strand) accumulate(ctx Context, b Binding, agg *aggState) {
	ctx.Bill(CostEval)
	groupVals, key, ok := s.evalGroup(ctx, b)
	if !ok {
		return
	}
	g, ok := agg.groups[key]
	if !ok {
		g = &aggGroup{groupVals: groupVals}
		agg.groups[key] = g
		agg.order = append(agg.order, key)
	}
	g.count++
	var av tuple.Value
	if s.Agg.Slot >= 0 {
		av = b[s.Agg.Slot]
		if av.IsNil() {
			ctx.RuleError(s.RuleID, fmt.Errorf("aggregate variable unbound"))
			return
		}
	}
	switch s.Agg.Op {
	case "min":
		if g.minV.IsNil() || av.Compare(g.minV) < 0 {
			g.minV = av
		}
	case "max":
		if g.maxV.IsNil() || av.Compare(g.maxV) > 0 {
			g.maxV = av
		}
	case "sum", "avg":
		if !av.Numeric() {
			ctx.RuleError(s.RuleID, fmt.Errorf("sum/avg over non-numeric value"))
			return
		}
		g.sum += avFloat(av)
	}
}

func avFloat(v tuple.Value) float64 {
	switch v.Kind() {
	case tuple.KindInt:
		return float64(v.AsInt())
	case tuple.KindID:
		return float64(v.AsID())
	default:
		return v.AsFloat()
	}
}

// flushAgg emits one head tuple per group at the end of the activation.
func (s *Strand) flushAgg(ctx Context, agg *aggState) {
	if len(agg.order) == 0 && s.Agg.EmitZero && s.Agg.Op == "count" {
		// All group variables were bound by the trigger: emit count 0
		// for that single group (snapshot rule sr9 relies on this).
		s.emitAggGroup(ctx, agg.zeroGroup, tuple.Int(0))
		return
	}
	for _, key := range agg.order {
		g := agg.groups[key]
		var v tuple.Value
		switch s.Agg.Op {
		case "count":
			v = tuple.Int(g.count)
		case "min":
			v = g.minV
		case "max":
			v = g.maxV
		case "sum":
			v = tuple.Float(g.sum)
		case "avg":
			v = tuple.Float(g.sum / float64(g.count))
		}
		if v.IsNil() {
			continue
		}
		s.emitAggGroup(ctx, g.groupVals, v)
	}
}

// emitAggGroup reassembles the head tuple from group values plus the
// aggregate result.
func (s *Strand) emitAggGroup(ctx Context, groupVals []tuple.Value, av tuple.Value) {
	ctx.Bill(CostHead)
	fields := make([]tuple.Value, len(s.HeadArgs))
	j := 0
	for i := range s.HeadArgs {
		if i == s.Agg.ArgIndex {
			fields[i] = av
			continue
		}
		fields[i] = groupVals[j]
		j++
	}
	t := tuple.New(s.HeadName, fields...)
	ctx.EmitHead(s, t, s.IsDelete)
}
