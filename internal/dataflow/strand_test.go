package dataflow

import (
	"testing"

	"p2go/internal/overlog"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// fakeCtx is a minimal Context for exercising strands directly.
type fakeCtx struct {
	store  *table.Store
	heads  []tuple.Tuple
	dels   []tuple.Tuple
	errs   []error
	inputs []tuple.Tuple
	pres   []tuple.Tuple
	dones  []int
	now    float64
}

func (c *fakeCtx) Now() float64                   { return c.now }
func (c *fakeCtx) Rand64() uint64                 { return 4 }
func (c *fakeCtx) LocalAddr() string              { return "n1" }
func (c *fakeCtx) Table(name string) *table.Table { return c.store.Get(name) }
func (c *fakeCtx) Bill(float64)                   {}
func (c *fakeCtx) AggState(*Strand) *AggMaint     { return nil }
func (c *fakeCtx) EmitHead(s *Strand, t tuple.Tuple, isDelete bool) {
	if isDelete {
		c.dels = append(c.dels, t)
	} else {
		c.heads = append(c.heads, t)
	}
}
func (c *fakeCtx) TraceInput(s *Strand, t tuple.Tuple)              { c.inputs = append(c.inputs, t) }
func (c *fakeCtx) TracePrecond(s *Strand, stage int, t tuple.Tuple) { c.pres = append(c.pres, t) }
func (c *fakeCtx) TraceStageDone(s *Strand, stage int)              { c.dones = append(c.dones, stage) }
func (c *fakeCtx) RuleError(ruleID string, err error)               { c.errs = append(c.errs, err) }

// buildStrand compiles a single-strand rule with a hand-rolled pipeline.
func joinStrand() *Strand {
	// out@N(A, B) :- ev@N(A), tab@N(A, B), B != 0.
	return &Strand{Plan: &Plan{
		RuleID:  "r1",
		Trigger: Trigger{Kind: TriggerEvent, Name: "ev", FieldSlots: []int{0, 1}, FieldConsts: make([]tuple.Value, 2)},
		NumVars: 3, VarNames: []string{"N", "A", "B"},
		Ops: []Op{
			&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 2}, FieldConsts: make([]tuple.Value, 3)},
			&CondOp{Expr: &overlog.Binary{Op: "!=", L: &overlog.Var{Name: "B"}, R: &overlog.Lit{Val: tuple.Int(0)}}},
		},
		HeadName: "out",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Var{Name: "A"}, &overlog.Var{Name: "B"}},
		Stages:   1,
	}}
}

func newFakeCtx(t *testing.T) *fakeCtx {
	t.Helper()
	store := table.NewStore()
	_, err := store.Materialize(table.Spec{Name: "tab", Lifetime: table.Infinity,
		MaxSize: table.Infinity, Keys: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return &fakeCtx{store: store}
}

func TestStrandJoinAndSelect(t *testing.T) {
	ctx := newFakeCtx(t)
	tab := ctx.store.Get("tab")
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(1), tuple.Int(10)), 0) //nolint:errcheck
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(1), tuple.Int(0)), 0)  //nolint:errcheck
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(2), tuple.Int(99)), 0) //nolint:errcheck

	s := joinStrand()
	s.Run(ctx, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	// A=1 matches rows (1,10) and (1,0); the selection drops B==0.
	if len(ctx.heads) != 1 {
		t.Fatalf("heads = %v", ctx.heads)
	}
	if !ctx.heads[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(1), tuple.Int(10))) {
		t.Errorf("head = %v", ctx.heads[0])
	}
	// Taps: one input, two preconditions (both A=1 rows probed), one
	// stage-done.
	if len(ctx.inputs) != 1 || len(ctx.pres) != 2 {
		t.Errorf("taps: inputs=%d pres=%d", len(ctx.inputs), len(ctx.pres))
	}
	if len(ctx.dones) != 1 || ctx.dones[0] != 1 {
		t.Errorf("stage dones = %v", ctx.dones)
	}
	if len(ctx.errs) != 0 {
		t.Errorf("errors: %v", ctx.errs)
	}
}

func TestStrandTriggerConstMismatch(t *testing.T) {
	ctx := newFakeCtx(t)
	s := joinStrand()
	s.Trigger.FieldConsts[1] = tuple.Int(7)
	s.Run(ctx, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	if len(ctx.heads) != 0 || len(ctx.inputs) != 0 {
		t.Error("mismatched trigger constant must not activate the strand")
	}
}

func TestStrandSelfUnification(t *testing.T) {
	// Repeated variable within one predicate: tab@N(A, A).
	ctx := newFakeCtx(t)
	tab := ctx.store.Get("tab")
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(5), tuple.Int(5)), 0) //nolint:errcheck
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(5), tuple.Int(6)), 0) //nolint:errcheck
	s := &Strand{Plan: &Plan{
		RuleID:  "r2",
		Trigger: Trigger{Kind: TriggerEvent, Name: "ev", FieldSlots: []int{0}, FieldConsts: make([]tuple.Value, 1)},
		NumVars: 2, VarNames: []string{"N", "A"},
		Ops: []Op{
			// Both non-loc fields map to slot A: row must self-unify.
			&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 1}, FieldConsts: make([]tuple.Value, 3)},
		},
		HeadName: "out",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Var{Name: "A"}},
		Stages:   1,
	}}
	s.Run(ctx, tuple.New("ev", tuple.Str("n1")))
	if len(ctx.heads) != 1 || !ctx.heads[0].Field(1).Equal(tuple.Int(5)) {
		t.Errorf("heads = %v, want single (5) match", ctx.heads)
	}
}

func TestStrandBacktrackUnbinds(t *testing.T) {
	// Two rows bind B differently; both must flow through (binding
	// undone between rows).
	ctx := newFakeCtx(t)
	tab := ctx.store.Get("tab")
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(1), tuple.Int(10)), 0) //nolint:errcheck
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(1), tuple.Int(20)), 0) //nolint:errcheck
	s := joinStrand()
	s.Run(ctx, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	if len(ctx.heads) != 2 {
		t.Fatalf("heads = %v, want both rows", ctx.heads)
	}
}

func TestStrandMissingTableReportsError(t *testing.T) {
	ctx := newFakeCtx(t)
	s := joinStrand()
	s.Ops[0].(*JoinOp).Table = "nope"
	s.Run(ctx, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	if len(ctx.errs) != 1 {
		t.Errorf("errors = %v", ctx.errs)
	}
}

func TestStrandArityMismatchIgnored(t *testing.T) {
	ctx := newFakeCtx(t)
	s := joinStrand()
	// Trigger with wrong arity must not bind or crash.
	s.Run(ctx, tuple.New("ev", tuple.Str("n1")))
	if len(ctx.heads) != 0 {
		t.Errorf("heads = %v", ctx.heads)
	}
}

func TestDeleteHeadWildcard(t *testing.T) {
	ctx := newFakeCtx(t)
	s := &Strand{Plan: &Plan{
		RuleID:   "d1",
		Trigger:  Trigger{Kind: TriggerEvent, Name: "drop", FieldSlots: []int{0, 1}, FieldConsts: make([]tuple.Value, 2)},
		NumVars:  3,
		VarNames: []string{"N", "K", "V"},
		HeadName: "tab",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Var{Name: "K"}, &overlog.Var{Name: "V"}},
		IsDelete: true,
	}}
	s.Run(ctx, tuple.New("drop", tuple.Str("n1"), tuple.Int(3)))
	if len(ctx.dels) != 1 {
		t.Fatalf("dels = %v", ctx.dels)
	}
	if !ctx.dels[0].Field(2).IsNil() {
		t.Errorf("unbound V must become a wildcard, got %v", ctx.dels[0])
	}
}

func TestAggregateGrouping(t *testing.T) {
	// cluster@N(A, count<*>) :- probe@N(), tab@N(A, B).
	ctx := newFakeCtx(t)
	tab := ctx.store.Get("tab")
	for i, a := range []int64{1, 1, 2} {
		tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(a), tuple.Int(int64(i))), 0) //nolint:errcheck
	}
	s := &Strand{Plan: &Plan{
		RuleID:  "a1",
		Trigger: Trigger{Kind: TriggerEvent, Name: "probe", FieldSlots: []int{0}, FieldConsts: make([]tuple.Value, 1)},
		NumVars: 3, VarNames: []string{"N", "A", "B"},
		Ops: []Op{
			&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 2}, FieldConsts: make([]tuple.Value, 3)},
		},
		HeadName: "cluster",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Var{Name: "A"}, &overlog.Agg{Op: "count"}},
		Agg:      &AggSpec{Op: "count", Slot: -1, ArgIndex: 2},
		Stages:   1,
	}}
	s.Run(ctx, tuple.New("probe", tuple.Str("n1")))
	counts := map[int64]int64{}
	for _, h := range ctx.heads {
		counts[h.Field(1).AsInt()] = h.Field(2).AsInt()
	}
	if counts[1] != 2 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAggregateSumAvg(t *testing.T) {
	ctx := newFakeCtx(t)
	tab := ctx.store.Get("tab")
	for i, v := range []int64{2, 4, 6} {
		tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(int64(i)), tuple.Int(v)), 0) //nolint:errcheck
	}
	mk := func(op string) *Strand {
		return &Strand{Plan: &Plan{
			RuleID:  op,
			Trigger: Trigger{Kind: TriggerEvent, Name: "probe", FieldSlots: []int{0}, FieldConsts: make([]tuple.Value, 1)},
			NumVars: 3, VarNames: []string{"N", "K", "V"},
			Ops: []Op{
				&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 2}, FieldConsts: make([]tuple.Value, 3)},
			},
			HeadName: "out",
			HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Agg{Op: op, Var: "V"}},
			Agg:      &AggSpec{Op: op, Slot: 2, ArgIndex: 1},
			Stages:   1,
		}}
	}
	for op, want := range map[string]float64{"sum": 12, "avg": 4} {
		ctx.heads = nil
		mk(op).Run(ctx, tuple.New("probe", tuple.Str("n1")))
		if len(ctx.heads) != 1 || ctx.heads[0].Field(1).AsFloat() != want {
			t.Errorf("%s heads = %v, want %v", op, ctx.heads, want)
		}
	}
}
