package dataflow

import (
	"testing"

	"p2go/internal/overlog"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

func TestStrandString(t *testing.T) {
	s := joinStrand()
	if got := s.String(); got != "strand(r1<-ev)" {
		t.Errorf("String = %q", got)
	}
}

// TestIndexedJoinMatchesScanFallback: with IndexPositions set, the
// indexed path must produce the same matches as the scan path (also
// exercising the DisableIndexedJoins ablation switch).
func TestIndexedJoinMatchesScanFallback(t *testing.T) {
	build := func() (*fakeCtx, *Strand) {
		ctx := newFakeCtx(t)
		tab := ctx.store.Get("tab")
		for i := int64(0); i < 10; i++ {
			tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(i%3), tuple.Int(i)), 0) //nolint:errcheck
		}
		s := joinStrand()
		s.Ops = s.Ops[:1] // drop the condition; join only
		s.Ops[0].(*JoinOp).IndexPositions = []int{0, 1}
		return ctx, s
	}
	run := func(disable bool) []tuple.Tuple {
		DisableIndexedJoins = disable
		defer func() { DisableIndexedJoins = false }()
		ctx, s := build()
		s.Run(ctx, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
		return ctx.heads
	}
	indexed, scanned := run(false), run(true)
	if len(indexed) != len(scanned) || len(indexed) != 3 {
		t.Fatalf("indexed=%d scanned=%d, want 3 each", len(indexed), len(scanned))
	}
	// Join order is unspecified; compare as multisets.
	asSet := func(ts []tuple.Tuple) map[uint64]int {
		m := map[uint64]int{}
		for _, x := range ts {
			m[x.Hash()]++
		}
		return m
	}
	si, ss := asSet(indexed), asSet(scanned)
	for k, v := range si {
		if ss[k] != v {
			t.Errorf("multiset mismatch: %v vs %v", indexed, scanned)
			break
		}
	}
}

// TestMinMaxEmptyEmitsNothing: min/max over zero matches emit no head.
func TestMinMaxEmptyEmitsNothing(t *testing.T) {
	ctx := newFakeCtx(t)
	s := &Strand{Plan: &Plan{
		RuleID:  "m",
		Trigger: Trigger{Kind: TriggerEvent, Name: "probe", FieldSlots: []int{0}, FieldConsts: make([]tuple.Value, 1)},
		NumVars: 3, VarNames: []string{"N", "K", "V"},
		Ops: []Op{
			&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 2}, FieldConsts: make([]tuple.Value, 3)},
		},
		HeadName: "out",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Agg{Op: "min", Var: "V"}},
		Agg:      &AggSpec{Op: "min", Slot: 2, ArgIndex: 1},
		Stages:   1,
	}}
	s.Run(ctx, tuple.New("probe", tuple.Str("n1")))
	if len(ctx.heads) != 0 {
		t.Errorf("min over empty emitted %v", ctx.heads)
	}
}

// TestCountZeroEmission at the dataflow level (EmitZero set).
func TestCountZeroEmission(t *testing.T) {
	ctx := newFakeCtx(t)
	s := &Strand{Plan: &Plan{
		RuleID:  "c",
		Trigger: Trigger{Kind: TriggerEvent, Name: "probe", FieldSlots: []int{0, 1}, FieldConsts: make([]tuple.Value, 2)},
		NumVars: 3, VarNames: []string{"N", "G", "V"},
		Ops: []Op{
			&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 2}, FieldConsts: make([]tuple.Value, 3)},
		},
		HeadName: "out",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Var{Name: "G"}, &overlog.Agg{Op: "count"}},
		Agg:      &AggSpec{Op: "count", Slot: -1, ArgIndex: 2, EmitZero: true},
		Stages:   1,
	}}
	s.Run(ctx, tuple.New("probe", tuple.Str("n1"), tuple.Int(42)))
	if len(ctx.heads) != 1 {
		t.Fatalf("heads = %v", ctx.heads)
	}
	h := ctx.heads[0]
	if h.Field(1).AsInt() != 42 || h.Field(2).AsInt() != 0 {
		t.Errorf("zero-count head = %v", h)
	}
}

// TestCondAndAssignErrorsReported: evaluation failures surface as rule
// errors and drop the binding without aborting the activation.
func TestCondAndAssignErrorsReported(t *testing.T) {
	ctx := newFakeCtx(t)
	tab := ctx.store.Get("tab")
	tab.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(1), tuple.Int(2)), 0) //nolint:errcheck
	bad := &overlog.Binary{Op: "+", L: &overlog.Lit{Val: tuple.Bool(true)}, R: &overlog.Lit{Val: tuple.Int(1)}}
	s := joinStrand()
	s.Ops = []Op{
		s.Ops[0],
		&CondOp{Expr: bad},
	}
	s.Run(ctx, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	if len(ctx.errs) == 0 {
		t.Error("condition type error not reported")
	}
	ctx2 := newFakeCtx(t)
	ctx2.store.Get("tab").Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(1), tuple.Int(2)), 0) //nolint:errcheck
	s2 := joinStrand()
	s2.Ops = []Op{
		s2.Ops[0],
		&AssignOp{Slot: 2, Expr: bad},
	}
	s2.Run(ctx2, tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	if len(ctx2.errs) == 0 {
		t.Error("assignment type error not reported")
	}
}

// TestHeadEvalErrorReported: a head expression that cannot evaluate is a
// rule error, not a panic.
func TestHeadEvalErrorReported(t *testing.T) {
	ctx := newFakeCtx(t)
	s := &Strand{Plan: &Plan{
		RuleID:   "h",
		Trigger:  Trigger{Kind: TriggerEvent, Name: "ev", FieldSlots: []int{0}, FieldConsts: make([]tuple.Value, 1)},
		NumVars:  1,
		VarNames: []string{"N"},
		HeadName: "out",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"},
			&overlog.Binary{Op: "/", L: &overlog.Lit{Val: tuple.Int(1)}, R: &overlog.Lit{Val: tuple.Int(0)}}},
	}}
	s.Run(ctx, tuple.New("ev", tuple.Str("n1")))
	if len(ctx.errs) != 1 || len(ctx.heads) != 0 {
		t.Errorf("errs=%v heads=%v", ctx.errs, ctx.heads)
	}
}

var _ = table.Infinity
