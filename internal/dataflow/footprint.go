package dataflow

// Footprint is a strand's static read/write table footprint, computed
// by the planner when the strand is compiled. The engine's intra-node
// scheduler uses it to decide which strands of one fan-out (a single
// delta or event firing several strands) may run concurrently: two
// strands conflict iff their footprints share a table, because probing
// a table mutates table-local state (lazy index creation, expiry
// bookkeeping, scan scratch) even though declaratively it is a read.
//
// The footprint is conservative in the safe direction: a strand that
// touches anything the analysis cannot account for — an impure builtin
// whose value depends on execution order, or a planner-maintained
// aggregate accumulator — is marked Impure and pinned to sequential
// execution.
type Footprint struct {
	// Reads lists the tables probed by the strand's join elements,
	// sorted and deduplicated. For aggregate delta strands this
	// includes the rescanned trigger table itself.
	Reads []string
	// Write is the head predicate name: the table the strand inserts
	// into or deletes from (or the event it emits — conservatively
	// treated as a write either way, since materialization can change
	// over the node's life).
	Write string
	// Impure marks strands whose conditions, assignments or head
	// arguments call f_now, f_rand or f_randID: their results depend on
	// the node's micro-clock or RNG cursor, so they must observe the
	// exact sequential interleaving and never run speculatively.
	Impure bool
}

// Conflicts reports whether two footprints share any table (reads or
// writes on either side). Strands with intersecting footprints must run
// in strand order on the same worker.
func (f Footprint) Conflicts(g Footprint) bool {
	for _, a := range f.tables() {
		for _, b := range g.tables() {
			if a == b && a != "" {
				return true
			}
		}
	}
	return false
}

func (f Footprint) tables() []string {
	if f.Write == "" {
		return f.Reads
	}
	return append(append(make([]string, 0, len(f.Reads)+1), f.Reads...), f.Write)
}
