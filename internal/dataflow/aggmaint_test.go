package dataflow

import (
	"testing"

	"p2go/internal/overlog"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// aggCtx is a fakeCtx that can hand out a persistent accumulator, the
// way the engine does for maintainable strands.
type aggCtx struct {
	fakeCtx
	am          *AggMaint
	incremental bool
}

func (c *aggCtx) AggState(*Strand) *AggMaint {
	if c.incremental {
		return c.am
	}
	return nil
}

// countStrand hand-rolls the compiled form of
//
//	out@N(count<*>) :- tab@N(A, B).
//
// as a delta strand: the trigger binds only the group var N; Ops[0] is
// the rescan join of tab itself.
func countStrand() *Strand {
	s := &Strand{Plan: &Plan{
		RuleID:  "agg1",
		Trigger: Trigger{Kind: TriggerDelta, Name: "tab", FieldSlots: []int{0, -1, -1}, FieldConsts: make([]tuple.Value, 3)},
		NumVars: 3, VarNames: []string{"N", "A", "B"},
		Ops: []Op{
			&JoinOp{Table: "tab", Stage: 1, FieldSlots: []int{0, 1, 2}, FieldConsts: make([]tuple.Value, 3)},
		},
		HeadName: "out",
		HeadArgs: []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Agg{Op: "count"}},
		Agg:      &AggSpec{Op: "count", Slot: -1, ArgIndex: 1, EmitZero: true},
		AggPlan:  &AggPlan{Primary: "tab", Filter: []AggFilterPos{{GroupIdx: 0, Slot: 0}}},
		Stages:   1,
	}}
	return s
}

// minStrand: out@N(min<B>) :- tab@N(A, B).
func minStrand() *Strand {
	s := countStrand()
	s.HeadArgs = []overlog.Expr{&overlog.Var{Name: "N"}, &overlog.Agg{Op: "min", Var: "B"}}
	s.Agg = &AggSpec{Op: "min", Slot: 2, ArgIndex: 1}
	return s
}

func row(n string, a, b int64) tuple.Tuple {
	return tuple.New("tab", tuple.Str(n), tuple.Int(a), tuple.Int(b))
}

// runBoth triggers the strand in rescan then incremental mode and
// demands byte-identical emissions, returning them.
func runBoth(t *testing.T, ctx *aggCtx, s *Strand, trig tuple.Tuple) []tuple.Tuple {
	t.Helper()
	ctx.heads = nil
	ctx.incremental = false
	s.Run(ctx, trig)
	want := ctx.heads
	ctx.heads = nil
	ctx.incremental = true
	s.Run(ctx, trig)
	got := ctx.heads
	if len(got) != len(want) {
		t.Fatalf("incremental emitted %v, rescan %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("emission %d: incremental %v, rescan %v", i, got[i], want[i])
		}
	}
	return got
}

func newAggCtx(t *testing.T, s *Strand, lifetime float64) (*aggCtx, *table.Table) {
	t.Helper()
	// These tests exercise the incremental machinery itself; pin the
	// kill switch off so they stay meaningful under the CI job that
	// sets P2GO_DISABLE_INCREMENTAL_AGGS for the rest of the suite.
	prev := DisableIncrementalAggs
	DisableIncrementalAggs = false
	t.Cleanup(func() { DisableIncrementalAggs = prev })
	store := table.NewStore()
	tb, err := store.Materialize(table.Spec{Name: "tab", Lifetime: lifetime,
		MaxSize: table.Infinity, Keys: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &aggCtx{fakeCtx: fakeCtx{store: store}, am: NewAggMaint(s)}
	// The engine's listener wiring, minus billing.
	tb.Subscribe(func(op table.Op, tu tuple.Tuple) { ctx.am.Apply(ctx, op, tu) })
	return ctx, tb
}

func TestAggMaintCountInsertDelete(t *testing.T) {
	s := countStrand()
	ctx, tb := newAggCtx(t, s, table.Infinity)
	trig := row("n1", 0, 0)

	// Empty table: EmitZero path.
	got := runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(0))) {
		t.Fatalf("empty-table emission = %v", got)
	}

	tb.Insert(row("n1", 1, 10), 0) //nolint:errcheck
	tb.Insert(row("n1", 2, 20), 0) //nolint:errcheck
	tb.Insert(row("n2", 3, 30), 0) //nolint:errcheck
	got = runBoth(t, ctx, s, trig)
	// The trigger binds N=n1: only n1's group passes the filter.
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(2))) {
		t.Fatalf("count = %v", got)
	}

	// Incremental updates after the rebuild: insert and key-delete.
	tb.Insert(row("n1", 4, 40), 0) //nolint:errcheck
	tb.Delete(row("n1", 1, 10), 0) //nolint:errcheck
	got = runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(2))) {
		t.Fatalf("count after churn = %v", got)
	}

	// Other group via its own trigger binding.
	got = runBoth(t, ctx, s, row("n2", 0, 0))
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n2"), tuple.Int(1))) {
		t.Fatalf("n2 count = %v", got)
	}
}

func TestAggMaintMinDeletionExact(t *testing.T) {
	s := minStrand()
	ctx, tb := newAggCtx(t, s, table.Infinity)
	trig := row("n1", 0, 0)

	tb.Insert(row("n1", 1, 30), 0) //nolint:errcheck
	tb.Insert(row("n1", 2, 10), 0) //nolint:errcheck
	tb.Insert(row("n1", 3, 20), 0) //nolint:errcheck
	got := runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(10))) {
		t.Fatalf("min = %v", got)
	}

	// Deleting the current minimum must resurface the next one — the
	// case an add-subtract accumulator cannot handle.
	tb.Delete(row("n1", 2, 10), 0) //nolint:errcheck
	got = runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(20))) {
		t.Fatalf("min after extremum deletion = %v", got)
	}

	// Empty group: min emits nothing in either mode.
	tb.Delete(row("n1", 1, 30), 0) //nolint:errcheck
	tb.Delete(row("n1", 3, 20), 0) //nolint:errcheck
	got = runBoth(t, ctx, s, trig)
	if len(got) != 0 {
		t.Fatalf("empty min emission = %v", got)
	}
}

func TestAggMaintTTLExpiry(t *testing.T) {
	s := countStrand()
	ctx, tb := newAggCtx(t, s, 10) // 10s lifetime
	trig := row("n1", 0, 0)

	tb.Insert(row("n1", 1, 10), 0) //nolint:errcheck
	tb.Insert(row("n1", 2, 20), 5) //nolint:errcheck
	got := runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(2))) {
		t.Fatalf("count = %v", got)
	}

	// At t=12 the first row has expired; runTrigger's Expire call must
	// stream the expiry through the listener into the accumulator.
	ctx.now = 12
	got = runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(1))) {
		t.Fatalf("count after expiry = %v", got)
	}

	// All rows gone: count 0 via EmitZero.
	ctx.now = 20
	got = runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(0))) {
		t.Fatalf("count after full expiry = %v", got)
	}
}

func TestAggMaintClearInvalidates(t *testing.T) {
	s := countStrand()
	ctx, tb := newAggCtx(t, s, table.Infinity)
	trig := row("n1", 0, 0)

	tb.Insert(row("n1", 1, 10), 0) //nolint:errcheck
	runBoth(t, ctx, s, trig)
	if !ctx.am.Valid() {
		t.Fatal("accumulator must be valid after a trigger")
	}
	tb.Clear()
	if ctx.am.Valid() {
		t.Fatal("bulk clear must invalidate the accumulator")
	}
	tb.Insert(row("n1", 5, 50), 0) //nolint:errcheck
	got := runBoth(t, ctx, s, trig)
	if len(got) != 1 || !got[0].Equal(tuple.New("out", tuple.Str("n1"), tuple.Int(1))) {
		t.Fatalf("count after clear+rebuild = %v", got)
	}
}

// nullCtx is an allocation-free Context for the activation benchmarks.
type nullCtx struct {
	store *table.Store
	heads int
}

func (c *nullCtx) Now() float64                        { return 0 }
func (c *nullCtx) Rand64() uint64                      { return 4 }
func (c *nullCtx) LocalAddr() string                   { return "n1" }
func (c *nullCtx) Table(name string) *table.Table      { return c.store.Get(name) }
func (c *nullCtx) Bill(float64)                        {}
func (c *nullCtx) AggState(*Strand) *AggMaint          { return nil }
func (c *nullCtx) EmitHead(*Strand, tuple.Tuple, bool) { c.heads++ }
func (c *nullCtx) TraceInput(*Strand, tuple.Tuple)     {}
func (c *nullCtx) TracePrecond(*Strand, int, tuple.Tuple) {
}
func (c *nullCtx) TraceStageDone(*Strand, int) {}
func (c *nullCtx) RuleError(ruleID string, err error) {
	panic(err)
}

func benchSetup(b testing.TB, indexed bool) (*nullCtx, *Strand, tuple.Tuple) {
	b.Helper()
	store := table.NewStore()
	tb, err := store.Materialize(table.Spec{Name: "tab", Lifetime: table.Infinity,
		MaxSize: table.Infinity, Keys: []int{1, 2, 3}})
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		tb.Insert(tuple.New("tab", tuple.Str("n1"), tuple.Int(i%8), tuple.Int(i)), 0) //nolint:errcheck
	}
	s := joinStrand()
	s.Ops[1] = &CondOp{Expr: &overlog.Binary{Op: "<", L: &overlog.Var{Name: "B"}, R: &overlog.Lit{Val: tuple.Int(0)}}}
	op := s.Ops[0].(*JoinOp)
	if indexed {
		op.IndexPositions = []int{0, 1}
		tb.EnsureIndex(op.IndexPositions)
	}
	return &nullCtx{store: store}, s, tuple.New("ev", tuple.Str("n1"), tuple.Int(3))
}

// The activation path itself must not allocate: the binding frame and
// the index-probe slice come from strand-owned scratch (the per-trigger
// make(Binding) and make([]tuple.Value) this PR removed).
func TestStrandActivationAllocs(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		ctx, s, trig := benchSetup(t, indexed)
		s.Run(ctx, trig) // warm up scratch buffers
		allocs := testing.AllocsPerRun(100, func() { s.Run(ctx, trig) })
		if allocs != 0 {
			t.Errorf("indexed=%v: %v allocs per activation, want 0", indexed, allocs)
		}
	}
}

func BenchmarkStrandActivationScan(b *testing.B) {
	ctx, s, trig := benchSetup(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(ctx, trig)
	}
}

func BenchmarkStrandActivationIndexed(b *testing.B) {
	ctx, s, trig := benchSetup(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(ctx, trig)
	}
}
