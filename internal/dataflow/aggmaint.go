// Incremental aggregate maintenance. An eligible aggregate strand (see
// the planner's analyzeAggMaint) does not rescan its backing table on
// every trigger: the engine keeps one persistent AggMaint per strand,
// updated in O(delta) from the primary table's insert/delete/expiry
// listeners, and the trigger merely filters and emits the maintained
// groups. Emission content and order are bit-identical to the rescan
// path: contributions are kept in the primary table's scan (insertion)
// order, min/max use a per-group ordered multiset so deletions and
// soft-state expiry are exact, and sum/avg re-fold in scan order after
// any deletion so float rounding matches a fresh rescan.
package dataflow

import (
	"fmt"
	"os"
	"sort"

	"p2go/internal/table"
	"p2go/internal/tuple"
)

// DisableIncrementalAggs forces every aggregate strand back to the
// per-activation rescan path, mirroring DisableIndexedJoins. It exists
// for the ablation benchmark quantifying what incremental maintenance
// buys (bench -exp agg) and for the CI job that keeps the rescan path
// green; production code never sets it. Not safe to flip while nodes
// run. The environment variable P2GO_DISABLE_INCREMENTAL_AGGS sets it at
// process start (used by CI).
var DisableIncrementalAggs bool

func init() {
	if os.Getenv("P2GO_DISABLE_INCREMENTAL_AGGS") != "" {
		DisableIncrementalAggs = true
	}
}

// contrib is one pipeline completion contributed by a primary-table row:
// seq orders rows by arrival (matching the table's scan order), ord
// orders the completions within one row's join expansion. val is the
// aggregated value (Nil for count<*> and for completions whose value was
// dropped by a RuleError, which still count toward count/avg support
// exactly as the rescan path counts them).
type contrib struct {
	seq uint64
	ord int
	val tuple.Value
}

// maintGroup is the maintained state of one aggregation group.
type maintGroup struct {
	// vals are the group-by values (head args minus the aggregate).
	vals []tuple.Value
	// recs holds contributions in (seq, ord) order — the rescan's
	// first-encounter order. Appends are O(1): seqs are monotonic.
	recs []contrib
	// byVal (min/max only) keeps non-nil contributions ordered by
	// (value, seq, ord), so the extremum with the rescan's
	// first-encountered tie-break is O(1) to read and O(log n) to find
	// on insert/delete.
	byVal []contrib
	// sum caches the left-fold of the numeric contributions in recs
	// order (sum/avg only). Deletions clear sumOK instead of
	// subtracting — float subtraction is not an exact inverse — and the
	// next emission re-folds in recs order, reproducing the rescan's
	// rounding exactly.
	sum   float64
	sumOK bool
}

// aggRow remembers what one live primary row contributed, so a delete or
// expiry notification can retract it without recomputing the pipeline
// against already-changed state.
type aggRow struct {
	t      tuple.Tuple
	seq    uint64
	groups []uint64 // group keys in contribution order (may repeat)
}

// AggMaint is the persistent per-strand accumulator. The engine creates
// one per maintainable strand, feeds it from table listeners, and drops
// it (unsubscribing the listeners) when the strand's query uninstalls.
type AggMaint struct {
	s     *Strand
	valid bool
	// rebuilding/poisoned guard the rebuild scan against re-entrant
	// deletions delivered for rows the scan has not reached yet.
	rebuilding bool
	poisoned   bool
	nextSeq    uint64
	groups     map[uint64]*maintGroup
	rows       map[uint64][]aggRow // primary-row content hash -> entries
}

// NewAggMaint creates an (invalid, empty) accumulator for s; the first
// trigger rebuilds it with a single rescan. s.AggPlan must be non-nil.
func NewAggMaint(s *Strand) *AggMaint {
	return &AggMaint{s: s}
}

// Valid reports whether the accumulator currently mirrors the tables.
func (am *AggMaint) Valid() bool { return am.valid }

// Invalidate discards the maintained state; the next trigger rebuilds it
// by rescanning the primary table. Secondary-table changes and bulk
// clears (crash amnesia) land here.
func (am *AggMaint) Invalidate() {
	am.valid = false
	am.groups = nil
	am.rows = nil
}

func (am *AggMaint) reset() {
	am.groups = make(map[uint64]*maintGroup)
	am.rows = make(map[uint64][]aggRow)
}

// Apply folds one primary-table change into the accumulator. OpClear
// invalidates; insert/delete maintain incrementally. No-op while the
// accumulator is invalid (the next trigger rescans anyway).
func (am *AggMaint) Apply(ctx Context, op table.Op, t tuple.Tuple) {
	if op == table.OpClear {
		am.Invalidate()
		return
	}
	if !am.valid && !am.rebuilding {
		return
	}
	switch op {
	case table.OpInsert:
		am.applyInsert(ctx, t)
	case table.OpDelete:
		am.applyDelete(t)
	}
}

// aggCollector receives pipeline completions during applyInsert and the
// rebuild scan, recording each as a contribution of row seq.
type aggCollector struct {
	am   *AggMaint
	seq  uint64
	keys []uint64
}

func (c *aggCollector) complete(s *Strand, ctx Context, b Binding) {
	ctx.Bill(CostEval) // parity with the rescan path's accumulate
	groupVals, key, ok := s.evalGroup(ctx, b)
	if !ok {
		return
	}
	am := c.am
	g := am.groups[key]
	if g == nil {
		g = &maintGroup{vals: groupVals, sumOK: true}
		am.groups[key] = g
	}
	rec := contrib{seq: c.seq, ord: len(c.keys)}
	c.keys = append(c.keys, key)
	av := tuple.Nil
	if s.Agg.Slot >= 0 {
		av = b[s.Agg.Slot]
		if av.IsNil() {
			// Mirror accumulate: the completion still counts toward the
			// group's support but contributes no value.
			ctx.RuleError(s.RuleID, fmt.Errorf("aggregate variable unbound"))
		}
	}
	switch s.Agg.Op {
	case "min", "max":
		rec.val = av
		if !av.IsNil() {
			g.byValInsert(rec)
		}
	case "sum", "avg":
		if !av.IsNil() && !av.Numeric() {
			ctx.RuleError(s.RuleID, fmt.Errorf("sum/avg over non-numeric value"))
			av = tuple.Nil
		}
		rec.val = av
		if !av.IsNil() && g.sumOK {
			g.sum += avFloat(av)
		}
	}
	g.recs = append(g.recs, rec)
}

// applyInsert runs the pipeline for one new primary row (ops[1:], the
// secondary joins/selections/assignments) and records its contributions.
func (am *AggMaint) applyInsert(ctx Context, t tuple.Tuple) {
	s := am.s
	op0 := s.Ops[0].(*JoinOp)
	b, pooled := s.acquireBinding()
	if bindFields(b, t, op0.FieldSlots, op0.FieldConsts, nil) {
		am.nextSeq++
		col := &aggCollector{am: am, seq: am.nextSeq}
		s.exec(ctx, b, 1, col)
		if len(col.keys) > 0 {
			h := t.Hash()
			am.rows[h] = append(am.rows[h], aggRow{t: t, seq: col.seq, groups: col.keys})
		}
	}
	if pooled {
		s.bindBusy = false
	}
}

// applyDelete retracts every contribution of a removed primary row.
func (am *AggMaint) applyDelete(t tuple.Tuple) {
	h := t.Hash()
	rows := am.rows[h]
	idx := -1
	for i := range rows {
		if rows[i].t.Equal(t) {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Either the row contributed nothing, or it died while the
		// rebuild scan had not reached it yet (re-entrant expiry): the
		// scan snapshot will still deliver it, so the rebuild must be
		// redone.
		if am.rebuilding {
			am.poisoned = true
		}
		return
	}
	r := rows[idx]
	am.rows[h] = append(rows[:idx:idx], rows[idx+1:]...)
	if len(am.rows[h]) == 0 {
		delete(am.rows, h)
	}
	for _, key := range r.groups {
		g := am.groups[key]
		if g == nil {
			continue // earlier iteration already emptied it
		}
		g.removeSeq(r.seq, am.s.Agg.Op)
		if len(g.recs) == 0 {
			delete(am.groups, key)
		}
	}
}

func contribLess(a, b contrib) bool {
	if c := a.val.Compare(b.val); c != 0 {
		return c < 0
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.ord < b.ord
}

func (g *maintGroup) byValInsert(rec contrib) {
	i := sort.Search(len(g.byVal), func(i int) bool { return contribLess(rec, g.byVal[i]) })
	g.byVal = append(g.byVal, contrib{})
	copy(g.byVal[i+1:], g.byVal[i:])
	g.byVal[i] = rec
}

func (g *maintGroup) byValRemove(rec contrib) {
	i := sort.Search(len(g.byVal), func(i int) bool { return !contribLess(g.byVal[i], rec) })
	for ; i < len(g.byVal); i++ {
		if g.byVal[i].seq == rec.seq && g.byVal[i].ord == rec.ord {
			g.byVal = append(g.byVal[:i], g.byVal[i+1:]...)
			return
		}
	}
}

// removeSeq retracts the contiguous block of contributions with the
// given row seq.
func (g *maintGroup) removeSeq(seq uint64, aggOp string) {
	lo := sort.Search(len(g.recs), func(i int) bool { return g.recs[i].seq >= seq })
	hi := lo
	for hi < len(g.recs) && g.recs[hi].seq == seq {
		rec := g.recs[hi]
		switch aggOp {
		case "min", "max":
			if !rec.val.IsNil() {
				g.byValRemove(rec)
			}
		case "sum", "avg":
			if !rec.val.IsNil() {
				g.sumOK = false
			}
		}
		hi++
	}
	g.recs = append(g.recs[:lo], g.recs[hi:]...)
}

func (g *maintGroup) refold() {
	g.sum = 0
	for _, r := range g.recs {
		if !r.val.IsNil() {
			g.sum += avFloat(r.val)
		}
	}
	g.sumOK = true
}

// runTrigger is the maintained replacement for the rescan: discover TTL
// expiry at the trigger instant (streamed into the accumulator by the
// listeners), rebuild by a single rescan if invalidated, then filter and
// emit the maintained groups. Called from Strand.run with the trigger
// binding b and the pre-evaluated EmitZero group (nil otherwise).
func (am *AggMaint) runTrigger(ctx Context, b Binding, zero []tuple.Value) {
	s := am.s
	ctx.Bill(CostAggEmit)
	primary := ctx.Table(s.AggPlan.Primary)
	if primary == nil {
		// Matches the rescan path's behaviour when the table is gone.
		ctx.RuleError(s.RuleID, fmt.Errorf("join against unmaterialized table %s", s.AggPlan.Primary))
		return
	}
	primary.Expire(ctx.Now())
	for _, name := range s.AggPlan.Secondaries {
		if tb := ctx.Table(name); tb != nil {
			tb.Expire(ctx.Now())
		}
	}
	if !am.valid {
		am.rebuild(ctx, primary)
	}
	if !am.valid {
		// Pathological churn kept invalidating the rebuild: fall back
		// to a plain rescan for this activation.
		agg := newAggState(s)
		agg.zeroGroup = zero
		s.exec(ctx, b, 0, agg)
		s.flushAgg(ctx, agg)
		return
	}
	am.emitGroups(ctx, b, zero)
}

// rebuild reconstructs the accumulator with one rescan of the primary
// table, processing rows in scan order exactly as if each were a fresh
// insert. Re-entrant invalidation or deletion during the scan retries;
// after a few failed attempts the accumulator stays invalid and the
// trigger falls back to a rescan.
func (am *AggMaint) rebuild(ctx Context, primary *table.Table) {
	for attempt := 0; attempt < 3; attempt++ {
		am.reset()
		am.valid = true
		am.rebuilding = true
		am.poisoned = false
		ctx.Bill(CostJoinSetup)
		visited := 0
		primary.Scan(ctx.Now(), func(row tuple.Tuple) {
			visited++
			am.applyInsert(ctx, row)
		})
		ctx.Bill(float64(visited) * CostJoinProbe)
		am.rebuilding = false
		if am.valid && !am.poisoned {
			return
		}
	}
	am.Invalidate()
}

// passes applies the emission-time group filter against the trigger
// binding (the maintained equivalent of the rescan's trigger-bound join
// constraints).
func (am *AggMaint) passes(g *maintGroup, b Binding) bool {
	for _, f := range am.s.AggPlan.Filter {
		if !g.vals[f.GroupIdx].Equal(b[f.Slot]) {
			return false
		}
	}
	return true
}

// valueOf computes the group's aggregate value (Nil = nothing to emit,
// matching flushAgg's skip).
func (am *AggMaint) valueOf(g *maintGroup) tuple.Value {
	switch am.s.Agg.Op {
	case "count":
		return tuple.Int(int64(len(g.recs)))
	case "min":
		if len(g.byVal) == 0 {
			return tuple.Nil
		}
		return g.byVal[0].val
	case "max":
		if len(g.byVal) == 0 {
			return tuple.Nil
		}
		top := g.byVal[len(g.byVal)-1]
		// First-encountered among the maximal value block, matching the
		// rescan's strict-improvement update.
		i := sort.Search(len(g.byVal), func(i int) bool { return g.byVal[i].val.Compare(top.val) >= 0 })
		return g.byVal[i].val
	case "sum":
		if !g.sumOK {
			g.refold()
		}
		return tuple.Float(g.sum)
	case "avg":
		if !g.sumOK {
			g.refold()
		}
		return tuple.Float(g.sum / float64(len(g.recs)))
	}
	return tuple.Nil
}

// emitGroups emits the groups passing the trigger filter in the rescan's
// first-encounter order (ascending first live contribution).
func (am *AggMaint) emitGroups(ctx Context, b Binding, zero []tuple.Value) {
	s := am.s
	var sel []*maintGroup
	for _, g := range am.groups {
		if am.passes(g, b) {
			sel = append(sel, g)
		}
	}
	if len(sel) == 0 {
		if s.Agg.EmitZero && s.Agg.Op == "count" {
			s.emitAggGroup(ctx, zero, tuple.Int(0))
		}
		return
	}
	sort.Slice(sel, func(i, j int) bool {
		a, b := sel[i].recs[0], sel[j].recs[0]
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.ord < b.ord
	})
	for _, g := range sel {
		v := am.valueOf(g)
		if v.IsNil() {
			continue
		}
		s.emitAggGroup(ctx, g.vals, v)
	}
}
