package monitor

import (
	"testing"

	"p2go/internal/chord"
	"p2go/internal/faults"
	"p2go/internal/overlog"
)

// ringDetectors deploys the full §3.1.1 ring checker suite (active
// rp1-rp3/rs1-rs3 probes and the passive rp4 check).
func ringDetectors(tProbe float64) []*overlog.Program {
	return []*overlog.Program{RingProbeProgram(tProbe), RingPassiveProgram()}
}

// ringAlarms are the watched predicates those checkers raise.
var ringAlarms = []string{"inconsistentPred", "inconsistentSucc"}

// TestChurnDetection is the §3.1 true-positive experiment: on a churned
// ring (three crashes, later rejoins) the deployed ring detectors stay
// silent while the ring is healthy, fire within bounded virtual time of
// the crash, and fall silent again once the ring has repaired.
func TestChurnDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("11-node 540s churn run")
	}
	// End=480 leaves room for the full post-rejoin reconciliation: with
	// three nodes rejoining at once the ring takes a secondary
	// stabilization burst ~2 min after the rejoin before going quiet
	// for good.
	_, res, err := chord.RunChurn(chord.ChurnConfig{
		N: 11, Converge: 240, End: 480,
		Detectors:  ringDetectors(5),
		AlarmNames: ringAlarms,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PreAlarms != 0 {
		t.Errorf("healthy converged ring raised %d alarms before the crash", res.PreAlarms)
	}
	if res.Detection < 0 {
		t.Fatal("detectors never fired after the crash")
	}
	if res.Detection > 60 {
		t.Errorf("detection latency %.1fs exceeds the 60s bound", res.Detection)
	}
	if res.Alarms == 0 {
		t.Error("no alarms counted over the churn window")
	}
	if res.QuietAlarms != 0 {
		t.Errorf("detectors did not re-silence: %d alarms in the final quiet window (last at t=%.0fs)",
			res.QuietAlarms, res.LastAlarm)
	}
	if res.SurvivorRepair < 0 || res.RejoinRepair < 0 {
		t.Errorf("ring did not repair: %+v", res)
	}
}

// TestPartitionDetection: isolating one node behind a partition (no
// crash — the node keeps running) corrupts the ring as seen by the
// detectors; alarms arrive within bounded time of the cut and stop
// after the heal and re-stabilization.
func TestPartitionDetection(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 13,
		ExtraPrograms: ringDetectors(5)})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	base := r.Sim.Now()
	victim := "n4"
	var ev faults.Event
	ev = faults.Event{At: base + 10, Kind: faults.Partition, Duration: 60}
	for _, a := range r.Addrs {
		if a != victim {
			ev.Links = append(ev.Links, [2]string{victim, a})
		}
	}
	if _, err := faults.Arm(r.Net, faults.Scenario{Name: "isolate", Events: []faults.Event{ev}}); err != nil {
		t.Fatal(err)
	}
	r.Run(180)

	cut := base + 10
	first, last := -1.0, -1.0
	for _, w := range r.Watched {
		if w.T.Name != "inconsistentPred" && w.T.Name != "inconsistentSucc" {
			continue
		}
		if w.At < base {
			continue
		}
		if w.At < cut {
			t.Fatalf("alarm before the partition at t=%.1f: %v", w.At, w.T)
		}
		if first < 0 {
			first = w.At
		}
		last = w.At
	}
	if first < 0 {
		t.Fatal("detectors never fired on the partitioned ring")
	}
	if first-cut > 60 {
		t.Errorf("detection latency %.1fs exceeds the 60s bound", first-cut)
	}
	if quiet := base + 120; last > quiet {
		t.Errorf("detectors still firing at t=%.1f, want silence after t=%.1f", last, quiet)
	}
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Errorf("ring did not re-converge after the heal: %v", bad)
	}
}

// TestOscillationDetectsInjectedCrash: the §3.1.3 oscillation detectors
// produce true positives when the fault injector crashes a neighbor of
// a buggy (guard-less) Chord node — same signal as the hand-driven
// crash in TestOscillationOnBuggyChord, but through the scenario
// machinery end to end.
func TestOscillationDetectsInjectedCrash(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 13, Buggy: true,
		ExtraPrograms: []*overlog.Program{OscillationProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	base := r.Sim.Now()
	sc := faults.MustParse("scenario kill-n5\nat 5 crash n5").Shift(base)
	inj, err := faults.Arm(r.Net, sc)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(120)
	first := -1.0
	for _, w := range r.Watched {
		if w.T.Name == "oscill" && w.T.Field(1).AsStr() == "n5" && first < 0 {
			first = w.At
		}
	}
	if first < 0 {
		t.Fatal("no oscillations observed for the injected crash on buggy Chord")
	}
	if lat := first - (base + 5); lat > 120 {
		t.Errorf("oscillation detection latency %.1fs out of bounds", lat)
	}
	if st := inj.Stats(); st.Crashes != 1 {
		t.Errorf("injector stats = %+v", st)
	}
}
