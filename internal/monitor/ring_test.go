package monitor

import (
	"fmt"
	"sort"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/overlog"
	"p2go/internal/simnet"
	"p2go/internal/tuple"
)

// synthNet builds a small network of plain engine nodes (no Chord) all
// running the given programs — used to test detectors against hand-built
// deterministic state.
type synthNet struct {
	t       *testing.T
	sim     *simnet.Sim
	net     *simnet.Network
	watched []chord.WatchedTuple
	errs    []string
}

func newSynthNet(t *testing.T, programs []string, addrs ...string) *synthNet {
	t.Helper()
	s := &synthNet{t: t, sim: simnet.NewSim()}
	s.net = simnet.NewNetwork(s.sim, simnet.Config{
		Seed: 7,
		OnWatch: func(now float64, node string, tp tuple.Tuple) {
			s.watched = append(s.watched, chord.WatchedTuple{At: now, Node: node, T: tp})
		},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			s.errs = append(s.errs, fmt.Sprintf("%s/%s: %v", node, ruleID, err))
		},
	})
	for _, a := range addrs {
		n, err := s.net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range programs {
			prog, err := overlog.Parse(p)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := n.InstallProgram(prog); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
	}
	return s
}

func (s *synthNet) inject(addr string, tp tuple.Tuple) {
	s.t.Helper()
	if err := s.net.Inject(addr, tp); err != nil {
		s.t.Fatal(err)
	}
}

func (s *synthNet) count(name string) int {
	n := 0
	for _, w := range s.watched {
		if w.T.Name == name {
			n++
		}
	}
	return n
}

func (s *synthNet) noErrors() {
	s.t.Helper()
	if len(s.errs) > 0 {
		s.t.Fatalf("rule errors: %v", s.errs)
	}
}

// ringTables declares the Chord state the detectors join against, for
// synthetic fixtures.
const ringTables = `
materialize(node, infinity, 1, keys(1)).
materialize(bestSucc, infinity, 1, keys(1)).
materialize(pred, infinity, 1, keys(1)).
`

// seedRing materializes a synthetic ring: each addrs[i] gets
// bestSucc -> addrs[(i+1)%n] and pred -> addrs[(i-1+n)%n].
func (s *synthNet) seedRing(addrs []string) {
	n := len(addrs)
	for i, a := range addrs {
		succ := addrs[(i+1)%n]
		pred := addrs[(i-1+n)%n]
		s.inject(a, tuple.New("node", tuple.Str(a), tuple.ID(chord.NodeID(a))))
		s.inject(a, tuple.New("bestSucc", tuple.Str(a),
			tuple.ID(chord.NodeID(succ)), tuple.Str(succ)))
		s.inject(a, tuple.New("pred", tuple.Str(a),
			tuple.ID(chord.NodeID(pred)), tuple.Str(pred)))
	}
}

// byID sorts addresses into ring (ID) order.
func byID(addrs []string) []string {
	out := append([]string(nil), addrs...)
	sort.Slice(out, func(i, j int) bool {
		return chord.NodeID(out[i]) < chord.NodeID(out[j])
	})
	return out
}

// TestTraversalHealthyRing: on a correctly ordered ring the wrap-around
// traversal (ri2-ri7) completes with exactly one wrap and reports OK.
func TestTraversalHealthyRing(t *testing.T) {
	addrs := byID([]string{"a", "b", "c", "d", "e"})
	s := newSynthNet(t, []string{ringTables, OrderingTraversalRules}, addrs...)
	s.seedRing(addrs)
	s.net.RunFor(1)
	s.inject(addrs[0], tuple.New("orderingEvent", tuple.Str(addrs[0]), tuple.ID(99)))
	s.net.RunFor(5)
	s.noErrors()
	if s.count("orderingOK") != 1 {
		t.Errorf("orderingOK = %d, want 1 (watched: %v)", s.count("orderingOK"), s.watched)
	}
	if s.count("orderingProblem") != 0 {
		t.Errorf("false positive orderingProblem on healthy ring")
	}
}

// TestTraversalMisorderedRing: swapping two adjacent members in the ring
// produces an extra ID wrap-around, which ri6 reports to the initiator.
func TestTraversalMisorderedRing(t *testing.T) {
	ordered := byID([]string{"a", "b", "c", "d", "e"})
	swapped := append([]string(nil), ordered...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	s := newSynthNet(t, []string{ringTables, OrderingTraversalRules}, ordered...)
	s.seedRing(swapped)
	s.net.RunFor(1)
	s.inject(ordered[0], tuple.New("orderingEvent", tuple.Str(ordered[0]), tuple.ID(7)))
	s.net.RunFor(5)
	s.noErrors()
	if s.count("orderingProblem") != 1 {
		t.Errorf("orderingProblem = %d, want 1", s.count("orderingProblem"))
	}
	// The report lands at the initiator with the wrap count.
	for _, w := range s.watched {
		if w.T.Name == "orderingProblem" {
			if w.Node != ordered[0] {
				t.Errorf("problem reported at %s, want initiator %s", w.Node, ordered[0])
			}
			if wraps := w.T.Field(4).AsInt(); wraps == 1 {
				t.Errorf("wrap count = 1 in a problem report")
			}
		}
	}
}

// TestOpportunisticCloserID (ri1): a lookup response bearing an ID
// strictly between the local predecessor and successor flags closerID.
func TestOpportunisticCloserID(t *testing.T) {
	addrs := byID([]string{"a", "b", "c", "d"})
	s := newSynthNet(t, []string{ringTables, OrderingOpportunisticRules}, addrs...)
	s.seedRing(addrs)
	s.net.RunFor(1)
	// A result whose node ID equals addrs[1]'s own ID but under a
	// different address lies strictly inside (pred, succ).
	victim := addrs[1]
	evil := chord.NodeID(victim)
	s.inject(victim, tuple.New("lookupResults", tuple.Str(victim),
		tuple.ID(12345), tuple.ID(evil), tuple.Str("evil"),
		tuple.ID(777), tuple.Str("whoever")))
	s.net.RunFor(2)
	s.noErrors()
	if s.count("closerID") != 1 {
		t.Fatalf("closerID = %d, want 1", s.count("closerID"))
	}
	// A result equal to the successor itself must NOT flag (interval is
	// open).
	succ := addrs[2]
	s.inject(victim, tuple.New("lookupResults", tuple.Str(victim),
		tuple.ID(12345), tuple.ID(chord.NodeID(succ)), tuple.Str(succ),
		tuple.ID(778), tuple.Str("whoever")))
	s.net.RunFor(2)
	if s.count("closerID") != 1 {
		t.Errorf("closerID fired for the successor itself")
	}
}

// TestActiveRingProbeDetectsCorruptPred: corrupting a node's pred makes
// the active probe (rp1-rp3) raise inconsistentPred, because the fake
// predecessor's bestSucc is not the probing node.
func TestActiveRingProbeDetectsCorruptPred(t *testing.T) {
	addrs := byID([]string{"a", "b", "c", "d", "e"})
	s := newSynthNet(t, []string{ringTables, RingProbeRules(2)}, addrs...)
	s.seedRing(addrs)
	s.net.RunFor(10)
	s.noErrors()
	if n := s.count("inconsistentPred"); n != 0 {
		t.Fatalf("healthy ring raised %d inconsistentPred alarms", n)
	}
	if n := s.count("inconsistentSucc"); n != 0 {
		t.Fatalf("healthy ring raised %d inconsistentSucc alarms", n)
	}
	// Corrupt: point addrs[2]'s pred at addrs[0] (whose bestSucc is
	// addrs[1], not addrs[2]).
	s.inject(addrs[2], tuple.New("pred", tuple.Str(addrs[2]),
		tuple.ID(chord.NodeID(addrs[0])), tuple.Str(addrs[0])))
	s.net.RunFor(10)
	s.noErrors()
	if s.count("inconsistentPred") == 0 {
		t.Error("active probe did not flag corrupted pred")
	}
}

// TestPassiveRingCheckOnChord (rp4): on a real converged Chord ring the
// passive check stays quiet; after corrupting a pred it fires without
// any extra probe messages.
func TestPassiveRingCheckOnChord(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 21,
		ExtraPrograms: []*overlog.Program{RingPassiveProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	quiet := 0
	for _, w := range r.Watched {
		if w.T.Name == "inconsistentPred" && w.At > 150 {
			quiet++
		}
	}
	if quiet != 0 {
		t.Errorf("passive check fired %d times on a stable ring", quiet)
	}
	// Corrupt one node's pred (to its successor, which is never the
	// true predecessor on a ring of ≥3); its true predecessor keeps
	// sending stabilizeRequests, which now mismatch.
	victim := "n3"
	wrong := chord.TrueSuccessor(victim, r.Addrs)
	r.Node(victim).HandleLocal(tuple.New("pred", tuple.Str(victim),
		tuple.ID(chord.NodeID(wrong)), tuple.Str(wrong)))
	before := len(r.Watched)
	r.Run(15)
	fired := false
	for _, w := range r.Watched[before:] {
		if w.T.Name == "inconsistentPred" && w.Node == victim {
			fired = true
		}
	}
	if !fired {
		t.Error("passive check did not flag corrupted pred within 15s")
	}
}

// TestOpportunisticCheckOnLiveChord: a byzantine lookup response naming
// a node that should have been the local node's neighbor is flagged by
// ri1 on a real converged ring, piggybacking on normal traffic.
func TestOpportunisticCheckOnLiveChord(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 33,
		ExtraPrograms: []*overlog.Program{OrderingOpportunisticProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(250)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("not converged: %v", bad)
	}
	quiet := 0
	for _, w := range r.Watched {
		if w.T.Name == "closerID" {
			quiet++
		}
	}
	if quiet != 0 {
		t.Fatalf("healthy ring produced %d closerID alarms", quiet)
	}
	// Forge a response claiming an unknown node whose ID falls strictly
	// between n3's predecessor and successor: a correct ring can never
	// produce it.
	victim := "n3"
	evilID := chord.NodeID(victim) - 1
	err = r.Net.Inject(victim, tuple.New("lookupResults",
		tuple.Str(victim), tuple.ID(12345), tuple.ID(evilID),
		tuple.Str("evil"), tuple.ID(777), tuple.Str("evil")))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(5)
	found := false
	for _, w := range r.Watched {
		if w.T.Name == "closerID" && w.Node == victim {
			found = true
			if w.T.Field(2).AsStr() != "evil" {
				t.Errorf("closerID names %v, want evil", w.T)
			}
		}
	}
	if !found {
		t.Error("forged response not flagged by ri1")
	}
}
