package monitor

import (
	"fmt"
	"sort"

	"p2go/internal/engine"
	"p2go/internal/tuple"
)

// LineageRules implement the forensic traversal §3.4 sketches beyond the
// §3.2 profiler: starting from one traced tuple, walk the execution
// graph backwards across nodes following EVERY causal edge — the
// triggering events and each precondition — and stream the discovered
// edges to the origin. Where the profiler (ep1-ep6) accumulates latency
// along the single event path, this traversal reconstructs the whole
// causal DAG ("a traversal of the execution state of a lookup result can
// at each step trace back individual preconditions").
//
// Inject traceLineage@N(TupleID) at the node holding the tuple; every
// edge arrives at that node as
//
//	lineage(Origin, Root, Node, Rule, CauseID, EffectID, Depth, IsEvent)
//
// maxDepth bounds the recursion (the DAG can branch at every join).
func LineageRules(maxDepth int) string {
	return fmt.Sprintf(`
ln1 lTrav@NAddr(NAddr, TupleID, TupleID, 0) :- traceLineage@NAddr(TupleID).

/* Resolve the current tuple ID to the node that produced it: local
   tuples stay, received tuples hop to their sender under the sender's
   tuple ID. */
ln2 lHere@NAddr(Origin, Root, SrcTID, Depth) :- lTrav@NAddr(Origin, Root, Curr, Depth), tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec), SrcAddr == NAddr.
ln3 lHere@SrcAddr(Origin, Root, SrcTID, Depth) :- lTrav@NAddr(Origin, Root, Curr, Depth), tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec), SrcAddr != NAddr.

/* Report every causal in-edge (event AND precondition) to the origin. */
ln4 lineage@Origin(Root, NAddr, Rule, In, Curr, Depth, IsEv) :- lHere@NAddr(Origin, Root, Curr, Depth), ruleExec@NAddr(Rule, In, Curr, InT, OutT, IsEv).

/* Recurse along every in-edge, bounded by depth. */
ln5 lTrav@NAddr(Origin, Root, In, Depth2) :- lHere@NAddr(Origin, Root, Curr, Depth), ruleExec@NAddr(Rule, In, Curr, InT, OutT, IsEv), Depth2 := Depth + 1, Depth2 < %d.

watch(lineage).
`, maxDepth)
}

// LineageEdge is one decoded causal edge from a lineage traversal.
type LineageEdge struct {
	Root    uint64 // the traced tuple's ID at the origin
	Node    string // node on which the rule executed
	Rule    string
	Cause   uint64 // cause tuple ID (node-local)
	Effect  uint64 // effect tuple ID (node-local)
	Depth   int64
	IsEvent bool // true: triggering event edge; false: precondition edge
}

// ParseLineage decodes a lineage tuple.
func ParseLineage(t tuple.Tuple) (LineageEdge, error) {
	if t.Name != "lineage" || t.Arity() != 8 {
		return LineageEdge{}, fmt.Errorf("monitor: not a lineage tuple: %v", t)
	}
	return LineageEdge{
		Root:    t.Field(1).AsID(),
		Node:    t.Field(2).AsStr(),
		Rule:    t.Field(3).AsStr(),
		Cause:   t.Field(4).AsID(),
		Effect:  t.Field(5).AsID(),
		Depth:   t.Field(6).AsInt(),
		IsEvent: t.Field(7).AsBool(),
	}, nil
}

// TraceLineageEvent builds the event starting a lineage traversal.
func TraceLineageEvent(addr string, tupleID uint64) tuple.Tuple {
	return tuple.New("traceLineage", tuple.Str(addr), tuple.ID(tupleID))
}

// LineageSummary renders collected edges as an indented causal tree
// rooted at the traced tuple, resolving tuple names through the node's
// tracer memo where possible (forensic report formatting).
func LineageSummary(origin *engine.Node, edges []LineageEdge) string {
	byDepth := map[int64][]LineageEdge{}
	var depths []int64
	for _, e := range edges {
		if _, ok := byDepth[e.Depth]; !ok {
			depths = append(depths, e.Depth)
		}
		byDepth[e.Depth] = append(byDepth[e.Depth], e)
	}
	sort.Slice(depths, func(i, j int) bool { return depths[i] < depths[j] })
	out := ""
	for _, d := range depths {
		es := byDepth[d]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Rule != es[j].Rule {
				return es[i].Rule < es[j].Rule
			}
			return es[i].Cause < es[j].Cause
		})
		for _, e := range es {
			kind := "precond"
			if e.IsEvent {
				kind = "event"
			}
			name := ""
			if tr := origin.Tracer(); tr != nil && e.Node == origin.Addr() {
				if c, ok := tr.Content(e.Cause); ok {
					name = " " + c.Name
				}
			}
			for i := int64(0); i < d; i++ {
				out += "  "
			}
			out += fmt.Sprintf("%s: rule %s <- %s %d%s\n", e.Node, e.Rule, kind, e.Cause, name)
		}
	}
	return out
}
