package monitor

import (
	"fmt"
	"log"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/planner"
)

// mon:cluster queries: the paper's global monitoring questions ("how
// busy is the cluster", "max queue anywhere") phrased as one OverLog
// aggregate over every member's stats tables, deployed through the
// planner's cluster-aggregate split so the answer assembles in-network
// along the chord tree overlay instead of funneling O(N) rows into one
// collector. A query the split cannot take (group-by, multi-location
// bodies) still deploys — as raw flat collection — with the
// ineligibility reason logged, and planner.DisableAggTree
// (P2GO_DISABLE_AGGTREE) forces every cluster query onto the flat
// path for A/B debugging.

// ClusterSpec is one cluster-wide aggregate monitoring query.
type ClusterSpec struct {
	// Name identifies the query; it deploys as "mon:cluster:<Name>"
	// and tags the generated tables, so it must be identifier
	// characters and unique among deployed cluster queries.
	Name string
	// Source is a single-rule program "head@Root(op<V>) :- body." —
	// the body reads node-local tables, the head location is the free
	// collector variable.
	Source string
	// Period is the refresh cadence in seconds.
	Period float64
	// Root is the collector address (the tree root's address in tree
	// mode — rank 1 of the overlay — and the direct destination
	// otherwise).
	Root string
	// Tables names non-system materialized tables the body reads
	// (nodeStats/queryStats/nodeEpoch are admitted automatically).
	Tables []string
}

// ClusterMode says how a cluster query was planned.
type ClusterMode string

const (
	// ClusterTree: split into leaf partials merged up the tree overlay.
	ClusterTree ClusterMode = "tree"
	// ClusterFlat: split into leaf partials sent straight to the
	// collector (the kill-switch path — same values, O(N) fan-in).
	ClusterFlat ClusterMode = "flat"
	// ClusterCollect: raw rows mirrored to the collector, original
	// rule evaluated there (the non-splittable fallback).
	ClusterCollect ClusterMode = "collect"
)

// ClusterQuery is a built cluster query ready to Deploy.
type ClusterQuery struct {
	Detector Detector
	Mode     ClusterMode
	// Reason explains a non-tree Mode ("" when Mode is ClusterTree).
	Reason string
	// Source is the generated OverLog program text (the installed
	// rewrite, not the spec's input rule).
	Source string
}

// BuildCluster analyzes and rewrites the spec into a deployable
// detector. Fallbacks are logged, not fatal: an ineligible aggregate
// becomes a flat raw collection, and the kill switch downgrades
// eligible ones to flat partial collection.
func BuildCluster(spec ClusterSpec) (ClusterQuery, error) {
	if spec.Name == "" {
		return ClusterQuery{}, fmt.Errorf("monitor: cluster query needs a name")
	}
	prog, err := overlog.Parse(spec.Source)
	if err != nil {
		return ClusterQuery{}, fmt.Errorf("monitor: cluster %s: %w", spec.Name, err)
	}
	rules := prog.Rules()
	if len(rules) != 1 {
		return ClusterQuery{}, fmt.Errorf("monitor: cluster %s: want exactly one rule, got %d", spec.Name, len(rules))
	}
	extra := make(map[string]bool, len(spec.Tables))
	for _, t := range spec.Tables {
		extra[t] = true
	}
	env := planner.EnvFunc(func(name string) bool {
		return extra[name] || engine.IsSystemTable(name)
	})
	cfg := planner.SplitConfig{Tag: spec.Name, Period: spec.Period, Root: spec.Root}

	q := ClusterQuery{Mode: ClusterTree}
	var src string
	a, aerr := planner.AnalyzeClusterAgg(rules[0], env)
	switch {
	case aerr != nil:
		q.Mode, q.Reason = ClusterCollect, aerr.Error()
		if src, err = planner.RewriteFlatCollect(rules[0], env, cfg); err != nil {
			return ClusterQuery{}, fmt.Errorf("monitor: cluster %s: not splittable (%s) and not collectable: %w", spec.Name, aerr, err)
		}
	case planner.DisableAggTree:
		q.Mode, q.Reason = ClusterFlat, "P2GO_DISABLE_AGGTREE is set"
		if src, err = a.Rewrite(cfg); err != nil {
			return ClusterQuery{}, fmt.Errorf("monitor: cluster %s: %w", spec.Name, err)
		}
	default:
		cfg.Tree = true
		if src, err = a.Rewrite(cfg); err != nil {
			return ClusterQuery{}, fmt.Errorf("monitor: cluster %s: %w", spec.Name, err)
		}
	}
	if q.Mode != ClusterTree {
		log.Printf("monitor: cluster query %s deploying as %s collection: %s", spec.Name, q.Mode, q.Reason)
	}
	p, err := overlog.Parse(src)
	if err != nil {
		return ClusterQuery{}, fmt.Errorf("monitor: cluster %s: generated program: %w", spec.Name, err)
	}
	q.Detector = Detector{Name: "cluster:" + spec.Name, Program: p}
	q.Source = src
	return q, nil
}

// CompileCluster compiles a built cluster query once for a whole fleet,
// so deployers can instantiate the shared plan on every member instead
// of compiling per node (the scale path, like the chord substrate and
// tree overlay). extraTables mirror ClusterSpec.Tables; the overlay's
// treeParent and the engine system tables are admitted automatically.
func CompileCluster(q ClusterQuery, extraTables ...string) (*engine.CompiledQuery, error) {
	extra := make(map[string]bool, len(extraTables))
	for _, t := range extraTables {
		extra[t] = true
	}
	env := planner.EnvFunc(func(name string) bool {
		return extra[name] || name == planner.TreeParentTable || engine.IsSystemTable(name)
	})
	cq, err := engine.CompileQueryEnv(q.Detector.Program, env)
	if err != nil {
		return nil, fmt.Errorf("monitor: cluster %s: %w", q.Detector.Name, err)
	}
	return cq, nil
}

// ClusterSuite returns the stock cluster-wide stats queries over the
// publication tables: live publisher count, total cluster busy-seconds,
// the max tuples processed by any node, and total rule fires billed to
// the chord substrate. period/root parameterize every query alike.
// Rings deploy these with StatsPeriod on and the tree overlay
// installed.
func ClusterSuite(period float64, root string) ([]ClusterQuery, error) {
	specs := []ClusterSpec{
		{Name: "livecount", Period: period, Root: root, Source: `
r1 clusterLive@M(count<*>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`},
		{Name: "busysum", Period: period, Root: root, Source: `
r1 clusterBusy@M(sum<V>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`},
		{Name: "maxtuples", Period: period, Root: root, Source: `
r1 clusterMaxTuples@M(max<V>) :- nodeStats@N(Ep, C, V), C == "TuplesProcessed".`},
		{Name: "chordfires", Period: period, Root: root, Source: `
r1 clusterChordFires@M(sum<V>) :- queryStats@N(Ep, Q, C, V), Q == "chord", C == "RuleFires".`},
	}
	out := make([]ClusterQuery, 0, len(specs))
	for _, s := range specs {
		q, err := BuildCluster(s)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}
