package monitor

import (
	"testing"

	"p2go/internal/chainrep"
	"p2go/internal/chord"
	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/trace"
)

// TestAllProgramsPlan installs every OverLog program in the repository
// on a scratch node: any planner regression (e.g. new static checks)
// surfaces here immediately.
func TestAllProgramsPlan(t *testing.T) {
	n := engine.NewNode(engine.Config{Addr: "x", Seed: 1})
	if err := n.EnableTracing(trace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	install := func(name string, err error) {
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	install("chord", n.InstallProgram(chord.Program()))
	install("chord-buggy-extra", nil) // buggy shares tables; plan on a fresh node
	n2 := engine.NewNode(engine.Config{Addr: "y", Seed: 1})
	install("chord-buggy", n2.InstallProgram(chord.BuggyProgram()))
	install("ring-probe", n.InstallProgram(RingProbeProgram(10)))
	install("ring-passive", n.InstallProgram(RingPassiveProgram()))
	install("ordering-opportunistic", n.InstallProgram(OrderingOpportunisticProgram()))
	install("ordering-traversal", n.InstallProgram(OrderingTraversalProgram()))
	install("oscillation", n.InstallProgram(OscillationProgram()))
	install("consistency", n.InstallProgram(ConsistencyProgram(20)))
	install("snapshot", n.InstallProgram(SnapshotProgram()))
	install("snapshot-initiator", n.InstallProgram(SnapshotInitiatorProgram(30)))
	install("snapshot-lookups", n.InstallProgram(SnapshotLookupProgram()))
	install("snapshot-consistency", n.InstallProgram(SnapshotConsistencyProgram(20)))
	install("profiler", n.InstallProgram(mustProgM(t, ProfilerRules("cs2"))))
	install("lineage", n.InstallProgram(mustProgM(t, LineageRules(10))))
	n3 := engine.NewNode(engine.Config{Addr: "z", Seed: 1})
	install("chainrep", n3.InstallProgram(chainrep.Program()))
	install("chainrep-monitors", n3.InstallProgram(chainrep.MonitorProgram()))
}

func mustProgM(t *testing.T, src string) *overlog.Program {
	t.Helper()
	p, err := overlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
