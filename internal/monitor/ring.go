// Package monitor implements every monitoring, debugging and forensics
// application of §3 of the paper as installable OverLog programs over the
// Chord substrate:
//
//   - §3.1.1 ring well-formedness: active probes (rp1-rp3) and passive
//     checks (rp4);
//   - §3.1.2 ring ID ordering: opportunistic checks (ri1) and the
//     token-passing wrap-around traversal (ri2-ri6);
//   - §3.1.3 state oscillation detectors: single (os1-os2), repeated
//     (os3-os4), and collaborative (os5-os9);
//   - §3.1.4 proactive routing-consistency probes (cs1-cs12);
//   - §3.2 execution profiling over ruleExec/tupleTable (ep1-ep6);
//   - §3.3 Chandy-Lamport consistent snapshots (bp1-bp2, sr1-sr16) and
//     lookups over snapshots (l1s-l3s, cs4s/cs5s).
//
// Each program is deployable piecemeal on a running node via
// engine.Node.InstallProgram — the paper's on-line "add-on" model.
package monitor

import (
	"fmt"

	"p2go/internal/overlog"
)

// RingProbeRules are the active ring well-formedness probes of §3.1.1
// (rules rp1-rp3): each node periodically asks its predecessor for the
// predecessor's immediate successor and raises inconsistentPred when the
// answer is not the node itself. A symmetric pair (rs1-rs3) checks the
// successor's predecessor the same way ("Similar rules can also check
// that a node is its immediate successor's predecessor").
//
// The probe period is parameterized; the paper calls it tProbe.
func RingProbeRules(tProbe float64) string {
	return fmt.Sprintf(`
rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, %[1]g), pred@NAddr(PID, PAddr), PAddr != "-".
rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr), bestSucc@NAddr(SID, SAddr).
rp3 inconsistentPred@NAddr(PAddr) :- respBestSucc@NAddr(PAddr, Successor), pred@NAddr(PID, PAddr), Successor != NAddr.

rs1 reqBestPred@SAddr(NAddr) :- periodic@NAddr(E, %[1]g), bestSucc@NAddr(SID, SAddr), SAddr != NAddr.
rs2 respBestPred@ReqAddr(NAddr, PAddr) :- reqBestPred@NAddr(ReqAddr), pred@NAddr(PID, PAddr).
rs3 inconsistentSucc@NAddr(SAddr) :- respBestPred@NAddr(SAddr, Predecessor), bestSucc@NAddr(SID, SAddr), Predecessor != NAddr.

watch(inconsistentPred).
watch(inconsistentSucc).
`, tProbe)
}

// RingPassiveRules is the passive variant (rule rp4): piggy-back on
// Chord's own stabilizeRequest semantics — the sender of such a request
// believes the recipient is its immediate successor, so the recipient
// must know the sender as its predecessor. Detection happens at the
// stabilization rate rather than a chosen probe rate (§3.1.1).
const RingPassiveRules = `
rp4 inconsistentPred@NAddr(SomeAddr) :- stabilizeRequest@NAddr(SomeAddr), pred@NAddr(PID, PAddr), SomeAddr != PAddr.
watch(inconsistentPred).
`

// RingProbeProgram parses the active ring checker.
func RingProbeProgram(tProbe float64) *overlog.Program {
	return overlog.MustParse(RingProbeRules(tProbe))
}

// RingPassiveProgram parses the passive ring checker.
func RingPassiveProgram() *overlog.Program {
	return overlog.MustParse(RingPassiveRules)
}

// OrderingOpportunisticRules is the opportunistic ID-ordering check of
// §3.1.2 (rule ri1): flag any lookup response whose result node ID falls
// strictly between the local predecessor and successor IDs — such a node
// should have been one of our ring neighbors.
const OrderingOpportunisticRules = `
ri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :- lookupResults@NAddr(Key, ResltNodeID, ResltNodeAddr, ReqNo, RespAddr), pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr), ResltNodeAddr != NAddr, ResltNodeID in (PID, SID), PAddr != "-".
watch(closerID).
`

// OrderingOpportunisticProgram parses ri1.
func OrderingOpportunisticProgram() *overlog.Program {
	return overlog.MustParse(OrderingOpportunisticRules)
}

// OrderingTraversalRules implement the token-passing full-ring traversal
// of §3.1.2 (rules ri2-ri6): starting from an orderingEvent at the
// initiator, a token walks immediate successors counting ID
// wrap-arounds; a completed traversal with a wrap count different from
// one reports orderingProblem to the initiator.
const OrderingTraversalRules = `
ri2 ordering@NAddr(E, NAddr, NID, 0) :- orderingEvent@NAddr(E), node@NAddr(NID).
ri3 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr), node@NAddr(NID), NID < SID.
ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr), node@NAddr(NID), NID >= SID.
ri5 ordering@SAddr(E, SrcAddr, SID, Wraps) :- countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr != SrcAddr.
ri6 orderingProblem@SrcAddr(E, SrcAddr, SID, Wraps) :- countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr == SrcAddr, Wraps != 1.
ri7 orderingOK@SrcAddr(E, Wraps) :- countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr == SrcAddr, Wraps == 1.
watch(orderingProblem).
watch(orderingOK).
`

// OrderingTraversalProgram parses ri2-ri7. Note two adaptations from the
// paper's listing, which compares the token-carried MyID against the
// successor ID: the wrap test needs the *local* node's ID (the paper's
// ri3/ri4 never bind MyID to node), and ri6 must address the initiator
// (SrcAddr); we also add ri7 reporting healthy completions so liveness
// of the traversal itself is observable.
func OrderingTraversalProgram() *overlog.Program {
	return overlog.MustParse(OrderingTraversalRules)
}
