package monitor

import (
	"fmt"

	"p2go/internal/engine"
	"p2go/internal/overlog"
)

// Detector is one deployable §3.1 monitoring query: a named OverLog
// program that installs (and uninstalls) as a unit on ring members.
type Detector struct {
	// Name identifies the detector; Deploy installs it under the query
	// ID "mon:<Name>".
	Name string
	// Program is the detector's OverLog program.
	Program *overlog.Program
	// SingleNode marks detectors the paper deploys at one observation
	// point rather than on every member: the proactive prober of
	// Figure 6 initiates ring-wide lookup traffic, and running it on
	// all 21 nodes at once drives the ring into the distressed regime
	// (load-delayed pings read as failures and the ring destabilizes).
	SingleNode bool
}

// QueryID returns the engine query ID the detector deploys under.
func (d Detector) QueryID() string { return "mon:" + d.Name }

// Detectors returns the full §3.1 detector suite, ready to Deploy:
// active and passive ring-consistency monitors (§3.1.1), the two
// key-ordering checkers (§3.1.2), the oscillation detector (§3.1.3) and
// the proactive inconsistency prober (§3.1.1). tProbe is the active ring
// probe period and probePeriod the proactive prober's, both in seconds.
func Detectors(tProbe, probePeriod float64) []Detector {
	return []Detector{
		{Name: "ring-probe", Program: RingProbeProgram(tProbe)},
		{Name: "ring-passive", Program: RingPassiveProgram()},
		{Name: "ordering", Program: OrderingOpportunisticProgram()},
		{Name: "ordering-traversal", Program: OrderingTraversalProgram()},
		{Name: "oscillation", Program: OscillationProgram()},
		{Name: "consistency", Program: ConsistencyProgram(probePeriod), SingleNode: true},
	}
}

// Deploy installs the detector on a node as the managed query
// "mon:<name>" and returns that query ID. Deployment is atomic: a
// detector that conflicts with installed state installs nothing.
func Deploy(n *engine.Node, d Detector) (string, error) {
	id, err := n.InstallQuery(d.QueryID(), d.Program)
	if err != nil {
		return "", fmt.Errorf("monitor: deploy %s: %w", d.Name, err)
	}
	return id, nil
}

// Undeploy uninstalls a previously deployed detector from a node: its
// strands, timers, watches and solely-owned tables are removed and the
// node returns to its pre-deployment dataflow shape.
func Undeploy(n *engine.Node, d Detector) error {
	if err := n.UninstallQuery(d.QueryID()); err != nil {
		return fmt.Errorf("monitor: undeploy %s: %w", d.Name, err)
	}
	return nil
}
