package monitor

import (
	"strings"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/planner"
	"p2go/internal/tuple"
)

// skipIfAggTreeDisabled skips tests that assert tree-mode planning when
// the P2GO_DISABLE_AGGTREE kill switch is set (the CI aggtree-disabled
// job): under the switch those queries legitimately deploy flat.
func skipIfAggTreeDisabled(t *testing.T) {
	t.Helper()
	if planner.DisableAggTree {
		t.Skip("P2GO_DISABLE_AGGTREE is set")
	}
}

func TestBuildClusterModes(t *testing.T) {
	skipIfAggTreeDisabled(t)
	spec := ClusterSpec{Name: "livecount", Period: 3, Root: "n1", Source: `
r1 clusterLive@M(count<*>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`}

	q, err := BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ClusterTree || q.Reason != "" {
		t.Errorf("mode = %s (%q), want tree", q.Mode, q.Reason)
	}
	if q.Detector.QueryID() != "mon:cluster:livecount" {
		t.Errorf("query ID = %q", q.Detector.QueryID())
	}
	if !strings.Contains(q.Source, planner.TreeParentTable) {
		t.Error("tree-mode program does not route on the overlay")
	}

	// The kill switch downgrades eligible queries to flat partials.
	saved := planner.DisableAggTree
	planner.DisableAggTree = true
	defer func() { planner.DisableAggTree = saved }()
	q, err = BuildCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ClusterFlat || !strings.Contains(q.Reason, "P2GO_DISABLE_AGGTREE") {
		t.Errorf("kill-switch mode = %s (%q), want flat", q.Mode, q.Reason)
	}
	if strings.Contains(q.Source, planner.TreeParentTable) {
		t.Error("flat-mode program references the overlay")
	}
	planner.DisableAggTree = saved

	// Group-by is not splittable: raw collection with the reason kept.
	q, err = BuildCluster(ClusterSpec{Name: "percounter", Period: 3, Root: "n1", Source: `
r1 peaks@M(C, max<V>) :- nodeStats@N(Ep, C, V).`})
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ClusterCollect || !strings.Contains(q.Reason, "group-by") {
		t.Errorf("group-by mode = %s (%q), want collect", q.Mode, q.Reason)
	}

	if _, err := BuildCluster(ClusterSpec{Name: "bad name", Period: 3, Root: "n1",
		Source: `r1 x@M(count<*>) :- nodeStats@N(Ep, C, V).`}); err == nil {
		t.Error("invalid tag accepted")
	}
}

// clusterValue reads the single result row of a cluster query's head
// table at the collector.
func clusterValue(r *chord.Ring, root, table string) (float64, bool) {
	tb := r.Node(root).Store().Get(table)
	if tb == nil {
		return 0, false
	}
	v, ok := 0.0, false
	tb.Scan(r.Sim.Now(), func(t tuple.Tuple) { v, ok = valueOf(t.Field(1)), true })
	return v, ok
}

func deployClusterEverywhere(t *testing.T, r *chord.Ring, q ClusterQuery) {
	t.Helper()
	for _, a := range r.Addrs {
		if _, err := Deploy(r.Node(a), q.Detector); err != nil {
			t.Fatalf("deploy on %s: %v", a, err)
		}
	}
}

// TestClusterQueryOverTree: the livecount query converges to the exact
// member count at the tree root, survives a member crash (the dead
// subtree ages out of the aggregate) and recovers on rejoin.
func TestClusterQueryOverTree(t *testing.T) {
	skipIfAggTreeDisabled(t)
	const n, period = 7, 3.0
	r, err := chord.NewRing(chord.RingConfig{
		N: n, Seed: 19, StatsPeriod: 2,
		Tree: &chord.TreeConfig{Fanout: 3, Heartbeat: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildCluster(ClusterSpec{Name: "livecount", Period: period, Root: "n1", Source: `
r1 clusterLive@M(count<*>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`})
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ClusterTree {
		t.Fatalf("mode = %s, want tree", q.Mode)
	}
	deployClusterEverywhere(t, r, q)
	r.Run(40) // several refresh rounds past stats + tree startup
	if v, ok := clusterValue(r, "n1", "clusterLive"); !ok || v != n {
		t.Fatalf("clusterLive = %v (present %v), want %d", v, ok, n)
	}
	// Tree traffic is billed to the monitoring query, not the system
	// bucket: an interior node forwards partials upward on mon:cluster's
	// dime.
	if bill, ok := r.Node("n2").QueryMetrics()[q.Detector.QueryID()]; !ok || bill.BusySeconds <= 0 {
		t.Errorf("no busy-time billed to %s on an interior node", q.Detector.QueryID())
	}

	r.Net.Crash("n5")
	// Inbox TTL is 2.5 periods, and the tick-paced pipeline then moves
	// the change one stage per tick: child merge, upward push, root
	// merge, root finalize — ~6.5 periods worst case before the root
	// value reflects the loss.
	r.Run(7 * period)
	if v, _ := clusterValue(r, "n1", "clusterLive"); v != n-1 {
		t.Errorf("after crash clusterLive = %v, want %d", v, n-1)
	}
	r.Net.Rejoin("n5")
	r.Run(6 * period)
	if v, _ := clusterValue(r, "n1", "clusterLive"); v != n {
		t.Errorf("after rejoin clusterLive = %v, want %d", v, n)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[0])
	}
}

// TestClusterQueryFlatMatchesTree: with the kill switch on, the same
// query deploys flat and converges to the same value.
func TestClusterQueryFlatMatchesTree(t *testing.T) {
	const n = 6
	saved := planner.DisableAggTree
	planner.DisableAggTree = true
	defer func() { planner.DisableAggTree = saved }()
	r, err := chord.NewRing(chord.RingConfig{N: n, Seed: 23, StatsPeriod: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildCluster(ClusterSpec{Name: "livecount", Period: 3, Root: "n4", Source: `
r1 clusterLive@M(count<*>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`})
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != ClusterFlat {
		t.Fatalf("mode = %s, want flat", q.Mode)
	}
	deployClusterEverywhere(t, r, q)
	r.Run(30)
	if v, ok := clusterValue(r, "n4", "clusterLive"); !ok || v != n {
		t.Errorf("flat clusterLive = %v (present %v), want %d", v, ok, n)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[0])
	}
}

// TestClusterSuiteDeploys: the stock suite builds in tree mode and its
// sum/max queries deliver plausible values at the root.
func TestClusterSuiteDeploys(t *testing.T) {
	skipIfAggTreeDisabled(t)
	const n = 5
	r, err := chord.NewRing(chord.RingConfig{
		N: n, Seed: 29, StatsPeriod: 2,
		Tree: &chord.TreeConfig{Fanout: 2, Heartbeat: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	suite, err := ClusterSuite(3, "n1")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range suite {
		if q.Mode != ClusterTree {
			t.Fatalf("suite query %s mode = %s, want tree", q.Detector.Name, q.Mode)
		}
		deployClusterEverywhere(t, r, q)
	}
	r.Run(45)
	if v, ok := clusterValue(r, "n1", "clusterLive"); !ok || v != n {
		t.Errorf("clusterLive = %v (present %v), want %d", v, ok, n)
	}
	busy, ok := clusterValue(r, "n1", "clusterBusy")
	if !ok || busy <= 0 {
		t.Errorf("clusterBusy = %v (present %v), want > 0", busy, ok)
	}
	// The cluster-wide busy sum cannot exceed the true total at read
	// time (counters are monotone; published values lag).
	var trueBusy float64
	for _, a := range r.Addrs {
		trueBusy += r.Node(a).Metrics().BusySeconds
	}
	if busy > trueBusy {
		t.Errorf("clusterBusy %v exceeds true total %v", busy, trueBusy)
	}
	if v, ok := clusterValue(r, "n1", "clusterMaxTuples"); !ok || v <= 0 {
		t.Errorf("clusterMaxTuples = %v (present %v), want > 0", v, ok)
	}
	if v, ok := clusterValue(r, "n1", "clusterChordFires"); !ok || v <= 0 {
		t.Errorf("clusterChordFires = %v (present %v), want > 0", v, ok)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[0])
	}
}
