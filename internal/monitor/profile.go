package monitor

import (
	"fmt"

	"p2go/internal/engine"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// ProfilerRules implement the execution profiler of §3.2 (rules ep1-ep6):
// starting from a traced response tuple (a traceResp event naming the
// tuple ID and the time it was observed), the rules walk the execution
// graph backwards through ruleExec and tupleTable — hopping across nodes
// when a tuple crossed the network — splitting the end-to-end latency
// into three bins:
//
//	RuleT   time spent inside rule strands,
//	NetT    time spent traversing the network,
//	LocalT  time spent between rules within a node's dataflow.
//
// The traversal stops when it reaches stopRule (the paper uses cs2, the
// rule that launches consistency lookups) and reports the three bins.
//
// Two adaptations from the paper's listing: when the traversal crosses
// to the source node, the "current tuple" must be renamed to the ID the
// source assigned (SrcTID from tupleTable) — the paper's ep2 forwards the
// receiver-local ID, which cannot join the source's ruleExec; and ep3/ep4
// follow only the event edge (final ruleExec field true), which the
// paper's prose specifies.
func ProfilerRules(stopRule string) string {
	return fmt.Sprintf(`
ep1 trav@NAddr(TupleID, TupleID, TupleTime, 0.0, 0.0, 0.0) :- traceResp@NAddr(TupleID, TupleTime).
ep2 ruleBack@SrcAddr(ID, SrcTID, LastT, RuleT, NetT, LocalT, Local) :- trav@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT), tupleTable@NAddr(Curr, SrcAddr, SrcTID, LocSpec), Local := (LocSpec == SrcAddr).
ep3 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT, LocalT + LastT - OutT, Rule) :- ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, Local), Local == true, ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep4 forward@NAddr(ID, In, InT, RuleT + OutT - InT, NetT + LastT - OutT, LocalT, Rule) :- ruleBack@NAddr(ID, Curr, LastT, RuleT, NetT, LocalT, Local), Local == false, ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep5 trav@NAddr(ID, In, InT, RuleT, NetT, LocalT) :- forward@NAddr(ID, In, InT, RuleT, NetT, LocalT, Rule), Rule != "%[1]s".
ep6 report@NAddr(ID, RuleT, NetT, LocalT) :- forward@NAddr(ID, In, InT, RuleT, NetT, LocalT, Rule), Rule == "%[1]s".

watch(report).
`, stopRule)
}

// ProfileReport is one decoded report tuple.
type ProfileReport struct {
	TupleID uint64
	RuleT   float64
	NetT    float64
	LocalT  float64
}

// ParseReport decodes a report@N(ID, RuleT, NetT, LocalT) tuple.
func ParseReport(t tuple.Tuple) (ProfileReport, error) {
	if t.Name != "report" || t.Arity() != 5 {
		return ProfileReport{}, fmt.Errorf("monitor: not a report tuple: %v", t)
	}
	return ProfileReport{
		TupleID: t.Field(1).AsID(),
		RuleT:   t.Field(2).AsFloat(),
		NetT:    t.Field(3).AsFloat(),
		LocalT:  t.Field(4).AsFloat(),
	}, nil
}

// Total returns the end-to-end latency the report decomposes.
func (r ProfileReport) Total() float64 { return r.RuleT + r.NetT + r.LocalT }

// FindTracedTuples scans a node's tupleTable for memoized tuples with the
// given predicate name, returning their local IDs. This is the forensic
// entry point: an operator picks a suspicious response (e.g. one flagged
// by the consistency probes) and injects traceResp for it.
func FindTracedTuples(n *engine.Node, name string) []uint64 {
	tr := n.Tracer()
	tb := n.Store().Get(trace.TupleTable)
	if tr == nil || tb == nil {
		return nil
	}
	var ids []uint64
	tb.Scan(n.Now(), func(row tuple.Tuple) {
		id := row.Field(1).AsID()
		if content, ok := tr.Content(id); ok && content.Name == name {
			ids = append(ids, id)
		}
	})
	return ids
}

// TraceRespEvent builds the traceResp event that starts a backward
// traversal at node addr for the given tuple ID, observed at time t.
func TraceRespEvent(addr string, tupleID uint64, t float64) tuple.Tuple {
	return tuple.New("traceResp", tuple.Str(addr), tuple.ID(tupleID), tuple.Float(t))
}
