package monitor

import (
	"testing"

	"p2go/internal/chord"
	"p2go/internal/overlog"
	"p2go/internal/trace"
)

// TestLineageOfConsistencyLookup reconstructs the full causal DAG of a
// consistency-probe response across nodes: the traversal must surface
// the event chain (l1 <- lookup <- ... <- cs4 <- cs2 <- cs1) AND the
// precondition edges (the bestSucc/finger/uniqueFinger rows that allowed
// each rule to fire), which the §3.2 profiler ignores.
func TestLineageOfConsistencyLookup(t *testing.T) {
	tcfg := trace.DefaultConfig()
	tcfg.RuleExecTTL = 300
	tcfg.RuleExecMax = 20000
	r, err := chord.NewRing(chord.RingConfig{
		N: 6, Seed: 77, Tracing: &tcfg,
		ExtraPrograms: []*overlog.Program{
			overlog.MustParse(LineageRules(12)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(240)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	prober := r.Node("n6")
	if err := prober.InstallProgram(ConsistencyProgram(15)); err != nil {
		t.Fatal(err)
	}
	r.Run(40)

	var root uint64
	for _, row := range RuleExecRows(prober) {
		if row.Rule == "cs5" && row.IsEvent {
			root = row.In
		}
	}
	if root == 0 {
		t.Fatal("no traced consistency response")
	}
	if err := r.Net.Inject("n6", TraceLineageEvent("n6", root)); err != nil {
		t.Fatal(err)
	}
	r.Run(10)

	var edges []LineageEdge
	for _, w := range r.Watched {
		if w.T.Name != "lineage" {
			continue
		}
		e, err := ParseLineage(w.T)
		if err != nil {
			t.Fatal(err)
		}
		if e.Root == root {
			edges = append(edges, e)
		}
	}
	if len(edges) == 0 {
		t.Fatalf("no lineage edges (errors: %v)", r.Errors)
	}
	rules := map[string]bool{}
	sawPrecond, sawEvent, sawRemote := false, false, false
	for _, e := range edges {
		rules[e.Rule] = true
		if e.IsEvent {
			sawEvent = true
		} else {
			sawPrecond = true
		}
		if e.Node != "n6" {
			sawRemote = true
		}
	}
	// The event chain must reach back to the probe rules on the origin
	// and l1 on the responder.
	for _, want := range []string{"l1", "cs4", "cs2", "cs1"} {
		if !rules[want] {
			t.Errorf("lineage misses rule %s (got %v)", want, rules)
		}
	}
	if !sawEvent || !sawPrecond {
		t.Errorf("lineage must contain both event and precondition edges (event=%v precond=%v)",
			sawEvent, sawPrecond)
	}
	if !sawRemote {
		t.Error("lineage never crossed the network")
	}
	if s := LineageSummary(prober, edges); len(s) < 20 {
		t.Errorf("summary too small: %q", s)
	}
}

// TestLineageDepthBound: the traversal stops at the configured depth.
func TestLineageDepthBound(t *testing.T) {
	tcfg := trace.DefaultConfig()
	r, err := chord.NewRing(chord.RingConfig{
		N: 3, Seed: 9, Tracing: &tcfg,
		ExtraPrograms: []*overlog.Program{
			overlog.MustParse(LineageRules(2)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(60)
	prober := r.Node("n3")
	var root uint64
	for _, row := range RuleExecRows(prober) {
		if row.IsEvent {
			root = row.Out
		}
	}
	if root == 0 {
		t.Skip("no traced executions yet")
	}
	if err := r.Net.Inject("n3", TraceLineageEvent("n3", root)); err != nil {
		t.Fatal(err)
	}
	r.Run(5)
	for _, w := range r.Watched {
		if w.T.Name != "lineage" {
			continue
		}
		e, _ := ParseLineage(w.T)
		if e.Depth >= 2 {
			t.Errorf("edge beyond depth bound: %+v", e)
		}
	}
}
