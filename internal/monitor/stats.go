package monitor

import (
	"fmt"

	"p2go/internal/overlog"
)

// StatsProfilerRules implement the §3.2 performance profiler as a pure
// OverLog query over the engine's queryable performance counters: once
// the engine publishes its metrics into the nodeStats and queryStats
// system tables (engine.EnableStatsPublication), these two rules
// periodically read them back out — no Go inspection API involved.
//
//	pf1  emits profile(NAddr, Counter, Value) for every node counter,
//	pf2  emits profQuery(NAddr, QueryID, Counter, Value) for every
//	     per-query bill — the ACME-style "how much is each monitoring
//	     query costing me" report.
//
// The rules trigger on their own periodic (period seconds) and join the
// stats tables, so every sweep reports the full current counter set
// even when a counter did not change since the last publication. Pair
// the period with the publication period: a sweep sees values at most
// one publication period old.
func StatsProfilerRules(period float64) string {
	return fmt.Sprintf(`
pf1 profile@NAddr(NAddr, Counter, Value) :- periodic@NAddr(E, %[1]g), nodeStats@NAddr(Ep, Counter, Value).
pf2 profQuery@NAddr(NAddr, QueryID, Counter, Value) :- periodic@NAddr(E, %[1]g), queryStats@NAddr(Ep, QueryID, Counter, Value).

watch(profile).
watch(profQuery).
`, period)
}

// StatsProfilerProgram parses the stats profiler with the given sweep
// period.
func StatsProfilerProgram(period float64) *overlog.Program {
	return overlog.MustParse(StatsProfilerRules(period))
}

// ProfilerDetector wraps the stats profiler as a deployable detector
// (query ID "mon:profiler"). It is not part of the default Detectors
// suite: profiling is an on-demand forensic tool, deployed when an
// operator wants per-node and per-query cost visibility, and its own
// cost is itself visible in queryStats under "mon:profiler".
func ProfilerDetector(period float64) Detector {
	return Detector{Name: "profiler", Program: StatsProfilerProgram(period)}
}
