package monitor

import (
	"testing"

	"p2go/internal/chord"
	"p2go/internal/overlog"
	"p2go/internal/trace"
)

// TestProfilerDecomposesLookupLatency is the §3.2 scenario end to end:
// with execution logging on, the consistency probe issues lookups; the
// operator picks a traced response, injects traceResp, and the ep1-ep6
// rules walk the execution graph backwards across nodes, decomposing the
// end-to-end latency into rule, network, and local dataflow time.
func TestProfilerDecomposesLookupLatency(t *testing.T) {
	tcfg := trace.DefaultConfig()
	tcfg.RuleExecTTL = 300 // keep enough history for the test
	tcfg.RuleExecMax = 20000
	r, err := chord.NewRing(chord.RingConfig{
		N: 8, Seed: 77, Tracing: &tcfg,
		ExtraPrograms: []*overlog.Program{
			overlog.MustParse(ProfilerRules("cs2")),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	prober := r.Node("n8")
	if err := prober.InstallProgram(ConsistencyProgram(15)); err != nil {
		t.Fatal(err)
	}
	r.Run(40) // at least two probes issue and respond

	// Pick responses that belong to consistency probes: the inputs of
	// cs5 executions (exactly what a forensic operator would trace
	// after a consAlarm). Plain finger-fix lookup responses also appear
	// in tupleTable, but their chains end at a periodic event rather
	// than cs2.
	var ids []uint64
	for _, row := range RuleExecRows(prober) {
		if row.Rule == "cs5" && row.IsEvent {
			ids = append(ids, row.In)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no traced consistency lookup responses on the prober")
	}
	if len(ids) > 4 {
		ids = ids[:4]
	}
	reported := 0
	for _, id := range ids {
		at, ok := ArrivalTime(prober, id)
		if !ok {
			continue
		}
		if err := r.Net.Inject("n8", TraceRespEvent("n8", id, at)); err != nil {
			t.Fatal(err)
		}
		r.Run(5)
		for _, w := range r.Watched {
			if w.T.Name != "report" {
				continue
			}
			rep, err := ParseReport(w.T)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TupleID != id {
				continue
			}
			reported++
			if rep.RuleT <= 0 {
				t.Errorf("report %d: RuleT = %v, want > 0", id, rep.RuleT)
			}
			if rep.NetT < 0.005 {
				// Lookups go to remote fingers: at least one
				// network crossing (min delay 5 ms each way).
				t.Errorf("report %d: NetT = %v, want >= one crossing", id, rep.NetT)
			}
			if rep.LocalT < 0 {
				t.Errorf("report %d: LocalT = %v, want >= 0", id, rep.LocalT)
			}
			if rep.Total() <= 0 || rep.Total() > 5 {
				t.Errorf("report %d: total latency %v implausible", id, rep.Total())
			}
		}
	}
	if reported == 0 {
		t.Fatalf("no profiler reports for %d traced responses (errors: %v)",
			len(ids), r.Errors)
	}
}

// TestProfilerStopsSilentlyWithoutChain: tracing a tuple with no
// recorded producing rule (an injected event) yields no report and no
// errors — the traversal just ends, as the paper's design implies.
func TestProfilerStopsSilentlyWithoutChain(t *testing.T) {
	tcfg := trace.DefaultConfig()
	r, err := chord.NewRing(chord.RingConfig{
		N: 2, Seed: 3, Tracing: &tcfg,
		ExtraPrograms: []*overlog.Program{
			overlog.MustParse(ProfilerRules("cs2")),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(30)
	if err := r.Net.Inject("n1", TraceRespEvent("n1", 999999, 10)); err != nil {
		t.Fatal(err)
	}
	r.Run(5)
	for _, w := range r.Watched {
		if w.T.Name == "report" {
			t.Errorf("unexpected report: %v", w.T)
		}
	}
	if len(r.Errors) > 0 {
		t.Errorf("rule errors: %v", r.Errors)
	}
}
