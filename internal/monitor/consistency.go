package monitor

import (
	"fmt"

	"p2go/internal/overlog"
)

// ConsistencyRules builds the proactive routing-consistency detector of
// §3.1.4 (rules cs1-cs12): every probePeriod seconds a node picks a
// random key, asks each of its distinct routing neighbors to resolve it,
// clusters the answers, and reports the consistency metric — the largest
// agreeing cluster over the number of lookups issued (1.0 = perfectly
// consistent). Probes are tallied 20 s after issue; cs12 raises an alarm
// below 0.5.
//
// Two small adaptations from the paper's listing: the table keys are
// per-probe/per-request (the paper's keys(1) would keep one row per
// node), and the metric divides as floating point (RespCount and
// LookupCount are integers).
func ConsistencyRules(probePeriod float64) string {
	return fmt.Sprintf(`
materialize(conLookupTable, 100, 400, keys(2,3)).
materialize(conRespTable, 100, 400, keys(2,3)).
materialize(respCluster, 100, 400, keys(2,3)).
materialize(maxCluster, 100, 400, keys(2)).
materialize(lookupCluster, 100, 400, keys(2)).

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, %g), K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- conProbe@NAddr(ProbeID, K, T), uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :- conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs4 lookup@SrcAddr(K, NAddr, ReqID) :- conLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs5 conRespTable@NAddr(ProbeID, ReqID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, ReqID, Responder), conLookupTable@NAddr(ProbeID, ReqID, T).
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :- respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :- conLookupTable@NAddr(ProbeID, ReqID, T).
cs9 consistency@NAddr(ProbeID, Cons) :- periodic@NAddr(E, 20), lookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - 20, maxCluster@NAddr(ProbeID, RespCount), Cons := (RespCount * 1.0) / LookupCount.
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- consistency@NAddr(ProbeID, Consistency).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :- consistency@NAddr(ProbeID, Consistency), conLookupTable@NAddr(ProbeID, ReqID, T).
cs12 consAlarm@NAddr(PrID) :- consistency@NAddr(PrID, Cons), Cons < 0.5.

watch(consistency).
watch(consAlarm).
`, probePeriod)
}

// ConsistencyProgram parses the consistency probe with the given period.
// The probe runs only on nodes it is installed on; the paper's Figure 6
// uses a single probing node (the measured 21st).
func ConsistencyProgram(probePeriod float64) *overlog.Program {
	return overlog.MustParse(ConsistencyRules(probePeriod))
}
