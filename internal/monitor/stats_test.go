package monitor

import (
	"math"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/metrics"
	"p2go/internal/tuple"
)

// valueOf reads a profile/profQuery value field (int or float counter).
func valueOf(v tuple.Value) float64 {
	if v.Kind() == tuple.KindFloat {
		return v.AsFloat()
	}
	return float64(v.AsInt())
}

// TestStatsProfilerMatchesEngineMetrics is the acceptance test for the
// queryable performance counters: an OverLog program — no Go inspection
// involved — deployed through the normal query lifecycle reads
// nodeStats/queryStats and reproduces the §3.2 profiler. Every profile
// tuple it emits must agree with the engine's Go-side metrics within
// one refresh period: counters are monotone, so a value published after
// snapshot A and observed before snapshot B lies in [A, B].
func TestStatsProfilerMatchesEngineMetrics(t *testing.T) {
	const pubPeriod, sweepPeriod = 5.0, 5.0
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 11, StatsPeriod: pubPeriod})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200) // converge

	n := r.Node("n4")
	if _, err := Deploy(n, ProfilerDetector(sweepPeriod)); err != nil {
		t.Fatal(err)
	}

	start := r.Sim.Now()
	snapA := n.Metrics()
	queriesA := n.QueryMetrics()
	obsA := n.ObsCounters()
	r.Run(40)
	snapB := n.Metrics()
	queriesB := n.QueryMetrics()
	obsB := n.ObsCounters()
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(3, len(r.Errors))])
	}

	// The published counter set is the node counters plus the
	// observability extras (FanoutStats, trace-store totals); all are
	// monotone, so the same snapshot-window bound applies.
	lowNode := make(map[string]float64)
	highNode := make(map[string]float64)
	for _, c := range snapA.Counters() {
		lowNode[c.Name] = c.Float()
	}
	for _, c := range obsA {
		lowNode[c.Name] = c.Float()
	}
	for _, c := range snapB.Counters() {
		highNode[c.Name] = c.Float()
	}
	for _, c := range obsB {
		highNode[c.Name] = c.Float()
	}

	// A profile tuple observed at time t carries a value published at
	// some point in (t - pubPeriod, t]. Tuples observed at least one
	// full publication period after snapshot A therefore carry values
	// from inside the [A, B] window.
	profiles, profQueries, sawProfiler := 0, 0, false
	for _, w := range r.Watched {
		if w.Node != "n4" || w.At < start+pubPeriod {
			continue
		}
		switch w.T.Name {
		case "profile":
			profiles++
			name := w.T.Field(2).AsStr()
			v := valueOf(w.T.Field(3))
			lo, okLo := lowNode[name]
			hi, okHi := highNode[name]
			if !okLo || !okHi {
				t.Fatalf("profile reports unknown counter %q", name)
			}
			if v < lo || v > hi {
				t.Errorf("profile %s = %v at t=%.1f outside snapshot window [%v, %v]",
					name, v, w.At, lo, hi)
			}
		case "profQuery":
			profQueries++
			qid := w.T.Field(2).AsStr()
			name := w.T.Field(3).AsStr()
			v := valueOf(w.T.Field(4))
			if qid == "mon:profiler" {
				sawProfiler = true
			}
			// Same window argument per query bucket. A query first
			// billed after snapshot A has no entry in queriesA; its
			// lower bound is zero.
			var lo, hi float64
			if qa, ok := queriesA[qid]; ok {
				for _, c := range qa.Counters() {
					if c.Name == name {
						lo = c.Float()
					}
				}
			}
			qb, ok := queriesB[qid]
			if !ok {
				t.Fatalf("profQuery reports unknown query %q", qid)
			}
			found := false
			for _, c := range qb.Counters() {
				if c.Name == name {
					hi = c.Float()
					found = true
				}
			}
			if !found {
				t.Fatalf("profQuery reports unknown counter %q", name)
			}
			if v < lo || v > hi {
				t.Errorf("profQuery %s/%s = %v at t=%.1f outside [%v, %v]",
					qid, name, v, w.At, lo, hi)
			}
		}
	}
	if profiles == 0 {
		t.Fatal("profiler produced no profile tuples")
	}
	if profQueries == 0 {
		t.Fatal("profiler produced no profQuery tuples")
	}
	// The profiler's own cost is visible to itself: its query ID shows
	// up in the published per-query bills it sweeps.
	if !sawProfiler {
		t.Error("profQuery never reported the mon:profiler query's own bill")
	}

	// Accounting integrity with publication and profiler on: per-query
	// bills sum to the node total.
	var sum float64
	for _, q := range queriesB {
		sum += q.BusySeconds
	}
	if diff := math.Abs(sum - snapB.BusySeconds); diff > 1e-9*(1+snapB.BusySeconds) {
		t.Errorf("per-query bills sum to %v, node total %v", sum, snapB.BusySeconds)
	}
	if queriesB[metrics.SystemQuery].BusySeconds <= queriesA[metrics.SystemQuery].BusySeconds {
		t.Error("system bucket did not grow during the window despite stats publication")
	}
}

// statsEpochs collects the distinct epoch values present in a node's
// published nodeStats and queryStats rows.
func statsEpochs(r *chord.Ring, addr string) map[int64]int {
	out := map[int64]int{}
	now := r.Sim.Now()
	for _, tab := range []string{"nodeStats", "queryStats"} {
		if tb := r.Node(addr).Store().Get(tab); tb != nil {
			tb.Scan(now, func(t tuple.Tuple) { out[t.Field(1).AsInt()]++ })
		}
	}
	return out
}

// TestStatsEpochAcrossChurn: stats publication under churn. A node that
// crashes and rejoins comes back as a new process incarnation: its
// published rows carry the bumped epoch, and no stale rows from the
// previous incarnation survive the restart — so a collector reading
// nodeStats can tell a genuine counter reset (new epoch) from a counter
// decrease (same epoch, which monotone counters forbid).
func TestStatsEpochAcrossChurn(t *testing.T) {
	const period = 5.0
	r, err := chord.NewRing(chord.RingConfig{N: 6, Seed: 7, StatsPeriod: period})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(60)

	if got := r.Node("n3").Epoch(); got != 0 {
		t.Fatalf("pre-crash epoch = %d, want 0", got)
	}
	pre := statsEpochs(r, "n3")
	if pre[0] == 0 || len(pre) != 1 {
		t.Fatalf("pre-crash stats rows carry epochs %v, want only epoch 0", pre)
	}

	r.Net.Crash("n3")
	r.Run(20)
	r.Net.Rejoin("n3")
	// At least one publication period in the new incarnation, plus a
	// second for the replaced rows to settle.
	r.Run(2 * period)

	if got := r.Node("n3").Epoch(); got != 1 {
		t.Fatalf("post-rejoin epoch = %d, want 1", got)
	}
	post := statsEpochs(r, "n3")
	if post[1] == 0 {
		t.Fatal("rejoined node published no stats rows under the new epoch")
	}
	if post[0] != 0 {
		t.Errorf("%d stale stats rows from epoch 0 survived the rejoin", post[0])
	}
	// The engine-owned incarnation row agrees.
	var epochRow int64 = -1
	r.Node("n3").Store().Get("nodeEpoch").Scan(r.Sim.Now(), func(t tuple.Tuple) {
		epochRow = t.Field(1).AsInt()
	})
	if epochRow != 1 {
		t.Errorf("nodeEpoch row = %d, want 1", epochRow)
	}
	// A node that never crashed stays in its original incarnation.
	if other := statsEpochs(r, "n2"); other[0] == 0 || len(other) != 1 {
		t.Errorf("undisturbed node's stats rows carry epochs %v, want only epoch 0", other)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(3, len(r.Errors))])
	}
}

// TestProfilerDetectorLifecycle: the profiler deploys and undeploys
// like any §3.1 detector, leaving the node's dataflow shape unchanged.
func TestProfilerDetectorLifecycle(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 4, Seed: 3, StatsPeriod: 5})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(60)
	n := r.Node("n2")
	timers := n.NumTimers()
	d := ProfilerDetector(5)
	if _, err := Deploy(n, d); err != nil {
		t.Fatal(err)
	}
	if !n.HasQuery(d.QueryID()) {
		t.Fatal("profiler query not installed")
	}
	r.Run(20)
	if err := Undeploy(n, d); err != nil {
		t.Fatal(err)
	}
	r.Run(20)
	if n.HasQuery(d.QueryID()) {
		t.Fatal("profiler query still installed after undeploy")
	}
	if got := n.NumTimers(); got != timers {
		t.Errorf("timers after undeploy = %d, want %d", got, timers)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(3, len(r.Errors))])
	}
}
