package monitor

import (
	"fmt"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// Chandy-Lamport consistent snapshots over P2 Chord (§3.3).
//
// The algorithm follows the paper: an initiator snaps its state and sends
// marker tuples over all outgoing links (the pingNode set); a node
// receiving a marker for an unseen snapshot snaps its own state, forwards
// markers, and records messages arriving on each incoming link (the
// backPointer set, built from observed pingReq senders, rules bp1-bp2)
// until a marker arrives on that link. Termination is local: when every
// incoming channel is marked Done, the node's snapState becomes "Done".
//
// Adaptations from the paper's listing, documented in DESIGN.md:
//
//   - snap events carry the marker's sender ("-" for self-initiated) so
//     that channel recording can exclude the link the marker arrived on
//     (the paper's sr10/sr11 interleaving is order-sensitive);
//   - channelState is normalized to (NAddr, Remote, SnapID, State) —
//     the paper's listing uses both 4- and 3-argument forms;
//   - messages between non-neighbors (lookup responses) piggy-back the
//     sender's snapshot ID on a companion snapMark event rather than
//     widening the base Chord lookupResults schema (sr14's effect);
//   - message recording (the paper's sr15/sr16 examples) covers the
//     sender-identifying Chord messages (pingReq, stabilizeRequest,
//     notify) in a single chanRec table tagged with the message type.
//
// As in the paper, correctness assumes snapshots finish within the
// initiation period and the overlay is stable during a snapshot; the
// simulated network provides the FIFO channels the algorithm requires.

// SnapshotRules are installed on EVERY node (the initiator additionally
// installs SnapshotInitiatorRules).
const SnapshotRules = `
materialize(backPointer, 30, 64, keys(2)).
materialize(numBackPointers, 30, 1, keys(1)).
materialize(snapState, 100, 100, keys(1,2)).
materialize(currentSnap, infinity, 1, keys(1)).
materialize(snapBestSucc, 100, 50, keys(1,2)).
materialize(snapPred, 100, 50, keys(1,2)).
materialize(snapFingers, 100, 1600, keys(1,2,3)).
materialize(snapUniqFingers, 100, 1600, keys(1,2,3)).
materialize(channelState, 100, 1600, keys(2,3)).
materialize(chanRec, 100, 1600, keys(2,3,4,5)).

/* Incoming-link discovery (bp1-bp2): whoever pings us has us in its
   routing state, i.e. owns a link toward us. */
bp1 backPointer@NAddr(RemoteAddr) :- pingReq@NAddr(RemoteAddr, E).
bp2 numBackPointers@NAddr(count<*>) :- backPointer@NAddr(RemoteAddr).
bp3 numBackPointers@NAddr(count<*>) :- periodic@NAddr(E, 5), backPointer@NAddr(RemoteAddr).

/* Snapshot start: record local state, remember the current snapshot,
   send markers on all outgoing links. snapState keeps one row per
   snapshot ID (not just the latest): sr8's seen-before count must treat
   a late marker for an old snapshot as already seen, otherwise two
   out-of-phase nodes regress each other and ping-pong marker floods —
   the failure mode behind assumption (a) in the paper. */
sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I, Src).
sr3 currentSnap@NAddr(I) :- snap@NAddr(I, Src).
sr4 snapBestSucc@NAddr(I, SAddr, SID) :- snap@NAddr(I, Src), bestSucc@NAddr(SID, SAddr).
sr5 snapFingers@NAddr(I, FPos, FID, FAddr) :- snap@NAddr(I, Src), finger@NAddr(FPos, FID, FAddr).
sr5b snapUniqFingers@NAddr(I, FAddr, FID) :- snap@NAddr(I, Src), uniqueFinger@NAddr(FAddr, FID).
sr6 snapPred@NAddr(I, PAddr, PID) :- snap@NAddr(I, Src), pred@NAddr(PID, PAddr).
sr7 marker@RemoteAddr(NAddr, I) :- snap@NAddr(I, Src), pingNode@NAddr(RemoteAddr), RemoteAddr != NAddr.

/* Marker handling (sr8-sr11): haveSnap counts whether the marker's
   snapshot is already the node's current one (0 = new, 1 = seen). */
sr8 haveSnap@NAddr(Src, I, count<*>) :- marker@NAddr(Src, I), snapState@NAddr(I2, State), I2 == I.
sr9 snap@NAddr(I, Src) :- haveSnap@NAddr(Src, I, 0).
sr10 channelState@NAddr(Remote, I, "Start") :- snap@NAddr(I, Src), backPointer@NAddr(Remote), Remote != Src.
sr10b channelState@NAddr(Src, I, "Done") :- haveSnap@NAddr(Src, I, 0), backPointer@NAddr(Src).
sr11 channelState@NAddr(Src, I, "Done") :- haveSnap@NAddr(Src, I, C), C > 0.

/* Termination (sr12-sr13): all incoming channels done. */
sr12 doneChannels@NAddr(I, count<*>) :- channelState@NAddr(Remote, I, "Done").
sr13 snapState@NAddr(I, "Done") :- doneChannels@NAddr(I, C), numBackPointers@NAddr(C2), C == C2, snapState@NAddr(I, "Snapping").

/* Non-neighbor messages (sr14): every lookup answer or forward is
   accompanied by the handling node's snapshot ID; a newer ID acts as a
   marker, an older one is recorded if the channel is recording. */
sm1 snapMark@ReqAddr(NAddr, I) :- lookup@NAddr(K, ReqAddr, E), currentSnap@NAddr(I), ReqAddr != NAddr.
sr14 snap@NAddr(I, "-") :- snapMark@NAddr(RespAddr, I), currentSnap@NAddr(MyI), I > MyI.
sr14b chanRec@NAddr(I, RespAddr, "lookupResults", T) :- snapMark@NAddr(RespAddr, SrcI), currentSnap@NAddr(I), SrcI < I, channelState@NAddr(RespAddr, I, "Start"), T := f_now().

/* Channel message recording (sr15-style) for sender-identifying
   messages. */
sr15 chanRec@NAddr(I, Src, "pingReq", T) :- pingReq@NAddr(Src, E), currentSnap@NAddr(I), channelState@NAddr(Src, I, "Start"), T := f_now().
sr16 chanRec@NAddr(I, Src, "stabilizeRequest", T) :- stabilizeRequest@NAddr(Src), currentSnap@NAddr(I), channelState@NAddr(Src, I, "Start"), T := f_now().
sr17 chanRec@NAddr(I, Src, "notify", T) :- notify@NAddr(Src, NID), currentSnap@NAddr(I), channelState@NAddr(Src, I, "Start"), T := f_now().

watch(snapDone).
sd1 snapDone@NAddr(I) :- snapState@NAddr(I, "Done").
`

// SnapshotInitiatorRules add the periodic initiator (sr1): every
// tSnapFreq seconds the snapshot ID advances and a new snapshot begins.
func SnapshotInitiatorRules(tSnapFreq float64) string {
	return fmt.Sprintf(`
sr1a maxSnap@NAddr(max<I>) :- periodic@NAddr(E, %g), snapState@NAddr(I, State).
sr1b snap@NAddr(I + 1, "-") :- maxSnap@NAddr(I).
`, tSnapFreq)
}

// SnapshotProgram parses the common snapshot rules.
func SnapshotProgram() *overlog.Program { return overlog.MustParse(SnapshotRules) }

// SnapshotInitiatorProgram parses the initiator add-on.
func SnapshotInitiatorProgram(tSnapFreq float64) *overlog.Program {
	return overlog.MustParse(SnapshotInitiatorRules(tSnapFreq))
}

// InstallSnapshot installs the snapshot machinery on a node and seeds
// snapState/currentSnap with snapshot 0 (completed). If tSnapFreq > 0
// the node also becomes a periodic initiator.
func InstallSnapshot(n *engine.Node, tSnapFreq float64) error {
	if err := n.InstallProgram(SnapshotProgram()); err != nil {
		return fmt.Errorf("monitor: snapshot: %w", err)
	}
	if tSnapFreq > 0 {
		if err := n.InstallProgram(SnapshotInitiatorProgram(tSnapFreq)); err != nil {
			return fmt.Errorf("monitor: snapshot initiator: %w", err)
		}
	}
	addr := n.Addr()
	n.HandleLocal(tuple.New("snapState", tuple.Str(addr), tuple.Int(0), tuple.Str("Done")))
	n.HandleLocal(tuple.New("currentSnap", tuple.Str(addr), tuple.Int(0)))
	return nil
}

// SnapshotLookupRules are the l1s-l3s rules of §3.3: Chord lookups that
// run over a recorded snapshot (snapBestSucc, snapUniqFingers) instead of
// live state. sLookup(NAddr, SnapID, K, ReqAddr, E) events resolve to
// sLookupResults(ReqAddr, SnapID, K, SID, SAddr, E, RespAddr).
const SnapshotLookupRules = `
/* Re-declaring the snapshot tables makes this program installable in any
   order relative to SnapshotRules (materialize is idempotent for
   identical specs). */
materialize(node, infinity, 1, keys(1)).
materialize(snapBestSucc, 100, 50, keys(1,2)).
materialize(snapUniqFingers, 100, 1600, keys(1,2,3)).
materialize(currentSnap, infinity, 1, keys(1)).

l1s sLookupResults@ReqAddr(SnapID, K, SID, SAddr, E, NAddr) :- node@NAddr(NID), sLookup@NAddr(SnapID, K, ReqAddr, E), snapBestSucc@NAddr(SnapID, SAddr, SID), K in (NID, SID].
l2s sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, min<D>) :- node@NAddr(NID), sLookup@NAddr(SnapID, K, ReqAddr, E), snapUniqFingers@NAddr(SnapID, FAddr, FID), D := K - FID - 1, FID in (NID, K).
l3s sLookup@FAddr(SnapID, K, ReqAddr, E) :- sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, D), snapUniqFingers@NAddr(SnapID, FAddr, FID), node@NAddr(NID), D == K - FID - 1, FID in (NID, K).
`

// SnapshotLookupProgram parses l1s-l3s.
func SnapshotLookupProgram() *overlog.Program {
	return overlog.MustParse(SnapshotLookupRules)
}

// SnapshotConsistencyRules rewrite the §3.1.4 consistency probe to run
// its lookups over the current consistent snapshot (the paper's cs4s and
// cs5s): probes observe one frozen global state, eliminating the false
// positives live probes suffer under transient stalls.
func SnapshotConsistencyRules(probePeriod float64) string {
	return fmt.Sprintf(`
materialize(sConLookupTable, 100, 400, keys(2,3)).
materialize(sConRespTable, 100, 400, keys(2,3)).
materialize(sRespCluster, 100, 400, keys(2,3)).
materialize(sMaxCluster, 100, 400, keys(2)).
materialize(sLookupCluster, 100, 400, keys(2)).

cs1s sConProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, %g), K := f_randID(), T := f_now().
cs2s sConLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- sConProbe@NAddr(ProbeID, K, T), uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
cs3s sConLookupTable@NAddr(ProbeID, ReqID, T) :- sConLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T).
cs4s sLookup@SrcAddr(I, K, NAddr, ReqID) :- sConLookup@NAddr(ProbeID, K, SrcAddr, ReqID, T), currentSnap@NAddr(I).
cs5s sConRespTable@NAddr(ProbeID, ReqID, SAddr) :- sLookupResults@NAddr(I, K, SID, SAddr, ReqID, Responder), sConLookupTable@NAddr(ProbeID, ReqID, T).
cs6s sRespCluster@NAddr(ProbeID, SAddr, count<*>) :- sConRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7s sMaxCluster@NAddr(ProbeID, max<Count>) :- sRespCluster@NAddr(ProbeID, SAddr, Count).
cs8s sLookupCluster@NAddr(ProbeID, T, count<*>) :- sConLookupTable@NAddr(ProbeID, ReqID, T).
cs9s sConsistency@NAddr(ProbeID, Cons) :- periodic@NAddr(E, 20), sLookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - 20, sMaxCluster@NAddr(ProbeID, RespCount), Cons := (RespCount * 1.0) / LookupCount.
cs10s delete sLookupCluster@NAddr(ProbeID, T, Count) :- sConsistency@NAddr(ProbeID, Consistency).
cs11s delete sConLookupTable@NAddr(ProbeID, ReqID, T) :- sConsistency@NAddr(ProbeID, Consistency), sConLookupTable@NAddr(ProbeID, ReqID, T).

watch(sConsistency).
`, probePeriod)
}

// SnapshotConsistencyProgram parses the snapshot-based probe.
func SnapshotConsistencyProgram(probePeriod float64) *overlog.Program {
	return overlog.MustParse(SnapshotConsistencyRules(probePeriod))
}

// SnapState reads a node's most recent (snapID, phase), or (0, "") when
// the snapshot machinery is not installed. snapState holds one row per
// snapshot ID within its TTL; the highest ID is the current snapshot.
func SnapState(n *engine.Node) (int64, string) {
	tb := n.Store().Get("snapState")
	if tb == nil {
		return 0, ""
	}
	var id int64 = -1
	phase := ""
	tb.Scan(n.Now(), func(t tuple.Tuple) {
		if v := t.Field(1).AsInt(); v >= id {
			id = v
			phase = t.Field(2).AsStr()
		}
	})
	if id < 0 {
		return 0, ""
	}
	return id, phase
}

// SnappedBestSucc reads the successor address recorded in snapshot
// snapID at node n ("" if none).
func SnappedBestSucc(n *engine.Node, snapID int64) string {
	tb := n.Store().Get("snapBestSucc")
	if tb == nil {
		return ""
	}
	out := ""
	tb.Scan(n.Now(), func(t tuple.Tuple) {
		if t.Field(1).AsInt() == snapID {
			out = t.Field(2).AsStr()
		}
	})
	return out
}
