package monitor

import (
	"testing"

	"p2go/internal/chord"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// oscillTables declares the Chord state os1-os9 join against, for
// synthetic fixtures.
const oscillTables = `
materialize(faultyNode, 300, 16, keys(2)).
materialize(sink, infinity, 1, keys(1)).
materialize(succ, infinity, 16, keys(2)).
materialize(pred, infinity, 1, keys(1)).
`

// TestSingleAndRepeatOscillation drives os1-os4 synthetically: three
// successor-insertion messages carrying a recently deceased neighbor
// within the 120 s window produce three oscill records and, at the next
// 60 s count, a repeatOscill declaration.
func TestSingleAndRepeatOscillation(t *testing.T) {
	s := newSynthNet(t, []string{oscillTables, OscillationRules}, "n1")
	s.inject("n1", tuple.New("faultyNode", tuple.Str("n1"), tuple.Str("x"), tuple.Float(1)))
	s.net.RunFor(1)
	// Two sendPred and one returnSucc carrying the deceased "x".
	for i, name := range []string{"sendPred", "returnSucc", "sendPred"} {
		s.inject("n1", tuple.New(name, tuple.Str("n1"),
			tuple.ID(uint64(100+i)), tuple.Str("x")))
		s.net.RunFor(2)
	}
	// A message carrying a healthy neighbor must not count.
	s.inject("n1", tuple.New("sendPred", tuple.Str("n1"), tuple.ID(5), tuple.Str("y")))
	s.net.RunFor(70) // let the 60 s counting rule os3 fire
	s.noErrors()
	if got := s.count("oscill"); got != 3 {
		t.Errorf("oscill events = %d, want 3", got)
	}
	if got := s.count("repeatOscill"); got < 1 {
		t.Errorf("repeatOscill = %d, want >= 1", got)
	}
	for _, w := range s.watched {
		if w.T.Name == "repeatOscill" && w.T.Field(1).AsStr() != "x" {
			t.Errorf("repeat oscillator = %v, want x", w.T)
		}
	}
}

// TestBelowThresholdNoRepeat: two oscillations stay below the threshold
// of three (os4).
func TestBelowThresholdNoRepeat(t *testing.T) {
	s := newSynthNet(t, []string{oscillTables, OscillationRules}, "n1")
	s.inject("n1", tuple.New("faultyNode", tuple.Str("n1"), tuple.Str("x"), tuple.Float(1)))
	for i := 0; i < 2; i++ {
		s.inject("n1", tuple.New("sendPred", tuple.Str("n1"),
			tuple.ID(uint64(i)), tuple.Str("x")))
	}
	s.net.RunFor(70)
	s.noErrors()
	if got := s.count("repeatOscill"); got != 0 {
		t.Errorf("repeatOscill = %d, want 0 below threshold", got)
	}
}

// TestCollaborativeChaotic drives os5-os9: four ring neighbors each
// declare the same repeat oscillator and notify their common successor
// "m"; with more than three distinct reporters, m declares the offender
// chaotic.
func TestCollaborativeChaotic(t *testing.T) {
	reporters := []string{"r1", "r2", "r3", "r4"}
	all := append(append([]string{}, reporters...), "m")
	s := newSynthNet(t, []string{oscillTables, OscillationRules}, all...)
	// Every reporter has m as a successor; m itself reports too (os5
	// also inserts locally at each reporter, but those live on the
	// reporters, not on m).
	for _, rep := range reporters {
		s.inject(rep, tuple.New("succ", tuple.Str(rep),
			tuple.ID(chord.NodeID("m")), tuple.Str("m")))
		s.inject(rep, tuple.New("pred", tuple.Str(rep), tuple.Int(0), tuple.Str("-")))
		s.inject(rep, tuple.New("faultyNode", tuple.Str(rep), tuple.Str("x"), tuple.Float(1)))
	}
	s.net.RunFor(1)
	for _, rep := range reporters {
		for i := 0; i < 3; i++ {
			s.inject(rep, tuple.New("sendPred", tuple.Str(rep),
				tuple.ID(uint64(i)), tuple.Str("x")))
			s.net.RunFor(1)
		}
	}
	s.net.RunFor(70)
	s.noErrors()
	chaoticAtM := 0
	for _, w := range s.watched {
		if w.T.Name == "chaotic" && w.Node == "m" {
			chaoticAtM++
			if w.T.Field(1).AsStr() != "x" {
				t.Errorf("chaotic offender = %v, want x", w.T)
			}
		}
	}
	if chaoticAtM == 0 {
		t.Error("m did not declare the offender chaotic with 4 reporters")
	}
}

// TestOscillationOnBuggyChord is the end-to-end §3.1.3 scenario: a Chord
// ring built WITHOUT the dead-neighbor guard recycles a crashed node
// through gossip, and the deployed detector observes the oscillations.
func TestOscillationOnBuggyChord(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 13, Buggy: true,
		ExtraPrograms: []*overlog.Program{OscillationProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("buggy ring did not converge while healthy: %v", bad)
	}
	r.Net.Crash("n5")
	r.Run(120)
	oscills := 0
	for _, w := range r.Watched {
		if w.T.Name == "oscill" && w.T.Field(1).AsStr() == "n5" {
			oscills++
		}
	}
	if oscills == 0 {
		t.Error("no oscillations observed for the crashed neighbor on buggy Chord")
	}
}

// TestGuardedChordSuppressesRecycling is the §3.1.3 counterpoint: the
// corrected implementation (remembering deceased neighbors) keeps the
// dead node out of routing state, so the ring heals where the buggy
// variant oscillates (see also bench.AblationDeadGuard).
func TestGuardedChordSuppressesRecycling(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 13,
		ExtraPrograms: []*overlog.Program{OscillationProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("not converged: %v", bad)
	}
	r.Net.Crash("n5")
	r.Run(120)
	members := r.Alive(map[string]bool{"n5": true})
	if bad := r.CheckRing(members); len(bad) > 0 {
		t.Fatalf("guarded ring did not heal: %v", bad)
	}
	// No repeat oscillator should be declared on the guarded variant.
	for _, w := range r.Watched {
		if w.T.Name == "repeatOscill" {
			t.Errorf("guarded ring declared a repeat oscillator: %v", w.T)
		}
	}
}

// TestBuggyChordOscillatesPersistently is the matching positive case: on
// the amnesiac variant a crashed neighbor keeps being recycled, and the
// os3/os4 threshold detector declares a repeat oscillator.
func TestBuggyChordOscillatesPersistently(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 13, Buggy: true,
		ExtraPrograms: []*overlog.Program{OscillationProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("buggy ring did not converge while healthy: %v", bad)
	}
	r.Net.Crash("n5")
	r.Run(150)
	oscills, repeats := 0, 0
	for _, w := range r.Watched {
		switch w.T.Name {
		case "oscill":
			if w.T.Field(1).AsStr() == "n5" {
				oscills++
			}
		case "repeatOscill":
			repeats++
		}
	}
	if oscills < 3 {
		t.Errorf("oscill events = %d, want >= 3", oscills)
	}
	if repeats == 0 {
		t.Error("no repeat oscillator declared on the buggy variant")
	}
}
