package monitor

import "p2go/internal/overlog"

// OscillationRules are the state-oscillation detectors of §3.1.3, at the
// paper's three granularities.
//
// Single oscillation (os1-os2): a successor-insertion message (sendPred
// or returnSucc) carrying a recently deceased neighbor — one found in
// faultyNode — signals one oscillation of the recycled dead neighbor
// problem.
//
// Repeat oscillations (os3-os4): oscillations are stored for 120 s; every
// 60 s the count per offender is taken, and three or more within the
// window declare a repeat oscillator.
//
// Collaborative detection (os5-os9): repeat-oscillator observations are
// shared with the ring neighborhood (successors and predecessor); an
// offender reported by more than three distinct neighbors is declared
// chaotic.
const OscillationRules = `
materialize(oscill, 120, infinity, keys(2,3)).
materialize(nbrOscill, 120, infinity, keys(2,3)).
materialize(monFaulty, 120, infinity, keys(2)).

/* The detector keeps its own 120 s memory of declared deaths (os0): a
   buggy implementation may forget its faultyNode rows — indeed the
   §3.1.3 recycled-dead-neighbor bug IS such forgetting — and a monitor
   that joined the application's table would go blind exactly when the
   bug manifests. */
os0 monFaulty@NAddr(FAddr, T) :- faultyNode@NAddr(FAddr, T).

os1 oscill@NAddr(SAddr, T) :- sendPred@NAddr(SID, SAddr), monFaulty@NAddr(SAddr, T1), T := f_now().
os2 oscill@NAddr(SAddr, T) :- returnSucc@NAddr(SID, SAddr), monFaulty@NAddr(SAddr, T1), T := f_now().

os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, 60), oscill@NAddr(OscillAddr, Time).
os4 repeatOscill@NAddr(OscillAddr) :- countOscill@NAddr(OscillAddr, Count), Count >= 3.

os5 nbrOscill@NAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr).
os6 nbrOscill@SAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr), succ@NAddr(SID, SAddr), SAddr != NAddr.
os7 nbrOscill@PAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr), pred@NAddr(PID, PAddr), PAddr != "-".
os8 nbrOscillCount@NAddr(OscillAddr, count<*>) :- nbrOscill@NAddr(OscillAddr, ReporterAddr).
os9 chaotic@NAddr(OscillAddr) :- nbrOscillCount@NAddr(OscillAddr, Count), Count > 3.

watch(oscill).
watch(repeatOscill).
watch(chaotic).
`

// OscillationProgram parses os1-os9. The nbrOscill table is keyed by
// (offender, reporter) exactly as the paper's materialize statement
// specifies (keys(2,3)), so os8 counts distinct reporters.
func OscillationProgram() *overlog.Program {
	return overlog.MustParse(OscillationRules)
}
