package monitor

import (
	"testing"

	"p2go/internal/chord"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// TestConsistencyProbeHealthy: on a converged ring the consistency
// metric (§3.1.4) is 1.0 — every distinct routing neighbor resolves a
// random key to the same owner — and no alarm fires.
func TestConsistencyProbeHealthy(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300) // converge ring and fingers
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	// Deploy the probe on-line on the measured node only, as in Fig. 6.
	if err := r.Node("n10").InstallProgram(ConsistencyProgram(15)); err != nil {
		t.Fatal(err)
	}
	r.Run(120)
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(3, len(r.Errors))])
	}
	results, alarms := 0, 0
	for _, w := range r.Watched {
		switch w.T.Name {
		case "consistency":
			results++
			if c := w.T.Field(2).AsFloat(); c != 1.0 {
				t.Errorf("consistency = %v on a stable ring, want 1.0", c)
			}
		case "consAlarm":
			alarms++
		}
	}
	if results == 0 {
		t.Error("no consistency results produced in 120s")
	}
	if alarms != 0 {
		t.Errorf("consAlarm fired %d times on a healthy ring", alarms)
	}
}

// TestConsistencyProbeDetectsFailures: crashing several nodes leaves the
// prober with stale fingers pointing at dead nodes for the failure
// detection window; lookups through them go unanswered, so the metric
// drops below 1.0.
func TestConsistencyProbeDetectsFailures(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 12, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	if err := r.Node("n12").InstallProgram(ConsistencyProgram(10)); err != nil {
		t.Fatal(err)
	}
	r.Run(40) // healthy probes first
	// Crash one of the prober's distinct routing neighbors: its probe
	// lookups go unanswered while the others still resolve, so response
	// clusters shrink below the lookup count. (Crashing many nodes
	// instead kills every route and yields zero-response probes, which
	// cs9 — faithfully to the paper — never reports.)
	var victim string
	uf := r.Node("n12").Store().Get("uniqueFinger")
	uf.Scan(r.Sim.Now(), func(tp tuple.Tuple) {
		if a := tp.Field(1).AsStr(); victim == "" && a != "n12" {
			victim = a
		}
	})
	if victim == "" {
		t.Fatal("prober has no remote fingers")
	}
	r.Net.Crash(victim)
	r.Run(60)
	sawDegraded := false
	for _, w := range r.Watched {
		if w.T.Name == "consistency" && w.T.Field(2).AsFloat() < 1.0 {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Errorf("consistency metric never degraded despite crashed finger %s", victim)
	}
}

// TestConsistencyMultipleProbers: probes are independent per node;
// deploying on three nodes yields results on each.
func TestConsistencyMultipleProbers(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 31,
		ExtraPrograms: []*overlog.Program{ConsistencyProgram(20)}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300)
	byNode := map[string]int{}
	for _, w := range r.Watched {
		if w.T.Name == "consistency" {
			byNode[w.Node]++
		}
	}
	if len(byNode) < len(r.Addrs)/2 {
		t.Errorf("consistency results on only %d nodes: %v", len(byNode), byNode)
	}
}

// TestMonitorProgramsParse pins every §3 rule set at representative
// parameters (fractional periods are used by the Figure 6/7 harness).
func TestMonitorProgramsParse(t *testing.T) {
	for _, period := range []float64{0.5, 1, 4.0 / 3, 20, 32} {
		if got := len(ConsistencyProgram(period).Rules()); got != 12 {
			t.Errorf("consistency rules at %v = %d, want 12 (cs1-cs12)", period, got)
		}
		if got := len(SnapshotInitiatorProgram(period).Rules()); got != 2 {
			t.Errorf("initiator rules at %v = %d", period, got)
		}
		if got := len(SnapshotConsistencyProgram(period).Rules()); got != 11 {
			t.Errorf("snapshot-probe rules at %v = %d", period, got)
		}
		if got := len(RingProbeProgram(period).Rules()); got != 6 {
			t.Errorf("ring probe rules at %v = %d", period, got)
		}
	}
	if got := len(SnapshotProgram().Rules()); got < 18 {
		t.Errorf("snapshot rules = %d", got)
	}
	if got := len(OscillationProgram().Rules()); got != 10 {
		t.Errorf("oscillation rules = %d, want os0-os9", got)
	}
	if got := len(SnapshotLookupProgram().Rules()); got != 3 {
		t.Errorf("snapshot lookup rules = %d", got)
	}
	if got := len(OrderingTraversalProgram().Rules()); got != 6 {
		t.Errorf("traversal rules = %d (ri2-ri7)", got)
	}
}
