package monitor

import (
	"fmt"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/tuple"
)

// TestSnapshotCutConsistencyProperty: across randomized message
// interleavings (different seeds randomize delays and event order), a
// snapshot of a stable ring always terminates everywhere and captures a
// cut that is a consistent global state — here verified as: the snapped
// successor relation forms exactly one cycle covering all members, and
// every recorded channel message belongs to the snapshot being taken.
func TestSnapshotCutConsistencyProperty(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r, err := chord.NewRing(chord.RingConfig{
				N: 7, Seed: seed,
				// Randomized, relatively slow links vary marker vs
				// traffic interleaving run to run.
				MinDelay: 0.05, MaxDelay: 0.5,
			})
			if err != nil {
				t.Fatal(err)
			}
			r.Run(400)
			if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
				t.Skipf("ring not converged under this seed: %v", bad)
			}
			for _, a := range r.Addrs {
				if err := InstallSnapshot(r.Node(a), 0); err != nil {
					t.Fatal(err)
				}
			}
			r.Run(30)
			err = r.Net.Inject("n1", tuple.New("snap",
				tuple.Str("n1"), tuple.Int(1), tuple.Str("-")))
			if err != nil {
				t.Fatal(err)
			}
			r.Run(60)

			// Termination everywhere.
			for _, a := range r.Addrs {
				id, phase := SnapState(r.Node(a))
				if id != 1 || phase != "Done" {
					t.Fatalf("%s: snapState = (%d, %s)", a, id, phase)
				}
			}
			// The snapped successor relation is one cycle over all
			// members (a consistent ring image).
			next := map[string]string{}
			for _, a := range r.Addrs {
				s := SnappedBestSucc(r.Node(a), 1)
				if s == "" {
					t.Fatalf("%s: no snapped successor", a)
				}
				next[a] = s
			}
			seen := map[string]bool{}
			cur := "n1"
			for range r.Addrs {
				if seen[cur] {
					t.Fatalf("snapped successor relation re-visits %s early", cur)
				}
				seen[cur] = true
				cur = next[cur]
			}
			if cur != "n1" || len(seen) != len(r.Addrs) {
				t.Fatalf("snapped cut is not a single %d-cycle (reached %s, saw %d)",
					len(r.Addrs), cur, len(seen))
			}
			// Channel recordings, if any, belong to snapshot 1.
			for _, a := range r.Addrs {
				r.Node(a).Store().Get("chanRec").Scan(r.Sim.Now(), func(tp tuple.Tuple) {
					if tp.Field(1).AsInt() != 1 {
						t.Errorf("%s recorded message for snapshot %v", a, tp.Field(1))
					}
				})
			}
		})
	}
}
