package monitor

import (
	"p2go/internal/engine"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// RuleExecRow is a decoded ruleExec reflection row: one causal link
// between a cause tuple (an input event or a precondition) and the
// effect tuple a rule execution produced (§2.1.1).
type RuleExecRow struct {
	Node    string
	Rule    string
	In      uint64
	Out     uint64
	InT     float64
	OutT    float64
	IsEvent bool
}

// RuleExecRows reads a node's ruleExec table (empty when tracing is
// off).
func RuleExecRows(n *engine.Node) []RuleExecRow {
	tb := n.Store().Get(trace.RuleExecTable)
	if tb == nil {
		return nil
	}
	var rows []RuleExecRow
	tb.Scan(n.Now(), func(t tuple.Tuple) {
		if t.Arity() != 7 {
			return
		}
		rows = append(rows, RuleExecRow{
			Node:    t.Field(0).AsStr(),
			Rule:    t.Field(1).AsStr(),
			In:      t.Field(2).AsID(),
			Out:     t.Field(3).AsID(),
			InT:     t.Field(4).AsFloat(),
			OutT:    t.Field(5).AsFloat(),
			IsEvent: t.Field(6).AsBool(),
		})
	})
	return rows
}

// ArrivalTime finds when the tuple with the given local ID was consumed
// as a rule input on node n (the earliest InT among event edges), which
// is the observation time a traceResp event should carry. The second
// result is false when no rule consumed the tuple.
func ArrivalTime(n *engine.Node, tupleID uint64) (float64, bool) {
	found := false
	at := 0.0
	for _, r := range RuleExecRows(n) {
		if r.IsEvent && r.In == tupleID && (!found || r.InT < at) {
			at, found = r.InT, true
		}
	}
	return at, found
}
