package monitor

import (
	"math/rand"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// snapshotRing builds a converged Chord ring with the snapshot machinery
// installed everywhere (no periodic initiator).
func snapshotRing(t *testing.T, n int, seed int64, extra ...*overlog.Program) *chord.Ring {
	t.Helper()
	r, err := chord.NewRing(chord.RingConfig{N: n, Seed: seed, ExtraPrograms: extra})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	for _, a := range r.Addrs {
		if err := InstallSnapshot(r.Node(a), 0); err != nil {
			t.Fatal(err)
		}
	}
	r.Run(30) // warm up backPointer tables
	return r
}

// startSnapshot injects a snap event at the initiator.
func startSnapshot(t *testing.T, r *chord.Ring, initiator string, id int64) {
	t.Helper()
	err := r.Net.Inject(initiator, tuple.New("snap",
		tuple.Str(initiator), tuple.Int(id), tuple.Str("-")))
	if err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCompletesEverywhere: a snapshot started at one node reaches
// every node via markers over the ping topology, records each node's
// routing state, and terminates ("Done") at every node.
func TestSnapshotCompletesEverywhere(t *testing.T) {
	r := snapshotRing(t, 8, 41)
	startSnapshot(t, r, "n1", 1)
	r.Run(60)
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(3, len(r.Errors))])
	}
	for _, a := range r.Addrs {
		id, phase := SnapState(r.Node(a))
		if id != 1 || phase != "Done" {
			t.Errorf("%s: snapState = (%d, %s), want (1, Done)", a, id, phase)
		}
	}
	// On a stable ring, the snapped successor relation is the true one:
	// the cut is a globally consistent ring image.
	for _, a := range r.Addrs {
		want := chord.TrueSuccessor(a, r.Addrs)
		if got := SnappedBestSucc(r.Node(a), 1); got != want {
			t.Errorf("%s: snapped bestSucc = %q, want %q", a, got, want)
		}
	}
	// Fingers and predecessors were recorded too.
	for _, a := range r.Addrs {
		if r.Node(a).Store().Get("snapUniqFingers").Count() == 0 {
			t.Errorf("%s: no snapped fingers", a)
		}
		if r.Node(a).Store().Get("snapPred").Count() == 0 {
			t.Errorf("%s: no snapped pred", a)
		}
	}
}

// TestSnapshotChannelsRecordInFlightMessages: channels record Chord
// traffic (pings, stabilization) that arrives between the local snap and
// the marker on that channel. Slow links (0.2-1 s) stretch the recording
// windows so in-flight messages are reliably caught.
func TestSnapshotChannelsRecordInFlightMessages(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 8, Seed: 43,
		MinDelay: 0.2, MaxDelay: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(400)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	for _, a := range r.Addrs {
		if err := InstallSnapshot(r.Node(a), 0); err != nil {
			t.Fatal(err)
		}
	}
	r.Run(30)
	startSnapshot(t, r, "n1", 1)
	r.Run(60)
	total := 0
	for _, a := range r.Addrs {
		total += r.Node(a).Store().Get("chanRec").Count()
	}
	// With 8 nodes pinging and stabilizing every 5 s, some messages are
	// in flight during any multi-round snapshot.
	if total == 0 {
		t.Error("no channel messages recorded during the snapshot")
	}
	// Every recorded message belongs to snapshot 1 and names a known
	// message type.
	known := map[string]bool{"pingReq": true, "stabilizeRequest": true,
		"notify": true, "lookupResults": true}
	for _, a := range r.Addrs {
		r.Node(a).Store().Get("chanRec").Scan(r.Sim.Now(), func(tp tuple.Tuple) {
			if tp.Field(1).AsInt() != 1 {
				t.Errorf("chanRec for snapshot %v", tp.Field(1))
			}
			if !known[tp.Field(3).AsStr()] {
				t.Errorf("unknown recorded message type %v", tp)
			}
		})
	}
}

// TestRepeatedSnapshots: successive snapshots with increasing IDs each
// complete; older snapshot state coexists until its TTL.
func TestRepeatedSnapshots(t *testing.T) {
	r := snapshotRing(t, 6, 47)
	for id := int64(1); id <= 3; id++ {
		startSnapshot(t, r, "n1", id)
		r.Run(25)
	}
	for _, a := range r.Addrs {
		id, phase := SnapState(r.Node(a))
		if id != 3 || phase != "Done" {
			t.Errorf("%s: snapState = (%d, %s), want (3, Done)", a, id, phase)
		}
	}
}

// TestPeriodicInitiator: installing the sr1 initiator advances snapshots
// automatically (the Figure 7 workload).
func TestPeriodicInitiator(t *testing.T) {
	r, err := chord.NewRing(chord.RingConfig{N: 6, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(250)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	for i, a := range r.Addrs {
		freq := 0.0
		if i == 0 {
			freq = 20
		}
		if err := InstallSnapshot(r.Node(a), freq); err != nil {
			t.Fatal(err)
		}
	}
	r.Run(100)
	id, phase := SnapState(r.Node("n1"))
	if id < 3 || phase != "Done" {
		t.Errorf("initiator snapState = (%d, %s), want several completed snapshots", id, phase)
	}
	// Non-initiators follow the initiator's IDs.
	id2, _ := SnapState(r.Node("n4"))
	if id2 < id-1 {
		t.Errorf("n4 snapshot id = %d, initiator at %d", id2, id)
	}
}

// TestSnapshotLookups: lookups over the snapshot (l1s-l3s) resolve keys
// to the same owners as the live converged ring.
func TestSnapshotLookups(t *testing.T) {
	r := snapshotRing(t, 8, 53,
		SnapshotLookupProgram(), chord.WatchProgram("sLookupResults"))
	startSnapshot(t, r, "n1", 1)
	r.Run(60)
	rng := rand.New(rand.NewSource(5))
	wants := map[uint64]string{}
	for i := 0; i < 10; i++ {
		key := rng.Uint64()
		e := uint64(5000 + i)
		wants[e] = chord.TrueOwner(key, r.Addrs)
		err := r.Net.Inject("n2", tuple.New("sLookup",
			tuple.Str("n2"), tuple.Int(1), tuple.ID(key), tuple.Str("n2"), tuple.ID(e)))
		if err != nil {
			t.Fatal(err)
		}
	}
	r.Run(30)
	got := map[uint64]string{}
	for _, w := range r.Watched {
		if w.T.Name == "sLookupResults" {
			// sLookupResults(ReqAddr, SnapID, K, SID, SAddr, E, Resp)
			got[w.T.Field(5).AsID()] = w.T.Field(4).AsStr()
		}
	}
	for e, want := range wants {
		owner, ok := got[e]
		if !ok {
			t.Errorf("snapshot lookup %d: no response", e)
			continue
		}
		if owner != want {
			t.Errorf("snapshot lookup %d: owner %s, want %s", e, owner, want)
		}
	}
}

// TestSnapshotConsistencyProbe: the §3.3 "Routing Consistency Revisited"
// probe over a frozen snapshot reports consistency 1.0 on a stable ring.
func TestSnapshotConsistencyProbe(t *testing.T) {
	r := snapshotRing(t, 8, 59, SnapshotLookupProgram())
	startSnapshot(t, r, "n1", 1)
	r.Run(40)
	if err := r.Node("n8").InstallProgram(SnapshotConsistencyProgram(15)); err != nil {
		t.Fatal(err)
	}
	r.Run(80)
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(3, len(r.Errors))])
	}
	results := 0
	for _, w := range r.Watched {
		if w.T.Name == "sConsistency" {
			results++
			if c := w.T.Field(2).AsFloat(); c != 1.0 {
				t.Errorf("snapshot consistency = %v, want 1.0", c)
			}
		}
	}
	if results == 0 {
		t.Error("no snapshot-consistency results produced")
	}
}
