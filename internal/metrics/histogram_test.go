package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestBucketBoundaries pins the log-bucket function: exact powers of
// two land on their bucket's upper bound (inclusive), everything at or
// below HistBase in bucket 0, everything huge in the last bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{HistBase / 2, 0},
		{HistBase, 0},          // upper bound of bucket 0, inclusive
		{HistBase * 1.5, 1},    // (1µs, 2µs]
		{HistBase * 2, 1},      // exact power of two: inclusive upper bound
		{HistBase * 2.0001, 2}, // just past it
		{HistBase * 4, 2},
		{1.0, 20}, // 1 s = 2^20 µs exactly → bucket 20 upper bound
		{math.MaxFloat64, HistBuckets - 1},
		{math.Inf(1), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bucket bound must map into its own bucket (inclusive
	// upper bound), and one ulp above must map to the next.
	for i := 0; i < HistBuckets-1; i++ {
		b := BucketBound(i)
		if got := bucketOf(b); got != i {
			t.Errorf("bucketOf(BucketBound(%d)=%v) = %d, want %d", i, b, got, i)
		}
		if got := bucketOf(math.Nextafter(b, math.Inf(1))); got != i+1 {
			t.Errorf("bucketOf(just above bound %d) = %d, want %d", i, got, i+1)
		}
	}
	if !math.IsInf(BucketBound(HistBuckets-1), 1) {
		t.Error("last bucket bound must be +Inf")
	}
}

func TestHistogramObserveQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// 100 observations of 3 µs (bucket 2: (2µs, 4µs]) and 100 of ~1 ms
	// (bucket 10: (512µs, 1024µs]).
	for i := 0; i < 100; i++ {
		h.Observe(3e-6)
		h.Observe(1e-3)
	}
	if h.Count() != 200 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 100*3e-6 + 100*1e-3; math.Abs(h.Sum()-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	if got, want := h.Quantile(0.25), BucketBound(2); got != want {
		t.Errorf("p25 = %v, want bucket-2 bound %v", got, want)
	}
	if got, want := h.Quantile(0.99), BucketBound(10); got != want {
		t.Errorf("p99 = %v, want bucket-10 bound %v", got, want)
	}
	if got := h.Mean(); math.Abs(got-h.Sum()/200) > 1e-15 {
		t.Errorf("mean = %v", got)
	}
}

// TestHistogramQuantileEdgeCases pins the clamping contract: q outside
// (0, 1] resolves to the first/last recorded observation and the result
// is always finite — a q marginally above 1 (accumulated float error in
// callers) used to walk past every bucket and report +Inf.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	single := func(v float64, n int) Histogram {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
		return h
	}
	two := single(3e-6, 50)
	for i := 0; i < 50; i++ {
		two.Observe(1e-3)
	}
	lastLower := HistBase * math.Ldexp(1, HistBuckets-2)
	cases := []struct {
		name string
		h    Histogram
		q    float64
		want float64
	}{
		{"empty q=0", Histogram{}, 0, 0},
		{"empty q=1", Histogram{}, 1, 0},
		{"empty q=NaN", Histogram{}, math.NaN(), 0},
		{"single-bucket q=0", single(3e-6, 9), 0, BucketBound(2)},
		{"single-bucket q=0.5", single(3e-6, 9), 0.5, BucketBound(2)},
		{"single-bucket q=1", single(3e-6, 9), 1, BucketBound(2)},
		{"single-observation q=1", single(1e-3, 1), 1, BucketBound(10)},
		{"q below zero clamps to first", two, -0.5, BucketBound(2)},
		{"q=NaN clamps to first", two, math.NaN(), BucketBound(2)},
		{"q above one clamps to last", two, 1.0000001, BucketBound(10)},
		{"two-bucket q=0.5 boundary", two, 0.5, BucketBound(2)},
		{"two-bucket q just past half", two, 0.51, BucketBound(10)},
		// The unbounded last bucket reports its finite lower bound, never
		// +Inf — even for q=1 and beyond.
		{"last bucket q=1", single(math.Inf(1), 3), 1, lastLower},
		{"last bucket q=2", single(math.Inf(1), 3), 2, lastLower},
	}
	for _, tc := range cases {
		got := tc.h.Quantile(tc.q)
		if math.IsInf(got, 0) || got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestHistogramMergeEdgeCases: merging empty histograms in either
// direction is the identity, and quantiles of a merge agree with the
// merged population.
func TestHistogramMergeEdgeCases(t *testing.T) {
	var empty, h Histogram
	for i := 0; i < 4; i++ {
		h.Observe(3e-6)
	}
	snap := h
	h.Merge(empty)
	if h.Count() != snap.Count() || h.Sum() != snap.Sum() || h.Encode() != snap.Encode() {
		t.Errorf("merge of empty changed histogram: %s vs %s", h.Encode(), snap.Encode())
	}
	empty.Merge(h)
	if empty.Encode() != h.Encode() {
		t.Errorf("merge into empty differs: %s vs %s", empty.Encode(), h.Encode())
	}
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(3e-6) // bucket 2
	}
	b.Observe(1e-3) // bucket 10
	a.Merge(b)
	if got, want := a.Quantile(1), BucketBound(10); got != want {
		t.Errorf("post-merge max quantile = %v, want %v", got, want)
	}
	if got, want := a.Quantile(0.5), BucketBound(2); got != want {
		t.Errorf("post-merge median = %v, want %v", got, want)
	}
}

func TestHistogramMergeSub(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(5e-6)
	}
	for i := 0; i < 7; i++ {
		b.Observe(1e-3)
	}
	snap := a // value copy is a snapshot
	a.Merge(b)
	if a.Count() != 17 {
		t.Errorf("merged count = %d, want 17", a.Count())
	}
	d := a.Sub(snap)
	if d.Count() != 7 || math.Abs(d.Sum()-7e-3) > 1e-12 {
		t.Errorf("delta count=%d sum=%v, want 7 / 7e-3", d.Count(), d.Sum())
	}
	if snap.Count() != 10 {
		t.Error("snapshot mutated by Merge")
	}
	// Windowed delta of an untouched histogram is empty.
	z := a.Sub(a)
	if z.Count() != 0 || z.Sum() != 0 {
		t.Errorf("self-delta = %d/%v, want empty", z.Count(), z.Sum())
	}
	for i := 0; i < HistBuckets; i++ {
		if z.BucketCount(i) != 0 {
			t.Fatalf("self-delta bucket %d = %d", i, z.BucketCount(i))
		}
	}
}

func TestHistogramEncodeDeterministic(t *testing.T) {
	var h Histogram
	h.Observe(3e-6)
	h.Observe(3e-6)
	h.Observe(1.0)
	enc := h.Encode()
	if !strings.HasPrefix(enc, "3 ") {
		t.Errorf("encode = %q, want count prefix", enc)
	}
	if !strings.Contains(enc, "b2:2") || !strings.Contains(enc, "b20:1") {
		t.Errorf("encode = %q, want b2:2 and b20:1", enc)
	}
	var h2 Histogram
	h2.Observe(1.0)
	h2.Observe(3e-6)
	h2.Observe(3e-6)
	if h2.Encode() != enc {
		t.Errorf("encoding depends on observation order: %q vs %q", h2.Encode(), enc)
	}
}

func TestNodeHistsMergeSub(t *testing.T) {
	var a, b NodeHists
	a.HopLatency.Observe(0.01)
	a.StrandCost.Observe(1e-4)
	b.HopLatency.Observe(0.02)
	b.QueueDepth.Observe(3)
	snap := a
	a.Merge(b)
	if a.HopLatency.Count() != 2 || a.QueueDepth.Count() != 1 {
		t.Errorf("merge: hop=%d depth=%d", a.HopLatency.Count(), a.QueueDepth.Count())
	}
	d := a.Sub(snap)
	if d.HopLatency.Count() != 1 || d.StrandCost.Count() != 0 {
		t.Errorf("sub: hop=%d strand=%d", d.HopLatency.Count(), d.StrandCost.Count())
	}
}

func TestSeriesRing(t *testing.T) {
	r := NewSeriesRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 1; i <= 5; i++ {
		r.Record(SeriesPoint{T: float64(i), Window: 1})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	pts := r.Points()
	if pts[0].T != 3 || pts[1].T != 4 || pts[2].T != 5 {
		t.Errorf("points = %v, want oldest-first 3,4,5", []float64{pts[0].T, pts[1].T, pts[2].T})
	}
	// Degenerate capacity is clamped to 1.
	r1 := NewSeriesRing(0)
	r1.Record(SeriesPoint{T: 9})
	if r1.Len() != 1 || r1.Points()[0].T != 9 {
		t.Error("capacity-clamped ring broken")
	}
}

func TestCountersEnumeration(t *testing.T) {
	n := Node{BusySeconds: 1.25, MsgsSent: 3, TimerFires: 9}
	cs := n.Counters()
	if len(cs) != 12 {
		t.Fatalf("node counters = %d, want 12", len(cs))
	}
	byName := map[string]Counter{}
	for _, c := range cs {
		byName[c.Name] = c
	}
	if c := byName["BusySeconds"]; !c.IsFloat || c.Float() != 1.25 {
		t.Errorf("BusySeconds counter = %+v", c)
	}
	if c := byName["MsgsSent"]; c.IsFloat || c.Float() != 3 {
		t.Errorf("MsgsSent counter = %+v", c)
	}
	q := Query{BusySeconds: 0.5, RuleFires: 2}
	qs := q.Counters()
	if len(qs) != 4 {
		t.Fatalf("query counters = %d, want 4", len(qs))
	}
	if qs[0].Name != "BusySeconds" || qs[0].Float() != 0.5 {
		t.Errorf("query counter order broken: %+v", qs[0])
	}
}

func TestQuerySubRoundTrip(t *testing.T) {
	var q Query
	q.BusySeconds, q.RuleFires = 2.5, 10
	prev := q.Snapshot()
	q.BusySeconds, q.RuleFires, q.TimerFires = 4.0, 13, 2
	d := q.Sub(prev)
	if d.BusySeconds != 1.5 || d.RuleFires != 3 || d.TimerFires != 2 {
		t.Errorf("delta = %+v", d)
	}
	if prev.RuleFires != 10 {
		t.Error("snapshot mutated")
	}
}
