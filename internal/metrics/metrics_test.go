package metrics

import "testing"

func TestSubAndSnapshot(t *testing.T) {
	var n Node
	n.BusySeconds = 1.5
	n.MsgsSent = 10
	n.TuplesProcessed = 100
	prev := n.Snapshot()
	n.BusySeconds = 2.0
	n.MsgsSent = 25
	n.TuplesProcessed = 140
	n.RuleFires = 7
	d := n.Sub(prev)
	if d.BusySeconds != 0.5 || d.MsgsSent != 15 || d.TuplesProcessed != 40 || d.RuleFires != 7 {
		t.Errorf("delta = %+v", d)
	}
	// Snapshot is a copy.
	if prev.MsgsSent != 10 {
		t.Error("snapshot mutated")
	}
}

func TestCPUPercent(t *testing.T) {
	if got := CPUPercent(0.5, 100); got != 0.5 {
		t.Errorf("CPUPercent = %v", got)
	}
	if got := CPUPercent(1, 0); got != 0 {
		t.Errorf("zero window must yield 0, got %v", got)
	}
	if got := CPUPercent(2, 2); got != 100 {
		t.Errorf("full utilization = %v", got)
	}
}
