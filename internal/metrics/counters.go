package metrics

// Counter is one named counter value in the canonical enumeration the
// stats-publication tables and the Prometheus writer share. Exactly one
// of F/I is meaningful, selected by IsFloat.
type Counter struct {
	// Name is the counter's name as it appears in the nodeStats and
	// queryStats system tables (the Go field name).
	Name string
	// Prom is the Prometheus metric stem (snake case, no p2_ prefix or
	// _total suffix).
	Prom    string
	IsFloat bool
	F       float64
	I       int64
}

// Float returns the counter's value as a float64 regardless of kind.
func (c Counter) Float() float64 {
	if c.IsFloat {
		return c.F
	}
	return float64(c.I)
}

// Counters enumerates the node counters in a fixed canonical order —
// the single source of truth for stats publication, the Prometheus
// writer, and the OverLog profiler's expectations.
func (n Node) Counters() []Counter {
	return []Counter{
		{Name: "BusySeconds", Prom: "busy_seconds", IsFloat: true, F: n.BusySeconds},
		{Name: "MsgsSent", Prom: "msgs_sent", I: n.MsgsSent},
		{Name: "MsgsRecv", Prom: "msgs_recv", I: n.MsgsRecv},
		{Name: "BytesSent", Prom: "bytes_sent", I: n.BytesSent},
		{Name: "BytesRecv", Prom: "bytes_recv", I: n.BytesRecv},
		{Name: "TuplesProcessed", Prom: "tuples_processed", I: n.TuplesProcessed},
		{Name: "RuleFires", Prom: "rule_fires", I: n.RuleFires},
		{Name: "HeadsEmitted", Prom: "heads_emitted", I: n.HeadsEmitted},
		{Name: "RuleErrors", Prom: "rule_errors", I: n.RuleErrors},
		{Name: "TimerFires", Prom: "timer_fires", I: n.TimerFires},
		{Name: "AggApplies", Prom: "agg_applies", I: n.AggApplies},
		{Name: "AggRebuilds", Prom: "agg_rebuilds", I: n.AggRebuilds},
	}
}

// Counters enumerates the per-query counters in a fixed canonical order.
func (q Query) Counters() []Counter {
	return []Counter{
		{Name: "BusySeconds", Prom: "query_busy_seconds", IsFloat: true, F: q.BusySeconds},
		{Name: "RuleFires", Prom: "query_rule_fires", I: q.RuleFires},
		{Name: "HeadsEmitted", Prom: "query_heads_emitted", I: q.HeadsEmitted},
		{Name: "TimerFires", Prom: "query_timer_fires", I: q.TimerFires},
	}
}
