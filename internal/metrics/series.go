package metrics

// SeriesPoint is one windowed observation of a node: the counter deltas
// over the window plus the instantaneous live-tuple count at its end.
// The bench harness samples these sub-windows so the CPU/message/tuple
// curves of Figures 4-7 come out of one code path.
type SeriesPoint struct {
	// T is the virtual (or wall) time at the end of the window.
	T float64 `json:"t"`
	// Window is the window length in seconds.
	Window float64 `json:"window"`
	// Node holds the counter deltas accumulated during the window.
	Node Node `json:"node"`
	// LiveTuples is the node's live soft-state tuple count at T.
	LiveTuples int `json:"liveTuples"`
}

// CPUPercent is the window's CPU utilization in percent.
func (p SeriesPoint) CPUPercent() float64 {
	return CPUPercent(p.Node.BusySeconds, p.Window)
}

// SeriesRing is a bounded ring of SeriesPoints: a fixed-memory
// time-series buffer of windowed Node.Sub snapshots. The zero value is
// unusable; construct with NewSeriesRing.
type SeriesRing struct {
	buf  []SeriesPoint
	next int
	n    int
}

// NewSeriesRing creates a ring holding the most recent max points.
func NewSeriesRing(max int) *SeriesRing {
	if max < 1 {
		max = 1
	}
	return &SeriesRing{buf: make([]SeriesPoint, max)}
}

// Record appends a point, evicting the oldest when full.
func (r *SeriesRing) Record(p SeriesPoint) {
	r.buf[r.next] = p
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Len returns the number of stored points.
func (r *SeriesRing) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *SeriesRing) Cap() int { return len(r.buf) }

// Points returns the stored points, oldest first.
func (r *SeriesRing) Points() []SeriesPoint {
	out := make([]SeriesPoint, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
