// Package metrics accumulates the per-node measurements the paper's
// evaluation reports: simulated CPU time, messages and bytes on the wire,
// rule firings and tuple counts. The benchmark harness samples these
// counters to produce the CPU-utilization, message-count and live-tuple
// series of Figures 4-7.
//
// CPU is a cost model, not an OS measurement: every dataflow operation
// bills a calibrated number of simulated seconds (see
// dataflow.Cost* constants and DESIGN.md §4). Utilization is busy time
// over elapsed virtual time.
package metrics

// Node holds monotonically increasing counters for one node.
type Node struct {
	// BusySeconds is accumulated simulated CPU time.
	BusySeconds float64
	// MsgsSent / MsgsRecv count network messages (tuples crossing
	// nodes).
	MsgsSent int64
	MsgsRecv int64
	// BytesSent / BytesRecv count marshaled payload bytes.
	BytesSent int64
	BytesRecv int64
	// TuplesProcessed counts tuples drained from the node's queue
	// (events, inserts and deletes).
	TuplesProcessed int64
	// RuleFires counts strand activations.
	RuleFires int64
	// HeadsEmitted counts head tuples produced.
	HeadsEmitted int64
	// RuleErrors counts runtime rule evaluation errors.
	RuleErrors int64
	// TimerFires counts periodic trigger firings.
	TimerFires int64
	// AggApplies counts incremental aggregate accumulator updates (one
	// per primary-table change folded in O(delta) instead of a rescan).
	AggApplies int64
	// AggRebuilds counts accumulator rebuilds (first trigger after
	// wiring, invalidation by a secondary-table change, or bulk clear).
	AggRebuilds int64
}

// Snapshot returns a copy of the counters.
func (n *Node) Snapshot() Node { return *n }

// Sub returns the counter deltas n - prev (for windowed measurements).
func (n Node) Sub(prev Node) Node {
	return Node{
		BusySeconds:     n.BusySeconds - prev.BusySeconds,
		MsgsSent:        n.MsgsSent - prev.MsgsSent,
		MsgsRecv:        n.MsgsRecv - prev.MsgsRecv,
		BytesSent:       n.BytesSent - prev.BytesSent,
		BytesRecv:       n.BytesRecv - prev.BytesRecv,
		TuplesProcessed: n.TuplesProcessed - prev.TuplesProcessed,
		RuleFires:       n.RuleFires - prev.RuleFires,
		HeadsEmitted:    n.HeadsEmitted - prev.HeadsEmitted,
		RuleErrors:      n.RuleErrors - prev.RuleErrors,
		TimerFires:      n.TimerFires - prev.TimerFires,
		AggApplies:      n.AggApplies - prev.AggApplies,
		AggRebuilds:     n.AggRebuilds - prev.AggRebuilds,
	}
}

// SystemQuery is the reserved query ID that absorbs costs not
// attributable to any installed query: the network preamble (unmarshal,
// demux) and postamble (marshal), table sweeps, restarts, and the
// engine's own bookkeeping. Per-query bills plus the system bill always
// sum to the node totals.
const SystemQuery = "system"

// Query holds per-query resource attribution counters for one node: the
// slice of the node's work billed to strands installed under one query
// ID (ACME-style per-query monitoring bills).
type Query struct {
	// BusySeconds is simulated CPU billed to this query's strands.
	BusySeconds float64
	// RuleFires counts activations of this query's strands.
	RuleFires int64
	// HeadsEmitted counts head tuples produced by this query's strands.
	HeadsEmitted int64
	// TimerFires counts firings of this query's periodic triggers.
	TimerFires int64
}

// Snapshot returns a copy of the counters.
func (q *Query) Snapshot() Query { return *q }

// Sub returns the counter deltas q - prev (for windowed measurements).
func (q Query) Sub(prev Query) Query {
	return Query{
		BusySeconds:  q.BusySeconds - prev.BusySeconds,
		RuleFires:    q.RuleFires - prev.RuleFires,
		HeadsEmitted: q.HeadsEmitted - prev.HeadsEmitted,
		TimerFires:   q.TimerFires - prev.TimerFires,
	}
}

// Faults counts fault-injection activity: how many scenario events were
// applied, what they did to nodes and links, and how many messages the
// message-level faults (targeted drop, duplication, reordering, delay
// jitter) actually touched. The simnet network owns the node/link and
// message counters; the faults injector fills Injected.
type Faults struct {
	// Injected counts scenario events applied by the injector.
	Injected int64
	// Crashes / Restarts / Rejoins count node lifecycle transitions
	// (a Rejoin is a restart with soft-state loss).
	Crashes  int64
	Restarts int64
	Rejoins  int64
	// Partitions / Heals count link severing and restoration events.
	Partitions int64
	Heals      int64
	// LinkFaults counts link-fault table updates (set or clear).
	LinkFaults int64
	// MsgsDropped counts messages killed by targeted drops (on top of
	// the network's base loss, which Network.Dropped reports).
	MsgsDropped int64
	// MsgsDuplicated / MsgsReordered / MsgsDelayed count messages the
	// respective link fault touched.
	MsgsDuplicated int64
	MsgsReordered  int64
	MsgsDelayed    int64
}

// Add accumulates other's counters into f.
func (f *Faults) Add(other Faults) {
	f.Injected += other.Injected
	f.Crashes += other.Crashes
	f.Restarts += other.Restarts
	f.Rejoins += other.Rejoins
	f.Partitions += other.Partitions
	f.Heals += other.Heals
	f.LinkFaults += other.LinkFaults
	f.MsgsDropped += other.MsgsDropped
	f.MsgsDuplicated += other.MsgsDuplicated
	f.MsgsReordered += other.MsgsReordered
	f.MsgsDelayed += other.MsgsDelayed
}

// CPUPercent converts a windowed busy time into utilization of the
// window, in percent.
func CPUPercent(busySeconds, windowSeconds float64) float64 {
	if windowSeconds <= 0 {
		return 0
	}
	return 100 * busySeconds / windowSeconds
}
