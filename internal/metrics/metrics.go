// Package metrics accumulates the per-node measurements the paper's
// evaluation reports: simulated CPU time, messages and bytes on the wire,
// rule firings and tuple counts. The benchmark harness samples these
// counters to produce the CPU-utilization, message-count and live-tuple
// series of Figures 4-7.
//
// CPU is a cost model, not an OS measurement: every dataflow operation
// bills a calibrated number of simulated seconds (see
// dataflow.Cost* constants and DESIGN.md §4). Utilization is busy time
// over elapsed virtual time.
package metrics

// Node holds monotonically increasing counters for one node.
type Node struct {
	// BusySeconds is accumulated simulated CPU time.
	BusySeconds float64
	// MsgsSent / MsgsRecv count network messages (tuples crossing
	// nodes).
	MsgsSent int64
	MsgsRecv int64
	// BytesSent / BytesRecv count marshaled payload bytes.
	BytesSent int64
	BytesRecv int64
	// TuplesProcessed counts tuples drained from the node's queue
	// (events, inserts and deletes).
	TuplesProcessed int64
	// RuleFires counts strand activations.
	RuleFires int64
	// HeadsEmitted counts head tuples produced.
	HeadsEmitted int64
	// RuleErrors counts runtime rule evaluation errors.
	RuleErrors int64
	// TimerFires counts periodic trigger firings.
	TimerFires int64
}

// Snapshot returns a copy of the counters.
func (n *Node) Snapshot() Node { return *n }

// Sub returns the counter deltas n - prev (for windowed measurements).
func (n Node) Sub(prev Node) Node {
	return Node{
		BusySeconds:     n.BusySeconds - prev.BusySeconds,
		MsgsSent:        n.MsgsSent - prev.MsgsSent,
		MsgsRecv:        n.MsgsRecv - prev.MsgsRecv,
		BytesSent:       n.BytesSent - prev.BytesSent,
		BytesRecv:       n.BytesRecv - prev.BytesRecv,
		TuplesProcessed: n.TuplesProcessed - prev.TuplesProcessed,
		RuleFires:       n.RuleFires - prev.RuleFires,
		HeadsEmitted:    n.HeadsEmitted - prev.HeadsEmitted,
		RuleErrors:      n.RuleErrors - prev.RuleErrors,
		TimerFires:      n.TimerFires - prev.TimerFires,
	}
}

// CPUPercent converts a windowed busy time into utilization of the
// window, in percent.
func CPUPercent(busySeconds, windowSeconds float64) float64 {
	if windowSeconds <= 0 {
		return 0
	}
	return 100 * busySeconds / windowSeconds
}
