package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders one node's counters, per-query bills and
// histograms in the Prometheus text exposition format (version 0.0.4):
// every engine counter as p2_<name>_total{node=...}, every per-query
// counter as p2_<name>_total{node=...,query=...} with query IDs sorted,
// and each NodeHists histogram with cumulative le buckets. Output is
// deterministic byte for byte for equal inputs: fixed counter order,
// sorted query IDs, shortest-round-trip float formatting.
//
// extras are additional monotone counters rendered exactly like the
// node counters, in slice order after them — the engine passes its
// observability extras (engine.Node.ObsCounters: speculation and
// trace-store totals) here, so the /metrics surface exposes counters
// that deliberately live outside metrics.Node.
//
// The realtime driver serves this from an HTTP /metrics endpoint (see
// realtime.UDPNode.ServeMetrics); the simulation harness writes it to
// files next to exported traces.
func WritePrometheus(w io.Writer, node string, m Node, queries map[string]Query, hists *NodeHists, extras ...Counter) error {
	ew := &errWriter{w: w}
	for _, c := range m.Counters() {
		fmt.Fprintf(ew, "# TYPE p2_%s_total counter\n", c.Prom)
		fmt.Fprintf(ew, "p2_%s_total{node=%q} %s\n", c.Prom, node, formatValue(c))
	}
	for _, c := range extras {
		fmt.Fprintf(ew, "# TYPE p2_%s_total counter\n", c.Prom)
		fmt.Fprintf(ew, "p2_%s_total{node=%q} %s\n", c.Prom, node, formatValue(c))
	}
	ids := make([]string, 0, len(queries))
	for id := range queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) > 0 {
		// One TYPE header per metric, then all query series under it.
		for _, c := range queries[ids[0]].Counters() {
			fmt.Fprintf(ew, "# TYPE p2_%s_total counter\n", c.Prom)
			for _, id := range ids {
				for _, qc := range queries[id].Counters() {
					if qc.Prom == c.Prom {
						fmt.Fprintf(ew, "p2_%s_total{node=%q,query=%q} %s\n",
							qc.Prom, node, id, formatValue(qc))
					}
				}
			}
		}
	}
	if hists != nil {
		writeHist(ew, "p2_hop_latency_seconds", node, &hists.HopLatency)
		writeHist(ew, "p2_strand_cost_seconds", node, &hists.StrandCost)
		writeHist(ew, "p2_queue_wait_seconds", node, &hists.QueueWait)
		writeHist(ew, "p2_queue_depth_tasks", node, &hists.QueueDepth)
	}
	return ew.err
}

// writeHist emits one histogram with cumulative buckets. Buckets past
// the last non-empty one carry no information beyond +Inf and are
// omitted (Prometheus permits sparse bucket sets).
func writeHist(w io.Writer, name, node string, h *Histogram) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	last := -1
	for i := 0; i < HistBuckets; i++ {
		if h.BucketCount(i) != 0 {
			last = i
		}
	}
	var cum int64
	for i := 0; i <= last && i < HistBuckets-1; i++ {
		cum += h.BucketCount(i)
		fmt.Fprintf(w, "%s_bucket{node=%q,le=%q} %d\n",
			name, node, strconv.FormatFloat(BucketBound(i), 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{node=%q,le=\"+Inf\"} %d\n", name, node, h.Count())
	fmt.Fprintf(w, "%s_sum{node=%q} %s\n", name, node, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count{node=%q} %d\n", name, node, h.Count())
}

func formatValue(c Counter) string {
	if c.IsFloat {
		return formatFloat(c.F)
	}
	return strconv.FormatInt(c.I, 10)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so the formatted emission
// code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
