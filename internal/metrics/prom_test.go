package metrics

import (
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exposition format: counter lines
// with node labels, per-query series sorted by query ID, histogram
// cumulative buckets ending in +Inf, and byte-determinism.
func TestWritePrometheusFormat(t *testing.T) {
	m := Node{BusySeconds: 1.5, MsgsSent: 42}
	queries := map[string]Query{
		"zeta":      {BusySeconds: 0.25, RuleFires: 2},
		"mon:probe": {BusySeconds: 1.0, RuleFires: 9},
	}
	var hists NodeHists
	hists.HopLatency.Observe(0.015)
	hists.HopLatency.Observe(0.015)

	var b strings.Builder
	if err := WritePrometheus(&b, "n7", m, queries, &hists); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE p2_busy_seconds_total counter\n",
		`p2_busy_seconds_total{node="n7"} 1.5`,
		`p2_msgs_sent_total{node="n7"} 42`,
		`p2_query_busy_seconds_total{node="n7",query="mon:probe"} 1`,
		`p2_query_busy_seconds_total{node="n7",query="zeta"} 0.25`,
		"# TYPE p2_hop_latency_seconds histogram",
		`p2_hop_latency_seconds_bucket{node="n7",le="+Inf"} 2`,
		`p2_hop_latency_seconds_count{node="n7"} 2`,
		`p2_hop_latency_seconds_sum{node="n7"} 0.03`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Query IDs sort: mon:probe before zeta.
	if strings.Index(out, "mon:probe") > strings.Index(out, "zeta") {
		t.Error("query series not sorted by ID")
	}

	var b2 strings.Builder
	if err := WritePrometheus(&b2, "n7", m, queries, &hists); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("output not deterministic across calls")
	}
}

// TestWritePrometheusEmpty: no queries, no histograms — still valid.
func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, "n1", Node{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `p2_rule_errors_total{node="n1"} 0`) {
		t.Errorf("missing zero counter:\n%s", b.String())
	}
	if strings.Contains(b.String(), "histogram") {
		t.Error("nil hists must emit no histogram sections")
	}
}
