package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Log-bucketed histogram: power-of-two buckets starting at HistBase
// seconds. Bucket i covers (HistBase·2^(i-1), HistBase·2^i]; bucket 0
// additionally absorbs everything at or below HistBase, and the last
// bucket absorbs everything above the penultimate bound. With HistBase
// = 1 µs and 40 buckets the range reaches past 5·10^5 s, which covers
// every latency and cost this engine can produce — and, reused as a
// dimensionless scale, queue depths up to ~5·10^11 tasks.
const (
	// HistBase is the upper bound of bucket 0 in seconds (1 µs).
	HistBase = 1e-6
	// HistBuckets is the number of buckets.
	HistBuckets = 40
)

// Histogram is a fixed-shape log-bucketed histogram. The zero value is
// ready to use. It is a plain value: copying it snapshots it, and the
// deterministic bucket function (exact power-of-two arithmetic via
// Frexp, no logarithms) makes runs bit-reproducible.
type Histogram struct {
	counts [HistBuckets]int64
	count  int64
	sum    float64
}

// bucketOf maps a value to its bucket index without floating-point
// logarithms: Frexp decomposes v/HistBase exactly, so equal inputs land
// in equal buckets on every platform.
func bucketOf(v float64) int {
	if v <= HistBase || math.IsNaN(v) {
		return 0
	}
	q := v / HistBase
	if math.IsInf(q, 1) {
		// +Inf input, or a value so large the division overflowed
		// (Frexp(+Inf) reports exponent 0, which would land in bucket 0).
		return HistBuckets - 1
	}
	frac, exp := math.Frexp(q)
	i := exp
	if frac == 0.5 {
		i-- // exact power of two sits on its bucket's upper bound
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i in seconds;
// the last bucket is unbounded (+Inf).
func BucketBound(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return HistBase * math.Ldexp(1, i)
}

// Observe records one value. Negative values count into bucket 0 but
// contribute their true (negative) amount to Sum.
func (h *Histogram) Observe(v float64) {
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// BucketCount returns the count in bucket i.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i] }

// Merge accumulates other into h (cross-node aggregation).
func (h *Histogram) Merge(other Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
}

// Sub returns the windowed delta h - prev (both taken from the same
// monotonically growing histogram).
func (h Histogram) Sub(prev Histogram) Histogram {
	out := h
	for i := range out.counts {
		out.counts[i] -= prev.counts[i]
	}
	out.count -= prev.count
	out.sum -= prev.sum
	return out
}

// Quantile returns an upper bound for the q-quantile: the upper bound
// of the bucket in which the q·Count-th observation falls. The
// resolution is the bucket width (a factor of two); for the unbounded
// last bucket its (finite) lower bound is returned. Returns 0 when
// empty. q is clamped to the observation range: q <= 0 (and NaN)
// resolve to the first observation's bucket, q >= 1 to the last's —
// Quantile never reports a rank outside the recorded population, so it
// never returns +Inf (a q slightly above 1 from accumulated float
// error previously walked off the end of the bucket array).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if math.IsNaN(q) || rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			if i == HistBuckets-1 {
				return HistBase * math.Ldexp(1, i-1) // lower bound
			}
			return BucketBound(i)
		}
	}
	// Unreachable while count equals the bucket sum (rank <= count means
	// some prefix crosses it); kept finite for safety.
	return HistBase * math.Ldexp(1, HistBuckets-2)
}

// Encode renders the histogram in a compact deterministic text form:
// "count sum b<i>:<n> ..." listing only non-empty buckets in index
// order. Decode-free: it exists for golden files, logs and fingerprints.
func (h *Histogram) Encode() string {
	var b strings.Builder
	b.WriteString(strconv.FormatInt(h.count, 10))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(h.sum, 'g', -1, 64))
	for i, c := range h.counts {
		if c != 0 {
			fmt.Fprintf(&b, " b%d:%d", i, c)
		}
	}
	return b.String()
}

// NodeHists groups the per-node latency/cost histograms the engine and
// its drivers maintain. All values are in seconds except QueueDepth,
// which reuses the log-bucketed scale for a dimensionless task count.
// Like the Node counters they are owned by the node's single executor;
// concurrent readers must snapshot through the driver (see
// realtime.Network.MetricsSnapshot).
type NodeHists struct {
	// HopLatency is the per-hop message latency: from the send postamble
	// to the receiving node observing the message (virtual time under
	// simnet, wall clock under the realtime driver).
	HopLatency Histogram
	// StrandCost is the simulated CPU cost of one strand activation
	// (the same cost-model seconds BusySeconds accumulates).
	StrandCost Histogram
	// QueueWait is how long a task waited in the node's run queue before
	// executing (virtual time under simnet, wall clock under realtime).
	QueueWait Histogram
	// QueueDepth is the run-queue length observed as each task starts
	// (the task itself included).
	QueueDepth Histogram
}

// Merge accumulates other into h.
func (h *NodeHists) Merge(other NodeHists) {
	h.HopLatency.Merge(other.HopLatency)
	h.StrandCost.Merge(other.StrandCost)
	h.QueueWait.Merge(other.QueueWait)
	h.QueueDepth.Merge(other.QueueDepth)
}

// Sub returns the windowed delta h - prev.
func (h NodeHists) Sub(prev NodeHists) NodeHists {
	return NodeHists{
		HopLatency: h.HopLatency.Sub(prev.HopLatency),
		StrandCost: h.StrandCost.Sub(prev.StrandCost),
		QueueWait:  h.QueueWait.Sub(prev.QueueWait),
		QueueDepth: h.QueueDepth.Sub(prev.QueueDepth),
	}
}
