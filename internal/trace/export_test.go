package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"p2go/internal/dataflow"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// TestExportChromeFlows builds a minimal two-node causal trace by hand
// — rule r1 on nA produces a tuple that rule r2 on nB consumes — and
// checks the export: valid JSON, one complete event per activation,
// and a flow arrow connecting the nodes.
func TestExportChromeFlows(t *testing.T) {
	storeA := table.NewStore()
	trA, err := New(storeA, "nA", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sA := &dataflow.Strand{Plan: &dataflow.Plan{RuleID: "r1", Stages: 0}}
	in := tuple.New("ev", tuple.Str("nA"), tuple.ID(1)).WithID(1)
	out := tuple.New("msg", tuple.Str("nB"), tuple.ID(2)).WithID(2)
	trA.Register(in.ID, in, "nA", 1, "nA", 10)
	trA.Register(out.ID, out, "nA", 2, "nB", 10) // headed to nB
	trA.Input(sA, in, 10)
	trA.Output(sA, out, 10.5)
	trA.StageDone(sA, 0)
	trA.TaskDone()

	storeB := table.NewStore()
	trB, err := New(storeB, "nB", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sB := &dataflow.Strand{Plan: &dataflow.Plan{RuleID: "r2", Stages: 0}}
	// nB assigned local ID 7 to the tuple nA sent as its ID 2.
	arrived := tuple.New("msg", tuple.Str("nB"), tuple.ID(2)).WithID(7)
	outB := tuple.New("done", tuple.Str("nB"), tuple.ID(3)).WithID(8)
	trB.Register(arrived.ID, arrived, "nA", 2, "nB", 11)
	trB.Register(outB.ID, outB, "nB", 8, "nB", 11)
	trB.Input(sB, arrived, 11)
	trB.Output(sB, outB, 11.25)
	trB.StageDone(sB, 0)
	trB.TaskDone()

	var buf bytes.Buffer
	stats, err := ExportChrome(&buf, []ExportNode{
		{Addr: "nB", Store: storeB, Now: 20}, // unsorted on purpose
		{Addr: "nA", Store: storeA, Now: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RuleExecs != 2 {
		t.Errorf("RuleExecs = %d, want 2", stats.RuleExecs)
	}
	if stats.Flows != 1 {
		t.Errorf("Flows = %d, want 1", stats.Flows)
	}
	if len(stats.FlowNodes) != 2 || stats.FlowNodes[0] != "nA" || stats.FlowNodes[1] != "nB" {
		t.Errorf("FlowNodes = %v, want [nA nB]", stats.FlowNodes)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["X"] != 2 || phases["s"] != 1 || phases["f"] != 1 {
		t.Errorf("event phases = %v, want 2 X, 1 s, 1 f", phases)
	}

	// Determinism: a second export of the same state is byte-identical.
	var buf2 bytes.Buffer
	if _, err := ExportChrome(&buf2, []ExportNode{
		{Addr: "nA", Store: storeA, Now: 20},
		{Addr: "nB", Store: storeB, Now: 20},
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("export is not deterministic for equal inputs")
	}
}
