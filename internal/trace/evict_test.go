package trace

import (
	"testing"

	"p2go/internal/table"
	"p2go/internal/tuple"
)

func countRows(store *table.Store, name string, now float64) int {
	n := 0
	store.Get(name).Scan(now, func(tuple.Tuple) { n++ })
	return n
}

// TestEvictionReleasesMemo is the long-churn regression test for the
// tracer's reference counting: a bounded ruleExec table under sustained
// activations must keep the tuple memo (and tupleTable) bounded too —
// every eviction releases its references — and expiring every ruleExec
// row must drain the memo to exactly zero.
func TestEvictionReleasesMemo(t *testing.T) {
	cfg := Config{RuleExecTTL: 1e6, RuleExecMax: 50, RecordsPerStrand: 4, TupleLogMax: 0}
	tr, store, s := fixture(t, 0, cfg)

	const rounds = 10000
	id := uint64(1)
	maxMemo := 0
	for i := 0; i < rounds; i++ {
		now := float64(i)
		in, out := tup("ev", id), tup("head", id+1)
		id += 2
		register(tr, in)
		register(tr, out)
		tr.Input(s, in, now)
		tr.Output(s, out, now+0.1)
		tr.StageDone(s, 0)
		tr.TaskDone()
		if m := tr.MemoSize(); m > maxMemo {
			maxMemo = m
		}
	}

	// Each surviving ruleExec row references two tuples, so the memo is
	// bounded by 2×RuleExecMax regardless of churn length.
	if maxMemo > 2*cfg.RuleExecMax {
		t.Fatalf("memo grew to %d entries over %d rounds; bound is %d",
			maxMemo, rounds, 2*cfg.RuleExecMax)
	}
	if got := countRows(store, RuleExecTable, 0); got > cfg.RuleExecMax {
		t.Fatalf("ruleExec holds %d rows, bound is %d", got, cfg.RuleExecMax)
	}
	if got, want := countRows(store, TupleTable, 0), tr.MemoSize(); got != want {
		t.Fatalf("tupleTable rows = %d, memo = %d; must stay in lockstep", got, want)
	}

	// Let every ruleExec row expire: the delete notifications must drive
	// every refcount to zero and empty both the memo and tupleTable.
	store.ExpireAll(float64(rounds) + cfg.RuleExecTTL + 1)
	if got := tr.MemoSize(); got != 0 {
		t.Fatalf("memo holds %d entries after full expiry, want 0", got)
	}
	if got := countRows(store, TupleTable, 0); got != 0 {
		t.Fatalf("tupleTable holds %d rows after full expiry, want 0", got)
	}
	if got := countRows(store, RuleExecTable, float64(rounds)+cfg.RuleExecTTL+2); got != 0 {
		t.Fatalf("ruleExec holds %d rows after full expiry, want 0", got)
	}
}
