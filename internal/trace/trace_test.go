package trace

import (
	"testing"

	"p2go/internal/dataflow"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// fixture builds a tracer plus a synthetic strand with the given number
// of stages.
func fixture(t *testing.T, stages int, cfg Config) (*Tracer, *table.Store, *dataflow.Strand) {
	t.Helper()
	store := table.NewStore()
	tr, err := New(store, "n1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &dataflow.Strand{Plan: &dataflow.Plan{RuleID: "r1", Stages: stages}}
	return tr, store, s
}

func tup(name string, id uint64) tuple.Tuple {
	return tuple.New(name, tuple.Str("n1"), tuple.ID(id)).WithID(id)
}

// register tells the tracer about a locally created tuple.
func register(tr *Tracer, t tuple.Tuple) {
	tr.Register(t.ID, t, "n1", t.ID, "n1", 0)
}

func rows(t *testing.T, store *table.Store) []tuple.Tuple {
	t.Helper()
	var out []tuple.Tuple
	store.Get(RuleExecTable).Scan(0, func(tp tuple.Tuple) { out = append(out, tp) })
	return out
}

// TestSingleRuleExecution reproduces the paper's §2.1.1 example: rule r1
// with one precondition produces two ruleExec rows per output — the
// event causal link and the precondition causal link.
func TestSingleRuleExecution(t *testing.T) {
	tr, store, s := fixture(t, 1, DefaultConfig())
	ev, pre, out := tup("event", 1), tup("prec", 2), tup("head", 3)
	for _, x := range []tuple.Tuple{ev, pre, out} {
		register(tr, x)
	}
	tr.Input(s, ev, 10)
	tr.Precond(s, 1, pre, 11)
	tr.Output(s, out, 12)
	tr.StageDone(s, 1)

	got := rows(t, store)
	if len(got) != 2 {
		t.Fatalf("ruleExec rows = %d, want 2: %v", len(got), got)
	}
	// Row 1: (r1, event, head, ts, te, true).
	var evRow, preRow *tuple.Tuple
	for i := range got {
		if got[i].Field(6).AsBool() {
			evRow = &got[i]
		} else {
			preRow = &got[i]
		}
	}
	if evRow == nil || preRow == nil {
		t.Fatal("missing event or precondition row")
	}
	if evRow.Field(2).AsID() != 1 || evRow.Field(3).AsID() != 3 ||
		evRow.Field(4).AsFloat() != 10 || evRow.Field(5).AsFloat() != 12 {
		t.Errorf("event row = %v", *evRow)
	}
	if preRow.Field(2).AsID() != 2 || preRow.Field(3).AsID() != 3 ||
		preRow.Field(4).AsFloat() != 11 {
		t.Errorf("precondition row = %v", *preRow)
	}
	// Both tuples are memoized in tupleTable while referenced.
	if store.Get(TupleTable).Count() != 3 {
		t.Errorf("tupleTable rows = %d, want 3", store.Get(TupleTable).Count())
	}
	if c, ok := tr.Content(1); !ok || c.Name != "event" {
		t.Errorf("Content(1) = %v, %v", c, ok)
	}
}

// TestMultipleMatchesPerInput: several preconditions matching one input
// produce one pair of rows per output, with the precondition field
// updated per match (the record is not cleared between outputs).
func TestMultipleMatchesPerInput(t *testing.T) {
	tr, store, s := fixture(t, 1, DefaultConfig())
	ev := tup("event", 1)
	register(tr, ev)
	tr.Input(s, ev, 10)
	for i := uint64(0); i < 3; i++ {
		pre, out := tup("prec", 10+i), tup("head", 20+i)
		register(tr, pre)
		register(tr, out)
		tr.Precond(s, 1, pre, 11)
		tr.Output(s, out, 12)
	}
	tr.StageDone(s, 1)
	got := rows(t, store)
	if len(got) != 6 {
		t.Fatalf("ruleExec rows = %d, want 6 (2 per output)", len(got))
	}
	// Each output must pair with its own precondition.
	for i := uint64(0); i < 3; i++ {
		found := false
		for _, r := range got {
			if !r.Field(6).AsBool() && r.Field(2).AsID() == 10+i && r.Field(3).AsID() == 20+i {
				found = true
			}
		}
		if !found {
			t.Errorf("missing precondition link %d -> %d", 10+i, 20+i)
		}
	}
}

// TestPrecondFlushRule: §2.1.1 — observing a precondition in the middle
// of the strand flushes recorded fields to its right.
func TestPrecondFlushRule(t *testing.T) {
	tr, store, s := fixture(t, 2, DefaultConfig())
	ev := tup("event", 1)
	register(tr, ev)
	tr.Input(s, ev, 10)
	p1a, p2a := tup("p1", 11), tup("p2", 12)
	o1 := tup("head", 13)
	for _, x := range []tuple.Tuple{p1a, p2a, o1} {
		register(tr, x)
	}
	tr.Precond(s, 1, p1a, 10.1)
	tr.Precond(s, 2, p2a, 10.2)
	tr.Output(s, o1, 10.3)
	// New stage-1 precondition: the stage-2 field must be flushed, so
	// an output now yields rows for stage 1 only.
	p1b, o2 := tup("p1", 14), tup("head", 15)
	register(tr, p1b)
	register(tr, o2)
	tr.Precond(s, 1, p1b, 10.4)
	tr.Output(s, o2, 10.5)
	var gotPre []uint64
	for _, r := range rows(t, store) {
		if !r.Field(6).AsBool() && r.Field(3).AsID() == 15 {
			gotPre = append(gotPre, r.Field(2).AsID())
		}
	}
	if len(gotPre) != 1 || gotPre[0] != 14 {
		t.Errorf("second output preconditions = %v, want [14] (stage 2 flushed)", gotPre)
	}
}

// TestPipelinedRecords reproduces Figure 3: a second input enters stage 1
// while the first input is still producing matches at stage 2. The
// tracer must keep two records and attribute outputs to the right one.
func TestPipelinedRecords(t *testing.T) {
	tr, store, s := fixture(t, 2, DefaultConfig())
	ev1, ev2 := tup("event", 1), tup("event", 2)
	p1x, p2x := tup("p1", 11), tup("p2", 12)
	p1y := tup("p1", 21)
	o1 := tup("head", 31)
	for _, x := range []tuple.Tuple{ev1, ev2, p1x, p2x, p1y, o1} {
		register(tr, x)
	}
	// Input 1 flows to stage 2.
	tr.Input(s, ev1, 1)
	tr.Precond(s, 1, p1x, 1.1)
	tr.Precond(s, 2, p2x, 1.2)
	// Stage 1 completes for input 1 and input 2 enters: record 1 is now
	// associated with stage 2 only, record 2 with stage 1.
	tr.StageDone(s, 1)
	tr.Input(s, ev2, 2)
	tr.Precond(s, 1, p1y, 2.1)
	// Input 1's remaining stage-2 match produces an output; it must be
	// attributed to record 1 (input ev1), not record 2.
	tr.Output(s, o1, 2.2)
	var eventIn uint64
	for _, r := range rows(t, store) {
		if r.Field(6).AsBool() && r.Field(3).AsID() == 31 {
			eventIn = r.Field(2).AsID()
		}
	}
	if eventIn != 1 {
		t.Errorf("output attributed to input %d, want 1 (pipelined record)", eventIn)
	}
}

// TestRecordCap: the fixed number of execution records (a §3.4 resource
// bound) recycles the oldest record instead of growing.
func TestRecordCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordsPerStrand = 2
	tr, store, s := fixture(t, 1, cfg)
	for i := uint64(0); i < 10; i++ {
		ev := tup("event", 100+i)
		register(tr, ev)
		tr.Input(s, ev, float64(i))
	}
	// Only bookkeeping structures are bounded; no rows were produced.
	if got := len(tr.records[s]); got != 2 {
		t.Errorf("records = %d, want cap 2", got)
	}
	if store.Get(RuleExecTable).Count() != 0 {
		t.Error("no outputs -> no ruleExec rows (only successful executions are stored)")
	}
}

// TestRefCountingFlushesTupleTable: when the last ruleExec row naming a
// tuple dies, its tupleTable entry and memoized content disappear.
func TestRefCountingFlushesTupleTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RuleExecTTL = 5
	tr, store, s := fixture(t, 0, cfg)
	ev, out := tup("event", 1), tup("head", 2)
	register(tr, ev)
	tr.Input(s, ev, 10)
	register(tr, out)
	tr.Output(s, out, 10.5)
	if store.Get(TupleTable).Count() != 2 || tr.MemoSize() != 2 {
		t.Fatalf("tupleTable=%d memo=%d, want 2/2",
			store.Get(TupleTable).Count(), tr.MemoSize())
	}
	// Expire the ruleExec row: references drop to zero.
	store.Get(RuleExecTable).Expire(20)
	if store.Get(TupleTable).Count() != 0 || tr.MemoSize() != 0 {
		t.Errorf("tupleTable=%d memo=%d after expiry, want 0/0",
			store.Get(TupleTable).Count(), tr.MemoSize())
	}
	if _, ok := tr.Content(1); ok {
		t.Error("content must be released with the last reference")
	}
}

// TestSharedReferenceSurvives: a tuple referenced by two ruleExec rows
// survives the death of one.
func TestSharedReferenceSurvives(t *testing.T) {
	tr, store, s := fixture(t, 0, DefaultConfig())
	ev := tup("event", 1)
	register(tr, ev)
	tr.Input(s, ev, 10)
	out1, out2 := tup("head", 2), tup("head", 3)
	register(tr, out1)
	register(tr, out2)
	tr.Output(s, out1, 10.1)
	tr.Output(s, out2, 10.2)
	// Delete one row: the shared event tuple must remain memoized.
	pattern := tuple.New(RuleExecTable, tuple.Nil, tuple.Nil, tuple.Nil,
		tuple.ID(2), tuple.Nil, tuple.Nil, tuple.Nil)
	if removed := store.Get(RuleExecTable).Delete(pattern, 100); len(removed) != 1 {
		t.Fatalf("removed %d rows", len(removed))
	}
	if _, ok := tr.Content(1); !ok {
		t.Error("shared tuple released too early")
	}
	if _, ok := tr.Content(2); ok {
		t.Error("out1 must be released")
	}
}

// TestTaskDoneDropsUnreferenced: provenance for tuples never referenced
// by a ruleExec row is discarded at task end.
func TestTaskDoneDropsUnreferenced(t *testing.T) {
	tr, _, _ := fixture(t, 0, DefaultConfig())
	register(tr, tup("noise", 42))
	tr.TaskDone()
	if len(tr.pending) != 0 {
		t.Error("pending provenance not cleared")
	}
	if tr.MemoSize() != 0 {
		t.Error("unreferenced tuple must not be memoized")
	}
}

// TestUnregisteredReferenceSynthesizesProvenance: tracing enabled
// mid-flight still produces consistent tupleTable rows.
func TestUnregisteredReferenceSynthesizesProvenance(t *testing.T) {
	tr, store, s := fixture(t, 0, DefaultConfig())
	tr.Input(s, tup("event", 7), 1)
	tr.Output(s, tup("head", 8), 1.1)
	tt := store.Get(TupleTable)
	if tt.Count() != 2 {
		t.Fatalf("tupleTable rows = %d", tt.Count())
	}
	tt.Scan(100, func(tp tuple.Tuple) {
		if tp.Field(2).AsStr() != "n1" {
			t.Errorf("synthesized provenance src = %v", tp)
		}
	})
}

// TestTapEdgeCases: taps with no owning record or invalid stages are
// ignored rather than corrupting state.
func TestTapEdgeCases(t *testing.T) {
	tr, store, s := fixture(t, 2, DefaultConfig())
	// Output with no active record: dropped.
	tr.Output(s, tup("head", 9), 1)
	if store.Get(RuleExecTable).Count() != 0 {
		t.Error("orphan output must not produce rows")
	}
	// Precondition before any input: dropped.
	tr.Precond(s, 1, tup("p", 1), 1)
	// Out-of-range stages are ignored.
	ev := tup("event", 2)
	register(tr, ev)
	tr.Input(s, ev, 1)
	tr.Precond(s, 0, tup("p", 3), 1)
	tr.Precond(s, 99, tup("p", 4), 1)
	tr.StageDone(s, 99)
	out := tup("head", 5)
	register(tr, out)
	tr.Output(s, out, 2)
	// Only the event edge exists (no valid preconditions recorded).
	if got := store.Get(RuleExecTable).Count(); got != 1 {
		t.Errorf("rows = %d, want 1", got)
	}
}

// TestLogEvent: the §2.1 system-event buffer records arrivals and table
// changes, skips the log tables themselves, and is bounded.
func TestLogEvent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TupleLogMax = 3
	tr, store, _ := fixture(t, 0, cfg)
	tr.LogEvent("arrive", "lookup", 1, 1)
	tr.LogEvent("insert", "succ", 2, 1.1)
	tr.LogEvent("delete", "succ", 2, 1.2)
	tr.LogEvent("insert", RuleExecTable, 3, 1.3) // must be skipped
	tr.LogEvent("insert", TupleLogTable, 4, 1.4) // must be skipped
	tl := store.Get(TupleLogTable)
	if tl.Count() != 3 {
		t.Fatalf("tupleLog rows = %d, want 3", tl.Count())
	}
	// Bound: a fourth event evicts the oldest.
	tr.LogEvent("arrive", "lookup", 5, 2)
	if tl.Count() != 3 {
		t.Errorf("tupleLog exceeded its bound: %d", tl.Count())
	}
	// Disabled logging is a no-op.
	cfg2 := DefaultConfig()
	cfg2.TupleLogMax = 0
	tr2, store2, _ := fixture(t, 0, cfg2)
	tr2.LogEvent("arrive", "lookup", 1, 1)
	if store2.Get(TupleLogTable) != nil {
		t.Error("disabled tupleLog must not exist")
	}
}

// TestResetNoResurrection pins the restart-resurrection fix: a node
// that restarts (soft-state loss) reuses tuple IDs from 1, so a stale
// pre-crash ruleExec row left in the table would — when it later
// expires — fire the release subscription against a reused ID and
// evict a live post-restart memo entry. Reset must therefore purge the
// trace tables itself, not just the in-memory maps.
func TestResetNoResurrection(t *testing.T) {
	tr, store, s := fixture(t, 0, DefaultConfig()) // TTL 120
	// Pre-crash activity: IDs 1 and 2 referenced by a ruleExec row
	// inserted at t=10.5 (expires at 130.5).
	ev, out := tup("event", 1), tup("head", 2)
	register(tr, ev)
	register(tr, out)
	tr.Input(s, ev, 10)
	tr.Output(s, out, 10.5)
	tr.StageDone(s, 0)
	tr.TaskDone()
	if tr.MemoSize() != 2 {
		t.Fatalf("pre-crash memo = %d, want 2", tr.MemoSize())
	}

	// Crash + restart at t=50.
	tr.Reset(50)
	if tr.MemoSize() != 0 {
		t.Fatalf("post-reset memo = %d, want 0", tr.MemoSize())
	}
	if got := store.Get(RuleExecTable).Count(); got != 0 {
		t.Fatalf("Reset left %d stale ruleExec rows", got)
	}
	if got := store.Get(TupleTable).Count(); got != 0 {
		t.Fatalf("Reset left %d stale tupleTable rows", got)
	}

	// The restarted process reuses IDs 1 and 2 at t=130.
	ev2, out2 := tup("event", 1), tup("head", 2)
	register(tr, ev2)
	register(tr, out2)
	tr.Input(s, ev2, 130)
	tr.Output(s, out2, 130.5)
	tr.StageDone(s, 0)
	tr.TaskDone()

	// t=135: past the PRE-crash row's expiry (130.5), well before the
	// post-crash row's. With the stale row purged nothing expires; with
	// the old bug this sweep released the reused IDs.
	store.ExpireAll(135)
	if tr.MemoSize() != 2 {
		t.Fatalf("sweep after restart released reused IDs: memo = %d, want 2", tr.MemoSize())
	}
	if _, ok := tr.Content(1); !ok {
		t.Fatal("restart resurrection: stale pre-crash refcount released live memo entry 1")
	}
	if got := store.Get(TupleTable).Count(); got != 2 {
		t.Fatalf("tupleTable rows after sweep = %d, want 2", got)
	}
	if got := store.Get(RuleExecTable).Count(); got != 1 {
		t.Fatalf("ruleExec rows after sweep = %d, want 1", got)
	}
}

// TestResetPoolsRecords: strand records released by Reset are reused by
// the next activation instead of reallocated.
func TestResetPoolsRecords(t *testing.T) {
	tr, _, s := fixture(t, 2, DefaultConfig())
	ev := tup("event", 1)
	register(tr, ev)
	tr.Input(s, ev, 1)
	old := tr.records[s][0]
	tr.Reset(10)
	if len(tr.pool) != 1 || tr.pool[0] != old {
		t.Fatalf("pool after Reset = %v, want the released record", tr.pool)
	}
	ev2 := tup("event", 1)
	register(tr, ev2)
	tr.Input(s, ev2, 20)
	if len(tr.pool) != 0 {
		t.Fatal("new activation did not take the pooled record")
	}
	got := tr.records[s][0]
	if got != old {
		t.Fatal("new record was allocated instead of reusing the pool")
	}
	for i, p := range got.pre {
		if p.filled || p.id != 0 || p.time != 0 {
			t.Fatalf("pooled record pre[%d] = %+v, want zeroed", i, p)
		}
	}
}
