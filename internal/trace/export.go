package trace

import (
	"encoding/json"
	"io"
	"sort"

	"p2go/internal/table"
	"p2go/internal/tuple"
)

// Chrome trace-event export: walks the causal trace state the tracer
// maintains — ruleExec rows for rule activations, tupleTable rows for
// cross-node tuple provenance — and renders it in the Chrome
// trace-event JSON format (the chrome://tracing / Perfetto "JSON Array
// with metadata" flavour). Each node becomes one process, each rule one
// named thread within it, each traced activation a complete ("X")
// event, and each tuple that crossed nodes a flow arrow ("s"/"f") from
// the activation that produced it to the first activation that consumed
// it on the receiving node.
//
// The export is a pure read of the trace tables: what aged out of
// ruleExec (TTL or eviction) is gone from the trace too, exactly as
// §3.4's bounded-resource tracing intends.

// ExportNode is one node's view handed to ExportChrome: its address,
// its table store (holding ruleExec and tupleTable), and the virtual
// time to scan the tables at (rows expired by Now are excluded).
type ExportNode struct {
	Addr  string
	Store *table.Store
	Now   float64
}

// ChromeStats summarizes an export, so callers (and tests) can assert
// the trace is non-trivial without re-parsing it.
type ChromeStats struct {
	// RuleExecs counts traced activations exported as complete events.
	RuleExecs int
	// Flows counts cross-node flow arrows.
	Flows int
	// FlowNodes lists the distinct node addresses participating in at
	// least one flow, sorted.
	FlowNodes []string
}

// chromeEvent is one trace-event object. Field order (struct order)
// and struct-based marshaling keep the output byte-stable.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// execRow is one decoded ruleExec row.
type execRow struct {
	rule      string
	inID      uint64
	outID     uint64
	inT, outT float64
	isEvent   bool
	pid, tid  int
}

// ExportChrome walks every node's ruleExec and tupleTable rows and
// writes one Chrome trace-event JSON document to w. Output is
// deterministic for equal table contents: nodes sort by address, rows
// by time then content, and flow IDs are assigned in that order.
func ExportChrome(w io.Writer, nodes []ExportNode) (ChromeStats, error) {
	sorted := append([]ExportNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })

	var events []chromeEvent
	var stats ChromeStats

	// Indexes for flow resolution: per node, which row produced a tuple
	// ID (outIndex) and which row first consumed it (inIndex).
	outIndex := make(map[string]map[uint64]*execRow)
	inIndex := make(map[string]map[uint64]*execRow)

	for ni, en := range sorted {
		pid := ni + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": en.Addr},
		})
		var rows []*execRow
		if tb := en.Store.Get(RuleExecTable); tb != nil {
			tb.Scan(en.Now, func(t tuple.Tuple) {
				if t.Arity() < 7 {
					return
				}
				rows = append(rows, &execRow{
					rule:    t.Field(1).AsStr(),
					inID:    t.Field(2).AsID(),
					outID:   t.Field(3).AsID(),
					inT:     t.Field(4).AsFloat(),
					outT:    t.Field(5).AsFloat(),
					isEvent: t.Field(6).AsBool(),
					pid:     pid,
				})
			})
		}
		sort.Slice(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			if a.inT != b.inT {
				return a.inT < b.inT
			}
			if a.outT != b.outT {
				return a.outT < b.outT
			}
			if a.rule != b.rule {
				return a.rule < b.rule
			}
			if a.inID != b.inID {
				return a.inID < b.inID
			}
			return a.outID < b.outID
		})
		// One named thread per rule, in sorted rule order.
		ruleTid := make(map[string]int)
		ruleNames := make(map[string]bool)
		for _, r := range rows {
			ruleNames[r.rule] = true
		}
		names := make([]string, 0, len(ruleNames))
		for name := range ruleNames {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			ruleTid[name] = i + 1
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]any{"name": name},
			})
		}
		for _, r := range rows {
			r.tid = ruleTid[r.rule]
			if r.isEvent {
				dur := (r.outT - r.inT) * 1e6
				if dur < 0 {
					dur = 0
				}
				events = append(events, chromeEvent{
					Name: r.rule, Ph: "X", Ts: r.inT * 1e6, Dur: dur,
					Pid: pid, Tid: r.tid,
					Args: map[string]any{"in": r.inID, "out": r.outID},
				})
				stats.RuleExecs++
			}
			// Index every row (event and precondition links alike): a
			// tuple may be produced by one and consumed by another.
			oi := outIndex[en.Addr]
			if oi == nil {
				oi = make(map[uint64]*execRow)
				outIndex[en.Addr] = oi
			}
			if _, ok := oi[r.outID]; !ok {
				oi[r.outID] = r
			}
			ii := inIndex[en.Addr]
			if ii == nil {
				ii = make(map[uint64]*execRow)
				inIndex[en.Addr] = ii
			}
			if _, ok := ii[r.inID]; !ok {
				ii[r.inID] = r // rows sorted by time: first consumer wins
			}
		}
	}

	// Flow arrows: every tupleTable row whose provenance names another
	// node links the producing activation there to the first consuming
	// activation here.
	flowID := 0
	flowNodes := make(map[string]bool)
	for _, en := range sorted {
		tb := en.Store.Get(TupleTable)
		if tb == nil {
			continue
		}
		type hop struct {
			id    uint64
			src   string
			srcID uint64
		}
		var hops []hop
		tb.Scan(en.Now, func(t tuple.Tuple) {
			if t.Arity() < 5 {
				return
			}
			src := t.Field(2).AsStr()
			if src == "" || src == en.Addr {
				return // local tuple: no hop
			}
			hops = append(hops, hop{id: t.Field(1).AsID(), src: src, srcID: t.Field(3).AsID()})
		})
		sort.Slice(hops, func(i, j int) bool { return hops[i].id < hops[j].id })
		for _, hp := range hops {
			producer := outIndex[hp.src][hp.srcID]
			consumer := inIndex[en.Addr][hp.id]
			if producer == nil || consumer == nil {
				continue // one end aged out of ruleExec
			}
			flowID++
			events = append(events, chromeEvent{
				Name: "tuple", Ph: "s", Ts: producer.outT * 1e6,
				Pid: producer.pid, Tid: producer.tid, ID: flowID,
			})
			events = append(events, chromeEvent{
				Name: "tuple", Ph: "f", Ts: consumer.inT * 1e6,
				Pid: consumer.pid, Tid: consumer.tid, ID: flowID, BP: "e",
			})
			stats.Flows++
			flowNodes[hp.src] = true
			flowNodes[en.Addr] = true
		}
	}
	stats.FlowNodes = make([]string, 0, len(flowNodes))
	for a := range flowNodes {
		stats.FlowNodes = append(stats.FlowNodes, a)
	}
	sort.Strings(stats.FlowNodes)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return stats, err
	}
	return stats, nil
}
