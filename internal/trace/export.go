package trace

import (
	"encoding/json"
	"io"
	"sort"

	"p2go/internal/table"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// Chrome trace-event export: renders the causal trace — ruleExec rows
// for rule activations, cross-node tuple provenance for flow arrows —
// in the Chrome trace-event JSON format (the chrome://tracing /
// Perfetto "JSON Array with metadata" flavour). Each node becomes one
// process, each rule one named thread within it, each traced activation
// a complete ("X") event, and each tuple that crossed nodes a flow
// arrow ("s"/"f") from the activation that produced it to the first
// activation that consumed it on the receiving node.
//
// Two front ends share one renderer: ExportChrome reads the live trace
// tables (what aged out of ruleExec is gone from the trace too, exactly
// as §3.4's bounded-resource tracing intends), and ExportChromeStore
// reads the durable trace store, so the same visualization is available
// hours later, after the soft-state tables have long since flushed.

// ExportNode is one node's view handed to ExportChrome: its address,
// its table store (holding ruleExec and tupleTable), and the virtual
// time to scan the tables at (rows expired by Now are excluded).
type ExportNode struct {
	Addr  string
	Store *table.Store
	Now   float64
}

// ChromeStats summarizes an export, so callers (and tests) can assert
// the trace is non-trivial without re-parsing it.
type ChromeStats struct {
	// RuleExecs counts traced activations exported as complete events.
	RuleExecs int
	// Flows counts cross-node flow arrows.
	Flows int
	// FlowNodes lists the distinct node addresses participating in at
	// least one flow, sorted.
	FlowNodes []string
}

// chromeEvent is one trace-event object. Field order (struct order)
// and struct-based marshaling keep the output byte-stable.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// execRow is one decoded ruleExec row.
type execRow struct {
	rule      string
	inID      uint64
	outID     uint64
	inT, outT float64
	isEvent   bool
	pid, tid  int
}

// exportHop is one cross-node provenance edge: the tuple known locally
// as id was sent by src, where it was known as srcID.
type exportHop struct {
	id    uint64
	src   string
	srcID uint64
}

// exportSource is one node's worth of render input. Callers must pass
// sources sorted by address; rows and hops may be unsorted.
type exportSource struct {
	addr string
	rows []*execRow
	hops []exportHop
}

// ExportChrome walks every node's ruleExec and tupleTable rows and
// writes one Chrome trace-event JSON document to w. Output is
// deterministic for equal table contents: nodes sort by address, rows
// by time then content, and flow IDs are assigned in that order.
func ExportChrome(w io.Writer, nodes []ExportNode) (ChromeStats, error) {
	sorted := append([]ExportNode(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	srcs := make([]exportSource, 0, len(sorted))
	for _, en := range sorted {
		src := exportSource{addr: en.Addr}
		if tb := en.Store.Get(RuleExecTable); tb != nil {
			tb.Scan(en.Now, func(t tuple.Tuple) {
				if t.Arity() < 7 {
					return
				}
				src.rows = append(src.rows, &execRow{
					rule:    t.Field(1).AsStr(),
					inID:    t.Field(2).AsID(),
					outID:   t.Field(3).AsID(),
					inT:     t.Field(4).AsFloat(),
					outT:    t.Field(5).AsFloat(),
					isEvent: t.Field(6).AsBool(),
				})
			})
		}
		if tb := en.Store.Get(TupleTable); tb != nil {
			tb.Scan(en.Now, func(t tuple.Tuple) {
				if t.Arity() < 5 {
					return
				}
				hsrc := t.Field(2).AsStr()
				if hsrc == "" || hsrc == en.Addr {
					return // local tuple: no hop
				}
				src.hops = append(src.hops, exportHop{
					id: t.Field(1).AsID(), src: hsrc, srcID: t.Field(3).AsID(),
				})
			})
		}
		srcs = append(srcs, src)
	}
	return renderChrome(w, srcs)
}

// ExportChromeStore renders the same Chrome trace from the durable
// trace stores instead of the live tables: the forensic export that
// still works after ruleExec rows aged out and nodes restarted. since
// bounds the render window (0 = everything retained). With generous
// trace bounds the two exports are byte-identical; with tight bounds
// the store remembers strictly more. Exec records deduplicate on
// (rule, inID, outID, isEvent) keeping the newest, and hops on the
// local ID, mirroring the tables' replace-on-key semantics.
func ExportChromeStore(w io.Writer, stores map[string]*tracestore.Store, since float64) (ChromeStats, error) {
	v := tracestore.NewView(stores, since)
	var srcs []exportSource
	for _, addr := range v.Nodes() {
		src := exportSource{addr: addr}
		edges, err := v.Execs(tracestore.ExecFilter{Node: addr})
		if err != nil {
			return ChromeStats{}, err
		}
		type rowKey struct {
			rule    string
			in, out uint64
			isEvent bool
		}
		last := make(map[rowKey]int)
		for _, e := range edges {
			r := &execRow{
				rule: e.Rule, inID: e.InID, outID: e.OutID,
				inT: e.InT, outT: e.OutT, isEvent: e.IsEvent,
			}
			k := rowKey{e.Rule, e.InID, e.OutID, e.IsEvent}
			if i, ok := last[k]; ok {
				src.rows[i] = r
				continue
			}
			last[k] = len(src.rows)
			src.rows = append(src.rows, r)
		}
		hops, err := v.Hops(addr)
		if err != nil {
			return ChromeStats{}, err
		}
		for _, h := range hops {
			src.hops = append(src.hops, exportHop{id: h.ID, src: h.Src, srcID: h.SrcID})
		}
		srcs = append(srcs, src)
	}
	return renderChrome(w, srcs)
}

// renderChrome turns per-node rows and hops into the trace-event
// document. Sources must already be sorted by address.
func renderChrome(w io.Writer, srcs []exportSource) (ChromeStats, error) {
	var events []chromeEvent
	var stats ChromeStats

	// Indexes for flow resolution: per node, which row produced a tuple
	// ID (outIndex) and which row first consumed it (inIndex).
	outIndex := make(map[string]map[uint64]*execRow)
	inIndex := make(map[string]map[uint64]*execRow)

	for ni, src := range srcs {
		pid := ni + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": src.addr},
		})
		rows := src.rows
		sort.Slice(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			if a.inT != b.inT {
				return a.inT < b.inT
			}
			if a.outT != b.outT {
				return a.outT < b.outT
			}
			if a.rule != b.rule {
				return a.rule < b.rule
			}
			if a.inID != b.inID {
				return a.inID < b.inID
			}
			return a.outID < b.outID
		})
		// One named thread per rule, in sorted rule order.
		ruleTid := make(map[string]int)
		ruleNames := make(map[string]bool)
		for _, r := range rows {
			ruleNames[r.rule] = true
		}
		names := make([]string, 0, len(ruleNames))
		for name := range ruleNames {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			ruleTid[name] = i + 1
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]any{"name": name},
			})
		}
		for _, r := range rows {
			r.pid = pid
			r.tid = ruleTid[r.rule]
			if r.isEvent {
				dur := (r.outT - r.inT) * 1e6
				if dur < 0 {
					dur = 0
				}
				events = append(events, chromeEvent{
					Name: r.rule, Ph: "X", Ts: r.inT * 1e6, Dur: dur,
					Pid: pid, Tid: r.tid,
					Args: map[string]any{"in": r.inID, "out": r.outID},
				})
				stats.RuleExecs++
			}
			// Index every row (event and precondition links alike): a
			// tuple may be produced by one and consumed by another.
			oi := outIndex[src.addr]
			if oi == nil {
				oi = make(map[uint64]*execRow)
				outIndex[src.addr] = oi
			}
			if _, ok := oi[r.outID]; !ok {
				oi[r.outID] = r
			}
			ii := inIndex[src.addr]
			if ii == nil {
				ii = make(map[uint64]*execRow)
				inIndex[src.addr] = ii
			}
			if _, ok := ii[r.inID]; !ok {
				ii[r.inID] = r // rows sorted by time: first consumer wins
			}
		}
	}

	// Flow arrows: every hop whose provenance names another node links
	// the producing activation there to the first consuming activation
	// here. Hops with either endpoint missing (aged out, or recorded
	// without a traced consumer) are skipped.
	flowID := 0
	flowNodes := make(map[string]bool)
	for _, src := range srcs {
		hops := append([]exportHop(nil), src.hops...)
		sort.Slice(hops, func(i, j int) bool { return hops[i].id < hops[j].id })
		for _, hp := range hops {
			producer := outIndex[hp.src][hp.srcID]
			consumer := inIndex[src.addr][hp.id]
			if producer == nil || consumer == nil {
				continue // one end aged out of ruleExec
			}
			flowID++
			events = append(events, chromeEvent{
				Name: "tuple", Ph: "s", Ts: producer.outT * 1e6,
				Pid: producer.pid, Tid: producer.tid, ID: flowID,
			})
			events = append(events, chromeEvent{
				Name: "tuple", Ph: "f", Ts: consumer.inT * 1e6,
				Pid: consumer.pid, Tid: consumer.tid, ID: flowID, BP: "e",
			})
			stats.Flows++
			flowNodes[hp.src] = true
			flowNodes[src.addr] = true
		}
	}
	stats.FlowNodes = make([]string, 0, len(flowNodes))
	for a := range flowNodes {
		stats.FlowNodes = append(stats.FlowNodes, a)
	}
	sort.Strings(stats.FlowNodes)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return stats, err
	}
	return stats, nil
}
