// Package trace implements the execution-tracing facility of §2.1 of the
// paper: tracer records that correlate the tuples observed on strand taps
// (input, per-stage preconditions, output) into causal ruleExec tuples,
// the tupleTable that memoizes tuples by node-unique ID with cross-node
// provenance, and reference counting that flushes memoized tuples when
// their last ruleExec reference disappears.
//
// Both ruleExec and tupleTable are ordinary soft-state tables registered
// in the node's store, so OverLog queries — like the execution profiler
// of §3.2 — can read them like any other state.
package trace

import (
	"fmt"

	"p2go/internal/dataflow"
	"p2go/internal/table"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// Reflection table names.
const (
	RuleExecTable = "ruleExec"
	TupleTable    = "tupleTable"
	// TupleLogTable buffers system events — tuple arrivals and table
	// insertions/removals — as queryable tuples (§2.1: "Log entries are
	// tuples stored (more precisely, buffered) in P2 tables").
	TupleLogTable = "tupleLog"
)

// Config tunes the tracer's resource bounds (the optimizations §3.4
// mentions: a fixed number of execution records, bounded log tables).
type Config struct {
	// RuleExecTTL is the lifetime of ruleExec rows in seconds.
	RuleExecTTL float64
	// RuleExecMax bounds the ruleExec table (oldest evicted).
	RuleExecMax int
	// RecordsPerStrand caps concurrent tracer records per rule strand.
	RecordsPerStrand int
	// TupleLogMax bounds the tupleLog event buffer (0 disables event
	// logging; rows also expire after RuleExecTTL).
	TupleLogMax int
}

// DefaultConfig mirrors the prototype's bounds.
func DefaultConfig() Config {
	return Config{RuleExecTTL: 120, RuleExecMax: 2500, RecordsPerStrand: 8, TupleLogMax: 500}
}

// Tracer is the per-node tracing element. It is driven synchronously by
// the node's dataflow taps and is not safe for concurrent use.
type Tracer struct {
	local    string
	cfg      Config
	ruleExec *table.Table
	tuples   *table.Table

	// memo maps tuple IDs to their content and provenance while
	// referenced from ruleExec.
	memo map[uint64]*memoEntry
	// pending holds provenance for tuples seen during the current task
	// that are not (yet) referenced.
	pending map[uint64]prov

	records map[*dataflow.Strand][]*record

	// tupleLog buffers arrival/insert/delete events (nil = disabled).
	tupleLog *table.Table
	seq      uint64

	// pool recycles records across restarts (Reset returns them here).
	pool []*record

	// store, when attached, receives every trace record as a durable
	// append — the forensic log that outlives the bounded soft-state
	// tables above. onStore reports append/seal work for cost
	// accounting.
	store   *tracestore.Store
	onStore func(appended, sealed int)
}

type prov struct {
	content tuple.Tuple
	src     string
	srcID   uint64
	dst     string
}

type memoEntry struct {
	prov
	refs int
}

// record is one tracer record (Figure 2): the observed input, the last
// precondition per stage, and the associated stage interval used to match
// pipelined signals (§2.1.2).
type record struct {
	active bool
	inID   uint64
	inTime float64
	pre    []precond
	first  int // first associated stage (1-based)
	last   int // last associated stage; first > last means "no stage"
}

type precond struct {
	filled bool
	id     uint64
	time   float64
}

// New creates a tracer and materializes its reflection tables in store.
func New(store *table.Store, localAddr string, cfg Config) (*Tracer, error) {
	if cfg.RecordsPerStrand <= 0 {
		cfg.RecordsPerStrand = 8
	}
	re, err := store.Materialize(table.Spec{
		Name:     RuleExecTable,
		Lifetime: cfg.RuleExecTTL,
		MaxSize:  cfg.RuleExecMax,
		// Key: rule, cause ID, effect ID, cause-was-event.
		Keys: []int{2, 3, 4, 7},
	})
	if err != nil {
		return nil, err
	}
	tt, err := store.Materialize(table.Spec{
		Name:     TupleTable,
		Lifetime: table.Infinity, // reference-counted, not TTL-driven
		MaxSize:  table.Infinity,
		Keys:     []int{2},
	})
	if err != nil {
		return nil, err
	}
	tr := &Tracer{
		local:    localAddr,
		cfg:      cfg,
		ruleExec: re,
		tuples:   tt,
		memo:     make(map[uint64]*memoEntry),
		pending:  make(map[uint64]prov),
		records:  make(map[*dataflow.Strand][]*record),
	}
	if cfg.TupleLogMax > 0 {
		tl, err := store.Materialize(table.Spec{
			Name:     TupleLogTable,
			Lifetime: cfg.RuleExecTTL,
			MaxSize:  cfg.TupleLogMax,
			Keys:     []int{2, 3, 4, 5},
		})
		if err != nil {
			return nil, err
		}
		tr.tupleLog = tl
	}
	// Reference counting: when a ruleExec row dies (TTL or eviction),
	// release the tuples it referenced.
	re.Subscribe(func(op table.Op, t tuple.Tuple) {
		if op != table.OpDelete || t.Arity() < 7 {
			return
		}
		tr.release(t.Field(2).AsID())
		tr.release(t.Field(3).AsID())
	})
	return tr, nil
}

// AttachStore directs the tracer to write every trace record through
// the append-only store st as a durable side channel: exec edges, remote
// arrivals, and system events survive there after the bounded reflection
// tables above have flushed them. onStore, if non-nil, is invoked after
// each append with the records appended and the sealed-record count the
// append triggered (for cost accounting); it must not call back into
// the tracer.
func (tr *Tracer) AttachStore(st *tracestore.Store, onStore func(appended, sealed int)) {
	tr.store = st
	tr.onStore = onStore
}

// Store returns the attached trace store, or nil.
func (tr *Tracer) Store() *tracestore.Store { return tr.store }

func (tr *Tracer) noteStore(appended, sealed int) {
	if tr.onStore != nil {
		tr.onStore(appended, sealed)
	}
}

// Register records the provenance of a tuple the node just assigned an ID
// to: where it came from (src/srcID; the node itself for local tuples)
// and where it lives or is headed (dst). Content is memoized only if a
// ruleExec row ends up referencing the ID. Remote arrivals additionally
// append a hop record to the attached store — the durable cross-node
// provenance edge lineage queries follow.
func (tr *Tracer) Register(id uint64, content tuple.Tuple, src string, srcID uint64, dst string, now float64) {
	if tr.store != nil && src != "" && src != tr.local {
		sealed := tr.store.AppendHop(tracestore.Hop{ID: id, Src: src, SrcID: srcID, Dst: dst, T: now})
		tr.noteStore(1, sealed)
	}
	if _, ok := tr.memo[id]; ok {
		return
	}
	tr.pending[id] = prov{content: content, src: src, srcID: srcID, dst: dst}
}

// TaskDone discards provenance for tuples that ended the task
// unreferenced. Records persist across tasks (bounded per strand).
func (tr *Tracer) TaskDone() {
	if len(tr.pending) > 0 {
		tr.pending = make(map[uint64]prov)
	}
}

// Input observes a tuple entering a rule strand.
func (tr *Tracer) Input(s *dataflow.Strand, t tuple.Tuple, now float64) {
	r := tr.freeRecord(s)
	r.active = true
	r.inID = t.ID
	r.inTime = now
	for i := range r.pre {
		r.pre[i] = precond{}
	}
	if s.Stages >= 1 {
		r.first, r.last = 1, 1
	} else {
		r.first, r.last = 1, 0
	}
}

func (tr *Tracer) freeRecord(s *dataflow.Strand) *record {
	recs := tr.records[s]
	// Prefer an inactive record.
	for _, r := range recs {
		if !r.active {
			return r
		}
	}
	if len(recs) < tr.cfg.RecordsPerStrand {
		var r *record
		if n := len(tr.pool); n > 0 {
			r = tr.pool[n-1]
			tr.pool[n-1] = nil
			tr.pool = tr.pool[:n-1]
			pre := r.pre
			if cap(pre) >= s.Stages+1 {
				pre = pre[:s.Stages+1]
				for i := range pre {
					pre[i] = precond{}
				}
			} else {
				pre = make([]precond, s.Stages+1)
			}
			*r = record{pre: pre}
		} else {
			r = &record{pre: make([]precond, s.Stages+1)}
		}
		tr.records[s] = append(recs, r)
		return r
	}
	// Recycle the record with the oldest input.
	oldest := recs[0]
	for _, r := range recs[1:] {
		if r.inTime < oldest.inTime {
			oldest = r
		}
	}
	return oldest
}

// findByStage returns the record whose associated interval contains
// stage, or nil.
func (tr *Tracer) findByStage(s *dataflow.Strand, stage int) *record {
	for _, r := range tr.records[s] {
		if r.active && r.first <= stage && stage <= r.last {
			return r
		}
	}
	return nil
}

// latest returns the active record with the highest associated stage
// (ties broken by most recent input).
func (tr *Tracer) latest(s *dataflow.Strand) *record {
	var best *record
	for _, r := range tr.records[s] {
		if !r.active {
			continue
		}
		if best == nil || r.last > best.last ||
			(r.last == best.last && r.inTime > best.inTime) {
			best = r
		}
	}
	return best
}

// Precond observes a precondition tuple fetched by the join at the given
// stage. Fields to the right of the stage are flushed, per §2.1.1: a
// precondition arriving "in the middle" of the strand invalidates
// later-stage observations belonging to a previous iteration.
func (tr *Tracer) Precond(s *dataflow.Strand, stage int, t tuple.Tuple, now float64) {
	if stage < 1 || stage > s.Stages {
		return
	}
	r := tr.findByStage(s, stage)
	if r == nil {
		// Extend the record with the latest associated stages.
		r = tr.latest(s)
		if r == nil {
			return
		}
		if stage > r.last {
			r.last = stage
		} else {
			r.first = stage
		}
	}
	r.pre[stage] = precond{filled: true, id: t.ID, time: now}
	for i := stage + 1; i <= s.Stages; i++ {
		r.pre[i] = precond{}
	}
}

// Output observes a head tuple produced by the strand and packages the
// owning record into ruleExec rows: one causal link from the input event
// and one from each recorded precondition.
func (tr *Tracer) Output(s *dataflow.Strand, t tuple.Tuple, now float64) {
	r := tr.latest(s)
	if r == nil {
		return
	}
	tr.emitRuleExec(s.RuleID, r.inID, t.ID, r.inTime, now, true)
	for stage := 1; stage <= s.Stages; stage++ {
		if r.pre[stage].filled {
			tr.emitRuleExec(s.RuleID, r.pre[stage].id, t.ID, r.pre[stage].time, now, false)
		}
	}
}

// StageDone signals that the stateful element at the given stage seeks a
// new input (§2.1.2). The record whose interval begins at the stage
// abandons it; advancing past the final stage retires the record.
func (tr *Tracer) StageDone(s *dataflow.Strand, stage int) {
	if stage < 1 || stage > s.Stages {
		// Strands without joins retire their record when the (virtual)
		// stage 0 completes, i.e. at activation end.
		if s.Stages == 0 {
			if r := tr.latest(s); r != nil {
				r.active = false
			}
		}
		return
	}
	for _, r := range tr.records[s] {
		if r.active && r.first == stage {
			r.first = stage + 1
			if r.first > s.Stages {
				r.active = false
			}
			return
		}
	}
	if r := tr.latest(s); r != nil && stage > r.last {
		r.last = stage
	}
}

// emitRuleExec inserts one ruleExec row and pins both referenced tuples
// in tupleTable.
func (tr *Tracer) emitRuleExec(ruleID string, inID, outID uint64, inT, outT float64, isEvent bool) {
	tr.addRef(inID, outT)
	tr.addRef(outID, outT)
	row := tuple.New(RuleExecTable,
		tuple.Str(tr.local),
		tuple.Str(ruleID),
		tuple.ID(inID),
		tuple.ID(outID),
		tuple.Float(inT),
		tuple.Float(outT),
		tuple.Bool(isEvent),
	)
	// Insert can evict/replace rows, whose delete notifications release
	// references; that is exactly the paper's flushing behaviour.
	if _, err := tr.ruleExec.Insert(row, outT); err != nil {
		panic(fmt.Sprintf("trace: ruleExec insert: %v", err)) // impossible: name matches
	}
	if tr.store != nil {
		sealed := tr.store.AppendExec(tracestore.Exec{
			Rule: ruleID, InID: inID, OutID: outID, InT: inT, OutT: outT, IsEvent: isEvent,
		})
		tr.noteStore(1, sealed)
	}
}

func (tr *Tracer) addRef(id uint64, now float64) {
	if e, ok := tr.memo[id]; ok {
		e.refs++
		return
	}
	p, ok := tr.pending[id]
	if !ok {
		// Unregistered tuple (tracing enabled mid-flight): synthesize
		// local provenance.
		p = prov{src: tr.local, srcID: id, dst: tr.local}
	}
	tr.memo[id] = &memoEntry{prov: p, refs: 1}
	row := tuple.New(TupleTable,
		tuple.Str(tr.local),
		tuple.ID(id),
		tuple.Str(p.src),
		tuple.ID(p.srcID),
		tuple.Str(p.dst),
	)
	if _, err := tr.tuples.Insert(row, now); err != nil {
		panic(fmt.Sprintf("trace: tupleTable insert: %v", err))
	}
}

func (tr *Tracer) release(id uint64) {
	e, ok := tr.memo[id]
	if !ok {
		return
	}
	e.refs--
	if e.refs > 0 {
		return
	}
	delete(tr.memo, id)
	sample := tuple.New(TupleTable, tuple.Str(tr.local), tuple.ID(id), tuple.Str(""), tuple.ID(0), tuple.Str(""))
	tr.tuples.DeleteKey(sample)
}

// Content returns the memoized tuple for an ID, if still referenced.
func (tr *Tracer) Content(id uint64) (tuple.Tuple, bool) {
	if e, ok := tr.memo[id]; ok {
		return e.content, true
	}
	return tuple.Tuple{}, false
}

// Reset drops every piece of in-memory trace state — memoized
// provenance, pending registrations, strand records — AND purges the
// trace reflection tables themselves. The engine calls it when a node
// restarts with soft-state loss. Clearing the tables here (idempotent
// if the caller already wiped the store) is load-bearing, not
// cosmetic: a restarted node reuses tuple IDs from 1, so a stale
// pre-crash ruleExec row that expired later would fire the release
// subscription against a reused ID and evict a live post-restart memo
// entry. Records return to the pool for reuse; the event-log sequence
// restarts. The attached trace store is deliberately NOT cleared — it
// is the forensic record that must survive the restart — but gets a
// "restart" marker so investigations can see the discontinuity.
func (tr *Tracer) Reset(now float64) {
	tr.ruleExec.Clear()
	tr.tuples.Clear()
	if tr.tupleLog != nil {
		tr.tupleLog.Clear()
	}
	tr.memo = make(map[uint64]*memoEntry)
	tr.pending = make(map[uint64]prov)
	for _, recs := range tr.records {
		tr.pool = append(tr.pool, recs...)
	}
	tr.records = make(map[*dataflow.Strand][]*record)
	tr.seq = 0
	if tr.store != nil {
		sealed := tr.store.AppendEvent(tracestore.Event{Op: "restart", Name: "", ID: 0, T: now})
		tr.noteStore(1, sealed)
	}
}

// ForgetStrand drops the per-strand record state of an uninstalled
// strand, so the tracer holds no reference to it. Already-emitted
// ruleExec rows survive (they are execution history and age out by TTL);
// memo references are owned by those rows, not by records, so nothing
// leaks.
func (tr *Tracer) ForgetStrand(s *dataflow.Strand) {
	delete(tr.records, s)
}

// RecordStrands reports how many strands currently hold tracer records
// (a leak check for query uninstallation).
func (tr *Tracer) RecordStrands() int { return len(tr.records) }

// MemoSize reports how many tuples are currently memoized (live trace
// tuples, part of the memory-overhead measurements).
func (tr *Tracer) MemoSize() int { return len(tr.memo) }

// logged tables are never themselves logged (the log would feed itself).
func loggedName(name string) bool {
	switch name {
	case RuleExecTable, TupleTable, TupleLogTable:
		return false
	}
	return true
}

// LogEvent buffers one system event in tupleLog: op is "arrive",
// "insert", or "delete"; name and id identify the tuple (§2.1's event
// logging). The attached store gets the event even when the in-table
// buffer is disabled — durable event history does not depend on the
// soft-state budget.
func (tr *Tracer) LogEvent(op, name string, id uint64, now float64) {
	if !loggedName(name) {
		return
	}
	if tr.store != nil {
		sealed := tr.store.AppendEvent(tracestore.Event{Op: op, Name: name, ID: id, T: now})
		tr.noteStore(1, sealed)
	}
	if tr.tupleLog == nil {
		return
	}
	tr.seq++
	row := tuple.New(TupleLogTable,
		tuple.Str(tr.local), tuple.ID(tr.seq), tuple.Str(op),
		tuple.Str(name), tuple.ID(id), tuple.Float(now))
	tr.tupleLog.Insert(row, now) //nolint:errcheck // name always matches
}
