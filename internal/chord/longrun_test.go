package chord

import (
	"testing"

	"p2go/internal/trace"
)

// TestLongRunStability runs a traced ring for 30 virtual minutes and
// checks that soft state and the tracer's memo stay bounded (no leaks)
// and the ring invariants keep holding. (A 2-virtual-hour variant of
// this test was used during development with the same outcome.)
func TestLongRunStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	tcfg := trace.DefaultConfig()
	r, err := NewRing(RingConfig{N: 8, Seed: 42, Tracing: &tcfg})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(600)
	mid := r.Node("n8").Store().LiveTuples()
	midMemo := r.Node("n8").Tracer().MemoSize()
	r.Run(1200) // 30 virtual minutes total
	end := r.Node("n8").Store().LiveTuples()
	endMemo := r.Node("n8").Tracer().MemoSize()
	if float64(end) > 1.5*float64(mid)+100 {
		t.Errorf("live tuples grew: %d -> %d", mid, end)
	}
	if float64(endMemo) > 1.5*float64(midMemo)+100 {
		t.Errorf("tracer memo grew: %d -> %d", midMemo, endMemo)
	}
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Errorf("ring degraded over the long run: %v", bad)
	}
}
