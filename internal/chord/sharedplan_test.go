package chord

import (
	"fmt"
	"strings"
	"testing"

	"p2go/internal/engine"
)

// planSignature captures the observable content of a node's compiled
// plans, enough to detect any mutation of the shared immutable Plan.
func planSignature(n *engine.Node) string {
	var b strings.Builder
	for _, p := range n.Plans() {
		fmt.Fprintf(&b, "%s|%s|%s/%d|ops=%d|vars=%d|%s|del=%v|stages=%d|fp=%+v\n",
			p.RuleID, p.Source, p.HeadName, len(p.HeadArgs), len(p.Ops),
			p.NumVars, strings.Join(p.VarNames, ","), p.IsDelete, p.Stages, p.Footprint)
	}
	return b.String()
}

// TestSharedPlanIsolation drives one ring hard and asymmetrically —
// intra-node parallel execution, the parallel simnet driver, a late
// join, lookups on one node, a crash — and asserts that (a) every node
// runs off the same shared *Plan pointers, (b) the shared plans'
// contents never change while per-node strand state churns, and (c)
// emissions are bit-identical to a ring planned privately per node
// (P2GO_DISABLE_SHARED_PLANS path). Run under -race this also makes
// the workers' concurrent reads of the shared plans checkable.
func TestSharedPlanIsolation(t *testing.T) {
	build := func(private bool) (*Ring, error) {
		saved := engine.DisableSharedPlans
		engine.DisableSharedPlans = private
		defer func() { engine.DisableSharedPlans = saved }()
		r, err := NewRing(RingConfig{
			N: 8, Seed: 11, Parallel: true, Workers: 4,
			ExecMode: engine.ExecMulti, NodeWorkers: 4,
		})
		if err != nil {
			return nil, err
		}
		r.Run(120)
		if _, err := r.AddLateNode("n9"); err != nil {
			return nil, err
		}
		r.Run(30)
		for k := uint64(0); k < 5; k++ {
			if err := r.Lookup("n2", k*1e17, k); err != nil {
				return nil, err
			}
		}
		r.Net.Crash("n3")
		r.Run(60)
		return r, nil
	}

	shared, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	// (a) one shared plan set across all nodes, late joiner included.
	ref := shared.Node("n1").Plans()
	refSig := planSignature(shared.Node("n1"))
	for _, a := range shared.Addrs {
		ps := shared.Node(a).Plans()
		if len(ps) != len(ref) {
			t.Fatalf("%s has %d plans, n1 has %d", a, len(ps), len(ref))
		}
		for i := range ps {
			if ps[i] != ref[i] {
				t.Fatalf("%s plan %d is a private copy; want the shared instance", a, i)
			}
		}
	}
	// (b) churn mutated strand state only, never the shared plans.
	if sig := planSignature(shared.Node("n1")); sig != refSig {
		t.Fatal("shared plan contents changed under churn")
	}

	private, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	for i, ps := 0, private.Node("n1").Plans(); i < len(ps) && i < len(ref); i++ {
		if ps[i] == ref[i] {
			t.Fatalf("private-plan run shares plan %d with the shared run", i)
		}
	}
	// (c) bit-identical emissions either way.
	if a, b := ringFingerprint(shared), ringFingerprint(private); a != b {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := max(0, i-150)
		t.Fatalf("shared and private plan runs diverged at byte %d:\n...shared:  %q\n...private: %q",
			i, a[lo:min(len(a), i+150)], b[lo:min(len(b), i+150)])
	}
}
