package chord

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"p2go/internal/tuple"
)

// ringFingerprint captures everything the determinism contract covers:
// each node's metrics counters, the full contents (including node-local
// tuple IDs) of every table on every node, the network-wide totals, and
// the drop count.
func ringFingerprint(r *Ring) string {
	var b strings.Builder
	now := r.Sim.Now()
	for _, a := range r.Addrs {
		n := r.Node(a)
		fmt.Fprintf(&b, "%s metrics=%+v\n", a, n.Metrics())
		st := n.Store()
		names := st.Names()
		sort.Strings(names)
		for _, name := range names {
			var rows []string
			st.Get(name).Scan(now, func(t tuple.Tuple) {
				rows = append(rows, fmt.Sprintf("%v#%d", t, t.ID))
			})
			sort.Strings(rows)
			fmt.Fprintf(&b, "%s/%s(%d): %s\n", a, name, len(rows), strings.Join(rows, " "))
		}
	}
	fmt.Fprintf(&b, "total=%+v dropped=%d watched=%d errors=%d now=%v\n",
		r.Net.TotalMetrics(), r.Net.Dropped(), len(r.Watched), len(r.Errors), now)
	return b.String()
}

// TestParallelDeterminism21 is the PR's correctness spine: the paper's
// 21-node Chord convergence workload (the TestConvergence21 scenario,
// plus message loss to exercise the per-link RNG streams) must produce
// bit-identical metrics, drop counts, and final table contents on every
// node under the sequential and the parallel driver.
func TestParallelDeterminism21(t *testing.T) {
	if testing.Short() {
		t.Skip("two 21-node 300s rings")
	}
	build := func(parallel bool) string {
		r, err := NewRing(RingConfig{
			N: 21, Seed: 42, LossProb: 0.02,
			Parallel: parallel, Workers: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Run(300)
		if parallel {
			// The parallel driver must also leave the ring converged.
			if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
				t.Errorf("parallel ring not converged after 300s: %v", bad)
			}
		}
		return ringFingerprint(r)
	}
	seq := build(false)
	par := build(true)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := max(0, i-200)
		t.Fatalf("sequential and parallel runs diverged at byte %d:\n...seq: %q\n...par: %q",
			i, seq[lo:min(len(seq), i+200)], par[lo:min(len(par), i+200)])
	}
}
