package chord

import (
	"testing"

	"p2go/internal/tuple"
)

func TestTreeParentRank(t *testing.T) {
	cases := []struct {
		rank, fanout, parent, depth int
	}{
		{1, 4, 1, 0},
		{2, 4, 1, 1},
		{5, 4, 1, 1},
		{6, 4, 2, 2},
		{9, 4, 2, 2},
		{10, 4, 3, 2},
		{21, 4, 5, 2},
		{22, 4, 6, 3},
		{2, 1, 1, 1}, // fanout 1 degenerates to a chain
		{4, 1, 3, 3},
		{1000, 4, 250, 5},
	}
	for _, c := range cases {
		if got := TreeParentRank(c.rank, c.fanout); got != c.parent {
			t.Errorf("TreeParentRank(%d, %d) = %d, want %d", c.rank, c.fanout, got, c.parent)
		}
		if got := TreeDepth(c.rank, c.fanout); got != c.depth {
			t.Errorf("TreeDepth(%d, %d) = %d, want %d", c.rank, c.fanout, got, c.depth)
		}
	}
	// Fan-in bound by construction: no rank in 1..N has more than K
	// children (plus the root's self-loop, which is not a message).
	const n, k = 1000, 4
	children := map[int]int{}
	for rank := 2; rank <= n; rank++ {
		children[TreeParentRank(rank, k)]++
	}
	for p, c := range children {
		if c > k {
			t.Fatalf("rank %d has %d children, fanout %d", p, c, k)
		}
	}
}

func treeRing(t *testing.T, n int, cfg TreeConfig) *Ring {
	t.Helper()
	r, err := NewRing(RingConfig{N: n, Seed: 7, Tree: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTreeOverlayConverges(t *testing.T) {
	const n, k = 10, 3
	r := treeRing(t, n, TreeConfig{Fanout: k, Heartbeat: 2})
	r.Run(30)
	for i := 1; i <= n; i++ {
		addr := TreeAddr(i)
		want := TreeAddr(TreeParentRank(i, k))
		if got := r.TreeParentOf(addr); got != want {
			t.Errorf("%s: treeParent = %q, want canonical %q", addr, got, want)
		}
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[0])
	}
}

// treeHeardRow returns (parent, epoch) from a node's treeHeard table.
func treeHeardRow(r *Ring, addr string) (string, int64) {
	tb := r.Node(addr).Store().Get("treeHeard")
	if tb == nil {
		return "", -1
	}
	parent, ep := "", int64(-1)
	tb.Scan(r.Sim.Now(), func(t tuple.Tuple) {
		parent, ep = t.Field(1).AsStr(), t.Field(2).AsInt()
	})
	return parent, ep
}

func TestTreeRepairUnderChurn(t *testing.T) {
	// Ranks at fanout 3: n2..n4 under n1; n5..n7 under n2; n8..n10
	// under n3. Crashing n2 must reroute n5..n7 to their grandparent n1
	// within the silence window, and rejoin must win them back.
	const n, k, hb = 10, 3, 2.0
	r := treeRing(t, n, TreeConfig{Fanout: k, Heartbeat: hb})
	r.Run(20)
	r.Net.Crash("n2")
	r.Run(TreeDeadFactor*hb + 3*hb)
	for _, orphan := range []string{"n5", "n6", "n7"} {
		if got := r.TreeParentOf(orphan); got != "n1" {
			t.Errorf("after crash, %s parent = %q, want fallback n1", orphan, got)
		}
	}
	// Unrelated subtrees keep their canonical parents.
	if got := r.TreeParentOf("n8"); got != "n3" {
		t.Errorf("n8 parent = %q, want n3", got)
	}
	r.Net.Rejoin("n2")
	r.Run(6 * hb)
	for _, orphan := range []string{"n5", "n6", "n7"} {
		if got := r.TreeParentOf(orphan); got != "n2" {
			t.Errorf("after rejoin, %s parent = %q, want canonical n2", orphan, got)
		}
	}
	// The readopted parent's acks carry its bumped incarnation, so the
	// children's heard rows record the post-crash epoch.
	if parent, ep := treeHeardRow(r, "n5"); parent != "n2" || ep != 1 {
		t.Errorf("n5 treeHeard = (%q, epoch %d), want (n2, 1)", parent, ep)
	}
	if _, ep := treeHeardRow(r, "n8"); ep != 0 {
		t.Errorf("n8 heard epoch = %d, want 0 (parent never crashed)", ep)
	}
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[0])
	}
}

func TestTreeLateJoinerBecomesLeaf(t *testing.T) {
	const n, k = 7, 3
	r := treeRing(t, n, TreeConfig{Fanout: k, Heartbeat: 2})
	r.Run(10)
	if _, err := r.AddLateNode("n8"); err != nil {
		t.Fatal(err)
	}
	r.Run(10)
	want := TreeAddr(TreeParentRank(8, k))
	if got := r.TreeParentOf("n8"); got != want {
		t.Errorf("late joiner parent = %q, want %q", got, want)
	}
}
