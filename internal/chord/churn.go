package chord

import (
	"fmt"
	"math"

	"p2go/internal/engine"
	"p2go/internal/faults"
	"p2go/internal/metrics"
	"p2go/internal/overlog"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// ChurnConfig describes a churn experiment: a converged ring, a crash
// of several members, and their later rejoin (restart with soft-state
// loss), observed by monitoring programs. Zero values take the
// defaults of the §4-style 21-node deployment.
type ChurnConfig struct {
	// N is the ring size (default 21).
	N int
	// Seed drives everything (default 42).
	Seed int64
	// Victims are the crashed nodes; by default three members spread
	// around the address space (indices N/4, N/2, 3N/4).
	Victims []string
	// Converge is the pre-churn stabilization phase (default 300 s).
	Converge float64
	// CrashAt / RejoinAt are the fault times relative to the end of the
	// convergence phase (defaults 60 s and 120 s).
	CrashAt, RejoinAt float64
	// End is the observation horizon relative to the end of convergence
	// (default 300 s).
	End float64
	// QuietWindow is the tail of the observation window in which the
	// detectors are expected to have re-silenced (default 60 s).
	QuietWindow float64
	// LossProb adds base message loss.
	LossProb float64
	// Parallel/Workers select and size the parallel simnet driver.
	Parallel bool
	Workers  int
	// ExecMode/NodeWorkers select and size each node's intra-node
	// strand execution (engine.ExecMode); composes with Parallel.
	ExecMode    engine.ExecMode
	NodeWorkers int
	// Detectors are monitoring programs installed on every node
	// (typically monitor.RingProbeProgram and monitor.OscillationProgram);
	// the harness installs them as queries "extra1", "extra2", ...
	Detectors []*overlog.Program
	// AlarmNames are the watched predicates counted as detector alarms
	// (e.g. inconsistentPred, inconsistentSucc, oscill).
	AlarmNames []string
	// Uninstall lists query IDs to remove mid-run from every node via
	// the higher-order uninstallProgram event, scheduled UninstallAt
	// seconds after convergence (uninstall-under-fire). An event landing
	// on a crashed node is lost, like any delivery to a dead process —
	// pick an UninstallAt when the targets are up (0 = at convergence).
	Uninstall   []string
	UninstallAt float64
	// StatsPeriod, when positive, turns on stats publication on every
	// node (see RingConfig.StatsPeriod) — used by the overhead
	// measurement comparing churn runs with publication on and off.
	StatsPeriod float64
	// Tracing enables execution logging on every node; TraceStore
	// additionally writes every trace record through the durable store
	// (see RingConfig). Used by the forensics experiment, which runs
	// churn with the store on and off and investigates the crash
	// afterwards from the store alone.
	Tracing    *trace.Config
	TraceStore *tracestore.Config
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.N == 0 {
		c.N = 21
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Converge == 0 {
		c.Converge = 300
	}
	if c.CrashAt == 0 {
		c.CrashAt = 60
	}
	if c.RejoinAt == 0 {
		c.RejoinAt = 120
	}
	if c.End == 0 {
		c.End = 300
	}
	if c.QuietWindow == 0 {
		c.QuietWindow = 60
	}
	if len(c.Victims) == 0 {
		for _, i := range []int{c.N / 4, c.N / 2, 3 * c.N / 4} {
			c.Victims = append(c.Victims, fmt.Sprintf("n%d", i+1))
		}
	}
	return c
}

// ChurnResult is the repair-time/detection-latency table of one churn
// run. Latencies are in virtual seconds; -1 means "never observed".
type ChurnResult struct {
	// CrashTime / RejoinTime are the absolute virtual fault times.
	CrashTime  float64
	RejoinTime float64
	// PreAlarms counts detector alarms between convergence and the
	// crash — the healthy ring's false positives (should be 0). Alarms
	// raised while the ring was still forming are not counted.
	PreAlarms int
	// Detection is the latency from the crash to the first detector
	// alarm, and FirstAlarm names the detector that fired it.
	Detection  float64
	FirstAlarm string
	// Alarms counts all detector alarms from the crash to the end of
	// the observation window.
	Alarms int
	// SurvivorRepair is the latency from the crash until the surviving
	// members again satisfy the §3.1.1 ring invariants (the ring healed
	// around the crashed nodes).
	SurvivorRepair float64
	// RejoinRepair is the latency from the rejoin until the FULL
	// membership satisfies the ring invariants again.
	RejoinRepair float64
	// LastAlarm is the absolute time of the last detector alarm.
	LastAlarm float64
	// QuietAlarms counts alarms inside the final QuietWindow — the
	// detectors' failure to re-silence (should be 0).
	QuietAlarms int
	// Faults are the injector's counters for the run.
	Faults metrics.Faults
}

// String renders the result as the churn table.
func (r ChurnResult) String() string {
	lat := func(v float64) string {
		if v < 0 {
			return "never"
		}
		return fmt.Sprintf("%+.0fs", v)
	}
	return fmt.Sprintf(
		"  crash at t=%.0fs, rejoin at t=%.0fs\n"+
			"  pre-crash false alarms : %d\n"+
			"  detection latency      : %s (%s)\n"+
			"  survivor ring repaired : %s after crash\n"+
			"  full ring repaired     : %s after rejoin\n"+
			"  alarms (crash..end)    : %d, last at t=%.0fs, %d in final quiet window\n"+
			"  faults                 : injected=%d crashes=%d rejoins=%d",
		r.CrashTime, r.RejoinTime, r.PreAlarms,
		lat(r.Detection), r.FirstAlarm,
		lat(r.SurvivorRepair), lat(r.RejoinRepair),
		r.Alarms, r.LastAlarm, r.QuietAlarms,
		r.Faults.Injected, r.Faults.Crashes, r.Faults.Rejoins)
}

// RunChurn builds the ring, converges it, arms the crash/rejoin
// scenario as scheduler-barrier fault events, and measures detection
// and repair. The returned Ring allows further inspection (its watch
// stream holds every alarm).
func RunChurn(cfg ChurnConfig) (*Ring, ChurnResult, error) {
	cfg = cfg.withDefaults()
	r, err := NewRing(RingConfig{
		N: cfg.N, Seed: cfg.Seed, LossProb: cfg.LossProb,
		Parallel: cfg.Parallel, Workers: cfg.Workers,
		ExecMode: cfg.ExecMode, NodeWorkers: cfg.NodeWorkers,
		ExtraPrograms: cfg.Detectors,
		StatsPeriod:   cfg.StatsPeriod,
		Tracing:       cfg.Tracing,
		TraceStore:    cfg.TraceStore,
	})
	if err != nil {
		return nil, ChurnResult{}, err
	}
	r.Run(cfg.Converge)
	base := r.Sim.Now()

	sc := faults.Scenario{Name: "churn", Events: []faults.Event{
		{At: cfg.CrashAt, Kind: faults.Crash, Nodes: cfg.Victims},
		{At: cfg.RejoinAt, Kind: faults.Rejoin, Nodes: cfg.Victims},
	}}.Shift(base)
	inj, err := faults.Arm(r.Net, sc)
	if err != nil {
		return nil, ChurnResult{}, err
	}

	// Uninstall-under-fire: retire queries on every node mid-scenario
	// through the higher-order event, pre-scheduled so both simnet
	// drivers observe the identical sequence.
	if len(cfg.Uninstall) > 0 {
		at := cfg.UninstallAt
		for _, a := range r.Addrs {
			for _, qid := range cfg.Uninstall {
				ev := tuple.New(engine.UninstallEventName, tuple.Str(a), tuple.Str(qid))
				if err := r.Net.InjectAt(base+at, a, ev); err != nil {
					return nil, ChurnResult{}, err
				}
			}
		}
	}

	res := ChurnResult{
		CrashTime:  base + cfg.CrashAt,
		RejoinTime: base + cfg.RejoinAt,
		Detection:  -1, SurvivorRepair: -1, RejoinRepair: -1, LastAlarm: -1,
	}
	dead := make(map[string]bool, len(cfg.Victims))
	for _, v := range cfg.Victims {
		dead[v] = true
	}
	survivors := r.Alive(dead)

	// Step the clock 1 s at a time, polling the ring oracle between
	// steps (driver context, identical under both drivers).
	end := base + cfg.End
	for r.Sim.Now() < end {
		r.Run(math.Min(1, end-r.Sim.Now()))
		now := r.Sim.Now()
		if now > res.CrashTime && now <= res.RejoinTime &&
			res.SurvivorRepair < 0 && len(r.CheckRing(survivors)) == 0 {
			res.SurvivorRepair = now - res.CrashTime
		}
		if now > res.RejoinTime &&
			res.RejoinRepair < 0 && len(r.CheckRing(r.Addrs)) == 0 {
			res.RejoinRepair = now - res.RejoinTime
		}
	}

	alarm := make(map[string]bool, len(cfg.AlarmNames))
	for _, a := range cfg.AlarmNames {
		alarm[a] = true
	}
	quietStart := end - cfg.QuietWindow
	for _, w := range r.Watched {
		if !alarm[w.T.Name] || w.At < base {
			continue
		}
		if w.At < res.CrashTime {
			res.PreAlarms++
			continue
		}
		res.Alarms++
		if res.Detection < 0 {
			res.Detection = w.At - res.CrashTime
			res.FirstAlarm = w.T.Name
		}
		if w.At > res.LastAlarm {
			res.LastAlarm = w.At
		}
		if w.At >= quietStart {
			res.QuietAlarms++
		}
	}
	res.Faults = inj.Stats()
	return r, res, nil
}
