// Package chord implements the Chord distributed lookup service as an
// OverLog program over the P2 engine — the application every monitoring
// example in §3 of the paper is demonstrated against. The rule set is
// adapted from the P2 Chord of Loo et al. (SOSP 2005) that the paper
// builds on: successor/predecessor maintenance with periodic
// stabilization, finger tables fixed one position at a time with eager
// fill, liveness pings with failure detection, and the l1-l3 lookup rules
// quoted in §3.3 of the paper.
//
// Identifiers live on a 64-bit ring; a node's ID is the hash of its
// address (NodeID).
package chord

import (
	"fmt"
	"sync"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// Timing parameters, matching the paper's evaluation setup (§4): "Nodes
// fix fingers every 10 sec, stabilize every 5 sec, and ping neighbors for
// liveness every 5 sec."
const (
	StabilizePeriod = 5
	FingerPeriod    = 10
	PingPeriod      = 5
	JoinRetryPeriod = 3
	NumSuccessors   = 4
)

// Rules is the Chord OverLog program.
//
// Schema (first field is always the node's own address):
//
//	node(NAddr, NID)                 this node's ring identifier
//	landmark(NAddr, LAddr)           bootstrap node
//	succ(NAddr, SID, SAddr)          successor candidates (keyed by SID)
//	bestSucc(NAddr, SID, SAddr)      immediate successor
//	pred(NAddr, PID, PAddr)          immediate predecessor ("-" = none)
//	finger(NAddr, I, FID, FAddr)     finger at position I (target NID+2^I)
//	uniqueFinger(NAddr, FAddr, FID)  distinct routing neighbors
//	pingNode(NAddr, PAddr)           liveness-ping targets
//	lastHeard(NAddr, PAddr, T)       freshness per ping target
//	faultyNode(NAddr, FAddr, T)      recently declared-dead neighbors
//
// Events: lookup(NAddr, K, ReqAddr, E) and
// lookupResults(ReqAddr, K, SID, SAddr, E, RespAddr) as in §3.3.
const Rules = `
/* ---------------- state ---------------- */
materialize(node, infinity, 1, keys(1)).
materialize(landmark, infinity, 1, keys(1)).
materialize(succ, 30, 16, keys(2)).
materialize(pred, infinity, 1, keys(1)).
materialize(bestSucc, infinity, 1, keys(1)).
materialize(finger, 180, 64, keys(2)).
materialize(uniqueFinger, 180, 64, keys(2)).
materialize(nextFingerFix, infinity, 1, keys(1)).
materialize(fingerLookup, 60, 16, keys(2)).
materialize(pingNode, 12, 48, keys(2)).
materialize(lastHeard, 60, 48, keys(2)).
materialize(faultyNode, 30, 16, keys(2)).

/* ---------------- join ----------------
   While a node has no successor candidates it (re)joins through the
   landmark: a lookup for its own ID whose result becomes its successor.
   The landmark itself bootstraps a one-node ring. */
j1 succCount@N(count<*>) :- periodic@N(E, 3), succ@N(SID, SAddr).
j2 joinEvent@N(E) :- succCount@N(C), C == 0, E := f_rand().
j3 joinReq@L(N, NID, E) :- joinEvent@N(E), node@N(NID), landmark@N(L), L != N.
j4 succ@N(NID, N) :- joinEvent@N(E), node@N(NID), landmark@N(L), L == N.
j5 lookup@L(NID, N, E) :- joinReq@L(N, NID, E).
j6 succ@N(SID, SAddr) :- lookupResults@N(K, SID, SAddr, E, RespAddr), node@N(NID), K == NID.

/* ---------------- best successor ----------------
   bestSucc is the successor candidate at the smallest clockwise distance.
   Recomputed on every succ change and periodically (the periodic variant
   repairs staleness after deletions, which fire no deltas). */
bs1 bestSuccDist@N(min<D>) :- succ@N(SID, SAddr), node@N(NID), D := SID - NID - 1.
bs2 bestSuccDist@N(min<D>) :- periodic@N(E, 5), succ@N(SID, SAddr), node@N(NID), D := SID - NID - 1.
bs3 bestSucc@N(SID, SAddr) :- bestSuccDist@N(D), succ@N(SID, SAddr), node@N(NID), D == SID - NID - 1.

/* ---------------- stabilization (paper §3.1.1) ----------------
   Ask the successor for its predecessor and successor list; notify it of
   ourselves so it can adopt us as predecessor. */
sb1 stabilizeEvent@N(E) :- periodic@N(E, 5).
sb2 stabilizeRequest@SAddr(N) :- stabilizeEvent@N(E), bestSucc@N(SID, SAddr).
sb3 sendPred@ReqAddr(PID, PAddr) :- stabilizeRequest@N(ReqAddr), pred@N(PID, PAddr), PAddr != "-".
sb4 succ@N(SID, SAddr) :- sendPred@N(SID, SAddr).
sb5 reqSuccList@SAddr(N) :- stabilizeEvent@N(E), bestSucc@N(SID, SAddr).
sb6 returnSucc@ReqAddr(SID, SAddr) :- reqSuccList@N(ReqAddr), succ@N(SID, SAddr).
sb7 succ@N(SID, SAddr) :- returnSucc@N(SID, SAddr).
/* The response also refreshes the successor itself: without this the
   bestSucc entry's TTL would never be renewed (its owner never appears
   in its own successor list) and the ring would oscillate every 30 s. */
sb8 returnSucc@ReqAddr(NID, N) :- reqSuccList@N(ReqAddr), node@N(NID).

nt1 notify@SAddr(N, NID) :- stabilizeEvent@N(E), node@N(NID), bestSucc@N(SID, SAddr), SAddr != N.
nt2 pred@N(NID2, NAddr2) :- notify@N(NAddr2, NID2), node@N(NID), pred@N(PID, PAddr), (PAddr == "-") || (NID2 in (PID, NID)), NAddr2 != N.

/* Keep the successor list bounded: periodically evict the farthest
   candidate while more than NumSuccessors remain. */
ev1 succEvCount@N(count<*>) :- periodic@N(E, 7), succ@N(SID, SAddr).
ev2 evictSucc@N(E) :- succEvCount@N(C), C > 4, E := f_rand().
ev3 maxSuccDist@N(max<D>) :- evictSucc@N(E), succ@N(SID, SAddr), node@N(NID), D := SID - NID - 1.
ev4 delete succ@N(SID, SAddr) :- maxSuccDist@N(D), succ@N(SID, SAddr), node@N(NID), D == SID - NID - 1.

/* ---------------- lookups (paper §3.3, rules l1-l3) ----------------
   l2/l3 route over the raw position-keyed finger table, exactly as the
   paper's listing does. Because eager fill places the same node at many
   positions, l3 emits one forward per matching row: lookups amplify at
   every hop. This is faithful to P2 (and is the dominant cost behind
   Figure 6's superlinear CPU); uniqueFinger exists for the consistency
   probe (cs2) and as a routing fallback toward the best successor. */
l1 lookupResults@ReqAddr(K, SID, SAddr, E, N) :- node@N(NID), lookup@N(K, ReqAddr, E), bestSucc@N(SID, SAddr), K in (NID, SID].
l2 bestLookupDist@N(K, ReqAddr, E, min<D>) :- node@N(NID), lookup@N(K, ReqAddr, E), finger@N(I, FID, FAddr), D := K - FID - 1, FID in (NID, K).
l3 lookup@FAddr(K, ReqAddr, E) :- bestLookupDist@N(K, ReqAddr, E, D), finger@N(I, FID, FAddr), node@N(NID), D == K - FID - 1, FID in (NID, K).
/* Progress guarantee while fingers are empty: forward along the ring. */
l4 fingerCount@N(K, ReqAddr, E, count<*>) :- lookup@N(K, ReqAddr, E), node@N(NID), finger@N(I, FID, FAddr), FID in (NID, K).
l5 lookup@SAddr(K, ReqAddr, E) :- fingerCount@N(K, ReqAddr, E, C), C == 0, node@N(NID), bestSucc@N(SID, SAddr), K in (SID, NID], SAddr != N.

/* uniqueFinger holds distinct routing targets: every finger plus the
   best successor (which guarantees lookup progress along the ring even
   before fingers converge). Periodic variants refresh TTLs. */
uf1 uniqueFinger@N(FAddr, FID) :- finger@N(I, FID, FAddr).
uf2 uniqueFinger@N(SAddr, SID) :- bestSucc@N(SID, SAddr), SAddr != N.
uf3 uniqueFinger@N(FAddr, FID) :- periodic@N(E, 30), finger@N(I, FID, FAddr).
uf4 uniqueFinger@N(SAddr, SID) :- periodic@N(E, 5), bestSucc@N(SID, SAddr), SAddr != N.

/* ---------------- finger maintenance ----------------
   Fix one finger position per period via a lookup for NID + 2^I, with
   eager fill of the positions the result also covers (P2's optimization:
   a finger owning (NID, FID] serves every position whose target falls in
   that arc). Only the top half of the 64-bit position space is
   maintained: for any plausible network size, targets below 2^32 fall
   within the immediate successor's arc, so those positions would all
   duplicate bestSucc. This keeps the per-finger position duplication
   (and hence P2's lookup amplification) at the level of the paper's
   32-bit prototype. */
ff1 fixFinger@N(E, I) :- periodic@N(E, 10), nextFingerFix@N(I).
ff2 fingerLookup@N(E, I) :- fixFinger@N(E, I).
ff3 lookup@N(K, N, E) :- fixFinger@N(E, I), node@N(NID), K := NID + (1 << I).
ff4 fingerFill@N(I, BID, BAddr) :- lookupResults@N(K, BID, BAddr, E, RespAddr), fingerLookup@N(E, I).
ff5 finger@N(I, BID, BAddr) :- fingerFill@N(I, BID, BAddr).
ff6 fingerFill@N(I2, BID, BAddr) :- fingerFill@N(I, BID, BAddr), node@N(NID), I2 := I + 1, I2 < 64, K2 := NID + (1 << I2), K2 in (NID, BID].
ff7 nextFingerFix@N(I2) :- fingerFill@N(I, BID, BAddr), I2 := 32 + ((I + 1) % 32).
ff8 delete fingerLookup@N(E, I) :- fingerFill@N(I, BID, BAddr), fingerLookup@N(E, I).

/* ---------------- liveness pings and failure detection ---------------- */
pn1 pingNode@N(SAddr) :- periodic@N(E, 5), succ@N(SID, SAddr), SAddr != N.
pn2 pingNode@N(PAddr) :- periodic@N(E, 5), pred@N(PID, PAddr), PAddr != "-", PAddr != N.
pn3 pingNode@N(FAddr) :- periodic@N(E, 5), uniqueFinger@N(FAddr, FID), FAddr != N.

pp1 pingEvent@N(E) :- periodic@N(E, 5).
pp2 pingReq@PAddr(N, E) :- pingEvent@N(E), pingNode@N(PAddr).
pp4 pingResp@RAddr(N) :- pingReq@N(RAddr, E).

/* lastHeard tracks freshness per neighbor: seeded on first contact
   (pingNode delta) and renewed by ping responses. A neighbor is faulty
   after >17 s of silence (three to four missed 5 s pings), which keeps
   isolated message loss from producing false positives. */
ph1 lastHeard@N(PAddr, T) :- pingNode@N(PAddr), T := f_now().
ph2 lastHeard@N(PAddr, T) :- pingResp@N(PAddr), T := f_now().

fd1 faultyNode@N(PAddr, T) :- periodic@N(E, 5), pingNode@N(PAddr), lastHeard@N(PAddr, T0), T0 < f_now() - 17, T := f_now().
fd3 delete succ@N(SID, SAddr) :- faultyNode@N(SAddr, T), succ@N(SID, SAddr).
fd4 delete finger@N(I, FID, FAddr) :- faultyNode@N(FAddr, T), finger@N(I, FID, FAddr).
fd5 delete uniqueFinger@N(FAddr, FID) :- faultyNode@N(FAddr, T), uniqueFinger@N(FAddr, FID).
fd6 delete bestSucc@N(SID, SAddr) :- faultyNode@N(SAddr, T), bestSucc@N(SID, SAddr).
fd7 pred@N(0, "-") :- faultyNode@N(PAddr, T), pred@N(PID, PAddr).
fd8 delete pingNode@N(PAddr) :- faultyNode@N(PAddr, T), pingNode@N(PAddr).
`

// DeadGuardRules implement "remembering recently deceased neighbors",
// the fix §3.1.3 prescribes for the recycled dead neighbor problem:
// while a neighbor remains in faultyNode (30 s), gossip that reintroduces
// it (sb4/sb7 inserts from other nodes' stale state) is swept back out.
// Installing Chord WITHOUT these rules produces exactly the
// remove/reinsert oscillation the paper's os1-os9 detectors catch.
const DeadGuardRules = `
dg1 delete succ@N(SID, SAddr) :- periodic@N(E, 2), faultyNode@N(SAddr, T), succ@N(SID, SAddr).
dg2 delete finger@N(I, FID, FAddr) :- periodic@N(E, 2), faultyNode@N(FAddr, T), finger@N(I, FID, FAddr).
dg3 delete uniqueFinger@N(FAddr, FID) :- periodic@N(E, 2), faultyNode@N(FAddr, T), uniqueFinger@N(FAddr, FID).
dg4 delete bestSucc@N(SID, SAddr) :- periodic@N(E, 2), faultyNode@N(SAddr, T), bestSucc@N(SID, SAddr).
dg5 delete pingNode@N(PAddr) :- periodic@N(E, 2), faultyNode@N(PAddr, T), pingNode@N(PAddr).
`

// NodeID returns the ring identifier for an address: the engine's value
// hash of the address string (what f_hash(N) computes in OverLog).
func NodeID(addr string) uint64 { return tuple.Str(addr).Hash() }

// Program parses the full Chord rule set including the dead-neighbor
// guard (panics on internal error; the rules are compile-time constants).
func Program() *overlog.Program { return overlog.MustParse(Rules + DeadGuardRules) }

// BuggyAmnesiaRules model the root cause of §3.1.3's recycled dead
// neighbor problem: the implementation forgets that a neighbor was
// declared dead. Wiping lastHeard on a faulty declaration gives any
// gossip-reinserted copy of the neighbor a fresh acceptance window, so
// the node oscillates between removing and re-adopting it.
// (Note that the delta rewrite of fd3-fd8 already acts as a guard: a
// gossip reinsert of a dead neighbor re-joins the remembered faultyNode
// row and is deleted on the spot. Forgetting therefore requires wiping
// BOTH the faultyNode row and the neighbor's lastHeard freshness.)
const BuggyAmnesiaRules = `
fb1 delete lastHeard@N(PAddr, T) :- faultyNode@N(PAddr, T2), lastHeard@N(PAddr, T).
fb2 delete faultyNode@N(PAddr, T) :- faultyNode@N(PAddr, T).
`

// BuggyProgram parses Chord WITHOUT the dead-neighbor guard and WITH the
// amnesia bug: the incorrect implementation of §3.1.3 that oscillates
// between removing and reinserting a deceased neighbor. The monitor
// package's oscillation detectors are demonstrated against it.
func BuggyProgram() *overlog.Program { return overlog.MustParse(Rules + BuggyAmnesiaRules) }

// The Chord programs are compile-time constants, so they are parsed and
// planned exactly once per process and every ring node instantiates the
// same immutable plans ("plan once, instantiate N times") — the memory
// and install-time win that makes 1k-10k node rings viable. Nodes whose
// environment differs from the compile-time reference (or runs with
// shared plans disabled) transparently plan privately instead, with
// bit-identical results.
var (
	compileOnce     sync.Once
	compiledGood    *engine.CompiledQuery
	compiledBuggy   *engine.CompiledQuery
	compileGoodErr  error
	compileBuggyErr error
)

func compilePrograms() {
	compiledGood, compileGoodErr = engine.CompileQuery(Program())
	compiledBuggy, compileBuggyErr = engine.CompileQuery(BuggyProgram())
}

// Compiled returns the process-wide shared compilation of the full
// Chord program (Rules + DeadGuardRules).
func Compiled() (*engine.CompiledQuery, error) {
	compileOnce.Do(compilePrograms)
	return compiledGood, compileGoodErr
}

// CompiledBuggy returns the shared compilation of the buggy variant.
func CompiledBuggy() (*engine.CompiledQuery, error) {
	compileOnce.Do(compilePrograms)
	return compiledBuggy, compileBuggyErr
}

// Install loads the Chord program onto a node and seeds its base state:
// its own identity, the landmark pointer, an empty predecessor, and the
// finger-fix cursor. The node joins the ring autonomously once the driver
// starts delivering timers.
func Install(n *engine.Node, landmark string) error {
	cq, err := Compiled()
	if err != nil {
		return fmt.Errorf("chord: %w", err)
	}
	return installCompiled(n, cq, landmark)
}

// InstallBuggy loads the oscillation-prone Chord variant (see
// BuggyProgram).
func InstallBuggy(n *engine.Node, landmark string) error {
	cq, err := CompiledBuggy()
	if err != nil {
		return fmt.Errorf("chord: %w", err)
	}
	return installCompiled(n, cq, landmark)
}

// QueryID is the query name the Chord overlay program is installed
// under on every node (the substrate monitoring queries deploy against).
const QueryID = "chord"

func installCompiled(n *engine.Node, cq *engine.CompiledQuery, landmark string) error {
	if _, err := n.InstallCompiledQuery(QueryID, cq); err != nil {
		return fmt.Errorf("chord: %w", err)
	}
	addr := n.Addr()
	seeds := []tuple.Tuple{
		tuple.New("node", tuple.Str(addr), tuple.ID(NodeID(addr))),
		tuple.New("landmark", tuple.Str(addr), tuple.Str(landmark)),
		tuple.New("pred", tuple.Str(addr), tuple.Int(0), tuple.Str("-")),
		tuple.New("nextFingerFix", tuple.Str(addr), tuple.Int(32)),
	}
	// SeedLocal (not HandleLocal) records these as the node's preamble,
	// so a restart with soft-state loss re-bootstraps from the same
	// identity and landmark pointer and rejoins the ring autonomously.
	for _, s := range seeds {
		n.SeedLocal(s)
	}
	return nil
}

// LookupEvent builds a lookup event tuple for key k, to be injected at
// node addr with results returned to reqAddr under request ID e.
func LookupEvent(addr string, k uint64, reqAddr string, e uint64) tuple.Tuple {
	return tuple.New("lookup",
		tuple.Str(addr), tuple.ID(k), tuple.Str(reqAddr), tuple.ID(e))
}
