package chord

import (
	"fmt"
	"sort"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/planner"
	"p2go/internal/simnet"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// RingConfig configures a simulated Chord deployment.
type RingConfig struct {
	// N is the number of nodes; addresses are "n1".."nN" and n1 is the
	// landmark.
	N int
	// Seed makes the run reproducible.
	Seed int64
	// Tracing enables execution logging on every node.
	Tracing *trace.Config
	// TraceStore gives every traced node a durable append-only trace
	// store (requires Tracing; see engine.Config.TraceStore).
	TraceStore *tracestore.Config
	// LossProb drops messages with this probability.
	LossProb float64
	// Buggy installs the Chord variant without the dead-neighbor guard
	// (the recycled-dead-neighbor bug of §3.1.3).
	Buggy bool
	// MinDelay/MaxDelay override the simulated one-way message latency
	// bounds (defaults 5-25 ms).
	MinDelay, MaxDelay float64
	// Parallel runs the ring on simnet's conservative parallel driver;
	// results are identical to the sequential driver for the same seed.
	Parallel bool
	// Workers bounds the parallel worker pool (0 = GOMAXPROCS).
	Workers int
	// ExecMode selects each node's intra-node strand execution strategy
	// (engine.ExecAuto/ExecSingle/ExecMulti); composes with Parallel,
	// with bit-identical results across all combinations.
	ExecMode engine.ExecMode
	// NodeWorkers bounds each node's intra-node worker pool
	// (0 = GOMAXPROCS).
	NodeWorkers int
	// OnWatch receives watched tuples (in addition to Ring.Watched).
	OnWatch func(now float64, node string, t tuple.Tuple)
	// ExtraPrograms are installed on every node after Chord (monitoring
	// queries, §3-style add-ons), as managed queries named "extra1",
	// "extra2", ... in slice order — uninstallable by that ID.
	ExtraPrograms []*overlog.Program
	// StatsPeriod, when positive, turns on stats publication on every
	// node (engine.EnableStatsPublication): the engine's counters become
	// queryable through the nodeStats/queryStats tables, refreshed on
	// this period.
	StatsPeriod float64
	// Tree, when set, installs the aggregation-tree overlay on every
	// node (see tree.go); node i joins at rank i. It installs before
	// ExtraPrograms, so extras may reference treeParent.
	Tree *TreeConfig
	// NoChord skips the Chord substrate: nodes get only the overlay,
	// stats publication and the extra programs. Monitoring benchmarks
	// use this to measure their own traffic on quiet hosts — large
	// rings can drive Chord itself into the distressed regime (load-
	// delayed pings read as failures), which starves everything queued
	// behind the substrate's repair storm.
	NoChord bool
}

// ExtraQueryID returns the query ID the harness installs the i-th
// (0-based) entry of RingConfig.ExtraPrograms under.
func ExtraQueryID(i int) string { return fmt.Sprintf("extra%d", i+1) }

// compileExtras compiles the extra programs once per ring so every node
// instantiates shared plans instead of re-planning privately. Programs
// install in slice order after Chord, so each compiles against the Chord
// tables plus the declarations of the extras before it. A program that
// fails to compile gets a nil entry and is installed privately per node,
// which reports the original error (or succeeds, if the program depends
// on node state the compile-time environment cannot see).
func compileExtras(cfg RingConfig, tree *engine.CompiledQuery, progs []*overlog.Program) []*engine.CompiledQuery {
	if len(progs) == 0 {
		return nil
	}
	baseNames := make(map[string]bool)
	if !cfg.NoChord {
		chordCq, err := Compiled()
		if cfg.Buggy {
			chordCq, err = CompiledBuggy()
		}
		if err == nil {
			for _, t := range chordCq.DeclaredTables() {
				baseNames[t] = true
			}
		}
	}
	if tree != nil {
		for _, t := range tree.DeclaredTables() {
			baseNames[t] = true
		}
	}
	// The engine's system tables (nodeEpoch, nodeStats, queryStats, ...)
	// exist on every node, so extras joining them still get shared plans.
	base := planner.EnvFunc(func(name string) bool {
		return baseNames[name] || engine.IsSystemTable(name)
	})
	out := make([]*engine.CompiledQuery, len(progs))
	for i, p := range progs {
		c, err := engine.CompileQueryEnv(p, base)
		if err != nil {
			continue
		}
		out[i] = c
		for _, t := range c.DeclaredTables() {
			baseNames[t] = true
		}
	}
	return out
}

// installExtras installs the extra programs on one node, using the
// shared compilations where available.
func installExtras(n *engine.Node, progs []*overlog.Program, compiled []*engine.CompiledQuery) error {
	for i, p := range progs {
		if c := compiled[i]; c != nil {
			if _, err := n.InstallCompiledQuery(ExtraQueryID(i), c); err != nil {
				return err
			}
			continue
		}
		if _, err := n.InstallQuery(ExtraQueryID(i), p); err != nil {
			return err
		}
	}
	return nil
}

// Ring is a simulated Chord network: the harness tests, the monitoring
// examples and the §4 benchmarks all run against it.
type Ring struct {
	Sim   *simnet.Sim
	Net   *simnet.Network
	Addrs []string
	// Watched collects every watched tuple with its observation time
	// and node.
	Watched []WatchedTuple
	// Errors collects rule errors (should stay empty in healthy runs).
	Errors []string
	// treeCfg/treeCompiled carry the overlay setup to late joiners.
	treeCfg      *TreeConfig
	treeCompiled *engine.CompiledQuery
	noChord      bool
}

// WatchedTuple is one watched-tuple observation.
type WatchedTuple struct {
	At   float64
	Node string
	T    tuple.Tuple
}

// NewRing builds and seeds the network. Nodes join autonomously; call
// Run to let the ring converge.
func NewRing(cfg RingConfig) (*Ring, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("chord: ring needs at least one node")
	}
	mode := simnet.Sequential
	if cfg.Parallel {
		mode = simnet.Parallel
	}
	r := &Ring{Sim: simnet.NewSim(), noChord: cfg.NoChord}
	r.Net = simnet.NewNetwork(r.Sim, simnet.Config{
		Seed:        cfg.Seed,
		LossProb:    cfg.LossProb,
		MinDelay:    cfg.MinDelay,
		MaxDelay:    cfg.MaxDelay,
		Mode:        mode,
		Workers:     cfg.Workers,
		ExecMode:    cfg.ExecMode,
		NodeWorkers: cfg.NodeWorkers,
		Tracing:     cfg.Tracing,
		TraceStore:  cfg.TraceStore,
		OnWatch: func(now float64, node string, t tuple.Tuple) {
			r.Watched = append(r.Watched, WatchedTuple{At: now, Node: node, T: t})
			if cfg.OnWatch != nil {
				cfg.OnWatch(now, node, t)
			}
		},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			r.Errors = append(r.Errors, fmt.Sprintf("t=%.2f %s/%s: %v", now, node, ruleID, err))
		},
	})
	landmark := "n1"
	if cfg.Tree != nil {
		tc := cfg.Tree.withDefaults()
		r.treeCfg = &tc
		var err error
		if r.treeCompiled, err = CompiledTree(tc); err != nil {
			return nil, err
		}
	}
	extras := compileExtras(cfg, r.treeCompiled, cfg.ExtraPrograms)
	for i := 1; i <= cfg.N; i++ {
		addr := fmt.Sprintf("n%d", i)
		r.Addrs = append(r.Addrs, addr)
		n, err := r.Net.AddNode(addr)
		if err != nil {
			return nil, err
		}
		if !cfg.NoChord {
			install := Install
			if cfg.Buggy {
				install = InstallBuggy
			}
			if err := install(n, landmark); err != nil {
				return nil, err
			}
		}
		if r.treeCfg != nil {
			if err := InstallTree(n, *r.treeCfg, i, r.treeCompiled); err != nil {
				return nil, err
			}
		}
		if err := installExtras(n, cfg.ExtraPrograms, extras); err != nil {
			return nil, err
		}
		if cfg.StatsPeriod > 0 {
			if err := n.EnableStatsPublication(cfg.StatsPeriod); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Run advances virtual time by d seconds.
func (r *Ring) Run(d float64) { r.Net.RunFor(d) }

// Node returns the node with the given address.
func (r *Ring) Node(addr string) *engine.Node { return r.Net.Node(addr) }

// AddLateNode joins a new node to the running ring (churn injection).
// With the tree overlay on, the newcomer takes the next rank, becoming
// a leaf under the existing layout.
func (r *Ring) AddLateNode(addr string, extra ...*overlog.Program) (*engine.Node, error) {
	n, err := r.Net.AddNode(addr)
	if err != nil {
		return nil, err
	}
	if !r.noChord {
		if err := Install(n, "n1"); err != nil {
			return nil, err
		}
	}
	if r.treeCfg != nil {
		if err := InstallTree(n, *r.treeCfg, len(r.Addrs)+1, r.treeCompiled); err != nil {
			return nil, err
		}
	}
	if err := installExtras(n, extra, compileExtras(RingConfig{NoChord: r.noChord}, r.treeCompiled, extra)); err != nil {
		return nil, err
	}
	r.Addrs = append(r.Addrs, addr)
	return n, nil
}

// Alive returns the addresses the harness still considers ring members.
func (r *Ring) Alive(dead map[string]bool) []string {
	var out []string
	for _, a := range r.Addrs {
		if !dead[a] {
			out = append(out, a)
		}
	}
	return out
}

// TrueSuccessor computes the correct immediate successor of addr among
// members by ID order (the oracle the ring checkers compare against).
func TrueSuccessor(addr string, members []string) string {
	type ent struct {
		id   uint64
		addr string
	}
	ents := make([]ent, 0, len(members))
	for _, m := range members {
		ents = append(ents, ent{NodeID(m), m})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].id < ents[j].id })
	my := NodeID(addr)
	for _, e := range ents {
		if e.id > my {
			return e.addr
		}
	}
	return ents[0].addr // wraparound
}

// TrueOwner computes the correct owner (successor) of a key among
// members.
func TrueOwner(key uint64, members []string) string {
	type ent struct {
		id   uint64
		addr string
	}
	ents := make([]ent, 0, len(members))
	for _, m := range members {
		ents = append(ents, ent{NodeID(m), m})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].id < ents[j].id })
	for _, e := range ents {
		if e.id >= key {
			return e.addr
		}
	}
	return ents[0].addr
}

// BestSucc reads a node's current immediate successor address ("" if
// none).
func (r *Ring) BestSucc(addr string) string {
	tb := r.Node(addr).Store().Get("bestSucc")
	if tb == nil {
		return ""
	}
	out := ""
	tb.Scan(r.Sim.Now(), func(t tuple.Tuple) { out = t.Field(2).AsStr() })
	return out
}

// Pred reads a node's current predecessor address ("-" if none).
func (r *Ring) Pred(addr string) string {
	tb := r.Node(addr).Store().Get("pred")
	if tb == nil {
		return "-"
	}
	out := "-"
	tb.Scan(r.Sim.Now(), func(t tuple.Tuple) { out = t.Field(2).AsStr() })
	return out
}

// CheckRing verifies the converged-ring invariants of §3.1.1 against the
// oracle: every member's bestSucc is its true successor and its pred its
// true predecessor. It returns human-readable violations.
func (r *Ring) CheckRing(members []string) []string {
	var bad []string
	for _, a := range members {
		wantSucc := TrueSuccessor(a, members)
		if got := r.BestSucc(a); got != wantSucc {
			bad = append(bad, fmt.Sprintf("%s: bestSucc=%q want %q", a, got, wantSucc))
		}
	}
	for _, a := range members {
		wantPred := ""
		for _, b := range members {
			if TrueSuccessor(b, members) == a && b != a {
				wantPred = b
			}
		}
		if len(members) == 1 {
			continue // a lone node keeps pred "-"
		}
		if got := r.Pred(a); got != wantPred {
			bad = append(bad, fmt.Sprintf("%s: pred=%q want %q", a, got, wantPred))
		}
	}
	return bad
}

// Lookup injects a lookup for key at node from; results arrive as
// lookupResults events at from (observable via a watch program).
func (r *Ring) Lookup(from string, key, reqID uint64) error {
	return r.Net.Inject(from, LookupEvent(from, key, from, reqID))
}

// WatchProgram returns a program that watches the given predicates;
// installing it streams those tuples into Ring.Watched.
func WatchProgram(names ...string) *overlog.Program {
	src := ""
	for _, n := range names {
		src += fmt.Sprintf("watch(%s).\n", n)
	}
	return overlog.MustParse(src)
}
