package chord

import (
	"fmt"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/monitor"
	"p2go/internal/overlog"
)

// TestIntraNodeParallelDeterminism is the composition gate for the
// intra-node strand scheduler: the churn scenario (crash + rejoin under
// message loss, §3.1 detectors deployed, watch stream recorded) must be
// bit-identical across all four combinations of
// (ExecSingle|ExecMulti) x (sequential|parallel simnet driver).
// ExecMulti speculates conflict-free fan-outs onto a worker pool inside
// each node while the parallel driver runs whole nodes concurrently;
// neither layer — nor their composition — may leak into the results.
// Run with -race: this drives both worker pools at once.
func TestIntraNodeParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("four 9-node churn rings")
	}
	detectors := []*overlog.Program{
		monitor.RingProbeProgram(5),
		monitor.RingPassiveProgram(),
		monitor.OscillationProgram(),
	}
	alarms := []string{
		"inconsistentPred", "inconsistentSucc",
		"oscill", "repeatOscill", "chaotic",
	}
	build := func(parallel bool, mode engine.ExecMode) (string, int64) {
		r, res, err := RunChurn(ChurnConfig{
			N: 9, Seed: 7, LossProb: 0.02,
			Converge: 120, CrashAt: 20, RejoinAt: 60, End: 180,
			Parallel: parallel, Workers: 8,
			ExecMode: mode, NodeWorkers: 4,
			Detectors:  detectors,
			AlarmNames: alarms,
		})
		if err != nil {
			t.Fatal(err)
		}
		var committed int64
		for _, a := range r.Addrs {
			committed += r.Node(a).FanoutStats().Committed
		}
		return fmt.Sprintf("%+v\n", res) + ringFingerprint(r), committed
	}
	base, _ := build(false, engine.ExecSingle)
	for _, c := range []struct {
		parallel bool
		mode     engine.ExecMode
	}{
		{false, engine.ExecMulti},
		{true, engine.ExecSingle},
		{true, engine.ExecMulti},
	} {
		got, committed := build(c.parallel, c.mode)
		if got != base {
			i := 0
			for i < len(base) && i < len(got) && base[i] == got[i] {
				i++
			}
			lo := max(0, i-200)
			t.Fatalf("parallel=%v mode=%v diverged from the ExecSingle/sequential run at byte %d:\n...base: %q\n...got:  %q",
				c.parallel, c.mode, i,
				base[lo:min(len(base), i+200)], got[lo:min(len(got), i+200)])
		}
		if c.mode == engine.ExecMulti && committed == 0 {
			t.Errorf("parallel=%v mode=%v: no fan-out batch ever committed — the scheduler was not exercised", c.parallel, c.mode)
		}
	}
}
