package chord

import "testing"

// TestConvergence21 reproduces the paper's deployment scale: a 21-node
// ring (§4) must converge to the correct successor/predecessor relation
// within five minutes of virtual time.
func TestConvergence21(t *testing.T) {
	r, err := NewRing(RingConfig{N: 21, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("21-node ring not converged after 300s: %v", bad)
	}
	m := r.Node("n21").Metrics()
	if m.BusySeconds <= 0 || m.MsgsSent == 0 {
		t.Errorf("implausible metrics: %+v", m)
	}
	// The calibrated cost model should put an idle Chord node around
	// the paper's ~1% CPU baseline (order of magnitude check).
	cpu := 100 * m.BusySeconds / 300
	if cpu < 0.2 || cpu > 5 {
		t.Errorf("baseline CPU = %.2f%%, want ~1%%", cpu)
	}
}
