package chord

import (
	"math/rand"
	"testing"

	"p2go/internal/overlog"
)

func TestNodeIDDeterministic(t *testing.T) {
	if NodeID("n1") != NodeID("n1") {
		t.Error("NodeID must be deterministic")
	}
	if NodeID("n1") == NodeID("n2") {
		t.Error("distinct addresses should get distinct IDs")
	}
}

func TestRingOfOne(t *testing.T) {
	r, err := NewRing(RingConfig{N: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(30)
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors)
	}
	if got := r.BestSucc("n1"); got != "n1" {
		t.Errorf("lone landmark bestSucc = %q, want self", got)
	}
}

func TestRingConvergence(t *testing.T) {
	r, err := NewRing(RingConfig{N: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(180)
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(5, len(r.Errors))])
	}
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged after 180s: %v", bad)
	}
}

func TestLookupCorrectness(t *testing.T) {
	r, err := NewRing(RingConfig{N: 10, Seed: 7,
		ExtraPrograms: []*overlog.Program{WatchProgram("lookupResults")}})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300) // converge ring and fingers
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged: %v", bad)
	}
	rng := rand.New(rand.NewSource(99))
	type want struct {
		key   uint64
		owner string
	}
	wants := map[uint64]want{}
	for i := 0; i < 20; i++ {
		key := rng.Uint64()
		reqID := uint64(1000 + i)
		from := r.Addrs[rng.Intn(len(r.Addrs))]
		if err := r.Lookup(from, key, reqID); err != nil {
			t.Fatal(err)
		}
		wants[reqID] = want{key: key, owner: TrueOwner(key, r.Addrs)}
	}
	r.Run(30)
	got := map[uint64]string{}
	for _, w := range r.Watched {
		if w.T.Name != "lookupResults" {
			continue
		}
		// lookupResults(ReqAddr, K, SID, SAddr, E, RespAddr)
		got[w.T.Field(4).AsID()] = w.T.Field(3).AsStr()
	}
	for reqID, w := range wants {
		owner, ok := got[reqID]
		if !ok {
			t.Errorf("lookup %d (key %x) got no response", reqID, w.key)
			continue
		}
		if owner != w.owner {
			t.Errorf("lookup %d: owner = %s, want %s", reqID, owner, w.owner)
		}
	}
}

func TestFailureRecovery(t *testing.T) {
	r, err := NewRing(RingConfig{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(180)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged before failure: %v", bad)
	}
	// Kill two non-landmark nodes.
	dead := map[string]bool{"n4": true, "n6": true}
	r.Net.Crash("n4")
	r.Net.Crash("n6")
	r.Run(120)
	members := r.Alive(dead)
	if bad := r.CheckRing(members); len(bad) > 0 {
		t.Fatalf("ring did not heal after failures: %v", bad)
	}
}

func TestLateJoin(t *testing.T) {
	r, err := NewRing(RingConfig{N: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(120)
	if _, err := r.AddLateNode("n6"); err != nil {
		t.Fatal(err)
	}
	r.Run(120)
	if len(r.Errors) > 0 {
		t.Fatalf("rule errors: %v", r.Errors[:min(5, len(r.Errors))])
	}
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring did not absorb late joiner: %v", bad)
	}
}

func TestMessageLossStillConverges(t *testing.T) {
	r, err := NewRing(RingConfig{N: 6, Seed: 3, LossProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(300)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("ring not converged under 5%% loss: %v", bad)
	}
}

func TestOracles(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4"}
	// TrueSuccessor of each member is another member and forms one cycle.
	seen := map[string]bool{}
	cur := "n1"
	for i := 0; i < len(members); i++ {
		cur = TrueSuccessor(cur, members)
		if seen[cur] {
			t.Fatalf("successor cycle revisits %s early", cur)
		}
		seen[cur] = true
	}
	if cur != "n1" {
		t.Errorf("cycle did not close: ended at %s", cur)
	}
	// TrueOwner of a member's own ID is that member.
	for _, m := range members {
		if got := TrueOwner(NodeID(m), members); got != m {
			t.Errorf("TrueOwner(ID(%s)) = %s", m, got)
		}
	}
}

func TestLookupEventShape(t *testing.T) {
	e := LookupEvent("n1", 42, "n2", 7)
	if e.Name != "lookup" || e.Loc() != "n1" ||
		e.Field(1).AsID() != 42 || e.Field(2).AsStr() != "n2" || e.Field(3).AsID() != 7 {
		t.Errorf("LookupEvent = %v", e)
	}
}

func TestProgramsParse(t *testing.T) {
	if got := len(Program().Rules()); got < 40 {
		t.Errorf("full program has %d rules", got)
	}
	if got := len(BuggyProgram().Rules()); got < 40 {
		t.Errorf("buggy program has %d rules", got)
	}
	// The buggy variant must contain the amnesia rules and not the
	// guard rules.
	buggy := BuggyProgram()
	labels := map[string]bool{}
	for _, r := range buggy.Rules() {
		labels[r.Label] = true
	}
	if !labels["fb1"] || !labels["fb2"] {
		t.Error("buggy program misses amnesia rules")
	}
	if labels["dg1"] {
		t.Error("buggy program must not carry the dead guard")
	}
}

func TestPartitionHealRejoin(t *testing.T) {
	r, err := NewRing(RingConfig{N: 6, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(200)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("not converged: %v", bad)
	}
	// Sever n4 from everyone: it gets declared faulty ring-wide and the
	// ring heals around it.
	for _, a := range r.Addrs {
		if a != "n4" {
			r.Net.Partition("n4", a)
		}
	}
	r.Run(120)
	members := r.Alive(map[string]bool{"n4": true})
	if bad := r.CheckRing(members); len(bad) > 0 {
		t.Fatalf("ring did not heal around partitioned node: %v", bad)
	}
	// Heal: n4 rejoins through the landmark within a faultyNode TTL.
	for _, a := range r.Addrs {
		if a != "n4" {
			r.Net.Heal("n4", a)
		}
	}
	r.Run(180)
	if bad := r.CheckRing(r.Addrs); len(bad) > 0 {
		t.Fatalf("partitioned node did not reintegrate: %v", bad)
	}
}
