package chord

import (
	"fmt"
	"testing"
)

// TestChurnDeterminism21 is the PR's acceptance gate: the 21-node churn
// scenario (crash 3 nodes at +60 s, rejoin at +120 s) produces
// bit-identical results — every repair latency, every metrics counter,
// every table row — under the sequential and the parallel driver for
// the same seed. Fault events are window barriers, so injury does not
// cost the simulation its reproducibility.
func TestChurnDeterminism21(t *testing.T) {
	if testing.Short() {
		t.Skip("two 21-node 600s rings")
	}
	build := func(parallel bool) (ChurnResult, string) {
		r, res, err := RunChurn(ChurnConfig{
			Seed: 42, LossProb: 0.02, Parallel: parallel, Workers: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, fmt.Sprintf("%+v\n", res) + ringFingerprint(r)
	}
	seqRes, seq := build(false)
	_, par := build(true)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := max(0, i-200)
		t.Fatalf("sequential and parallel churn runs diverged at byte %d:\n...seq: %q\n...par: %q",
			i, seq[lo:min(len(seq), i+200)], par[lo:min(len(par), i+200)])
	}
	// The churn actually happened and the ring actually healed — twice.
	if seqRes.Faults.Crashes != 3 || seqRes.Faults.Rejoins != 3 {
		t.Errorf("faults = %+v, want 3 crashes and 3 rejoins", seqRes.Faults)
	}
	if seqRes.SurvivorRepair < 0 {
		t.Error("survivors never repaired the ring around the crashed nodes")
	}
	if seqRes.RejoinRepair < 0 {
		t.Error("full ring never re-converged after the rejoin")
	}
}
