package chord

import (
	"fmt"
	"testing"

	"p2go/internal/overlog"
)

// TestChurnDeterminism21 is the PR's acceptance gate: the 21-node churn
// scenario (crash 3 nodes at +60 s, rejoin at +120 s) produces
// bit-identical results — every repair latency, every metrics counter,
// every table row — under the sequential and the parallel driver for
// the same seed. Fault events are window barriers, so injury does not
// cost the simulation its reproducibility.
func TestChurnDeterminism21(t *testing.T) {
	if testing.Short() {
		t.Skip("two 21-node 600s rings")
	}
	build := func(parallel bool) (ChurnResult, string) {
		r, res, err := RunChurn(ChurnConfig{
			Seed: 42, LossProb: 0.02, Parallel: parallel, Workers: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, fmt.Sprintf("%+v\n", res) + ringFingerprint(r)
	}
	seqRes, seq := build(false)
	_, par := build(true)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := max(0, i-200)
		t.Fatalf("sequential and parallel churn runs diverged at byte %d:\n...seq: %q\n...par: %q",
			i, seq[lo:min(len(seq), i+200)], par[lo:min(len(par), i+200)])
	}
	// The churn actually happened and the ring actually healed — twice.
	if seqRes.Faults.Crashes != 3 || seqRes.Faults.Rejoins != 3 {
		t.Errorf("faults = %+v, want 3 crashes and 3 rejoins", seqRes.Faults)
	}
	if seqRes.SurvivorRepair < 0 {
		t.Error("survivors never repaired the ring around the crashed nodes")
	}
	if seqRes.RejoinRepair < 0 {
		t.Error("full ring never re-converged after the rejoin")
	}
}

// TestUninstallUnderChurnDeterminism21 is the uninstall-under-fire gate:
// two monitoring queries (a periodic prober with its own table and a
// passive bestSucc logger) ride the standard 21-node churn scenario and
// are retired mid-run — after the crashed nodes have rejoined but while
// ring repair is still in flight — through the higher-order
// uninstallProgram event. The run must stay bit-identical between the
// sequential and the parallel driver, and afterwards every node
// (victims included) must be back to the exact chord-only dataflow
// shape: no leaked strands, timers, watches, tables or log taps.
func TestUninstallUnderChurnDeterminism21(t *testing.T) {
	if testing.Short() {
		t.Skip("two 21-node 600s rings")
	}
	extras := func() []*overlog.Program {
		return []*overlog.Program{
			overlog.MustParse(`
materialize(probeLog, 30, 100, keys(1,2)).
watch(probeTick).
x1 probeLog@N(E) :- periodic@N(E, 5).
x2 probeTick@N(E) :- probeLog@N(E).
`),
			overlog.MustParse(`
materialize(succLog, 60, 50, keys(1,2)).
y1 succLog@N(SAddr) :- bestSucc@N(SID, SAddr).
`),
		}
	}
	build := func(parallel bool) (*Ring, ChurnResult, string) {
		r, res, err := RunChurn(ChurnConfig{
			Seed: 42, LossProb: 0.02, Parallel: parallel, Workers: 8,
			Detectors: extras(),
			Uninstall: []string{ExtraQueryID(0), ExtraQueryID(1)},
			// Rejoin is at +120: by +150 every node is up again to
			// receive the event, but repair traffic is still in flight.
			UninstallAt: 150,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r, res, fmt.Sprintf("%+v\n", res) + ringFingerprint(r)
	}
	seqRing, seqRes, seq := build(false)
	_, _, par := build(true)
	if seq != par {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo := max(0, i-200)
		t.Fatalf("sequential and parallel uninstall-under-churn runs diverged at byte %d:\n...seq: %q\n...par: %q",
			i, seq[lo:min(len(seq), i+200)], par[lo:min(len(par), i+200)])
	}

	// The queries did real work before being retired.
	ticks := 0
	for _, w := range seqRing.Watched {
		if w.T.Name == "probeTick" {
			ticks++
		}
	}
	if ticks == 0 {
		t.Error("probe query never fired before its uninstall")
	}
	if seqRes.Faults.Crashes != 3 || seqRes.Faults.Rejoins != 3 {
		t.Errorf("faults = %+v, want 3 crashes and 3 rejoins", seqRes.Faults)
	}
	if seqRes.RejoinRepair < 0 {
		t.Error("full ring never re-converged after the rejoin")
	}

	// Leak check: a fresh chord-only node is the shape oracle — strand,
	// timer, watch and tap counts are fixed at install time (all chord
	// periodics are unbounded), so every node must match it exactly.
	ref, err := NewRing(RingConfig{N: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Node("n1")
	for _, a := range seqRing.Addrs {
		n := seqRing.Node(a)
		if qs := n.Queries(); len(qs) != 1 || qs[0] != QueryID {
			t.Errorf("%s: queries = %v, want [%s]", a, qs, QueryID)
		}
		if got := n.NumStrands(); got != want.NumStrands() {
			t.Errorf("%s: strands = %d, want %d", a, got, want.NumStrands())
		}
		if got := n.NumTimers(); got != want.NumTimers() {
			t.Errorf("%s: timers = %d, want %d", a, got, want.NumTimers())
		}
		if got := n.NumWatches(); got != want.NumWatches() {
			t.Errorf("%s: watches = %d, want %d", a, got, want.NumWatches())
		}
		if got := n.NumLogTaps(); got != want.NumLogTaps() {
			t.Errorf("%s: log taps = %d, want %d", a, got, want.NumLogTaps())
		}
		if n.Store().Get("probeLog") != nil || n.Store().Get("succLog") != nil {
			t.Errorf("%s: uninstalled query's table leaked", a)
		}
	}
}
