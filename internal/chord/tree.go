package chord

import (
	"fmt"
	"strconv"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/planner"
	"p2go/internal/tuple"
)

// Aggregation-tree overlay: a K-ary tree over the ring's members that
// in-network aggregation rides (planner.ClusterAgg.Rewrite routes
// upward pushes along treeParent). The shape is deterministic — member
// i's canonical parent is member ((i-2)/K)+1, the K-ary-heap layout
// over the harness ranks — so tree fan-in is bounded by construction
// and two runs over the same membership build the same tree. What
// OverLog owns is liveness: each node heartbeats its canonical parent,
// reads back the parent's current nodeEpoch incarnation, and while the
// parent stays silent routes around it to its grandparent (the root
// for depth-1 nodes). The canonical parent keeps being probed, so a
// repaired parent is readopted one heartbeat after it answers again.
//
// Parent selection is table-driven state like everything else here:
// treeParent is an ordinary materialized table, queryable by forensic
// programs and joined by the generated aggregation strands.

// TreeConfig shapes the overlay.
type TreeConfig struct {
	// Fanout is K, the max children per canonical parent (default 4).
	Fanout int
	// Heartbeat is the parent-probe period in seconds (default 5). A
	// parent silent for TreeDeadFactor heartbeats is routed around.
	Heartbeat float64
}

// TreeDeadFactor scales Heartbeat into the silence threshold after
// which a child falls back to its grandparent. 3.5 tolerates three
// straight lost probes before declaring the parent dead, mirroring the
// ring's lastHeard policy.
const TreeDeadFactor = 3.5

// TreeQueryID is the query the overlay installs under on every node.
const TreeQueryID = "tree"

// TreeParentTableName is the overlay's parent-selection table; exported
// for deployers (matches planner.TreeParentTable).
const TreeParentTableName = "treeParent"

func (c TreeConfig) withDefaults() TreeConfig {
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5
	}
	return c
}

// TreeParentRank returns the canonical parent's rank for a node of the
// given 1-based rank: the K-ary-heap parent, with the root its own
// parent.
func TreeParentRank(rank, fanout int) int {
	if rank <= 1 {
		return 1
	}
	return (rank-2)/fanout + 1
}

// TreeAddr is the harness address of a rank ("n<rank>").
func TreeAddr(rank int) string { return fmt.Sprintf("n%d", rank) }

// TreeDepth returns the K-ary-heap depth of a rank (root = 0); the
// tree's convergence lag is proportional to the max depth.
func TreeDepth(rank, fanout int) int {
	d := 0
	for rank > 1 {
		rank = TreeParentRank(rank, fanout)
		d++
	}
	return d
}

// TreeProgram is the shared overlay source: heartbeat the canonical
// parent, record its ack (and epoch), and each tick pick the canonical
// parent if recently heard, else the grandparent fallback. The root
// probes itself through the same rules — the ack loops back locally —
// so no rule is root-specific. treeCanon/treeGrand/treeHeard are
// seeded per node by InstallTree.
func TreeProgram(cfg TreeConfig) *overlog.Program {
	cfg = cfg.withDefaults()
	hb := strconv.FormatFloat(cfg.Heartbeat, 'g', -1, 64)
	dead := strconv.FormatFloat(TreeDeadFactor*cfg.Heartbeat, 'g', -1, 64)
	src := fmt.Sprintf(`
materialize(treeCanon, infinity, 1, keys(1)).
materialize(treeGrand, infinity, 1, keys(1)).
materialize(treeParent, infinity, 1, keys(1)).
materialize(treeHeard, infinity, 1, keys(1)).

t1 treeTick@N(E) :- periodic@N(E, %s).
t2 treeProbe@P(N) :- treeTick@N(E), treeCanon@N(P).
t3 treeAck@C(P, AckEp) :- treeProbe@P(C), nodeEpoch@P(AckEp).
t4 treeHeard@N(P, AckEp, T) :- treeAck@N(P, AckEp), T := f_now().
t5 treeParent@N(P) :- treeTick@N(E), treeCanon@N(P), treeHeard@N(P2, Ep2, T), P == P2, TN := f_now(), (TN - T) < %s.
t6 treeParent@N(G) :- treeTick@N(E), treeCanon@N(P), treeGrand@N(G), treeHeard@N(P2, Ep2, T), P == P2, TN := f_now(), (TN - T) >= %s.
`, hb, dead, dead)
	return overlog.MustParse(src)
}

// CompiledTree compiles the overlay once for a whole deployment, so
// every node instantiates the shared plan (the scale path). The
// environment admits the engine's system tables: t3 joins nodeEpoch.
func CompiledTree(cfg TreeConfig) (*engine.CompiledQuery, error) {
	env := planner.EnvFunc(engine.IsSystemTable)
	cq, err := engine.CompileQueryEnv(TreeProgram(cfg), env)
	if err != nil {
		return nil, fmt.Errorf("chord: tree overlay: %w", err)
	}
	return cq, nil
}

// InstallTree installs the overlay on one node as query TreeQueryID and
// seeds its rank-derived facts. Seeds go through SeedLocal, so a
// crash/rejoin replays them and the node reclaims its canonical place
// in the tree. compiled may be nil (private compile).
func InstallTree(n *engine.Node, cfg TreeConfig, rank int, compiled *engine.CompiledQuery) error {
	cfg = cfg.withDefaults()
	if rank < 1 {
		return fmt.Errorf("chord: tree rank must be >= 1, got %d", rank)
	}
	if compiled == nil {
		var err error
		if compiled, err = CompiledTree(cfg); err != nil {
			return err
		}
	}
	if _, err := n.InstallCompiledQuery(TreeQueryID, compiled); err != nil {
		return fmt.Errorf("chord: tree overlay: %w", err)
	}
	addr := n.Addr()
	parent := TreeAddr(TreeParentRank(rank, cfg.Fanout))
	grand := TreeAddr(TreeParentRank(TreeParentRank(rank, cfg.Fanout), cfg.Fanout))
	seeds := []tuple.Tuple{
		tuple.New("treeCanon", tuple.Str(addr), tuple.Str(parent)),
		tuple.New("treeGrand", tuple.Str(addr), tuple.Str(grand)),
		tuple.New("treeParent", tuple.Str(addr), tuple.Str(parent)),
		// A heard row at time zero: a booting node trusts its canonical
		// parent through the first silence window, while a late
		// rejoiner treats it as unverified until the first ack.
		tuple.New("treeHeard", tuple.Str(addr), tuple.Str(parent), tuple.Int(0), tuple.Float(0)),
	}
	for _, s := range seeds {
		n.SeedLocal(s)
	}
	return nil
}

// TreeParentOf reads a node's current parent choice ("" if none yet).
func (r *Ring) TreeParentOf(addr string) string {
	tb := r.Node(addr).Store().Get(TreeParentTableName)
	if tb == nil {
		return ""
	}
	out := ""
	tb.Scan(r.Sim.Now(), func(t tuple.Tuple) { out = t.Field(1).AsStr() })
	return out
}
