package engine_test

import (
	"testing"

	"p2go/internal/tuple"
)

const rejoinProgram = `
materialize(conf, infinity, infinity, keys(1,2)).
materialize(data, infinity, infinity, keys(1,2)).
c1 conf@N(V) :- confEvent@N(V).
d1 data@N(V) :- dataEvent@N(V).
`

// TestSeedLocalPreambleReplaysOnRejoin: tuples fed through SeedLocal
// form the node's preamble (its "configuration file"); Rejoin wipes all
// soft state and replays exactly that preamble, so configuration
// survives a restart-with-amnesia while runtime state does not.
func TestSeedLocalPreambleReplaysOnRejoin(t *testing.T) {
	h := newHarness(t, rejoinProgram, "a", "b")
	n := h.net.Node("a")
	n.SeedLocal(tuple.New("confEvent", tuple.Str("a"), tuple.Str("landmark")))
	h.inject("a", tuple.New("dataEvent", tuple.Str("a"), tuple.Str("hot")))
	h.net.RunFor(1)
	if got := len(h.rows("a", "conf")); got != 1 {
		t.Fatalf("conf rows before crash = %d", got)
	}
	if got := len(h.rows("a", "data")); got != 1 {
		t.Fatalf("data rows before crash = %d", got)
	}
	if got := len(n.Preamble()); got != 1 {
		t.Fatalf("preamble length = %d", got)
	}

	h.net.Crash("a")
	h.net.RunFor(1)
	h.net.Rejoin("a")
	h.net.RunFor(1)
	h.noErrors()
	if got := h.rows("a", "conf"); len(got) != 1 ||
		got[0].Field(1).AsStr() != "landmark" {
		t.Errorf("conf after rejoin = %v, want the replayed preamble row", got)
	}
	if got := h.rows("a", "data"); len(got) != 0 {
		t.Errorf("data after rejoin = %v, want soft state gone", got)
	}

	// The rule base survived (it lives in the reflection tables): new
	// traffic is still processed.
	h.inject("a", tuple.New("dataEvent", tuple.Str("a"), tuple.Str("fresh")))
	h.net.RunFor(1)
	if got := h.rows("a", "data"); len(got) != 1 ||
		got[0].Field(1).AsStr() != "fresh" {
		t.Errorf("data after post-rejoin traffic = %v", got)
	}
}

// TestRejoinBillsCPU: the rejoin replay runs as a simulated task — the
// node pays CPU for clearing tables and replaying the preamble.
func TestRejoinBillsCPU(t *testing.T) {
	h := newHarness(t, rejoinProgram, "a")
	n := h.net.Node("a")
	n.SeedLocal(tuple.New("confEvent", tuple.Str("a"), tuple.Str("x")))
	h.net.RunFor(1)
	before := n.Metrics().BusySeconds
	h.net.Crash("a")
	h.net.Rejoin("a")
	h.net.RunFor(1)
	if after := n.Metrics().BusySeconds; after <= before {
		t.Errorf("rejoin billed no CPU: %v -> %v", before, after)
	}
}
