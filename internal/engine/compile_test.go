package engine_test

import (
	"testing"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/simnet"
	"p2go/internal/tuple"
)

func newBareNode(t *testing.T) *engine.Node {
	t.Helper()
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, simnet.Config{Seed: 1})
	n, err := net.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustCompile(t *testing.T, src string) *engine.CompiledQuery {
	t.Helper()
	cq, err := engine.CompileQuery(overlog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

const sharedProg = `
materialize(stateT, infinity, infinity, keys(1,2)).
s1 out@X(V) :- in@X(V), stateT@X(V).
`

// enableSharing pins the kill switch off for tests that assert the
// sharing fast path, so they stay meaningful under the
// P2GO_DISABLE_SHARED_PLANS CI job (which exercises the fallback).
func enableSharing(t *testing.T) {
	t.Helper()
	saved := engine.DisableSharedPlans
	engine.DisableSharedPlans = false
	t.Cleanup(func() { engine.DisableSharedPlans = saved })
}

// TestInstallCompiledShares checks the fast path: a compatible node
// installs the compiled query's plans by reference.
func TestInstallCompiledShares(t *testing.T) {
	enableSharing(t)
	cq := mustCompile(t, sharedProg)
	n := newBareNode(t)
	if _, err := n.InstallCompiledQuery("q", cq); err != nil {
		t.Fatal(err)
	}
	got, want := n.Plans(), cq.Plans()
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("installed %d plans, compiled %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("plan %d was copied, want shared instance", i)
		}
	}
}

// TestInstallCompiledKillSwitch checks P2GO_DISABLE_SHARED_PLANS's
// variable: with sharing disabled the node plans privately.
func TestInstallCompiledKillSwitch(t *testing.T) {
	saved := engine.DisableSharedPlans
	engine.DisableSharedPlans = true
	defer func() { engine.DisableSharedPlans = saved }()
	cq := mustCompile(t, sharedProg)
	n := newBareNode(t)
	if _, err := n.InstallCompiledQuery("q", cq); err != nil {
		t.Fatal(err)
	}
	got, want := n.Plans(), cq.Plans()
	if len(got) != len(want) {
		t.Fatalf("installed %d plans, compiled %d", len(got), len(want))
	}
	for i := range got {
		if got[i] == want[i] {
			t.Fatalf("plan %d shared despite the kill switch", i)
		}
	}
}

// TestInstallCompiledEnvMismatchFallsBack checks the correctness
// fallback: the compiled query saw predicate "ext" as an event, so a
// node where ext is a table must plan privately (there the rule joins
// the table) rather than accept the mismatched shared plans.
func TestInstallCompiledEnvMismatchFallsBack(t *testing.T) {
	enableSharing(t)
	// With ext an event this plans as an event-triggered strand; with
	// ext a table it plans as a delta rule. Same source, different plan.
	src := `e1 out@X(V) :- ext@X(V).`
	cq := mustCompile(t, src)

	fresh := newBareNode(t)
	if _, err := fresh.InstallCompiledQuery("q", cq); err != nil {
		t.Fatal(err)
	}
	if fresh.Plans()[0] != cq.Plans()[0] {
		t.Fatal("fresh node should share the compiled plans")
	}

	withExt := newBareNode(t)
	if _, err := withExt.InstallQuery("base", overlog.MustParse(
		"materialize(ext, infinity, infinity, keys(1,2)).")); err != nil {
		t.Fatal(err)
	}
	if _, err := withExt.InstallCompiledQuery("q", cq); err != nil {
		t.Fatal(err)
	}
	plans := withExt.Plans()
	for _, p := range plans {
		for _, sp := range cq.Plans() {
			if p == sp {
				t.Fatal("node with ext materialized accepted shared plans compiled for an ext-less environment")
			}
		}
	}
	// The private plan must actually treat ext as a table: seed a row
	// and confirm it landed.
	withExt.SeedLocal(tuple.New("ext", tuple.Str("a"), tuple.Int(7)))
	var rows []tuple.Tuple
	withExt.Store().Get("ext").Scan(withExt.Now(), func(tp tuple.Tuple) { rows = append(rows, tp) })
	if len(rows) != 1 {
		t.Fatalf("ext table holds %d rows, want 1", len(rows))
	}
}

// TestInstallCompiledLabelCounterFallsBack checks the second
// compatibility input: a query whose compilation generated rule labels
// must not share onto a node whose label counter has already advanced
// (the generated IDs would differ from private planning's).
func TestInstallCompiledLabelCounterFallsBack(t *testing.T) {
	enableSharing(t)
	unlabeled := `out@X(V) :- in@X(V).`
	cq := mustCompile(t, unlabeled)

	n := newBareNode(t)
	if _, err := n.InstallQuery("first", overlog.MustParse(`other@X(V) :- ping@X(V).`)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InstallCompiledQuery("second", cq); err != nil {
		t.Fatal(err)
	}
	plans := n.Plans()
	if len(plans) != 2 {
		t.Fatalf("%d plans installed, want 2", len(plans))
	}
	if plans[1] == cq.Plans()[0] {
		t.Fatal("label-consuming query shared onto a node with an advanced label counter")
	}
	if plans[0].RuleID == plans[1].RuleID {
		t.Fatalf("generated labels collided: %q", plans[0].RuleID)
	}
}

// TestInstallCompiledLabelCounterAdvances checks that a shared install
// consumes the same label numbers private planning would, so later
// private installs continue the sequence without collisions.
func TestInstallCompiledLabelCounterAdvances(t *testing.T) {
	enableSharing(t)
	cq := mustCompile(t, `out@X(V) :- in@X(V).`)
	n := newBareNode(t)
	if _, err := n.InstallCompiledQuery("first", cq); err != nil {
		t.Fatal(err)
	}
	if n.Plans()[0] != cq.Plans()[0] {
		t.Fatal("fresh node should share the compiled plans")
	}
	if _, err := n.InstallQuery("second", overlog.MustParse(`other@X(V) :- ping@X(V).`)); err != nil {
		t.Fatal(err)
	}
	plans := n.Plans()
	if plans[0].RuleID == plans[1].RuleID {
		t.Fatalf("shared install did not advance the label counter: both rules are %q", plans[0].RuleID)
	}
}
