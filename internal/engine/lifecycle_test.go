package engine_test

import (
	"math"
	"strings"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/simnet"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// shape is a node's structural dataflow fingerprint: what a query's
// install must add and its uninstall must remove exactly.
type shape struct {
	strands int
	timers  int
	watches int
	taps    int
	tables  string
	live    int
}

func shapeOf(n *engine.Node) shape {
	return shape{
		strands: n.NumStrands(),
		timers:  n.NumTimers(),
		watches: n.NumWatches(),
		taps:    n.NumLogTaps(),
		tables:  strings.Join(n.Store().Names(), ","),
		live:    n.Store().LiveTuples(),
	}
}

// checkQuerySums asserts the per-query accounting invariant: bills and
// counters split by query (including the reserved system bucket) sum to
// the node totals. BusySeconds tolerates float re-association only.
func checkQuerySums(t *testing.T, n *engine.Node) {
	t.Helper()
	m := n.Metrics()
	var busy float64
	var fires, heads, timers int64
	for _, q := range n.QueryMetrics() {
		busy += q.BusySeconds
		fires += q.RuleFires
		heads += q.HeadsEmitted
		timers += q.TimerFires
	}
	if fires != m.RuleFires {
		t.Errorf("%s: per-query RuleFires sum %d != node %d", n.Addr(), fires, m.RuleFires)
	}
	if heads != m.HeadsEmitted {
		t.Errorf("%s: per-query HeadsEmitted sum %d != node %d", n.Addr(), heads, m.HeadsEmitted)
	}
	if timers != m.TimerFires {
		t.Errorf("%s: per-query TimerFires sum %d != node %d", n.Addr(), timers, m.TimerFires)
	}
	if diff := math.Abs(busy - m.BusySeconds); diff > 1e-9*(1+math.Abs(m.BusySeconds)) {
		t.Errorf("%s: per-query BusySeconds sum %g != node %g (diff %g)", n.Addr(), busy, m.BusySeconds, diff)
	}
}

const monitorProgram = `
materialize(seen, infinity, infinity, keys(1,2)).
watch(mtick).
m1 seen@N(E) :- periodic@N(E, 0.5).
m2 mtick@N(E) :- seen@N(E).
`

// TestUninstallRestoresShape: installing a monitoring query and removing
// it returns the node to its exact pre-install dataflow shape — strand,
// timer, watch and table counts, live tuples — and its timers stop
// firing.
func TestUninstallRestoresShape(t *testing.T) {
	h := newHarness(t, `
watch(tick).
b1 tick@N(E) :- periodic@N(E, 1).
`, "n1")
	n := h.net.Node("n1")
	base := shapeOf(n)

	if _, err := n.InstallQuery("mon", overlog.MustParse(monitorProgram)); err != nil {
		t.Fatal(err)
	}
	withMon := shapeOf(n)
	if withMon.strands != base.strands+2 || withMon.timers != base.timers+1 ||
		withMon.watches != base.watches+1 {
		t.Fatalf("monitor added wrong resources: base %+v with %+v", base, withMon)
	}
	if !n.HasQuery("mon") {
		t.Fatal("mon not reported installed")
	}
	h.net.Run(5)
	h.noErrors()
	monTicks := 0
	for _, w := range h.watched {
		if w.Name == "mtick" {
			monTicks++
		}
	}
	if monTicks == 0 {
		t.Fatal("monitor never fired")
	}
	if n.Store().Get("seen") == nil {
		t.Fatal("monitor table missing")
	}

	if err := n.UninstallQuery("mon"); err != nil {
		t.Fatal(err)
	}
	seenAt := len(h.watched)
	h.net.Run(5)
	h.noErrors()
	for _, w := range h.watched[seenAt:] {
		if w.Name == "mtick" {
			t.Error("monitor tick after uninstall: timer chain survived")
		}
	}
	got := shapeOf(n)
	if got != base {
		t.Errorf("shape after uninstall = %+v, want baseline %+v", got, base)
	}
	if n.HasQuery("mon") {
		t.Error("mon still reported installed")
	}
	// The bill survives the query and still sums to node totals.
	if n.QueryMetrics()["mon"].BusySeconds <= 0 {
		t.Error("mon's bill vanished with the query")
	}
	checkQuerySums(t, n)
}

// TestSharedTableRefcount: a table declared by two queries survives the
// first uninstall and is dropped (rows and all) by the second.
func TestSharedTableRefcount(t *testing.T) {
	h := newHarness(t, `watch(nop).`, "n1")
	n := h.net.Node("n1")
	decl := `materialize(shared, infinity, infinity, keys(1,2)).`
	if _, err := n.InstallQuery("a", overlog.MustParse(decl+"\nra shared@N(X) :- eva@N(X).")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.InstallQuery("b", overlog.MustParse(decl+"\nrb shared@N(X) :- evb@N(X).")); err != nil {
		t.Fatal(err)
	}
	h.inject("n1", tuple.New("eva", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(1)
	h.noErrors()

	if err := n.UninstallQuery("a"); err != nil {
		t.Fatal(err)
	}
	tb := n.Store().Get("shared")
	if tb == nil {
		t.Fatal("shared table dropped while still referenced by b")
	}
	if tb.Count() != 1 {
		t.Fatalf("shared rows = %d, want 1 (uninstall must not clear a shared table)", tb.Count())
	}
	if err := n.UninstallQuery("b"); err != nil {
		t.Fatal(err)
	}
	if n.Store().Get("shared") != nil {
		t.Error("shared table survived its last owner")
	}
}

// TestAtomicInstallRejected: a program that fails validation — a
// materialize conflicting with installed state, two conflicting
// declarations within the program, or an unplannable rule — installs
// NOTHING: no table, watch, strand, or reflection row.
func TestAtomicInstallRejected(t *testing.T) {
	h := newHarness(t, `materialize(tab, infinity, infinity, keys(1,2)).`, "n1")
	n := h.net.Node("n1")
	base := shapeOf(n)
	baseRules := len(h.rows("n1", engine.RuleTableName))

	cases := []struct {
		name, prog, wantErr string
	}{
		{"conflicting respec", `
materialize(other, infinity, infinity, keys(1,2)).
materialize(tab, 30, infinity, keys(1,2)).
watch(w1).
r1 out@N(X) :- evx@N(X), other@N(X).
`, "already materialized"},
		{"conflict within program", `
materialize(x, 10, infinity, keys(1)).
materialize(x, 20, infinity, keys(1)).
`, "already materialized"},
		{"unplannable rule", `
materialize(other, infinity, infinity, keys(1,2)).
watch(w2).
r1 other@N(A) :- e1@N(A).
r2 out@N(A, B) :- e1@N(A), e2@N(B).
`, "events cannot be joined"},
	}
	for _, tc := range cases {
		_, err := n.InstallQuery("bad", overlog.MustParse(tc.prog))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
		if n.HasQuery("bad") {
			t.Fatalf("%s: failed install left the query registered", tc.name)
		}
		if n.Store().Get("other") != nil || n.Store().Get("x") != nil {
			t.Fatalf("%s: failed install left a table behind", tc.name)
		}
		if got := shapeOf(n); got != base {
			t.Fatalf("%s: failed install mutated the node: %+v != %+v", tc.name, got, base)
		}
		if got := len(h.rows("n1", engine.RuleTableName)); got != baseRules {
			t.Fatalf("%s: failed install left ruleTable rows (%d != %d)", tc.name, got, baseRules)
		}
	}
	// An identical re-declaration plus new rules must still install.
	if _, err := n.InstallQuery("ok", overlog.MustParse(`
materialize(tab, infinity, infinity, keys(1,2)).
r1 tab@N(X) :- evt@N(X).
`)); err != nil {
		t.Fatalf("compatible re-declaration rejected: %v", err)
	}
	// Reserved and duplicate IDs are rejected before any state changes.
	if _, err := n.InstallQuery("system", overlog.MustParse(`watch(w).`)); err == nil {
		t.Error("reserved query ID accepted")
	}
	if _, err := n.InstallQuery("ok", overlog.MustParse(`watch(w).`)); err == nil {
		t.Error("duplicate query ID accepted")
	}
}

// TestReflectionRefreshMidRun: ruleTable/queryTable reflect higher-order
// installs and uninstalls while the node runs, and are queryable from
// OverLog mid-run (the satellite fix: reflection must not go stale).
func TestReflectionRefreshMidRun(t *testing.T) {
	h := newHarness(t, `
watch(rcount).
c1 rcount@N(count<*>) :- probe@N(E), ruleTable@N(Q, R, Trig, Src), Q == "temp".
`, "n1")
	count := func() int64 {
		h.t.Helper()
		h.watched = nil
		h.inject("n1", tuple.New("probe", tuple.Str("n1"), tuple.ID(1)))
		h.net.RunFor(1)
		for _, w := range h.watched {
			if w.Name == "rcount" {
				return w.Field(1).AsInt()
			}
		}
		t.Fatal("rcount never observed")
		return -1
	}

	if got := count(); got != 0 {
		t.Fatalf("pre-install rcount = %d, want 0", got)
	}
	// Higher-order install under an explicit query ID.
	h.inject("n1", tuple.New(engine.InstallEventName, tuple.Str("n1"),
		tuple.Str("t1 out@N(X) :- in@N(X)."), tuple.Str("temp")))
	h.net.RunFor(1)
	h.noErrors()
	if got := count(); got != 1 {
		t.Fatalf("post-install rcount = %d, want 1", got)
	}
	foundQ := false
	for _, row := range h.rows("n1", engine.QueryTableName) {
		if row.Field(1).AsStr() == "temp" {
			foundQ = true
			if row.Field(2).AsInt() != 1 {
				t.Errorf("queryTable strand count = %v", row)
			}
		}
	}
	if !foundQ {
		t.Fatal("temp missing from queryTable")
	}
	// Higher-order uninstall.
	h.inject("n1", tuple.New(engine.UninstallEventName, tuple.Str("n1"), tuple.Str("temp")))
	h.net.RunFor(1)
	h.noErrors()
	if got := count(); got != 0 {
		t.Fatalf("post-uninstall rcount = %d, want 0", got)
	}
	for _, row := range h.rows("n1", engine.QueryTableName) {
		if row.Field(1).AsStr() == "temp" {
			t.Error("temp still in queryTable after uninstall")
		}
	}
}

// TestUninstallEventErrors: malformed or unsatisfiable uninstalls surface
// as rule errors, not crashes, and remove nothing.
func TestUninstallEventErrors(t *testing.T) {
	h := newHarness(t, `watch(ok).`, "n1")
	n := h.net.Node("n1")
	h.inject("n1", tuple.New(engine.UninstallEventName, tuple.Str("n1"), tuple.Str("nosuch")))
	h.inject("n1", tuple.New(engine.UninstallEventName, tuple.Str("n1"), tuple.Int(3)))
	h.inject("n1", tuple.New(engine.UninstallEventName, tuple.Str("n1"), tuple.Str("system")))
	h.net.RunFor(1)
	if len(h.errs) != 3 {
		t.Errorf("errors = %v, want 3", h.errs)
	}
	if err := n.UninstallQuery(engine.SystemQuery); err == nil {
		t.Error("uninstalling the system query must fail")
	}
	if len(n.Queries()) != 1 {
		t.Errorf("queries = %v, want the harness program only", n.Queries())
	}
}

// TestPerQueryAccounting: CPU, rule fires, heads and timer fires split
// cleanly per query and sum to the node totals, with network pre- and
// postamble under the reserved system query.
func TestPerQueryAccounting(t *testing.T) {
	h := newHarness(t, pathProgram, "n1", "n2")
	n1, n2 := h.net.Node("n1"), h.net.Node("n2")
	if _, err := n1.InstallQuery("mon", overlog.MustParse(monitorProgram)); err != nil {
		t.Fatal(err)
	}
	h.inject("n1", tuple.New("link", tuple.Str("n1"), tuple.Str("n2"), tuple.Int(1)))
	h.net.Run(10)
	h.noErrors()

	checkQuerySums(t, n1)
	checkQuerySums(t, n2)
	qm1 := n1.QueryMetrics()
	if qm1["q1"].RuleFires == 0 || qm1["q1"].BusySeconds <= 0 {
		t.Errorf("path program unbilled: %+v", qm1["q1"])
	}
	if qm1["mon"].TimerFires == 0 {
		t.Errorf("monitor timer fires unbilled: %+v", qm1["mon"])
	}
	// n1 sent messages to n2, so its system bucket holds marshal costs.
	if qm1[engine.SystemQuery].BusySeconds <= 0 {
		t.Errorf("system bucket empty: %+v", qm1[engine.SystemQuery])
	}
	// Accounting must stay consistent across an uninstall.
	if err := n1.UninstallQuery("mon"); err != nil {
		t.Fatal(err)
	}
	h.net.Run(2)
	checkQuerySums(t, n1)
}

// TestTracerTapLifecycle: with execution logging on, a query's tables
// get tracer taps on install and lose them on uninstall, and the
// tracer's per-strand records are forgotten (no stale strand pointers).
func TestTracerTapLifecycle(t *testing.T) {
	sim := simnet.NewSim()
	var errs []string
	net := simnet.NewNetwork(sim, simnet.Config{
		Seed:    1,
		Tracing: &trace.Config{RuleExecTTL: 60, RuleExecMax: 1000, TupleLogMax: 100},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			errs = append(errs, err.Error())
		},
	})
	n, err := net.AddNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	baseTaps := n.NumLogTaps()
	baseRecords := n.Tracer().RecordStrands()

	if _, err := n.InstallQuery("mon", overlog.MustParse(`
materialize(foo, infinity, infinity, keys(1,2)).
f1 foo@N(X) :- fev@N(X).
`)); err != nil {
		t.Fatal(err)
	}
	if got := n.NumLogTaps(); got != baseTaps+1 {
		t.Fatalf("taps after install = %d, want %d", got, baseTaps+1)
	}
	if err := net.Inject("n1", tuple.New("fev", tuple.Str("n1"), tuple.Int(7))); err != nil {
		t.Fatal(err)
	}
	net.RunFor(1)
	if len(errs) > 0 {
		t.Fatalf("rule errors: %v", errs)
	}
	if n.Tracer().RecordStrands() <= baseRecords {
		t.Fatal("strand left no tracer records; test is vacuous")
	}
	if err := n.UninstallQuery("mon"); err != nil {
		t.Fatal(err)
	}
	if got := n.NumLogTaps(); got != baseTaps {
		t.Errorf("taps after uninstall = %d, want %d", got, baseTaps)
	}
	if got := n.Tracer().RecordStrands(); got != baseRecords {
		t.Errorf("tracer records after uninstall = %d, want %d", got, baseRecords)
	}
}
