package engine_test

import (
	"strings"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/simnet"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// harness bundles a simulated network whose nodes all run the same
// program, with watched-tuple capture.
type harness struct {
	t       *testing.T
	sim     *simnet.Sim
	net     *simnet.Network
	watched []tuple.Tuple
	errs    []string
}

func newHarness(t *testing.T, program string, addrs ...string) *harness {
	t.Helper()
	h := &harness{t: t, sim: simnet.NewSim()}
	h.net = simnet.NewNetwork(h.sim, simnet.Config{
		Seed: 1,
		OnWatch: func(now float64, node string, tp tuple.Tuple) {
			h.watched = append(h.watched, tp)
		},
		OnRuleError: func(now float64, node, ruleID string, err error) {
			h.errs = append(h.errs, node+"/"+ruleID+": "+err.Error())
		},
	})
	prog, err := overlog.Parse(program)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, a := range addrs {
		n, err := h.net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatalf("install on %s: %v", a, err)
		}
	}
	return h
}

func (h *harness) inject(addr string, tp tuple.Tuple) {
	h.t.Helper()
	if err := h.net.Inject(addr, tp); err != nil {
		h.t.Fatal(err)
	}
}

// rows collects a table's tuples on one node.
func (h *harness) rows(addr, tableName string) []tuple.Tuple {
	h.t.Helper()
	tb := h.net.Node(addr).Store().Get(tableName)
	if tb == nil {
		h.t.Fatalf("node %s has no table %s", addr, tableName)
	}
	var out []tuple.Tuple
	tb.Scan(h.sim.Now(), func(tp tuple.Tuple) { out = append(out, tp) })
	return out
}

func (h *harness) noErrors() {
	h.t.Helper()
	if len(h.errs) > 0 {
		h.t.Fatalf("rule errors: %v", h.errs)
	}
}

const pathProgram = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).

p0 path@A(B, [A, B], W) :- link@A(B, W).
p1 path@B(C, [B, A] + P, W1 + W2) :- link@A(B, W1), path@A(C, P, W2).
`

// TestPathVector runs the paper's introductory routing example across
// three nodes: delta-rewrite strands, cross-node delivery, list values.
func TestPathVector(t *testing.T) {
	h := newHarness(t, pathProgram, "n1", "n2", "n3")
	h.inject("n1", tuple.New("link", tuple.Str("n1"), tuple.Str("n2"), tuple.Int(1)))
	h.inject("n2", tuple.New("link", tuple.Str("n2"), tuple.Str("n3"), tuple.Int(2)))
	h.net.Run(10)
	h.noErrors()

	paths := h.rows("n3", "path")
	if len(paths) != 2 {
		t.Fatalf("n3 has %d paths, want 2: %v", len(paths), paths)
	}
	byDst := map[string]tuple.Tuple{}
	for _, p := range paths {
		byDst[p.Field(1).AsStr()] = p
	}
	// n3->n2: link(n2,n3)=2 plus path n2->n2 (=1+1 over the n1 link).
	if p, ok := byDst["n2"]; !ok || p.Field(3).AsInt() != 4 {
		t.Errorf("path n3->n2 = %v, want weight 4", byDst["n2"])
	}
	if p, ok := byDst["n3"]; !ok || p.Field(3).AsInt() != 4 {
		t.Errorf("path n3->n3 = %v, want weight 4", byDst["n3"])
	}
	// n1 only has its own link-derived path.
	if got := len(h.rows("n1", "path")); got != 1 {
		t.Errorf("n1 has %d paths, want 1", got)
	}
}

// TestPeriodicRule checks timer-driven strands: steady firing, watched
// event delivery, and bounded (count-limited) periodics.
func TestPeriodicRule(t *testing.T) {
	h := newHarness(t, `
watch(tick).
watch(once).
t1 tick@N(E) :- periodic@N(E, 1).
t2 once@N(E) :- periodic@N(E, 1, 1).
`, "n1")
	h.net.Run(10.5)
	h.noErrors()
	var ticks, onces int
	for _, w := range h.watched {
		switch w.Name {
		case "tick":
			ticks++
		case "once":
			onces++
		}
	}
	if ticks < 9 || ticks > 11 {
		t.Errorf("ticks = %d, want ~10", ticks)
	}
	if onces != 1 {
		t.Errorf("once fired %d times, want 1", onces)
	}
}

// TestAggregateRecomputation checks that a delta-triggered aggregate
// rescans its whole group rather than counting only the new row (cs6
// semantics).
func TestAggregateRecomputation(t *testing.T) {
	h := newHarness(t, `
materialize(resp, infinity, infinity, keys(1,2,3)).
materialize(cluster, infinity, infinity, keys(1,2)).
c1 cluster@N(Addr, count<*>) :- resp@N(Req, Addr).
`, "n1")
	for i, addr := range []string{"a", "a", "b", "a"} {
		h.inject("n1", tuple.New("resp",
			tuple.Str("n1"), tuple.Int(int64(i)), tuple.Str(addr)))
	}
	h.net.Run(1)
	h.noErrors()
	counts := map[string]int64{}
	for _, r := range h.rows("n1", "cluster") {
		counts[r.Field(1).AsStr()] = r.Field(2).AsInt()
	}
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Errorf("cluster counts = %v, want a:3 b:1", counts)
	}
}

// TestAggregateMinMax checks min/max over an event-triggered scan.
func TestAggregateMinMax(t *testing.T) {
	h := newHarness(t, `
materialize(dist, infinity, infinity, keys(1,2)).
watch(best).
watch(worst).
m1 best@N(min<D>) :- probe@N(E), dist@N(Key, D).
m2 worst@N(max<D>) :- probe@N(E), dist@N(Key, D).
`, "n1")
	for i, d := range []int64{7, 3, 9} {
		h.inject("n1", tuple.New("dist", tuple.Str("n1"), tuple.Int(int64(i)), tuple.Int(d)))
	}
	h.net.RunFor(0.1)
	h.inject("n1", tuple.New("probe", tuple.Str("n1"), tuple.ID(1)))
	h.net.RunFor(1)
	h.noErrors()
	var best, worst int64 = -1, -1
	for _, w := range h.watched {
		switch w.Name {
		case "best":
			best = w.Field(1).AsInt()
		case "worst":
			worst = w.Field(1).AsInt()
		}
	}
	if best != 3 || worst != 9 {
		t.Errorf("best=%d worst=%d, want 3/9", best, worst)
	}
}

// TestAggregateCountZero checks the count-0 emission that snapshot rule
// sr9 depends on: an event-bound group with no matches emits count 0.
func TestAggregateCountZero(t *testing.T) {
	h := newHarness(t, `
materialize(snapState, infinity, infinity, keys(1,2)).
watch(haveSnap).
s1 haveSnap@N(Src, I, count<*>) :- snapState@N(I, State), marker@N(Src, I).
`, "n1")
	h.inject("n1", tuple.New("marker", tuple.Str("n1"), tuple.Str("n2"), tuple.Int(5)))
	h.net.RunFor(0.1)
	h.inject("n1", tuple.New("snapState", tuple.Str("n1"), tuple.Int(5), tuple.Str("Snapping")))
	h.net.RunFor(0.1)
	h.inject("n1", tuple.New("marker", tuple.Str("n1"), tuple.Str("n3"), tuple.Int(5)))
	h.net.RunFor(1)
	h.noErrors()
	var counts []int64
	for _, w := range h.watched {
		if w.Name == "haveSnap" {
			counts = append(counts, w.Field(3).AsInt())
		}
	}
	if len(counts) != 2 || counts[0] != 0 || counts[1] != 1 {
		t.Errorf("haveSnap counts = %v, want [0 1]", counts)
	}
}

// TestDeleteRule checks delete rules, including wildcard (unbound) head
// fields as in cs10.
func TestDeleteRule(t *testing.T) {
	h := newHarness(t, `
materialize(entry, infinity, infinity, keys(1,2,3)).
d1 delete entry@N(Key, Val) :- drop@N(Key).
`, "n1")
	for i := int64(0); i < 3; i++ {
		h.inject("n1", tuple.New("entry", tuple.Str("n1"), tuple.Int(i%2), tuple.Int(10+i)))
	}
	h.net.RunFor(0.1)
	// Key 0 matches entries (0,10) and (0,12); Val is a wildcard.
	h.inject("n1", tuple.New("drop", tuple.Str("n1"), tuple.Int(0)))
	h.net.RunFor(1)
	h.noErrors()
	rows := h.rows("n1", "entry")
	if len(rows) != 1 || rows[0].Field(1).AsInt() != 1 {
		t.Errorf("surviving rows = %v, want only key 1", rows)
	}
}

// TestConditionsAndBuiltins exercises selections, assignments and f_now.
func TestConditionsAndBuiltins(t *testing.T) {
	h := newHarness(t, `
materialize(seen, infinity, infinity, keys(1,2)).
c1 seen@N(X, T) :- ev@N(X), X != 3, T := f_now().
`, "n1")
	for _, x := range []int64{1, 3, 5} {
		h.inject("n1", tuple.New("ev", tuple.Str("n1"), tuple.Int(x)))
	}
	h.net.RunFor(2)
	h.noErrors()
	rows := h.rows("n1", "seen")
	if len(rows) != 2 {
		t.Fatalf("seen rows = %v, want 2", rows)
	}
	for _, r := range rows {
		if r.Field(2).Kind() != tuple.KindFloat {
			t.Errorf("timestamp not a float: %v", r)
		}
	}
}

// TestRemoteEventTrigger checks that a head routed to another node
// triggers that node's event strands.
func TestRemoteEventTrigger(t *testing.T) {
	h := newHarness(t, `
materialize(log, infinity, infinity, keys(1,2)).
r1 pingResp@Src(N) :- pingReq@N(Src).
r2 log@N(From) :- pingResp@N(From).
`, "n1", "n2")
	h.inject("n2", tuple.New("pingReq", tuple.Str("n2"), tuple.Str("n1")))
	h.net.Run(2)
	h.noErrors()
	rows := h.rows("n1", "log")
	if len(rows) != 1 || rows[0].Field(1).AsStr() != "n2" {
		t.Errorf("log rows = %v, want pingResp from n2", rows)
	}
}

// TestRuleErrorReporting: a type error inside a rule is reported, not
// fatal.
func TestRuleErrorReporting(t *testing.T) {
	h := newHarness(t, `
watch(out).
b1 out@N(V) :- ev@N(X), V := X + true.
`, "n1")
	h.inject("n1", tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(1)
	if len(h.errs) == 0 || !strings.Contains(h.errs[0], "add") {
		t.Errorf("expected add type error, got %v", h.errs)
	}
	if len(h.watched) != 0 {
		t.Errorf("no tuple should be produced, got %v", h.watched)
	}
}

// TestTTLRefreshThroughRules: reinsertion of identical derived state
// refreshes TTL without retriggering downstream rules.
func TestTTLRefreshThroughRules(t *testing.T) {
	h := newHarness(t, `
materialize(alive, 3, infinity, keys(1,2)).
watch(derived).
a1 alive@N(X) :- beat@N(X).
a2 derived@N(X) :- alive@N(X).
`, "n1")
	h.inject("n1", tuple.New("beat", tuple.Str("n1"), tuple.Int(7)))
	h.net.RunFor(2)
	h.inject("n1", tuple.New("beat", tuple.Str("n1"), tuple.Int(7))) // refresh at t≈2
	h.net.RunFor(2)                                                  // t≈4: original TTL passed, refreshed row alive
	h.noErrors()
	if got := len(h.rows("n1", "alive")); got != 1 {
		t.Errorf("alive rows = %d, want 1 (refreshed)", got)
	}
	if len(h.watched) != 1 {
		t.Errorf("derived fired %d times, want 1 (no retrigger on refresh)", len(h.watched))
	}
	h.net.RunFor(4) // t≈8: refreshed TTL also passed
	if got := len(h.rows("n1", "alive")); got != 0 {
		t.Errorf("alive rows after expiry = %d, want 0", got)
	}
}

// TestReflectionTables: installed rules and tables are queryable.
func TestReflectionTables(t *testing.T) {
	h := newHarness(t, pathProgram, "n1")
	rules := h.rows("n1", engine.RuleTableName)
	// p0 has 1 strand (delta on link); p1 has 2 (delta on link, path).
	if len(rules) != 3 {
		t.Errorf("ruleTable rows = %d, want 3", len(rules))
	}
	tabs := h.rows("n1", engine.TableTableName)
	if len(tabs) != 2 {
		t.Errorf("tableTable rows = %d, want 2 (link, path)", len(tabs))
	}
}

// TestMetricsAccounting: messages and rule fires are counted.
func TestMetricsAccounting(t *testing.T) {
	h := newHarness(t, pathProgram, "n1", "n2")
	h.inject("n1", tuple.New("link", tuple.Str("n1"), tuple.Str("n2"), tuple.Int(1)))
	h.net.Run(5)
	m1 := h.net.Node("n1").Metrics()
	m2 := h.net.Node("n2").Metrics()
	if m1.MsgsSent == 0 || m2.MsgsRecv == 0 {
		t.Errorf("expected cross-node traffic, got sent=%d recv=%d", m1.MsgsSent, m2.MsgsRecv)
	}
	if m1.BusySeconds <= 0 {
		t.Error("busy time must accumulate")
	}
	if m1.RuleFires == 0 {
		t.Error("rule fires must be counted")
	}
}

// TestTableKeyedReplacementViaRules: a keyed table updated by a rule
// keeps one row per key (bestSucc-style state).
func TestTableKeyedReplacementViaRules(t *testing.T) {
	h := newHarness(t, `
materialize(best, infinity, infinity, keys(1)).
b1 best@N(X) :- obs@N(X).
`, "n1")
	for _, x := range []int64{5, 9, 2} {
		h.inject("n1", tuple.New("obs", tuple.Str("n1"), tuple.Int(x)))
	}
	h.net.RunFor(1)
	h.noErrors()
	rows := h.rows("n1", "best")
	if len(rows) != 1 || rows[0].Field(1).AsInt() != 2 {
		t.Errorf("best = %v, want single row with last value 2", rows)
	}
}

var _ = table.Infinity // keep import for doc cross-reference

// TestHigherOrderInstall exercises §1.3's autonomic usage model: a rule
// reacts to an alarm by installing a new, more detailed monitor on-line
// (the installProgram event).
func TestHigherOrderInstall(t *testing.T) {
	h := newHarness(t, `
watch(detail).
a1 installProgram@N(P) :- alarm@N(X), P := "watch(detail). d1 detail@N(Y, T) :- obs@N(Y), T := f_now().".
`, "n1")
	// Before the alarm, obs events are ignored (no detail rule).
	h.inject("n1", tuple.New("obs", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(1)
	if len(h.watched) != 0 {
		t.Fatalf("premature detail: %v", h.watched)
	}
	// The alarm triggers self-installation of the detail monitor.
	h.inject("n1", tuple.New("alarm", tuple.Str("n1"), tuple.Int(9)))
	h.net.RunFor(1)
	h.inject("n1", tuple.New("obs", tuple.Str("n1"), tuple.Int(2)))
	h.net.RunFor(1)
	h.noErrors()
	found := false
	for _, w := range h.watched {
		if w.Name == "detail" && w.Field(1).AsInt() == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("detail monitor not installed on alarm: %v", h.watched)
	}
}

// TestInstallEventErrors: malformed higher-order installs surface as
// rule errors, not crashes.
func TestInstallEventErrors(t *testing.T) {
	h := newHarness(t, `watch(ok).`, "n1")
	h.inject("n1", tuple.New("installProgram", tuple.Str("n1"), tuple.Str("this is not overlog")))
	h.inject("n1", tuple.New("installProgram", tuple.Str("n1"), tuple.Int(3)))
	h.net.RunFor(1)
	if len(h.errs) != 2 {
		t.Errorf("errors = %v, want 2", h.errs)
	}
}
