package engine_test

import (
	"strings"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/tuple"
)

// TestCascadeCap: a non-terminating recursive program is cut off with a
// rule error instead of hanging the node (the engine's runaway guard).
func TestCascadeCap(t *testing.T) {
	h := newHarness(t, `
loop1 ping@N(X + 1) :- pong@N(X).
loop2 pong@N(X + 1) :- ping@N(X).
`, "n1")
	h.inject("n1", tuple.New("ping", tuple.Str("n1"), tuple.Int(0)))
	h.net.RunFor(1)
	if len(h.errs) == 0 || !strings.Contains(h.errs[0], "cascade") {
		t.Fatalf("expected cascade-cap error, got %v", h.errs)
	}
	// The node remains usable afterwards.
	h.errs = nil
	h2 := h // same network
	h2.inject("n1", tuple.New("pong", tuple.Str("n1"), tuple.Int(1<<40)))
	h.net.RunFor(1)
	// (A second cascade error is fine; the point is no hang or panic.)
}

// TestRemoteDeleteRejected: delete-rule heads must be local.
func TestRemoteDeleteRejected(t *testing.T) {
	h := newHarness(t, `
materialize(tab, infinity, infinity, keys(1,2)).
d1 delete tab@Other(K) :- drop@N(K, Other).
`, "n1", "n2")
	h.inject("n1", tuple.New("tab", tuple.Str("n1"), tuple.Int(1)))
	h.inject("n1", tuple.New("drop", tuple.Str("n1"), tuple.Int(1), tuple.Str("n2")))
	h.net.RunFor(1)
	if len(h.errs) == 0 || !strings.Contains(h.errs[0], "must be local") {
		t.Errorf("expected locality error, got %v", h.errs)
	}
}

// TestUnknownEventDropped: tuples with no table, no strands and no watch
// are dropped silently (no error, no crash).
func TestUnknownEventDropped(t *testing.T) {
	h := newHarness(t, `watch(other).`, "n1")
	h.inject("n1", tuple.New("mystery", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(1)
	h.noErrors()
	if got := h.net.Node("n1").Metrics().TuplesProcessed; got == 0 {
		t.Error("tuple should still be counted as processed")
	}
}

// TestMalformedMessageDropped: undecodable network payloads surface as a
// rule error and are dropped.
func TestMalformedMessageDropped(t *testing.T) {
	h := newHarness(t, `watch(x).`, "n1")
	n := h.net.Node("n1")
	cost := n.HandleMessage(engine.Envelope{Src: "zz", SrcTupleID: 1, Raw: []byte{0xff, 0x01, 0x02}})
	if cost <= 0 {
		t.Error("unmarshal cost must be billed")
	}
	if n.Metrics().RuleErrors == 0 {
		t.Error("decode failure must be reported")
	}
}
