// Shared query compilation: plan a program once, instantiate it on N
// identical nodes. At ring scale (1k-10k simulated hosts running the
// same Chord program) per-node planning dominated install time and
// per-node plans dominated steady-state memory — every node held its own
// parsed rule ASTs, op pipelines, and footprints. CompileQuery produces
// one immutable set of dataflow.Plans; InstallCompiledQuery wraps each
// in a lightweight per-node Strand (scratch state only).
//
// Correctness contract: a shared install must be bit-identical to a
// private install. Compilation depends on exactly two node-local inputs:
// the materialization environment (which predicate names are tables) and
// the generated-label counter. CompileQuery records every environment
// answer it observed and the number of labels it consumed;
// InstallCompiledQuery re-derives both on the target node and silently
// falls back to private planning on any mismatch. The
// P2GO_DISABLE_SHARED_PLANS kill switch (mirroring
// P2GO_DISABLE_INCREMENTAL_AGGS) forces the private path everywhere.
package engine

import (
	"fmt"
	"os"
	"sort"

	"p2go/internal/dataflow"
	"p2go/internal/overlog"
	"p2go/internal/planner"
	"p2go/internal/table"
)

// DisableSharedPlans forces InstallCompiledQuery back to per-node
// private planning, mirroring DisableIncrementalAggs. It exists for the
// scale benchmark's private-plan baseline and for the CI job that keeps
// the fallback path green; production code never sets it. Not safe to
// flip while nodes run. The environment variable
// P2GO_DISABLE_SHARED_PLANS sets it at process start (used by CI).
var DisableSharedPlans bool

func init() {
	if os.Getenv("P2GO_DISABLE_SHARED_PLANS") != "" {
		DisableSharedPlans = true
	}
}

// envCheck is one materialization answer the compile-time environment
// gave the planner. A target node replays these against its own store
// before accepting the shared plans.
type envCheck struct {
	name         string
	materialized bool
}

// CompiledQuery is a program planned once against a reference
// environment. It is immutable after CompileQuery returns and safe to
// install on any number of nodes, concurrently.
type CompiledQuery struct {
	prog       *overlog.Program
	plans      []*dataflow.Plan
	watches    []string
	declares   map[string]bool
	checks     []envCheck
	labelsUsed int
}

// Program returns the compiled program.
func (cq *CompiledQuery) Program() *overlog.Program { return cq.prog }

// NumPlans returns how many rule strands the program compiled into.
func (cq *CompiledQuery) NumPlans() int { return len(cq.plans) }

// Declares reports whether the program declares name as a table.
func (cq *CompiledQuery) Declares(name string) bool { return cq.declares[name] }

// DeclaredTables returns the table names the program declares, sorted.
// Callers compiling follow-on programs against this one use these to
// build the base environment for CompileQueryEnv.
func (cq *CompiledQuery) DeclaredTables() []string {
	out := make([]string, 0, len(cq.declares))
	for name := range cq.declares {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Plans returns the compiled rule plans. The slice and the plans are
// immutable; callers may instantiate per-node strands from them but
// must not modify them.
func (cq *CompiledQuery) Plans() []*dataflow.Plan { return cq.plans }

// freshNodeTable reports whether name is a reflection table every node
// materializes at birth (NewNode). The trace tables are deliberately
// excluded: only tracing-enabled nodes have them, so a program that
// references one compiles against the untraced environment and traced
// nodes fall back to private planning via the recorded checks.
func freshNodeTable(name string) bool {
	switch name {
	case RuleTableName, TableTableName, QueryTableName,
		NodeStatsTableName, QueryStatsTableName:
		return true
	}
	return false
}

// CompileQuery plans prog once against the environment of a fresh node:
// the program's own declarations plus the built-in reflection tables.
// Programs that join tables owned by an already-installed query should
// use CompileQueryEnv with that query's environment instead.
func CompileQuery(prog *overlog.Program) (*CompiledQuery, error) {
	return CompileQueryEnv(prog, nil)
}

// CompileQueryEnv plans prog against a fresh node extended by base:
// base answers materialization queries for tables some earlier install
// (for example the Chord substrate) is expected to have created on the
// target nodes. Every environment answer is recorded; nodes whose store
// disagrees at install time get private planning instead, so a wrong
// base can never corrupt an install — it only loses the sharing.
func CompileQueryEnv(prog *overlog.Program, base planner.Env) (*CompiledQuery, error) {
	cq := &CompiledQuery{prog: prog, declares: make(map[string]bool)}
	declared := make(map[string]table.Spec)
	for _, m := range prog.Materializations() {
		spec := table.Spec{Name: m.Name, Lifetime: m.Lifetime, MaxSize: m.MaxSize, Keys: m.Keys}
		if prev, ok := declared[m.Name]; ok {
			if err := prev.Conflicts(spec); err != nil {
				return nil, fmt.Errorf("engine: %w", err)
			}
			continue
		}
		declared[m.Name] = spec
		cq.declares[m.Name] = true
	}
	seen := make(map[string]bool)
	env := planner.EnvFunc(func(name string) bool {
		mat := cq.declares[name] || freshNodeTable(name) ||
			(base != nil && base.IsMaterialized(name))
		if !seen[name] {
			seen[name] = true
			cq.checks = append(cq.checks, envCheck{name: name, materialized: mat})
		}
		return mat
	})
	gen := func() string {
		cq.labelsUsed++
		return fmt.Sprintf("rule_%d", cq.labelsUsed)
	}
	for _, st := range prog.Statements {
		switch s := st.(type) {
		case *overlog.Watch:
			cq.watches = append(cq.watches, s.Name)
		case *overlog.Rule:
			ps, err := planner.CompileRule(s, env, gen)
			if err != nil {
				return nil, err
			}
			cq.plans = append(cq.plans, ps...)
		}
	}
	return cq, nil
}

// planCompatible reports whether installing cq's shared plans on this
// node is bit-identical to planning cq's program privately here: every
// recorded environment answer must replay identically against the
// node's store, and any compile-generated labels must land on the same
// counter values private planning would generate.
func (n *Node) planCompatible(cq *CompiledQuery) bool {
	if cq.labelsUsed > 0 && n.labelCounter != 0 {
		return false
	}
	for _, c := range cq.checks {
		mat := cq.declares[c.name] || n.store.Get(c.name) != nil
		if mat != c.materialized {
			return false
		}
	}
	return true
}

// InstallCompiledQuery installs a compiled program under the given ID
// (empty = generate one), sharing its immutable plans with every other
// node that installed the same CompiledQuery. When sharing is disabled
// or the node's environment differs from the compile-time reference,
// the program is planned privately instead — the two paths produce
// identical strands, emissions, and reflection rows either way.
func (n *Node) InstallCompiledQuery(id string, cq *CompiledQuery) (string, error) {
	if DisableSharedPlans || !n.planCompatible(cq) {
		return n.installQuery(id, cq.prog, nil)
	}
	return n.installQuery(id, cq.prog, cq)
}

// Plans returns the distinct compiled plans backing the node's
// installed strands, in installation order. Shared-plan installs
// surface the same *Plan pointers on every node; private installs
// surface per-node copies.
func (n *Node) Plans() []*dataflow.Plan {
	var out []*dataflow.Plan
	for _, id := range n.queryOrder {
		for _, s := range n.queries[id].strands {
			out = append(out, s.Plan)
		}
	}
	return out
}
