package engine_test

import (
	"strings"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// TestEnableTracingIdempotentAndLive: tracing can be enabled mid-life,
// twice, and strands installed before it are traced afterwards.
func TestEnableTracingIdempotentAndLive(t *testing.T) {
	h := newHarness(t, `
materialize(tab, infinity, infinity, keys(1,2)).
r1 tab@N(X) :- ev@N(X).
`, "n1")
	n := h.net.Node("n1")
	h.inject("n1", tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(1)
	if n.Store().Get(trace.RuleExecTable) != nil {
		t.Fatal("ruleExec must not exist before tracing")
	}
	if err := n.EnableTracing(trace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := n.EnableTracing(trace.DefaultConfig()); err != nil {
		t.Fatal(err) // idempotent
	}
	h.inject("n1", tuple.New("ev", tuple.Str("n1"), tuple.Int(2)))
	h.net.RunFor(1)
	if n.Store().Get(trace.RuleExecTable).Count() == 0 {
		t.Error("pre-installed strand not traced after EnableTracing")
	}
	if n.Tracer() == nil {
		t.Error("Tracer() must be non-nil")
	}
}

// TestPeriodicsAccessorAndCountedTuple: periodic registration is
// reflected, and bounded periodics generate the 4-field tuple their rule
// declares.
func TestPeriodicsAccessorAndCountedTuple(t *testing.T) {
	h := newHarness(t, `
watch(tick).
t1 tick@N(E, C) :- periodic@N(E, 1, 2), C := 1.
`, "n1")
	n := h.net.Node("n1")
	ps := n.Periodics()
	if len(ps) != 1 || ps[0].Period() != 1 {
		t.Fatalf("periodics = %v", ps)
	}
	h.net.RunFor(5)
	if got := len(h.watched); got != 2 {
		t.Errorf("bounded periodic fired %d times, want 2", got)
	}
	if !ps[0].Done() {
		t.Error("periodic must report Done after its count")
	}
}

// TestConflictingMaterializeRejected: installing a program whose table
// spec conflicts with an existing one fails cleanly.
func TestConflictingMaterializeRejected(t *testing.T) {
	h := newHarness(t, `materialize(tab, 10, 5, keys(1)).`, "n1")
	n := h.net.Node("n1")
	err := n.InstallProgram(mustProg(t, `materialize(tab, 99, 5, keys(1)).`))
	if err == nil || !strings.Contains(err.Error(), "already materialized") {
		t.Errorf("err = %v", err)
	}
	// Identical re-materialization is fine.
	if err := n.InstallProgram(mustProg(t, `materialize(tab, 10, 5, keys(1)).`)); err != nil {
		t.Errorf("idempotent materialize failed: %v", err)
	}
}

// TestPlannerErrorSurfacesOnInstall: a rule joining two events fails at
// install time with a planner diagnostic.
func TestPlannerErrorSurfacesOnInstall(t *testing.T) {
	h := newHarness(t, `watch(x).`, "n1")
	err := h.net.Node("n1").InstallProgram(mustProg(t, `bad@N(A) :- e1@N(A), e2@N(A).`))
	if err == nil || !strings.Contains(err.Error(), "event predicates") {
		t.Errorf("err = %v", err)
	}
}

// TestSweepExpiresState: the driver-visible sweep entry point expires
// soft state and bills cost.
func TestSweepExpiresState(t *testing.T) {
	h := newHarness(t, `
materialize(tab, 2, infinity, keys(1,2)).
`, "n1")
	n := h.net.Node("n1")
	h.inject("n1", tuple.New("tab", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(5) // network sweeps run every second
	if got := n.Store().Get("tab").Count(); got != 0 {
		t.Errorf("rows after TTL = %d", got)
	}
	if cost := n.Sweep(); cost <= 0 {
		t.Error("sweep must bill cost")
	}
}

func mustProg(t *testing.T, src string) *overlog.Program {
	t.Helper()
	p, err := overlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var _ = engine.RuleTableName

// TestIntrospectionQuery: §1.3's first scenario — querying system state
// in place. An OverLog rule joins the node's own ruleTable reflection
// table, counting the rules installed on the node (including itself).
func TestIntrospectionQuery(t *testing.T) {
	h := newHarness(t, `
materialize(tab, infinity, infinity, keys(1,2)).
watch(ruleCount).
r1 tab@N(X) :- ev@N(X).
q1 ruleCount@N(count<*>) :- qev@N(E), ruleTable@N(Q, R, Trig, Src).
`, "n1")
	h.inject("n1", tuple.New("qev", tuple.Str("n1"), tuple.ID(1)))
	h.net.RunFor(1)
	h.noErrors()
	if len(h.watched) != 1 {
		t.Fatalf("watched = %v", h.watched)
	}
	// r1 (one strand) + q1 (one strand) = 2 reflected rules.
	if got := h.watched[0].Field(1).AsInt(); got != 2 {
		t.Errorf("ruleCount = %d, want 2", got)
	}
	// tableTable reflects the declared table.
	found := false
	for _, row := range h.rows("n1", engine.TableTableName) {
		if row.Field(1).AsStr() == "tab" {
			found = true
			if row.Field(3).AsInt() != -1 {
				t.Errorf("tableTable row = %v", row)
			}
		}
	}
	if !found {
		t.Error("tab not reflected in tableTable")
	}
}

// TestSelfJoinThroughIndexes: a rule joining the same table twice — the
// inner probe can hit the very index bucket the outer probe is
// iterating; regression test for reentrant bucket compaction.
func TestSelfJoinThroughIndexes(t *testing.T) {
	h := newHarness(t, `
materialize(edge, 5, infinity, keys(1,2,3)).
watch(two).
j1 two@N(A, C) :- go@N(A), edge@N(A, B), edge@N(B, C).
`, "n1")
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		h.inject("n1", tuple.New("edge", tuple.Str("n1"), tuple.Int(e[0]), tuple.Int(e[1])))
	}
	h.net.RunFor(0.1)
	h.inject("n1", tuple.New("go", tuple.Str("n1"), tuple.Int(1)))
	h.net.RunFor(1)
	h.noErrors()
	// Paths of length 2 from node 1: 1-2-3, 1-2-4.
	got := map[int64]bool{}
	for _, w := range h.watched {
		if w.Name == "two" {
			got[w.Field(2).AsInt()] = true
		}
	}
	if !got[3] || !got[4] || len(got) != 2 {
		t.Errorf("two-hop targets = %v, want {3,4}", got)
	}
}

// TestTupleLogRecordsSystemEvents: with tracing on, tuple arrivals and
// table insertions/removals are buffered as queryable tupleLog rows
// (§2.1's event logging), and an OverLog rule can aggregate over them.
func TestTupleLogRecordsSystemEvents(t *testing.T) {
	h := newHarness(t, `
materialize(tab, 2, infinity, keys(1,2)).
r1 tab@N(X) :- ev@N(X).
`, "n1")
	n := h.net.Node("n1")
	if err := n.EnableTracing(trace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// The log query is installed AFTER tracing exists (tupleLog is only
	// materialized then) — the on-line deployment order of §1.3.
	err := n.InstallProgram(mustProg(t, `
watch(evCount).
q1 evCount@N(Op, count<*>) :- query@N(E), tupleLog@N(S, Op, Name, ID, T).
`))
	if err != nil {
		t.Fatal(err)
	}
	h.inject("n1", tuple.New("ev", tuple.Str("n1"), tuple.Int(1)))
	h.inject("n1", tuple.New("ev", tuple.Str("n1"), tuple.Int(2)))
	h.net.RunFor(4) // TTL 2: both rows expire -> delete events
	h.inject("n1", tuple.New("query", tuple.Str("n1"), tuple.ID(1)))
	h.net.RunFor(1)
	h.noErrors()
	counts := map[string]int64{}
	for _, w := range h.watched {
		if w.Name == "evCount" {
			counts[w.Field(1).AsStr()] = w.Field(2).AsInt()
		}
	}
	if counts["insert"] < 2 {
		t.Errorf("insert events = %d, want >= 2 (%v)", counts["insert"], counts)
	}
	if counts["delete"] < 2 {
		t.Errorf("delete (expiry) events = %d, want >= 2 (%v)", counts["delete"], counts)
	}
	if counts["arrive"] < 3 {
		t.Errorf("arrival events = %d, want >= 3 (%v)", counts["arrive"], counts)
	}
}

// TestHeadWithoutSendIsDropped: a node with no transport drops remote
// heads (counted as sent) without crashing.
func TestHeadWithoutSendIsDropped(t *testing.T) {
	n := engine.NewNode(engine.Config{Addr: "solo", Seed: 1})
	err := n.InstallProgram(mustProg(t, `r1 out@Other(X) :- ev@N(X), Other := "elsewhere".`))
	if err != nil {
		t.Fatal(err)
	}
	n.HandleLocal(tuple.New("ev", tuple.Str("solo"), tuple.Int(1)))
	if n.Metrics().MsgsSent != 1 {
		t.Errorf("sent = %d, want 1 (dropped on the floor)", n.Metrics().MsgsSent)
	}
}

// TestDefaultClockIsZero: a node without a driver clock reads time 0.
func TestDefaultClockIsZero(t *testing.T) {
	n := engine.NewNode(engine.Config{Addr: "solo", Seed: 1})
	if n.Now() != 0 {
		t.Errorf("Now = %v", n.Now())
	}
	if n.LocalAddr() != "solo" || n.Addr() != "solo" {
		t.Error("identity accessors wrong")
	}
	if n.Rand64() == n.Rand64() {
		t.Error("rng must advance")
	}
}
