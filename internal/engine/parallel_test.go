package engine_test

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// wideProgram builds `rules` independent rules sharing the tick trigger,
// each scanning its own table — the widest conflict-free fan-out shape.
func wideProgram(t *testing.T, rules int, lifetime string) *overlog.Program {
	t.Helper()
	var b strings.Builder
	for i := 0; i < rules; i++ {
		fmt.Fprintf(&b, "materialize(t%d, %s, infinity, keys(2)).\n", i, lifetime)
		fmt.Fprintf(&b, "r%d out%d@N(A, C) :- tick@N(E), t%d@N(A, B), B < 2, C := B + %d.\n",
			i, i, i, i)
	}
	prog, err := overlog.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// fingerprint captures the determinism contract for one standalone node:
// metrics, per-query bills, histograms, and every table row with its
// node-unique tuple ID.
func fingerprint(n *engine.Node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "met=%+v\n", n.Metrics())
	qm := n.QueryMetrics()
	ids := make([]string, 0, len(qm))
	for id := range qm {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "q %s=%+v\n", id, qm[id])
	}
	h := n.Hists()
	fmt.Fprintf(&b, "hists=%s|%s\n", h.StrandCost.Encode(), h.QueueDepth.Encode())
	for _, name := range n.Store().Names() {
		var rows []string
		n.Store().Get(name).Scan(0, func(t tuple.Tuple) {
			rows = append(rows, fmt.Sprintf("%v#%d", t, t.ID))
		})
		sort.Strings(rows)
		fmt.Fprintf(&b, "%s(%d): %s\n", name, len(rows), strings.Join(rows, " "))
	}
	return b.String()
}

// runWide seeds the wide program's tables and fires `ticks` tick events.
func runWide(t *testing.T, n *engine.Node, prog *overlog.Program, rules, rows, ticks int) {
	t.Helper()
	if err := n.InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rules; i++ {
		name := fmt.Sprintf("t%d", i)
		for j := 0; j < rows; j++ {
			n.HandleLocal(tuple.New(name, tuple.Str("n1"), tuple.Int(int64(j)), tuple.Int(int64(j))))
		}
	}
	for k := 0; k < ticks; k++ {
		n.HandleLocal(tuple.New("tick", tuple.Str("n1"), tuple.Int(int64(k))))
	}
}

// TestFanoutMultiMatchesSingle is the core determinism gate of the
// intra-node scheduler: ExecMulti on a wide conflict-free fan-out must
// be bit-identical to ExecSingle — same counters, same per-query bills,
// same histograms, same tuple IDs — while actually committing batches.
func TestFanoutMultiMatchesSingle(t *testing.T) {
	const rules, rows, ticks = 12, 50, 5
	build := func(mode engine.ExecMode) (*engine.Node, string) {
		n := engine.NewNode(engine.Config{Addr: "n1", Seed: 3, ExecMode: mode, Workers: 4})
		runWide(t, n, wideProgram(t, rules, "infinity"), rules, rows, ticks)
		return n, fingerprint(n)
	}
	_, single := build(engine.ExecSingle)
	multi, got := build(engine.ExecMulti)
	if got != single {
		t.Fatalf("ExecMulti diverged from ExecSingle:\nsingle:\n%s\nmulti:\n%s", single, got)
	}
	fan := multi.FanoutStats()
	if fan.Committed != int64(ticks) {
		t.Errorf("Committed = %d, want %d (one batch per tick)", fan.Committed, ticks)
	}
	if fan.Aborted != 0 {
		t.Errorf("Aborted = %d, want 0 (infinite lifetimes never trip the window check)", fan.Aborted)
	}
	if fan.SeqSeconds <= fan.ParSeconds || fan.ParSeconds <= 0 {
		t.Errorf("modeled costs seq=%g par=%g, want 0 < par < seq", fan.SeqSeconds, fan.ParSeconds)
	}
}

// TestFanoutExpiryAbort drives the speculation down its bail-out path:
// soft-state tables whose lifetime is shorter than the batch's billed
// cost trip the post-speculation expiry window check, the buffers are
// discarded, and the fan-out re-runs sequentially — still bit-identical
// to ExecSingle.
func TestFanoutExpiryAbort(t *testing.T) {
	// 6 strands x 1000 probes x 17.5 µs ≈ 105 ms of billed cost; rows
	// inserted near clock 0 with a 50 ms lifetime expire inside that
	// window, so every batch must abort.
	const rules, rows, ticks = 6, 1000, 3
	build := func(mode engine.ExecMode) (*engine.Node, string) {
		n := engine.NewNode(engine.Config{Addr: "n1", Seed: 3, ExecMode: mode, Workers: 4})
		runWide(t, n, wideProgram(t, rules, "0.05"), rules, rows, ticks)
		return n, fingerprint(n)
	}
	_, single := build(engine.ExecSingle)
	multi, got := build(engine.ExecMulti)
	if got != single {
		t.Fatalf("ExecMulti diverged from ExecSingle on the abort path:\nsingle:\n%s\nmulti:\n%s", single, got)
	}
	fan := multi.FanoutStats()
	if fan.Aborted == 0 {
		t.Error("Aborted = 0: the expiry window check never fired; the test no longer covers the bail-out path")
	}
}

// TestParseExecMode pins the flag/env surface of the scheduler.
func TestParseExecMode(t *testing.T) {
	cases := []struct {
		in   string
		want engine.ExecMode
		ok   bool
	}{
		{"", engine.ExecAuto, true},
		{"auto", engine.ExecAuto, true},
		{"single", engine.ExecSingle, true},
		{"multi", engine.ExecMulti, true},
		{"both", engine.ExecAuto, false},
	}
	for _, c := range cases {
		got, err := engine.ParseExecMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, m := range []engine.ExecMode{engine.ExecAuto, engine.ExecSingle, engine.ExecMulti} {
		back, err := engine.ParseExecMode(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip %v: got %v, %v", m, back, err)
		}
	}
}

// TestDrainQueueAllocs is the regression test for the drain queue leak:
// the old `n.queue = n.queue[1:]` pop shrank the slice's capacity on
// every step, so a deep steady-state cascade reallocated the whole
// backing array roughly once per emission — O(depth) fresh bytes per
// pop. The ring-buffer drain recycles slots, so a long cascade's
// allocations are dominated by the tuples themselves.
func TestDrainQueueAllocs(t *testing.T) {
	const seedRows, hops = 128, 200
	prog, err := overlog.Parse(`
materialize(seedt, infinity, infinity, keys(2)).
r0 hop@N(A, B) :- kick@N(X), seedt@N(A), B := ` + fmt.Sprint(hops) + `.
r1 hop@N(A, J) :- hop@N(A, K), K > 0, J := K - 1.
`)
	if err != nil {
		t.Fatal(err)
	}
	n := engine.NewNode(engine.Config{Addr: "n1", Seed: 1})
	if err := n.InstallProgram(prog); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < seedRows; j++ {
		n.HandleLocal(tuple.New("seedt", tuple.Str("n1"), tuple.Int(int64(j))))
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	// One kick floods the queue with seedRows hop chains that count
	// down in lockstep: the queue holds ~seedRows entries for
	// seedRows*hops pops — the exact shape that made the old pop
	// quadratic in total bytes allocated.
	n.HandleLocal(tuple.New("kick", tuple.Str("n1"), tuple.Int(0)))
	runtime.ReadMemStats(&after)

	pops := n.Metrics().TuplesProcessed
	if pops < seedRows*hops {
		t.Fatalf("cascade too short: processed %d tuples, want >= %d", pops, seedRows*hops)
	}
	perPop := float64(after.TotalAlloc-before.TotalAlloc) / float64(pops)
	// The emitted hop tuple itself costs ~175 B/pop; the ring-buffer
	// drain adds nothing on top (measured ~178 B/pop). The old reslice
	// pop leaked the queue's backing array — capacity shrank by one per
	// pop, so steady-state churn reallocated the array every ~depth
	// pops, measured at ~335 B/pop on this workload. 250 B/pop sits
	// between the two with ~40% margin each way.
	if perPop > 250 {
		t.Errorf("drain allocated %.0f B/pop over a %d-pop cascade, want <= 250 (queue pop is leaking its backing array again)", perPop, pops)
	}
}
