package engine

// Intra-node parallel strand execution: when one delta or event fans
// out to several strands, strands whose table footprints don't conflict
// run concurrently on a per-node worker pool, speculatively, against a
// frozen view of the node — and their buffered effects are merged in
// canonical strand order, reproducing the sequential execution bit for
// bit. This is the same determinism discipline the simnet parallel
// driver applies at host granularity, pushed down to strand
// granularity.
//
// Why speculation is exact. During a fan-out, strands never mutate the
// store: head tuples are queued (by EmitHead), not inserted, so even
// sequentially no strand in the batch observes another's writes. The
// only channels by which strand i can influence strand j>i are:
//
//   - the micro-clock: every bill advances Node.micro, and Now() feeds
//     table-expiry visibility, f_now, and send timestamps. Strands
//     calling f_now/f_rand are statically pinned (Footprint.Impure),
//     and expiry is handled by the window check below; send timestamps
//     and error times are reconstructed exactly at merge by replaying
//     each strand's bills in order.
//   - table-local mutations of probing itself: expiry eviction, lazy
//     index creation, bucket compaction, scan scratch. Eviction is
//     excluded by the window check; the rest are table-local, and the
//     conflict grouping serializes strands sharing a table.
//
// The expiry window check: speculation starts at micro-time m0 and the
// batch bills a total of C seconds. If every table the batch reads
// satisfies SoonestExpiry() > clock+m0 before the batch (no eviction
// during speculation, so discarding buffers is always sound) and
// SoonestExpiry() > clock+m0+C after it (no row sequential execution
// would have seen expire mid-batch), then the frozen view each strand
// probed at m0 equals the moving view sequential execution would have
// probed at m0+P_i, and the speculation commits. Otherwise every buffer
// is discarded and the whole fan-out re-runs on the ordinary sequential
// path.
//
// Merging replays, per strand in canonical order, the exact effect
// sequence the strand produced: bills advance the real micro-clock,
// emissions go through the real EmitHead (assigning tuple IDs, queueing
// cascades, marshaling and sending with exact timestamps), and rule
// errors fire with the micro-clock at their original offset. Counters,
// per-query bills, histograms, the cascade queue, and every send `at`
// come out identical to sequential execution.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"p2go/internal/dataflow"
	"p2go/internal/table"
	"p2go/internal/tuple"
)

// ExecMode selects the intra-node strand execution strategy.
type ExecMode int

const (
	// ExecAuto (the default) stays sequential for small fan-outs —
	// where worker handoff costs more than it buys — and batches
	// fan-outs of autoFanoutMin or more strands onto the worker pool.
	ExecAuto ExecMode = iota
	// ExecSingle always runs strands sequentially (the classic
	// single-threaded node).
	ExecSingle
	// ExecMulti batches every fan-out of two or more conflict groups.
	ExecMulti
)

// autoFanoutMin is the fan-out width at which ExecAuto starts batching.
const autoFanoutMin = 6

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case ExecSingle:
		return "single"
	case ExecMulti:
		return "multi"
	default:
		return "auto"
	}
}

// ParseExecMode parses "auto", "single" or "multi" (empty = auto).
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "auto":
		return ExecAuto, nil
	case "single":
		return ExecSingle, nil
	case "multi":
		return ExecMulti, nil
	}
	return ExecAuto, fmt.Errorf("engine: unknown exec mode %q (want auto, single or multi)", s)
}

// envExecMode is the process-wide P2GO_EXEC_MODE override, read once at
// init like the other engine kill switches. It applies only to nodes
// configured with ExecAuto: an explicit ExecSingle/ExecMulti in Config
// wins, so differential tests can still pin both modes under a CI job
// that forces multi.
var envExecMode, _ = ParseExecMode(os.Getenv("P2GO_EXEC_MODE"))

// fanoutPlan is the cached conflict analysis of one trigger's strand
// list: the partition of strand indices into footprint-conflict groups
// and the union of tables the batch reads. Invalidated whenever a query
// install or uninstall changes the strand lists.
type fanoutPlan struct {
	// ok is false when the fan-out can never batch: fewer than two
	// conflict groups, or a strand that is impure or carries a
	// maintained aggregate accumulator (AggState touches node state).
	ok bool
	// groups holds strand indices per conflict group, each ascending;
	// groups are ordered by their first member. Strands in one group
	// share tables and run in order on one worker.
	groups [][]int
	// reads is the sorted union of the batch's read tables, checked
	// against SoonestExpiry before and after speculation.
	reads []string
}

// buildFanoutPlan partitions a trigger's strands into conflict groups
// by union-find over their footprint tables.
func buildFanoutPlan(ss []*dataflow.Strand) *fanoutPlan {
	p := &fanoutPlan{}
	if len(ss) < 2 {
		return p
	}
	for _, s := range ss {
		if s.Footprint.Impure || s.AggPlan != nil {
			return p
		}
	}
	parent := make([]int, len(ss))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra // smaller index becomes the root
	}
	owner := map[string]int{} // table name -> first strand touching it
	readSet := map[string]bool{}
	touch := func(i int, name string) {
		if name == "" {
			return
		}
		if o, seen := owner[name]; seen {
			union(o, i)
		} else {
			owner[name] = i
		}
	}
	for i, s := range ss {
		for _, t := range s.Footprint.Reads {
			touch(i, t)
			readSet[t] = true
		}
		touch(i, s.Footprint.Write)
	}
	members := map[int][]int{}
	var roots []int
	for i := range ss {
		r := find(i)
		if _, seen := members[r]; !seen {
			roots = append(roots, r) // ascending: roots are minimal members
		}
		members[r] = append(members[r], i)
	}
	if len(roots) < 2 {
		return p
	}
	for _, r := range roots {
		p.groups = append(p.groups, members[r])
	}
	for t := range readSet {
		p.reads = append(p.reads, t)
	}
	sort.Strings(p.reads)
	p.ok = true
	return p
}

// fanoutPlanFor returns the cached plan for a trigger name, building it
// on first use. kind distinguishes the delta and event namespaces.
func (n *Node) fanoutPlanFor(kind uint8, name string, ss []*dataflow.Strand) *fanoutPlan {
	plans := n.eventPlans
	if kind == fanoutDelta {
		plans = n.deltaPlans
	}
	p := plans[name]
	if p == nil {
		p = buildFanoutPlan(ss)
		plans[name] = p
	}
	return p
}

const (
	fanoutDelta uint8 = iota
	fanoutEvent
)

// invalidateFanoutPlans drops every cached conflict analysis; called on
// query install and uninstall (the only operations that change the
// strand lists).
func (n *Node) invalidateFanoutPlans() {
	clear(n.deltaPlans)
	clear(n.eventPlans)
}

// fanoutMin returns the minimum fan-out width at which this node
// attempts batching, or MaxInt when batching is off.
func (n *Node) fanoutMin() int {
	switch n.cfg.ExecMode {
	case ExecMulti:
		return 2
	case ExecSingle:
		return math.MaxInt
	default:
		return autoFanoutMin
	}
}

// runStrands dispatches one fan-out: the strands fired by a single
// delta or event. Wide eligible fan-outs run speculatively on the
// worker pool; everything else (and any speculation the expiry window
// check rejects) takes the ordinary sequential loop.
func (n *Node) runStrands(kind uint8, name string, ss []*dataflow.Strand, t tuple.Tuple) {
	if len(ss) >= n.fanoutMin() && n.tracer == nil {
		if p := n.fanoutPlanFor(kind, name, ss); p.ok && n.runFanout(p, ss, t) {
			return
		}
	}
	for _, s := range ss {
		n.runStrand(s, t)
	}
}

// specEffect is one buffered side effect of a speculative strand run,
// in execution order. Replaying the sequence at merge time advances the
// real micro-clock through exactly the values sequential execution saw.
type specEffect struct {
	kind     uint8
	sec      float64     // specBill
	t        tuple.Tuple // specEmit
	isDelete bool        // specEmit
	ruleID   string      // specErr
	err      error       // specErr
}

const (
	specBill uint8 = iota
	specEmit
	specErr
)

// specCtx is the buffered dataflow.Context one strand runs against
// during speculation: reads go to the live store (safe under the expiry
// window check and the conflict grouping), everything else is recorded.
type specCtx struct {
	n       *Node
	s       *dataflow.Strand
	now     float64 // frozen clock: task start + micro at fan-out entry
	cost    float64 // bills accrued, marshal postamble included
	effects []specEffect
}

// Now returns the frozen fan-out entry time. Sequential execution would
// see later times as earlier strands bill; the expiry window check
// guarantees the difference is unobservable, and f_now users are
// statically pinned.
func (c *specCtx) Now() float64 { return c.now }

// Rand64 must be unreachable: strands calling f_rand/f_randID are
// pinned by Footprint.Impure.
func (c *specCtx) Rand64() uint64 {
	panic("engine: Rand64 reached during speculative strand execution; planner footprint should have pinned this strand")
}

// LocalAddr implements overlog.Context.
func (c *specCtx) LocalAddr() string { return c.n.cfg.Addr }

// Table implements dataflow.Context (live reads; see file comment).
func (c *specCtx) Table(name string) *table.Table { return c.n.store.Get(name) }

// Bill buffers a charge to the strand's query bucket.
func (c *specCtx) Bill(sec float64) {
	c.cost += sec
	c.effects = append(c.effects, specEffect{kind: specBill, sec: sec})
}

// EmitHead buffers a head emission. The only cost EmitHead itself bills
// with tracing off is the marshal postamble of a remote send, predicted
// here so the window check covers it; the merge replays the emission
// through the real EmitHead, which re-makes the routing decision and
// does the billing for real.
func (c *specCtx) EmitHead(s *dataflow.Strand, t tuple.Tuple, isDelete bool) {
	c.effects = append(c.effects, specEffect{kind: specEmit, t: t, isDelete: isDelete})
	if !isDelete {
		if dst := t.Loc(); dst != "" && dst != c.n.cfg.Addr {
			c.cost += dataflow.CostMarshal
		}
	}
}

// AggState implements dataflow.Context. Strands with a maintained
// accumulator are pinned, so this is unreachable; returning nil (the
// rescan path) keeps it safe regardless.
func (c *specCtx) AggState(*dataflow.Strand) *dataflow.AggMaint { return nil }

// Tracer taps: batching is disabled whenever the tracer is on, so these
// are pure no-ops, exactly like the node's own taps with tracer == nil.
func (c *specCtx) TraceInput(*dataflow.Strand, tuple.Tuple)        {}
func (c *specCtx) TracePrecond(*dataflow.Strand, int, tuple.Tuple) {}
func (c *specCtx) TraceStageDone(*dataflow.Strand, int)            {}

// RuleError buffers a runtime rule error; the merge refires it with the
// micro-clock advanced to exactly the sequential error time.
func (c *specCtx) RuleError(ruleID string, err error) {
	c.effects = append(c.effects, specEffect{kind: specErr, ruleID: ruleID, err: err})
}

// FanoutStats counts the intra-node scheduler's speculation outcomes.
// These are observability counters outside the determinism contract:
// they necessarily differ between ExecSingle and ExecMulti (which is
// why they live beside, not inside, metrics.Node).
type FanoutStats struct {
	// Committed counts fan-out batches whose speculation merged.
	Committed int64
	// Aborted counts speculations discarded by the expiry window check
	// (the fan-out then re-ran sequentially).
	Aborted int64
	// SeqSeconds is the summed cost-model seconds of all committed
	// batches — what the batches cost a one-worker node.
	SeqSeconds float64
	// ParSeconds is the modeled makespan of the same batches on the
	// node's worker pool: each batch's conflict groups list-scheduled
	// (in pull order, earliest-free worker first) over the pool, using
	// the groups' billed costs as their durations. SeqSeconds/ParSeconds
	// is the batches' cost-model speedup — the wall speedup an executor
	// with that many real cores would see on this workload, independent
	// of how many cores the benchmarking host happens to have.
	ParSeconds float64
}

// FanoutStats returns the node's speculation counters.
func (n *Node) FanoutStats() FanoutStats { return n.fanoutStats }

// runFanout executes one eligible fan-out speculatively. It returns
// true when the speculation committed; false means nothing semantically
// visible happened and the caller must run the sequential loop.
func (n *Node) runFanout(p *fanoutPlan, ss []*dataflow.Strand, t tuple.Tuple) bool {
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2 {
		return false
	}
	clock := n.Now()
	// Pre-check: no read table may expire at the frozen probe time, so
	// probes during speculation cannot evict rows or fire listeners —
	// which is what makes discarding the buffers sound.
	for _, name := range p.reads {
		if tb := n.store.Get(name); tb != nil && tb.SoonestExpiry() <= clock {
			n.fanoutStats.Aborted++
			return false
		}
	}
	specs := make([]specCtx, len(ss))
	for i := range specs {
		specs[i] = specCtx{n: n, s: ss[i], now: clock}
	}
	runGroup := func(g []int) {
		for _, si := range g {
			c := &specs[si]
			c.s.Run(c, t)
		}
	}
	k := min(workers, len(p.groups))
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(k)
	for w := 0; w < k; w++ {
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(p.groups) {
					return
				}
				runGroup(p.groups[gi])
			}
		}()
	}
	wg.Wait()
	// Post-check: sequential execution probes at times up to clock+C.
	// A row expiring inside (clock, clock+C] would have been invisible
	// (and evicted, with listener side effects) partway through the
	// sequential batch; the frozen view kept it. Discard and re-run.
	total := 0.0
	for i := range specs {
		total += specs[i].cost
	}
	for _, name := range p.reads {
		if tb := n.store.Get(name); tb != nil && tb.SoonestExpiry() <= clock+total {
			n.fanoutStats.Aborted++
			return false
		}
	}
	// Modeled makespan: list-schedule the groups' billed costs over the
	// worker pool in pull order (each group to the earliest-free worker,
	// matching the dynamic next-counter the real workers use). The
	// accumulated Seq/ParSeconds give the batches' cost-model speedup.
	finish := make([]float64, min(workers, len(p.groups)))
	for _, g := range p.groups {
		w := 0
		for j := 1; j < len(finish); j++ {
			if finish[j] < finish[w] {
				w = j
			}
		}
		for _, si := range g {
			finish[w] += specs[si].cost
		}
	}
	par := 0.0
	for _, f := range finish {
		par = max(par, f)
	}
	n.fanoutStats.SeqSeconds += total
	n.fanoutStats.ParSeconds += par
	// Commit: merge per strand in canonical order. This mirrors
	// runStrand exactly, with s.Run replaced by the effect replay.
	for i := range specs {
		n.mergeSpec(&specs[i])
	}
	n.fanoutStats.Committed++
	return true
}

// mergeSpec applies one speculative strand's buffered effects on the
// node, in order, reproducing the sequential runStrand bit for bit.
func (n *Node) mergeSpec(c *specCtx) {
	n.met.RuleFires++
	prev := n.curStats
	n.curStats = n.queryStats(c.s.QueryID)
	n.curStats.RuleFires++
	start := n.micro
	for i := range c.effects {
		e := &c.effects[i]
		switch e.kind {
		case specBill:
			n.bill(e.sec)
		case specEmit:
			n.EmitHead(c.s, e.t, e.isDelete)
		case specErr:
			n.ruleError(e.ruleID, e.err)
		}
	}
	n.hists.StrandCost.Observe(n.micro - start)
	n.curStats = prev
}
