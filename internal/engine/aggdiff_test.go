package engine_test

import (
	"math/rand"
	"testing"

	"p2go/internal/dataflow"
	"p2go/internal/tuple"
)

// aggDiffProgram exercises every maintainable aggregate op over a
// TTL'd table: count (EmitZero), sum, avg, min, max, both grouped and
// ungrouped, plus a delete rule so key-deletes flow through the
// accumulator's listener path.
const aggDiffProgram = `
materialize(val, 5, infinity, keys(1,2)).
materialize(cnt, infinity, infinity, keys(1,2)).
materialize(total, infinity, infinity, keys(1)).
materialize(mean, infinity, infinity, keys(1)).
materialize(low, infinity, infinity, keys(1)).
materialize(high, infinity, infinity, keys(1)).
watch(cnt).
watch(total).
watch(mean).
watch(low).
watch(high).
a1 cnt@N(G, count<*>) :- val@N(K, G, V).
a2 total@N(sum<V>) :- val@N(K, G, V).
a3 mean@N(avg<V>) :- val@N(K, G, V).
a4 low@N(min<V>) :- val@N(K, G, V).
a5 high@N(max<V>) :- val@N(K, G, V).
d1 delete val@N(K, G, V) :- drop@N(K), val@N(K, G, V).
`

// runAggDiffScript replays one seeded interleaving of inserts,
// key-deletes, and TTL expiry (clock advances past the 5s lifetime)
// and returns the rendered emission stream in order plus the number of
// incremental accumulator applications the run performed.
func runAggDiffScript(t *testing.T, seed int64) ([]string, int64) {
	t.Helper()
	h := newHarness(t, aggDiffProgram, "n1")
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < 150; step++ {
		switch rng.Intn(12) {
		case 0, 1, 2, 3, 4, 5, 6:
			// Insert; key collisions replace rows (same K,
			// different G/V) so replacement deltas are covered too.
			var v tuple.Value
			if rng.Intn(4) == 0 {
				v = tuple.Float(float64(rng.Intn(200)-100) / 8)
			} else {
				v = tuple.Int(int64(rng.Intn(100) - 50))
			}
			h.inject("n1", tuple.New("val", tuple.Str("n1"),
				tuple.Int(int64(rng.Intn(8))), tuple.Int(int64(rng.Intn(3))), v))
		case 7, 8, 9:
			h.inject("n1", tuple.New("drop", tuple.Str("n1"),
				tuple.Int(int64(rng.Intn(8)))))
		case 10:
			h.net.RunFor(0.4)
		case 11:
			// Big advance: rows cross the 5s TTL, so the next
			// trigger must reflect the expiries identically.
			h.net.RunFor(3.1)
		}
		h.net.RunFor(0.05)
	}
	h.net.RunFor(6)
	h.noErrors()
	out := make([]string, len(h.watched))
	for i, w := range h.watched {
		out[i] = w.String()
	}
	return out, h.net.Node("n1").Metrics().AggApplies
}

// TestAggIncrementalDifferential is the kill-switch differential: for
// several seeded interleavings, the emission stream with incremental
// aggregate maintenance must be byte-identical to the per-delta rescan
// path for count/sum/avg/min/max, including EmitZero count rules.
func TestAggIncrementalDifferential(t *testing.T) {
	prev := dataflow.DisableIncrementalAggs
	defer func() { dataflow.DisableIncrementalAggs = prev }()
	for seed := int64(1); seed <= 5; seed++ {
		dataflow.DisableIncrementalAggs = true
		rescan, _ := runAggDiffScript(t, seed)
		dataflow.DisableIncrementalAggs = false
		incr, applies := runAggDiffScript(t, seed)
		if len(rescan) == 0 {
			t.Fatalf("seed %d: rescan run emitted nothing", seed)
		}
		if applies == 0 {
			// Guards against the differential passing vacuously
			// because eligibility analysis regressed.
			t.Fatalf("seed %d: incremental run applied no deltas", seed)
		}
		if len(incr) != len(rescan) {
			t.Fatalf("seed %d: incremental emitted %d tuples, rescan %d",
				seed, len(incr), len(rescan))
		}
		for i := range incr {
			if incr[i] != rescan[i] {
				t.Fatalf("seed %d emission %d: incremental %s, rescan %s",
					seed, i, incr[i], rescan[i])
			}
		}
	}
}
