package engine_test

import (
	"math"
	"testing"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/tuple"
)

// counterMap flattens a node's published nodeStats rows into name→value.
// Rows are nodeStats(NAddr, Epoch, Counter, Value).
func counterMap(h *harness, addr string) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range h.rows(addr, engine.NodeStatsTableName) {
		v := r.Field(3)
		if v.Kind() == tuple.KindFloat {
			out[r.Field(2).AsStr()] = v.AsFloat()
		} else {
			out[r.Field(2).AsStr()] = float64(v.AsInt())
		}
	}
	return out
}

// TestStatsPublication: enabling publication fills nodeStats and
// queryStats with rows matching the Go-side metrics within one refresh
// period, and the publication work itself is billed to the reserved
// system query so per-query bills still sum to node totals.
func TestStatsPublication(t *testing.T) {
	h := newHarness(t, pathProgram, "n1", "n2")
	n := h.net.Node("n1")
	if err := n.EnableStatsPublication(2); err != nil {
		t.Fatal(err)
	}
	if got := n.StatsPeriod(); got != 2 {
		t.Fatalf("StatsPeriod = %v, want 2", got)
	}
	h.inject("n1", tuple.New("link", tuple.Str("n1"), tuple.Str("n2"), tuple.Int(1)))
	h.net.Run(10)
	h.noErrors()

	// Every node counter must be published; each published value is a
	// snapshot from within the last refresh period, so it is bounded by
	// the live counter read at the end of the run.
	live := n.Metrics()
	pub := counterMap(h, "n1")
	for _, c := range live.Counters() {
		v, ok := pub[c.Name]
		if !ok {
			t.Fatalf("nodeStats missing counter %s (have %v)", c.Name, pub)
		}
		if v < 0 || v > c.Float() {
			t.Errorf("published %s = %v outside [0, %v]", c.Name, v, c.Float())
		}
	}
	if pub["TimerFires"] == 0 {
		t.Error("published TimerFires = 0; the publication timer itself should have fired")
	}

	// queryStats must cover the system query (publication bills there)
	// and the installed program's query. Rows are
	// queryStats(NAddr, Epoch, QueryID, Counter, Value).
	queries := make(map[string]bool)
	for _, r := range h.rows("n1", engine.QueryStatsTableName) {
		queries[r.Field(2).AsStr()] = true
	}
	if !queries[engine.SystemQuery] {
		t.Errorf("queryStats has no %q rows: %v", engine.SystemQuery, queries)
	}
	if len(queries) < 2 {
		t.Errorf("queryStats covers %v, want system plus the installed query", queries)
	}

	// Accounting still holds with publication on: per-query busy seconds
	// sum to the node total.
	var sum float64
	for _, q := range n.QueryMetrics() {
		sum += q.BusySeconds
	}
	if diff := math.Abs(sum - live.BusySeconds); diff > 1e-9*(1+live.BusySeconds) {
		t.Errorf("per-query bills sum to %v, node total %v", sum, live.BusySeconds)
	}

	// The system query carries the publication cost: strictly more busy
	// time than an idle system bucket would have.
	if q := n.QueryMetrics()[engine.SystemQuery]; q.TimerFires == 0 {
		t.Errorf("system query TimerFires = 0, publication timer not billed there: %+v", q)
	}
}

// TestStatsPublicationFiresDeltaRules: the stats tables behave like any
// other table — an OverLog rule with a nodeStats delta trigger fires
// when a published counter changes value.
func TestStatsPublicationFiresDeltaRules(t *testing.T) {
	prog := pathProgram + `
sp1 sawStats@NAddr(Counter, Value) :- nodeStats@NAddr(Ep, Counter, Value), Counter == "TuplesProcessed".
watch(sawStats).
`
	h := newHarness(t, prog, "n1")
	if err := h.net.Node("n1").EnableStatsPublication(1); err != nil {
		t.Fatal(err)
	}
	h.net.Run(5)
	h.noErrors()
	saw := 0
	for _, w := range h.watched {
		if w.Name == "sawStats" {
			saw++
		}
	}
	// TuplesProcessed grows every publication (the publication inserts
	// rows itself), so the delta rule fires on every refresh.
	if saw < 2 {
		t.Fatalf("delta rule fired %d times over 5 s with a 1 s period, want >= 2", saw)
	}
}

// TestEnableStatsPublicationValidation: non-positive periods are
// rejected; a second enable is a no-op keeping the first period.
func TestEnableStatsPublicationValidation(t *testing.T) {
	h := newHarness(t, pathProgram, "n1")
	n := h.net.Node("n1")
	if err := n.EnableStatsPublication(0); err == nil {
		t.Fatal("period 0 accepted")
	}
	if err := n.EnableStatsPublication(-1); err == nil {
		t.Fatal("negative period accepted")
	}
	if err := n.EnableStatsPublication(3); err != nil {
		t.Fatal(err)
	}
	if err := n.EnableStatsPublication(7); err != nil {
		t.Fatalf("idempotent enable errored: %v", err)
	}
	if got := n.StatsPeriod(); got != 3 {
		t.Fatalf("StatsPeriod = %v after double enable, want first period 3", got)
	}
	before := len(h.rows("n1", engine.NodeStatsTableName))
	if before != 0 {
		t.Fatalf("stats rows before any firing: %d", before)
	}
	h.net.Run(8)
	h.noErrors()
	want := len(metrics.Node{}.Counters()) + len(n.ObsCounters())
	if got := len(h.rows("n1", engine.NodeStatsTableName)); got != want {
		t.Fatalf("nodeStats has %d rows, want one per counter (%d)", got, want)
	}
}
