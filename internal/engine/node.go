// Package engine implements the P2 node runtime: a single-threaded
// dataflow executor that owns a soft-state store, compiled rule strands,
// periodic timers, the execution tracer, and the network pre/postamble.
//
// A node is entirely passive: a driver (the discrete-event simulator in
// internal/simnet, or a real-time runner) delivers messages, timer firings
// and sweeps, each of which runs one "task" — the full cascade of rule
// activations triggered by that stimulus — and returns the simulated CPU
// cost, which the driver uses to model the node as a single-server queue.
//
// Programs are installed as first-class queries: every strand, timer,
// watch and table declaration carries the ID of the query that created
// it, installation is atomic (a program that fails to validate installs
// nothing), shared resources are reference-counted across queries, and
// UninstallQuery tears down exactly one query's slice of the dataflow
// graph, returning the node to its prior shape. CPU is billed per query,
// with costs not attributable to any query (the network pre/postamble,
// sweeps, restarts) under the reserved "system" query.
package engine

import (
	"fmt"
	"os"
	"sort"

	"math/rand"

	"p2go/internal/dataflow"
	"p2go/internal/metrics"
	"p2go/internal/overlog"
	"p2go/internal/planner"
	"p2go/internal/table"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// Reflection table names: the node's own rules, table declarations and
// installed queries are queryable from OverLog (§2.1 "introspection").
const (
	RuleTableName  = "ruleTable"
	TableTableName = "tableTable"
	QueryTableName = "queryTable"
)

// Performance-counter reflection tables: the engine's metrics.Node
// counters and per-query bills, published as ordinary soft-state rows
// on a configurable period (EnableStatsPublication) so OverLog programs
// can query live engine performance — the §3.2 profiler as a pure
// query. Row layouts:
//
//	nodeStats(NAddr, Epoch, Counter, Value)
//	queryStats(NAddr, Epoch, QueryID, Counter, Value)
//
// Epoch is the node's process incarnation (0 from birth, +1 per
// Rejoin), so collectors aggregating stats from remote nodes can tell a
// rejoined node's fresh rows from stale pre-crash ones. Counter names
// follow metrics.Node.Counters / metrics.Query.Counters plus the
// observability extras in Node.ObsCounters; Value is a float for
// *Seconds counters and an int for everything else.
const (
	NodeStatsTableName  = "nodeStats"
	QueryStatsTableName = "queryStats"
)

// NodeEpochTableName is the engine-owned single-row table
// nodeEpoch(NAddr, Epoch) holding the node's process incarnation.
// It exists from birth like the stats tables, so any OverLog program
// can join it without declaring it — the aggregation-tree protocol
// stamps its heartbeats and partial aggregates with it.
const NodeEpochTableName = "nodeEpoch"

// StatsPublishEventName is the internal event that triggers one stats
// publication. EnableStatsPublication installs a periodic rule emitting
// it; the engine intercepts the event (like installProgram) and queues
// fresh nodeStats/queryStats rows through the normal dataflow path, so
// delta strands reading the stats tables fire like on any other table.
const StatsPublishEventName = "statsPublish"

// InstallEventName is the higher-order installation event (§1.3: "the
// system can be programmed to react to events by installing new triggers
// itself"). A rule head installProgram@N(Source) causes the OverLog text
// in Source to be parsed and installed on node N, on-line, as a fresh
// query with a generated ID; installProgram@N(Source, QueryID) installs
// it under the given name.
const InstallEventName = "installProgram"

// UninstallEventName is the higher-order removal event: a rule head
// uninstallProgram@N(QueryID) removes the named query from node N —
// autonomic retirement of monitoring queries, the inverse of
// installProgram.
const UninstallEventName = "uninstallProgram"

// SystemQuery is the reserved query ID absorbing costs not attributable
// to any installed query (re-exported from metrics for callers).
const SystemQuery = metrics.SystemQuery

// maxCascade bounds the rule-activation cascade per task, guarding
// against non-terminating recursive programs.
const maxCascade = 200000

// Envelope is one network message: a marshaled tuple plus the provenance
// the receiver's tracer records in tupleTable.
type Envelope struct {
	// Src is the sending node's address.
	Src string
	// SrcTupleID is the tuple's node-unique ID at the sender.
	SrcTupleID uint64
	// Raw is the wire encoding of the tuple.
	Raw []byte
}

// SendFunc transmits an envelope toward dst. at is the node-local virtual
// time of the send (task start plus accumulated processing cost).
type SendFunc func(dst string, env Envelope, at float64)

// Periodic is a registered periodic trigger; the driver owns scheduling.
type Periodic struct {
	// Strand is the rule strand the timer fires.
	Strand    *dataflow.Strand
	node      *Node
	fired     int
	cancelled bool // set when the owning query is uninstalled
}

// Period returns the firing interval in seconds.
func (p *Periodic) Period() float64 { return p.Strand.Trigger.Period }

// Done reports whether the periodic stopped firing: a bounded periodic
// that exhausted its firings, or one whose query was uninstalled. Driver
// timer chains consult Done before rescheduling, so cancellation kills
// the chain at its next firing.
func (p *Periodic) Done() bool {
	if p.cancelled {
		return true
	}
	c := p.Strand.Trigger.Count
	return c > 0 && p.fired >= c
}

// Config configures a node.
type Config struct {
	// Addr is this node's address (location specifier value).
	Addr string
	// Seed seeds the node-local RNG (f_rand, periodic nonces).
	Seed int64
	// Send transmits envelopes; nil nodes drop remote tuples.
	Send SendFunc
	// Clock returns the current base virtual time in seconds. The
	// driver sets it; defaults to a clock stuck at zero.
	Clock func() float64
	// OnWatch receives tuples of watched predicates.
	OnWatch func(now float64, t tuple.Tuple)
	// OnRuleError receives runtime rule errors.
	OnRuleError func(now float64, ruleID string, err error)
	// OnNewPeriodic is invoked when installing a program registers a
	// new periodic trigger, so the driver can schedule it.
	OnNewPeriodic func(p *Periodic)
	// ExecMode selects the intra-node strand execution strategy (see
	// parallel.go). The zero value ExecAuto batches wide fan-outs onto
	// the worker pool and may be overridden process-wide by the
	// P2GO_EXEC_MODE environment variable; an explicit ExecSingle or
	// ExecMulti always wins over the environment.
	ExecMode ExecMode
	// Workers bounds the intra-node worker pool used for fan-out
	// batching; 0 means GOMAXPROCS. Results are bit-identical to
	// sequential execution regardless of the worker count.
	Workers int
	// TraceStore, when non-nil and Enabled, gives the tracer a durable
	// append-only trace store (forensic log); it has no effect unless
	// tracing is enabled too. The P2GO_DISABLE_TRACESTORE environment
	// variable force-disables it process-wide (kill switch).
	TraceStore *tracestore.Config
	// ExtraObs, when non-nil, contributes driver-owned counters appended
	// to ObsCounters — the realtime transport publishes its datagram and
	// overload-drop totals through this so they reach the queryable
	// nodeStats table and the Prometheus exposition. Implementations must
	// be safe to call from the node's executor goroutine while other
	// goroutines (e.g. a socket reader) update the underlying values:
	// transport counters are atomics. Simulated drivers leave it nil, so
	// the published row set stays mode-invariant where the determinism
	// fingerprints demand it.
	ExtraObs func() []metrics.Counter
}

type queued struct {
	t        tuple.Tuple
	isDelete bool
	src      string // provenance for the tracer
	srcID    uint64
}

// query is one installed program: the engine's unit of uninstallation
// and per-query cost attribution.
type query struct {
	id      string
	source  string // original OverLog text (queryTable reflection)
	strands []*dataflow.Strand
	// periodics are this query's registered timers (cancelled on
	// uninstall so driver timer chains die).
	periodics []*Periodic
	// watches and tables list the watch names and declared table names
	// whose refcounts this query holds (one entry per refcount).
	watches     []string
	tables      []string
	installedAt float64
}

// Node is one P2 node. Not safe for concurrent use: the driver serializes
// Handle* calls on each node. Distinct nodes share no mutable state (each
// owns its store, RNG, tracer, counters, and scratch buffers; Send and
// the On* callbacks are the only ways out), so a parallel driver may run
// different nodes on different goroutines concurrently.
type Node struct {
	cfg   Config
	store *table.Store
	rng   *rand.Rand

	eventStrands map[string][]*dataflow.Strand
	deltaStrands map[string][]*dataflow.Strand
	periodics    []*Periodic

	// queries indexes installed queries by ID; queryOrder preserves
	// installation order (deterministic iteration).
	queries    map[string]*query
	queryOrder []string
	// tableRefs counts, per declared table, how many installed queries
	// materialized it; a table is dropped when its count hits zero.
	tableRefs map[string]int
	// watchRefs counts watch declarations per predicate name.
	watchRefs map[string]int
	// logSubs tracks which tables have a tracer event-log tap.
	logSubs map[string]bool
	// aggMaints holds the persistent incremental-aggregate accumulators,
	// one per maintainable strand that has triggered at least once, with
	// the table subscriptions feeding them (torn down on uninstall).
	aggMaints map[*dataflow.Strand]*aggEntry

	tracer *trace.Tracer
	met    metrics.Node
	hists  metrics.NodeHists
	// statsPub is the engine-owned periodic driving stats publication
	// (nil until EnableStatsPublication); statsPeriod its interval.
	statsPub    *Periodic
	statsPeriod float64
	// perQuery splits the node counters by query ID; curStats points at
	// the bucket bills currently land in (the running strand's query, or
	// system between strands).
	perQuery map[string]*metrics.Query
	curStats *metrics.Query
	sysStats *metrics.Query

	// epoch counts process incarnations: 0 from birth, incremented by
	// Rejoin. Published in every stats row and queryable via nodeEpoch.
	epoch int64

	nextTupleID  uint64
	labelCounter int
	queryCounter int
	micro        float64 // cost accumulated within the current task
	inTask       bool    // a Handle* task is on the stack
	// queue is the cascade queue, consumed as a ring: queue[:qhead] is
	// already processed (and zeroed), the tail is pending. See drain.
	queue   []queued
	qhead   int
	scratch []byte // reusable marshal buffer for the send postamble
	// deltaPlans/eventPlans cache the per-trigger fan-out conflict
	// analysis (parallel.go); invalidated on install/uninstall.
	deltaPlans  map[string]*fanoutPlan
	eventPlans  map[string]*fanoutPlan
	fanoutStats FanoutStats
	// preamble holds the seed tuples injected via SeedLocal, in order;
	// Rejoin replays them after a restart with soft-state loss (the
	// bootstrap a real process re-runs when it comes back up).
	preamble []tuple.Tuple

	ruleTable     *table.Table
	tableTable    *table.Table
	queryTable    *table.Table
	nodeStatsTbl  *table.Table
	queryStatsTbl *table.Table
	epochTbl      *table.Table
}

// NewNode creates a node.
func NewNode(cfg Config) *Node {
	if cfg.Clock == nil {
		cfg.Clock = func() float64 { return 0 }
	}
	if cfg.ExecMode == ExecAuto {
		cfg.ExecMode = envExecMode
	}
	n := &Node{
		cfg:          cfg,
		store:        table.NewStore(),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		eventStrands: make(map[string][]*dataflow.Strand),
		deltaStrands: make(map[string][]*dataflow.Strand),
		queries:      make(map[string]*query),
		tableRefs:    make(map[string]int),
		watchRefs:    make(map[string]int),
		logSubs:      make(map[string]bool),
		aggMaints:    make(map[*dataflow.Strand]*aggEntry),
		perQuery:     make(map[string]*metrics.Query),
		deltaPlans:   make(map[string]*fanoutPlan),
		eventPlans:   make(map[string]*fanoutPlan),
	}
	n.sysStats = n.queryStats(SystemQuery)
	n.curStats = n.sysStats
	// Reflection tables (introspection model, §2.1).
	n.ruleTable, _ = n.store.Materialize(table.Spec{
		Name: RuleTableName, Lifetime: table.Infinity, MaxSize: table.Infinity,
		Keys: []int{2, 3, 4},
	})
	n.tableTable, _ = n.store.Materialize(table.Spec{
		Name: TableTableName, Lifetime: table.Infinity, MaxSize: table.Infinity,
		Keys: []int{2},
	})
	n.queryTable, _ = n.store.Materialize(table.Spec{
		Name: QueryTableName, Lifetime: table.Infinity, MaxSize: table.Infinity,
		Keys: []int{2},
	})
	// Performance-counter tables exist from birth (empty until
	// EnableStatsPublication turns publication on), so any OverLog
	// program can join them without declaring them.
	n.nodeStatsTbl, _ = n.store.Materialize(table.Spec{
		Name: NodeStatsTableName, Lifetime: table.Infinity, MaxSize: table.Infinity,
		Keys: []int{3},
	})
	n.queryStatsTbl, _ = n.store.Materialize(table.Spec{
		Name: QueryStatsTableName, Lifetime: table.Infinity, MaxSize: table.Infinity,
		Keys: []int{3, 4},
	})
	// The epoch row is inserted directly (no task is running at birth;
	// there are no strands to fire yet either).
	n.epochTbl, _ = n.store.Materialize(table.Spec{
		Name: NodeEpochTableName, Lifetime: table.Infinity, MaxSize: table.Infinity,
		Keys: []int{1},
	})
	if _, err := n.epochTbl.Insert(n.epochRow(), cfg.Clock()); err != nil {
		panic(fmt.Sprintf("engine: seeding %s: %v", NodeEpochTableName, err))
	}
	return n
}

// epochRow builds the current nodeEpoch(NAddr, Epoch) row.
func (n *Node) epochRow() tuple.Tuple {
	return tuple.New(NodeEpochTableName, tuple.Str(n.cfg.Addr), tuple.Int(n.epoch))
}

// Epoch returns the node's process incarnation: 0 from birth,
// incremented on every Rejoin.
func (n *Node) Epoch() int64 { return n.epoch }

// isSystemTable reports whether name is one of the engine- or
// tracer-owned reflection tables, which queries may re-declare but never
// own: they are exempt from refcounting and are never dropped.
func isSystemTable(name string) bool {
	switch name {
	case RuleTableName, TableTableName, QueryTableName,
		NodeStatsTableName, QueryStatsTableName, NodeEpochTableName,
		trace.RuleExecTable, trace.TupleTable, trace.TupleLogTable:
		return true
	}
	return false
}

// IsSystemTable reports whether name is an engine- or tracer-owned
// reflection table, present on every node without a declaration.
// Shared compilation environments (chord harness, bench fleets) admit
// these names when planning programs away from any concrete node.
func IsSystemTable(name string) bool { return isSystemTable(name) }

// Addr returns the node's address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Store exposes the node's tables (harness and test inspection; OverLog
// rules access them through joins).
func (n *Node) Store() *table.Store { return n.store }

// Metrics returns a snapshot of the node's counters.
func (n *Node) Metrics() metrics.Node { return n.met.Snapshot() }

// Hists returns a snapshot (value copy) of the node's latency/cost
// histograms. Like Metrics it must only be called from the node's
// executor or while the node is stopped; concurrent readers snapshot
// through the driver.
func (n *Node) Hists() metrics.NodeHists { return n.hists }

// ObserveHop records one per-hop message latency in seconds. Drivers
// call it on the receiving node as a delivered message is observed:
// virtual send-to-arrival time under simnet, wall clock under realtime.
// Pure observation — it bills nothing, so enabling histograms changes
// neither determinism nor per-query accounting.
func (n *Node) ObserveHop(sec float64) { n.hists.HopLatency.Observe(sec) }

// ObserveQueueWait records how long a task waited in the node's run
// queue before starting and the queue depth (task itself included)
// observed at that moment. Pure observation, like ObserveHop.
func (n *Node) ObserveQueueWait(wait float64, depth int) {
	n.hists.QueueWait.Observe(wait)
	n.hists.QueueDepth.Observe(float64(depth))
}

// QueryMetrics returns a snapshot of the per-query counters, keyed by
// query ID. The reserved "system" bucket holds unattributable costs;
// buckets of uninstalled queries persist (the bill survives the query),
// so the per-query values always sum to the node totals.
func (n *Node) QueryMetrics() map[string]metrics.Query {
	out := make(map[string]metrics.Query, len(n.perQuery))
	for id, q := range n.perQuery {
		out[id] = q.Snapshot()
	}
	return out
}

// Tracer returns the execution tracer, or nil when tracing is off.
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// TraceStore returns the durable trace store, or nil when tracing or
// the store is off.
func (n *Node) TraceStore() *tracestore.Store {
	if n.tracer == nil {
		return nil
	}
	return n.tracer.Store()
}

// Periodics returns all registered periodic triggers.
func (n *Node) Periodics() []*Periodic { return n.periodics }

// Queries returns the installed query IDs in installation order.
func (n *Node) Queries() []string {
	return append([]string(nil), n.queryOrder...)
}

// HasQuery reports whether a query with the given ID is installed.
func (n *Node) HasQuery(id string) bool {
	_, ok := n.queries[id]
	return ok
}

// traceStoreKilled reports the process-wide trace-store kill switch,
// read once at startup like the other P2GO_* overrides.
var traceStoreKilled = os.Getenv("P2GO_DISABLE_TRACESTORE") != ""

// EnableTracing turns on execution logging: every strand's taps feed the
// tracer, and ruleExec/tupleTable appear in the store. When
// Config.TraceStore is set and enabled, the tracer additionally writes
// every trace record through a durable append-only store; the append
// CPU is billed offline to the system bucket (real work the operator
// pays for, but asynchronous to the dataflow — it never moves the
// micro-clock, so emissions and tuple IDs are identical store on/off).
func (n *Node) EnableTracing(cfg trace.Config) error {
	if n.tracer != nil {
		return nil
	}
	tr, err := trace.New(n.store, n.cfg.Addr, cfg)
	if err != nil {
		return err
	}
	n.tracer = tr
	if sc := n.cfg.TraceStore; sc != nil && sc.Enabled && !traceStoreKilled {
		st := tracestore.New(n.cfg.Addr, *sc)
		tr.AttachStore(st, func(appended, sealed int) {
			n.billOffline(float64(appended)*dataflow.CostStoreAppend +
				float64(sealed)*dataflow.CostStoreSeal)
		})
	}
	// Tracing-enabled nodes use the rescan path for full precondition
	// provenance: drop the incremental accumulators and their listeners.
	for s, e := range n.aggMaints {
		n.dropAggEntry(s, e)
	}
	// Event logging (§2.1): record insertions and removals on every
	// application table, existing and future.
	for _, name := range n.store.Names() {
		n.subscribeLog(name)
	}
	return nil
}

// EnableStatsPublication turns on queryable performance counters: every
// period virtual seconds the node's metrics.Node counters and per-query
// bills are re-published into the nodeStats and queryStats tables,
// flowing through the normal dataflow queue so delta strands reading
// them fire like on any other table change. The publication rule and
// every cost it incurs are metered to the reserved "system" query (the
// engine billing itself is bookkeeping, not application work). Idempotent;
// the first call's period wins. Like a restart wipes any soft state,
// Rejoin clears the published rows — they reappear within one period.
func (n *Node) EnableStatsPublication(period float64) error {
	if n.statsPub != nil {
		return nil
	}
	if period <= 0 {
		return fmt.Errorf("engine: stats publication period must be positive, got %g", period)
	}
	src := fmt.Sprintf("statsPub %s@NAddr() :- periodic@NAddr(E, %g).", StatsPublishEventName, period)
	prog, err := overlog.Parse(src)
	if err != nil {
		return fmt.Errorf("engine: stats publication: %w", err)
	}
	rules := prog.Rules()
	ss, err := planner.PlanRule(SystemQuery, rules[0], planner.EnvFunc(func(name string) bool {
		return n.store.Get(name) != nil
	}), n.genLabel)
	if err != nil {
		return fmt.Errorf("engine: stats publication: %w", err)
	}
	// The strand belongs to the reserved system query (InstallQuery
	// refuses that ID precisely so only the engine can bill it), so
	// runStrand and HandleTimer attribute its work to the system bucket.
	s := ss[0]
	p := &Periodic{Strand: s, node: n}
	n.periodics = append(n.periodics, p)
	n.statsPub = p
	n.statsPeriod = period
	n.reflect(tuple.New(RuleTableName,
		tuple.Str(n.cfg.Addr), tuple.Str(SystemQuery), tuple.Str(s.RuleID),
		tuple.Str(s.Trigger.Name), tuple.Str(s.Source)), false)
	if n.cfg.OnNewPeriodic != nil {
		n.cfg.OnNewPeriodic(p)
	}
	if !n.inTask {
		n.runReflectTask()
	}
	return nil
}

// StatsPeriod returns the stats-publication period, or 0 when off.
func (n *Node) StatsPeriod() float64 { return n.statsPeriod }

// publishStats snapshots the node and per-query counters and queues one
// row per counter into the stats tables. Queued rows drain through
// processOne like any other tuple: each insert bills CostTableOp to the
// current bucket, which between strands is the system bucket — so the
// entire publication is metered to the reserved system query and
// per-query accounting keeps summing to node totals. Counter values are
// the snapshot taken here; work done inserting the rows themselves shows
// up in the next publication (self-measurement lags one period at most).
func (n *Node) publishStats() {
	n.billSystem(dataflow.CostStatsPublish)
	addr := tuple.Str(n.cfg.Addr)
	epoch := tuple.Int(n.epoch)
	for _, c := range n.met.Snapshot().Counters() {
		n.reflect(tuple.New(NodeStatsTableName,
			addr, epoch, tuple.Str(c.Name), counterValue(c)), false)
	}
	for _, c := range n.ObsCounters() {
		n.reflect(tuple.New(NodeStatsTableName,
			addr, epoch, tuple.Str(c.Name), counterValue(c)), false)
	}
	ids := make([]string, 0, len(n.perQuery))
	for id := range n.perQuery {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, c := range n.perQuery[id].Snapshot().Counters() {
			n.reflect(tuple.New(QueryStatsTableName,
				addr, epoch, tuple.Str(id), tuple.Str(c.Name), counterValue(c)), false)
		}
	}
}

// ObsCounters returns the observability extras published alongside the
// metrics.Node counters: the intra-node scheduler's speculation
// outcomes (FanoutStats) and the trace store's append/seal totals.
// They deliberately live outside metrics.Node — FanoutStats differ
// between ExecSingle and ExecMulti and the store counters between
// store-on and store-off runs, so keeping them out of the node counters
// (and the stats tables out of emissions fingerprints) preserves the
// bit-identical determinism contract across those modes. The row set is
// fixed regardless of configuration (zeros when a feature is off), so
// publication itself is mode-invariant. All values are monotone.
func (n *Node) ObsCounters() []metrics.Counter {
	fs := n.fanoutStats
	var ss tracestore.Stats
	if st := n.TraceStore(); st != nil {
		ss = st.Stats()
	}
	cs := []metrics.Counter{
		{Name: "FanoutCommitted", Prom: "fanout_committed", I: fs.Committed},
		{Name: "FanoutAborted", Prom: "fanout_aborted", I: fs.Aborted},
		{Name: "FanoutSeqSeconds", Prom: "fanout_seq_seconds", IsFloat: true, F: fs.SeqSeconds},
		{Name: "FanoutParSeconds", Prom: "fanout_par_seconds", IsFloat: true, F: fs.ParSeconds},
		{Name: "StoreAppends", Prom: "store_appends", I: ss.Appended()},
		{Name: "StoreSealedSegments", Prom: "store_sealed_segments", I: ss.Sealed},
		{Name: "StoreSealedRecords", Prom: "store_sealed_records", I: ss.SealedRecords},
		{Name: "StoreEncodedBytes", Prom: "store_encoded_bytes", I: ss.TotalEncodedBytes},
	}
	if n.cfg.ExtraObs != nil {
		cs = append(cs, n.cfg.ExtraObs()...)
	}
	return cs
}

func counterValue(c metrics.Counter) tuple.Value {
	if c.IsFloat {
		return tuple.Float(c.F)
	}
	return tuple.Int(c.I)
}

// subscribeLog wires a table's change stream into the tracer's tupleLog.
func (n *Node) subscribeLog(name string) {
	tb := n.store.Get(name)
	if tb == nil || n.tracer == nil || n.logSubs[name] {
		return
	}
	n.logSubs[name] = true
	n.tracer.LogEvent("watchTable", name, 0, n.Now()) // marks coverage start
	tb.Subscribe(func(op table.Op, t tuple.Tuple) {
		if op == table.OpClear {
			return // bulk wipe: no per-row provenance to log
		}
		kind := "insert"
		if op == table.OpDelete {
			kind = "delete"
		}
		n.tracer.LogEvent(kind, t.Name, t.ID, n.Now())
	})
}

// NumLogTaps returns how many tables feed the tracer's event log (the
// tracer tap count; uninstalling a query that owned a table removes its
// tap with the table).
func (n *Node) NumLogTaps() int { return len(n.logSubs) }

// NumWatches returns the number of distinct watched predicates.
func (n *Node) NumWatches() int { return len(n.watchRefs) }

// NumTimers returns the number of live periodic triggers (registered,
// not exhausted, not cancelled).
func (n *Node) NumTimers() int {
	c := 0
	for _, p := range n.periodics {
		if !p.Done() {
			c++
		}
	}
	return c
}

// InstallProgram installs the program as a fresh query with a generated
// ID. Programs may be installed at any point in the node's life (§1.3:
// monitoring queries are deployed piecemeal on-line).
func (n *Node) InstallProgram(prog *overlog.Program) error {
	_, err := n.InstallQuery("", prog)
	return err
}

// InstallQuery atomically installs prog as a managed query under the
// given ID (empty = generate one) and returns the ID. The whole program
// is validated first — table declarations checked for spec conflicts
// against the store and each other, every rule planned against the union
// of existing and declared tables — and only then committed, so an
// invalid program installs nothing: no strand, table, watch or timer.
func (n *Node) InstallQuery(id string, prog *overlog.Program) (string, error) {
	return n.installQuery(id, prog, nil)
}

// installQuery is the shared install path. With cq == nil every rule is
// planned privately on this node; with a compiled query (whose
// environment checks the caller has already verified via
// planCompatible) the immutable shared plans are wrapped in per-node
// strands instead — "plan once, instantiate N times".
func (n *Node) installQuery(id string, prog *overlog.Program, cq *CompiledQuery) (string, error) {
	// ---- Phase 1: validate; no node state is touched on any error. ----
	if id == SystemQuery {
		return "", fmt.Errorf("engine: query ID %q is reserved", SystemQuery)
	}
	if id == "" {
		id = n.genQueryID()
	} else if _, dup := n.queries[id]; dup {
		return "", fmt.Errorf("engine: query %q already installed", id)
	}
	declared := make(map[string]table.Spec)
	var declOrder []string
	for _, m := range prog.Materializations() {
		spec := table.Spec{Name: m.Name, Lifetime: m.Lifetime, MaxSize: m.MaxSize, Keys: m.Keys}
		if prev, ok := declared[m.Name]; ok {
			// Duplicate declaration inside one program: identical is a
			// no-op, conflicting rejects the whole program.
			if err := prev.Conflicts(spec); err != nil {
				return "", fmt.Errorf("engine: %w", err)
			}
			continue
		}
		if err := n.store.Check(spec); err != nil {
			return "", fmt.Errorf("engine: %w", err)
		}
		declared[m.Name] = spec
		declOrder = append(declOrder, m.Name)
	}
	env := planner.EnvFunc(func(name string) bool {
		if _, ok := declared[name]; ok {
			return true
		}
		return n.store.Get(name) != nil
	})
	var strands []*dataflow.Strand
	var watches []string
	if cq != nil {
		watches = cq.watches
		strands = make([]*dataflow.Strand, len(cq.plans))
		for i, p := range cq.plans {
			strands[i] = p.Instantiate(id)
		}
	} else {
		for _, st := range prog.Statements {
			switch s := st.(type) {
			case *overlog.Watch:
				watches = append(watches, s.Name)
			case *overlog.Rule:
				ss, err := planner.PlanRule(id, s, env, n.genLabel)
				if err != nil {
					return "", err
				}
				strands = append(strands, ss...)
			}
		}
	}

	// ---- Phase 2: commit; nothing below can fail. ----
	if cq != nil {
		// Account for the labels compilation generated so a later private
		// install continues the sequence exactly where planning privately
		// would have left it.
		n.labelCounter += cq.labelsUsed
	}
	q := &query{
		id:          id,
		source:      prog.Source,
		strands:     strands,
		installedAt: n.cfg.Clock(),
	}
	for _, name := range declOrder {
		spec := declared[name]
		existed := n.store.Get(name) != nil
		n.store.Materialize(spec) //nolint:errcheck // validated in phase 1
		if !existed {
			n.subscribeLog(name)
		}
		if !isSystemTable(name) {
			n.tableRefs[name]++
			q.tables = append(q.tables, name)
		}
		n.reflect(tuple.New(TableTableName,
			tuple.Str(n.cfg.Addr), tuple.Str(name),
			tuple.Float(spec.Lifetime), tuple.Int(int64(spec.MaxSize))), false)
	}
	for _, w := range watches {
		n.watchRefs[w]++
		q.watches = append(q.watches, w)
	}
	for _, s := range strands {
		n.installStrand(s, q)
	}
	n.queries[id] = q
	n.queryOrder = append(n.queryOrder, id)
	n.reflect(tuple.New(QueryTableName,
		tuple.Str(n.cfg.Addr), tuple.Str(id),
		tuple.Int(int64(len(q.strands))), tuple.Int(int64(len(q.tables))),
		tuple.Float(q.installedAt)), false)
	if !n.inTask {
		n.runReflectTask()
	}
	return id, nil
}

// UninstallQuery removes the named query: its strands leave the event
// and delta dispatch maps, its timers are cancelled (driver chains die
// at the next firing), its watch and table refcounts drop — tables whose
// count reaches zero are dropped from the store together with their
// listeners and tracer tap — and its reflection rows are deleted. The
// node returns to the dataflow shape it had before the install; only the
// query's accumulated bill in QueryMetrics survives.
func (n *Node) UninstallQuery(id string) error {
	if id == SystemQuery {
		return fmt.Errorf("engine: cannot uninstall reserved query %q", SystemQuery)
	}
	q, ok := n.queries[id]
	if !ok {
		return fmt.Errorf("engine: query %q is not installed", id)
	}
	n.invalidateFanoutPlans()
	for _, s := range q.strands {
		switch s.Trigger.Kind {
		case dataflow.TriggerEvent:
			n.eventStrands[s.Trigger.Name] = removeStrand(n.eventStrands[s.Trigger.Name], s)
			if len(n.eventStrands[s.Trigger.Name]) == 0 {
				delete(n.eventStrands, s.Trigger.Name)
			}
		case dataflow.TriggerDelta:
			n.deltaStrands[s.Trigger.Name] = removeStrand(n.deltaStrands[s.Trigger.Name], s)
			if len(n.deltaStrands[s.Trigger.Name]) == 0 {
				delete(n.deltaStrands, s.Trigger.Name)
			}
		}
		if n.tracer != nil {
			n.tracer.ForgetStrand(s)
		}
		if e := n.aggMaints[s]; e != nil {
			n.dropAggEntry(s, e)
		}
	}
	if len(q.periodics) > 0 {
		for _, p := range q.periodics {
			p.cancelled = true
		}
		live := n.periodics[:0]
		for _, p := range n.periodics {
			if !p.cancelled {
				live = append(live, p)
			}
		}
		n.periodics = live
	}
	for _, w := range q.watches {
		if n.watchRefs[w]--; n.watchRefs[w] <= 0 {
			delete(n.watchRefs, w)
		}
	}
	// Delete the query's ruleTable rows in one pattern delete (nil
	// fields are wildcards), then its queryTable row.
	n.reflect(tuple.New(RuleTableName,
		tuple.Str(n.cfg.Addr), tuple.Str(id),
		tuple.Nil, tuple.Nil, tuple.Nil), true)
	n.reflect(tuple.New(QueryTableName,
		tuple.Str(n.cfg.Addr), tuple.Str(id),
		tuple.Nil, tuple.Nil, tuple.Nil), true)
	for _, name := range q.tables {
		if n.tableRefs[name]--; n.tableRefs[name] > 0 {
			continue
		}
		delete(n.tableRefs, name)
		n.reflect(tuple.New(TableTableName,
			tuple.Str(n.cfg.Addr), tuple.Str(name),
			tuple.Nil, tuple.Nil), true)
		// The table vanishes with its rows, listeners, and tracer tap:
		// a removed query's soft state emits no delete events.
		delete(n.logSubs, name)
		n.store.Drop(name)
	}
	delete(n.queries, id)
	for i, qid := range n.queryOrder {
		if qid == id {
			n.queryOrder = append(n.queryOrder[:i:i], n.queryOrder[i+1:]...)
			break
		}
	}
	if !n.inTask {
		n.runReflectTask()
	}
	return nil
}

func removeStrand(ss []*dataflow.Strand, s *dataflow.Strand) []*dataflow.Strand {
	for i, x := range ss {
		if x == s {
			return append(ss[:i:i], ss[i+1:]...)
		}
	}
	return ss
}

func (n *Node) genQueryID() string {
	for {
		n.queryCounter++
		id := fmt.Sprintf("q%d", n.queryCounter)
		if _, taken := n.queries[id]; !taken {
			return id
		}
	}
}

func (n *Node) genLabel() string {
	n.labelCounter++
	return fmt.Sprintf("rule_%d", n.labelCounter)
}

func (n *Node) installStrand(s *dataflow.Strand, q *query) {
	n.invalidateFanoutPlans()
	switch s.Trigger.Kind {
	case dataflow.TriggerEvent:
		n.eventStrands[s.Trigger.Name] = append(n.eventStrands[s.Trigger.Name], s)
	case dataflow.TriggerDelta:
		n.deltaStrands[s.Trigger.Name] = append(n.deltaStrands[s.Trigger.Name], s)
	case dataflow.TriggerPeriodic:
		p := &Periodic{Strand: s, node: n}
		n.periodics = append(n.periodics, p)
		q.periodics = append(q.periodics, p)
		if n.cfg.OnNewPeriodic != nil {
			n.cfg.OnNewPeriodic(p)
		}
	}
	n.reflect(tuple.New(RuleTableName,
		tuple.Str(n.cfg.Addr), tuple.Str(q.id), tuple.Str(s.RuleID),
		tuple.Str(s.Trigger.Name), tuple.Str(s.Source)), false)
}

// reflect queues a reflection-table change to flow through the normal
// dataflow path: the change fires delta strands watching the reflection
// tables and is logged by the tracer like any other table event, keeping
// introspection current across on-line installs and uninstalls.
func (n *Node) reflect(row tuple.Tuple, isDelete bool) {
	n.queue = append(n.queue, queued{t: row, isDelete: isDelete, src: n.cfg.Addr})
}

// runReflectTask drains reflection changes queued by an install or
// uninstall invoked from driver context (outside any task), so the
// reflection tables are current when the call returns. Installs from
// inside a task (the higher-order events) are drained by the enclosing
// cascade instead.
func (n *Node) runReflectTask() {
	n.inTask = true
	n.micro = 0
	n.drain()
	if n.tracer != nil {
		n.tracer.TaskDone()
	}
	n.inTask = false
}

// ---- Driver entry points. Each runs one task and returns its cost. ----

// HandleMessage processes one incoming network message.
func (n *Node) HandleMessage(env Envelope) float64 {
	n.met.MsgsRecv++
	n.met.BytesRecv += int64(len(env.Raw))
	t, _, err := tuple.Unmarshal(env.Raw)
	if err != nil {
		n.ruleError("net", fmt.Errorf("dropping undecodable message from %s: %w", env.Src, err))
		return dataflow.CostMarshal
	}
	return n.runTask(queued{t: t, src: env.Src, srcID: env.SrcTupleID}, dataflow.CostMarshal)
}

// HandleTimer fires a periodic trigger.
func (n *Node) HandleTimer(p *Periodic) float64 {
	if p.cancelled {
		return 0 // query uninstalled while the firing was in flight
	}
	p.fired++
	n.met.TimerFires++
	qs := n.queryStats(p.Strand.QueryID)
	qs.TimerFires++
	trig := n.periodicTuple(p)
	n.inTask = true
	n.micro = 0
	n.billTo(qs, dataflow.CostTimerFire)
	// Periodic events are synthesized locally: give them IDs and run
	// the strand directly (they are not routable tuples).
	n.assignID(&trig, n.cfg.Addr, 0)
	n.runStrand(p.Strand, trig)
	n.drain()
	if n.tracer != nil {
		n.tracer.TaskDone()
	}
	n.inTask = false
	return n.micro
}

func (n *Node) periodicTuple(p *Periodic) tuple.Tuple {
	trig := p.Strand.Trigger
	fields := make([]tuple.Value, len(trig.FieldSlots))
	fields[0] = tuple.Str(n.cfg.Addr)
	fields[1] = tuple.ID(n.rng.Uint64())
	fields[2] = tuple.Float(trig.Period)
	if len(fields) >= 4 {
		fields[3] = tuple.Int(int64(trig.Count))
	}
	return tuple.New("periodic", fields...)
}

// HandleLocal injects a tuple as if produced locally: seed state (node,
// landmark rows) and operator-initiated events (orderingEvent, traceResp).
func (n *Node) HandleLocal(t tuple.Tuple) float64 {
	return n.runTask(queued{t: t, src: n.cfg.Addr}, 0)
}

// SeedLocal injects a tuple like HandleLocal and additionally records it
// as part of the node's preamble: the bootstrap state a process re-runs
// on startup. Rejoin replays the preamble after soft-state loss.
func (n *Node) SeedLocal(t tuple.Tuple) float64 {
	n.preamble = append(n.preamble, t)
	return n.HandleLocal(t)
}

// Preamble returns the recorded seed tuples, in injection order.
func (n *Node) Preamble() []tuple.Tuple { return n.preamble }

// Rejoin models a process restart after a crash with soft-state loss:
// all application tables are cleared (no delete events fire — the state
// of a dead process simply vanishes) and the preamble is replayed, so
// the node bootstraps afresh exactly as it did at install time.
// Installed queries, rule strands, watches, the tracer, and the
// reflection tables survive: they are the program, not its soft state.
// Like every Handle* entry point it runs one task and returns its cost.
func (n *Node) Rejoin() float64 {
	n.inTask = true
	n.micro = 0
	n.queue, n.qhead = n.queue[:0], 0 // work queued in the dead process is gone
	for _, name := range n.store.Names() {
		if name == RuleTableName || name == TableTableName || name == QueryTableName {
			continue
		}
		n.store.Get(name).Clear()
		n.bill(dataflow.CostTableOp)
	}
	if n.tracer != nil {
		// Reset purges the trace tables again (idempotent after the loop
		// above) and, crucially, drops memoized provenance: the restarted
		// node reuses tuple IDs, so stale refcounts must not survive to
		// release post-restart entries. The trace store keeps its history
		// and records the restart marker.
		n.tracer.Reset(n.Now())
	}
	// New incarnation: the epoch row is queued before the preamble so
	// every bootstrap rule already sees the post-restart epoch.
	n.epoch++
	n.reflect(n.epochRow(), false)
	for _, t := range n.preamble {
		n.queue = append(n.queue, queued{t: t.WithID(0), src: n.cfg.Addr})
	}
	n.drain()
	if n.tracer != nil {
		n.tracer.TaskDone()
	}
	n.inTask = false
	return n.micro
}

// Sweep expires soft state; drivers call it about once per virtual
// second.
func (n *Node) Sweep() float64 {
	n.micro = 0
	n.store.ExpireAll(n.cfg.Clock())
	n.bill(dataflow.CostTableOp)
	return n.micro
}

// runTask drains the cascade triggered by the seed tuple.
func (n *Node) runTask(seed queued, startCost float64) float64 {
	n.inTask = true
	n.micro = 0
	n.bill(startCost)
	n.queue = append(n.queue, seed)
	n.drain()
	if n.tracer != nil {
		n.tracer.TaskDone()
	}
	n.inTask = false
	return n.micro
}

// drain consumes the cascade queue as a ring: processed slots are
// zeroed and reclaimed by a head index plus periodic compaction (the
// pattern simnet's host queue uses). A plain n.queue = n.queue[1:]
// would pin every processed tuple in the backing array and force the
// append side to reallocate as the sliced-away capacity runs out —
// O(n^2) memory churn on deep cascades.
func (n *Node) drain() {
	for steps := 0; len(n.queue) > n.qhead; steps++ {
		if steps > maxCascade {
			n.ruleError("engine", fmt.Errorf("cascade exceeded %d steps; dropping %d queued tuples", maxCascade, len(n.queue)-n.qhead))
			n.queue, n.qhead = n.queue[:0], 0
			return
		}
		q := n.queue[n.qhead]
		n.queue[n.qhead] = queued{}
		n.qhead++
		if n.qhead == len(n.queue) {
			n.queue, n.qhead = n.queue[:0], 0
		} else if n.qhead >= 64 && n.qhead*2 >= len(n.queue) {
			m := copy(n.queue, n.queue[n.qhead:])
			n.queue, n.qhead = n.queue[:m], 0
		}
		n.processOne(q)
	}
}

func (n *Node) processOne(q queued) {
	n.met.TuplesProcessed++
	now := n.Now()
	if q.isDelete {
		tbl := n.store.Get(q.t.Name)
		if tbl == nil {
			n.ruleError("engine", fmt.Errorf("delete from unmaterialized table %s", q.t.Name))
			return
		}
		n.bill(dataflow.CostTableOp)
		tbl.Delete(q.t, now)
		return
	}
	t := q.t
	if t.ID == 0 {
		n.assignID(&t, q.src, q.srcID)
	}
	if n.watchRefs[t.Name] > 0 && n.cfg.OnWatch != nil {
		// Delivering a watched tuple is CPU like any table op; between
		// strands the bill lands in the system bucket.
		n.bill(dataflow.CostWatch)
		n.cfg.OnWatch(now, t)
	}
	if n.tracer != nil {
		n.tracer.LogEvent("arrive", t.Name, t.ID, now)
	}
	if t.Name == InstallEventName {
		n.handleInstallEvent(t)
		return
	}
	if t.Name == UninstallEventName {
		n.handleUninstallEvent(t)
		return
	}
	if t.Name == StatsPublishEventName {
		n.publishStats()
		return
	}
	if tbl := n.store.Get(t.Name); tbl != nil {
		n.bill(dataflow.CostTableOp)
		changed, err := tbl.Insert(t, now)
		if err != nil {
			n.ruleError("engine", err)
			return
		}
		if changed {
			n.runStrands(fanoutDelta, t.Name, n.deltaStrands[t.Name], t)
		}
		return
	}
	n.runStrands(fanoutEvent, t.Name, n.eventStrands[t.Name], t)
}

// runStrand runs one strand activation with its query's bucket receiving
// the bills (per-query attribution at strand granularity). The billed
// cost of the activation — everything accrued while the strand runs,
// including cascade work it triggers inline — also feeds the StrandCost
// histogram.
func (n *Node) runStrand(s *dataflow.Strand, t tuple.Tuple) {
	n.met.RuleFires++
	prev := n.curStats
	n.curStats = n.queryStats(s.QueryID)
	n.curStats.RuleFires++
	start := n.micro
	s.Run(n, t)
	n.hists.StrandCost.Observe(n.micro - start)
	n.curStats = prev
}

// handleInstallEvent implements the higher-order installation event:
// installProgram@N(Source) parses Source as OverLog and installs it as a
// fresh query; an optional second payload field names the query.
func (n *Node) handleInstallEvent(t tuple.Tuple) {
	if t.Arity() < 2 || t.Field(1).Kind() != tuple.KindStr {
		n.ruleError("engine", fmt.Errorf("%s needs a program-text field", InstallEventName))
		return
	}
	id := ""
	if t.Arity() >= 3 {
		if t.Field(2).Kind() != tuple.KindStr {
			n.ruleError("engine", fmt.Errorf("%s: query ID must be a string", InstallEventName))
			return
		}
		id = t.Field(2).AsStr()
	}
	prog, err := overlog.Parse(t.Field(1).AsStr())
	if err != nil {
		n.ruleError("engine", fmt.Errorf("%s: %w", InstallEventName, err))
		return
	}
	if _, err := n.InstallQuery(id, prog); err != nil {
		n.ruleError("engine", err)
	}
}

// handleUninstallEvent implements the higher-order removal event:
// uninstallProgram@N(QueryID) uninstalls the named query.
func (n *Node) handleUninstallEvent(t tuple.Tuple) {
	if t.Arity() < 2 || t.Field(1).Kind() != tuple.KindStr {
		n.ruleError("engine", fmt.Errorf("%s needs a query-ID field", UninstallEventName))
		return
	}
	if err := n.UninstallQuery(t.Field(1).AsStr()); err != nil {
		n.ruleError("engine", err)
	}
}

// assignID gives the tuple a node-unique ID and registers provenance with
// the tracer. src/srcID describe where the tuple came from (self for
// locally created tuples).
func (n *Node) assignID(t *tuple.Tuple, src string, srcID uint64) uint64 {
	n.nextTupleID++
	id := n.nextTupleID
	*t = t.WithID(id)
	if src == "" || src == n.cfg.Addr {
		src, srcID = n.cfg.Addr, id
	}
	if n.tracer != nil {
		dst := t.Loc()
		if dst == "" {
			dst = n.cfg.Addr
		}
		n.tracer.Register(id, *t, src, srcID, dst, n.Now())
	}
	return id
}

func (n *Node) queryStats(id string) *metrics.Query {
	if id == "" {
		id = SystemQuery
	}
	q := n.perQuery[id]
	if q == nil {
		q = &metrics.Query{}
		n.perQuery[id] = q
	}
	return q
}

// billTo charges sec seconds of simulated CPU to the node and to the
// given per-query bucket; every bill lands in exactly one bucket, which
// is what keeps per-query bills summing to the node totals.
func (n *Node) billTo(qs *metrics.Query, sec float64) {
	n.micro += sec
	n.met.BusySeconds += sec
	qs.BusySeconds += sec
}

func (n *Node) bill(sec float64) { n.billTo(n.curStats, sec) }

// billSystem charges the reserved system query regardless of which
// strand is running (the network pre/postamble).
func (n *Node) billSystem(sec float64) { n.billTo(n.sysStats, sec) }

// billOffline charges work that is real CPU but asynchronous to the
// dataflow — the trace-store appender. It lands in the node total and
// the system bucket (so per-query bills keep summing to node totals)
// but does NOT advance the task micro-clock: offline work never
// perturbs virtual time, emissions, or tuple IDs.
func (n *Node) billOffline(sec float64) {
	n.met.BusySeconds += sec
	n.sysStats.BusySeconds += sec
}

func (n *Node) ruleError(ruleID string, err error) {
	n.met.RuleErrors++
	if n.cfg.OnRuleError != nil {
		n.cfg.OnRuleError(n.Now(), ruleID, err)
	}
}

// ---- dataflow.Context implementation ----

// Now returns the node-local virtual time: task start plus processing
// cost accumulated so far (the micro-clock that gives rule executions
// non-zero durations, which the §3.2 profiler decomposes).
func (n *Node) Now() float64 { return n.cfg.Clock() + n.micro }

// Rand64 implements overlog.Context.
func (n *Node) Rand64() uint64 { return n.rng.Uint64() }

// LocalAddr implements overlog.Context.
func (n *Node) LocalAddr() string { return n.cfg.Addr }

// aggEntry pairs a strand's persistent accumulator with the table
// subscriptions that keep it current. tabs[0] is the primary table
// (inserts/deletes/expiry maintain the accumulator incrementally); the
// rest are secondaries (any change invalidates it).
type aggEntry struct {
	am   *dataflow.AggMaint
	tabs []aggSub
}

// aggSub is one table subscription held by an aggEntry. tb remembers the
// exact Table object subscribed to, so AggState can detect a table that
// was dropped and re-materialized (a new object) and rewire.
type aggSub struct {
	name string
	tb   *table.Table
	sub  int
}

// AggState implements dataflow.Context: it returns the persistent
// accumulator for a maintainable strand, lazily wiring the table
// listeners on first use and rewiring when a subscribed table object was
// replaced. Tracing-enabled nodes return nil — the rescan path is what
// gives the tracer its full precondition provenance.
func (n *Node) AggState(s *dataflow.Strand) *dataflow.AggMaint {
	if n.tracer != nil {
		return nil
	}
	e := n.aggMaints[s]
	if e != nil {
		stale := false
		for _, sub := range e.tabs {
			if n.store.Get(sub.name) != sub.tb {
				stale = true
				break
			}
		}
		if !stale {
			if !e.am.Valid() {
				n.met.AggRebuilds++ // runTrigger rebuilds before emitting
			}
			return e.am
		}
		n.dropAggEntry(s, e)
	}
	primary := n.store.Get(s.AggPlan.Primary)
	if primary == nil {
		return nil // rescan path reports the unmaterialized-table error
	}
	e = &aggEntry{am: dataflow.NewAggMaint(s)}
	qid := s.QueryID
	am := e.am
	id := primary.Subscribe(func(op table.Op, t tuple.Tuple) {
		n.aggApply(am, qid, op, t)
	})
	e.tabs = append(e.tabs, aggSub{name: s.AggPlan.Primary, tb: primary, sub: id})
	for _, name := range s.AggPlan.Secondaries {
		tb := n.store.Get(name)
		sub := aggSub{name: name, tb: tb}
		if tb != nil {
			sub.sub = tb.Subscribe(func(table.Op, tuple.Tuple) { am.Invalidate() })
		}
		e.tabs = append(e.tabs, sub)
	}
	n.aggMaints[s] = e
	n.met.AggRebuilds++ // fresh accumulator: first trigger rebuilds
	return e.am
}

// aggApply folds one primary-table change into a strand's accumulator,
// billed to the owning query (maintenance work is attributable CPU).
func (n *Node) aggApply(am *dataflow.AggMaint, queryID string, op table.Op, t tuple.Tuple) {
	if op == table.OpClear {
		am.Invalidate()
		return
	}
	if !am.Valid() {
		return // next trigger rebuilds; nothing to maintain
	}
	prev := n.curStats
	n.curStats = n.queryStats(queryID)
	n.bill(dataflow.CostAggApply)
	n.met.AggApplies++
	am.Apply(n, op, t)
	n.curStats = prev
}

// dropAggEntry unsubscribes an accumulator's table listeners and forgets
// it. Unsubscribing from a dropped table's stale object is harmless.
func (n *Node) dropAggEntry(s *dataflow.Strand, e *aggEntry) {
	for _, sub := range e.tabs {
		if sub.tb != nil {
			sub.tb.Unsubscribe(sub.sub)
		}
	}
	delete(n.aggMaints, s)
}

// Table implements dataflow.Context.
func (n *Node) Table(name string) *table.Table { return n.store.Get(name) }

// Bill implements dataflow.Context.
func (n *Node) Bill(sec float64) { n.bill(sec) }

// RuleError implements dataflow.Context.
func (n *Node) RuleError(ruleID string, err error) { n.ruleError(ruleID, err) }

// TraceInput implements dataflow.Context.
func (n *Node) TraceInput(s *dataflow.Strand, t tuple.Tuple) {
	if n.tracer == nil {
		return
	}
	n.bill(dataflow.CostTraceTap)
	n.tracer.Input(s, t, n.Now())
}

// TracePrecond implements dataflow.Context.
func (n *Node) TracePrecond(s *dataflow.Strand, stage int, t tuple.Tuple) {
	if n.tracer == nil {
		return
	}
	n.bill(dataflow.CostTraceTap)
	n.tracer.Precond(s, stage, t, n.Now())
}

// TraceStageDone implements dataflow.Context.
func (n *Node) TraceStageDone(s *dataflow.Strand, stage int) {
	if n.tracer == nil {
		return
	}
	n.tracer.StageDone(s, stage)
}

// EmitHead implements dataflow.Context: assign the head tuple its ID,
// trace it, and route it (local queue, delete queue, or the network
// postamble).
func (n *Node) EmitHead(s *dataflow.Strand, t tuple.Tuple, isDelete bool) {
	n.met.HeadsEmitted++
	n.curStats.HeadsEmitted++
	if isDelete {
		if loc := t.Loc(); loc != "" && loc != n.cfg.Addr {
			n.ruleError(s.RuleID, fmt.Errorf("delete rule head must be local, got %s", loc))
			return
		}
		n.queue = append(n.queue, queued{t: t, isDelete: true})
		return
	}
	id := n.assignID(&t, n.cfg.Addr, 0)
	if n.tracer != nil {
		n.bill(dataflow.CostTraceTap)
		n.tracer.Output(s, t, n.Now())
	}
	dst := t.Loc()
	if dst == "" {
		n.ruleError(s.RuleID, fmt.Errorf("head tuple %s has no location specifier", t))
		return
	}
	if dst == n.cfg.Addr {
		n.queue = append(n.queue, queued{t: t, src: n.cfg.Addr, srcID: id})
		return
	}
	// Network postamble: marshal into the node's scratch buffer (sized
	// from the exact encoded size, so it never grows mid-append after
	// warmup), then hand the envelope its own exact-size copy — the
	// transport holds Raw beyond this task, so it cannot alias scratch.
	// The marshal bills to the current bucket: during a strand run that
	// is the emitting query, so the traffic a monitoring query generates
	// (e.g. aggregation-tree partials) shows up in its own bill rather
	// than hiding in the system bucket. Between strands it still lands
	// in system, and every bill lands in exactly one bucket either way,
	// so per-query accounting keeps summing to node totals.
	n.bill(dataflow.CostMarshal)
	if sz := tuple.EncodedSize(t); cap(n.scratch) < sz {
		n.scratch = make([]byte, 0, sz)
	}
	n.scratch = tuple.Marshal(n.scratch[:0], t)
	raw := append(make([]byte, 0, len(n.scratch)), n.scratch...)
	n.met.MsgsSent++
	n.met.BytesSent += int64(len(raw))
	if n.cfg.Send == nil {
		return
	}
	n.cfg.Send(dst, Envelope{Src: n.cfg.Addr, SrcTupleID: id, Raw: raw}, n.Now())
}

// NumStrands returns the number of installed rule strands (the size of
// the node's dataflow graph, which the benchmark memory model uses).
func (n *Node) NumStrands() int {
	c := len(n.periodics)
	for _, ss := range n.eventStrands {
		c += len(ss)
	}
	for _, ss := range n.deltaStrands {
		c += len(ss)
	}
	return c
}
