package bench

import "testing"

// TestPerHostMemoryBudget pins the per-host install footprint at 1k
// nodes under the documented budget. The margin is deliberately tight:
// retaining private plans again (+~69 KB/host) or any comparable
// per-node regression fails the test. Heap sampling has some noise, so
// the assertion sits on the documented budget, not the measured mean.
func TestPerHostMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-node heap probe")
	}
	perHost, err := installBytesPerHost(1000, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("install footprint: %d bytes/host (budget %d)", perHost, ScaleInstallBudgetBytes)
	if perHost > ScaleInstallBudgetBytes {
		t.Fatalf("install footprint %d bytes/host exceeds the %d-byte budget",
			perHost, ScaleInstallBudgetBytes)
	}
}

// TestSharedPlanReduction pins the >=5x program-instantiation saving
// the scale sweep gates on, at a test-sized probe.
func TestSharedPlanReduction(t *testing.T) {
	shared, err := planBytesPerHost(64, false)
	if err != nil {
		t.Fatal(err)
	}
	private, err := planBytesPerHost(64, true)
	if err != nil {
		t.Fatal(err)
	}
	if shared <= 0 || float64(private)/float64(shared) < ScaleMinPlanReduction {
		t.Fatalf("plan bytes/host shared=%d private=%d, want >= %.0fx reduction",
			shared, private, ScaleMinPlanReduction)
	}
}
