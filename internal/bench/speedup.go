package bench

import (
	"reflect"
	"time"

	"p2go/internal/chord"
	"p2go/internal/monitor"
	"p2go/internal/simnet"
)

// SpeedupResult reports one workload point run under both simnet
// drivers: wall-clock durations, the measured samples, whether the two
// samples agree (the determinism contract exercised on the real
// benchmark path, not just in tests), and the parallel driver's window
// statistics.
type SpeedupResult struct {
	SeqWall, ParWall time.Duration
	Seq, Par         Sample
	Match            bool
	Stats            simnet.ParStats
}

// Occupancy is the mean number of hosts runnable per window — the
// concurrency the worker pool can exploit on a multi-core machine.
func (r SpeedupResult) Occupancy() float64 {
	if r.Stats.Windows == 0 {
		return 0
	}
	return float64(r.Stats.HostWindows) / float64(r.Stats.Windows)
}

// Speedup is ParWall's improvement factor (>1 means parallel is faster).
func (r SpeedupResult) Speedup() float64 {
	if r.ParWall <= 0 {
		return 0
	}
	return float64(r.SeqWall) / float64(r.ParWall)
}

// SpeedupSmoke runs one Figure 6 point — the proactive consistency
// detector at 1/4 Hz on the 21-node ring — once per driver and compares
// wall clock and results. workers = 0 means GOMAXPROCS.
func SpeedupSmoke(seed int64, workers int) (SpeedupResult, error) {
	var res SpeedupResult
	run := func(parallel bool) (Sample, time.Duration, error) {
		start := time.Now()
		r, err := chord.NewRing(chord.RingConfig{
			N: Nodes, Seed: seed, Parallel: parallel, Workers: workers,
		})
		if err != nil {
			return Sample{}, 0, err
		}
		r.Run(ConvergeTime)
		if err := r.Node(Measured).InstallProgram(monitor.ConsistencyProgram(4)); err != nil {
			return Sample{}, 0, err
		}
		s := measure(r, "1/4", 0.25)
		if parallel {
			res.Stats = r.Net.ParStats()
		}
		return s, time.Since(start), nil
	}
	var err error
	if res.Seq, res.SeqWall, err = run(false); err != nil {
		return res, err
	}
	if res.Par, res.ParWall, err = run(true); err != nil {
		return res, err
	}
	// DeepEqual covers the sub-window series too: both drivers must
	// produce identical per-window counter deltas, not just identical
	// end-of-window totals.
	res.Match = reflect.DeepEqual(res.Seq, res.Par)
	return res, nil
}
