package bench

import "testing"

// TestLoggingOverheadSmoke runs the cheapest full experiment end to end
// (the complete figures are exercised by the root bench_test.go
// benchmarks and cmd/p2bench; they are too slow for the unit suite).
func TestLoggingOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ring build takes ~20s")
	}
	off, on, err := LoggingOverhead(42)
	if err != nil {
		t.Fatal(err)
	}
	if off.CPUPercent <= 0 || on.CPUPercent <= off.CPUPercent {
		t.Errorf("tracing must cost CPU: off=%v on=%v", off, on)
	}
	if on.MemoryMB <= off.MemoryMB {
		t.Errorf("tracing must cost memory: off=%v on=%v", off, on)
	}
	if on.LiveTuples <= off.LiveTuples {
		t.Errorf("tracing must add live trace tuples: off=%v on=%v", off, on)
	}
}
