package bench

import "testing"

// TestLoggingOverheadSmoke runs the cheapest full experiment end to end
// (the complete figures are exercised by the root bench_test.go
// benchmarks and cmd/p2bench; they are too slow for the unit suite).
func TestLoggingOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ring build takes ~20s")
	}
	off, on, err := LoggingOverhead(42)
	if err != nil {
		t.Fatal(err)
	}
	if off.CPUPercent <= 0 || on.CPUPercent <= off.CPUPercent {
		t.Errorf("tracing must cost CPU: off=%v on=%v", off, on)
	}
	if on.MemoryMB <= off.MemoryMB {
		t.Errorf("tracing must cost memory: off=%v on=%v", off, on)
	}
	if on.LiveTuples <= off.LiveTuples {
		t.Errorf("tracing must add live trace tuples: off=%v on=%v", off, on)
	}
}

// TestLifecycleSmoke runs the quick lifecycle experiment: two §3.1
// detectors deployed on every ring member, measured, and retired. The
// structural restore and the accounting invariant are hard assertions;
// CPU-back-to-baseline uses the experiment's own noise band.
func TestLifecycleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("21-node ring with install/uninstall cycles")
	}
	res, err := Lifecycle(42, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineCPU <= 0 {
		t.Fatalf("baseline CPU = %v", res.BaselineCPU)
	}
	if res.AccountingErr != "" {
		t.Errorf("accounting invariant violated: %s", res.AccountingErr)
	}
	for _, s := range res.Samples {
		// The before/after subtraction (MarginalCPU) can drown in ring
		// noise for cheap detectors; the engine's own per-query bill is
		// the precise signal and must always show the cost.
		if s.QueryCPU <= 0 {
			t.Errorf("%s: deployed detector billed nothing: %+v", s.Detector, s)
		}
		if s.RuleFires == 0 {
			t.Errorf("%s: no metered rule fires", s.Detector)
		}
		if !s.Restored {
			t.Errorf("%s: uninstall did not restore the dataflow shape", s.Detector)
		}
		if !res.CPURestored(s) {
			t.Errorf("%s: post-uninstall CPU %.3f%% not within noise of baseline %.3f%%",
				s.Detector, s.PostCPU, res.BaselineCPU)
		}
	}
}
