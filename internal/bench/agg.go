package bench

import (
	"fmt"
	"sort"
	"strings"

	"p2go/internal/chord"
	"p2go/internal/dataflow"
	"p2go/internal/overlog"
)

// AggResult is the -exp agg table: the cost of aggregate strands under
// per-delta rescans versus incremental maintenance, plus the 4-way
// determinism check (incremental|rescan) x (sequential|parallel).
type AggResult struct {
	// Rows is the feeder's key domain (the backing table converges to
	// roughly this many live rows, the N each rescan pays).
	Rows int
	// RescanBusy / IncrBusy are the aggregate query's metered
	// BusySeconds on the measured node over the window, with the kill
	// switch on (per-delta rescans) and off (incremental maintenance).
	RescanBusy float64
	IncrBusy   float64
	// Speedup is RescanBusy / IncrBusy.
	Speedup float64
	// AggApplies counts incremental accumulator applications on the
	// measured node during the incremental run (0 would mean the
	// eligibility analysis silently regressed).
	AggApplies int64
	// EmissionsIdentical reports whether all four runs produced
	// byte-identical watched-emission streams; Divergence names the
	// first differing pair when they did not.
	EmissionsIdentical bool
	Divergence         string
	// Emissions is the per-run watched-tuple count (identical runs
	// agree on it).
	Emissions int
	// AccountingErr records a violated per-query accounting invariant
	// on the measured node ("" = bills sum to node totals).
	AccountingErr string
}

// aggFeederProgram keeps a bounded table churning: every tick replaces
// one row of load (keys collide over a fixed domain), so each delta
// forces every aggregate rule over load to refresh. The 0.23s period
// stays clear of the table's TTL and of whole-second boundaries.
func aggFeederProgram(rows int) string {
	return fmt.Sprintf(`
materialize(load, 45, infinity, keys(1,2)).
fd1 load@N(K, G, V) :- periodic@N(E, 0.23), K := f_rand() %% %d, G := K %% 4, V := f_rand() %% 1000.
`, rows)
}

// aggQueryProgram is the measured aggregate query: every maintainable
// op, grouped and ungrouped, over the churning load table (declared by
// the feeder query).
const aggQueryProgram = `
materialize(loadCnt, infinity, infinity, keys(1,2)).
materialize(loadSum, infinity, infinity, keys(1)).
materialize(loadAvg, infinity, infinity, keys(1)).
materialize(loadMin, infinity, infinity, keys(1)).
materialize(loadMax, infinity, infinity, keys(1)).
watch(loadCnt).
watch(loadSum).
watch(loadAvg).
watch(loadMin).
watch(loadMax).
ag1 loadCnt@N(G, count<*>) :- load@N(K, G, V).
ag2 loadSum@N(sum<V>) :- load@N(K, G, V).
ag3 loadAvg@N(avg<V>) :- load@N(K, G, V).
ag4 loadMin@N(min<V>) :- load@N(K, G, V).
ag5 loadMax@N(max<V>) :- load@N(K, G, V).
`

// AggMaintenance measures the tentpole: for an aggregate query over a
// churning table, incremental accumulator maintenance must cut the
// query's BusySeconds by well over 2x relative to per-delta rescans
// while emitting a bit-identical stream — across both the sequential
// and the conservative parallel simnet driver. quick shrinks the
// domain and windows for CI smoke use.
func AggMaintenance(seed int64, quick bool) (AggResult, error) {
	rows, nNodes := 400, 5
	warm, win := 40.0, 90.0
	if quick {
		rows, warm, win = 80, 15.0, 30.0
	}
	res := AggResult{Rows: rows}

	feeder, err := overlog.Parse(aggFeederProgram(rows))
	if err != nil {
		return res, err
	}
	aggs, err := overlog.Parse(aggQueryProgram)
	if err != nil {
		return res, err
	}

	type runOut struct {
		busy    float64
		applies int64
		fp      string
		count   int
	}
	prev := dataflow.DisableIncrementalAggs
	defer func() { dataflow.DisableIncrementalAggs = prev }()

	run := func(incremental, parallel bool) (runOut, error) {
		dataflow.DisableIncrementalAggs = !incremental
		r, err := chord.NewRing(chord.RingConfig{
			N: nNodes, Seed: seed,
			Parallel: parallel, Workers: Workers,
			ExtraPrograms: []*overlog.Program{feeder, aggs},
		})
		if err != nil {
			return runOut{}, err
		}
		measured := r.Addrs[len(r.Addrs)-1]
		n := r.Node(measured)
		aggQID := chord.ExtraQueryID(1)
		r.Run(warm)
		qBefore := n.QueryMetrics()[aggQID]
		mBefore := n.Metrics()
		r.Run(win)
		q := n.QueryMetrics()[aggQID].Sub(qBefore)
		applies := n.Metrics().Sub(mBefore).AggApplies
		if len(r.Errors) > 0 {
			return runOut{}, fmt.Errorf("bench: agg run raised rule errors: %s", r.Errors[0])
		}
		if err := CheckQueryAccounting(n); err != nil && res.AccountingErr == "" {
			res.AccountingErr = err.Error()
		}
		// Fingerprint the emission stream: per-node, in observation
		// order, name + fields. Timestamps are deliberately excluded —
		// the two cost models legitimately shift the virtual
		// micro-clock; what must match is what each node said and in
		// which order (stimuli sit well clear of TTL and periodic
		// boundaries, so micro-clock drift cannot reorder them).
		byNode := map[string][]string{}
		for _, w := range r.Watched {
			byNode[w.Node] = append(byNode[w.Node], w.T.String())
		}
		nodes := make([]string, 0, len(byNode))
		for a := range byNode {
			nodes = append(nodes, a)
		}
		sort.Strings(nodes)
		var b strings.Builder
		for _, a := range nodes {
			fmt.Fprintf(&b, "%s(%d):\n%s\n", a, len(byNode[a]), strings.Join(byNode[a], "\n"))
		}
		return runOut{busy: q.BusySeconds, applies: applies, fp: b.String(), count: len(r.Watched)}, nil
	}

	type cell struct {
		name                  string
		incremental, parallel bool
	}
	cells := []cell{
		{"incremental/sequential", true, false},
		{"incremental/parallel", true, true},
		{"rescan/sequential", false, false},
		{"rescan/parallel", false, true},
	}
	outs := make([]runOut, len(cells))
	for i, c := range cells {
		if outs[i], err = run(c.incremental, c.parallel); err != nil {
			return res, err
		}
	}

	res.IncrBusy = outs[0].busy
	res.RescanBusy = outs[2].busy
	if res.IncrBusy > 0 {
		res.Speedup = res.RescanBusy / res.IncrBusy
	}
	res.AggApplies = outs[0].applies
	res.Emissions = outs[0].count
	res.EmissionsIdentical = true
	for i := 1; i < len(outs); i++ {
		if outs[i].fp != outs[0].fp {
			res.EmissionsIdentical = false
			res.Divergence = fmt.Sprintf("%s diverges from %s", cells[i].name, cells[0].name)
			break
		}
	}
	return res, nil
}

// FormatAgg renders the aggregate-maintenance table.
func FormatAgg(res AggResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Aggregates: %d-row churning table, count/sum/avg/min/max query measured per-delta\n", res.Rows)
	fmt.Fprintf(&b, "  %-28s %14s\n", "mode", "query-busy(s)")
	fmt.Fprintf(&b, "  %-28s %14.4f\n", "per-delta rescan", res.RescanBusy)
	fmt.Fprintf(&b, "  %-28s %14.4f  (applies=%d)\n", "incremental maintenance", res.IncrBusy, res.AggApplies)
	fmt.Fprintf(&b, "  speedup: %.1fx\n", res.Speedup)
	if res.EmissionsIdentical {
		fmt.Fprintf(&b, "  emissions: %d tuples, bit-identical across (incremental|rescan) x (sequential|parallel)\n", res.Emissions)
	} else {
		fmt.Fprintf(&b, "  EMISSION DIVERGENCE: %s\n", res.Divergence)
	}
	if res.AccountingErr != "" {
		fmt.Fprintf(&b, "  ACCOUNTING VIOLATION: %s\n", res.AccountingErr)
	} else {
		fmt.Fprintf(&b, "  per-query accounting: bills sum to node totals\n")
	}
	return b.String()
}
