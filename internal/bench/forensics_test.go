package bench

import (
	"bytes"
	"testing"

	"p2go/internal/chord"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// liveEdge identifies one causal edge independent of which substrate
// (trace tables or trace store) reported it.
type liveEdge struct {
	node      string
	rule      string
	inID      uint64
	outID     uint64
	inT, outT float64
	isEvent   bool
}

// liveAncestors computes the ancestor chain of (node, id) straight from
// the live trace tables — the oracle a tracer with unbounded tables
// would report. BFS backwards over ruleExec rows, following tupleTable
// provenance hops to the producing node.
func liveAncestors(r *chord.Ring, node string, id uint64) map[liveEdge]bool {
	now := r.Sim.Now()
	type nodeIx struct {
		byOut map[uint64][]liveEdge
		hops  map[uint64][2]any // id -> {src string, srcID uint64}
	}
	ix := make(map[string]*nodeIx)
	for _, a := range r.Addrs {
		n := &nodeIx{byOut: make(map[uint64][]liveEdge), hops: make(map[uint64][2]any)}
		if tb := r.Node(a).Store().Get(trace.RuleExecTable); tb != nil {
			tb.Scan(now, func(t tuple.Tuple) {
				e := liveEdge{
					node: a, rule: t.Field(1).AsStr(),
					inID: t.Field(2).AsID(), outID: t.Field(3).AsID(),
					inT: t.Field(4).AsFloat(), outT: t.Field(5).AsFloat(),
					isEvent: t.Field(6).AsBool(),
				}
				n.byOut[e.outID] = append(n.byOut[e.outID], e)
			})
		}
		if tb := r.Node(a).Store().Get(trace.TupleTable); tb != nil {
			tb.Scan(now, func(t tuple.Tuple) {
				src := t.Field(2).AsStr()
				if src != "" && src != a {
					n.hops[t.Field(1).AsID()] = [2]any{src, t.Field(3).AsID()}
				}
			})
		}
		ix[a] = n
	}
	out := make(map[liveEdge]bool)
	type key struct {
		node string
		id   uint64
	}
	seen := map[key]bool{{node, id}: true}
	queue := []key{{node, id}}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		n := ix[k.node]
		if n == nil {
			continue
		}
		if h, ok := n.hops[k.id]; ok {
			pk := key{h[0].(string), h[1].(uint64)}
			if !seen[pk] {
				seen[pk] = true
				queue = append(queue, pk)
			}
		}
		for _, e := range n.byOut[k.id] {
			out[e] = true
			pk := key{k.node, e.inID}
			if !seen[pk] {
				seen[pk] = true
				queue = append(queue, pk)
			}
		}
	}
	return out
}

// storeEdgeSet converts a tracestore lineage to the comparable set.
func storeEdgeSet(l *tracestore.Lineage) map[liveEdge]bool {
	out := make(map[liveEdge]bool, len(l.Edges))
	for _, e := range l.Edges {
		out[liveEdge{
			node: e.Node, rule: e.Rule, inID: e.InID, outID: e.OutID,
			inT: e.InT, outT: e.OutT, isEvent: e.IsEvent,
		}] = true
	}
	return out
}

// runForensicRing runs the quick traced ring with the given trace
// bounds and optional store, injecting lookups so multi-hop causal
// chains cross the network.
func runForensicRing(t *testing.T, seed int64, tcfg trace.Config, scfg *tracestore.Config) *chord.Ring {
	t.Helper()
	r, err := chord.NewRing(chord.RingConfig{
		N: 4, Seed: seed, Tracing: &tcfg, TraceStore: scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run(60)
	for i := uint64(0); i < 8; i++ {
		if err := r.Lookup("n4", i*0x2000_0000_0000_0000/4+i, i); err != nil {
			t.Fatal(err)
		}
	}
	r.Run(30)
	if len(r.Errors) > 0 {
		t.Fatalf("ring raised rule errors: %s", r.Errors[0])
	}
	return r
}

// TestStoreLineageSurvivesEviction is the PR's differential acceptance
// test. Run A: generous trace bounds, no store — its tables are the
// live-tracer oracle. Run B: same seed, tight bounds (rows evicted, memo
// flushed) plus the durable store. Determinism makes tuple IDs
// identical across runs, so the store-backed ancestor walk in B must
// return exactly the causal chain A's live tables report — even though
// B's own tables have long since forgotten it.
func TestStoreLineageSurvivesEviction(t *testing.T) {
	const seed = 7
	generous := trace.Config{RuleExecTTL: 1e9, RuleExecMax: 1 << 30, RecordsPerStrand: 8, TupleLogMax: 100}
	tight := trace.Config{RuleExecTTL: 30, RuleExecMax: 40, RecordsPerStrand: 8, TupleLogMax: 100}
	scfg := tracestore.DefaultConfig()
	scfg.WindowSeconds = 5

	ra := runForensicRing(t, seed, generous, nil)
	rb := runForensicRing(t, seed, tight, &scfg)

	stores := make(map[string]*tracestore.Store)
	for _, a := range rb.Addrs {
		st := rb.Node(a).TraceStore()
		if st == nil {
			t.Fatalf("node %s has no trace store", a)
		}
		stores[a] = st
	}
	v := tracestore.NewView(stores, 0)

	// Root: the exec record on the measured node with the largest
	// store-side ancestor chain (deterministic: first wins on ties) —
	// the deepest forensic question the run can pose.
	execs, err := v.Execs(tracestore.ExecFilter{Node: "n4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) == 0 {
		t.Fatal("store recorded no execs on n4")
	}
	var rootID uint64
	best := -1
	for _, e := range execs {
		l, err := v.Ancestors("n4", e.OutID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(l.Edges) > best {
			best = len(l.Edges)
			rootID = e.OutID
		}
	}
	if best < 3 {
		t.Fatalf("deepest ancestor chain has %d edges, want >= 3 (run too shallow to be meaningful)", best)
	}

	lineage, err := v.Ancestors("n4", rootID, 0)
	if err != nil {
		t.Fatal(err)
	}
	storeChain := storeEdgeSet(lineage)
	oracleChain := liveAncestors(ra, "n4", rootID)
	if len(oracleChain) == 0 {
		t.Fatalf("oracle run has no live chain for tuple %d — runs diverged?", rootID)
	}
	for e := range storeChain {
		if !oracleChain[e] {
			t.Errorf("store chain has edge the live oracle lacks: %+v", e)
		}
	}
	for e := range oracleChain {
		if !storeChain[e] {
			t.Errorf("store chain is missing live edge: %+v", e)
		}
	}

	// And the differential point: run B's own bounded tables can no
	// longer answer the question the store just answered.
	liveB := liveAncestors(rb, "n4", rootID)
	if len(liveB) >= len(storeChain) {
		t.Errorf("tight-bounds live tables report %d edges, store %d — eviction never happened, test is vacuous",
			len(liveB), len(storeChain))
	}
}

// TestExportChromeStoreMatchesLive: with bounds generous enough that
// nothing ages out, rendering the Chrome trace from the durable store
// must be byte-identical to rendering it from the live tables.
func TestExportChromeStoreMatchesLive(t *testing.T) {
	generous := trace.Config{RuleExecTTL: 1e9, RuleExecMax: 1 << 30, RecordsPerStrand: 8, TupleLogMax: 100}
	scfg := tracestore.Config{Enabled: true, WindowSeconds: 10, MaxSegments: 1 << 20, MaxBytes: 1 << 40}
	r := runForensicRing(t, 7, generous, &scfg)

	exports := make([]trace.ExportNode, 0, len(r.Addrs))
	stores := make(map[string]*tracestore.Store)
	for _, a := range r.Addrs {
		exports = append(exports, trace.ExportNode{Addr: a, Store: r.Node(a).Store(), Now: r.Sim.Now()})
		stores[a] = r.Node(a).TraceStore()
	}
	var live, fromStore bytes.Buffer
	liveStats, err := trace.ExportChrome(&live, exports)
	if err != nil {
		t.Fatal(err)
	}
	storeStats, err := trace.ExportChromeStore(&fromStore, stores, 0)
	if err != nil {
		t.Fatal(err)
	}
	if liveStats.RuleExecs == 0 || liveStats.Flows == 0 {
		t.Fatalf("live export is trivial: %+v", liveStats)
	}
	if liveStats.RuleExecs != storeStats.RuleExecs || liveStats.Flows != storeStats.Flows {
		t.Fatalf("export stats diverge: live %+v, store %+v", liveStats, storeStats)
	}
	if !bytes.Equal(live.Bytes(), fromStore.Bytes()) {
		t.Fatalf("store-backed export differs from live export (live %d bytes, store %d bytes)",
			live.Len(), fromStore.Len())
	}
	// The store kept multiple sealed windows — the render crossed the
	// sealed/active seam, not just the in-memory segment.
	if segs := stores["n4"].Segments(); len(segs) < 3 {
		t.Fatalf("store has %d segments, want >= 3 so the export spans seals", len(segs))
	}
}
