package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"p2go/internal/chord"
	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// Output file names for the trace experiment (created in the directory
// passed to TraceExport).
const (
	TraceChromeFile = "TRACE_chrome.json"
	TracePromFile   = "TRACE_metrics.prom"
)

// TraceResult summarizes one TraceExport run: what was written and how
// much causal structure the trace captured.
type TraceResult struct {
	// Nodes is the ring size the trace covers.
	Nodes int
	// At is the virtual time of the export.
	At float64
	// Stats is the exporter's own summary (activations, flows, nodes
	// participating in flows).
	Stats trace.ChromeStats
	// ChromeBytes / PromBytes are the written file sizes.
	ChromeBytes int
	PromBytes   int
	// ChromePath / PromPath are the written file paths.
	ChromePath string
	PromPath   string
}

// TraceExport runs a traced Chord ring, injects lookups from the
// measured node so multi-hop causal chains cross the network, and
// exports the accumulated trace twice: as Chrome trace-event JSON
// (chrome://tracing, Perfetto) and as a Prometheus text scrape of the
// measured node. quick shrinks the run to CI size (4 nodes, tight
// tracer bounds); the full run uses the §4 deployment. Everything runs
// in virtual time, so output for a fixed seed is byte-stable.
func TraceExport(seed int64, quick bool, outDir string) (TraceResult, error) {
	n, converge, settle := Nodes, float64(ConvergeTime), 30.0
	tcfg := trace.DefaultConfig()
	if quick {
		n, converge, settle = 4, 60, 15
		tcfg = trace.Config{RuleExecTTL: 30, RuleExecMax: 80, RecordsPerStrand: 8, TupleLogMax: 100}
	}
	measured := fmt.Sprintf("n%d", n)

	r, err := chord.NewRing(chord.RingConfig{
		N: n, Seed: seed, Tracing: &tcfg,
		Parallel: Parallel, Workers: Workers,
		StatsPeriod: 5,
	})
	if err != nil {
		return TraceResult{}, err
	}
	r.Run(converge)
	// Lookups from the measured node hop around the ring, so the trace
	// ends with fresh multi-node request chains on top of the steady
	// maintenance traffic.
	for i := uint64(0); i < 8; i++ {
		if err := r.Lookup(measured, i*0x2000_0000_0000_0000/4+i, i); err != nil {
			return TraceResult{}, err
		}
	}
	r.Run(settle)

	res := TraceResult{Nodes: n, At: r.Sim.Now()}
	exports := make([]trace.ExportNode, 0, n)
	for _, a := range r.Addrs {
		exports = append(exports, trace.ExportNode{
			Addr: a, Store: r.Node(a).Store(), Now: r.Sim.Now(),
		})
	}

	res.ChromePath = filepath.Join(outDir, TraceChromeFile)
	cf, err := os.Create(res.ChromePath)
	if err != nil {
		return res, err
	}
	res.Stats, err = trace.ExportChrome(cf, exports)
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return res, err
	}
	raw, err := os.ReadFile(res.ChromePath)
	if err != nil {
		return res, err
	}
	if !json.Valid(raw) {
		return res, fmt.Errorf("bench: chrome export is not valid JSON")
	}
	res.ChromeBytes = len(raw)

	res.PromPath = filepath.Join(outDir, TracePromFile)
	pf, err := os.Create(res.PromPath)
	if err != nil {
		return res, err
	}
	mn := r.Node(measured)
	hists := mn.Hists()
	err = metrics.WritePrometheus(pf, measured, mn.Metrics(), mn.QueryMetrics(), &hists, mn.ObsCounters()...)
	if cerr := pf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return res, err
	}
	praw, err := os.ReadFile(res.PromPath)
	if err != nil {
		return res, err
	}
	res.PromBytes = len(praw)
	if len(r.Errors) > 0 {
		return res, fmt.Errorf("bench: trace run raised rule errors: %s", r.Errors[0])
	}
	return res, nil
}

// FormatTrace renders the trace-export summary.
func FormatTrace(res TraceResult) string {
	return fmt.Sprintf(
		"Trace export: %d-node traced ring at t=%.0fs\n"+
			"  rule activations exported: %d\n"+
			"  cross-node flow arrows   : %d spanning %d nodes %v\n"+
			"  %s (%d bytes), %s (%d bytes)\n",
		res.Nodes, res.At, res.Stats.RuleExecs,
		res.Stats.Flows, len(res.Stats.FlowNodes), res.Stats.FlowNodes,
		res.ChromePath, res.ChromeBytes, res.PromPath, res.PromBytes)
}

// StatsOverheadResult compares two identical churn runs with stats
// publication off and on: the cost of making the engine's own counters
// queryable, billed to the reserved system query.
type StatsOverheadResult struct {
	// Period is the publication period of the "on" run (seconds).
	Period float64
	// BaseBusy / StatsBusy are the total BusySeconds summed over every
	// node for the off and on runs.
	BaseBusy  float64
	StatsBusy float64
	// OverheadPercent is the relative BusySeconds increase.
	OverheadPercent float64
	// SystemBusy is the "on" run's total system-query bill (publication
	// rides the system bucket, so its growth bounds the added work).
	SystemBusy float64
	// NodeStatsRows / QueryStatsRows count the stats-table rows live on
	// the measured node at the end of the "on" run.
	NodeStatsRows  int
	QueryStatsRows int
	// AccountingErr records a violated per-query accounting invariant
	// on the measured node of the "on" run ("" = bills sum to totals).
	AccountingErr string
}

// StatsOverhead measures the tentpole's introspection tax: it repeats
// the §4 churn experiment with stats publication disabled and enabled
// (period 5 s on all nodes) and reports the BusySeconds delta. The
// publication strand runs as the reserved system query, so per-query
// accounting must still sum — CheckQueryAccounting gates that.
func StatsOverhead(seed int64) (StatsOverheadResult, error) {
	const period = 5.0
	run := func(statsPeriod float64) (*chord.Ring, float64, error) {
		r, _, err := chord.RunChurn(chord.ChurnConfig{
			N: Nodes, Seed: seed, Converge: ConvergeTime, End: 480,
			Parallel: Parallel, Workers: Workers,
			Detectors:   churnDetectors(),
			AlarmNames:  churnAlarms,
			StatsPeriod: statsPeriod,
		})
		if err != nil {
			return nil, 0, err
		}
		var busy float64
		for _, a := range r.Addrs {
			busy += r.Node(a).Metrics().BusySeconds
		}
		return r, busy, nil
	}

	res := StatsOverheadResult{Period: period}
	var err error
	if _, res.BaseBusy, err = run(0); err != nil {
		return res, err
	}
	r, statsBusy, err := run(period)
	if err != nil {
		return res, err
	}
	res.StatsBusy = statsBusy
	if res.BaseBusy > 0 {
		res.OverheadPercent = 100 * (res.StatsBusy - res.BaseBusy) / res.BaseBusy
	}
	for _, a := range r.Addrs {
		if q, ok := r.Node(a).QueryMetrics()[engine.SystemQuery]; ok {
			res.SystemBusy += q.BusySeconds
		}
	}
	mn := r.Node(Measured)
	res.NodeStatsRows = countRows(r, Measured, engine.NodeStatsTableName)
	res.QueryStatsRows = countRows(r, Measured, engine.QueryStatsTableName)
	if err := CheckQueryAccounting(mn); err != nil {
		res.AccountingErr = err.Error()
	}
	return res, nil
}

// FormatStatsOverhead renders the profiler-overhead comparison.
func FormatStatsOverhead(res StatsOverheadResult) string {
	return fmt.Sprintf(
		"Profiler: stats publication (period %gs, all %d nodes) over the churn run\n"+
			"  BusySeconds off : %10.4f\n"+
			"  BusySeconds on  : %10.4f  (%+.2f%%)\n"+
			"  system bill     : %10.4f\n"+
			"  stats tables on %s: %d nodeStats rows, %d queryStats rows\n"+
			"  accounting      : %s\n",
		res.Period, Nodes, res.BaseBusy, res.StatsBusy, res.OverheadPercent,
		res.SystemBusy, Measured, res.NodeStatsRows, res.QueryStatsRows,
		formatAccounting(res.AccountingErr))
}

func formatAccounting(err string) string {
	if err == "" {
		return "per-query bills sum to node totals"
	}
	return "VIOLATED: " + err
}

func countRows(r *chord.Ring, addr, table string) int {
	tb := r.Node(addr).Store().Get(table)
	if tb == nil {
		return 0
	}
	n := 0
	tb.Scan(r.Sim.Now(), func(tuple.Tuple) { n++ })
	return n
}
