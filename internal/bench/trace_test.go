package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceExportGolden runs the quick trace experiment at a fixed seed
// and compares both export files byte-for-byte against the checked-in
// golden copies. The run is pure virtual time on the sequential driver,
// so any diff is a real change to the export format or the engine's
// execution, not noise. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/bench -run TestTraceExportGolden
func TestTraceExportGolden(t *testing.T) {
	dir := t.TempDir()
	res, err := TraceExport(7, true, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RuleExecs == 0 {
		t.Error("trace exported no rule activations")
	}
	if res.Stats.Flows == 0 {
		t.Error("trace exported no cross-node flows")
	}
	if len(res.Stats.FlowNodes) < 3 {
		t.Errorf("flows span %d nodes %v, want >= 3", len(res.Stats.FlowNodes), res.Stats.FlowNodes)
	}

	chrome, err := os.ReadFile(res.ChromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	prom, err := os.ReadFile(res.PromPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE p2_busy_seconds_total counter",
		`p2_query_busy_seconds_total{node="n4",query="system"}`,
		"# TYPE p2_hop_latency_seconds histogram",
		`p2_queue_wait_seconds_count{node="n4"}`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prometheus export missing %q", want)
		}
	}

	for name, got := range map[string][]byte{
		TraceChromeFile: chrome,
		TracePromFile:   prom,
	} {
		golden := filepath.Join("testdata", name+".golden")
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from golden %s (regenerate with UPDATE_GOLDEN=1 if the change is intended); got %d bytes, want %d",
				name, golden, len(got), len(want))
		}
	}
}

// TestTraceExportDeterministic re-runs the quick experiment and demands
// byte-identical outputs — the property the golden files rely on.
func TestTraceExportDeterministic(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	if _, err := TraceExport(3, true, d1); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceExport(3, true, d2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{TraceChromeFile, TracePromFile} {
		a, err := os.ReadFile(filepath.Join(d1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(d2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s not byte-stable across identical runs", name)
		}
	}
}
