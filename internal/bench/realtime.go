package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"p2go/internal/overlog"
	"p2go/internal/realtime"
)

// The realtime experiment: wall-clock ingest throughput of the UDP
// driver under heavy traffic, the one number the simulator cannot
// produce. A paced open-loop generator (realtime.GenerateTraffic)
// offers a fixed event rate over loopback to a single UDP node running
// a minimal monitoring rule; the node ingests with the batched
// recvmmsg/pooled-buffer pipeline (internal/realtime/task.go) and the
// bench reports:
//
//   - sustained events/sec actually processed in the measurement
//     window (after warmup), gated at RealtimeMinEventsPerSec;
//   - end-to-end latency (sender wall-clock stamp to executor pickup)
//     as p50/p99/p999 from the engine's hop histogram;
//   - exact overload accounting: at quiescence every received datagram
//     is processed, dropped on decode, dropped on overload, or dropped
//     at shutdown — the conservation law is checked, not assumed;
//   - a second point under OverloadBlock at a sustainable rate, gated
//     on zero overload drops (backpressure, not shedding);
//   - reader hot-path allocations per datagram
//     (realtime.MeasureReaderAllocs), gated at
//     RealtimeMaxReaderAllocs.
const (
	// RealtimeRate is the offered load of the full drop-mode point —
	// deliberately above the 100k gate so the pipeline is measured at
	// (or past) saturation rather than idling at the target.
	RealtimeRate = 130000
	// RealtimeMinEventsPerSec is the processed-throughput gate for the
	// full run (the ISSUE-10 acceptance number).
	RealtimeMinEventsPerSec = 100000
	// RealtimeBlockRate is the offered load of the backpressure point;
	// modest, because the gate there is exactness (no drops), not
	// throughput.
	RealtimeBlockRate = 20000
	// RealtimeWarm/RealtimeWindow bound the drop point: warmup before
	// the measurement window opens, then the measured window.
	RealtimeWarm   = 2 * time.Second
	RealtimeWindow = 6 * time.Second
	// RealtimeMaxReaderAllocs is the reader hot-path allocation budget
	// per datagram (ISSUE 10: down from 3+ to <=1; steady state
	// measures 0).
	RealtimeMaxReaderAllocs = 1.0

	// Quick (CI smoke) variants: small enough for a shared runner,
	// still end-to-end over a real socket.
	RealtimeQuickRate            = 40000
	RealtimeQuickMinEventsPerSec = 15000
	RealtimeQuickBlockRate       = 8000
	RealtimeQuickWarm            = 500 * time.Millisecond
	RealtimeQuickWindow          = 2 * time.Second
)

// realtimeProgram is the receiver's workload: one monitoring rule per
// event — trigger, projection, head emission — the minimal pipeline
// that still exercises the full ingest path into the engine.
const realtimeProgram = `
r1 seen@N(S) :- ev@N(S, P).
`

// RealtimePoint is one measured configuration of the UDP pipeline.
type RealtimePoint struct {
	// Mode is the overload policy: "drop" or "block".
	Mode string
	// Rate is the generator's target events/sec; Offered/OfferedRate
	// what it actually handed to the kernel; GenErrors its send errors.
	Rate        int
	Offered     int64
	OfferedRate float64
	GenErrors   int64
	// EventsPerSec is processed datagrams per second over the
	// measurement window (the headline number); WindowSecs the window
	// length; WindowProcessed the datagrams processed in it.
	EventsPerSec    float64
	WindowSecs      float64
	WindowProcessed int64
	// P50Ms/P99Ms/P999Ms are end-to-end ingest latency quantiles over
	// the window (sender send stamp to executor pickup), in
	// milliseconds.
	P50Ms, P99Ms, P999Ms float64
	// Transport is the node's final datagram accounting at quiescence.
	Transport realtime.TransportStats
	// KernelLost is offered minus received: datagrams the kernel socket
	// buffer shed before the reader saw them (invisible to user space
	// except by this subtraction).
	KernelLost int64
	// InvariantOK reports the conservation law at quiescence:
	// received == processed + dropDecode + dropOverload + dropShutdown.
	InvariantOK bool
	// AllocsPerEvent is process-wide heap allocations per processed
	// event over the window — generator included, so an upper bound on
	// the pipeline's own rate (informational, not gated).
	AllocsPerEvent float64
}

// RealtimeResult is the full experiment.
type RealtimeResult struct {
	Quick                bool
	Payload, Conns       int
	QueueDepth, Readers  int
	Drop, Block          RealtimePoint
	ReaderAllocsPerEvent float64
	// Gates (also enforced by cmd/p2bench).
	SustainedOK     bool
	MinEventsPerSec float64
	ReaderAllocsOK  bool
	BlockNoDrops    bool
}

// realtimeInvariant checks the conservation law on a quiesced node.
func realtimeInvariant(s realtime.TransportStats) bool {
	return s.DatagramsRecv == s.DatagramsProcessed+s.DropDecode+s.DropOverload+s.DropShutdown
}

// realtimeQuiesce waits for the node's queue to drain after the
// generator stops: the transport counters stop moving and the
// conservation law holds.
func realtimeQuiesce(u *realtime.UDPNode, timeout time.Duration) realtime.TransportStats {
	deadline := time.Now().Add(timeout)
	prev := u.TransportStats()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		s := u.TransportStats()
		if s == prev && realtimeInvariant(s) {
			return s
		}
		prev = s
	}
	return prev
}

// realtimePoint runs one generator-against-node measurement.
func realtimePoint(seed int64, mode string, policy realtime.OverloadPolicy,
	rate, payload, conns, queueDepth int, warm, window time.Duration) (RealtimePoint, error) {

	prog, err := overlog.Parse(realtimeProgram)
	if err != nil {
		return RealtimePoint{}, err
	}
	u, err := realtime.NewUDPNode(realtime.UDPNodeConfig{
		Addr:        "rt",
		Listen:      "127.0.0.1:0",
		Seed:        seed,
		QueueDepth:  queueDepth,
		MaxDatagram: 1024,
		SocketBuf:   8 << 20,
		Overload:    policy,
	})
	if err != nil {
		return RealtimePoint{}, err
	}
	defer u.Stop()
	if err := u.Node().InstallProgram(prog); err != nil {
		return RealtimePoint{}, err
	}
	u.Start()

	type genDone struct {
		stats realtime.GenStats
		err   error
	}
	done := make(chan genDone, 1)
	go func() {
		gs, err := realtime.GenerateTraffic(realtime.GenConfig{
			Target:   u.LocalAddr(),
			Dst:      "rt",
			Rate:     rate,
			Conns:    conns,
			Payload:  payload,
			Duration: warm + window,
		})
		done <- genDone{gs, err}
	}()

	time.Sleep(warm)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	ts0 := u.TransportStats()
	s0 := u.MetricsSnapshot()

	gd := <-done
	if gd.err != nil {
		return RealtimePoint{}, gd.err
	}
	s1 := u.MetricsSnapshot()
	ts1 := u.TransportStats()
	elapsed := time.Since(t0).Seconds()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	final := realtimeQuiesce(u, 5*time.Second)
	hop := s1.Hists.HopLatency.Sub(s0.Hists.HopLatency)
	processed := ts1.DatagramsProcessed - ts0.DatagramsProcessed
	p := RealtimePoint{
		Mode:            mode,
		Rate:            rate,
		Offered:         gd.stats.Sent,
		OfferedRate:     gd.stats.OfferedRate,
		GenErrors:       gd.stats.Errors,
		WindowSecs:      elapsed,
		WindowProcessed: processed,
		P50Ms:           hop.Quantile(0.50) * 1000,
		P99Ms:           hop.Quantile(0.99) * 1000,
		P999Ms:          hop.Quantile(0.999) * 1000,
		Transport:       final,
		KernelLost:      gd.stats.Sent - final.DatagramsRecv,
		InvariantOK:     realtimeInvariant(final),
	}
	if elapsed > 0 {
		p.EventsPerSec = float64(processed) / elapsed
	}
	if processed > 0 {
		p.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(processed)
	}
	return p, nil
}

// Realtime runs the wall-clock ingest experiment. rate/payload/conns
// override the built-in load shape when positive (cmd/p2bench flags);
// zero values take the defaults above.
func Realtime(seed int64, quick bool, rate, payload, conns int) (*RealtimeResult, error) {
	dropRate, blockRate := RealtimeRate, RealtimeBlockRate
	warm, window := RealtimeWarm, RealtimeWindow
	minEPS := float64(RealtimeMinEventsPerSec)
	if quick {
		dropRate, blockRate = RealtimeQuickRate, RealtimeQuickBlockRate
		warm, window = RealtimeQuickWarm, RealtimeQuickWindow
		minEPS = RealtimeQuickMinEventsPerSec
	}
	if rate > 0 {
		dropRate = rate
	}
	if payload <= 0 {
		payload = 16
	}
	if conns <= 0 {
		conns = 2
	}
	const queueDepth = 8192

	readerAllocs, err := realtime.MeasureReaderAllocs(20000)
	if err != nil {
		return nil, err
	}

	drop, err := realtimePoint(seed, "drop", realtime.OverloadDrop,
		dropRate, payload, conns, queueDepth, warm, window)
	if err != nil {
		return nil, err
	}
	// The backpressure point: a sustainable rate where blocking must
	// yield zero overload drops and exact accounting.
	block, err := realtimePoint(seed+1, "block", realtime.OverloadBlock,
		blockRate, payload, conns, queueDepth, warm/2, window/2)
	if err != nil {
		return nil, err
	}

	res := &RealtimeResult{
		Quick:                quick,
		Payload:              payload,
		Conns:                conns,
		QueueDepth:           queueDepth,
		Readers:              1,
		Drop:                 drop,
		Block:                block,
		ReaderAllocsPerEvent: readerAllocs,
		MinEventsPerSec:      minEPS,
	}
	res.SustainedOK = drop.EventsPerSec >= minEPS
	res.ReaderAllocsOK = readerAllocs <= RealtimeMaxReaderAllocs
	res.BlockNoDrops = block.Transport.DropOverload == 0 && block.InvariantOK
	return res, nil
}

// FormatRealtime renders the experiment as a text table.
func FormatRealtime(r *RealtimeResult) string {
	var b strings.Builder
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "realtime ingest (%s): payload=%dB conns=%d queue=%d\n",
		mode, r.Payload, r.Conns, r.QueueDepth)
	fmt.Fprintf(&b, "%-6s %10s %10s %12s %9s %9s %9s %10s %9s %6s\n",
		"mode", "offered/s", "events/s", "processed", "p50 ms", "p99 ms", "p99.9 ms", "dropOver", "kernLost", "exact")
	row := func(p RealtimePoint) {
		fmt.Fprintf(&b, "%-6s %10.0f %10.0f %12d %9.3f %9.3f %9.3f %10d %9d %6v\n",
			p.Mode, p.OfferedRate, p.EventsPerSec, p.Transport.DatagramsProcessed,
			p.P50Ms, p.P99Ms, p.P999Ms, p.Transport.DropOverload, p.KernelLost, p.InvariantOK)
	}
	row(r.Drop)
	row(r.Block)
	fmt.Fprintf(&b, "reader hot path: %.3f allocs/datagram (budget %.1f)\n",
		r.ReaderAllocsPerEvent, float64(RealtimeMaxReaderAllocs))
	fmt.Fprintf(&b, "gates: sustained>=%.0f/s %v · reader allocs %v · block exact %v\n",
		r.MinEventsPerSec, r.SustainedOK, r.ReaderAllocsOK, r.BlockNoDrops)
	return b.String()
}
