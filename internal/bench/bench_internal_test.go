package bench

import "testing"

// TestSampleFormatting pins the harness's presentation helpers.
func TestSampleFormatting(t *testing.T) {
	s := Sample{Label: "1/4", X: 0.25, CPUPercent: 2.5, MemoryMB: 10.1,
		LiveTuples: 42, TxMessages: 7}
	if got := s.String(); got == "" {
		t.Error("empty sample string")
	}
	table := FormatTable("title", []Sample{s})
	if table == "" || len(table) < 20 {
		t.Errorf("table = %q", table)
	}
}

// TestWorkloadProgramsParse: the synthetic Figure 4/5 workloads must be
// valid OverLog at every size used by the benchmarks.
func TestWorkloadProgramsParse(t *testing.T) {
	for _, c := range []int{1, 50, 250} {
		if got := len(periodicRulesProgram(c).Rules()); got != c {
			t.Errorf("periodic program with %d rules has %d", c, got)
		}
		if got := len(piggybackRulesProgram(c).Rules()); got != c+1 {
			t.Errorf("piggyback program with %d rules has %d (driver included)", c, got)
		}
	}
}

// TestRateLabelsMatchPaper pins the x axis of Figures 6 and 7.
func TestRateLabelsMatchPaper(t *testing.T) {
	want := []string{"None", "1/32", "1/4", "1/2", "3/4", "1"}
	if len(RateLabels) != len(want) {
		t.Fatalf("rate labels = %v", RateLabels)
	}
	for i, rl := range RateLabels {
		if rl.Label != want[i] {
			t.Errorf("label %d = %q, want %q", i, rl.Label, want[i])
		}
	}
	if RateLabels[0].Rate != 0 || RateLabels[5].Rate != 1 {
		t.Error("rate endpoints wrong")
	}
}

// TestMeasurementDeterminism: identical seeds yield identical samples —
// the property that makes every number in EXPERIMENTS.md reproducible.
func TestMeasurementDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two ring builds")
	}
	run := func() Sample {
		r, err := buildRing(7, nil)
		if err != nil {
			t.Fatal(err)
		}
		return measure(r, "x", 0)
	}
	a, b := run(), run()
	if a.CPUPercent != b.CPUPercent || a.LiveTuples != b.LiveTuples ||
		a.TxMessages != b.TxMessages || a.MemoryMB != b.MemoryMB {
		t.Errorf("non-deterministic measurement:\n%v\n%v", a, b)
	}
}
