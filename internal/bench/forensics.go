package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p2go/internal/chord"
	"p2go/internal/engine"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// AncestorPoint is one time-horizon point of the forensic query-latency
// sweep: an unbounded ancestor walk over a view whose since-horizon
// spans `Windows` store windows.
type AncestorPoint struct {
	// Windows is the horizon in store windows (the unit of segment
	// decode cost — a view never touches windows older than its since).
	Windows int
	// Since is the absolute virtual-time horizon handed to the view.
	Since float64
	// Edges/Hops size the lineage answer.
	Edges int
	Hops  int
	// Wall is the measured wall-clock cost of opening the view and
	// running the walk (real time — queries run offline, not in the
	// simulation).
	Wall time.Duration
}

// ForensicsResult is the output of the forensics experiment: the write
// side's overhead and compactness, the read side's query latency, and
// the determinism/accounting contract checks.
type ForensicsResult struct {
	// Nodes is the ring size; WindowSeconds the store's rotation period.
	Nodes         int
	WindowSeconds float64
	// BaseBusy / StoreBusy are total BusySeconds over every node for the
	// traced churn run without and with the store attached;
	// OverheadPercent the relative increase (the store's write tax).
	BaseBusy        float64
	StoreBusy       float64
	OverheadPercent float64
	// Appended counts records written through all stores; BytesPerRecord
	// is the lifetime encoded-size ratio over all sealed segments.
	Appended       int64
	SealedSegments int64
	BytesPerRecord float64
	// RestartMarks counts "restart" events recorded by the crash
	// victims' stores — the durable trace of the churn the live tables
	// have already forgotten.
	Victims      int
	RestartMarks int
	// RootNode/RootID identify the investigated tuple (the newest traced
	// product on the measured node); Points is the latency sweep.
	RootNode string
	RootID   uint64
	Points   []AncestorPoint
	// InvestigateLines counts the rendered lines of the textual
	// investigation surface for the same question ("ancestors of ID at
	// node"), exercising parse → run → render end to end.
	InvestigateLines int
	// FingerprintOK reports the 4-way determinism check: a traced ring
	// run under (store off|on) x (sequential|parallel simnet driver)
	// produced byte-identical emissions fingerprints — the store's CPU
	// bill is visible in the metrics but never perturbs virtual time,
	// tuple IDs, table contents, or the watch stream.
	FingerprintOK bool
	// AccountingErr records a violated per-query accounting invariant on
	// the measured node of the store-on run ("" = bills still sum).
	AccountingErr string
}

// emissionsFP fingerprints what a ring emitted — every table row with
// its tuple ID, the histograms, the watch stream, the error log — but
// not the CPU metrics. Attaching a trace store bills real append CPU
// (BusySeconds moves, by design), so the determinism contract for the
// store is exactly "emissions identical, bill visible". The
// nodeStats/queryStats publications are the same metrics reflected into
// tables, so they are excluded for the same reason: instrumentation
// features may legitimately move the bill without perturbing what the
// rings computed.
func emissionsFP(r *chord.Ring) string {
	var b strings.Builder
	now := r.Sim.Now()
	for _, a := range r.Addrs {
		n := r.Node(a)
		h := n.Hists()
		fmt.Fprintf(&b, "== %s hists=%s|%s|%s|%s\n", a,
			h.HopLatency.Encode(), h.StrandCost.Encode(),
			h.QueueWait.Encode(), h.QueueDepth.Encode())
		for _, name := range n.Store().Names() {
			if name == engine.NodeStatsTableName || name == engine.QueryStatsTableName {
				continue
			}
			tb := n.Store().Get(name)
			var rows []string
			tb.Scan(now, func(t tuple.Tuple) {
				rows = append(rows, fmt.Sprintf("  id=%d %s", t.ID, t.String()))
			})
			sort.Strings(rows)
			fmt.Fprintf(&b, "table %s n=%d\n", name, len(rows))
			for _, row := range rows {
				b.WriteString(row)
				b.WriteByte('\n')
			}
		}
	}
	for _, w := range r.Watched {
		fmt.Fprintf(&b, "watch t=%.9f %s %s\n", w.At, w.Node, w.T.String())
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "err %s\n", e)
	}
	return b.String()
}

// Forensics measures the trace store end to end. It repeats the traced
// churn experiment with the store detached and attached and reports the
// BusySeconds delta (write overhead), the encoded bytes/record
// (compactness), and the restart markers the victims' stores kept. It
// then plays investigator on the store-on run: an unbounded ancestor
// walk of the newest traced tuple on the measured node at 1-, 10- and
// 100-window horizons (wall-clock timed — forensic reads are offline),
// plus the same question through the textual query surface. Finally it
// re-runs a small traced ring under (store off|on) x (seq|par driver)
// and demands byte-identical emissions fingerprints, and checks
// per-query accounting still sums on the store-on churn run.
func Forensics(seed int64, quick bool) (*ForensicsResult, error) {
	n, converge, end := Nodes, float64(ConvergeTime), 480.0
	window := 5.0
	tcfg := trace.DefaultConfig()
	if quick {
		n, converge, end = 8, 60, 160
		window = 2
		tcfg = trace.Config{RuleExecTTL: 30, RuleExecMax: 80, RecordsPerStrand: 8, TupleLogMax: 100}
	}
	measured := fmt.Sprintf("n%d", n)
	var victims []string // mirror ChurnConfig's defaults, kept explicit
	for _, i := range []int{n / 4, n / 2, 3 * n / 4} {
		victims = append(victims, fmt.Sprintf("n%d", i+1))
	}
	scfg := tracestore.DefaultConfig()
	scfg.WindowSeconds = window

	res := &ForensicsResult{Nodes: n, WindowSeconds: window, Victims: len(victims)}

	run := func(sc *tracestore.Config) (*chord.Ring, float64, error) {
		r, _, err := chord.RunChurn(chord.ChurnConfig{
			N: n, Seed: seed, Victims: victims,
			Converge: converge, End: end,
			Parallel: Parallel, Workers: Workers,
			Detectors:  churnDetectors(),
			AlarmNames: churnAlarms,
			Tracing:    &tcfg,
			TraceStore: sc,
		})
		if err != nil {
			return nil, 0, err
		}
		var busy float64
		for _, a := range r.Addrs {
			busy += r.Node(a).Metrics().BusySeconds
		}
		return r, busy, nil
	}

	_, base, err := run(nil)
	if err != nil {
		return nil, err
	}
	res.BaseBusy = base
	r, storeBusy, err := run(&scfg)
	if err != nil {
		return nil, err
	}
	res.StoreBusy = storeBusy
	if res.BaseBusy > 0 {
		res.OverheadPercent = 100 * (res.StoreBusy - res.BaseBusy) / res.BaseBusy
	}

	stores := make(map[string]*tracestore.Store, len(r.Addrs))
	var sealedRecords, encodedBytes int64
	for _, a := range r.Addrs {
		st := r.Node(a).TraceStore()
		if st == nil {
			return nil, fmt.Errorf("bench: node %s has no trace store", a)
		}
		stores[a] = st
		s := st.Stats()
		res.Appended += s.Appended()
		res.SealedSegments += s.Sealed
		sealedRecords += s.SealedRecords
		encodedBytes += s.TotalEncodedBytes
	}
	if sealedRecords > 0 {
		res.BytesPerRecord = float64(encodedBytes) / float64(sealedRecords)
	}

	// The victims rejoined: their stores must carry the restart marker
	// their own soft-state tables cannot (Reset wiped those).
	full := tracestore.NewView(stores, 0)
	for _, v := range victims {
		evs, err := full.Events(tracestore.EventFilter{Node: v, Op: "restart"})
		if err != nil {
			return nil, err
		}
		res.RestartMarks += len(evs)
	}

	// Root of the investigation: the newest traced product on the
	// measured node (deterministic — append order is virtual time).
	execs, err := full.Execs(tracestore.ExecFilter{Node: measured})
	if err != nil {
		return nil, err
	}
	if len(execs) == 0 {
		return nil, fmt.Errorf("bench: store recorded no execs on %s", measured)
	}
	res.RootNode = measured
	res.RootID = execs[len(execs)-1].OutID

	now := r.Sim.Now()
	for _, d := range []int{1, 10, 100} {
		since := now - float64(d)*window
		if since < 0 {
			since = 0
		}
		start := time.Now()
		v := tracestore.NewView(stores, since)
		l, err := v.Ancestors(res.RootNode, res.RootID, 0)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, AncestorPoint{
			Windows: d, Since: since,
			Edges: len(l.Edges), Hops: len(l.Hops),
			Wall: time.Since(start),
		})
	}

	// Same question through the textual surface (parse → run → render).
	q := fmt.Sprintf("ancestors of %d at %s", res.RootID, res.RootNode)
	ir, err := tracestore.Investigate(q, full)
	if err != nil {
		return nil, err
	}
	res.InvestigateLines = len(strings.Split(strings.TrimRight(ir.String(), "\n"), "\n"))

	if err := CheckQueryAccounting(r.Node(measured)); err != nil {
		res.AccountingErr = err.Error()
	}

	// 4-way determinism: (store off|on) x (seq|par simnet driver) on a
	// small traced ring with cross-node lookups.
	fpN, fpRun := 5, 45.0
	combos := []struct {
		store bool
		par   bool
	}{{false, false}, {false, true}, {true, false}, {true, true}}
	var first string
	res.FingerprintOK = true
	for i, c := range combos {
		var sc *tracestore.Config
		if c.store {
			cfg := tracestore.DefaultConfig()
			cfg.WindowSeconds = window
			sc = &cfg
		}
		fr, err := chord.NewRing(chord.RingConfig{
			N: fpN, Seed: seed, Tracing: &tcfg, TraceStore: sc,
			Parallel: c.par, Workers: 4,
		})
		if err != nil {
			return nil, err
		}
		fr.Run(fpRun)
		for k := uint64(0); k < 4; k++ {
			if err := fr.Lookup(fmt.Sprintf("n%d", fpN), k*0x4000_0000_0000_0000+k, k); err != nil {
				return nil, err
			}
		}
		fr.Run(15)
		fp := emissionsFP(fr)
		if i == 0 {
			first = fp
		} else if fp != first {
			res.FingerprintOK = false
		}
	}
	if len(r.Errors) > 0 {
		return nil, fmt.Errorf("bench: forensics run raised rule errors: %s", r.Errors[0])
	}
	return res, nil
}

// FormatForensics renders the forensics summary.
func FormatForensics(res *ForensicsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Forensics: durable trace store over the %d-node traced churn run (window %gs)\n",
		res.Nodes, res.WindowSeconds)
	fmt.Fprintf(&b, "  BusySeconds store off : %10.4f\n", res.BaseBusy)
	fmt.Fprintf(&b, "  BusySeconds store on  : %10.4f  (%+.2f%%)\n", res.StoreBusy, res.OverheadPercent)
	fmt.Fprintf(&b, "  records appended      : %d across all stores, %d sealed segments, %.1f bytes/record\n",
		res.Appended, res.SealedSegments, res.BytesPerRecord)
	fmt.Fprintf(&b, "  restart markers       : %d recorded for %d crash victims\n",
		res.RestartMarks, res.Victims)
	fmt.Fprintf(&b, "  investigation root    : tuple %d at %s\n", res.RootID, res.RootNode)
	for _, p := range res.Points {
		fmt.Fprintf(&b, "    ancestors @ %3d windows: %4d edges, %3d hops in %s\n",
			p.Windows, p.Edges, p.Hops, p.Wall.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  query surface         : %q -> %d lines\n",
		fmt.Sprintf("ancestors of %d at %s", res.RootID, res.RootNode), res.InvestigateLines)
	fmt.Fprintf(&b, "  4-way (store off|on)x(seq|par): emissions identical=%v\n", res.FingerprintOK)
	fmt.Fprintf(&b, "  accounting            : %s\n", formatAccounting(res.AccountingErr))
	return b.String()
}
