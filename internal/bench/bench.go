// Package bench regenerates every experiment in §4 of the paper: the
// execution-logging overhead (E0), the periodic-rule and piggyback-rule
// microbenchmarks (Figures 4 and 5), and the overheads of the proactive
// consistency detector and of consistent snapshots as functions of their
// rates (Figures 6 and 7).
//
// The deployment replicates the paper's: a 21-node P2 Chord network
// (fingers fixed every 10 s, stabilization every 5 s, liveness pings
// every 5 s); 20 nodes form the substrate and the separate 21st node is
// the one measured. Metrics follow the paper's axes: CPU utilization
// (the calibrated cost model of the dataflow engine — see DESIGN.md §4),
// process memory, messages transmitted, and live tuples.
package bench

import (
	"fmt"
	"strings"

	"p2go/internal/chord"
	"p2go/internal/dataflow"
	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/monitor"
	"p2go/internal/overlog"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// Parallel, when true, runs every benchmark ring on simnet's
// conservative parallel driver (cmd/p2bench's -parallel flag sets it);
// measured virtual-time results are identical to the sequential driver,
// only wall-clock time changes. Workers bounds the worker pool
// (0 = GOMAXPROCS).
var (
	Parallel bool
	Workers  int
)

// Paper-matching deployment constants.
const (
	// Nodes is the network size (§4: "a population of 21 virtual
	// nodes"); the last node is the measured one.
	Nodes = 21
	// Measured is the address of the node all samples come from.
	Measured = "n21"
	// ConvergeTime is how long the substrate stabilizes before any
	// workload is added ("20 virtual nodes start and stabilize for
	// 5 min").
	ConvergeTime = 300
	// WarmTime lets a newly installed workload reach steady state
	// before the measurement window opens.
	WarmTime = 120
	// WindowTime is the measurement window.
	WindowTime = 120
)

// Memory model: the paper reports OS process size. We model it as a base
// process footprint plus per-strand dataflow-graph memory plus live
// soft-state (see DESIGN.md §4 for why this preserves the figures'
// shape).
const (
	baseProcessBytes  = 8 << 20 // idle P2 process (paper: 8 MB baseline)
	strandBytes       = 22 << 10
	tupleAmplifier    = 4.0 // C++ tuple boxing vs our flat estimate
	memoEntryOverhead = 256
)

// Sample is one measured configuration: a point on a figure.
type Sample struct {
	// Label is the x-axis value ("0".."250" rules, or "None", "1/32",
	// ... "1" probes/sec).
	Label string
	// X is the numeric x value (rule count or rate in 1/s; 0 = None).
	X float64
	// CPUPercent is the measured node's CPU utilization over the
	// window.
	CPUPercent float64
	// MemoryMB is the modeled process size at the end of the window.
	MemoryMB float64
	// LiveTuples is the number of live tuples at the end of the window.
	LiveTuples int
	// TxMessages is the number of messages the measured node sent
	// during the window.
	TxMessages int64
	// RuleFires is the number of strand activations during the window.
	RuleFires int64
	// Series holds the sub-window time series sampled while the
	// measurement ran (SeriesWindow-second deltas, oldest first).
	Series []metrics.SeriesPoint `json:"series,omitempty"`
}

func (s Sample) String() string {
	return fmt.Sprintf("%-6s cpu=%6.3f%%  mem=%6.2fMB  live=%6d  tx=%6d",
		s.Label, s.CPUPercent, s.MemoryMB, s.LiveTuples, s.TxMessages)
}

// buildRing constructs the 21-node deployment and lets it converge.
func buildRing(seed int64, tracing *trace.Config) (*chord.Ring, error) {
	r, err := chord.NewRing(chord.RingConfig{
		N: Nodes, Seed: seed, Tracing: tracing,
		Parallel: Parallel, Workers: Workers,
	})
	if err != nil {
		return nil, err
	}
	r.Run(ConvergeTime)
	return r, nil
}

// SeriesWindow is the sub-window length (seconds) at which measure
// samples the measured node's time series, and SeriesCap bounds how
// many points a sample retains (a full warm+window run fits).
const (
	SeriesWindow = 10.0
	SeriesCap    = 32
)

// measure runs the warm-up and window phases and samples the measured
// node. Both phases advance in SeriesWindow-second steps, recording a
// windowed counter delta per step into a bounded ring; stepping Run
// does not change the event order, so results are identical to a
// single Run call.
func measure(r *chord.Ring, label string, x float64) Sample {
	n := r.Node(Measured)
	ring := metrics.NewSeriesRing(SeriesCap)
	prev := n.Metrics()
	step := func(total float64) {
		for done := 0.0; done < total-1e-9; done += SeriesWindow {
			w := SeriesWindow
			if rem := total - done; rem < w {
				w = rem
			}
			r.Run(w)
			cur := n.Metrics()
			ring.Record(metrics.SeriesPoint{
				T:          r.Sim.Now(),
				Window:     w,
				Node:       cur.Sub(prev),
				LiveTuples: n.Store().LiveTuples(),
			})
			prev = cur
		}
	}
	step(WarmTime)
	before := n.Metrics()
	step(WindowTime)
	after := n.Metrics()
	d := after.Sub(before)
	return Sample{
		Label:      label,
		X:          x,
		CPUPercent: metrics.CPUPercent(d.BusySeconds, WindowTime),
		MemoryMB:   processMB(n),
		LiveTuples: n.Store().LiveTuples(),
		TxMessages: d.MsgsSent,
		RuleFires:  d.RuleFires,
		Series:     ring.Points(),
	}
}

// processMB models the measured node's process size in MB.
func processMB(n *engine.Node) float64 {
	bytes := float64(baseProcessBytes)
	bytes += float64(n.NumStrands()) * strandBytes
	bytes += float64(n.Store().SizeBytes()) * tupleAmplifier
	if tr := n.Tracer(); tr != nil {
		bytes += float64(tr.MemoSize()) * memoEntryOverhead
	}
	return bytes / (1 << 20)
}

// LoggingOverhead is experiment E0 (§4, text): the cost of making
// execution traceable. It returns the baseline and traced samples; the
// paper reports CPU +40% (0.98% -> 1.38%) and memory +66% (8 -> 13 MB).
func LoggingOverhead(seed int64) (off, on Sample, err error) {
	r, err := buildRing(seed, nil)
	if err != nil {
		return off, on, err
	}
	off = measure(r, "off", 0)

	tcfg := trace.DefaultConfig()
	r2, err := buildRing(seed, &tcfg)
	if err != nil {
		return off, on, err
	}
	on = measure(r2, "on", 1)
	return off, on, nil
}

// periodicRulesProgram builds N copies of the Figure 4 synthetic rule:
// result@NAddr() :- periodic@NAddr(E, 1).
func periodicRulesProgram(n int) *overlog.Program {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "pr%d result@NAddr() :- periodic@NAddr(E, 1).\n", i)
	}
	return overlog.MustParse(b.String())
}

// PeriodicRules regenerates Figure 4: CPU and memory on the measured
// node for an increasing number of concurrently running 1 s periodic
// rules.
func PeriodicRules(seed int64, counts []int) ([]Sample, error) {
	var out []Sample
	for _, c := range counts {
		r, err := buildRing(seed, nil)
		if err != nil {
			return nil, err
		}
		if c > 0 {
			if err := r.Node(Measured).InstallProgram(periodicRulesProgram(c)); err != nil {
				return nil, err
			}
		}
		out = append(out, measure(r, fmt.Sprintf("%d", c), float64(c)))
	}
	return out, nil
}

// piggybackRulesProgram builds the Figure 5 workload: one shared 1 s
// timer feeding N copies of a rule with a single state lookup:
// result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr).
func piggybackRulesProgram(n int) *overlog.Program {
	var b strings.Builder
	b.WriteString("drv event@NAddr() :- periodic@NAddr(E, 1).\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "pb%d result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr).\n", i)
	}
	return overlog.MustParse(b.String())
}

// PiggybackRules regenerates Figure 5: N rules triggered by a common
// timer, each performing one table lookup. State lookups cost more than
// private timers, so the CPU slope exceeds Figure 4's.
func PiggybackRules(seed int64, counts []int) ([]Sample, error) {
	var out []Sample
	for _, c := range counts {
		r, err := buildRing(seed, nil)
		if err != nil {
			return nil, err
		}
		if c > 0 {
			if err := r.Node(Measured).InstallProgram(piggybackRulesProgram(c)); err != nil {
				return nil, err
			}
		}
		out = append(out, measure(r, fmt.Sprintf("%d", c), float64(c)))
	}
	return out, nil
}

// RateLabels match the paper's x axis for Figures 6 and 7.
var RateLabels = []struct {
	Label string
	Rate  float64 // probes or snapshots per second; 0 = None
}{
	{"None", 0},
	{"1/32", 1.0 / 32},
	{"1/4", 0.25},
	{"1/2", 0.5},
	{"3/4", 0.75},
	{"1", 1},
}

// AveragedRuns is how many independent seeds Figures 6 and 7 average
// per point, matching the paper's "each datapoint was produced by three
// separate runs". The high-rate probe points sit in a distressed,
// high-variance regime (the paper shows large error bars there), so
// single runs are not representative.
const AveragedRuns = 3

// ConsistencyProbes regenerates Figure 6: the proactive inconsistency
// detector of §3.1.4 running on the measured node at increasing
// initiation rates. Each point averages AveragedRuns seeds.
func ConsistencyProbes(seed int64) ([]Sample, error) {
	var out []Sample
	for _, rl := range RateLabels {
		var runs []Sample
		for k := int64(0); k < AveragedRuns; k++ {
			r, err := buildRing(seed+k, nil)
			if err != nil {
				return nil, err
			}
			if rl.Rate > 0 {
				prog := monitor.ConsistencyProgram(1 / rl.Rate)
				if err := r.Node(Measured).InstallProgram(prog); err != nil {
					return nil, err
				}
			}
			runs = append(runs, measure(r, rl.Label, rl.Rate))
		}
		out = append(out, averageSamples(runs))
	}
	return out, nil
}

// averageSamples averages a set of runs of one configuration.
func averageSamples(runs []Sample) Sample {
	avg := runs[0]
	if len(runs) == 1 {
		return avg
	}
	avg.CPUPercent, avg.MemoryMB = 0, 0
	var live, tx, fires int64
	for _, s := range runs {
		avg.CPUPercent += s.CPUPercent
		avg.MemoryMB += s.MemoryMB
		live += int64(s.LiveTuples)
		tx += s.TxMessages
		fires += s.RuleFires
	}
	n := float64(len(runs))
	avg.CPUPercent /= n
	avg.MemoryMB /= n
	avg.LiveTuples = int(live / int64(len(runs)))
	avg.TxMessages = tx / int64(len(runs))
	avg.RuleFires = fires / int64(len(runs))
	return avg
}

// Snapshots regenerates Figure 7: Chandy-Lamport snapshots initiated by
// the measured node at increasing rates, with every node participating.
// Each point averages AveragedRuns seeds, like Figure 6.
func Snapshots(seed int64) ([]Sample, error) {
	var out []Sample
	for _, rl := range RateLabels {
		var runs []Sample
		for k := int64(0); k < AveragedRuns; k++ {
			r, err := buildRing(seed+k, nil)
			if err != nil {
				return nil, err
			}
			if rl.Rate > 0 {
				for _, a := range r.Addrs {
					freq := 0.0
					if a == Measured {
						freq = 1 / rl.Rate
					}
					if err := monitor.InstallSnapshot(r.Node(a), freq); err != nil {
						return nil, err
					}
				}
			}
			runs = append(runs, measure(r, rl.Label, rl.Rate))
		}
		out = append(out, averageSamples(runs))
	}
	return out, nil
}

// FormatTable renders samples like the paper's figure series.
func FormatTable(title string, samples []Sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %10s %12s %12s %12s\n",
		"x", "CPU %", "Memory MB", "LiveTuples", "TxMsgs")
	for _, s := range samples {
		fmt.Fprintf(&b, "%-6s %10.3f %12.2f %12d %12d\n",
			s.Label, s.CPUPercent, s.MemoryMB, s.LiveTuples, s.TxMessages)
	}
	return b.String()
}

// AblationIndexedJoins quantifies the design choice DESIGN.md calls out:
// P2-style planner-created join indices versus full table scans. It runs
// the snapshot workload (whose termination rules join the large
// channelState table) at 1 snapshot per 4 s with and without indexes.
func AblationIndexedJoins(seed int64) (indexed, scanned Sample, err error) {
	run := func() (Sample, error) {
		r, err := buildRing(seed, nil)
		if err != nil {
			return Sample{}, err
		}
		for _, a := range r.Addrs {
			freq := 0.0
			if a == Measured {
				freq = 4
			}
			if err := monitor.InstallSnapshot(r.Node(a), freq); err != nil {
				return Sample{}, err
			}
		}
		return measure(r, "snap 1/4", 0.25), nil
	}
	indexed, err = run()
	if err != nil {
		return
	}
	dataflow.DisableIndexedJoins = true
	defer func() { dataflow.DisableIndexedJoins = false }()
	scanned, err = run()
	return
}

// DeadGuardResult summarizes one dead-guard ablation run.
type DeadGuardResult struct {
	// HealTime is the first time after the crash at which the surviving
	// ring satisfied the §3.1.1 invariants (-1 if never within the
	// observation window).
	HealTime float64
	// StaleSeconds integrates, over the observation window, the number
	// of routing-state entries (succ rows) still naming a crashed node:
	// the recycled-dead-neighbor exposure.
	StaleSeconds float64
	// Oscillations counts oscill events from the §3.1.3 detector.
	Oscillations int
}

// AblationDeadGuard quantifies §3.1.3's fix: with the dead-neighbor
// guard, entries for crashed nodes are swept and stay out, so the ring
// heals quickly; without it (the paper's buggy implementation), gossip
// keeps recycling the deceased neighbors, which the os-detectors observe
// and which shows up as stale routing state lingering far longer.
func AblationDeadGuard(seed int64) (guard, buggy DeadGuardResult, err error) {
	run := func(isBuggy bool) (DeadGuardResult, error) {
		r, err := chord.NewRing(chord.RingConfig{
			N: 12, Seed: seed, Buggy: isBuggy,
			ExtraPrograms: []*overlog.Program{monitor.OscillationProgram()},
		})
		if err != nil {
			return DeadGuardResult{}, err
		}
		r.Run(ConvergeTime)
		dead := map[string]bool{"n5": true, "n9": true}
		r.Net.Crash("n5")
		r.Net.Crash("n9")
		res := DeadGuardResult{HealTime: -1}
		members := r.Alive(dead)
		const step, window = 5.0, 150.0
		for t := step; t <= window; t += step {
			r.Run(step)
			stale := 0
			for _, a := range members {
				tb := r.Node(a).Store().Get("succ")
				tb.Scan(r.Sim.Now(), func(row tuple.Tuple) {
					if dead[row.Field(2).AsStr()] {
						stale++
					}
				})
			}
			res.StaleSeconds += float64(stale) * step
			if res.HealTime < 0 && stale == 0 && len(r.CheckRing(members)) == 0 {
				res.HealTime = t
			}
		}
		for _, w := range r.Watched {
			if w.T.Name == "oscill" {
				res.Oscillations++
			}
		}
		return res, nil
	}
	guard, err = run(false)
	if err != nil {
		return
	}
	buggy, err = run(true)
	return
}
