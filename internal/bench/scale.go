package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"p2go/internal/chord"
	"p2go/internal/dataflow"
	"p2go/internal/engine"
	"p2go/internal/simnet"
)

// The scale experiment: how far past the paper's 21 nodes the simulator
// carries one monitoring substrate. It sweeps ring sizes from 100 to
// 10,000 hosts and reports, per point, the wall-clock build and run
// times, the simulator's event throughput, and bytes-per-host — the
// steady-state figure, the full-install figure, and the
// program-instantiation figure that isolates what shared plans save.
// Two hard gates ride along: instantiation bytes-per-host under shared
// plans must beat the private-plan baseline by ScaleMinPlanReduction,
// and steady-state bytes-per-host at >= 1k hosts must stay under
// ScaleBudgetBytes. A 4-way fingerprint check
// ((shared|private plans) x (sequential|parallel driver) at 100 hosts)
// guards the determinism contract the sharing must preserve.

const (
	// ScaleInstallBudgetBytes is the hard per-host budget for the fixed
	// install footprint (node + tables + strand shells + seed rows,
	// measured by installBytesPerHost with shared plans). Measured
	// ~78 KB at 512 hosts; the headroom is deliberately tight — losing
	// plan sharing alone (+~69 KB/host of private plans) blows it. See
	// also TestPerHostMemoryBudget.
	ScaleInstallBudgetBytes = 112 << 10

	// ScaleBudgetBytes is the hard per-host steady-state budget the
	// sweep enforces at >= 1k hosts after the measured window. On top
	// of the install footprint this includes workload soft state: table
	// rows and, dominantly, per-link delay/loss RNG streams (~5.4 KB of
	// math/rand state per active link, untouchable without changing
	// every seeded golden). Measured ~324 KB at 1k hosts over a 30 s
	// window.
	ScaleBudgetBytes = 512 << 10

	// ScaleMinPlanReduction is the minimum ratio of private-plan to
	// shared-plan program-instantiation bytes-per-host.
	ScaleMinPlanReduction = 5.0
)

// ScalePoint is one ring size in the sweep.
type ScalePoint struct {
	Hosts int
	// BuildSec/RunSec are wall-clock seconds to construct+converge the
	// ring and to run the measured window.
	BuildSec float64
	RunSec   float64
	// SimSeconds is the virtual length of the measured window.
	SimSeconds float64
	// Events is how many simulator events the window executed;
	// EventsPerSec is Events over wall-clock RunSec (the scheduler
	// throughput curve).
	Events       uint64
	EventsPerSec float64
	// SteadyBytesPerHost is the live-heap delta per host after the
	// window (ring construction through end of run).
	SteadyBytesPerHost int64
}

// ScaleResult is the full sweep.
type ScaleResult struct {
	Quick      bool
	HostCounts []int
	// SharedPlanBytesPerHost / PrivatePlanBytesPerHost isolate program
	// instantiation — the only memory plan sharing can touch: heap per
	// host of holding the Chord program privately compiled (N full plan
	// sets, the pre-refactor state) vs instantiated from one shared
	// compilation (N strand shells). PlanReduction is their ratio and
	// carries the >= ScaleMinPlanReduction gate.
	ProbeHosts              int
	SharedPlanBytesPerHost  int64
	PrivatePlanBytesPerHost int64
	PlanReduction           float64
	// SharedInstallBytesPerHost / PrivateInstallBytesPerHost are the
	// corresponding full-install heap deltas on pre-built nodes. They
	// include everything an install creates — tables, indexes, strand
	// wiring, seed rows — which is identical under both modes, so the
	// ratio here is diluted; reported for context, not gated.
	SharedInstallBytesPerHost  int64
	PrivateInstallBytesPerHost int64
	// FingerprintOK reports the 4-way determinism check at
	// FingerprintHosts hosts.
	FingerprintHosts int
	FingerprintOK    bool
	// Gates.
	InstallBudgetBytes int64
	InstallBudgetOK    bool
	BudgetBytes        int64
	BudgetOK           bool
	ReductionOK        bool
	Points             []ScalePoint
}

// heapAlloc returns the live heap after a GC settle.
func heapAlloc() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// installBytesPerHost measures program instantiation alone: m bare
// nodes are built first, then Chord is installed on each, and only the
// install phase is under the heap meter. With private plans each node
// retains its own compiled rule plans; with shared plans the nodes
// share one immutable copy and keep per-node scratch only.
func installBytesPerHost(m int, private bool) (int64, error) {
	saved := engine.DisableSharedPlans
	engine.DisableSharedPlans = private
	defer func() { engine.DisableSharedPlans = saved }()

	// Warm the process-wide one-time allocations (the cached shared
	// compilation, interned strings) so neither variant bills them.
	if _, err := chord.Compiled(); err != nil {
		return 0, err
	}
	sim := simnet.NewSim()
	net := simnet.NewNetwork(sim, simnet.Config{Seed: 1})
	nodes := make([]*engine.Node, m)
	for i := range nodes {
		n, err := net.AddNode(fmt.Sprintf("n%d", i+1))
		if err != nil {
			return 0, err
		}
		nodes[i] = n
	}
	base := heapAlloc()
	for _, n := range nodes {
		if err := chord.Install(n, "n1"); err != nil {
			return 0, err
		}
	}
	delta := heapAlloc() - base
	runtime.KeepAlive(net)
	runtime.KeepAlive(nodes)
	return delta / int64(m), nil
}

// planBytesPerHost measures program instantiation alone. private holds
// m independently compiled copies of the Chord program (what every
// node retained before plan sharing); shared holds one compilation
// plus m sets of per-node strand shells instantiated from it.
func planBytesPerHost(m int, private bool) (int64, error) {
	prog := chord.Program()
	if private {
		cqs := make([]*engine.CompiledQuery, m)
		base := heapAlloc()
		for i := range cqs {
			cq, err := engine.CompileQuery(prog)
			if err != nil {
				return 0, err
			}
			cqs[i] = cq
		}
		delta := heapAlloc() - base
		runtime.KeepAlive(cqs)
		return delta / int64(m), nil
	}
	cq, err := chord.Compiled()
	if err != nil {
		return 0, err
	}
	plans := cq.Plans()
	strands := make([][]*dataflow.Strand, m)
	base := heapAlloc()
	for i := range strands {
		ss := make([]*dataflow.Strand, len(plans))
		for j, p := range plans {
			ss[j] = p.Instantiate(chord.QueryID)
		}
		strands[i] = ss
	}
	delta := heapAlloc() - base
	runtime.KeepAlive(strands)
	return delta / int64(m), nil
}

// scaleFingerprint runs an h-host ring for simSecs under one
// (private-plans, parallel-driver) combination and fingerprints its
// emissions.
func scaleFingerprint(seed int64, h int, simSecs float64, private, parallel bool) (string, error) {
	saved := engine.DisableSharedPlans
	engine.DisableSharedPlans = private
	defer func() { engine.DisableSharedPlans = saved }()
	r, err := chord.NewRing(chord.RingConfig{
		N: h, Seed: seed, Parallel: parallel, Workers: Workers,
	})
	if err != nil {
		return "", err
	}
	r.Run(simSecs)
	return emissionsFP(r), nil
}

// Scale runs the sweep. quick shrinks the measured windows to CI smoke
// size; the host counts stay 100/1k/10k either way — surviving 10k
// hosts is the point of the experiment.
func Scale(seed int64, quick bool) (*ScaleResult, error) {
	hosts := []int{100, 1000, 10000}
	simSecs, fpSecs, probeM, fpHosts := 30.0, 60.0, 512, 100
	if quick {
		simSecs, fpSecs, probeM, fpHosts = 5.0, 30.0, 128, 100
	}
	res := &ScaleResult{
		Quick: quick, HostCounts: hosts, ProbeHosts: probeM,
		FingerprintHosts: fpHosts, BudgetBytes: ScaleBudgetBytes,
		InstallBudgetBytes: ScaleInstallBudgetBytes, BudgetOK: true,
	}

	// Gate 1: program-instantiation bytes-per-host, shared vs private.
	sharedPlan, err := planBytesPerHost(probeM, false)
	if err != nil {
		return nil, err
	}
	privatePlan, err := planBytesPerHost(probeM, true)
	if err != nil {
		return nil, err
	}
	res.SharedPlanBytesPerHost = sharedPlan
	res.PrivatePlanBytesPerHost = privatePlan
	if sharedPlan > 0 {
		res.PlanReduction = float64(privatePlan) / float64(sharedPlan)
	}
	res.ReductionOK = res.PlanReduction >= ScaleMinPlanReduction

	// Context: full-install bytes-per-host under both modes.
	res.SharedInstallBytesPerHost, err = installBytesPerHost(probeM, false)
	if err != nil {
		return nil, err
	}
	res.PrivateInstallBytesPerHost, err = installBytesPerHost(probeM, true)
	if err != nil {
		return nil, err
	}
	res.InstallBudgetOK = res.SharedInstallBytesPerHost <= ScaleInstallBudgetBytes

	// Gate 2: the 4-way determinism fingerprint.
	first := ""
	res.FingerprintOK = true
	for _, c := range []struct{ private, parallel bool }{
		{false, false}, {false, true}, {true, false}, {true, true},
	} {
		fp, err := scaleFingerprint(seed, fpHosts, fpSecs, c.private, c.parallel)
		if err != nil {
			return nil, err
		}
		if first == "" {
			first = fp
		} else if fp != first {
			res.FingerprintOK = false
		}
	}

	// The throughput/memory sweep. Steady bytes-per-host includes
	// workload soft state on top of the install footprint, so it gets
	// the roomier ScaleBudgetBytes.
	for _, h := range hosts {
		base := heapAlloc()
		start := time.Now()
		r, err := chord.NewRing(chord.RingConfig{
			N: h, Seed: seed, Parallel: Parallel, Workers: Workers,
		})
		if err != nil {
			return nil, err
		}
		build := time.Since(start).Seconds()
		startEvents := r.Sim.Executed()
		start = time.Now()
		r.Run(simSecs)
		runSec := time.Since(start).Seconds()
		events := r.Sim.Executed() - startEvents
		perHost := (heapAlloc() - base) / int64(h)
		runtime.KeepAlive(r)
		p := ScalePoint{
			Hosts: h, BuildSec: build, RunSec: runSec,
			SimSeconds: simSecs, Events: events,
			SteadyBytesPerHost: perHost,
		}
		if runSec > 0 {
			p.EventsPerSec = float64(events) / runSec
		}
		if h >= 1000 && perHost > ScaleBudgetBytes {
			res.BudgetOK = false
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// FormatScale renders the sweep like the other experiment tables.
func FormatScale(r *ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: Chord substrate sweep (virtual window %gs/point)\n", r.Points[0].SimSeconds)
	fmt.Fprintf(&b, "  plan bytes/host (%d-host probe): shared=%d private=%d (%.1fx reduction, gate >= %.0fx: %v)\n",
		r.ProbeHosts, r.SharedPlanBytesPerHost, r.PrivatePlanBytesPerHost,
		r.PlanReduction, ScaleMinPlanReduction, r.ReductionOK)
	fmt.Fprintf(&b, "  full-install bytes/host: shared=%d private=%d (tables/wiring are common to both; budget %d, ok: %v)\n",
		r.SharedInstallBytesPerHost, r.PrivateInstallBytesPerHost,
		r.InstallBudgetBytes, r.InstallBudgetOK)
	fmt.Fprintf(&b, "  4-way fingerprint (shared|private)x(seq|par) at %d hosts: %v\n",
		r.FingerprintHosts, r.FingerprintOK)
	fmt.Fprintf(&b, "  %-7s %10s %10s %14s %14s %16s\n",
		"hosts", "build s", "run s", "events", "events/sec", "steady B/host")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-7d %10.2f %10.2f %14d %14.0f %16d\n",
			p.Hosts, p.BuildSec, p.RunSec, p.Events, p.EventsPerSec, p.SteadyBytesPerHost)
	}
	fmt.Fprintf(&b, "  per-host budget at >=1k hosts: %d bytes, ok: %v\n", r.BudgetBytes, r.BudgetOK)
	return b.String()
}
