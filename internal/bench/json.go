package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// WriteJSON writes one experiment's result as indented JSON (the
// machine-readable twin of the printed tables; p2bench's -json flag
// emits BENCH_<exp>.json next to the working directory).
func WriteJSON(path, experiment string, seed int64, data any) error {
	payload := struct {
		Experiment string `json:"experiment"`
		Seed       int64  `json:"seed"`
		Data       any    `json:"data"`
	}{experiment, seed, data}
	b, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", experiment, err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
