package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/monitor"
	"p2go/internal/tuple"
)

// LifecycleSample is one detector's full install → measure → uninstall
// cycle: its marginal cost while deployed on every ring member, the
// engine's own per-query bill for it on the measured node, and whether
// retiring it returned the node to baseline.
type LifecycleSample struct {
	// Detector is the §3.1 detector name; QueryID the engine query it
	// deploys as; Nodes how many ring members it was installed on (the
	// Figure 6 prober deploys on the measured node only, like the
	// paper; the rest on all 21).
	Detector string
	QueryID  string
	Nodes    int
	// MarginalCPU is the measured node's CPU increase over baseline
	// while the detector ran (percentage points).
	MarginalCPU float64
	// QueryCPU is the detector's own metered bill on the measured node
	// over the same window (per-query BusySeconds as CPU %) — the
	// attribution the lifecycle subsystem maintains, measured
	// independently of the before/after subtraction.
	QueryCPU float64
	// MarginalMemMB is the modeled process-size increase while
	// deployed.
	MarginalMemMB float64
	// RuleFires / TimerFires are the detector's metered activations on
	// the measured node during the window.
	RuleFires  int64
	TimerFires int64
	// PostCPU is the measured node's CPU in a window after the
	// uninstall settled; it must be back within noise of baseline.
	PostCPU float64
	// Restored reports the structural check: strand, timer, watch and
	// log-tap counts and the table-name set exactly match the
	// pre-install shape.
	Restored bool
}

// LifecycleResult is the -exp lifecycle table.
type LifecycleResult struct {
	// BaselineCPU / BaselineMemMB are the converged chord-only ring's
	// steady state at the measured node.
	BaselineCPU   float64
	BaselineMemMB float64
	Samples       []LifecycleSample
	// AccountingErr records a violated per-query accounting invariant
	// on the measured node at the end of the run ("" = sums check out).
	AccountingErr string
}

// CPUNoise is the tolerance for "cost returned to baseline": the
// post-uninstall window may differ from the baseline window by this
// fraction of baseline plus an absolute floor (the ring's own load
// wanders a little between windows).
const (
	cpuNoiseFrac  = 0.15
	cpuNoiseFloor = 0.02 // percentage points
)

// CPURestored reports whether a sample's post-uninstall CPU is within
// noise of the run's baseline.
func (r LifecycleResult) CPURestored(s LifecycleSample) bool {
	return math.Abs(s.PostCPU-r.BaselineCPU) <= cpuNoiseFrac*r.BaselineCPU+cpuNoiseFloor
}

// nodeShape fingerprints a node's static dataflow structure — everything
// install must add and uninstall must remove.
func nodeShape(n *engine.Node) string {
	names := n.Store().Names()
	sort.Strings(names)
	return fmt.Sprintf("strands=%d timers=%d watches=%d taps=%d tables=%s",
		n.NumStrands(), n.NumTimers(), n.NumWatches(), n.NumLogTaps(),
		strings.Join(names, ","))
}

// CheckQueryAccounting verifies the attribution invariant on a node:
// per-query bills and counters (including the reserved system bucket)
// sum to the node totals. BusySeconds tolerates float re-association
// only.
func CheckQueryAccounting(n *engine.Node) error {
	m := n.Metrics()
	var busy float64
	var fires, heads, timers int64
	for _, q := range n.QueryMetrics() {
		busy += q.BusySeconds
		fires += q.RuleFires
		heads += q.HeadsEmitted
		timers += q.TimerFires
	}
	if fires != m.RuleFires || heads != m.HeadsEmitted || timers != m.TimerFires {
		return fmt.Errorf("per-query counters (fires=%d heads=%d timers=%d) != node totals (%d, %d, %d)",
			fires, heads, timers, m.RuleFires, m.HeadsEmitted, m.TimerFires)
	}
	if diff := math.Abs(busy - m.BusySeconds); diff > 1e-9*(1+math.Abs(m.BusySeconds)) {
		return fmt.Errorf("per-query BusySeconds sum %g != node %g", busy, m.BusySeconds)
	}
	return nil
}

// Lifecycle runs the query-lifecycle experiment: on a converged 21-node
// ring, each §3.1 detector is deployed on every member as a managed
// query, its marginal CPU/memory and its own metered bill are measured
// at the measured node, and it is then undeployed — verifying that the
// node's dataflow shape and steady-state CPU return to baseline. quick
// shrinks the windows and the detector suite for smoke use.
func Lifecycle(seed int64, quick bool) (LifecycleResult, error) {
	warm, win, settle := float64(WarmTime), float64(WindowTime), 60.0
	// Figure 6's mid rate for the prober; it deploys on the measured
	// node only (Detector.SingleNode) like the paper's experiment.
	dets := monitor.Detectors(5, 4)
	if quick {
		warm, win, settle = 30, 30, 30
		dets = dets[:2]
	}
	r, err := buildRing(seed, nil)
	if err != nil {
		return LifecycleResult{}, err
	}
	n := r.Node(Measured)

	window := func() metrics.Node {
		before := n.Metrics()
		r.Run(win)
		return n.Metrics().Sub(before)
	}
	r.Run(warm)
	base := window()
	res := LifecycleResult{
		BaselineCPU:   metrics.CPUPercent(base.BusySeconds, win),
		BaselineMemMB: processMB(n),
	}
	shape0 := nodeShape(n)

	for _, d := range dets {
		targets := r.Addrs
		if d.SingleNode {
			targets = []string{Measured}
		}
		for _, a := range targets {
			if _, err := monitor.Deploy(r.Node(a), d); err != nil {
				return res, err
			}
		}
		if d.Name == "ordering-traversal" {
			// §3.1.2 traversals are operator-initiated (the rules only
			// pass the token): kick one full-ring walk from the
			// measured node every 30 s of the deployment, as
			// examples/chordmon does by hand.
			start := r.Sim.Now()
			for k := 0; 30*float64(k) < warm+win; k++ {
				ev := tuple.New("orderingEvent", tuple.Str(Measured), tuple.ID(uint64(1000+k)))
				if err := r.Net.InjectAt(start+30*float64(k), Measured, ev); err != nil {
					return res, err
				}
			}
		}
		r.Run(warm)
		mBefore, qBefore := n.Metrics(), n.QueryMetrics()[d.QueryID()]
		r.Run(win)
		md := n.Metrics().Sub(mBefore)
		qd := n.QueryMetrics()[d.QueryID()].Sub(qBefore)
		memWith := processMB(n)

		for _, a := range targets {
			if err := monitor.Undeploy(r.Node(a), d); err != nil {
				return res, err
			}
		}
		r.Run(settle)
		post := window()

		res.Samples = append(res.Samples, LifecycleSample{
			Detector:      d.Name,
			QueryID:       d.QueryID(),
			Nodes:         len(targets),
			MarginalCPU:   metrics.CPUPercent(md.BusySeconds, win) - res.BaselineCPU,
			QueryCPU:      metrics.CPUPercent(qd.BusySeconds, win),
			MarginalMemMB: memWith - res.BaselineMemMB,
			RuleFires:     qd.RuleFires,
			TimerFires:    qd.TimerFires,
			PostCPU:       metrics.CPUPercent(post.BusySeconds, win),
			Restored:      nodeShape(n) == shape0,
		})
	}
	if err := CheckQueryAccounting(n); err != nil {
		res.AccountingErr = err.Error()
	}
	if len(r.Errors) > 0 {
		return res, fmt.Errorf("bench: lifecycle run raised rule errors: %s", r.Errors[0])
	}
	return res, nil
}

// FormatLifecycle renders the lifecycle table.
func FormatLifecycle(res LifecycleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lifecycle: §3.1 detectors installed on a converged %d-node ring, measured at %s, then uninstalled\n",
		Nodes, Measured)
	fmt.Fprintf(&b, "  baseline: cpu=%6.3f%%  mem=%6.2fMB\n", res.BaselineCPU, res.BaselineMemMB)
	fmt.Fprintf(&b, "  %-20s %5s %12s %12s %12s %10s %9s %9s\n",
		"detector", "nodes", "marginal-cpu", "query-bill", "marginal-mem", "post-cpu", "restored", "cpu-back")
	for _, s := range res.Samples {
		fmt.Fprintf(&b, "  %-20s %5d %+11.3f%% %11.3f%% %+10.2fMB %9.3f%% %9v %9v\n",
			s.Detector, s.Nodes, s.MarginalCPU, s.QueryCPU, s.MarginalMemMB, s.PostCPU,
			s.Restored, res.CPURestored(s))
	}
	if res.AccountingErr != "" {
		fmt.Fprintf(&b, "  ACCOUNTING VIOLATION: %s\n", res.AccountingErr)
	} else {
		fmt.Fprintf(&b, "  per-query accounting: bills sum to node totals on %s\n", Measured)
	}
	return b.String()
}
