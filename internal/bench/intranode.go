package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"p2go/internal/chord"
	"p2go/internal/engine"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// IntranodeWorkers is the worker-count sweep of the intra-node
// scheduler benchmark.
var IntranodeWorkers = []int{1, 2, 4, 8}

// IntranodePoint is one worker count of the sweep.
type IntranodePoint struct {
	// Workers is the engine.Config.Workers setting of this run.
	Workers int
	// Wall is the measured wall-clock time of the tick loop.
	Wall time.Duration
	// WallSpeedup is the measured, BusySeconds-normalized wall speedup
	// over the ExecSingle baseline: (wall/busy)_single / (wall/busy)_w.
	// The two busy terms are bit-identical when FingerprintOK holds, so
	// this is wall_single/wall_w — and it is bounded by the host's real
	// core count (flat on a single-core host no matter the pool size).
	WallSpeedup float64
	// ModelSpeedup is the cost-model speedup of the whole run:
	// busy / (busy - SeqSeconds + ParSeconds), i.e. the batched fan-outs
	// replaced by their list-scheduled makespan on this worker pool
	// (engine.FanoutStats). This is the host-independent number: the
	// wall speedup an executor with `Workers` real cores would see.
	ModelSpeedup float64
	// Committed/Aborted are the run's speculation outcome counters.
	Committed int64
	Aborted   int64
}

// IntranodeResult is the output of the intranode experiment.
type IntranodeResult struct {
	// Rules/Rows/Ticks describe the workload: Rules independent rules
	// (each scanning a private Rows-row table) all triggered by the same
	// tick event, fired Ticks times.
	Rules int
	Rows  int
	Ticks int
	// HostCores is runtime.NumCPU() — the bound on WallSpeedup.
	HostCores int
	// BusySeconds is the simulated CPU of the tick loop (identical
	// across all runs when FingerprintOK holds).
	BusySeconds float64
	// SingleWall is the measured wall time of the ExecSingle baseline.
	SingleWall time.Duration
	// Points is the ExecMulti sweep over IntranodeWorkers.
	Points []IntranodePoint
	// FingerprintOK reports that every run of the sweep produced a
	// byte-identical node fingerprint (metrics, per-query bills,
	// histograms, every table row with its tuple ID) — the determinism
	// acceptance check.
	FingerprintOK bool
	// RingMatch reports that the 4-way composition check passed: a
	// Chord ring run under (ExecSingle|ExecMulti) x (sequential|parallel
	// simnet driver) produced four byte-identical ring fingerprints.
	RingMatch bool
}

// String renders the result as the speedup table.
func (r *IntranodeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  workload: %d rules x %d rows, %d ticks (%.2f busy-seconds); host cores: %d\n",
		r.Rules, r.Rows, r.Ticks, r.BusySeconds, r.HostCores)
	fmt.Fprintf(&b, "  %-8s %12s %14s %14s %10s %8s\n",
		"workers", "wall", "wall-speedup", "model-speedup", "committed", "aborted")
	fmt.Fprintf(&b, "  %-8s %12s %14s %14s %10s %8s\n",
		"single", r.SingleWall.Round(time.Microsecond).String(), "1.00x", "1.00x", "-", "-")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-8d %12s %13.2fx %13.2fx %10d %8d\n",
			p.Workers, p.Wall.Round(time.Microsecond).String(),
			p.WallSpeedup, p.ModelSpeedup, p.Committed, p.Aborted)
	}
	fmt.Fprintf(&b, "  fingerprints identical: %v\n", r.FingerprintOK)
	fmt.Fprintf(&b, "  4-way ring composition (Single|Multi)x(seq|par): match=%v", r.RingMatch)
	return b.String()
}

// intranodeSrc builds the wide independent-rule program: `rules`
// disjoint rules, each joining the shared tick trigger against its own
// infinite-lifetime table with a selective condition, so one tick fans
// out to `rules` strands whose footprints never conflict.
func intranodeSrc(rules int) string {
	var b strings.Builder
	for i := 0; i < rules; i++ {
		fmt.Fprintf(&b, "materialize(t%d, infinity, infinity, keys(2)).\n", i)
		fmt.Fprintf(&b, "r%d out%d@N(A, C) :- tick@N(E), t%d@N(A, B), B < 2, C := B + %d.\n",
			i, i, i, i)
	}
	return b.String()
}

// NodeFingerprint renders everything the determinism contract covers
// about one node: the metrics counters, per-query bills, the encoded
// histograms, and every live table row with its node-unique tuple ID.
// Two runs are bit-identical iff their fingerprints are byte-equal.
func NodeFingerprint(n *engine.Node, now float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "met=%+v\n", n.Metrics())
	qm := n.QueryMetrics()
	ids := make([]string, 0, len(qm))
	for id := range qm {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "query %s=%+v\n", id, qm[id])
	}
	h := n.Hists()
	fmt.Fprintf(&b, "hists=%s|%s|%s|%s\n",
		h.HopLatency.Encode(), h.StrandCost.Encode(),
		h.QueueWait.Encode(), h.QueueDepth.Encode())
	for _, name := range n.Store().Names() {
		tb := n.Store().Get(name)
		var rows []string
		tb.Scan(now, func(t tuple.Tuple) {
			rows = append(rows, fmt.Sprintf("  id=%d %s", t.ID, t.String()))
		})
		sort.Strings(rows)
		fmt.Fprintf(&b, "table %s n=%d\n", name, len(rows))
		for _, r := range rows {
			b.WriteString(r)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ringFP fingerprints a whole ring: every node plus the global watch
// stream (observation times include micro-clock bills, so any billing
// divergence shows up here) and the rule-error log.
func ringFP(r *chord.Ring) string {
	var b strings.Builder
	now := r.Sim.Now()
	for _, a := range r.Addrs {
		fmt.Fprintf(&b, "== %s\n%s", a, NodeFingerprint(r.Node(a), now))
	}
	for _, w := range r.Watched {
		fmt.Fprintf(&b, "watch t=%.9f %s %s\n", w.At, w.Node, w.T.String())
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "err %s\n", e)
	}
	return b.String()
}

// Intranode measures the intra-node parallel scheduler on a single bare
// node (no network, clock pinned at 0): a wide independent-rule program
// where each tick event fans out to `rules` conflict-free strands. It
// runs the ExecSingle baseline, sweeps ExecMulti over IntranodeWorkers,
// checks that all fingerprints are byte-identical, and composes the
// scheduler with both simnet drivers on a real Chord ring.
func Intranode(seed int64, quick bool) (*IntranodeResult, error) {
	rules, rows, ticks := 64, 400, 30
	ringN, ringFor := 9, 60.0
	if quick {
		rules, rows, ticks = 32, 200, 10
		ringN, ringFor = 5, 30.0
	}
	res := &IntranodeResult{
		Rules: rules, Rows: rows, Ticks: ticks,
		HostCores: runtime.NumCPU(),
	}
	prog, err := overlog.Parse(intranodeSrc(rules))
	if err != nil {
		return nil, err
	}

	runOne := func(mode engine.ExecMode, workers int) (string, float64, time.Duration, engine.FanoutStats, error) {
		n := engine.NewNode(engine.Config{
			Addr: "n1", Seed: seed, ExecMode: mode, Workers: workers,
		})
		if err := n.InstallProgram(prog); err != nil {
			return "", 0, 0, engine.FanoutStats{}, err
		}
		for i := 0; i < rules; i++ {
			name := fmt.Sprintf("t%d", i)
			for j := 0; j < rows; j++ {
				n.HandleLocal(tuple.New(name,
					tuple.Str("n1"), tuple.Int(int64(j)), tuple.Int(int64(j))))
			}
		}
		pre := n.Metrics().BusySeconds
		start := time.Now()
		for k := 0; k < ticks; k++ {
			n.HandleLocal(tuple.New("tick", tuple.Str("n1"), tuple.Int(int64(k))))
		}
		wall := time.Since(start)
		return NodeFingerprint(n, 0), n.Metrics().BusySeconds - pre, wall, n.FanoutStats(), nil
	}

	baseFP, busy, baseWall, _, err := runOne(engine.ExecSingle, 0)
	if err != nil {
		return nil, err
	}
	res.BusySeconds = busy
	res.SingleWall = baseWall
	res.FingerprintOK = true
	for _, w := range IntranodeWorkers {
		fp, busyW, wall, fan, err := runOne(engine.ExecMulti, w)
		if err != nil {
			return nil, err
		}
		if fp != baseFP || busyW != busy {
			res.FingerprintOK = false
		}
		p := IntranodePoint{
			Workers:   w,
			Wall:      wall,
			Committed: fan.Committed,
			Aborted:   fan.Aborted,
		}
		// Normalize by busy so the baseline and the point measure the
		// same amount of simulated work even on a fingerprint mismatch
		// (where the mismatch itself fails the run).
		p.WallSpeedup = (baseWall.Seconds() / busy) / (wall.Seconds() / busyW)
		if serial := busyW - fan.SeqSeconds + fan.ParSeconds; serial > 0 {
			p.ModelSpeedup = busyW / serial
		}
		res.Points = append(res.Points, p)
	}

	// 4-way composition check: the intra-node scheduler must be
	// invisible under both simnet drivers on a real protocol.
	combos := []struct {
		par  bool
		mode engine.ExecMode
	}{
		{false, engine.ExecSingle},
		{false, engine.ExecMulti},
		{true, engine.ExecSingle},
		{true, engine.ExecMulti},
	}
	var first string
	res.RingMatch = true
	for i, c := range combos {
		r, err := chord.NewRing(chord.RingConfig{
			N: ringN, Seed: seed,
			Parallel: c.par, Workers: 4,
			ExecMode: c.mode, NodeWorkers: 4,
		})
		if err != nil {
			return nil, err
		}
		r.Run(ringFor)
		fp := ringFP(r)
		if i == 0 {
			first = fp
		} else if fp != first {
			res.RingMatch = false
		}
	}
	return res, nil
}
