package bench

import (
	"fmt"
	"strings"

	"p2go/internal/chord"
	"p2go/internal/faults"
	"p2go/internal/metrics"
	"p2go/internal/monitor"
	"p2go/internal/overlog"
)

// churnDetectors is the §3.1 monitoring suite deployed for the churn
// experiment: active ring probes (rp1-rp3/rs1-rs3, 5 s period), the
// passive check (rp4), and the oscillation detectors (os1-os9; silent
// on the guarded Chord, deployed to prove it).
func churnDetectors() []*overlog.Program {
	return []*overlog.Program{
		monitor.RingProbeProgram(5),
		monitor.RingPassiveProgram(),
		monitor.OscillationProgram(),
	}
}

// churnAlarms are the watched predicates counted as detector alarms.
var churnAlarms = []string{
	"inconsistentPred", "inconsistentSucc",
	"oscill", "repeatOscill", "chaotic",
}

// Churn runs the PR's headline fault experiment: the 21-node ring
// converges for 5 min, three spread-out members crash at +60 s and
// rejoin (soft state lost, preamble replayed) at +120 s, with the §3.1
// detectors deployed on every node. It reports repair times and
// detection latency. The observation horizon is stretched to 480 s so
// the post-rejoin reconciliation (and the detectors' re-silencing) is
// inside the window.
func Churn(seed int64) (chord.ChurnResult, error) {
	_, res, err := chord.RunChurn(chord.ChurnConfig{
		N: Nodes, Seed: seed, Converge: ConvergeTime, End: 480,
		Parallel: Parallel, Workers: Workers,
		Detectors:  churnDetectors(),
		AlarmNames: churnAlarms,
	})
	return res, err
}

// FormatChurn renders the churn repair/detection table.
func FormatChurn(res chord.ChurnResult) string {
	return fmt.Sprintf(
		"Churn: 21-node ring, 3 nodes crash at +60s and rejoin at +120s, §3.1 detectors deployed\n%s\n",
		res)
}

// ScenarioResult is the outcome of replaying a declarative fault
// scenario (p2bench -exp scenario -scenario <file>) against the
// standard 21-node deployment.
type ScenarioResult struct {
	// Name is the scenario's declared name.
	Name string
	// Log is the injector's virtual-time record of applied faults.
	Log []faults.Applied
	// Faults are the network's fault counters.
	Faults metrics.Faults
	// RingViolations are the §3.1.1 invariant violations at the end of
	// the observation window, checked over the members the scenario
	// left alive (nodes it crashed without restarting are excluded).
	RingViolations []string
	// Sample is the measured node's standard figure sample.
	Sample Sample
}

// RunScenario converges the standard deployment, arms the scenario
// (times are interpreted relative to the end of convergence), and
// observes the standard warm+window phases.
func RunScenario(seed int64, sc faults.Scenario) (ScenarioResult, error) {
	r, err := buildRing(seed, nil)
	if err != nil {
		return ScenarioResult{}, err
	}
	inj, err := faults.Arm(r.Net, sc.Shift(r.Sim.Now()))
	if err != nil {
		return ScenarioResult{}, err
	}
	sample := measure(r, sc.Name, 0)

	// Nodes the scenario killed and never brought back are not ring
	// members at the end.
	dead := map[string]bool{}
	for _, ev := range sc.Events {
		for _, a := range ev.Nodes {
			switch ev.Kind {
			case faults.Crash:
				dead[a] = true
			case faults.Restart, faults.Rejoin:
				delete(dead, a)
			}
		}
	}
	return ScenarioResult{
		Name:           sc.Name,
		Log:            inj.Log(),
		Faults:         inj.Stats(),
		RingViolations: r.CheckRing(r.Alive(dead)),
		Sample:         sample,
	}, nil
}

// FormatScenario renders a scenario replay report.
func FormatScenario(res ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %q on the 21-node deployment\n", res.Name)
	for _, e := range res.Log {
		fmt.Fprintf(&b, "  t=%7.2f  %s\n", e.At, e.What)
	}
	fmt.Fprintf(&b, "  faults: %+v\n", res.Faults)
	if len(res.RingViolations) == 0 {
		fmt.Fprintf(&b, "  ring invariants: OK\n")
	} else {
		fmt.Fprintf(&b, "  ring invariants: %d violations\n", len(res.RingViolations))
		for _, v := range res.RingViolations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	fmt.Fprintf(&b, "  measured node: %v\n", res.Sample)
	return b.String()
}
