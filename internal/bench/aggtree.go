package bench

import (
	"fmt"
	"strings"

	"p2go/internal/chord"
	"p2go/internal/monitor"
	"p2go/internal/overlog"
	"p2go/internal/planner"
	"p2go/internal/tuple"
)

// The aggtree experiment: what in-network aggregation buys cluster-wide
// monitoring. A flat collector answering "count/sum/min/max over every
// member" receives one tuple per member per refresh — O(N) fan-in at
// one node. The tree split bounds every node's inbound monitoring
// traffic by the overlay fanout while converging to the same value,
// exactly, for the distributive aggregates. This experiment runs the
// same four cluster queries both ways at AggTreeHosts members and
// gates on:
//
//   - value equality: tree results == flat results == the closed-form
//     oracle (count == N; sum/min/max over a seeded per-host weight
//     table computed independently in Go), exact, no tolerance;
//   - fan-in: max inbound partials at any tree node <= fanout + 1,
//     versus ~N at the flat collector, at least
//     AggTreeMinFanInReduction times smaller;
//   - determinism: at AggTreeFPHosts the emissions fingerprint is
//     byte-identical across (sequential|parallel driver) within each
//     mode, and the converged results are identical across
//     (tree|flat) x (seq|par). Full-table identity across modes is not
//     a goal — routing partials along the tree necessarily consumes
//     different per-link RNG streams than flat collection;
//   - accounting: the tree's forwarding work is billed to the
//     monitoring query (interior nodes show busy-time under
//     mon:cluster:*), and per-query bills still sum to node totals.
const (
	AggTreeHosts = 1000
	// AggTreeFanout is the overlay fanout K; inbound partials per tree
	// node per refresh are gated at K+1 (the +1 absorbs a child mid-way
	// through a grandparent fallback).
	AggTreeFanout = 8
	// AggTreeMinFanInReduction is the minimum flat/tree fan-in ratio.
	AggTreeMinFanInReduction = 10.0
	// AggTreeFPHosts sizes the determinism cells.
	AggTreeFPHosts = 100
)

// AggTreeRun is one measured ring (tree or flat collection).
type AggTreeRun struct {
	Mode  string
	Hosts int
	// Count/Sum/Min/Max are the converged head values at the collector.
	Count, Sum, Min, Max float64
	// MaxFanIn is the max over nodes and cluster queries of partials
	// received from other nodes (rows in an aggPart inbox whose child
	// is not the node itself).
	MaxFanIn int
	// BilledBusy is the total BusySeconds billed to the livecount
	// query across every node — the cost of the monitoring traffic,
	// attributed to the query that caused it.
	BilledBusy float64
}

// AggTreeResult is the full experiment.
type AggTreeResult struct {
	Quick          bool
	Hosts, Fanout  int
	Period         float64
	OracleSum      float64
	OracleMin      float64
	OracleMax      float64
	Tree, Flat     AggTreeRun
	ValuesOK       bool
	FanInBound     int
	FanInOK        bool
	FanInReduction float64
	// Determinism cells.
	FPHosts         int
	TreeFPIdentical bool
	FlatFPIdentical bool
	ResultFPEqual   bool
	// AccountingErr records a violated per-query accounting invariant
	// at the collector or an interior node ("" = bills still sum).
	AccountingErr string
}

// aggTreeWeightProgram declares the static per-host weight table the
// sum/min/max queries aggregate; rows are seeded per node so the bench
// holds a closed-form oracle.
const aggTreeWeightProgram = `
materialize(hostWeight, infinity, 1, keys(1)).
`

// aggTreeWeight is host rank i's seeded weight: co-prime stride over a
// prime modulus, so min/max/sum are non-trivial and rank-determined.
func aggTreeWeight(rank int) int64 { return int64(rank*37%101 + 1) }

// aggTreeSpecs are the measured cluster queries: the member count over
// the stats publications plus sum/min/max over the seeded weights.
func aggTreeSpecs(period float64) []monitor.ClusterSpec {
	weights := []string{"hostWeight"}
	return []monitor.ClusterSpec{
		{Name: "livecount", Period: period, Root: "n1", Source: `
r1 clusterLive@M(count<*>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`},
		{Name: "wsum", Period: period, Root: "n1", Tables: weights, Source: `
r1 clusterWSum@M(sum<W>) :- hostWeight@N(W).`},
		{Name: "wmin", Period: period, Root: "n1", Tables: weights, Source: `
r1 clusterWMin@M(min<W>) :- hostWeight@N(W).`},
		{Name: "wmax", Period: period, Root: "n1", Tables: weights, Source: `
r1 clusterWMax@M(max<W>) :- hostWeight@N(W).`},
	}
}

var aggTreeHeads = map[string]string{
	"livecount": "clusterLive",
	"wsum":      "clusterWSum",
	"wmin":      "clusterWMin",
	"wmax":      "clusterWMax",
}

func aggTreeValue(r *chord.Ring, addr, tab string) (float64, bool) {
	tb := r.Node(addr).Store().Get(tab)
	if tb == nil {
		return 0, false
	}
	v, ok := 0.0, false
	tb.Scan(r.Sim.Now(), func(t tuple.Tuple) {
		f := t.Field(1)
		if f.Kind() == tuple.KindFloat {
			v = f.AsFloat()
		} else {
			v = float64(f.AsInt())
		}
		ok = true
	})
	return v, ok
}

// runAggTree deploys the four cluster queries on an h-host ring in one
// mode and measures converged values, fan-in and billing. It returns
// the run, the ring's emissions fingerprint and the converged-result
// fingerprint. accErr receives the first accounting violation.
func runAggTree(seed int64, h int, tree, parallel bool, simSecs, period float64, accErr *string) (AggTreeRun, string, string, error) {
	saved := planner.DisableAggTree
	planner.DisableAggTree = !tree
	defer func() { planner.DisableAggTree = saved }()

	run := AggTreeRun{Mode: "flat", Hosts: h}
	wantMode := monitor.ClusterFlat
	// NoChord: the bench measures the monitoring stack's own traffic and
	// exactness, so it runs on quiet hosts. At these ring sizes the Chord
	// substrate enters its distressed regime (load-delayed pings read as
	// failures → repair storm) and saturated hosts starve the monitoring
	// strands queued behind it; the tree overlay is rank-based and does
	// not need Chord.
	cfg := chord.RingConfig{
		N: h, Seed: seed, StatsPeriod: 2, NoChord: true,
		Parallel: parallel, Workers: Workers,
		ExtraPrograms: []*overlog.Program{overlog.MustParse(aggTreeWeightProgram)},
	}
	if tree {
		run.Mode = "tree"
		wantMode = monitor.ClusterTree
		cfg.Tree = &chord.TreeConfig{Fanout: AggTreeFanout, Heartbeat: 2}
	}
	r, err := chord.NewRing(cfg)
	if err != nil {
		return run, "", "", err
	}

	// Build once, shared-compile once, instantiate everywhere.
	tags := make([]string, 0, len(aggTreeHeads))
	for _, spec := range aggTreeSpecs(period) {
		q, err := monitor.BuildCluster(spec)
		if err != nil {
			return run, "", "", err
		}
		if q.Mode != wantMode {
			return run, "", "", fmt.Errorf("bench: aggtree query %s planned as %s, want %s", spec.Name, q.Mode, wantMode)
		}
		cq, err := monitor.CompileCluster(q, spec.Tables...)
		if err != nil {
			return run, "", "", err
		}
		for _, a := range r.Addrs {
			if _, err := r.Node(a).InstallCompiledQuery(q.Detector.QueryID(), cq); err != nil {
				return run, "", "", fmt.Errorf("bench: aggtree deploy %s on %s: %w", spec.Name, a, err)
			}
		}
		tags = append(tags, spec.Name)
	}
	for i, a := range r.Addrs {
		r.Node(a).SeedLocal(tuple.New("hostWeight", tuple.Str(a), tuple.Int(aggTreeWeight(i+1))))
	}
	r.Run(simSecs)
	if len(r.Errors) > 0 {
		return run, "", "", fmt.Errorf("bench: aggtree %s run raised rule errors: %s", run.Mode, r.Errors[0])
	}

	var vals [4]float64
	for i, tag := range []string{"livecount", "wsum", "wmin", "wmax"} {
		v, ok := aggTreeValue(r, "n1", aggTreeHeads[tag])
		if !ok {
			return run, "", "", fmt.Errorf("bench: aggtree %s: no %s row at the collector", run.Mode, aggTreeHeads[tag])
		}
		vals[i] = v
	}
	run.Count, run.Sum, run.Min, run.Max = vals[0], vals[1], vals[2], vals[3]

	now := r.Sim.Now()
	for _, a := range r.Addrs {
		n := r.Node(a)
		for _, tag := range tags {
			tb := n.Store().Get("aggPart_" + tag)
			if tb == nil {
				continue
			}
			recv := 0
			tb.Scan(now, func(t tuple.Tuple) {
				if t.Field(1).AsStr() != a {
					recv++
				}
			})
			if recv > run.MaxFanIn {
				run.MaxFanIn = recv
			}
		}
		run.BilledBusy += n.QueryMetrics()["mon:cluster:livecount"].BusySeconds
	}
	for _, a := range []string{"n1", "n2"} {
		if err := CheckQueryAccounting(r.Node(a)); err != nil && *accErr == "" {
			*accErr = fmt.Sprintf("%s (%s): %s", a, run.Mode, err)
		}
	}
	resultFP := fmt.Sprintf("count=%v sum=%v min=%v max=%v", vals[0], vals[1], vals[2], vals[3])
	return run, emissionsFP(r), resultFP, nil
}

// AggTree runs the experiment. quick shrinks the rings to CI smoke
// size; the gates are identical.
func AggTree(seed int64, quick bool) (*AggTreeResult, error) {
	hosts, fpHosts := AggTreeHosts, AggTreeFPHosts
	period := 3.0
	simSecs, fpSecs := 45.0, 36.0
	if quick {
		hosts, fpHosts = 150, 60
		simSecs, fpSecs = 36.0, 30.0
	}
	res := &AggTreeResult{
		Quick: quick, Hosts: hosts, Fanout: AggTreeFanout, Period: period,
		FanInBound: AggTreeFanout + 1, FPHosts: fpHosts,
	}
	res.OracleMin = float64(aggTreeWeight(1))
	res.OracleMax = res.OracleMin
	for i := 1; i <= hosts; i++ {
		w := float64(aggTreeWeight(i))
		res.OracleSum += w
		if w < res.OracleMin {
			res.OracleMin = w
		}
		if w > res.OracleMax {
			res.OracleMax = w
		}
	}

	var err error
	if res.Tree, _, _, err = runAggTree(seed, hosts, true, Parallel, simSecs, period, &res.AccountingErr); err != nil {
		return nil, err
	}
	if res.Flat, _, _, err = runAggTree(seed, hosts, false, Parallel, simSecs, period, &res.AccountingErr); err != nil {
		return nil, err
	}

	exact := func(r AggTreeRun) bool {
		return r.Count == float64(hosts) && r.Sum == res.OracleSum &&
			r.Min == res.OracleMin && r.Max == res.OracleMax
	}
	res.ValuesOK = exact(res.Tree) && exact(res.Flat)
	if res.Tree.MaxFanIn > 0 {
		res.FanInReduction = float64(res.Flat.MaxFanIn) / float64(res.Tree.MaxFanIn)
	}
	res.FanInOK = res.Tree.MaxFanIn <= res.FanInBound &&
		res.FanInReduction >= AggTreeMinFanInReduction

	// Determinism cells: (tree|flat) x (seq|par) at fpHosts.
	type cell struct {
		em, result string
	}
	cells := map[string]cell{}
	for _, c := range []struct {
		name     string
		tree     bool
		parallel bool
	}{
		{"tree/seq", true, false}, {"tree/par", true, true},
		{"flat/seq", false, false}, {"flat/par", false, true},
	} {
		_, em, result, err := runAggTree(seed, fpHosts, c.tree, c.parallel, fpSecs, period, &res.AccountingErr)
		if err != nil {
			return nil, fmt.Errorf("%s cell: %w", c.name, err)
		}
		cells[c.name] = cell{em, result}
	}
	res.TreeFPIdentical = cells["tree/seq"].em == cells["tree/par"].em
	res.FlatFPIdentical = cells["flat/seq"].em == cells["flat/par"].em
	res.ResultFPEqual = cells["tree/seq"].result == cells["tree/par"].result &&
		cells["tree/seq"].result == cells["flat/seq"].result &&
		cells["tree/seq"].result == cells["flat/par"].result
	return res, nil
}

// FormatAggTree renders the experiment table.
func FormatAggTree(res *AggTreeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Aggtree: %d-host cluster queries, tree (fanout %d) vs flat collection, refresh %gs\n",
		res.Hosts, res.Fanout, res.Period)
	fmt.Fprintf(&b, "  oracle: count=%d sum=%g min=%g max=%g\n",
		res.Hosts, res.OracleSum, res.OracleMin, res.OracleMax)
	for _, r := range []AggTreeRun{res.Tree, res.Flat} {
		fmt.Fprintf(&b, "  %-5s: count=%g sum=%g min=%g max=%g  max-fan-in=%d  billed-busy=%.4fs\n",
			r.Mode, r.Count, r.Sum, r.Min, r.Max, r.MaxFanIn, r.BilledBusy)
	}
	fmt.Fprintf(&b, "  values exact: %v\n", res.ValuesOK)
	fmt.Fprintf(&b, "  fan-in: tree %d <= bound %d, flat %d (%.0fx reduction, gate >= %.0fx): %v\n",
		res.Tree.MaxFanIn, res.FanInBound, res.Flat.MaxFanIn,
		res.FanInReduction, AggTreeMinFanInReduction, res.FanInOK)
	fmt.Fprintf(&b, "  %d-host determinism: emissions seq==par tree=%v flat=%v; results equal across modes=%v\n",
		res.FPHosts, res.TreeFPIdentical, res.FlatFPIdentical, res.ResultFPEqual)
	fmt.Fprintf(&b, "  per-query accounting: %s\n", formatAccounting(res.AccountingErr))
	return b.String()
}
