package simnet

import (
	"fmt"
	"sort"
	"testing"

	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// runScenario drives a small lossy network through injections, a crash,
// a partition, and watched tuples, and returns a full fingerprint of the
// run: per-node metrics, table contents, watch/error streams, and drop
// counts. Both drivers must produce the same fingerprint.
func runScenario(t *testing.T, mode Mode, workers int) string {
	t.Helper()
	sim := NewSim()
	var watched []string
	net := NewNetwork(sim, Config{
		Seed:     77,
		MinDelay: 0.004, MaxDelay: 0.03,
		LossProb: 0.15,
		Mode:     mode,
		Workers:  workers,
		OnWatch: func(now float64, node string, tp tuple.Tuple) {
			watched = append(watched, fmt.Sprintf("%.9f %s %v", now, node, tp))
		},
	})
	prog := overlog.MustParse(`
materialize(seen, infinity, infinity, keys(1,2)).
watch(seen).
f1 seen@N(Seq) :- token@N(Seq).
f2 token@Dst(Seq) :- send@N(Dst, Seq).
f3 send@N(Next, Seq + 1) :- token@N(Seq), peer@N(Next), Seq < 40.
materialize(peer, infinity, infinity, keys(1)).
`)
	addrs := []string{"a", "b", "c", "d"}
	for _, a := range addrs {
		n, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	// Ring of peers so tokens cascade around with random delays.
	for i, a := range addrs {
		next := addrs[(i+1)%len(addrs)]
		if err := net.Inject(a, tuple.New("peer", tuple.Str(a), tuple.Str(next))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 8; i++ {
		dst := addrs[i%int64(len(addrs))]
		err := net.Inject("a", tuple.New("send", tuple.Str("a"), tuple.Str(dst), tuple.Int(i*100)))
		if err != nil {
			t.Fatal(err)
		}
	}
	net.Run(2)
	net.Crash("c")
	net.Partition("a", "b")
	net.RunFor(2)
	net.Revive("c")
	net.Heal("a", "b")
	if err := net.InjectAt(sim.Now()+0.5, "c", tuple.New("send",
		tuple.Str("c"), tuple.Str("d"), tuple.Int(9000))); err != nil {
		t.Fatal(err)
	}
	net.RunFor(3)

	var b []string
	for _, a := range addrs {
		n := net.Node(a)
		b = append(b, fmt.Sprintf("%s metrics=%+v", a, n.Metrics()))
		var rows []string
		tb := n.Store().Get("seen")
		tb.Scan(sim.Now(), func(tp tuple.Tuple) {
			rows = append(rows, fmt.Sprintf("%v#%d", tp, tp.ID))
		})
		sort.Strings(rows)
		b = append(b, rows...)
	}
	b = append(b, fmt.Sprintf("dropped=%d now=%v", net.Dropped(), sim.Now()))
	b = append(b, watched...)
	out := ""
	for _, l := range b {
		out += l + "\n"
	}
	return out
}

// TestParallelMatchesSequential is the determinism contract at small
// scale: same seed, same virtual-time behavior, bit-identical metrics,
// tables, drops, and watch streams in both modes.
func TestParallelMatchesSequential(t *testing.T) {
	seq := runScenario(t, Sequential, 0)
	for _, workers := range []int{1, 2, 8} {
		par := runScenario(t, Parallel, workers)
		if par != seq {
			t.Fatalf("parallel(%d workers) diverged from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, seq, par)
		}
	}
}

// TestParallelUnattributedEventsBarrier: raw Sim.At events (no host
// attribution) must still run in order, acting as barriers between
// windows, without being lost or reordered.
func TestParallelUnattributedEventsBarrier(t *testing.T) {
	run := func(mode Mode) []string {
		sim := NewSim()
		net := NewNetwork(sim, Config{Seed: 3, Mode: mode, Workers: 4})
		prog := overlog.MustParse(`
materialize(seen, infinity, infinity, keys(1,2)).
f1 seen@N(Seq) :- token@N(Seq).
f2 token@Dst(Seq) :- send@N(Dst, Seq).
`)
		for _, a := range []string{"a", "b"} {
			n, err := net.AddNode(a)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.InstallProgram(prog); err != nil {
				t.Fatal(err)
			}
		}
		var log []string
		for i := 0; i < 5; i++ {
			at := 0.5 + float64(i)
			sim.At(at, func() { log = append(log, fmt.Sprintf("global@%.1f now=%.1f", at, sim.Now())) })
		}
		for i := int64(0); i < 20; i++ {
			err := net.Inject("a", tuple.New("send", tuple.Str("a"), tuple.Str("b"), tuple.Int(i)))
			if err != nil {
				t.Fatal(err)
			}
		}
		net.Run(10)
		count := 0
		net.Node("b").Store().Get("seen").Scan(sim.Now(), func(tuple.Tuple) { count++ })
		log = append(log, fmt.Sprintf("seen=%d", count))
		return log
	}
	seq, par := run(Sequential), run(Parallel)
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Fatalf("barrier events diverged:\nseq: %v\npar: %v", seq, par)
	}
}

// TestParallelZeroLookaheadFallsBack: MinDelay == 0 leaves no safe
// window; Parallel mode must degrade to the sequential loop and still
// finish correctly.
func TestParallelZeroLookaheadFallsBack(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, Config{Seed: 1, MinDelay: 0, MaxDelay: 0.01, Mode: Parallel})
	prog := overlog.MustParse(`
materialize(seen, infinity, infinity, keys(1,2)).
f1 seen@N(Seq) :- token@N(Seq).
f2 token@Dst(Seq) :- send@N(Dst, Seq).
`)
	for _, a := range []string{"a", "b"} {
		n, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		if err := net.Inject("a", tuple.New("send", tuple.Str("a"), tuple.Str("b"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(5)
	count := 0
	net.Node("b").Store().Get("seen").Scan(sim.Now(), func(tuple.Tuple) { count++ })
	if count != 10 {
		t.Fatalf("delivered %d of 10 with zero lookahead", count)
	}
}
