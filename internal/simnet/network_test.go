package simnet

import (
	"fmt"
	"testing"

	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// forwardProgram bounces a token between nodes: each hop appends nothing
// but re-sends, letting tests observe delivery order and loss.
const forwardProgram = `
materialize(seen, infinity, infinity, keys(1,2)).
f1 seen@N(Seq) :- token@N(Seq).
`

func buildPair(t *testing.T, cfg Config) (*Network, func(addr string) []int64) {
	t.Helper()
	sim := NewSim()
	net := NewNetwork(sim, cfg)
	prog := overlog.MustParse(forwardProgram + `
f2 token@Dst(Seq) :- send@N(Dst, Seq).
`)
	for _, a := range []string{"a", "b"} {
		n, err := net.AddNode(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InstallProgram(prog); err != nil {
			t.Fatal(err)
		}
	}
	seen := func(addr string) []int64 {
		var out []int64
		tb := net.Node(addr).Store().Get("seen")
		tb.Scan(sim.Now(), func(tp tuple.Tuple) {
			out = append(out, tp.Field(1).AsInt())
		})
		return out
	}
	return net, seen
}

func send(t *testing.T, net *Network, from, to string, seq int64) {
	t.Helper()
	err := net.Inject(from, tuple.New("send",
		tuple.Str(from), tuple.Str(to), tuple.Int(seq)))
	if err != nil {
		t.Fatal(err)
	}
}

// TestFIFODelivery: messages on one link arrive in send order even with
// randomized per-message delays (the §3.3 snapshot assumption).
func TestFIFODelivery(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 9, MinDelay: 0.001, MaxDelay: 0.5})
	for i := int64(0); i < 50; i++ {
		send(t, net, "a", "b", i)
	}
	net.Run(10)
	got := seen("b")
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("FIFO violated: position %d holds %d (%v)", i, v, got[:i+1])
		}
	}
}

// TestLossDropsSomeMessages: with heavy loss, deliveries shrink and the
// network counts drops.
func TestLossDropsSomeMessages(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 5, LossProb: 0.5})
	for i := int64(0); i < 100; i++ {
		send(t, net, "a", "b", i)
	}
	net.Run(10)
	got := len(seen("b"))
	if got == 0 || got == 100 {
		t.Errorf("delivered %d of 100 at 50%% loss", got)
	}
	if net.Dropped() == 0 {
		t.Error("drops not counted")
	}
}

// TestCrashStopsDelivery: messages to a crashed node are dropped; Revive
// restores delivery.
func TestCrashStopsDelivery(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 2})
	send(t, net, "a", "b", 1)
	net.RunFor(1)
	net.Crash("b")
	send(t, net, "a", "b", 2)
	net.RunFor(1)
	net.Revive("b")
	send(t, net, "a", "b", 3)
	net.RunFor(1)
	got := seen("b")
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("seen = %v, want [1 3]", got)
	}
}

// TestPartitionAndHeal: a partition blocks both directions until healed.
func TestPartitionAndHeal(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 2})
	net.Partition("a", "b")
	send(t, net, "a", "b", 1)
	net.RunFor(1)
	if len(seen("b")) != 0 {
		t.Error("partitioned message delivered")
	}
	net.Heal("a", "b")
	send(t, net, "a", "b", 2)
	net.RunFor(1)
	if got := seen("b"); len(got) != 1 || got[0] != 2 {
		t.Errorf("seen = %v", got)
	}
}

// TestBusyNodeQueuesTasks: the single-server CPU model serializes tasks;
// total busy time accumulates across queued messages.
func TestBusyNodeQueuesTasks(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 4})
	for i := int64(0); i < 200; i++ {
		send(t, net, "a", "b", i)
	}
	net.Run(30)
	if len(seen("b")) != 200 {
		t.Fatalf("delivered %d", len(seen("b")))
	}
	m := net.Node("b").Metrics()
	if m.BusySeconds <= 0 || m.MsgsRecv != 200 {
		t.Errorf("metrics = %+v", m)
	}
	total := net.TotalMetrics()
	if total.MsgsSent < 200 {
		t.Errorf("total sent = %d", total.MsgsSent)
	}
}

// TestDuplicateNodeRejected and unknown-destination behavior.
func TestAddressing(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, Config{})
	if _, err := net.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddNode("a"); err == nil {
		t.Error("duplicate AddNode must fail")
	}
	if net.Node("zzz") != nil {
		t.Error("unknown Node must be nil")
	}
	if err := net.Inject("zzz", tuple.New("x", tuple.Str("zzz"))); err == nil {
		t.Error("Inject to unknown node must fail")
	}
	if got := net.Addrs(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Addrs = %v", got)
	}
}

// TestDeterminism: identical seeds give identical traces.
func TestDeterminism(t *testing.T) {
	run := func() string {
		sim := NewSim()
		net := NewNetwork(sim, Config{Seed: 11, MinDelay: 0.01, MaxDelay: 0.2, LossProb: 0.1})
		log := ""
		p := overlog.MustParse(forwardProgram + `
f2 token@Dst(Seq) :- send@N(Dst, Seq).
`)
		for _, a := range []string{"a", "b", "c"} {
			n, _ := net.AddNode(a)
			if err := n.InstallProgram(p); err != nil {
				t.Fatal(err)
			}
		}
		for i := int64(0); i < 30; i++ {
			dst := "b"
			if i%2 == 0 {
				dst = "c"
			}
			net.Inject("a", tuple.New("send", tuple.Str("a"), tuple.Str(dst), tuple.Int(i))) //nolint:errcheck
		}
		net.Run(5)
		for _, a := range []string{"b", "c"} {
			tb := net.Node(a).Store().Get("seen")
			tb.Scan(net.Sim().Now(), func(tp tuple.Tuple) {
				log += fmt.Sprintf("%s:%v;", a, tp.Field(1).AsInt())
			})
		}
		return log
	}
	if run() != run() {
		t.Error("identical seeds must produce identical runs")
	}
}

// TestInjectAt schedules a future local delivery.
func TestInjectAt(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 3})
	if err := net.InjectAt(5, "a", tuple.New("send",
		tuple.Str("a"), tuple.Str("b"), tuple.Int(7))); err != nil {
		t.Fatal(err)
	}
	if err := net.InjectAt(2, "zzz", tuple.New("x", tuple.Str("zzz"))); err == nil {
		t.Error("InjectAt to unknown node must fail")
	}
	net.Run(4)
	if len(seen("b")) != 0 {
		t.Error("delivered before its scheduled time")
	}
	net.Run(10)
	if got := seen("b"); len(got) != 1 || got[0] != 7 {
		t.Errorf("seen = %v", got)
	}
}

// TestCrashDiscardsQueuedTasks: tasks already queued on a node are
// dropped at crash (fail-stop), and InjectAt to a down node is dropped.
func TestCrashDiscardsQueuedTasks(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 4})
	for i := int64(0); i < 50; i++ {
		send(t, net, "a", "b", i)
	}
	// Let deliveries be scheduled but crash before most are processed.
	net.RunFor(0.006)
	net.Crash("b")
	if err := net.InjectAt(net.Sim().Now()+1, "b",
		tuple.New("token", tuple.Str("b"), tuple.Int(99))); err != nil {
		t.Fatal(err)
	}
	net.RunFor(5)
	if got := len(seen("b")); got == 50 {
		t.Errorf("crash did not stop processing (saw %d)", got)
	}
	for _, v := range seen("b") {
		if v == 99 {
			t.Error("InjectAt delivered to a crashed node")
		}
	}
}
