package simnet

import (
	"math"
	"testing"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	// Same-time events run FIFO.
	s.At(2, func() { got = append(got, 20) })
	s.Run(10)
	want := []int{1, 2, 20, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 10 {
		t.Errorf("Now = %v, want 10", s.Now())
	}
}

func TestSimRunBoundary(t *testing.T) {
	s := NewSim()
	fired := 0
	s.At(5, func() { fired++ })
	s.At(5.0001, func() { fired++ })
	s.Run(5)
	if fired != 1 {
		t.Errorf("fired = %d; events at exactly the boundary run, later ones wait", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	if s.NextAt() != 5.0001 {
		t.Errorf("NextAt = %v", s.NextAt())
	}
	s.Run(6)
	if fired != 2 {
		t.Errorf("fired = %d", fired)
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	s.Run(10)
	ran := false
	s.At(3, func() { ran = true }) // in the past: clamped to now
	s.Run(10)
	if !ran {
		t.Error("past-scheduled event must run at now")
	}
}

func TestSimAfterAndNesting(t *testing.T) {
	s := NewSim()
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(2, func() { times = append(times, s.Now()) })
	})
	s.Run(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntilIdle(t *testing.T) {
	s := NewSim()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 5 {
			s.After(1, chain)
		}
	}
	s.After(1, chain)
	if done := s.RunUntilIdle(100); !done || n != 5 {
		t.Errorf("done=%v n=%d", done, n)
	}
	// A runaway chain is bounded by maxEvents.
	var forever func()
	forever = func() { s.After(1, forever) }
	s.After(1, forever)
	if done := s.RunUntilIdle(10); done {
		t.Error("unbounded chain must report not-done")
	}
	if !math.IsInf(NewSim().NextAt(), 1) {
		t.Error("empty sim NextAt must be +Inf")
	}
}
