package simnet

import (
	"sort"
	"testing"

	"p2go/internal/metrics"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// TestDroppedMessagesBillSendCPU: the sender pays for a message before
// the network decides its fate, so its CPU time and traffic counters
// are identical whether the message is delivered, eaten by loss, or
// eaten by a partition. (Regression test for the drop-path audit: the
// loss check used to short-circuit the delay draw, making lossy and
// lossless runs diverge on the sender side.)
func TestDroppedMessagesBillSendCPU(t *testing.T) {
	run := func(loss float64, partitioned bool) (metrics.Node, string) {
		net, seen := buildPair(t, Config{Seed: 77, LossProb: loss})
		if partitioned {
			net.Partition("a", "b")
		}
		for i := int64(0); i < 40; i++ {
			send(t, net, "a", "b", i)
		}
		net.Run(10)
		got := ""
		for _, v := range seen("b") {
			got += string(rune('0' + v%10))
		}
		return net.Node("a").Metrics(), got
	}
	delivered, seenAll := run(0, false)
	lost, seenNone := run(1, false)
	cut, seenCut := run(0, true)
	if len(seenAll) != 40 || seenNone != "" || seenCut != "" {
		t.Fatalf("delivery sanity: %d delivered, %q lost, %q partitioned",
			len(seenAll), seenNone, seenCut)
	}
	for _, m := range []metrics.Node{lost, cut} {
		if m.BusySeconds != delivered.BusySeconds ||
			m.MsgsSent != delivered.MsgsSent ||
			m.BytesSent != delivered.BytesSent {
			t.Errorf("sender billing diverged: delivered=%+v dropped=%+v", delivered, m)
		}
	}
}

// TestLinkFaultDrop: a targeted drop fault kills every message on its
// link and is counted separately from base loss.
func TestLinkFaultDrop(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 8})
	net.SetLinkFault("a", "b", LinkFault{DropProb: 1})
	for i := int64(0); i < 20; i++ {
		send(t, net, "a", "b", i)
	}
	net.Run(5)
	if got := len(seen("b")); got != 0 {
		t.Errorf("delivered %d messages through a 100%% drop fault", got)
	}
	ft := net.FaultTotals()
	if ft.MsgsDropped != 20 || ft.LinkFaults != 1 {
		t.Errorf("fault totals = %+v", ft)
	}
	// Clearing the fault restores the link.
	net.SetLinkFault("a", "b", LinkFault{})
	send(t, net, "a", "b", 99)
	net.RunFor(5)
	if got := seen("b"); len(got) != 1 || got[0] != 99 {
		t.Errorf("seen after clearing fault = %v", got)
	}
}

// TestLinkFaultDuplicate: duplication delivers each message twice (the
// receiver's deduplication is the application's problem, as on a real
// network).
func TestLinkFaultDuplicate(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 8})
	net.SetLinkFault("a", "b", LinkFault{DupProb: 1})
	for i := int64(0); i < 10; i++ {
		send(t, net, "a", "b", i)
	}
	net.Run(5)
	if got := len(seen("b")); got != 10 {
		t.Errorf("seen %d distinct tokens, want 10", got)
	}
	if m := net.Node("b").Metrics(); m.MsgsRecv != 20 {
		t.Errorf("receiver saw %d messages, want 20 (duplicates)", m.MsgsRecv)
	}
	if ft := net.FaultTotals(); ft.MsgsDuplicated != 10 {
		t.Errorf("fault totals = %+v", ft)
	}
}

// TestLinkFaultReorder: reordered messages escape the per-link FIFO
// clamp, so with a wide delay spread the arrival order is no longer the
// send order.
func TestLinkFaultReorder(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 8, MinDelay: 0.001, MaxDelay: 0.5})
	net.SetLinkFault("a", "b", LinkFault{ReorderProb: 1})
	for i := int64(0); i < 30; i++ {
		send(t, net, "a", "b", i)
	}
	net.Run(10)
	got := seen("b")
	if len(got) != 30 {
		t.Fatalf("delivered %d of 30", len(got))
	}
	if sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("arrival order still FIFO under a 100% reorder fault")
	}
	if ft := net.FaultTotals(); ft.MsgsReordered != 30 {
		t.Errorf("fault totals = %+v", ft)
	}
}

// TestLinkFaultDelay: extra per-link jitter postpones delivery beyond
// the network's base latency bounds.
func TestLinkFaultDelay(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 8, MinDelay: 0.001, MaxDelay: 0.002})
	net.SetLinkFault("a", "b", LinkFault{ExtraDelay: 100})
	send(t, net, "a", "b", 1)
	net.Run(1)
	if got := len(seen("b")); got != 0 {
		t.Error("delivered within base latency despite a delay fault")
	}
	net.Run(200)
	if got := seen("b"); len(got) != 1 {
		t.Errorf("delayed message never arrived: %v", got)
	}
	if ft := net.FaultTotals(); ft.MsgsDelayed != 1 {
		t.Errorf("fault totals = %+v", ft)
	}
}

// TestLinkFaultWildcard: wildcard link faults apply to every matching
// link, with exact entries taking precedence.
func TestLinkFaultWildcard(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 8})
	net.SetLinkFault("*", "*", LinkFault{DropProb: 1})
	net.SetLinkFault("a", "b", LinkFault{DupProb: 1}) // exact wins: no drop
	for i := int64(0); i < 5; i++ {
		send(t, net, "a", "b", i)
		send(t, net, "b", "a", i)
	}
	net.Run(5)
	if got := len(seen("b")); got != 5 {
		t.Errorf("exact-match link delivered %d of 5", got)
	}
	if got := len(seen("a")); got != 0 {
		t.Errorf("wildcard drop let %d messages through", got)
	}
}

// tickProgram counts 1 Hz periodic firings in a materialized table.
const tickProgram = `
materialize(ticks, infinity, infinity, keys(1,2)).
t1 ticks@N(T) :- periodic@N(E, 1), T := f_now().
`

// countTicks scans a node's tick table.
func countTicks(net *Network, addr string) int {
	n := 0
	net.Node(addr).Store().Get("ticks").Scan(net.Sim().Now(), func(tuple.Tuple) { n++ })
	return n
}

// TestCrashStopsPeriodics: a crashed node's periodic timer chains die
// with it (epoch bump), and Revive re-arms exactly one chain — ticks
// resume at the configured rate, not doubled by a surviving old chain.
func TestCrashStopsPeriodics(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, Config{Seed: 13})
	n, err := net.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallProgram(overlog.MustParse(tickProgram)); err != nil {
		t.Fatal(err)
	}
	net.Run(10.5)
	before := countTicks(net, "a")
	if before < 8 {
		t.Fatalf("only %d ticks in 10s", before)
	}
	net.Crash("a")
	net.RunFor(10)
	if got := countTicks(net, "a"); got != before {
		t.Errorf("crashed node ticked: %d -> %d", before, got)
	}
	net.Revive("a")
	net.RunFor(10)
	after := countTicks(net, "a")
	rate := after - before
	if rate < 8 || rate > 11 {
		t.Errorf("revived node ticked %d times in 10s, want ~10 (epoch guard)", rate)
	}
}

// TestRejoinLosesSoftState: Rejoin revives a node as a fresh process —
// its tables are empty (soft state lost) but its periodics run again
// and it processes new traffic.
func TestRejoinLosesSoftState(t *testing.T) {
	net, seen := buildPair(t, Config{Seed: 6})
	for i := int64(0); i < 5; i++ {
		send(t, net, "a", "b", i)
	}
	net.RunFor(1)
	if got := len(seen("b")); got != 5 {
		t.Fatalf("delivered %d of 5 before crash", got)
	}
	net.Crash("b")
	net.RunFor(1)
	net.Rejoin("b")
	net.RunFor(1)
	if got := seen("b"); len(got) != 0 {
		t.Errorf("soft state survived rejoin: %v", got)
	}
	send(t, net, "a", "b", 42)
	net.RunFor(1)
	if got := seen("b"); len(got) != 1 || got[0] != 42 {
		t.Errorf("rejoined node not processing traffic: %v", got)
	}
	if ft := net.FaultTotals(); ft.Crashes != 1 || ft.Rejoins != 1 {
		t.Errorf("fault totals = %+v", ft)
	}
}
