// Package simnet drives P2 nodes with a deterministic discrete-event
// simulation: a virtual clock, per-link FIFO message channels with
// configurable delay and loss, and a single-server CPU model per node
// (tasks queue while a node is busy, so heavy monitoring load shows up as
// superlinear CPU growth exactly as in Figures 6-7 of the paper).
//
// The paper ran 21 P2 processes over UDP on two LAN hosts; this package
// is the substitution DESIGN.md §4 documents. Per-link FIFO delivery
// preserves the ordering assumption of the Chandy-Lamport snapshots
// (§3.3).
package simnet

import (
	"container/heap"
	"math"
)

// event is one scheduled callback. host attributes the event to the
// simulated host whose state it touches (an index into Network.byIdx),
// or -1 for unattributed events; the parallel driver may only run
// host-attributed events concurrently.
type event struct {
	at   float64
	seq  uint64 // tie-break: FIFO among simultaneous events
	host int32
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event scheduler with a virtual clock in seconds.
type Sim struct {
	pq       eventHeap
	now      float64
	seq      uint64
	executed uint64
}

// NewSim creates a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t float64, fn func()) { s.at(t, -1, fn) }

// at schedules a host-attributed event (host < 0 means unattributed).
func (s *Sim) at(t float64, host int32, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, host: host, fn: fn})
}

// atBatch schedules a window's deferred events in one heap rebuild
// instead of len(defs) sifts — at 1k-10k hosts the per-window merge is
// the scheduler's hottest path. The caller guarantees the slice is in
// the canonical delivery order for simultaneous events: seq numbers are
// assigned in slice order, so (at, seq) pop order — the only order the
// simulation observes — is exactly what len(defs) individual at() calls
// would have produced. For the small batches that dominate small-ring
// convergence the per-event push is cheaper than an O(pending) rebuild,
// so batching kicks in only past a size threshold.
func (s *Sim) atBatch(defs []deferredEvent) {
	const rebuildThreshold = 32
	if len(defs) < rebuildThreshold {
		for _, d := range defs {
			s.at(d.at, d.host, d.fn)
		}
		return
	}
	for _, d := range defs {
		t := d.at
		if t < s.now {
			t = s.now
		}
		s.seq++
		s.pq = append(s.pq, event{at: t, seq: s.seq, host: d.host, fn: d.fn})
	}
	heap.Init(&s.pq)
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the earliest event; it reports false when none remain.
func (s *Sim) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	e := heap.Pop(&s.pq).(event)
	s.now = e.at
	s.executed++
	e.fn()
	return true
}

// Executed returns how many events have run since the simulation
// started — the numerator of the scale benchmark's events/sec curves.
func (s *Sim) Executed() uint64 { return s.executed }

// Run executes events until the virtual clock reaches until (events at
// exactly until still run); afterwards now == until.
func (s *Sim) Run(until float64) {
	for len(s.pq) > 0 && s.pq[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle drains every event (use with bounded workloads only).
func (s *Sim) RunUntilIdle(maxEvents int) bool {
	for i := 0; i < maxEvents; i++ {
		if !s.Step() {
			return true
		}
	}
	return false
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.pq) }

// NextAt returns the time of the earliest pending event, or +Inf.
func (s *Sim) NextAt() float64 {
	if len(s.pq) == 0 {
		return math.Inf(1)
	}
	return s.pq[0].at
}
