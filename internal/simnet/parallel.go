package simnet

// Conservative parallel discrete-event execution (windowed-lookahead
// PDES). The global event heap is consumed in time windows [T, T+L)
// where T is the earliest pending event and L = Config.MinDelay is the
// lookahead: because every message incurs at least MinDelay of latency,
// nothing sent inside a window can also arrive inside it, so the hosts
// with events in the window are causally independent and may run
// concurrently.
//
// Determinism contract (the correctness spine, cross-checked by tests in
// this package and internal/chord): for the same seed, Parallel mode
// produces exactly the per-node metrics, execution traces, drop counts,
// and final table contents of Sequential mode. The ingredients:
//
//   - Host-attributed events. Every scheduled event is tagged with the
//     host whose state it touches; a window only runs host events, and
//     each worker executes one host's events in (time, tie-order)
//     sequence — the same per-host subsequence the sequential loop
//     produces.
//   - Sender-owned link state. Delay/loss RNG streams and the FIFO
//     high-water mark live in per-(src,dst) link structs touched only by
//     the sending host's execution, and each stream is seeded from
//     (Seed, src, dst), so samples do not depend on global event
//     interleaving.
//   - Buffered cross-host effects. A worker never mutates shared state:
//     scheduling requests (message arrivals, its own future timers),
//     watch/rule-error callbacks, and drop counts are buffered per host
//     and merged at the window barrier in a canonical order — requests
//     sorted by (time, issuing host, issue order), callbacks replayed in
//     virtual-time order.
//   - In-window self events. An event a host schedules for itself
//     before the window's cutoff (CPU-free retries of the single-server
//     queue) runs inside the window, ordered after every event that was
//     already pending — exactly the tie-break the sequential scheduler's
//     monotone sequence numbers give fresh events.
//
// Events not attributed to any host (raw Sim.At calls from tests or
// harnesses) act as barriers: they run sequentially between windows, and
// a window reaching one is truncated so no host runs past it.

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"p2go/internal/tuple"
)

// windowItem is one event on a host's window agenda.
type windowItem struct {
	at  float64
	ord uint64
	fn  func()
}

// windowHeap orders a host's agenda by (time, tie-order).
type windowHeap []windowItem

func (h windowHeap) Len() int { return len(h) }
func (h windowHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].ord < h[j].ord
}
func (h windowHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *windowHeap) Push(x any)   { *h = append(*h, x.(windowItem)) }
func (h *windowHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// spawnOrdBase orders events a host schedules for itself mid-window
// after every event already pending when the window opened, matching the
// sequential scheduler where a fresh event always receives a larger
// tie-break seq than anything in the heap.
const spawnOrdBase = uint64(1) << 32

// deferredEvent is a scheduling request buffered during a window.
type deferredEvent struct {
	at     float64
	host   int32 // target host index
	fn     func()
	srcIdx int32 // issuing host (canonical merge key)
	srcOrd int   // issue order within the issuing host's window
}

type watchRec struct {
	at float64
	t  tuple.Tuple
}

type errRec struct {
	at     float64
	ruleID string
	err    error
}

// hostExec is one host's execution context for the current window.
type hostExec struct {
	h      *host
	cutoff float64 // self-scheduled events below this run in-window...
	until  float64 // ...but never past the Run horizon
	agenda windowHeap

	nextOrd  uint64 // tie-order for events popped off the global heap
	spawnOrd uint64 // tie-order for in-window self-scheduled events

	deferred []deferredEvent
	watches  []watchRec
	errors   []errRec
	maxAt    float64 // latest event time executed in this window
	execd    uint64  // events executed (mirrors the sequential Step count)
}

// schedule buffers a request issued by this host's window execution.
// Requests for the host itself that fall before the cutoff join the
// window agenda; everything else waits for the barrier merge.
func (ex *hostExec) schedule(target *host, t float64, fn func()) {
	if target == ex.h && t < ex.cutoff && t <= ex.until {
		heap.Push(&ex.agenda, windowItem{at: t, ord: spawnOrdBase + ex.spawnOrd, fn: fn})
		ex.spawnOrd++
		return
	}
	ex.deferred = append(ex.deferred, deferredEvent{
		at: t, host: target.idx, fn: fn,
		srcIdx: ex.h.idx, srcOrd: len(ex.deferred),
	})
}

// run drains the host's agenda in (time, tie-order) sequence.
func (ex *hostExec) run() {
	for len(ex.agenda) > 0 {
		it := heap.Pop(&ex.agenda).(windowItem)
		if it.at > ex.maxAt {
			ex.maxAt = it.at
		}
		ex.execd++
		it.fn()
	}
}

// getExec takes a window context off the freelist (or allocates one) so
// a steady-state parallel run reuses agenda/buffer capacity instead of
// allocating per host per window.
func (n *Network) getExec(h *host, until float64) *hostExec {
	if k := len(n.execPool); k > 0 {
		ex := n.execPool[k-1]
		n.execPool = n.execPool[:k-1]
		ex.h = h
		ex.until = until
		return ex
	}
	return &hostExec{h: h, until: until}
}

// putExec resets a window context and returns it to the freelist. The
// buffered slices keep their capacity; their contents must already have
// been consumed (deferred) or copied out (watches/errors).
func (n *Network) putExec(ex *hostExec) {
	ex.h = nil
	ex.cutoff, ex.until, ex.maxAt = 0, 0, 0
	ex.nextOrd, ex.spawnOrd, ex.execd = 0, 0, 0
	ex.agenda = ex.agenda[:0]
	ex.deferred = ex.deferred[:0]
	for i := range ex.watches {
		ex.watches[i] = watchRec{}
	}
	ex.watches = ex.watches[:0]
	for i := range ex.errors {
		ex.errors[i] = errRec{}
	}
	ex.errors = ex.errors[:0]
	n.execPool = append(n.execPool, ex)
}

// ParStats summarizes one or more parallel runs: how many windows ran,
// how many host-window executions they contained, and how many events
// executed inside them. HostWindows/Windows is the mean per-window
// concurrency available to the worker pool (the Amdahl ceiling of the
// windowed driver on this workload).
type ParStats struct {
	Windows     int64
	HostWindows int64
	Events      int64
}

// ParStats returns the accumulated parallel-driver statistics.
func (n *Network) ParStats() ParStats { return n.parStats }

// runParallel advances the simulation to absolute virtual time until
// using conservative lookahead windows. See the package comment above
// for the determinism argument.
func (n *Network) runParallel(until float64) {
	lookahead := n.cfg.MinDelay
	if lookahead <= 0 {
		// No lookahead, no safe window: degenerate to sequential.
		n.sim.Run(until)
		return
	}
	workers := n.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := n.sim
	active := n.activeBuf[:0]
	for len(s.pq) > 0 && s.pq[0].at <= until {
		if s.pq[0].host < 0 {
			// Unattributed event: a barrier between windows.
			s.Step()
			continue
		}
		cutoff := s.pq[0].at + lookahead
		active = active[:0]
		for len(s.pq) > 0 && s.pq[0].at <= until && s.pq[0].at < cutoff && s.pq[0].host >= 0 {
			e := heap.Pop(&s.pq).(event)
			h := n.byIdx[e.host]
			ex := h.exec
			if ex == nil {
				ex = n.getExec(h, until)
				h.exec = ex
				active = append(active, h)
			}
			heap.Push(&ex.agenda, windowItem{at: e.at, ord: ex.nextOrd, fn: e.fn})
			ex.nextOrd++
			n.parStats.Events++
		}
		n.parStats.Windows++
		n.parStats.HostWindows += int64(len(active))
		// An unattributed event inside the window caps how far hosts may
		// run ahead locally: anything at or after it must be merged into
		// the global heap and ordered against it.
		if len(s.pq) > 0 && s.pq[0].host < 0 && s.pq[0].at < cutoff {
			cutoff = s.pq[0].at
		}
		for _, h := range active {
			h.exec.cutoff = cutoff
		}

		if len(active) == 1 || workers == 1 {
			for _, h := range active {
				h.exec.run()
			}
		} else {
			var next atomic.Int32
			var wg sync.WaitGroup
			k := min(workers, len(active))
			wg.Add(k)
			for w := 0; w < k; w++ {
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(active) {
							return
						}
						active[i].exec.run()
					}
				}()
			}
			wg.Wait()
		}
		n.mergeWindow(active)
	}
	n.activeBuf = active[:0]
	if s.now < until {
		s.now = until
	}
}

// mergeWindow applies the buffered cross-host effects of one window in
// canonical order and clears the per-host window contexts.
func (n *Network) mergeWindow(active []*host) {
	s := n.sim
	// Advance the clock to the latest executed event. No deferred
	// request can be earlier (sends look ahead by >= MinDelay; deferred
	// self events sit at or past the cutoff), so the clamp in s.at never
	// distorts a merged event's time.
	for _, h := range active {
		if h.exec.maxAt > s.now {
			s.now = h.exec.maxAt
		}
	}
	// Merge scheduling requests, assigning tie-break seqs in the
	// canonical (time, issuing host, issue order) sequence; large
	// windows load the heap in one bulk rebuild (see Sim.atBatch).
	defs := n.defsBuf[:0]
	for _, h := range active {
		defs = append(defs, h.exec.deferred...)
		s.executed += h.exec.execd
	}
	sort.Slice(defs, func(i, j int) bool {
		if defs[i].at != defs[j].at {
			return defs[i].at < defs[j].at
		}
		if defs[i].srcIdx != defs[j].srcIdx {
			return defs[i].srcIdx < defs[j].srcIdx
		}
		return defs[i].srcOrd < defs[j].srcOrd
	})
	s.atBatch(defs)
	for i := range defs {
		defs[i] = deferredEvent{}
	}
	n.defsBuf = defs[:0]
	// Harvest buffered observer callbacks (by value), then release the
	// window contexts before invoking any user code (a callback that
	// reaches back into the network must see driver-context state), and
	// replay in virtual-time order (ties: host index, then emission
	// order).
	recs := n.recsBuf[:0]
	for _, h := range active {
		ex := h.exec
		for i, w := range ex.watches {
			recs = append(recs, callbackRec{
				at: w.at, hostIdx: h.idx, ord: i, addr: h.addr,
				isWatch: true, watch: w,
			})
		}
		for i, e := range ex.errors {
			recs = append(recs, callbackRec{
				at: e.at, hostIdx: h.idx, ord: i, addr: h.addr, err: e,
			})
		}
		h.exec = nil
		n.putExec(ex)
	}
	// Detach the scratch buffer while user callbacks run: a callback may
	// re-enter Run and recurse into mergeWindow.
	n.recsBuf = nil
	n.replayCallbacks(recs)
	for i := range recs {
		recs[i] = callbackRec{}
	}
	n.recsBuf = recs[:0]
}

type callbackRec struct {
	at      float64
	hostIdx int32
	ord     int
	addr    string
	isWatch bool
	watch   watchRec
	err     errRec
}

func (n *Network) replayCallbacks(recs []callbackRec) {
	if len(recs) == 0 {
		return
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].at != recs[j].at {
			return recs[i].at < recs[j].at
		}
		if recs[i].hostIdx != recs[j].hostIdx {
			return recs[i].hostIdx < recs[j].hostIdx
		}
		// Watches before errors at the same instant is arbitrary but
		// fixed; within one kind, emission order.
		if recs[i].isWatch != recs[j].isWatch {
			return recs[i].isWatch
		}
		return recs[i].ord < recs[j].ord
	})
	for _, r := range recs {
		if r.isWatch {
			n.cfg.OnWatch(r.watch.at, r.addr, r.watch.t)
		} else {
			n.cfg.OnRuleError(r.err.at, r.addr, r.err.ruleID, r.err.err)
		}
	}
}
