package simnet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/trace"
	"p2go/internal/tracestore"
	"p2go/internal/tuple"
)

// Mode selects the execution driver for Network.Run.
type Mode int

const (
	// Sequential executes every event on the calling goroutine in
	// global virtual-time order (the classic discrete-event loop).
	Sequential Mode = iota
	// Parallel executes independent hosts concurrently inside
	// conservative lookahead windows (see parallel.go). Virtual-time
	// behavior is identical to Sequential: same per-node metrics,
	// traces, drop counts, and final table contents for the same seed.
	Parallel
)

// Config configures a simulated network.
type Config struct {
	// Seed drives every random choice (delays, loss, node RNGs), making
	// runs reproducible.
	Seed int64
	// MinDelay and MaxDelay bound the uniformly sampled one-way message
	// latency in seconds. Defaults: 5-25 ms. MinDelay also serves as
	// the conservative lookahead of the Parallel driver: no message
	// sent inside a window of that length can also arrive in it.
	MinDelay, MaxDelay float64
	// LossProb drops each message independently with this probability.
	LossProb float64
	// SweepInterval is how often each node expires soft state; default
	// 1 s of virtual time.
	SweepInterval float64
	// Mode selects the execution driver (default Sequential).
	Mode Mode
	// Workers bounds the Parallel driver's worker pool; 0 means
	// GOMAXPROCS. Ignored in Sequential mode.
	Workers int
	// ExecMode selects each node's intra-node strand execution strategy
	// (engine.ExecAuto/ExecSingle/ExecMulti). Orthogonal to Mode: the
	// two parallelism layers compose, and results are bit-identical
	// across all four combinations.
	ExecMode engine.ExecMode
	// NodeWorkers bounds each node's intra-node worker pool; 0 means
	// GOMAXPROCS.
	NodeWorkers int
	// Tracing, when non-nil, enables execution logging on every node.
	Tracing *trace.Config
	// TraceStore, when non-nil and Enabled, gives every traced node a
	// durable append-only trace store (requires Tracing; see
	// engine.Config.TraceStore).
	TraceStore *tracestore.Config
	// OnWatch and OnRuleError hook watched tuples and rule errors; the
	// node address is prepended. In Parallel mode they are buffered
	// during a window and replayed in virtual-time order at the window
	// barrier, so implementations need not be goroutine-safe.
	OnWatch     func(now float64, node string, t tuple.Tuple)
	OnRuleError func(now float64, node string, ruleID string, err error)
}

func (c Config) withDefaults() Config {
	if c.MaxDelay == 0 {
		c.MinDelay, c.MaxDelay = 0.005, 0.025
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 1.0
	}
	return c
}

// link is the sender-owned state of one directed link: its private
// delay/loss RNG stream and the FIFO high-water mark. Only the source
// host's execution touches it, so links never need locking.
type link struct {
	rng         *rand.Rand
	lastArrival float64
}

type host struct {
	idx       int32 // position in Network.byIdx; tags this host's events
	node      *engine.Node
	addr      string
	queue     []simTask
	qhead     int // ring head: queue[:qhead] is consumed (and nil'd)
	busyUntil float64
	kickAt    float64 // time of the scheduled kick; <0 when none
	down      bool
	// now is the virtual time of the task currently (or most recently)
	// executing on this host; the node's clock reads it so that worker
	// goroutines never consult the global clock mid-window.
	now float64
	// rng staggers this host's periodic triggers. Deriving it from the
	// host address (not a shared stream) keeps draws independent of the
	// order hosts execute in.
	rng *rand.Rand
	// links holds outgoing per-destination link state.
	links map[string]*link
	// dropped counts messages this host's execution observed as lost
	// (send-side sampling/partition/dead-destination drops, plus
	// arrival-time drops at a down receiver).
	dropped int64
	// faultMsgs counts message-level fault effects (targeted drops,
	// duplication, reordering, delay jitter) this host's execution
	// applied on its outgoing links. Host-owned like dropped, so
	// parallel workers never contend on it.
	faultMsgs metrics.Faults
	// epoch counts process incarnations. Crash bumps it, orphaning
	// every timer chain armed for the previous incarnation; Revive and
	// Rejoin re-arm fresh chains. Only driver-context code writes it.
	epoch uint64
	// exec is this host's window context while a parallel window is
	// running, else nil (see parallel.go).
	exec *hostExec
}

// LinkFault is message-level fault state for one directed link (or a
// wildcard set of links): every message the link carries while the
// fault is set is independently dropped with DropProb, duplicated with
// DupProb, exempted from the per-link FIFO clamp with ReorderProb (so
// it may overtake or be overtaken), and delayed by an extra uniform
// [0, ExtraDelay) seconds when ExtraDelay > 0. All randomness comes
// from the sender-owned link RNG stream, so faulty runs stay
// bit-reproducible under both drivers.
type LinkFault struct {
	DropProb    float64
	DupProb     float64
	ReorderProb float64
	ExtraDelay  float64
}

// IsZero reports whether the fault does nothing.
func (f LinkFault) IsZero() bool { return f == LinkFault{} }

// Network connects engine nodes over the simulator.
type Network struct {
	sim   *Sim
	cfg   Config
	rng   *rand.Rand // setup-time stream (node seeds); driver context only
	hosts map[string]*host
	byIdx []*host
	// blocked holds severed directed links (partition injection).
	blocked map[[2]string]bool
	// linkFaults holds message-level fault state per directed link;
	// either endpoint may be the wildcard "*". Mutated only in driver
	// context (window barriers), read by workers inside windows — the
	// same discipline as blocked.
	linkFaults map[[2]string]LinkFault
	// faultTotals accumulates node/link fault-injection counters
	// (driver-context only; message-level counters live on hosts).
	faultTotals metrics.Faults

	// Parallel-driver scratch state (coordinator-only, never touched by
	// workers): recycled window contexts and merge buffers, plus run
	// statistics. See parallel.go.
	execPool  []*hostExec
	activeBuf []*host
	defsBuf   []deferredEvent
	recsBuf   []callbackRec
	parStats  ParStats

	// addrsCache holds the sorted address list; AddNode invalidates it,
	// so Addrs is O(copy) instead of O(n log n) between topology changes.
	addrsCache []string
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Sim, cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		sim:        sim,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		hosts:      make(map[string]*host),
		blocked:    make(map[[2]string]bool),
		linkFaults: make(map[[2]string]LinkFault),
	}
}

// Sim returns the underlying scheduler.
func (n *Network) Sim() *Sim { return n.sim }

// subSeed derives an independent RNG seed from the network seed and a
// textual key (host address, link endpoints). Derivation by key rather
// than by draw order makes every stream independent of the order hosts
// and links come into existence or execute.
func subSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64())
}

// schedule plans fn at absolute virtual time t on target's timeline.
// issuer is the host whose execution requested it (nil from driver
// context); inside a parallel window the request is buffered on the
// issuing worker and merged deterministically at the window barrier.
func (n *Network) schedule(issuer, target *host, t float64, fn func()) {
	if issuer != nil && issuer.exec != nil {
		issuer.exec.schedule(target, t, fn)
		return
	}
	n.sim.at(t, target.idx, fn)
}

// hostClock is the node-facing clock: the time of the host's current
// task when one is running ahead of the global clock (as workers do
// mid-window), else the global clock (driver context).
func (n *Network) hostClock(h *host) float64 {
	if h.now > n.sim.now {
		return h.now
	}
	return n.sim.now
}

// AddNode creates and wires a node. Programs are installed by the caller.
func (n *Network) AddNode(addr string) (*engine.Node, error) {
	if _, ok := n.hosts[addr]; ok {
		return nil, fmt.Errorf("simnet: node %s already exists", addr)
	}
	h := &host{
		idx:    int32(len(n.byIdx)),
		addr:   addr,
		kickAt: -1,
		rng:    rand.New(rand.NewSource(subSeed(n.cfg.Seed, "host", addr))),
		links:  make(map[string]*link),
	}
	cfg := engine.Config{
		Addr:       addr,
		Seed:       n.rng.Int63(),
		ExecMode:   n.cfg.ExecMode,
		Workers:    n.cfg.NodeWorkers,
		TraceStore: n.cfg.TraceStore,
		Clock:      func() float64 { return n.hostClock(h) },
		Send: func(dst string, env engine.Envelope, at float64) {
			n.deliver(h, dst, env, at)
		},
		OnNewPeriodic: func(p *engine.Periodic) { n.schedulePeriodic(h, p) },
	}
	if n.cfg.OnWatch != nil {
		cfg.OnWatch = func(now float64, t tuple.Tuple) {
			if ex := h.exec; ex != nil {
				ex.watches = append(ex.watches, watchRec{at: now, t: t})
				return
			}
			n.cfg.OnWatch(now, addr, t)
		}
	}
	if n.cfg.OnRuleError != nil {
		cfg.OnRuleError = func(now float64, ruleID string, err error) {
			if ex := h.exec; ex != nil {
				ex.errors = append(ex.errors, errRec{at: now, ruleID: ruleID, err: err})
				return
			}
			n.cfg.OnRuleError(now, addr, ruleID, err)
		}
	}
	h.node = engine.NewNode(cfg)
	if n.cfg.Tracing != nil {
		if err := h.node.EnableTracing(*n.cfg.Tracing); err != nil {
			return nil, err
		}
	}
	n.hosts[addr] = h
	n.byIdx = append(n.byIdx, h)
	n.addrsCache = nil
	// Periodic soft-state sweeps.
	var sweep func(at float64)
	sweep = func(at float64) {
		if !h.down {
			n.enqueue(h, h.node.Sweep, at)
		}
		next := at + n.cfg.SweepInterval
		n.schedule(h, h, next, func() { sweep(next) })
	}
	first := n.sim.Now() + n.cfg.SweepInterval
	n.schedule(nil, h, first, func() { sweep(first) })
	return h.node, nil
}

// Node returns a node by address, or nil.
func (n *Network) Node(addr string) *engine.Node {
	if h, ok := n.hosts[addr]; ok {
		return h.node
	}
	return nil
}

// Addrs returns all node addresses, sorted. The caller owns the
// returned slice; the sorted order is cached between AddNode calls.
func (n *Network) Addrs() []string {
	if n.addrsCache == nil {
		cache := make([]string, 0, len(n.byIdx))
		for _, h := range n.byIdx {
			cache = append(cache, h.addr)
		}
		sort.Strings(cache)
		n.addrsCache = cache
	}
	out := make([]string, len(n.addrsCache))
	copy(out, n.addrsCache)
	return out
}

// Dropped reports messages lost to sampling, partitions, or dead nodes,
// summed over the per-host counters (each host owns its counter so
// parallel workers never contend on it).
func (n *Network) Dropped() int64 {
	var total int64
	for _, h := range n.byIdx {
		total += h.dropped
	}
	return total
}

// outLink returns (creating on first use) src's link state toward dst.
func (n *Network) outLink(src *host, dst string) *link {
	lk := src.links[dst]
	if lk == nil {
		lk = &link{rng: rand.New(rand.NewSource(subSeed(n.cfg.Seed, "link", src.addr, dst)))}
		src.links[dst] = lk
	}
	return lk
}

// linkFault resolves the fault state for the directed link src->dst:
// the most specific matching entry wins (exact, then src->*, then
// *->dst, then *->*). Returns the zero fault when none matches.
func (n *Network) linkFault(src, dst string) LinkFault {
	if len(n.linkFaults) == 0 {
		return LinkFault{}
	}
	for _, key := range [4][2]string{{src, dst}, {src, "*"}, {"*", dst}, {"*", "*"}} {
		if f, ok := n.linkFaults[key]; ok {
			return f
		}
	}
	return LinkFault{}
}

// SetLinkFault installs (or replaces) message-level fault state on the
// directed link src->dst; either endpoint may be "*". A zero fault
// clears the entry. Must be called from driver context (between Run
// calls, or from an unattributed scheduled event — fault injections act
// as window barriers under the parallel driver).
func (n *Network) SetLinkFault(src, dst string, f LinkFault) {
	n.faultTotals.LinkFaults++
	if f.IsZero() {
		delete(n.linkFaults, [2]string{src, dst})
		return
	}
	n.linkFaults[[2]string{src, dst}] = f
}

// GetLinkFault returns the fault entry stored for exactly src->dst
// (no wildcard resolution), for read-modify-write updates.
func (n *Network) GetLinkFault(src, dst string) LinkFault {
	return n.linkFaults[[2]string{src, dst}]
}

// deliver routes one message; called from inside src's task execution.
//
// Drop-path discipline: the sender's CPU cost for a message (the
// marshal in the engine's send postamble) is billed BEFORE deliver
// runs, so dropped and delivered messages cost the sender exactly the
// same simulated CPU. The delay sample is likewise drawn before any
// probabilistic drop decision, so a dropped message consumes the same
// link-RNG draws as a delivered one and loss never skews the delays of
// later messages on the link. TestDroppedMessagesBillSendCPU locks
// both properties. (Messages to dead, unknown, or partitioned
// destinations short-circuit before touching the link stream — the
// sender's OS would fail those sends without network activity.)
func (n *Network) deliver(src *host, dst string, env engine.Envelope, at float64) {
	h, ok := n.hosts[dst]
	if !ok || h.down || n.blocked[[2]string{src.addr, dst}] {
		src.dropped++
		return
	}
	lk := n.outLink(src, dst)
	delay := n.cfg.MinDelay + lk.rng.Float64()*(n.cfg.MaxDelay-n.cfg.MinDelay)
	if n.cfg.LossProb > 0 && lk.rng.Float64() < n.cfg.LossProb {
		src.dropped++
		return
	}
	fault := n.linkFault(src.addr, dst)
	copies := 1
	reordered := false
	if !fault.IsZero() {
		// Fixed draw order keeps faulty runs bit-reproducible: drop,
		// jitter, duplicate, reorder.
		if fault.DropProb > 0 && lk.rng.Float64() < fault.DropProb {
			src.dropped++
			src.faultMsgs.MsgsDropped++
			return
		}
		if fault.ExtraDelay > 0 {
			delay += fault.ExtraDelay * lk.rng.Float64()
			src.faultMsgs.MsgsDelayed++
		}
		if fault.DupProb > 0 && lk.rng.Float64() < fault.DupProb {
			copies = 2
			src.faultMsgs.MsgsDuplicated++
		}
		if fault.ReorderProb > 0 && lk.rng.Float64() < fault.ReorderProb {
			reordered = true
			src.faultMsgs.MsgsReordered++
		}
	}
	for c := 0; c < copies; c++ {
		if c == 1 {
			// The duplicate is an independent network artifact: it takes
			// its own delay (and jitter) draws.
			delay = n.cfg.MinDelay + lk.rng.Float64()*(n.cfg.MaxDelay-n.cfg.MinDelay)
			if fault.ExtraDelay > 0 {
				delay += fault.ExtraDelay * lk.rng.Float64()
			}
		}
		arrival := at + delay
		if reordered {
			// Off the books: no FIFO clamp and no high-water-mark
			// update, so this message may overtake its predecessors or
			// be overtaken by its successors on the link.
		} else {
			if arrival <= lk.lastArrival {
				arrival = lk.lastArrival + 1e-9 // FIFO per link
			}
			lk.lastArrival = arrival
		}
		arr := arrival
		sent := at
		n.schedule(src, h, arr, func() {
			if h.down {
				h.dropped++
				return
			}
			// The receiver observes the hop as the message lands: pure
			// receiver-owned measurement, safe under the parallel driver
			// and invisible to billing and determinism.
			h.node.ObserveHop(arr - sent)
			n.enqueue(h, func() float64 { return h.node.HandleMessage(env) }, arr)
		})
	}
}

// simTask is one queued CPU task plus the virtual time it entered the
// queue, so task start can observe how long it waited (QueueWait).
type simTask struct {
	run func() float64
	at  float64
}

// enqueue adds a CPU task to the host's run queue and kicks the server.
// now is the virtual time of the stimulus (the executing event's time).
func (n *Network) enqueue(h *host, task func() float64, now float64) {
	h.queue = append(h.queue, simTask{run: task, at: now})
	n.kick(h, now)
}

// takeTask pops the queue head. Consumed slots are nil'd and reclaimed
// (head index plus compaction) rather than re-sliced away — a plain
// h.queue = h.queue[1:] would pin every processed task closure in the
// backing array for the host's lifetime.
func (h *host) takeTask() simTask {
	task := h.queue[h.qhead]
	h.queue[h.qhead] = simTask{}
	h.qhead++
	if h.qhead == len(h.queue) {
		h.queue = h.queue[:0]
		h.qhead = 0
	} else if h.qhead >= 64 && h.qhead*2 >= len(h.queue) {
		m := copy(h.queue, h.queue[h.qhead:])
		h.queue = h.queue[:m]
		h.qhead = 0
	}
	return task
}

func (h *host) clearQueue() {
	h.queue = nil
	h.qhead = 0
}

// kick runs queued tasks if the host CPU is free, else schedules a retry
// at busyUntil. The node is a single-server queue: task start time is
// max(now, busyUntil), and each task's simulated cost extends busyUntil.
func (n *Network) kick(h *host, now float64) {
	if h.busyUntil > now {
		if h.kickAt < 0 || h.kickAt > h.busyUntil {
			h.kickAt = h.busyUntil
			at := h.busyUntil
			n.schedule(h, h, at, func() {
				h.kickAt = -1
				n.kick(h, at)
			})
		}
		return
	}
	h.now = now
	for h.qhead < len(h.queue) {
		if h.down {
			h.clearQueue()
			return
		}
		depth := len(h.queue) - h.qhead
		task := h.takeTask()
		// Queue-wait/depth observation at task start. Pure measurement:
		// no billing, no RNG draws, no event-order effect.
		wait := now - task.at
		if wait < 0 {
			wait = 0
		}
		h.node.ObserveQueueWait(wait, depth)
		cost := task.run()
		h.busyUntil = now + cost
		if h.busyUntil > now && h.qhead < len(h.queue) {
			// Still busy: resume when the CPU frees up.
			n.kick(h, now)
			return
		}
	}
}

// schedulePeriodic arms a periodic trigger with a random initial phase
// (staggering, as independent processes would naturally have). The phase
// draw comes from the host's own RNG stream so it does not depend on
// what other hosts are doing. The chain is bound to the host's current
// incarnation: a crash bumps the epoch, so chains armed before it die
// at their next firing and a revived host re-arms fresh ones.
func (n *Network) schedulePeriodic(h *host, p *engine.Periodic) {
	epoch := h.epoch
	first := n.hostClock(h) + p.Period()*(0.05+0.95*h.rng.Float64())
	var fire func(at float64)
	fire = func(at float64) {
		if h.down || h.epoch != epoch || p.Done() {
			return
		}
		n.enqueue(h, func() float64 { return h.node.HandleTimer(p) }, at)
		next := at + p.Period()
		n.schedule(h, h, next, func() { fire(next) })
	}
	n.schedule(h, h, first, func() { fire(first) })
}

// rearmPeriodics arms a fresh timer chain for every live periodic
// trigger of a revived host (the old chains died with the previous
// incarnation's epoch). Fresh stagger draws come from the host's own
// RNG stream, exactly as at install time.
func (n *Network) rearmPeriodics(h *host) {
	for _, p := range h.node.Periodics() {
		if !p.Done() {
			n.schedulePeriodic(h, p)
		}
	}
}

// Inject delivers a tuple to a node as a local event at the current time.
func (n *Network) Inject(addr string, t tuple.Tuple) error {
	h, ok := n.hosts[addr]
	if !ok {
		return fmt.Errorf("simnet: no node %s", addr)
	}
	n.enqueue(h, func() float64 { return h.node.HandleLocal(t) }, n.sim.Now())
	return nil
}

// InjectAt schedules a local tuple delivery at absolute virtual time at.
func (n *Network) InjectAt(at float64, addr string, t tuple.Tuple) error {
	h, ok := n.hosts[addr]
	if !ok {
		return fmt.Errorf("simnet: no node %s", addr)
	}
	if at < n.sim.Now() {
		at = n.sim.Now()
	}
	n.schedule(nil, h, at, func() {
		if !h.down {
			n.enqueue(h, func() float64 { return h.node.HandleLocal(t) }, at)
		}
	})
	return nil
}

// Crash fail-stops a node: pending tasks are discarded, future messages
// are dropped, and every timer chain is orphaned (the epoch bump kills
// it at its next firing). Must be called from driver context.
func (n *Network) Crash(addr string) {
	if h, ok := n.hosts[addr]; ok && !h.down {
		n.faultTotals.Crashes++
		h.down = true
		h.epoch++
		h.clearQueue()
		h.busyUntil = n.sim.Now() // CPU work in flight dies with the process
	}
}

// Revive brings a crashed node back with its state intact (a
// restart-with-disk model; Rejoin models soft-state loss) and re-arms
// its periodic timers. Must be called from driver context.
func (n *Network) Revive(addr string) {
	if h, ok := n.hosts[addr]; ok && h.down {
		n.faultTotals.Restarts++
		h.down = false
		n.rearmPeriodics(h)
	}
}

// Rejoin brings a crashed node back as a fresh process: its soft state
// is gone (no delete events fire — the state of a dead process simply
// vanishes), the engine replays the node's preamble so it bootstraps
// exactly as it did at install time, and periodic timers are re-armed.
// Must be called from driver context; the faults injector schedules it
// as a window barrier, so both drivers execute it identically.
func (n *Network) Rejoin(addr string) {
	if h, ok := n.hosts[addr]; ok && h.down {
		n.faultTotals.Rejoins++
		h.down = false
		n.enqueue(h, h.node.Rejoin, n.sim.Now())
		n.rearmPeriodics(h)
	}
}

// Partition severs both directions between a and b; Heal restores them.
func (n *Network) Partition(a, b string) {
	n.faultTotals.Partitions++
	n.blocked[[2]string{a, b}] = true
	n.blocked[[2]string{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b string) {
	n.faultTotals.Heals++
	delete(n.blocked, [2]string{a, b})
	delete(n.blocked, [2]string{b, a})
}

// FaultTotals returns the accumulated fault-injection counters:
// node/link lifecycle events plus the message-level effects summed over
// the per-host counters (in node-creation order, like TotalMetrics).
// The Injected field stays zero here; the faults injector fills it.
func (n *Network) FaultTotals() metrics.Faults {
	total := n.faultTotals
	for _, h := range n.byIdx {
		total.Add(h.faultMsgs)
	}
	return total
}

// Run advances the simulation to absolute virtual time t using the
// configured driver.
func (n *Network) Run(t float64) {
	if n.cfg.Mode == Parallel {
		n.runParallel(t)
		return
	}
	n.sim.Run(t)
}

// RunFor advances the simulation by d seconds.
func (n *Network) RunFor(d float64) { n.Run(n.sim.Now() + d) }

// TotalMetrics sums node counters across the network in node-creation
// order (a fixed order keeps the floating-point sum reproducible).
func (n *Network) TotalMetrics() metrics.Node {
	var total metrics.Node
	for _, h := range n.byIdx {
		m := h.node.Metrics()
		total.BusySeconds += m.BusySeconds
		total.MsgsSent += m.MsgsSent
		total.MsgsRecv += m.MsgsRecv
		total.BytesSent += m.BytesSent
		total.BytesRecv += m.BytesRecv
		total.TuplesProcessed += m.TuplesProcessed
		total.RuleFires += m.RuleFires
		total.HeadsEmitted += m.HeadsEmitted
		total.RuleErrors += m.RuleErrors
		total.TimerFires += m.TimerFires
	}
	return total
}
