package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"p2go/internal/engine"
	"p2go/internal/metrics"
	"p2go/internal/trace"
	"p2go/internal/tuple"
)

// Config configures a simulated network.
type Config struct {
	// Seed drives every random choice (delays, loss, node RNGs), making
	// runs reproducible.
	Seed int64
	// MinDelay and MaxDelay bound the uniformly sampled one-way message
	// latency in seconds. Defaults: 5-25 ms.
	MinDelay, MaxDelay float64
	// LossProb drops each message independently with this probability.
	LossProb float64
	// SweepInterval is how often each node expires soft state; default
	// 1 s of virtual time.
	SweepInterval float64
	// Tracing, when non-nil, enables execution logging on every node.
	Tracing *trace.Config
	// OnWatch and OnRuleError hook watched tuples and rule errors; the
	// node address is prepended.
	OnWatch     func(now float64, node string, t tuple.Tuple)
	OnRuleError func(now float64, node string, ruleID string, err error)
}

func (c Config) withDefaults() Config {
	if c.MaxDelay == 0 {
		c.MinDelay, c.MaxDelay = 0.005, 0.025
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 1.0
	}
	return c
}

type host struct {
	node      *engine.Node
	addr      string
	queue     []func() float64
	busyUntil float64
	kickAt    float64 // time of the scheduled kick; <0 when none
	down      bool
}

// Network connects engine nodes over the simulator.
type Network struct {
	sim   *Sim
	cfg   Config
	rng   *rand.Rand
	hosts map[string]*host
	// lastArrival enforces per-link FIFO delivery.
	lastArrival map[[2]string]float64
	// blocked holds severed directed links (partition injection).
	blocked map[[2]string]bool
	// Dropped counts messages lost to sampling, partitions, or dead
	// nodes.
	Dropped int64
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Sim, cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		sim:         sim,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		hosts:       make(map[string]*host),
		lastArrival: make(map[[2]string]float64),
		blocked:     make(map[[2]string]bool),
	}
}

// Sim returns the underlying scheduler.
func (n *Network) Sim() *Sim { return n.sim }

// AddNode creates and wires a node. Programs are installed by the caller.
func (n *Network) AddNode(addr string) (*engine.Node, error) {
	if _, ok := n.hosts[addr]; ok {
		return nil, fmt.Errorf("simnet: node %s already exists", addr)
	}
	h := &host{addr: addr, kickAt: -1}
	cfg := engine.Config{
		Addr:  addr,
		Seed:  n.rng.Int63(),
		Clock: n.sim.Now,
		Send: func(dst string, env engine.Envelope, at float64) {
			n.deliver(addr, dst, env, at)
		},
		OnNewPeriodic: func(p *engine.Periodic) { n.schedulePeriodic(h, p) },
	}
	if n.cfg.OnWatch != nil {
		cfg.OnWatch = func(now float64, t tuple.Tuple) { n.cfg.OnWatch(now, addr, t) }
	}
	if n.cfg.OnRuleError != nil {
		cfg.OnRuleError = func(now float64, ruleID string, err error) {
			n.cfg.OnRuleError(now, addr, ruleID, err)
		}
	}
	h.node = engine.NewNode(cfg)
	if n.cfg.Tracing != nil {
		if err := h.node.EnableTracing(*n.cfg.Tracing); err != nil {
			return nil, err
		}
	}
	n.hosts[addr] = h
	// Periodic soft-state sweeps.
	var sweep func()
	sweep = func() {
		if !h.down {
			n.enqueue(h, h.node.Sweep)
		}
		n.sim.After(n.cfg.SweepInterval, sweep)
	}
	n.sim.After(n.cfg.SweepInterval, sweep)
	return h.node, nil
}

// Node returns a node by address, or nil.
func (n *Network) Node(addr string) *engine.Node {
	if h, ok := n.hosts[addr]; ok {
		return h.node
	}
	return nil
}

// Addrs returns all node addresses, sorted.
func (n *Network) Addrs() []string {
	out := make([]string, 0, len(n.hosts))
	for a := range n.hosts {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// deliver routes one message; called from inside node task execution.
func (n *Network) deliver(src, dst string, env engine.Envelope, at float64) {
	h, ok := n.hosts[dst]
	if !ok || h.down || n.blocked[[2]string{src, dst}] {
		n.Dropped++
		return
	}
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.Dropped++
		return
	}
	delay := n.cfg.MinDelay + n.rng.Float64()*(n.cfg.MaxDelay-n.cfg.MinDelay)
	arrival := at + delay
	link := [2]string{src, dst}
	if last := n.lastArrival[link]; arrival <= last {
		arrival = last + 1e-9 // FIFO per link
	}
	n.lastArrival[link] = arrival
	n.sim.At(arrival, func() {
		if h.down {
			n.Dropped++
			return
		}
		n.enqueue(h, func() float64 { return h.node.HandleMessage(env) })
	})
}

// enqueue adds a CPU task to the host's run queue and kicks the server.
func (n *Network) enqueue(h *host, task func() float64) {
	h.queue = append(h.queue, task)
	n.kick(h)
}

// kick runs queued tasks if the host CPU is free, else schedules a retry
// at busyUntil. The node is a single-server queue: task start time is
// max(now, busyUntil), and each task's simulated cost extends busyUntil.
func (n *Network) kick(h *host) {
	now := n.sim.Now()
	if h.busyUntil > now {
		if h.kickAt < 0 || h.kickAt > h.busyUntil {
			h.kickAt = h.busyUntil
			n.sim.At(h.busyUntil, func() {
				h.kickAt = -1
				n.kick(h)
			})
		}
		return
	}
	for len(h.queue) > 0 {
		if h.down {
			h.queue = nil
			return
		}
		task := h.queue[0]
		h.queue = h.queue[1:]
		cost := task()
		h.busyUntil = n.sim.Now() + cost
		if h.busyUntil > n.sim.Now() && len(h.queue) > 0 {
			// Still busy: resume when the CPU frees up.
			n.kick(h)
			return
		}
	}
}

// schedulePeriodic arms a periodic trigger with a random initial phase
// (staggering, as independent processes would naturally have).
func (n *Network) schedulePeriodic(h *host, p *engine.Periodic) {
	first := n.sim.Now() + p.Period()*(0.05+0.95*n.rng.Float64())
	var fire func()
	at := first
	fire = func() {
		if h.down || p.Done() {
			return
		}
		n.enqueue(h, func() float64 { return h.node.HandleTimer(p) })
		at += p.Period()
		n.sim.At(at, fire)
	}
	n.sim.At(at, fire)
}

// Inject delivers a tuple to a node as a local event at the current time.
func (n *Network) Inject(addr string, t tuple.Tuple) error {
	h, ok := n.hosts[addr]
	if !ok {
		return fmt.Errorf("simnet: no node %s", addr)
	}
	n.enqueue(h, func() float64 { return h.node.HandleLocal(t) })
	return nil
}

// InjectAt schedules a local tuple delivery at absolute virtual time at.
func (n *Network) InjectAt(at float64, addr string, t tuple.Tuple) error {
	h, ok := n.hosts[addr]
	if !ok {
		return fmt.Errorf("simnet: no node %s", addr)
	}
	n.sim.At(at, func() {
		if !h.down {
			n.enqueue(h, func() float64 { return h.node.HandleLocal(t) })
		}
	})
	return nil
}

// Crash fail-stops a node: pending tasks are discarded, future messages
// and timers are dropped.
func (n *Network) Crash(addr string) {
	if h, ok := n.hosts[addr]; ok {
		h.down = true
		h.queue = nil
	}
}

// Revive brings a crashed node back (state intact — a restart-with-disk
// model; tests that need amnesia create a fresh node instead).
func (n *Network) Revive(addr string) {
	if h, ok := n.hosts[addr]; ok {
		h.down = false
	}
}

// Partition severs both directions between a and b; Heal restores them.
func (n *Network) Partition(a, b string) {
	n.blocked[[2]string{a, b}] = true
	n.blocked[[2]string{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b string) {
	delete(n.blocked, [2]string{a, b})
	delete(n.blocked, [2]string{b, a})
}

// Run advances the simulation to absolute virtual time t.
func (n *Network) Run(t float64) { n.sim.Run(t) }

// RunFor advances the simulation by d seconds.
func (n *Network) RunFor(d float64) { n.sim.Run(n.sim.Now() + d) }

// TotalMetrics sums node counters across the network.
func (n *Network) TotalMetrics() metrics.Node {
	var total metrics.Node
	for _, h := range n.hosts {
		m := h.node.Metrics()
		total.BusySeconds += m.BusySeconds
		total.MsgsSent += m.MsgsSent
		total.MsgsRecv += m.MsgsRecv
		total.BytesSent += m.BytesSent
		total.BytesRecv += m.BytesRecv
		total.TuplesProcessed += m.TuplesProcessed
		total.RuleFires += m.RuleFires
		total.HeadsEmitted += m.HeadsEmitted
		total.RuleErrors += m.RuleErrors
		total.TimerFires += m.TimerFires
	}
	return total
}
