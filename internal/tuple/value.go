// Package tuple implements the relational data model underlying the P2
// engine: dynamically typed values, immutable named tuples, node-unique
// tuple IDs, and a compact binary codec used by the network postamble.
//
// Tuples represent both soft state (rows in materialized tables) and
// messages between nodes. By convention the first field of every tuple is
// its location specifier: the address of the node where the tuple lives or
// must be delivered (written pred@NAddr(...) in OverLog).
package tuple

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types an OverLog value can take.
type Kind uint8

const (
	// KindNil is the zero Value; it unifies with nothing and marks
	// unbound variable slots inside the dataflow.
	KindNil Kind = iota
	// KindInt is a signed 64-bit integer.
	KindInt
	// KindID is an unsigned 64-bit identifier on the Chord ring; ring
	// arithmetic (wraparound subtraction, interval membership) applies.
	KindID
	// KindFloat is a 64-bit float. Timestamps (f_now) are floats in
	// seconds.
	KindFloat
	// KindStr is a UTF-8 string. Node addresses are strings.
	KindStr
	// KindBool is a boolean.
	KindBool
	// KindList is an ordered list of values (used e.g. for paths).
	KindList
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindID:
		return "id"
	case KindFloat:
		return "float"
	case KindStr:
		return "str"
	case KindBool:
		return "bool"
	case KindList:
		return "list"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed OverLog value. The zero Value is nil.
// Values are immutable; all operations return new Values.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, uint64 ID, float64 bits, or bool (0/1)
	str  string
	list []Value
}

// Nil is the nil value.
var Nil = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// ID returns a ring-identifier value.
func ID(v uint64) Value { return Value{kind: KindID, num: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindStr, str: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// List returns a list value holding the given elements. The slice is not
// copied; callers must not mutate it afterwards.
func List(elems ...Value) Value { return Value{kind: KindList, list: elems} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether v is the nil value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsInt returns the integer payload; valid only for KindInt.
func (v Value) AsInt() int64 { return int64(v.num) }

// AsID returns the identifier payload; valid only for KindID.
func (v Value) AsID() uint64 { return v.num }

// AsFloat returns the float payload; valid only for KindFloat.
func (v Value) AsFloat() float64 { return math.Float64frombits(v.num) }

// AsStr returns the string payload; valid only for KindStr.
func (v Value) AsStr() string { return v.str }

// AsBool returns the boolean payload; valid only for KindBool.
func (v Value) AsBool() bool { return v.num != 0 }

// AsList returns the list payload; valid only for KindList. Callers must
// not mutate the returned slice.
func (v Value) AsList() []Value { return v.list }

// Numeric reports whether v is int, ID, or float.
func (v Value) Numeric() bool {
	return v.kind == KindInt || v.kind == KindID || v.kind == KindFloat
}

// toFloat converts any numeric value to float64.
func (v Value) toFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num))
	case KindID:
		return float64(v.num)
	case KindFloat:
		return math.Float64frombits(v.num)
	}
	return math.NaN()
}

// Equal reports deep equality between two values. Numeric values of
// different kinds compare by numeric value (so Int(3) equals ID(3)), which
// matches OverLog's dynamically typed comparison semantics.
func (v Value) Equal(o Value) bool {
	if v.Numeric() && o.Numeric() {
		if v.kind == KindFloat || o.kind == KindFloat {
			return v.toFloat() == o.toFloat()
		}
		// int vs id: compare as the unsigned bit pattern only when
		// both are non-negative ints or ids.
		if v.kind == KindInt && int64(v.num) < 0 && o.kind == KindID {
			return false
		}
		if o.kind == KindInt && int64(o.num) < 0 && v.kind == KindID {
			return false
		}
		return v.num == o.num
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindStr:
		return v.str == o.str
	case KindBool:
		return v.num == o.num
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	}
	return v.num == o.num
}

// Compare orders two values: negative if v < o, zero if equal, positive if
// v > o. Values of different kinds order by kind; numerics order by value.
func (v Value) Compare(o Value) int {
	if v.Numeric() && o.Numeric() {
		if v.kind == KindID && o.kind == KindID {
			switch {
			case v.num < o.num:
				return -1
			case v.num > o.num:
				return 1
			}
			return 0
		}
		a, b := v.toFloat(), o.toFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindStr:
		return strings.Compare(v.str, o.str)
	case KindBool:
		return int(v.num) - int(o.num)
	case KindList:
		for i := 0; i < len(v.list) && i < len(o.list); i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		return len(v.list) - len(o.list)
	}
	return 0
}

// Hash returns a 64-bit FNV-1a hash of the value, consistent with Equal
// for same-kind values.
func (v Value) Hash() uint64 {
	return v.hashFold(FnvOffset64)
}

// FNV-1a 64-bit parameters. Hashing is a pure fold over these (no
// hash.Hash64 allocation): index probes and aggregate grouping keys sit
// on the engine's hot path. The byte stream matches hash/fnv exactly.
const (
	FnvOffset64        = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func (v Value) hashFold(h uint64) uint64 {
	switch v.kind {
	case KindStr:
		h = fnvByte(h, byte(v.kind))
		h = fnvString(h, v.str)
	case KindList:
		h = fnvByte(h, byte(v.kind))
		for _, e := range v.list {
			h = e.hashFold(h)
		}
	default:
		k := byte(v.kind)
		n := v.num
		// Normalize numerics so Equal values hash equally.
		if v.kind == KindFloat {
			f := v.toFloat()
			if f == math.Trunc(f) && f >= 0 && f < 1e18 {
				n = uint64(f)
				k = byte(KindID)
			}
		} else if v.kind == KindInt && int64(v.num) >= 0 {
			k = byte(KindID)
		}
		h = fnvByte(h, k)
		for i := 0; i < 8; i++ {
			h = fnvByte(h, byte(n>>(8*i)))
		}
	}
	return h
}

// String renders the value in OverLog literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindID:
		// Hex literals parse back as ring IDs, so this round-trips.
		return "0x" + strconv.FormatUint(v.num, 16)
	case KindFloat:
		return strconv.FormatFloat(v.toFloat(), 'g', -1, 64)
	case KindStr:
		return strconv.Quote(v.str)
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// Add implements OverLog "+": numeric addition, string concatenation when
// either operand is a string (non-strings are stringified), and list
// concatenation when either operand is a list.
func Add(a, b Value) (Value, error) {
	switch {
	case a.kind == KindList || b.kind == KindList:
		var out []Value
		if a.kind == KindList {
			out = append(out, a.list...)
		} else {
			out = append(out, a)
		}
		if b.kind == KindList {
			out = append(out, b.list...)
		} else {
			out = append(out, b)
		}
		return List(out...), nil
	case a.kind == KindStr || b.kind == KindStr:
		return Str(a.plain() + b.plain()), nil
	case a.kind == KindID || b.kind == KindID:
		return ID(a.asRing() + b.asRing()), nil
	case a.kind == KindFloat || b.kind == KindFloat:
		return Float(a.toFloat() + b.toFloat()), nil
	case a.kind == KindInt && b.kind == KindInt:
		return Int(int64(a.num) + int64(b.num)), nil
	}
	return Nil, fmt.Errorf("cannot add %s and %s", a.kind, b.kind)
}

// plain renders the value without quoting, for string concatenation.
func (v Value) plain() string {
	if v.kind == KindStr {
		return v.str
	}
	return v.String()
}

// asRing converts a numeric value to ring (uint64, wrapping) arithmetic.
func (v Value) asRing() uint64 {
	switch v.kind {
	case KindID:
		return v.num
	case KindInt:
		return uint64(int64(v.num))
	case KindFloat:
		return uint64(v.toFloat())
	}
	return 0
}

// Sub implements OverLog "-". On IDs it is modular ring subtraction, the
// operation Chord's distance computations (K - FID - 1) rely on.
func Sub(a, b Value) (Value, error) {
	switch {
	case a.kind == KindID || b.kind == KindID:
		return ID(a.asRing() - b.asRing()), nil
	case a.kind == KindFloat || b.kind == KindFloat:
		if !a.Numeric() || !b.Numeric() {
			return Nil, fmt.Errorf("cannot subtract %s and %s", a.kind, b.kind)
		}
		return Float(a.toFloat() - b.toFloat()), nil
	case a.kind == KindInt && b.kind == KindInt:
		return Int(int64(a.num) - int64(b.num)), nil
	}
	return Nil, fmt.Errorf("cannot subtract %s and %s", a.kind, b.kind)
}

// Mul implements OverLog "*".
func Mul(a, b Value) (Value, error) {
	switch {
	case a.kind == KindID || b.kind == KindID:
		return ID(a.asRing() * b.asRing()), nil
	case a.kind == KindFloat || b.kind == KindFloat:
		if !a.Numeric() || !b.Numeric() {
			return Nil, fmt.Errorf("cannot multiply %s and %s", a.kind, b.kind)
		}
		return Float(a.toFloat() * b.toFloat()), nil
	case a.kind == KindInt && b.kind == KindInt:
		return Int(int64(a.num) * int64(b.num)), nil
	}
	return Nil, fmt.Errorf("cannot multiply %s and %s", a.kind, b.kind)
}

// Div implements OverLog "/". Integer division on int/int; float otherwise.
func Div(a, b Value) (Value, error) {
	if !a.Numeric() || !b.Numeric() {
		return Nil, fmt.Errorf("cannot divide %s and %s", a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		if b.num == 0 {
			return Nil, fmt.Errorf("integer division by zero")
		}
		return Int(int64(a.num) / int64(b.num)), nil
	}
	if a.kind == KindID && (b.kind == KindID || b.kind == KindInt) {
		d := b.asRing()
		if d == 0 {
			return Nil, fmt.Errorf("id division by zero")
		}
		return ID(a.num / d), nil
	}
	d := b.toFloat()
	if d == 0 {
		return Nil, fmt.Errorf("division by zero")
	}
	return Float(a.toFloat() / d), nil
}

// Mod implements OverLog "%".
func Mod(a, b Value) (Value, error) {
	switch {
	case a.kind == KindID || b.kind == KindID:
		d := b.asRing()
		if d == 0 {
			return Nil, fmt.Errorf("modulo by zero")
		}
		return ID(a.asRing() % d), nil
	case a.kind == KindInt && b.kind == KindInt:
		if b.num == 0 {
			return Nil, fmt.Errorf("modulo by zero")
		}
		return Int(int64(a.num) % int64(b.num)), nil
	}
	return Nil, fmt.Errorf("cannot take %s %% %s", a.kind, b.kind)
}

// Shl implements OverLog "<<" (used to compute finger targets 1 << I).
func Shl(a, b Value) (Value, error) {
	if !a.Numeric() || !b.Numeric() {
		return Nil, fmt.Errorf("cannot shift %s by %s", a.kind, b.kind)
	}
	return ID(a.asRing() << (b.asRing() & 63)), nil
}

// InInterval reports whether k lies in the ring interval from lo to hi,
// traversed clockwise, with the given endpoint openness. The interval
// (a, a] covers the whole ring except... actually exactly: for lo == hi,
// an open-low interval covers the entire ring minus nothing: Chord
// defines (a, a] as the full ring (every key is "between" a and a going
// clockwise). A closed-low interval [a, a) likewise covers the full ring,
// and [a, a] covers only a itself while (a, a) covers everything but a.
func InInterval(k, lo, hi Value, loOpen, hiOpen bool) bool {
	kk, a, b := k.asRing(), lo.asRing(), hi.asRing()
	if a == b {
		switch {
		case !loOpen && !hiOpen:
			return kk == a
		case loOpen && hiOpen:
			return kk != a
		default:
			return true // half-open degenerate interval = full ring
		}
	}
	// Distance clockwise from a.
	dk := kk - a // wrapping
	db := b - a
	switch {
	case loOpen && hiOpen:
		return dk > 0 && dk < db
	case loOpen && !hiOpen:
		return dk > 0 && dk <= db
	case !loOpen && hiOpen:
		return dk < db
	default:
		return dk <= db
	}
}

// Truth reports whether a value is "true" in a condition context.
func (v Value) Truth() bool {
	switch v.kind {
	case KindBool:
		return v.num != 0
	case KindNil:
		return false
	}
	return true
}

// SortValues sorts a slice of values in Compare order (used by aggregate
// and test code for deterministic output).
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}

// HashValues hashes a list of values (used for secondary-index keys).
func HashValues(vs []Value) uint64 {
	h := uint64(FnvOffset64)
	for _, v := range vs {
		h = v.hashFold(h)
	}
	return h
}
