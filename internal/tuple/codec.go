package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// The wire format used by the network postamble/preamble:
//
//	tuple  := nameLen(uvarint) name fieldCount(uvarint) value*
//	value  := kind(byte) payload
//	payload:
//	  int    varint
//	  id     8 bytes little-endian
//	  float  8 bytes little-endian (IEEE-754 bits)
//	  str    len(uvarint) bytes
//	  bool   1 byte
//	  list   count(uvarint) value*
//	  nil    (empty)
//
// The codec is self-describing and versionless; it exists so that the
// simulated network can bill realistic byte counts and so that the real
// UDP transport in cmd/p2node interoperates between processes.

// Marshal appends the wire encoding of t to dst and returns the result.
// Tuple IDs are not marshaled: they are node-local (the receiving node
// assigns its own ID, recording the source node and source ID in
// tupleTable; that pair travels in the message envelope, not here).
func Marshal(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.Name)))
	dst = append(dst, t.Name...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Fields)))
	for _, f := range t.Fields {
		dst = appendValue(dst, f)
	}
	return dst
}

func appendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNil:
	case KindInt:
		dst = binary.AppendVarint(dst, int64(v.num))
	case KindID:
		dst = binary.LittleEndian.AppendUint64(dst, v.num)
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, v.num)
	case KindStr:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindBool:
		b := byte(0)
		if v.num != 0 {
			b = 1
		}
		dst = append(dst, b)
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.list)))
		for _, e := range v.list {
			dst = appendValue(dst, e)
		}
	}
	return dst
}

// EncodedSize returns the exact number of bytes Marshal will append for
// t, computed without allocating. Senders use it to size their marshal
// buffers up front instead of growing them append by append.
func EncodedSize(t Tuple) int {
	n := uvarintLen(uint64(len(t.Name))) + len(t.Name) + uvarintLen(uint64(len(t.Fields)))
	for _, f := range t.Fields {
		n += valueSize(f)
	}
	return n
}

func valueSize(v Value) int {
	switch v.kind {
	case KindInt:
		return 1 + varintLen(int64(v.num))
	case KindID, KindFloat:
		return 1 + 8
	case KindStr:
		return 1 + uvarintLen(uint64(len(v.str))) + len(v.str)
	case KindBool:
		return 1 + 1
	case KindList:
		n := 1 + uvarintLen(uint64(len(v.list)))
		for _, e := range v.list {
			n += valueSize(e)
		}
		return n
	}
	return 1 // KindNil and unknown kinds: the kind byte alone
}

func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

func varintLen(x int64) int {
	ux := uint64(x) << 1 // zig-zag, as binary.AppendVarint encodes
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}

// Unmarshal decodes one tuple from b, returning the tuple and the number
// of bytes consumed.
func Unmarshal(b []byte) (Tuple, int, error) {
	pos := 0
	nameLen, n := binary.Uvarint(b[pos:])
	if n <= 0 || nameLen > uint64(len(b)) || pos+n+int(nameLen) > len(b) {
		return Tuple{}, 0, fmt.Errorf("tuple: short buffer decoding name")
	}
	pos += n
	name := internBytes(b[pos : pos+int(nameLen)])
	pos += int(nameLen)
	count, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return Tuple{}, 0, fmt.Errorf("tuple: short buffer decoding arity")
	}
	if count > uint64(len(b)) {
		return Tuple{}, 0, fmt.Errorf("tuple: implausible arity %d", count)
	}
	pos += n
	fields := make([]Value, 0, count)
	for i := uint64(0); i < count; i++ {
		v, n, err := decodeValue(b[pos:])
		if err != nil {
			return Tuple{}, 0, fmt.Errorf("tuple: field %d: %w", i, err)
		}
		pos += n
		fields = append(fields, v)
	}
	return Tuple{Name: name, Fields: fields}, pos, nil
}

func decodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Nil, 0, fmt.Errorf("short buffer decoding kind")
	}
	kind := Kind(b[0])
	pos := 1
	switch kind {
	case KindNil:
		return Nil, pos, nil
	case KindInt:
		v, n := binary.Varint(b[pos:])
		if n <= 0 {
			return Nil, 0, fmt.Errorf("short buffer decoding int")
		}
		return Int(v), pos + n, nil
	case KindID, KindFloat:
		if len(b) < pos+8 {
			return Nil, 0, fmt.Errorf("short buffer decoding %s", kind)
		}
		u := binary.LittleEndian.Uint64(b[pos:])
		if kind == KindID {
			return ID(u), pos + 8, nil
		}
		return Float(math.Float64frombits(u)), pos + 8, nil
	case KindStr:
		l, n := binary.Uvarint(b[pos:])
		if n <= 0 || l > uint64(len(b)) || pos+n+int(l) > len(b) {
			return Nil, 0, fmt.Errorf("short buffer decoding str")
		}
		pos += n
		return Str(internBytes(b[pos : pos+int(l)])), pos + int(l), nil
	case KindBool:
		if len(b) < pos+1 {
			return Nil, 0, fmt.Errorf("short buffer decoding bool")
		}
		return Bool(b[pos] != 0), pos + 1, nil
	case KindList:
		count, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return Nil, 0, fmt.Errorf("short buffer decoding list")
		}
		if count > uint64(len(b)) {
			return Nil, 0, fmt.Errorf("implausible list length %d", count)
		}
		pos += n
		elems := make([]Value, 0, count)
		for i := uint64(0); i < count; i++ {
			e, n, err := decodeValue(b[pos:])
			if err != nil {
				return Nil, 0, err
			}
			pos += n
			elems = append(elems, e)
		}
		return List(elems...), pos, nil
	}
	return Nil, 0, fmt.Errorf("unknown value kind %d", kind)
}
