package tuple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	tp := New("pred", Str("n1"), ID(10), Str("n2"))
	if tp.Loc() != "n1" {
		t.Errorf("Loc = %q", tp.Loc())
	}
	if tp.Arity() != 3 {
		t.Errorf("Arity = %d", tp.Arity())
	}
	if !tp.Field(1).Equal(ID(10)) {
		t.Errorf("Field(1) = %v", tp.Field(1))
	}
	if got := tp.String(); got != `pred@n1(0xa, "n2")` {
		t.Errorf("String = %q", got)
	}
	w := tp.WithID(7)
	if w.ID != 7 || tp.ID != 0 {
		t.Error("WithID must copy")
	}
}

func TestTupleEqualIgnoresID(t *testing.T) {
	a := New("x", Str("n1"), Int(1)).WithID(5)
	b := New("x", Str("n1"), Int(1)).WithID(9)
	if !a.Equal(b) {
		t.Error("equal content with different IDs must be Equal")
	}
	if a.Hash() != b.Hash() {
		t.Error("hash must ignore ID")
	}
	c := New("y", Str("n1"), Int(1))
	if a.Equal(c) {
		t.Error("different names must differ")
	}
}

func TestKeyHashAndEqual(t *testing.T) {
	a := New("succ", Str("n1"), ID(10), Str("n2"))
	b := New("succ", Str("n1"), ID(10), Str("n3"))
	keys := []int{1, 2}
	if a.KeyHash(keys) != b.KeyHash(keys) {
		t.Error("same key fields must hash equal")
	}
	if !a.KeyEqual(b, keys) {
		t.Error("KeyEqual on matching prefix")
	}
	if a.KeyEqual(b, []int{3}) {
		t.Error("KeyEqual must detect differing field 3")
	}
	// Out-of-range key positions compare as nil on both sides.
	if !a.KeyEqual(b, []int{9}) {
		t.Error("out-of-range keys treated as nil")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	tuples := []Tuple{
		New("empty"),
		New("pred", Str("n1"), ID(10), Str("n2")),
		New("mix", Str("loc"), Int(-5), Float(2.75), Bool(true), Nil,
			List(Int(1), List(Str("nested")), ID(9))),
	}
	var buf []byte
	for _, tp := range tuples {
		buf = Marshal(buf, tp)
	}
	pos := 0
	for _, want := range tuples {
		got, n, err := Unmarshal(buf[pos:])
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		pos += n
		if !got.Equal(want) {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
	}
	if pos != len(buf) {
		t.Errorf("consumed %d of %d bytes", pos, len(buf))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good := Marshal(nil, New("x", Str("n1"), Int(3)))
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := Unmarshal(good[:cut]); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
	if _, _, err := Unmarshal([]byte{1, 'x', 1, 99}); err == nil {
		t.Error("unknown kind must fail")
	}
}

// randomValue builds an arbitrary Value for property-based testing.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(7)
	if depth <= 0 && k == 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return Nil
	case 1:
		return Int(int64(r.Uint64()))
	case 2:
		return ID(r.Uint64())
	case 3:
		return Float(r.NormFloat64())
	case 4:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return Str(string(b))
	case 5:
		return Bool(r.Intn(2) == 0)
	default:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return List(elems...)
	}
}

type randTuple Tuple

// Generate implements quick.Generator so codec round-trip is checked over
// arbitrary tuples.
func (randTuple) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(6)
	fields := make([]Value, n)
	for i := range fields {
		fields[i] = randomValue(r, 2)
	}
	name := make([]byte, 1+r.Intn(8))
	for i := range name {
		name[i] = byte('a' + r.Intn(26))
	}
	return reflect.ValueOf(randTuple(New(string(name), fields...)))
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(rt randTuple) bool {
		want := Tuple(rt)
		buf := Marshal(nil, want)
		got, n, err := Unmarshal(buf)
		return err == nil && n == len(buf) && got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesPositive(t *testing.T) {
	f := func(rt randTuple) bool {
		return Tuple(rt).SizeBytes() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
