package tuple

import "testing"

// sizeCases cover every value kind, nesting, and varint boundaries.
var sizeCases = []Tuple{
	New("t"),
	New("succ", Str("n1"), ID(123456789), Str("n2")),
	New("x", Int(0), Int(1), Int(-1), Int(63), Int(64), Int(-64), Int(-65),
		Int(1<<40), Int(-(1 << 40))),
	New("f", Float(0), Float(3.14159), Float(-1e300)),
	New("b", Bool(true), Bool(false), Nil),
	New("path", Str("n1"), List(Str("a"), List(Int(300), Nil), Bool(true))),
	New("longname_predicate_with_many_characters", Str(string(make([]byte, 200)))),
}

// TestEncodedSizeMatchesMarshal: EncodedSize must be exact — it is what
// the engine pre-sizes send buffers with.
func TestEncodedSizeMatchesMarshal(t *testing.T) {
	for _, tc := range sizeCases {
		got := EncodedSize(tc)
		want := len(Marshal(nil, tc))
		if got != want {
			t.Errorf("EncodedSize(%v) = %d, marshal produced %d bytes", tc, got, want)
		}
	}
}

// BenchmarkMarshalGrow is the old send-path pattern: marshal into a nil
// buffer, growing append by append.
func BenchmarkMarshalGrow(b *testing.B) {
	tc := sizeCases[5]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(nil, tc)
	}
}

// BenchmarkMarshalPresized is the new send-path pattern: size the buffer
// from EncodedSize, reuse a scratch buffer, copy out the exact bytes.
func BenchmarkMarshalPresized(b *testing.B) {
	tc := sizeCases[5]
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sz := EncodedSize(tc); cap(scratch) < sz {
			scratch = make([]byte, 0, sz)
		}
		scratch = Marshal(scratch[:0], tc)
		raw := append(make([]byte, 0, len(scratch)), scratch...)
		_ = raw
	}
}
