package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Nil, KindNil},
		{Int(-7), KindInt},
		{ID(42), KindID},
		{Float(3.5), KindFloat},
		{Str("hello"), KindStr},
		{Bool(true), KindBool},
		{List(Int(1), Str("a")), KindList},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(-7).AsInt(); got != -7 {
		t.Errorf("AsInt = %d, want -7", got)
	}
	if got := ID(1 << 63).AsID(); got != 1<<63 {
		t.Errorf("AsID = %d", got)
	}
	if got := Float(2.25).AsFloat(); got != 2.25 {
		t.Errorf("AsFloat = %v", got)
	}
	if got := Str("x").AsStr(); got != "x" {
		t.Errorf("AsStr = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool wrong")
	}
	l := List(Int(1), Int(2)).AsList()
	if len(l) != 2 || l[1].AsInt() != 2 {
		t.Errorf("AsList = %v", l)
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(ID(3)) {
		t.Error("Int(3) should equal ID(3)")
	}
	if !Float(3).Equal(Int(3)) {
		t.Error("Float(3) should equal Int(3)")
	}
	if Int(-1).Equal(ID(math.MaxUint64)) {
		t.Error("Int(-1) must not equal ID(MaxUint64)")
	}
	if Str("3").Equal(Int(3)) {
		t.Error("Str vs Int must not be equal")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(3), ID(3)},
		{Float(7), Int(7)},
		{Str("abc"), Str("abc")},
		{List(Int(1), Str("x")), List(Int(1), Str("x"))},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("%v != %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("hash mismatch for equal values %v and %v", p[0], p[1])
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	if Int(1).Compare(Int(2)) >= 0 {
		t.Error("1 < 2")
	}
	if ID(math.MaxUint64).Compare(ID(0)) <= 0 {
		t.Error("max id > 0")
	}
	if Str("a").Compare(Str("b")) >= 0 {
		t.Error("a < b")
	}
	if List(Int(1)).Compare(List(Int(1), Int(2))) >= 0 {
		t.Error("shorter list sorts first")
	}
}

func TestArithmetic(t *testing.T) {
	mustAdd := func(a, b Value) Value {
		t.Helper()
		v, err := Add(a, b)
		if err != nil {
			t.Fatalf("Add(%v,%v): %v", a, b, err)
		}
		return v
	}
	if got := mustAdd(Int(2), Int(3)); got.AsInt() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustAdd(Str("n"), Int(1)); got.AsStr() != "n1" {
		t.Errorf("str concat = %v", got)
	}
	if got := mustAdd(List(Int(1)), List(Int(2))); len(got.AsList()) != 2 {
		t.Errorf("list concat = %v", got)
	}
	// Ring arithmetic wraps.
	if got, _ := Sub(ID(1), ID(3)); got.AsID() != math.MaxUint64-1 {
		t.Errorf("ring 1-3 = %v", got)
	}
	if got, _ := Shl(Int(1), Int(10)); got.AsID() != 1024 {
		t.Errorf("1<<10 = %v", got)
	}
	if got, _ := Div(Int(7), Int(2)); got.AsInt() != 3 {
		t.Errorf("7/2 = %v", got)
	}
	if got, _ := Div(Int(7), Float(2)); got.AsFloat() != 3.5 {
		t.Errorf("7/2.0 = %v", got)
	}
	if got, _ := Mod(Int(7), Int(3)); got.AsInt() != 1 {
		t.Errorf("7%%3 = %v", got)
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("div by zero must error")
	}
	if _, err := Add(Bool(true), Int(1)); err == nil {
		t.Error("bool+int must error")
	}
}

func TestInInterval(t *testing.T) {
	cases := []struct {
		k, lo, hi      uint64
		loOpen, hiOpen bool
		want           bool
	}{
		{5, 1, 10, true, true, true},
		{1, 1, 10, true, true, false},   // open low excludes
		{10, 1, 10, true, false, true},  // closed high includes
		{10, 1, 10, true, true, false},  // open high excludes
		{0, 250, 10, true, false, true}, // wraparound
		{100, 250, 10, true, false, false},
		{7, 7, 7, true, false, true},  // (a, a] = full ring
		{9, 7, 7, true, false, true},  // (a, a] = full ring
		{7, 7, 7, false, false, true}, // [a, a] = point
		{9, 7, 7, false, false, false},
		{7, 7, 7, true, true, false}, // (a, a) excludes a
		{9, 7, 7, true, true, true},
	}
	for _, c := range cases {
		got := InInterval(ID(c.k), ID(c.lo), ID(c.hi), c.loOpen, c.hiOpen)
		if got != c.want {
			t.Errorf("InInterval(%d in %d..%d, loOpen=%v hiOpen=%v) = %v, want %v",
				c.k, c.lo, c.hi, c.loOpen, c.hiOpen, got, c.want)
		}
	}
}

// Property: for distinct lo != hi, each key is either inside (lo,hi] or
// inside (hi,lo], never both, never neither — the two arcs partition the
// ring. This is the invariant Chord's routing correctness rests on.
func TestIntervalPartitionProperty(t *testing.T) {
	f := func(k, lo, hi uint64) bool {
		if lo == hi {
			return true
		}
		a := InInterval(ID(k), ID(lo), ID(hi), true, false)
		b := InInterval(ID(k), ID(hi), ID(lo), true, false)
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruth(t *testing.T) {
	if !Bool(true).Truth() || Bool(false).Truth() {
		t.Error("bool truth")
	}
	if Nil.Truth() {
		t.Error("nil is false")
	}
	if !Int(0).Truth() {
		t.Error("non-bool non-nil values are true")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"nil":    Nil,
		"-3":     Int(-3),
		"3.5":    Float(3.5),
		`"hi"`:   Str("hi"),
		"true":   Bool(true),
		"[1, 2]": List(Int(1), Int(2)),
		"0xff":   ID(255),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestArithmeticIDVariants(t *testing.T) {
	if v, _ := Mul(ID(3), Int(4)); v.AsID() != 12 {
		t.Errorf("ID*Int = %v", v)
	}
	if v, _ := Mul(Float(2), Int(3)); v.AsFloat() != 6 {
		t.Errorf("Float*Int = %v", v)
	}
	if v, _ := Div(ID(9), Int(2)); v.AsID() != 4 {
		t.Errorf("ID/Int = %v", v)
	}
	if _, err := Div(ID(9), Int(0)); err == nil {
		t.Error("ID/0 must fail")
	}
	if v, _ := Div(Float(9), Float(2)); v.AsFloat() != 4.5 {
		t.Errorf("Float/Float = %v", v)
	}
	if _, err := Div(Float(1), Float(0)); err == nil {
		t.Error("float div by zero must fail")
	}
	if v, _ := Mod(ID(9), Int(4)); v.AsID() != 1 {
		t.Errorf("ID%%Int = %v", v)
	}
	if _, err := Mod(ID(9), Int(0)); err == nil {
		t.Error("ID%%0 must fail")
	}
	if _, err := Mod(Float(1), Float(2)); err == nil {
		t.Error("float modulo must fail")
	}
	if v, _ := Sub(Float(5), Int(2)); v.AsFloat() != 3 {
		t.Errorf("Float-Int = %v", v)
	}
	if _, err := Sub(Str("a"), Float(1)); err == nil {
		t.Error("str-float must fail")
	}
	if _, err := Shl(Str("a"), Int(1)); err == nil {
		t.Error("str<<int must fail")
	}
}

func TestCompareMixedKinds(t *testing.T) {
	// Different non-numeric kinds order by kind tag, deterministically.
	if Str("z").Compare(Bool(true)) == 0 {
		t.Error("str vs bool must not compare equal")
	}
	if Int(3).Compare(Float(3.5)) >= 0 {
		t.Error("3 < 3.5 across kinds")
	}
	if List(Int(1), Int(2)).Compare(List(Int(1), Int(3))) >= 0 {
		t.Error("lexicographic list compare")
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Int(1), Int(2)}
	SortValues(vs)
	for i, want := range []int64{1, 2, 3} {
		if vs[i].AsInt() != want {
			t.Fatalf("sorted = %v", vs)
		}
	}
}
