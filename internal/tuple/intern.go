package tuple

import "sync"

// String interning for the decode path. At simulation scale every node
// holds the same handful of strings thousands of times over: predicate
// names ("bestSucc", "finger") and node addresses ("n1".."n10000")
// arrive in every message and are retained for as long as the decoded
// tuple lives in a table. Canonicalizing them makes all copies share
// one backing array, which is a large share of steady-state bytes per
// host at 1k-10k nodes.
//
// The pool is process-wide and append-only. Interning is semantically
// invisible — it returns an equal string — so it cannot affect
// determinism; it only collapses duplicates. Reads vastly outnumber
// writes after warmup, so a read-write mutex around a plain map keeps
// the hot path to one allocation-free map probe (the compiler elides
// the []byte→string conversion for built-in map lookups, which is why
// this is not a sync.Map).

const (
	// maxInternLen bounds interned string length: long strings are
	// payload (unlikely to repeat), short ones are vocabulary.
	maxInternLen = 64
	// maxInternEntries caps pool growth so adversarial or high-entropy
	// workloads cannot leak memory through the pool; beyond the cap,
	// lookups still hit but misses stop inserting.
	maxInternEntries = 1 << 17
)

var (
	internMu   sync.RWMutex
	internPool = make(map[string]string)
)

// Intern returns a canonical copy of s: repeated calls with equal
// contents return the same backing string. Strings too long (or pool
// overflow) pass through unchanged.
func Intern(s string) string {
	if len(s) > maxInternLen {
		return s
	}
	internMu.RLock()
	v, ok := internPool[s]
	internMu.RUnlock()
	if ok {
		return v
	}
	return internSlow(s)
}

// InternBytes is Intern for a byte slice, allocating the string only on
// a pool miss. The realtime UDP reader uses it to decode envelope source
// addresses without a per-datagram allocation.
func InternBytes(b []byte) string { return internBytes(b) }

// internBytes is Intern for a byte slice, allocating the string only on
// a pool miss.
func internBytes(b []byte) string {
	if len(b) > maxInternLen {
		return string(b)
	}
	internMu.RLock()
	v, ok := internPool[string(b)] // no alloc: map-lookup conversion
	internMu.RUnlock()
	if ok {
		return v
	}
	return internSlow(string(b))
}

func internSlow(s string) string {
	internMu.Lock()
	defer internMu.Unlock()
	if v, ok := internPool[s]; ok {
		return v
	}
	if len(internPool) >= maxInternEntries {
		return s
	}
	internPool[s] = s
	return s
}
