package tuple

import (
	"fmt"
	"strings"
)

// Tuple is an immutable named record. Field 0 is the location specifier:
// the address (a string value) of the node where the tuple lives or must
// be delivered. Tuples carry a node-unique ID assigned when they are first
// created on a node; the ID is what the tracer memoizes in tupleTable.
type Tuple struct {
	// Name is the predicate name, e.g. "bestSucc".
	Name string
	// Fields holds the values; Fields[0] is the location specifier.
	Fields []Value
	// ID is the node-unique tuple identifier (0 = unassigned). IDs are
	// local to the node that created or received the tuple.
	ID uint64
}

// New constructs a tuple with the given name and fields.
func New(name string, fields ...Value) Tuple {
	return Tuple{Name: name, Fields: fields}
}

// Loc returns the tuple's location specifier as a string address. It
// returns "" if the tuple has no fields or a non-string first field.
func (t Tuple) Loc() string {
	if len(t.Fields) == 0 || t.Fields[0].Kind() != KindStr {
		return ""
	}
	return t.Fields[0].AsStr()
}

// Arity returns the number of fields, including the location specifier.
func (t Tuple) Arity() int { return len(t.Fields) }

// Field returns the i-th field (0-based; 0 is the location specifier).
func (t Tuple) Field(i int) Value { return t.Fields[i] }

// WithID returns a copy of t carrying the given node-unique ID.
func (t Tuple) WithID(id uint64) Tuple {
	t.ID = id
	return t
}

// Equal reports whether two tuples have the same name and equal fields.
// Tuple IDs are ignored: identity is content-based, IDs are node-local.
func (t Tuple) Equal(o Tuple) bool {
	if t.Name != o.Name || len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].Equal(o.Fields[i]) {
			return false
		}
	}
	return true
}

// Hash returns a content hash of the tuple (name + fields).
func (t Tuple) Hash() uint64 {
	h := fnvString(FnvOffset64, t.Name)
	h = fnvByte(h, 0)
	for _, f := range t.Fields {
		h = f.hashFold(h)
	}
	return h
}

// KeyHash hashes the subset of fields at the given 1-based positions; it
// is the primary-key hash used by tables. Positions beyond the arity hash
// as nil.
func (t Tuple) KeyHash(keys []int) uint64 {
	h := uint64(FnvOffset64)
	for _, k := range keys {
		if k >= 1 && k <= len(t.Fields) {
			h = t.Fields[k-1].hashFold(h)
		} else {
			h = Nil.hashFold(h)
		}
	}
	return h
}

// KeyEqual reports whether two tuples agree on the fields at the given
// 1-based positions.
func (t Tuple) KeyEqual(o Tuple, keys []int) bool {
	for _, k := range keys {
		var a, b Value
		if k >= 1 && k <= len(t.Fields) {
			a = t.Fields[k-1]
		}
		if k >= 1 && k <= len(o.Fields) {
			b = o.Fields[k-1]
		}
		if !a.Equal(b) {
			return false
		}
	}
	return true
}

// String renders the tuple in OverLog syntax: name@Loc(f1, f2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.Name)
	rest := t.Fields
	if len(t.Fields) > 0 && t.Fields[0].Kind() == KindStr {
		fmt.Fprintf(&b, "@%s", t.Fields[0].AsStr())
		rest = t.Fields[1:]
	}
	b.WriteByte('(')
	for i, f := range rest {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteByte(')')
	return b.String()
}

// SizeBytes estimates the in-memory footprint of the tuple. The estimate
// is the memory metric the benchmark harness reports (see DESIGN.md §4:
// the paper's MB figures are driven by live tuple counts).
func (t Tuple) SizeBytes() int {
	n := 48 + len(t.Name) // header + name
	for _, f := range t.Fields {
		n += f.sizeBytes()
	}
	return n
}

func (v Value) sizeBytes() int {
	n := 40
	switch v.kind {
	case KindStr:
		n += len(v.str)
	case KindList:
		for _, e := range v.list {
			n += e.sizeBytes()
		}
	}
	return n
}
