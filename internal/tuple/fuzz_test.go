package tuple

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal: arbitrary bytes never panic, and whatever decodes
// re-encodes to something that decodes to an equal tuple.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(nil, New("pred", Str("n1"), ID(10), Str("n2"))))
	f.Add(Marshal(nil, New("mix", Str("loc"), Int(-5), Float(2.75), Bool(true),
		Nil, List(Int(1), List(Str("nested"))))))
	f.Add([]byte{0x01, 0x78, 0x01, 0x63})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, n, err := Unmarshal(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		re := Marshal(nil, tp)
		tp2, n2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Byte-level canonical equality (Value.Equal would reject NaN
		// floats, which legitimately round-trip).
		if n2 != len(re) || !bytes.Equal(re, Marshal(nil, tp2)) {
			t.Fatalf("re-encode mismatch: %v vs %v", tp, tp2)
		}
	})
}

// FuzzValueCodec: every decodable value round-trips byte-identically
// after one re-encode (canonical form).
func FuzzValueCodec(f *testing.F) {
	for _, v := range []Value{Int(-1), ID(42), Float(3.5), Str("x"), Bool(true),
		List(Int(1), Str("a"))} {
		f.Add(Marshal(nil, New("t", v)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, _, err := Unmarshal(data)
		if err != nil {
			return
		}
		a := Marshal(nil, tp)
		tp2, _, err := Unmarshal(a)
		if err != nil {
			t.Fatal(err)
		}
		b := Marshal(nil, tp2)
		if !bytes.Equal(a, b) {
			t.Fatalf("non-canonical encoding: %x vs %x", a, b)
		}
	})
}
