package tracestore

import (
	"fmt"
	"strconv"
	"strings"
)

// The investigation query language: a small AIQL-flavored textual
// surface over the View (PAPERS.md: AIQL queries system-monitoring
// data for attack investigation with causal preceded-by/followed-by
// operators and time windows). Five verbs:
//
//	ancestors of <id> at <node> [depth <n>] [since <t>] [until <t>]
//	descendants of <id> at <node> [depth <n>] [since <t>] [until <t>]
//	flow of <id> at <node>
//	execs at <node> [rule <r>] [since <t>] [until <t>] [limit <n>]
//	events at <node> [op <o>] [name <nm>] [since <t>] [until <t>] [limit <n>]
//
// Times are virtual seconds. The surface is deliberately tiny: each
// query maps to exactly one View call, and the Result renders as a
// plain-text report (see docs/FORENSICS.md for a worked walkthrough).

// Query is one parsed investigation query.
type Query struct {
	Kind         string // "ancestors", "descendants", "flow", "execs", "events"
	Node         string
	ID           uint64
	Depth        int
	Since, Until float64
	Rule         string
	Op, Name     string
	Limit        int
}

// ParseQuery parses the textual query surface.
func ParseQuery(src string) (*Query, error) {
	toks := strings.Fields(src)
	if len(toks) == 0 {
		return nil, fmt.Errorf("tracestore: empty query")
	}
	q := &Query{Kind: strings.ToLower(toks[0])}
	toks = toks[1:]
	next := func(key string) (string, error) {
		if len(toks) == 0 {
			return "", fmt.Errorf("tracestore: %q needs a value", key)
		}
		v := toks[0]
		toks = toks[1:]
		return v, nil
	}
	switch q.Kind {
	case "ancestors", "descendants", "flow":
		if len(toks) < 4 || toks[0] != "of" || toks[2] != "at" {
			return nil, fmt.Errorf("tracestore: want %q of <id> at <node> ..., got %q", q.Kind, src)
		}
		id, err := strconv.ParseUint(toks[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tracestore: bad tuple ID %q: %v", toks[1], err)
		}
		q.ID = id
		q.Node = toks[3]
		toks = toks[4:]
	case "execs", "events":
		if len(toks) < 2 || toks[0] != "at" {
			return nil, fmt.Errorf("tracestore: want %q at <node> ..., got %q", q.Kind, src)
		}
		q.Node = toks[1]
		toks = toks[2:]
	default:
		return nil, fmt.Errorf("tracestore: unknown query verb %q (want ancestors, descendants, flow, execs, or events)", q.Kind)
	}
	for len(toks) > 0 {
		key := strings.ToLower(toks[0])
		toks = toks[1:]
		val, err := next(key)
		if err != nil {
			return nil, err
		}
		switch key {
		case "depth", "limit":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("tracestore: bad %s %q", key, val)
			}
			if key == "depth" {
				q.Depth = n
			} else {
				q.Limit = n
			}
		case "since", "until":
			t, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("tracestore: bad %s %q", key, val)
			}
			if key == "since" {
				q.Since = t
			} else {
				q.Until = t
			}
		case "rule":
			q.Rule = val
		case "op":
			q.Op = val
		case "name":
			q.Name = val
		default:
			return nil, fmt.Errorf("tracestore: unknown clause %q", key)
		}
	}
	return q, nil
}

// Result is the answer to one query; exactly one of the payload slices
// is populated per Kind.
type Result struct {
	Query  Query
	Edges  []Edge
	Hops   []HopStep
	Events []Event
}

// Run executes the query against a view. Queries with their own
// `since` clause open a sub-view so whole windows before the horizon
// stay undecoded.
func (q *Query) Run(v *View) (*Result, error) {
	if q.Since > v.since {
		v = NewView(v.stores, q.Since)
	}
	res := &Result{Query: *q}
	var err error
	switch q.Kind {
	case "ancestors", "descendants":
		var l *Lineage
		if q.Kind == "ancestors" {
			l, err = v.Ancestors(q.Node, q.ID, q.Depth)
		} else {
			l, err = v.Descendants(q.Node, q.ID, q.Depth)
		}
		if err != nil {
			return nil, err
		}
		res.Edges, res.Hops = l.Edges, l.Hops
	case "flow":
		res.Hops, err = v.FlowChain(q.Node, q.ID)
		if err != nil {
			return nil, err
		}
	case "execs":
		res.Edges, err = v.Execs(ExecFilter{
			Node: q.Node, Rule: q.Rule, Since: q.Since, Until: q.Until, Limit: q.Limit,
		})
		if err != nil {
			return nil, err
		}
	case "events":
		res.Events, err = v.Events(EventFilter{
			Node: q.Node, Op: q.Op, Name: q.Name, Since: q.Since, Until: q.Until, Limit: q.Limit,
		})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("tracestore: unknown query kind %q", q.Kind)
	}
	return res, nil
}

// Investigate parses and runs a query in one step.
func Investigate(src string, v *View) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return q.Run(v)
}

// String renders the result as a plain-text investigation report.
func (r *Result) String() string {
	var b strings.Builder
	switch r.Query.Kind {
	case "ancestors", "descendants":
		fmt.Fprintf(&b, "%s of tuple %d at %s: %d edges, %d hops\n",
			r.Query.Kind, r.Query.ID, r.Query.Node, len(r.Edges), len(r.Hops))
		for _, e := range r.Edges {
			fmt.Fprintf(&b, "  d=%d %s: %s(%d -> %d) t=[%.6f, %.6f] event=%v\n",
				e.Depth, e.Node, e.Rule, e.InID, e.OutID, e.InT, e.OutT, e.IsEvent)
		}
		for _, h := range r.Hops {
			fmt.Fprintf(&b, "  d=%d hop %s#%d -> %s#%d t=%.6f\n",
				h.Depth, h.From, h.FromID, h.To, h.ToID, h.T)
		}
	case "flow":
		fmt.Fprintf(&b, "flow of tuple %d at %s: %d hops\n",
			r.Query.ID, r.Query.Node, len(r.Hops))
		for _, h := range r.Hops {
			fmt.Fprintf(&b, "  %s#%d -> %s#%d t=%.6f\n", h.From, h.FromID, h.To, h.ToID, h.T)
		}
	case "execs":
		fmt.Fprintf(&b, "execs at %s: %d\n", r.Query.Node, len(r.Edges))
		for _, e := range r.Edges {
			fmt.Fprintf(&b, "  %s(%d -> %d) t=[%.6f, %.6f] event=%v\n",
				e.Rule, e.InID, e.OutID, e.InT, e.OutT, e.IsEvent)
		}
	case "events":
		fmt.Fprintf(&b, "events at %s: %d\n", r.Query.Node, len(r.Events))
		for _, ev := range r.Events {
			fmt.Fprintf(&b, "  t=%.6f %s %s#%d\n", ev.T, ev.Op, ev.Name, ev.ID)
		}
	}
	return b.String()
}
