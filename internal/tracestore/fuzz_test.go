package tracestore

import (
	"math"
	"reflect"
	"testing"
)

// recordsFromSeed derives a deterministic record mix from fuzz bytes: a
// tiny interpreter where each byte chooses the record kind and
// perturbs the running IDs/times, so the corpus explores record
// orderings, ID regressions, negative deltas, and odd floats without
// the fuzzer needing to construct valid encodings.
func recordsFromSeed(seed []byte) *segment {
	seg := &segment{window: 0}
	if len(seg.execs) == 0 && len(seed) > 0 {
		seg.window = int64(int8(seed[0]))
	}
	rules := []string{"r1", "lookup", "", "a-much-longer-rule-name"}
	nodes := []string{"n1", "n2", "n17", ""}
	ops := []string{"arrive", "insert", "delete", "restart"}
	id := uint64(1)
	tm := 0.0
	for i, b := range seed {
		switch b % 5 {
		case 0:
			id += uint64(b >> 3)
			tm += float64(b) * 0.01
			seg.execs = append(seg.execs, Exec{
				Rule: rules[int(b>>2)%len(rules)],
				InID: id, OutID: id + uint64(b%7),
				InT: tm, OutT: tm + float64(b%3)*0.001,
				IsEvent: b%2 == 0,
			})
		case 1:
			// ID regression: deltas go negative.
			if id > uint64(b) {
				id -= uint64(b)
			}
			seg.hops = append(seg.hops, Hop{
				ID: id, Src: nodes[int(b>>2)%len(nodes)], SrcID: id * 3,
				Dst: nodes[int(b>>4)%len(nodes)], T: tm,
			})
		case 2:
			tm = -tm // negative and sign-flipping times
			seg.events = append(seg.events, Event{
				Op: ops[int(b>>2)%len(ops)], Name: rules[i%len(rules)],
				ID: id, T: tm,
			})
		case 3:
			id += 1 << (b % 60) // huge deltas
		case 4:
			tm = math.Float64frombits(uint64(b)<<52 | id) // weird bit patterns
			if math.IsNaN(tm) {
				tm = 0
			}
			seg.events = append(seg.events, Event{Op: "arrive", Name: "x", ID: id, T: tm})
		}
	}
	return seg
}

// FuzzSegmentRoundTrip: encode→decode→deep-equal for arbitrary record
// mixes, and decode must never panic on the mutated encodings the
// fuzzer derives.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 251, 252, 253, 254, 255})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, seed []byte) {
		seg := recordsFromSeed(seed)
		enc := encodeSegment(seg)
		dec, err := decodeSegment(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if dec.window != seg.window ||
			!reflect.DeepEqual(dec.execs, seg.execs) ||
			!reflect.DeepEqual(dec.hops, seg.hops) ||
			!reflect.DeepEqual(dec.events, seg.events) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", seg, dec)
		}
		// Arbitrary bytes (the seed itself) must decode or error, never
		// panic or over-allocate.
		_, _ = decodeSegment(seed)
	})
}
