package tracestore

import (
	"strings"
	"testing"
)

// twoNodeFixture builds a two-node causal chain that crosses a
// sealed/active segment seam on n1 and a network hop to n2:
//
//	n1: ev(1) --rA--> 2        (window 0, sealed)
//	n1: 2 --rB--> 3            (window 1, active on n1)
//	hop: n1#3 --> n2#10
//	n2: 10 --rC--> 11          (n2 active)
func twoNodeFixture() map[string]*Store {
	n1 := New("n1", Config{WindowSeconds: 10})
	n2 := New("n2", Config{WindowSeconds: 10})
	n1.AppendExec(exec("rA", 1, 2, 1.0, 1.5, true))
	n1.AppendExec(exec("rB", 2, 3, 11.0, 11.5, false)) // seals window 0
	n2.AppendHop(Hop{ID: 10, Src: "n1", SrcID: 3, Dst: "n2", T: 12.0})
	n2.AppendExec(exec("rC", 10, 11, 12.0, 12.5, false))
	return map[string]*Store{"n1": n1, "n2": n2}
}

// TestAncestorsAcrossSeamAndNodes: the backward walk from n2's final
// tuple crosses the hop back to n1 and the sealed/active seam there.
func TestAncestorsAcrossSeamAndNodes(t *testing.T) {
	v := NewView(twoNodeFixture(), 0)
	l, err := v.Ancestors("n2", 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Edges) != 3 {
		t.Fatalf("edges = %+v, want rC, rB, rA", l.Edges)
	}
	wantRules := []string{"rC", "rB", "rA"} // sorted by depth 1,2,3
	for i, e := range l.Edges {
		if e.Rule != wantRules[i] {
			t.Fatalf("edge[%d].Rule = %q, want %q (edges %+v)", i, e.Rule, wantRules[i], l.Edges)
		}
	}
	if l.Edges[2].Node != "n1" || l.Edges[2].OutID != 2 {
		t.Fatalf("deepest edge = %+v, want rA on n1 producing 2", l.Edges[2])
	}
	if len(l.Hops) != 1 || l.Hops[0].From != "n1" || l.Hops[0].FromID != 3 || l.Hops[0].To != "n2" || l.Hops[0].ToID != 10 {
		t.Fatalf("hops = %+v, want n1#3 -> n2#10", l.Hops)
	}
}

// TestDescendantsAcrossNodes: the forward walk from the origin event
// reaches n2 through the hop.
func TestDescendantsAcrossNodes(t *testing.T) {
	v := NewView(twoNodeFixture(), 0)
	l, err := v.Descendants("n1", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Edges) != 3 {
		t.Fatalf("edges = %+v, want rA, rB, rC", l.Edges)
	}
	last := l.Edges[2]
	if last.Node != "n2" || last.Rule != "rC" || last.OutID != 11 {
		t.Fatalf("final edge = %+v, want rC on n2 producing 11", last)
	}
	if len(l.Hops) != 1 || l.Hops[0].To != "n2" {
		t.Fatalf("hops = %+v, want one hop into n2", l.Hops)
	}
}

// TestAncestorsDepthBound: depth 1 from the end returns only the
// closest exec edge.
func TestAncestorsDepthBound(t *testing.T) {
	v := NewView(twoNodeFixture(), 0)
	l, err := v.Ancestors("n2", 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Edges) != 1 || l.Edges[0].Rule != "rC" {
		t.Fatalf("edges = %+v, want just rC", l.Edges)
	}
}

// TestWalkSkipsUnknownNodes: a hop from a node with no store in the
// view is reported, but the walk continues without error.
func TestWalkSkipsUnknownNodes(t *testing.T) {
	n2 := New("n2", Config{WindowSeconds: 10})
	n2.AppendHop(Hop{ID: 10, Src: "ghost", SrcID: 3, Dst: "n2", T: 12.0})
	n2.AppendExec(exec("rC", 10, 11, 12.0, 12.5, false))
	v := NewView(map[string]*Store{"n2": n2}, 0)
	l, err := v.Ancestors("n2", 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Edges) != 1 || len(l.Hops) != 1 || l.Hops[0].From != "ghost" {
		t.Fatalf("lineage = %+v, want rC edge + ghost hop", l)
	}
}

// TestFlowChain: the flow of the mid-chain tuple includes the hop once.
func TestFlowChain(t *testing.T) {
	v := NewView(twoNodeFixture(), 0)
	hops, err := v.FlowChain("n1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].From != "n1" || hops[0].To != "n2" {
		t.Fatalf("flow = %+v, want single n1 -> n2 hop", hops)
	}
}

// TestUnknownIDEmptyLineage: querying an ID the store never saw is an
// empty answer, not an error (it may have aged out).
func TestUnknownIDEmptyLineage(t *testing.T) {
	v := NewView(twoNodeFixture(), 0)
	l, err := v.Ancestors("n1", 999999, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Edges) != 0 || len(l.Hops) != 0 {
		t.Fatalf("lineage for unknown ID = %+v, want empty", l)
	}
}

// TestInvestigateSurface: the textual query language end to end.
func TestInvestigateSurface(t *testing.T) {
	v := NewView(twoNodeFixture(), 0)
	res, err := Investigate("ancestors of 11 at n2", v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 3 || len(res.Hops) != 1 {
		t.Fatalf("result = %+v, want 3 edges 1 hop", res)
	}
	rep := res.String()
	for _, want := range []string{"ancestors of tuple 11 at n2", "rA(1 -> 2)", "hop n1#3 -> n2#10"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}

	res, err = Investigate("execs at n1 rule rB", v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 || res.Edges[0].Rule != "rB" {
		t.Fatalf("execs rule filter = %+v", res.Edges)
	}

	res, err = Investigate("execs at n1 since 10 until 20 limit 5", v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 || res.Edges[0].Rule != "rB" {
		t.Fatalf("execs time filter = %+v", res.Edges)
	}

	if _, err := Investigate("ancestors of x at n2", v); err == nil {
		t.Fatal("bad tuple ID parsed without error")
	}
	if _, err := Investigate("frobnicate of 1 at n2", v); err == nil {
		t.Fatal("unknown verb parsed without error")
	}
	if _, err := Investigate("execs at n1 bogus 3", v); err == nil {
		t.Fatal("unknown clause parsed without error")
	}
}

// TestEventsQuery: event scans filter by op and name.
func TestEventsQuery(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 10})
	st.AppendEvent(Event{Op: "arrive", Name: "ping", ID: 1, T: 1})
	st.AppendEvent(Event{Op: "insert", Name: "succ", ID: 2, T: 2})
	st.AppendEvent(Event{Op: "arrive", Name: "pong", ID: 3, T: 3})
	v := NewView(map[string]*Store{"n1": st}, 0)
	res, err := Investigate("events at n1 op arrive", v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 2 {
		t.Fatalf("op filter = %+v, want 2 arrive events", res.Events)
	}
	res, err = Investigate("events at n1 name succ", v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 || res.Events[0].Name != "succ" {
		t.Fatalf("name filter = %+v", res.Events)
	}
}
