package tracestore

import (
	"math"
	"reflect"
	"testing"
)

func exec(rule string, in, out uint64, inT, outT float64, ev bool) Exec {
	return Exec{Rule: rule, InID: in, OutID: out, InT: inT, OutT: outT, IsEvent: ev}
}

// TestRotationOnWindowBoundary pins the rotation contract: appends
// strictly inside a window stay in the active segment; the first append
// at or past the boundary seals it.
func TestRotationOnWindowBoundary(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 60})
	st.AppendExec(exec("r1", 1, 2, 0.5, 1.0, true))
	if n := st.AppendExec(exec("r1", 2, 3, 59.0, 59.999999, true)); n != 0 {
		t.Fatalf("append inside window sealed %d records, want 0", n)
	}
	if got := len(st.Segments()); got != 1 {
		t.Fatalf("segments before boundary = %d, want 1 (active only)", got)
	}
	// Exactly on the boundary: window floor(60/60)=1, so the active
	// window-0 segment seals.
	if n := st.AppendExec(exec("r1", 3, 4, 59.5, 60.0, true)); n != 2 {
		t.Fatalf("boundary append sealed %d records, want 2", n)
	}
	segs := st.Segments()
	if len(segs) != 2 || !segs[0].SealedSeg || segs[0].Window != 0 || segs[1].SealedSeg || segs[1].Window != 1 {
		t.Fatalf("segments after boundary = %+v", segs)
	}
	if st.Stats().Sealed != 1 || st.Stats().SealedRecords != 2 {
		t.Fatalf("stats after seal = %+v", st.Stats())
	}
}

// TestRotationSkipsEmptyWindows: a long quiet gap produces no empty
// sealed segments.
func TestRotationSkipsEmptyWindows(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 10})
	st.AppendEvent(Event{Op: "arrive", Name: "a", ID: 1, T: 5})
	st.AppendEvent(Event{Op: "arrive", Name: "b", ID: 2, T: 995}) // 98 windows later
	segs := st.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %+v, want sealed window 0 + active window 99", segs)
	}
	if segs[0].Window != 0 || segs[1].Window != 99 {
		t.Fatalf("windows = %d, %d; want 0, 99", segs[0].Window, segs[1].Window)
	}
}

// TestRetentionEvictionOrder: the budget drops whole segments oldest
// first, and the stats ledger stays consistent.
func TestRetentionEvictionOrder(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 10, MaxSegments: 2})
	for w := 0; w < 5; w++ {
		st.AppendExec(exec("r1", uint64(w), uint64(w+100), float64(w*10), float64(w*10)+1, true))
	}
	// Windows 0..3 sealed (4 seals), retention keeps the newest 2.
	segs := st.Segments()
	if len(segs) != 3 {
		t.Fatalf("segments = %+v, want 2 sealed + active", segs)
	}
	if segs[0].Window != 2 || segs[1].Window != 3 || segs[2].Window != 4 {
		t.Fatalf("retained windows = %d,%d,%d; want 2,3,4 (oldest evicted first)", segs[0].Window, segs[1].Window, segs[2].Window)
	}
	s := st.Stats()
	if s.Sealed != 4 || s.Evicted != 2 {
		t.Fatalf("stats = %+v, want 4 sealed, 2 evicted", s)
	}
	var retained int64
	for _, seg := range st.sealed {
		retained += int64(len(seg.data))
	}
	if s.EncodedBytes != retained {
		t.Fatalf("EncodedBytes ledger %d != actual retained %d", s.EncodedBytes, retained)
	}
	if s.TotalEncodedBytes <= s.EncodedBytes {
		t.Fatalf("TotalEncodedBytes %d should exceed retained %d after evictions", s.TotalEncodedBytes, s.EncodedBytes)
	}
}

// TestRetentionByBytes: the byte budget evicts too, but never the
// newest sealed segment (the store always retains at least one).
func TestRetentionByBytes(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 1, MaxBytes: 1})
	for w := 0; w < 4; w++ {
		st.AppendExec(exec("rule-with-a-long-name", uint64(w), uint64(w+100), float64(w), float64(w)+0.5, true))
	}
	segs := st.Segments()
	// Every seal exceeds 1 byte, so only the newest sealed segment and
	// the active one survive.
	if len(segs) != 2 || segs[0].Window != 2 || !segs[0].SealedSeg {
		t.Fatalf("segments = %+v, want newest sealed (window 2) + active", segs)
	}
}

// TestSealRoundTrip: what was appended is what a View reads back, in
// order, across several sealed windows plus the active segment.
func TestSealRoundTrip(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 10})
	var want []Exec
	for i := 0; i < 35; i++ {
		e := exec("r1", uint64(i), uint64(i+1000), float64(i), float64(i)+0.25, i%2 == 0)
		want = append(want, e)
		st.AppendExec(e)
	}
	v := NewView(map[string]*Store{"n1": st}, 0)
	got, err := v.Execs(ExecFilter{Node: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("execs = %d, want %d", len(got), len(want))
	}
	for i, e := range got {
		w := Edge{Node: "n1", Rule: want[i].Rule, InID: want[i].InID, OutID: want[i].OutID,
			InT: want[i].InT, OutT: want[i].OutT, IsEvent: want[i].IsEvent}
		if e != w {
			t.Fatalf("exec[%d] = %+v, want %+v", i, e, w)
		}
	}
}

// TestViewHorizonSkipsOldWindows: a since-horizon view does not decode
// windows that ended before the horizon.
func TestViewHorizonSkipsOldWindows(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 10})
	for i := 0; i < 50; i++ {
		st.AppendEvent(Event{Op: "arrive", Name: "x", ID: uint64(i + 1), T: float64(i)})
	}
	v := NewView(map[string]*Store{"n1": st}, 35)
	evs, err := v.Events(EventFilter{Node: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.T < 35 {
			t.Fatalf("event %+v leaked past the since=35 horizon", ev)
		}
	}
	if len(evs) != 15 {
		t.Fatalf("events past horizon = %d, want 15", len(evs))
	}
}

// TestEncodedCompactness: the whole point of delta/columnar encoding —
// a realistic segment (one rule name, clustered IDs and times) must
// encode far below the naive 41+ bytes/record of the raw struct.
func TestEncodedCompactness(t *testing.T) {
	st := New("n1", Config{WindowSeconds: 100})
	for i := 0; i < 1000; i++ {
		tm := float64(i) * 0.05
		st.AppendExec(exec("lookupRule", uint64(2*i+1), uint64(2*i+2), tm, tm+0.001, true))
	}
	st.AppendExec(exec("x", 9999, 10000, 200, 200.1, true)) // force seal
	s := st.Stats()
	if s.Sealed != 1 {
		t.Fatalf("sealed = %d, want 1", s.Sealed)
	}
	bpr := s.BytesPerRecord()
	if bpr <= 0 || bpr > 24 {
		t.Fatalf("bytes/record = %.1f, want (0, 24]", bpr)
	}
}

// TestDecodeRejectsCorruptInput: decode must fail cleanly, never
// panic, on malformed bytes.
func TestDecodeRejectsCorruptInput(t *testing.T) {
	seg := &segment{window: 3,
		execs:  []Exec{exec("r", 1, 2, 1, 2, true)},
		hops:   []Hop{{ID: 2, Src: "n2", SrcID: 9, Dst: "n1", T: 1.5}},
		events: []Event{{Op: "arrive", Name: "t", ID: 2, T: 1.5}},
	}
	good := encodeSegment(seg)
	if _, err := decodeSegment(good); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	for cut := 0; cut < len(good); cut++ {
		if _, err := decodeSegment(good[:cut]); err == nil {
			// A truncation that still parses must at least not panic;
			// most prefixes must error.
			if cut < len(good)-1 {
				t.Fatalf("truncation to %d bytes decoded without error", cut)
			}
		}
	}
	if _, err := decodeSegment([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("implausible dictionary count decoded without error")
	}
}

// TestTimestampLossless: XOR-delta float encoding is bit-exact,
// including awkward values.
func TestTimestampLossless(t *testing.T) {
	times := []float64{0, 1e-9, 123.456789, math.Pi * 1e6, 0.1 + 0.2}
	seg := &segment{window: 0}
	for i, tm := range times {
		seg.events = append(seg.events, Event{Op: "arrive", Name: "x", ID: uint64(i + 1), T: tm})
	}
	dec, err := decodeSegment(encodeSegment(seg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seg.events, dec.events) {
		t.Fatalf("events round trip:\n got %+v\nwant %+v", dec.events, seg.events)
	}
}
