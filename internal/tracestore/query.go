package tracestore

import (
	"fmt"
	"math"
	"sort"
)

// View is a read-only investigation session over a set of node stores.
// It lazily decodes each node's retained segments into transient
// hash indexes (by producing ID, by consuming ID, by local tuple ID for
// hops), so a multi-step lineage walk decodes each segment once — the
// store itself stays compact, only the open View pays for random
// access. A View is a snapshot: appends made after construction are not
// guaranteed to be visible. Not safe for concurrent use.
type View struct {
	stores map[string]*Store
	since  float64
	nodes  map[string]*nodeIndex
	// fwd is the global forward hop index: producer address → producer
	// tuple ID → consumers. Built on demand (Descendants/FlowChain),
	// since it requires decoding every node.
	fwd map[string]map[uint64][]fwdHop
}

type fwdHop struct {
	node string // consuming node
	id   uint64 // tuple ID there
	t    float64
}

type nodeIndex struct {
	execs  []Exec
	events []Event
	byOut  map[uint64][]int
	byIn   map[uint64][]int
	hops   map[uint64]Hop
}

// NewView opens an investigation session over the given stores, keyed
// by node address. Records before `since` are invisible — and whole
// windows before it are never decoded, which is what bounds query cost
// by the time horizon rather than by retention (pass 0 to see
// everything retained).
func NewView(stores map[string]*Store, since float64) *View {
	return &View{stores: stores, since: since, nodes: make(map[string]*nodeIndex)}
}

// Nodes lists the addresses the view can answer for, sorted.
func (v *View) Nodes() []string {
	out := make([]string, 0, len(v.stores))
	for a := range v.stores {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (v *View) node(addr string) (*nodeIndex, error) {
	if ix, ok := v.nodes[addr]; ok {
		return ix, nil
	}
	st := v.stores[addr]
	if st == nil {
		return nil, fmt.Errorf("tracestore: no store for node %q", addr)
	}
	segs, err := st.snapshot(v.since)
	if err != nil {
		return nil, err
	}
	ix := &nodeIndex{
		byOut: make(map[uint64][]int),
		byIn:  make(map[uint64][]int),
		hops:  make(map[uint64]Hop),
	}
	for _, seg := range segs {
		for _, e := range seg.execs {
			if e.OutT < v.since {
				continue
			}
			ix.byOut[e.OutID] = append(ix.byOut[e.OutID], len(ix.execs))
			ix.byIn[e.InID] = append(ix.byIn[e.InID], len(ix.execs))
			ix.execs = append(ix.execs, e)
		}
		for _, h := range seg.hops {
			if h.T < v.since {
				continue
			}
			ix.hops[h.ID] = h
		}
		for _, ev := range seg.events {
			if ev.T < v.since {
				continue
			}
			ix.events = append(ix.events, ev)
		}
	}
	v.nodes[addr] = ix
	return ix, nil
}

func (v *View) forward() (map[string]map[uint64][]fwdHop, error) {
	if v.fwd != nil {
		return v.fwd, nil
	}
	fwd := make(map[string]map[uint64][]fwdHop)
	for addr := range v.stores {
		ix, err := v.node(addr)
		if err != nil {
			return nil, err
		}
		for id, h := range ix.hops {
			m := fwd[h.Src]
			if m == nil {
				m = make(map[uint64][]fwdHop)
				fwd[h.Src] = m
			}
			m[h.SrcID] = append(m[h.SrcID], fwdHop{node: addr, id: id, t: h.T})
		}
	}
	v.fwd = fwd
	return fwd, nil
}

// Edge is one causal edge of a lineage answer: on Node, Rule consumed
// InID and produced OutID. Depth is the BFS distance (in exec edges)
// from the query's starting tuple; 0 for plain scans.
type Edge struct {
	Node      string
	Rule      string
	InID      uint64
	OutID     uint64
	InT, OutT float64
	IsEvent   bool
	Depth     int
}

// HopStep is one cross-node link of a lineage answer: the tuple known
// as FromID on From arrived at To as ToID at time T.
type HopStep struct {
	From   string
	FromID uint64
	To     string
	ToID   uint64
	T      float64
	Depth  int
}

// Lineage is the answer to an ancestors/descendants walk: the causal
// exec edges plus the cross-node hops the walk crossed, both sorted
// deterministically (by depth, then time, then content).
type Lineage struct {
	Edges []Edge
	Hops  []HopStep
}

func (l *Lineage) sort() {
	sort.Slice(l.Edges, func(i, j int) bool {
		a, b := l.Edges[i], l.Edges[j]
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.OutT != b.OutT {
			return a.OutT < b.OutT
		}
		if a.InT != b.InT {
			return a.InT < b.InT
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.InID != b.InID {
			return a.InID < b.InID
		}
		return a.OutID < b.OutID
	})
	sort.Slice(l.Hops, func(i, j int) bool {
		a, b := l.Hops[i], l.Hops[j]
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		if a.T != b.T {
			return a.T < b.T
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.FromID < b.FromID
	})
}

type walkItem struct {
	node  string
	id    uint64
	depth int
}

// Ancestors walks the causal past of tuple id on node: every exec edge
// that (transitively) produced it, following cross-node hops back to
// the producing node. maxDepth bounds the walk in exec edges (0 =
// unbounded). Unknown IDs return an empty lineage, not an error — the
// past may simply have aged out of retention.
func (v *View) Ancestors(node string, id uint64, maxDepth int) (*Lineage, error) {
	return v.walk(node, id, maxDepth, false)
}

// Descendants walks the causal future of tuple id on node: everything
// it (transitively) contributed to, following hops forward to consuming
// nodes.
func (v *View) Descendants(node string, id uint64, maxDepth int) (*Lineage, error) {
	return v.walk(node, id, maxDepth, true)
}

func (v *View) walk(node string, id uint64, maxDepth int, forward bool) (*Lineage, error) {
	var fwd map[string]map[uint64][]fwdHop
	if forward {
		var err error
		if fwd, err = v.forward(); err != nil {
			return nil, err
		}
	}
	out := &Lineage{}
	type key struct {
		node string
		id   uint64
	}
	seen := map[key]bool{{node, id}: true}
	queue := []walkItem{{node: node, id: id}}
	push := func(n string, id uint64, depth int) {
		if !seen[key{n, id}] {
			seen[key{n, id}] = true
			queue = append(queue, walkItem{node: n, id: id, depth: depth})
		}
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ix, err := v.node(it.node)
		if err != nil {
			// A hop may name a node outside the view (no store); the
			// walk reports what it can reach.
			if v.stores[it.node] == nil {
				continue
			}
			return nil, err
		}
		if !forward {
			// The tuple may itself be a remote arrival: jump to its
			// producer at the same depth (a hop is identity, not
			// derivation).
			if h, ok := ix.hops[it.id]; ok {
				out.Hops = append(out.Hops, HopStep{
					From: h.Src, FromID: h.SrcID, To: it.node, ToID: it.id,
					T: h.T, Depth: it.depth,
				})
				push(h.Src, h.SrcID, it.depth)
			}
			if maxDepth > 0 && it.depth >= maxDepth {
				continue
			}
			for _, i := range ix.byOut[it.id] {
				e := ix.execs[i]
				out.Edges = append(out.Edges, Edge{
					Node: it.node, Rule: e.Rule, InID: e.InID, OutID: e.OutID,
					InT: e.InT, OutT: e.OutT, IsEvent: e.IsEvent, Depth: it.depth + 1,
				})
				push(it.node, e.InID, it.depth+1)
			}
			continue
		}
		// Forward: hops this tuple took to other nodes, then local
		// consumers.
		for _, fh := range fwd[it.node][it.id] {
			out.Hops = append(out.Hops, HopStep{
				From: it.node, FromID: it.id, To: fh.node, ToID: fh.id,
				T: fh.t, Depth: it.depth,
			})
			push(fh.node, fh.id, it.depth)
		}
		if maxDepth > 0 && it.depth >= maxDepth {
			continue
		}
		for _, i := range ix.byIn[it.id] {
			e := ix.execs[i]
			out.Edges = append(out.Edges, Edge{
				Node: it.node, Rule: e.Rule, InID: e.InID, OutID: e.OutID,
				InT: e.InT, OutT: e.OutT, IsEvent: e.IsEvent, Depth: it.depth + 1,
			})
			push(it.node, e.OutID, it.depth+1)
		}
	}
	out.sort()
	return out, nil
}

// FlowChain reconstructs the inter-node path of a tuple: every hop in
// its causal past and future, sorted by time — "how did this datum
// travel through the network".
func (v *View) FlowChain(node string, id uint64) ([]HopStep, error) {
	anc, err := v.Ancestors(node, id, 0)
	if err != nil {
		return nil, err
	}
	desc, err := v.Descendants(node, id, 0)
	if err != nil {
		return nil, err
	}
	hops := append(append([]HopStep(nil), anc.Hops...), desc.Hops...)
	sort.Slice(hops, func(i, j int) bool {
		a, b := hops[i], hops[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.FromID < b.FromID
	})
	return hops, nil
}

// Hops returns one node's remote-arrival hop records, deduplicated by
// local tuple ID (the newest record wins, mirroring the tupleTable's
// replace-on-key semantics) and sorted by local ID.
func (v *View) Hops(node string) ([]Hop, error) {
	ix, err := v.node(node)
	if err != nil {
		return nil, err
	}
	out := make([]Hop, 0, len(ix.hops))
	for _, h := range ix.hops {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ExecFilter selects exec records for Execs: Node is required; zero
// values of the rest mean "any". Until 0 means +Inf.
type ExecFilter struct {
	Node         string
	Rule         string
	Since, Until float64
	Limit        int
}

// Execs scans one node's exec records in append (time) order.
func (v *View) Execs(f ExecFilter) ([]Edge, error) {
	ix, err := v.node(f.Node)
	if err != nil {
		return nil, err
	}
	until := f.Until
	if until == 0 {
		until = math.Inf(1)
	}
	var out []Edge
	for _, e := range ix.execs {
		if e.OutT < f.Since || e.OutT > until {
			continue
		}
		if f.Rule != "" && e.Rule != f.Rule {
			continue
		}
		out = append(out, Edge{
			Node: f.Node, Rule: e.Rule, InID: e.InID, OutID: e.OutID,
			InT: e.InT, OutT: e.OutT, IsEvent: e.IsEvent,
		})
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out, nil
}

// EventFilter selects event records for Events: Node is required; zero
// values of the rest mean "any". Until 0 means +Inf.
type EventFilter struct {
	Node         string
	Op, Name     string
	Since, Until float64
	Limit        int
}

// Events scans one node's system events in append (time) order.
func (v *View) Events(f EventFilter) ([]Event, error) {
	ix, err := v.node(f.Node)
	if err != nil {
		return nil, err
	}
	until := f.Until
	if until == 0 {
		until = math.Inf(1)
	}
	var out []Event
	for _, ev := range ix.events {
		if ev.T < f.Since || ev.T > until {
			continue
		}
		if f.Op != "" && ev.Op != f.Op {
			continue
		}
		if f.Name != "" && ev.Name != f.Name {
			continue
		}
		out = append(out, ev)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out, nil
}
